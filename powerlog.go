// Package powerlog is a Go implementation of PowerLog (Wang et al.,
// SIGMOD 2020): a Datalog system for recursive aggregate programs that
//
//   - automatically checks, with a built-in symbolic solver standing in
//     for Z3, whether a program satisfies the MRA conditions (Theorem 1)
//     that make incremental and asynchronous evaluation correct — even
//     for non-monotonic programs such as the original PageRank;
//   - executes satisfying programs with MRA (semi-naive) evaluation on a
//     unified sync-async engine whose adaptive message buffers tune the
//     level of asynchrony per worker pair (§5.3), falling back to naive
//     synchronous evaluation otherwise;
//   - reproduces the paper's evaluation (Tables 1–2, Figures 1 and 9–11)
//     with the bundled bench harness.
//
// Quick start:
//
//	prog, err := powerlog.Parse(powerlog.Programs.SSSP)
//	db := powerlog.NewDatabase()
//	db.SetGraph("edge", g) // a *powerlog.Graph
//	plan, err := prog.Compile(db)
//	res, err := powerlog.Run(plan, powerlog.Options{Mode: powerlog.ModeSyncAsync})
package powerlog

import (
	"fmt"
	"io"

	"powerlog/internal/analyzer"
	"powerlog/internal/checker"
	"powerlog/internal/compiler"
	"powerlog/internal/edb"
	"powerlog/internal/graph"
	"powerlog/internal/parser"
	"powerlog/internal/progs"
	"powerlog/internal/rewrite"
	"powerlog/internal/runtime"
	"powerlog/internal/transport"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Graph is the CSR propagation graph.
	Graph = graph.Graph
	// Edge is one directed, optionally weighted edge.
	Edge = graph.Edge
	// Database holds the extensional relations and registered graphs.
	Database = edb.DB
	// Relation is a named float64 table.
	Relation = edb.Relation
	// Plan is an executable compiled program.
	Plan = compiler.Plan
	// Options tunes an execution (workers, mode, buffers, checkpoints).
	Options = runtime.Config
	// Result is a completed run.
	Result = runtime.Result
	// Mode selects the evaluation strategy.
	Mode = runtime.Mode
	// CheckReport is the MRA condition checker's verdict for a program.
	CheckReport = checker.Report
	// NetworkProfile emulates cluster link costs on the in-process
	// transport (see Options.Network).
	NetworkProfile = runtime.NetworkProfile
)

// Evaluation modes (see the paper's Figure 10 series).
const (
	// ModeNaiveSync is naive evaluation under synchronous execution
	// (what SociaLite does for non-monotonic programs).
	ModeNaiveSync = runtime.NaiveSync
	// ModeSync is MRA (semi-naive) evaluation under BSP barriers.
	ModeSync = runtime.MRASync
	// ModeAsync is MRA evaluation with eager asynchronous messaging.
	ModeAsync = runtime.MRAAsync
	// ModeSyncAsync is PowerLog's unified sync-async engine with
	// adaptive per-destination message buffers. This is the default.
	ModeSyncAsync = runtime.MRASyncAsync
	// ModeAAP is the Grape+-style adaptive asynchronous parallel model
	// re-implemented for the paper's §6.5 comparison.
	ModeAAP = runtime.MRAAAP
	// ModeSSP is stale synchronous parallel evaluation: BSP-style
	// supersteps with the barrier relaxed to Options.Staleness steps.
	ModeSSP = runtime.MRASSP
)

// Programs exposes the paper's fourteen catalogue programs (Table 1).
var Programs = struct {
	SSSP, CC, PageRank, Adsorption, Katz, BP    string
	PathsDAG, Cost, Viterbi, SimRank, LCA, APSP string
	CommNet, GCNForward                         string
}{
	SSSP: progs.SSSP, CC: progs.CC, PageRank: progs.PageRank,
	Adsorption: progs.Adsorption, Katz: progs.Katz, BP: progs.BP,
	PathsDAG: progs.PathsDAG, Cost: progs.Cost, Viterbi: progs.Viterbi,
	SimRank: progs.SimRank, LCA: progs.LCA, APSP: progs.APSP,
	CommNet: progs.CommNet, GCNForward: progs.GCNForward,
}

// Program is a parsed and semantically analysed recursive aggregate
// Datalog program.
type Program struct {
	info   *analyzer.Info
	report *checker.Report // memoised condition check
}

// Parse parses and analyses Datalog source. The program must contain
// exactly one (linear, direct) recursive aggregate rule.
func Parse(source string) (*Program, error) {
	ast, err := parser.Parse(source)
	if err != nil {
		return nil, err
	}
	info, err := analyzer.Analyze(ast)
	if err != nil {
		return nil, err
	}
	return &Program{info: info}, nil
}

// Name returns the recursive predicate's name.
func (p *Program) Name() string { return p.info.HeadName }

// Aggregate returns the head aggregate's surface name (min, max, sum, …).
func (p *Program) Aggregate() string { return p.info.Agg.String() }

// Check runs the automatic MRA condition checker (§3.3) and memoises the
// report. A satisfied report licenses incremental and asynchronous
// evaluation; otherwise Compile falls back to naive synchronous mode.
func (p *Program) Check() *CheckReport {
	if p.report == nil {
		p.report = checker.Check(p.info)
	}
	return p.report
}

// Rewrite returns the program's equivalent incremental (monotonic) form —
// the transformation that turns the original PageRank into the
// delta-based Program 2.b. It fails for programs that do not satisfy the
// MRA conditions.
func (p *Program) Rewrite() (string, error) {
	out, err := rewrite.ToIncremental(p.info, p.Check())
	if err != nil {
		return "", err
	}
	return out.String(), nil
}

// SMTLIB renders the program's Property-2 verification condition in the
// paper's Figure-4 Z3 encoding (SMT-LIB 2). Feeding it to a real Z3
// returns "unsat" exactly when Check reports the property valid, keeping
// the built-in solver externally auditable.
func (p *Program) SMTLIB() (string, error) {
	return checker.EmitSMTLIB(p.info)
}

// Compile lowers the program against a database into an executable plan.
// The database must register the graph joined by the recursive rule
// under its predicate name (e.g. "edge") plus any attribute relations.
func (p *Program) Compile(db *Database) (*Plan, error) {
	return compiler.Compile(p.info, db, compiler.Options{})
}

// NewDatabase returns an empty database.
func NewDatabase() *Database { return edb.NewDB() }

// NewRelation creates an empty named relation with the given arity.
func NewRelation(name string, arity int) *Relation { return edb.NewRelation(name, arity) }

// NewGraph builds a CSR graph over vertices [0,n).
func NewGraph(n int, edges []Edge, weighted bool) (*Graph, error) {
	return graph.FromEdges(n, edges, weighted)
}

// LoadGraphTSV reads a whitespace-separated edge list ("src dst [w]").
func LoadGraphTSV(r io.Reader, weighted bool) (*Graph, error) {
	return graph.LoadTSV(r, 0, weighted)
}

// Run executes a compiled plan. The zero Options run the unified
// sync-async engine on four workers. Programs that fail the MRA check
// are forced onto naive synchronous evaluation, mirroring the system
// diagram in the paper's Figure 2.
func Run(plan *Plan, opts Options) (*Result, error) {
	rep := checker.Check(plan.Info)
	if !rep.Satisfied && opts.Mode != ModeNaiveSync {
		opts.Mode = ModeNaiveSync
	}
	return runtime.Run(plan, opts)
}

// RunUnchecked executes a plan without consulting the condition checker.
// Use only when the caller has verified correctness by other means (the
// bench harness uses it to time individual engine modes).
func RunUnchecked(plan *Plan, opts Options) (*Result, error) {
	return runtime.Run(plan, opts)
}

// Session is a long-lived engine instance: the fleet stays warm between
// fixpoints, and base-fact mutations re-converge incrementally instead
// of re-running from scratch.
type Session = runtime.Session

// Mutation is a batch of base-fact edge inserts and deletes for
// Session.Apply. A delete removes every parallel edge with the named
// endpoints; deleting an absent edge is a no-op.
type Mutation = runtime.Mutation

// Typed session-state errors for callers driving one Session from
// concurrent goroutines (as the serving front end does): branch with
// errors.Is — Busy means an exclusive operation (a fixpoint, a
// membership fence) is in flight and the call was shed rather than
// queued; Closed means Close has run (or is running) and the rejection
// is permanent.
var (
	ErrSessionBusy   = runtime.ErrSessionBusy
	ErrSessionClosed = runtime.ErrSessionClosed
)

// Open starts a long-lived session: it computes the plan's initial
// fixpoint and parks the worker fleet, ready for incremental
// re-fixpoints under Session.Apply:
//
//	sess, err := powerlog.Open(plan, powerlog.Options{Mode: powerlog.ModeSyncAsync})
//	res := sess.Result() // the initial fixpoint
//	res, err = sess.Apply(powerlog.Mutation{Inserts: []powerlog.Edge{{Src: 3, Dst: 7, W: 1}}})
//	res, err = sess.Apply(powerlog.Mutation{Deletes: []powerlog.Edge{{Src: 0, Dst: 4}}})
//	defer sess.Close()
//
// Like Run, programs that fail the MRA check are forced onto naive
// synchronous evaluation — which cannot re-fixpoint incrementally, so
// Apply is rejected for them (the session is still useful for Result).
func Open(plan *Plan, opts Options) (*Session, error) {
	rep := checker.Check(plan.Info)
	if !rep.Satisfied && opts.Mode != ModeNaiveSync {
		opts.Mode = ModeNaiveSync
	}
	return runtime.Open(plan, opts)
}

// OpenUnchecked starts a session without consulting the condition
// checker (see RunUnchecked).
func OpenUnchecked(plan *Plan, opts Options) (*Session, error) {
	return runtime.Open(plan, opts)
}

// CheckSource is a convenience: parse, analyse, and condition-check in
// one call, returning the Table-1-style report.
func CheckSource(source string) (*CheckReport, error) {
	rep, _, err := checker.CheckSource(source)
	return rep, err
}

// Transport is one endpoint's connection to a worker/master network.
type Transport = transport.Conn

// TCPEndpoint is a TCP-backed Transport for multi-process clusters.
type TCPEndpoint = transport.TCPConn

// NewTCPEndpoint starts endpoint id of a TCP network: workers are
// endpoints 0..n-1, the master is endpoint n. addrs lists every
// endpoint's listen address.
func NewTCPEndpoint(id, workers int, addrs []string) (*TCPEndpoint, error) {
	return transport.NewTCPEndpoint(id, workers, addrs)
}

// RunWorker participates as one worker of a distributed run over an
// external transport (each process compiles the same plan from the same
// deterministic data) and returns the local shard of the result.
func RunWorker(plan *Plan, opts Options, conn Transport) (map[int64]float64, error) {
	return runtime.RunWorker(plan, opts, conn)
}

// RunMaster coordinates termination of a distributed run.
func RunMaster(plan *Plan, opts Options, conn Transport) (rounds int, converged bool, err error) {
	return runtime.RunMaster(plan, opts, conn)
}

// Version identifies this implementation.
const Version = "1.0.0"

// String renders a one-line summary of a result.
func Summary(r *Result) string {
	return fmt.Sprintf("keys=%d rounds=%d msgs=%d flushes=%d elapsed=%v converged=%v",
		len(r.Values), r.Rounds, r.MessagesSent, r.Flushes, r.Elapsed, r.Converged)
}
