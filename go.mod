module powerlog

go 1.22
