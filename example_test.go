package powerlog_test

import (
	"fmt"
	"sort"

	"powerlog"
)

// ExampleParse shows the full pipeline on the paper's opening program:
// parse, condition-check, compile, run.
func ExampleParse() {
	const sssp = `
r1. sssp(X,d) :- X=0, d=0.
r2. sssp(Y,min[dy]) :- sssp(X,dx), edge(X,Y,dxy), dy = dx + dxy.
`
	g, _ := powerlog.NewGraph(4, []powerlog.Edge{
		{Src: 0, Dst: 1, W: 4}, {Src: 1, Dst: 2, W: 3}, {Src: 0, Dst: 2, W: 9}, {Src: 2, Dst: 3, W: 1},
	}, true)

	prog, _ := powerlog.Parse(sssp)
	fmt.Println("MRA satisfied:", prog.Check().Satisfied)

	db := powerlog.NewDatabase()
	db.SetGraph("edge", g)
	plan, _ := prog.Compile(db)
	res, _ := powerlog.Run(plan, powerlog.Options{Workers: 2})

	keys := make([]int64, 0, len(res.Values))
	for k := range res.Values {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		fmt.Printf("sssp(%d) = %g\n", k, res.Values[k])
	}
	// Output:
	// MRA satisfied: true
	// sssp(0) = 0
	// sssp(1) = 4
	// sssp(2) = 7
	// sssp(3) = 8
}

// ExampleProgram_Check shows the automatic rejection of a program whose
// nonlinearity breaks Property 2, with a concrete counterexample.
func ExampleProgram_Check() {
	prog, _ := powerlog.Parse(powerlog.Programs.GCNForward)
	rep := prog.Check()
	fmt.Println("satisfied:", rep.Satisfied)
	fmt.Println("has counterexample:", len(rep.P2.Witness) > 0)
	// Output:
	// satisfied: false
	// has counterexample: true
}

// ExampleProgram_Rewrite prints the automatically generated incremental
// form of the original, non-monotonic PageRank (the paper's Program 2.b).
func ExampleProgram_Rewrite() {
	prog, _ := powerlog.Parse(powerlog.Programs.PageRank)
	text, _ := prog.Rewrite()
	fmt.Println(len(text) > 0)
	// Output:
	// true
}
