package agg

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	cases := map[string]Kind{
		"min": Min, "max": Max, "sum": Sum, "count": Count, "mean": Mean,
		"mmin": Min, "mmax": Max, "msum": Sum, "mcount": Count, "avg": Mean,
	}
	for name, want := range cases {
		got, err := Parse(name)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := Parse("median"); err == nil {
		t.Error("Parse(median) should fail")
	}
}

func TestKindString(t *testing.T) {
	if Min.String() != "min" || Sum.String() != "sum" {
		t.Error("bad names")
	}
	if Kind(99).String() == "" {
		t.Error("out-of-range kind should still print")
	}
}

func TestIdentity(t *testing.T) {
	if !math.IsInf(ByKind(Min).Identity(), 1) {
		t.Error("min identity should be +inf")
	}
	if !math.IsInf(ByKind(Max).Identity(), -1) {
		t.Error("max identity should be -inf")
	}
	if ByKind(Sum).Identity() != 0 || ByKind(Count).Identity() != 0 {
		t.Error("sum/count identity should be 0")
	}
}

func TestFoldAll(t *testing.T) {
	vs := []float64{3, -1, 7, 2}
	if got := ByKind(Min).FoldAll(vs); got != -1 {
		t.Errorf("min = %v", got)
	}
	if got := ByKind(Max).FoldAll(vs); got != 7 {
		t.Errorf("max = %v", got)
	}
	if got := ByKind(Sum).FoldAll(vs); got != 11 {
		t.Errorf("sum = %v", got)
	}
	if got := ByKind(Sum).FoldAll(nil); got != 0 {
		t.Errorf("empty sum = %v", got)
	}
	if got := ByKind(Min).FoldAll(nil); !math.IsInf(got, 1) {
		t.Errorf("empty min = %v", got)
	}
}

func TestInverseRecoversX1(t *testing.T) {
	// For each op: G(x0, G⁻(x1,x0)) == x1 whenever x1 is reachable, i.e.
	// x1 ⊑ x0 in the op's order for selective ops, any x1 for sum.
	f := func(x0, x1 float64) bool {
		if math.IsNaN(x0) || math.IsNaN(x1) || math.IsInf(x0, 0) || math.IsInf(x1, 0) {
			return true
		}
		x0, x1 = math.Mod(x0, 1e6), math.Mod(x1, 1e6)
		sum := ByKind(Sum)
		if got := sum.Fold(x0, sum.Inverse(x1, x0)); math.Abs(got-x1) > 1e-6*math.Max(1, math.Abs(x1)) {
			return false
		}
		minOp := ByKind(Min)
		lo := math.Min(x0, x1)
		if got := minOp.Fold(x0, minOp.Inverse(lo, x0)); got != lo {
			return false
		}
		maxOp := ByKind(Max)
		hi := math.Max(x0, x1)
		if got := maxOp.Fold(x0, maxOp.Inverse(hi, x0)); got != hi {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFoldCommutativeAssociative(t *testing.T) {
	for _, k := range []Kind{Min, Max, Sum, Count} {
		op := ByKind(k)
		comm := func(a, b float64) bool {
			if math.IsNaN(a) || math.IsNaN(b) {
				return true
			}
			x, y := op.Fold(a, b), op.Fold(b, a)
			return x == y || (math.IsNaN(x) && math.IsNaN(y))
		}
		if err := quick.Check(comm, nil); err != nil {
			t.Errorf("%v commutativity: %v", k, err)
		}
		assoc := func(a, b, c float64) bool {
			if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
				return true
			}
			a, b, c = math.Mod(a, 1e5), math.Mod(b, 1e5), math.Mod(c, 1e5)
			x, y := op.Fold(op.Fold(a, b), c), op.Fold(a, op.Fold(b, c))
			return math.Abs(x-y) <= 1e-7*math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
		}
		if err := quick.Check(assoc, nil); err != nil {
			t.Errorf("%v associativity: %v", k, err)
		}
	}
}

func TestMeanNotAssociative(t *testing.T) {
	op := ByKind(Mean)
	l := op.Fold(op.Fold(1, 2), 3) // 2.25
	r := op.Fold(1, op.Fold(2, 3)) // 1.75
	if l == r {
		t.Error("mean fold should not be associative; checker relies on this")
	}
}

func TestBetter(t *testing.T) {
	if !ByKind(Min).Better(1, 2) || ByKind(Min).Better(2, 1) {
		t.Error("min.Better wrong")
	}
	if !ByKind(Max).Better(2, 1) || ByKind(Max).Better(1, 2) {
		t.Error("max.Better wrong")
	}
	if !ByKind(Sum).Better(0.1, 0) || ByKind(Sum).Better(0, 0) {
		t.Error("sum.Better wrong")
	}
}

func TestSelective(t *testing.T) {
	if !ByKind(Min).Selective() || !ByKind(Max).Selective() {
		t.Error("min/max are selective")
	}
	if ByKind(Sum).Selective() || ByKind(Count).Selective() {
		t.Error("sum/count are not selective")
	}
}

func TestAtomicFoldSequential(t *testing.T) {
	var cell uint64
	op := ByKind(Min)
	Store(&cell, op.Identity())
	if !op.AtomicFold(&cell, 5) {
		t.Error("first fold should change the cell")
	}
	if op.AtomicFold(&cell, 7) {
		t.Error("worse value should not change the cell")
	}
	if !op.AtomicFold(&cell, 3) {
		t.Error("better value should change the cell")
	}
	if got := Load(&cell); got != 3 {
		t.Errorf("cell = %v, want 3", got)
	}
}

func TestAtomicExchangeIdentity(t *testing.T) {
	var cell uint64
	op := ByKind(Sum)
	Store(&cell, 42)
	if got := op.AtomicExchangeIdentity(&cell); got != 42 {
		t.Errorf("exchange returned %v", got)
	}
	if got := Load(&cell); got != 0 {
		t.Errorf("cell after exchange = %v, want identity 0", got)
	}
}

// TestAtomicFoldConcurrent hammers a single cell from many goroutines and
// checks the result equals the sequential fold — the linearizability
// property the MonoTable protocol depends on.
func TestAtomicFoldConcurrent(t *testing.T) {
	const goroutines = 8
	const perG = 2000
	for _, k := range []Kind{Min, Max, Sum} {
		op := ByKind(k)
		var cell uint64
		Store(&cell, op.Identity())
		var wg sync.WaitGroup
		expected := op.Identity()
		inputs := make([][]float64, goroutines)
		for g := 0; g < goroutines; g++ {
			vals := make([]float64, perG)
			for i := range vals {
				vals[i] = float64((g*perG+i)%977) - 488
				expected = op.Fold(expected, vals[i])
			}
			inputs[g] = vals
		}
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(vals []float64) {
				defer wg.Done()
				for _, v := range vals {
					op.AtomicFold(&cell, v)
				}
			}(inputs[g])
		}
		wg.Wait()
		got := Load(&cell)
		if math.Abs(got-expected) > 1e-6 {
			t.Errorf("%v concurrent fold = %v, want %v", k, got, expected)
		}
	}
}

// TestAtomicDrainConcurrent interleaves producers folding into a cell with
// a consumer that repeatedly exchanges the cell to identity; the folded
// total of consumed values must equal the folded total of produced values
// (no delta lost, none double-counted) for sum.
func TestAtomicDrainConcurrent(t *testing.T) {
	op := ByKind(Sum)
	var cell uint64
	Store(&cell, op.Identity())
	const producers = 4
	const perP = 5000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				op.AtomicFold(&cell, 1)
			}
		}(p)
	}
	done := make(chan struct{})
	var consumed float64
	go func() {
		defer close(done)
		for {
			consumed += op.AtomicExchangeIdentity(&cell)
			if consumed >= producers*perP {
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if consumed != producers*perP {
		t.Errorf("consumed %v, want %v", consumed, producers*perP)
	}
}
