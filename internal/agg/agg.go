// Package agg implements the aggregate operators that may appear in the
// head of a recursive aggregate Datalog rule: min, max, sum, count, and
// mean (paper §5.1). Each operator carries its identity element, binary
// fold, inverse G⁻ used to derive the initial delta ΔX¹ (paper §3.3), and
// lock-free atomic fold used by the MonoTable update protocol (paper §5.2).
package agg

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Kind identifies an aggregate operator.
type Kind int

// Aggregate operator kinds.
const (
	Min Kind = iota
	Max
	Sum
	Count
	Mean
)

var kindNames = [...]string{"min", "max", "sum", "count", "mean"}

// String returns the Datalog surface name of the operator.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("agg.Kind(%d)", int(k))
}

// Parse maps a Datalog aggregate name to its Kind. It also accepts the
// DeALS-style monotonic spellings mmin/mmax/msum/mcount.
func Parse(name string) (Kind, error) {
	switch name {
	case "min", "mmin":
		return Min, nil
	case "max", "mmax":
		return Max, nil
	case "sum", "msum":
		return Sum, nil
	case "count", "mcount":
		return Count, nil
	case "mean", "avg":
		return Mean, nil
	default:
		return 0, fmt.Errorf("agg: unknown aggregate %q", name)
	}
}

// Op is a concrete aggregate operator. All Ops are stateless and safe for
// concurrent use.
type Op struct {
	kind     Kind
	identity float64
	fold     func(a, b float64) float64
}

// ops is indexed by Kind. Count folds like Sum at runtime because the
// engine materialises count inputs as 1-valued deltas (paper §2.3: the
// runtime semantics of count is "return sum(r, count[d])").
var ops = [...]*Op{
	Min:   {Min, math.Inf(1), math.Min},
	Max:   {Max, math.Inf(-1), math.Max},
	Sum:   {Sum, 0, func(a, b float64) float64 { return a + b }},
	Count: {Count, 0, func(a, b float64) float64 { return a + b }},
	// Mean has no well-defined binary fold without cardinality bookkeeping;
	// it exists so the checker can reject it (it is not associative).
	Mean: {Mean, math.NaN(), func(a, b float64) float64 { return (a + b) / 2 }},
}

// ByKind returns the operator for k.
func ByKind(k Kind) *Op { return ops[k] }

// Kind returns the operator's kind.
func (o *Op) Kind() Kind { return o.kind }

// String returns the operator's Datalog name.
func (o *Op) String() string { return o.kind.String() }

// Identity returns the fold identity: +inf for min, -inf for max, 0 for
// sum/count.
func (o *Op) Identity() float64 { return o.identity }

// Fold combines two values.
func (o *Op) Fold(a, b float64) float64 { return o.fold(a, b) }

// FoldAll folds a slice, returning the identity for an empty slice.
func (o *Op) FoldAll(vs []float64) float64 {
	acc := o.identity
	for _, v := range vs {
		acc = o.fold(acc, v)
	}
	return acc
}

// Inverse computes the initial delta entry G⁻(x1, x0) of paper §3.3: the
// value d such that G(x0, d) == x1 under this aggregate. For min/max the
// inverse is the operator itself; for sum/count it is pairwise subtraction.
func (o *Op) Inverse(x1, x0 float64) float64 {
	switch o.kind {
	case Min:
		return math.Min(x1, x0)
	case Max:
		return math.Max(x1, x0)
	case Sum, Count:
		return x1 - x0
	default:
		return math.NaN()
	}
}

// Better reports whether a strictly improves on b in this aggregate's
// monotone order (used by priority scheduling and convergence checks).
// For sum/count any non-zero delta "improves".
func (o *Op) Better(a, b float64) bool {
	switch o.kind {
	case Min:
		return a < b
	case Max:
		return a > b
	default:
		return a != 0 || b != 0
	}
}

// Selective reports whether the aggregate keeps one winning input (min,
// max) rather than combining all inputs (sum, count). Selective aggregates
// converge by value domination; combining aggregates converge by delta
// magnitude.
func (o *Op) Selective() bool { return o.kind == Min || o.kind == Max }

// AtomicFold folds v into *addr with a compare-and-swap loop on the raw
// float64 bits. It reports whether the stored value changed. This is the
// atomic aggregation of step (3) of the MonoTable update protocol.
func (o *Op) AtomicFold(addr *uint64, v float64) bool {
	for {
		oldBits := atomic.LoadUint64(addr)
		old := math.Float64frombits(oldBits)
		next := o.fold(old, v)
		if next == old || (math.IsNaN(next) && math.IsNaN(old)) {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, oldBits, math.Float64bits(next)) {
			return true
		}
	}
}

// AtomicExchangeIdentity atomically swaps *addr to the identity element and
// returns the previous value. This is steps (1)+(2) of the MonoTable update
// protocol: fetch the intermediate into a local and reset it so a delta is
// never aggregated twice.
func (o *Op) AtomicExchangeIdentity(addr *uint64) float64 {
	old := atomic.SwapUint64(addr, math.Float64bits(o.identity))
	return math.Float64frombits(old)
}

// Abs returns |x|. It is the shared absolute-value helper for the hot
// paths (magnitude and threshold tests); a plain branch, so it inlines
// and avoids math.Abs's bit dance in the few places that fold millions
// of deltas per second.
func Abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Load atomically reads the float64 stored at addr.
func Load(addr *uint64) float64 {
	return math.Float64frombits(atomic.LoadUint64(addr))
}

// Store atomically writes v to addr.
func Store(addr *uint64, v float64) {
	atomic.StoreUint64(addr, math.Float64bits(v))
}
