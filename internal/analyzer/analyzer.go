// Package analyzer performs the syntactic and semantic analysis of §5.1:
// it identifies the recursive aggregate rule of a parsed Datalog program,
// extracts the aggregate operation G, the non-aggregate operation F (and
// its split into F' and the constant part C), classifies the remaining
// rules (initialisation, derived relations, facts), and harvests variable
// constraints for the condition checker.
package analyzer

import (
	"fmt"

	"powerlog/internal/agg"
	"powerlog/internal/ast"
	"powerlog/internal/expr"
	"powerlog/internal/smt"
)

// Info is the result of analysing a recursive aggregate program.
type Info struct {
	AST      *ast.Program
	HeadName string   // recursive predicate name
	Agg      agg.Kind // the aggregate G
	AggVar   string   // the aggregated head variable
	AggPos   int      // argument position of the aggregate term in the head

	// KeyVars are the head's group-by arguments (iteration index excluded).
	KeyVars     []string
	IterIndexed bool // head carries an "i+1"-style iteration index

	Rec         *RecInfo     // the recursive body
	ConstBodies []*ConstBody // the constant parts C (non-recursive bodies)

	InitRules    []*ast.Rule // non-recursive rules for HeadName (X⁰ / ΔX¹ sources)
	DerivedRules []*ast.Rule // non-recursive aggregate rules for other predicates (e.g. degree)
	Facts        []*ast.Rule // ground facts
	OtherRules   []*ast.Rule // remaining non-recursive rules (plain EDB views)

	Termination *ast.Termination // user-level ε clause, if any
	Constraints []smt.Constraint // harvested variable domain facts
}

// RecInfo describes the recursive body of the recursive aggregate rule.
type RecInfo struct {
	Rule       *ast.Rule
	Body       *ast.Body
	RecAtom    *ast.Pred // the occurrence of R in the body
	ValueVar   string    // the variable bound to R's value (the "x" of f)
	RecKeyVars []string  // R's key variables in the body occurrence

	F      *expr.Expr // full defining expression of AggVar
	FPrime *expr.Expr // F' after splitting an additive constant (== F when no split)
	CRec   *expr.Expr // additive constant split out of F for combining aggregates; nil if none

	Aux      []*ast.Pred    // non-recursive predicates joined in the body
	Compares []*ast.Compare // comparison atoms (non-assignment)
}

// ConstBody is one non-recursive body of the recursive rule: a C part
// contributing constant tuples each iteration (folded into ΔX¹ by MRA).
type ConstBody struct {
	Body *ast.Body
	Expr *expr.Expr  // defining expression of AggVar in this body
	Aux  []*ast.Pred // predicates supplying parameters (I, pi, node, ...)
}

// Error is a semantic analysis error.
type Error struct {
	Rule string
	Msg  string
}

func (e *Error) Error() string {
	if e.Rule != "" {
		return fmt.Sprintf("analyzer: rule %s: %s", e.Rule, e.Msg)
	}
	return "analyzer: " + e.Msg
}

func errf(rule *ast.Rule, format string, args ...any) error {
	label := ""
	if rule != nil {
		label = rule.Label
		if label == "" {
			label = rule.Head.Name
		}
	}
	return &Error{Rule: label, Msg: fmt.Sprintf(format, args...)}
}

// Analyze classifies the rules of prog and extracts the recursive
// aggregate structure. Programs without a recursive aggregate rule are
// rejected: plain Datalog is out of scope for PowerLog's engine.
func Analyze(prog *ast.Program) (*Info, error) {
	info := &Info{AST: prog}

	var recRules []*ast.Rule
	for _, r := range prog.Rules {
		if r.IsRecursive() {
			recRules = append(recRules, r)
		}
	}
	if len(recRules) == 0 {
		return nil, errf(nil, "no recursive rule found")
	}
	if len(recRules) > 1 {
		return nil, errf(recRules[1], "multiple recursive rules; PowerLog supports linear programs with one recursive aggregate rule (paper §2.1)")
	}
	rec := recRules[0]
	aggTerm, aggPos := rec.AggTermOf()
	if aggTerm == nil {
		return nil, errf(rec, "recursive rule has no aggregate in its head")
	}
	kind, err := agg.Parse(aggTerm.Op)
	if err != nil {
		return nil, errf(rec, "%v", err)
	}
	info.HeadName = rec.Head.Name
	info.Agg = kind
	info.AggVar = aggTerm.Var
	info.AggPos = aggPos
	info.Termination = rec.Term

	if err := analyzeHeadKeys(info, rec); err != nil {
		return nil, err
	}
	if err := splitBodies(info, rec); err != nil {
		return nil, err
	}
	classifyRules(info, prog, rec)
	harvestConstraints(info)
	return info, nil
}

// analyzeHeadKeys records the head's group-by variables and detects the
// "i+1" iteration-index convention of the paper's PageRank-style programs.
func analyzeHeadKeys(info *Info, rec *ast.Rule) error {
	for i, t := range rec.Head.Args {
		if i == info.AggPos {
			continue
		}
		switch t.Kind {
		case ast.TermVar:
			info.KeyVars = append(info.KeyVars, t.Var)
		case ast.TermArith:
			// Accept an iteration index only in the first position.
			if i == 0 {
				info.IterIndexed = true
				continue
			}
			return errf(rec, "head argument %d is an expression; only the first argument may be an iteration index", i)
		case ast.TermNum:
			if i == 0 {
				info.IterIndexed = true
				continue
			}
			return errf(rec, "head argument %d is a literal", i)
		default:
			return errf(rec, "unsupported head argument %d", i)
		}
	}
	if len(info.KeyVars) == 0 {
		return errf(rec, "recursive head has no group-by key variable")
	}
	return nil
}

// splitBodies separates the recursive body from the constant bodies and
// extracts F, F', and C.
func splitBodies(info *Info, rec *ast.Rule) error {
	for _, body := range rec.Bodies {
		recAtoms := 0
		for _, a := range body.Atoms {
			if a.Kind == ast.AtomPred && a.Pred.Name == rec.Head.Name {
				recAtoms++
			}
		}
		switch {
		case recAtoms > 1:
			return errf(rec, "non-linear recursion (predicate %s appears %d times in one body)", rec.Head.Name, recAtoms)
		case recAtoms == 1:
			if info.Rec != nil {
				return errf(rec, "multiple recursive bodies; only one is supported")
			}
			ri, err := analyzeRecBody(info, rec, body)
			if err != nil {
				return err
			}
			info.Rec = ri
		default:
			cb, err := analyzeConstBody(info, rec, body)
			if err != nil {
				return err
			}
			info.ConstBodies = append(info.ConstBodies, cb)
		}
	}
	if info.Rec == nil {
		return errf(rec, "recursive rule has no body mentioning %s", rec.Head.Name)
	}
	return nil
}

func analyzeRecBody(info *Info, rec *ast.Rule, body *ast.Body) (*RecInfo, error) {
	ri := &RecInfo{Rule: rec, Body: body}
	defs := map[string]*expr.Expr{}
	for _, a := range body.Atoms {
		switch a.Kind {
		case ast.AtomPred:
			if a.Pred.Name == rec.Head.Name {
				ri.RecAtom = a.Pred
			} else {
				ri.Aux = append(ri.Aux, a.Pred)
			}
		case ast.AtomCompare:
			if v, def, ok := a.Cmp.IsAssignment(); ok {
				if _, dup := defs[v]; dup {
					return nil, errf(rec, "variable %s defined twice in one body", v)
				}
				defs[v] = def
			} else {
				ri.Compares = append(ri.Compares, a.Cmp)
			}
		}
	}

	// Bind R's body occurrence: value var sits at the aggregate position;
	// the rest are R's key variables (iteration index skipped).
	if len(ri.RecAtom.Args) != len(rec.Head.Args) {
		return nil, errf(rec, "%s used with arity %d in body but %d in head",
			rec.Head.Name, len(ri.RecAtom.Args), len(rec.Head.Args))
	}
	for i, t := range ri.RecAtom.Args {
		if i == info.AggPos {
			if t.Kind != ast.TermVar {
				return nil, errf(rec, "the value position of %s in the body must be a variable", rec.Head.Name)
			}
			ri.ValueVar = t.Var
			continue
		}
		if i == 0 && info.IterIndexed {
			continue
		}
		switch t.Kind {
		case ast.TermVar:
			ri.RecKeyVars = append(ri.RecKeyVars, t.Var)
		case ast.TermWildcard:
			ri.RecKeyVars = append(ri.RecKeyVars, "_")
		default:
			return nil, errf(rec, "unsupported key term %s in body occurrence of %s", t, rec.Head.Name)
		}
	}

	// Resolve F: the defining expression of AggVar, chasing intermediate
	// assignments, stopping at the recursive value var and aux variables.
	f, err := resolve(info.AggVar, defs, map[string]bool{})
	if err != nil {
		return nil, errf(rec, "%v", err)
	}
	ri.F = f

	// Split an additive constant out of F for combining aggregates:
	// F = F' + C_rec with F' linear in the recursive value variable.
	ri.FPrime = f
	if op := agg.ByKind(info.Agg); !op.Selective() {
		if a, b, ok := expr.AffineIn(f, ri.ValueVar); ok {
			if bs := expr.Simplify(b); bs.Kind != expr.KNum || bs.Val != 0 {
				ri.FPrime = expr.Simplify(expr.Mul(a, expr.Var(ri.ValueVar)))
				ri.CRec = bs
			}
		}
	}
	return ri, nil
}

// resolve chases assignment definitions to express name in terms of
// non-assigned variables (the recursive value var, predicate-bound
// variables, and constants).
func resolve(name string, defs map[string]*expr.Expr, seen map[string]bool) (*expr.Expr, error) {
	def, ok := defs[name]
	if !ok {
		return expr.Var(name), nil
	}
	if seen[name] {
		return nil, fmt.Errorf("cyclic definition of %s", name)
	}
	seen[name] = true
	defer delete(seen, name)
	out := def
	for _, v := range def.Vars() {
		if _, isDef := defs[v]; !isDef {
			continue
		}
		sub, err := resolve(v, defs, seen)
		if err != nil {
			return nil, err
		}
		out = out.Subst(v, sub)
	}
	return out, nil
}

func analyzeConstBody(info *Info, rec *ast.Rule, body *ast.Body) (*ConstBody, error) {
	cb := &ConstBody{Body: body}
	defs := map[string]*expr.Expr{}
	for _, a := range body.Atoms {
		switch a.Kind {
		case ast.AtomPred:
			cb.Aux = append(cb.Aux, a.Pred)
		case ast.AtomCompare:
			if v, def, ok := a.Cmp.IsAssignment(); ok {
				defs[v] = def
			}
		}
	}
	e, err := resolve(info.AggVar, defs, map[string]bool{})
	if err != nil {
		return nil, errf(rec, "%v", err)
	}
	cb.Expr = e
	return cb, nil
}

// classifyRules buckets the remaining rules.
func classifyRules(info *Info, prog *ast.Program, rec *ast.Rule) {
	for _, r := range prog.Rules {
		if r == rec {
			continue
		}
		switch {
		case len(r.Bodies) == 0:
			info.Facts = append(info.Facts, r)
		case r.Head.Name == info.HeadName:
			info.InitRules = append(info.InitRules, r)
		default:
			if t, _ := r.AggTermOf(); t != nil {
				info.DerivedRules = append(info.DerivedRules, r)
			} else {
				info.OtherRules = append(info.OtherRules, r)
			}
		}
	}
}

// harvestConstraints extracts variable domain facts used by the condition
// checker: explicit comparison atoms "v op const" in the recursive body,
// plus the inference that a variable bound by a count-aggregated derived
// relation (e.g. degree) is strictly positive — the paper's
// "(assert (> d 0))" preamble for PageRank.
func harvestConstraints(info *Info) {
	if info.Rec == nil {
		return
	}
	for _, c := range info.Rec.Compares {
		v, bound, rel, ok := varConstCompare(c)
		if !ok {
			continue
		}
		info.Constraints = append(info.Constraints, smt.Constraint{Var: v, Rel: rel, Bound: bound})
	}
	countPreds := map[string]int{} // predicate name → agg position
	for _, r := range info.DerivedRules {
		if t, pos := r.AggTermOf(); t != nil && (t.Op == "count" || t.Op == "mcount") {
			countPreds[r.Head.Name] = pos
		}
	}
	for _, p := range info.Rec.Aux {
		pos, ok := countPreds[p.Name]
		if !ok || pos >= len(p.Args) {
			continue
		}
		if t := p.Args[pos]; t.Kind == ast.TermVar {
			info.Constraints = append(info.Constraints, smt.Constraint{Var: t.Var, Rel: smt.Gt, Bound: 0})
		}
	}
}

// JoinPredicate returns the name of the recursive body's edge-like
// predicate: the one that binds a recursive key variable to the
// propagated head key variable. The compiler registers the propagation
// graph under this name; CLIs use it to know where to load a graph.
func (info *Info) JoinPredicate() (string, error) {
	recKeys := map[string]bool{}
	for _, v := range info.Rec.RecKeyVars {
		recKeys[v] = true
	}
	propagated := ""
	for _, v := range info.KeyVars {
		if !recKeys[v] {
			propagated = v
		}
	}
	if propagated == "" {
		return "", &Error{Rule: info.HeadName, Msg: "no propagated head key"}
	}
	for _, p := range info.Rec.Aux {
		hasRec, hasHead := false, false
		for _, t := range p.Args {
			if t.Kind != ast.TermVar {
				continue
			}
			if recKeys[t.Var] {
				hasRec = true
			}
			if t.Var == propagated {
				hasHead = true
			}
		}
		if hasRec && hasHead {
			return p.Name, nil
		}
	}
	return "", &Error{Rule: info.HeadName, Msg: "no predicate joins a recursive key to the head key"}
}

// varConstCompare matches atoms of the form "v op num" or "num op v".
func varConstCompare(c *ast.Compare) (v string, bound float64, rel smt.Rel, ok bool) {
	flip := map[smt.Rel]smt.Rel{smt.Ge: smt.Le, smt.Gt: smt.Lt, smt.Le: smt.Ge, smt.Lt: smt.Gt}
	var r smt.Rel
	switch c.Op {
	case ">=":
		r = smt.Ge
	case ">":
		r = smt.Gt
	case "<=":
		r = smt.Le
	case "<":
		r = smt.Lt
	default:
		return "", 0, 0, false
	}
	if c.LHS.Kind == expr.KVar && c.RHS.Kind == expr.KNum {
		return c.LHS.Name, c.RHS.Val, r, true
	}
	if c.LHS.Kind == expr.KNum && c.RHS.Kind == expr.KVar {
		return c.RHS.Name, c.LHS.Val, flip[r], true
	}
	return "", 0, 0, false
}
