package analyzer

import (
	"testing"

	"powerlog/internal/parser"
	"powerlog/internal/progs"
)

func TestJoinPredicateCatalogue(t *testing.T) {
	want := map[string]string{
		progs.SSSP:       "edge",
		progs.CC:         "edge",
		progs.PageRank:   "edge",
		progs.Adsorption: "A",
		progs.Katz:       "edge",
		progs.BP:         "E",
		progs.PathsDAG:   "dagedge",
		progs.Cost:       "dagedge",
		progs.Viterbi:    "trans",
		progs.SimRank:    "pairedge",
		progs.LCA:        "parent",
		progs.APSP:       "edge",
	}
	for src, wantName := range want {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		info, err := Analyze(prog)
		if err != nil {
			t.Fatal(err)
		}
		got, err := info.JoinPredicate()
		if err != nil {
			t.Errorf("%s: %v", info.HeadName, err)
			continue
		}
		if got != wantName {
			t.Errorf("%s: join predicate = %q, want %q", info.HeadName, got, wantName)
		}
	}
}

func TestJoinPredicateMissing(t *testing.T) {
	// Head key Y is never joined: the only aux pred binds X only.
	prog, err := parser.Parse(`
a(X,v) :- X=0, v=0.
a(Y,min[v1]) :- a(X,v), attr(X,q), v1 = v + q, Y = 1.
`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(prog)
	if err != nil {
		t.Skip("analysis already rejects this shape") // either outcome is fine
	}
	if _, err := info.JoinPredicate(); err == nil {
		t.Error("expected join-predicate detection to fail")
	}
}
