package analyzer

import (
	"strings"
	"testing"

	"powerlog/internal/agg"
	"powerlog/internal/parser"
	"powerlog/internal/progs"
	"powerlog/internal/smt"
)

func analyze(t *testing.T, src string) *Info {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return info
}

func TestAnalyzeSSSP(t *testing.T) {
	info := analyze(t, progs.SSSP)
	if info.HeadName != "sssp" || info.Agg != agg.Min || info.AggVar != "dy" {
		t.Errorf("head=%s agg=%v var=%s", info.HeadName, info.Agg, info.AggVar)
	}
	if info.IterIndexed {
		t.Error("SSSP is not iteration-indexed")
	}
	if len(info.KeyVars) != 1 || info.KeyVars[0] != "Y" {
		t.Errorf("keys = %v", info.KeyVars)
	}
	r := info.Rec
	if r.ValueVar != "dx" {
		t.Errorf("value var = %s", r.ValueVar)
	}
	if got := r.F.String(); got != "dx + dxy" {
		t.Errorf("F = %q", got)
	}
	if r.FPrime.String() != r.F.String() {
		t.Errorf("selective aggregate must not split F: %q", r.FPrime)
	}
	if len(r.Aux) != 1 || r.Aux[0].Name != "edge" {
		t.Errorf("aux = %v", r.Aux)
	}
	if len(info.InitRules) != 1 {
		t.Errorf("init rules = %d", len(info.InitRules))
	}
	if len(info.ConstBodies) != 0 {
		t.Errorf("const bodies = %d", len(info.ConstBodies))
	}
}

func TestAnalyzePageRank(t *testing.T) {
	info := analyze(t, progs.PageRank)
	if info.HeadName != "rank" || info.Agg != agg.Sum {
		t.Fatalf("head=%s agg=%v", info.HeadName, info.Agg)
	}
	if !info.IterIndexed {
		t.Error("PageRank head is iteration-indexed")
	}
	if len(info.KeyVars) != 1 || info.KeyVars[0] != "Y" {
		t.Errorf("keys = %v", info.KeyVars)
	}
	if got := info.Rec.F.String(); got != "0.85 * rx / d" {
		t.Errorf("F = %q", got)
	}
	if info.Rec.CRec != nil {
		t.Errorf("PageRank's recursive body has no additive constant, got %v", info.Rec.CRec)
	}
	if len(info.ConstBodies) != 1 {
		t.Fatalf("const bodies = %d", len(info.ConstBodies))
	}
	if got := info.ConstBodies[0].Expr.String(); got != "0.15" {
		t.Errorf("C = %q", got)
	}
	if len(info.DerivedRules) != 1 || info.DerivedRules[0].Head.Name != "degree" {
		t.Errorf("derived = %v", info.DerivedRules)
	}
	if info.Termination == nil || info.Termination.Threshold != 0.0001 {
		t.Errorf("termination = %+v", info.Termination)
	}
	// The count-aggregated degree must yield the d > 0 constraint.
	found := false
	for _, c := range info.Constraints {
		if c.Var == "d" && c.Rel == smt.Gt && c.Bound == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("missing inferred d > 0 constraint: %v", info.Constraints)
	}
}

func TestAnalyzeCCIdentityF(t *testing.T) {
	info := analyze(t, progs.CC)
	if got := info.Rec.F.String(); got != "v" {
		t.Errorf("F = %q, want identity", got)
	}
	if info.Rec.ValueVar != "v" {
		t.Errorf("value var = %s", info.Rec.ValueVar)
	}
}

func TestAnalyzeAdsorptionConstBody(t *testing.T) {
	info := analyze(t, progs.Adsorption)
	if len(info.ConstBodies) != 1 {
		t.Fatalf("const bodies = %d", len(info.ConstBodies))
	}
	cb := info.ConstBodies[0]
	if got := cb.Expr.String(); got != "i * p2" {
		t.Errorf("C expr = %q", got)
	}
	if len(cb.Aux) != 2 {
		t.Errorf("C aux preds = %v", cb.Aux)
	}
	if got := info.Rec.F.String(); got != "0.7 * a * (w * p)" && got != "0.7 * a * w * p" {
		t.Errorf("F = %q", got)
	}
}

func TestAnalyzeViterbiConstraints(t *testing.T) {
	info := analyze(t, progs.Viterbi)
	if info.Agg != agg.Max {
		t.Fatalf("agg = %v", info.Agg)
	}
	var ge, le bool
	for _, c := range info.Constraints {
		if c.Var == "w" && c.Rel == smt.Ge && c.Bound == 0 {
			ge = true
		}
		if c.Var == "w" && c.Rel == smt.Le && c.Bound == 1 {
			le = true
		}
	}
	if !ge || !le {
		t.Errorf("w∈[0,1] constraints missing: %v", info.Constraints)
	}
}

func TestAnalyzeAPSPPairKeys(t *testing.T) {
	info := analyze(t, progs.APSP)
	if len(info.KeyVars) != 2 || info.KeyVars[0] != "X" || info.KeyVars[1] != "Z" {
		t.Errorf("keys = %v", info.KeyVars)
	}
	if len(info.Rec.RecKeyVars) != 2 || info.Rec.RecKeyVars[0] != "X" || info.Rec.RecKeyVars[1] != "Y" {
		t.Errorf("rec keys = %v", info.Rec.RecKeyVars)
	}
}

func TestAnalyzeCostSplitsAdditiveConstant(t *testing.T) {
	info := analyze(t, progs.Cost)
	r := info.Rec
	if r.CRec == nil {
		t.Fatal("cost F = c + w should split an additive constant for sum")
	}
	if got := r.CRec.String(); got != "w" {
		t.Errorf("C_rec = %q", got)
	}
	if got := r.FPrime.String(); got != "c" {
		t.Errorf("F' = %q", got)
	}
}

func TestAnalyzeChainedAssignments(t *testing.T) {
	info := analyze(t, `
h(X,v) :- X=0, v=1.
h(Y,sum[out]) :- h(X,v), edge(X,Y,w), scaled = v * w, out = scaled * 0.5.
`)
	if got := info.Rec.F.String(); got != "v * w * 0.5" {
		t.Errorf("chased F = %q", got)
	}
}

func TestAnalyzeAllCatalogPrograms(t *testing.T) {
	for _, p := range progs.Catalog() {
		prog, err := parser.Parse(p.Source)
		if err != nil {
			t.Errorf("%s: parse: %v", p.Name, err)
			continue
		}
		info, err := Analyze(prog)
		if err != nil {
			t.Errorf("%s: analyze: %v", p.Name, err)
			continue
		}
		if got := info.Agg.String(); got != p.Aggregate {
			t.Errorf("%s: aggregate = %s, want %s", p.Name, got, p.Aggregate)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cases := []struct {
		name, src, frag string
	}{
		{"no recursion", `a(X,v) :- b(X,v).`, "no recursive rule"},
		{"no aggregate", `a(X,v) :- a(Y,v), e(Y,X).`, "no aggregate"},
		{"nonlinear", `a(X,sum[v]) :- a(Y,v1), a(Z,v2), e(Y,Z,X), v = v1+v2.`, "non-linear"},
		{"two recursive rules", `
a(X,sum[v]) :- a(X,u), e(X,_), v = u.
a(X,sum[w]) :- a(X,u), w = u + 1.`, "multiple recursive rules"},
		{"cyclic defs", `a(Y,sum[v]) :- a(X,u), e(X,Y), v = w + u, w = v.`, "cyclic"},
		{"double def", `a(Y,sum[v]) :- a(X,u), e(X,Y), v = u, v = u + 1.`, "defined twice"},
		{"no keys", `a(sum[v]) :- a(u), v = u.`, "no group-by key"},
		{"arity mismatch", `a(X,Y,sum[v]) :- a(X,u), e(X,Y), v = u.`, "arity"},
		{"mean agg ok to parse", `a(Y,mean[v]) :- a(X,u), e(X,Y), v = u.`, ""},
	}
	for _, c := range cases {
		prog, err := parser.Parse(c.src)
		if err != nil {
			t.Errorf("%s: parse failed: %v", c.name, err)
			continue
		}
		_, err = Analyze(prog)
		if c.frag == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: expected error containing %q", c.name, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error = %q, want substring %q", c.name, err, c.frag)
		}
	}
}
