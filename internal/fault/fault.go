// Package fault is a deterministic, seeded fault-injection framework
// for the runtime's robustness tests and the plbench recovery
// experiment. Every injection decision is a pure function of (seed,
// fault site, link, event index), so a failing chaos run reproduces
// from its seed regardless of goroutine interleaving.
//
// Faults are restricted to the surfaces where the recovery machinery
// has an answer:
//
//   - the worker↔worker data plane (a fault-wrapping transport.Conn:
//     transiently failed, delayed, or duplicated Data sends, dropped
//     EndPhase markers, a healable link partition) — healed by the
//     transport retry path and the round-stamped marker protocol;
//   - worker pacing (StallFor drives the runtime's stall-decorating
//     BarrierPolicy) — absorbed by BSP barriers, the SSP staleness
//     gate, and the async master's polling;
//   - run-level events (CrashRound aborts the run so a restart restores
//     from Config.SnapshotDir; MasterRestartRound makes the master lose
//     its termination-detector state mid-run).
//
// Master↔worker control traffic is deliberately NOT faulted: the
// termination protocol assumes a reliable coordinator channel, and a
// lost Stop verdict has no in-protocol recovery — that failure mode is
// modelled by CrashRound instead.
package fault

import (
	"fmt"
	"strings"
	"time"
)

// Spec declares which faults to inject. The zero Spec injects nothing.
type Spec struct {
	// Seed makes every injection decision reproducible.
	Seed int64

	// StallEvery / StallDur: every StallEvery-th compute pass of each
	// worker sleeps for StallDur before starting (a straggler).
	StallEvery int
	StallDur   time.Duration

	// DropEndPhase is the probability an EndPhase barrier marker is
	// silently lost in transit.
	DropEndPhase float64

	// SendFail is the probability a data-plane send transiently fails
	// (Send returns an error without delivering; TrySend reports
	// back-pressure). The sender's retry path is expected to heal it.
	SendFail float64

	// DupData is the probability a delivered Data batch is delivered a
	// second time. Only sound for selective (min/max) aggregates, whose
	// folds are idempotent — Theorem 3's replay tolerance.
	DupData float64

	// DelayProb / DelayDur: probability an outgoing message is held for
	// DelayDur before delivery (models a slow link, reorders across
	// destination pairs but never within one).
	DelayProb float64
	DelayDur  time.Duration

	// PartA/PartB with [PartFrom, PartTo): sends between the two workers
	// (both directions) fail while the link's event counter is inside
	// the window — a partition that heals after enough attempts.
	PartA, PartB     int
	PartFrom, PartTo int

	// CrashRound: the master aborts the whole run at this round (1-based;
	// 0 = never) — the "crash" half of a crash/restore drill. A restart
	// with Config.RestoreDir is the other half.
	CrashRound int

	// MasterRestartRound: at this round (1-based; 0 = never) the master
	// forgets its termination-detector state (armed flags, previous
	// stable snapshot and aggregate), as a restarted master process
	// would. The detectors are self-stabilising, so the run must still
	// terminate with the correct result.
	MasterRestartRound int

	// CrashWorkerID / CrashWorkerPass: worker CrashWorkerID exits
	// silently — no Stop handshake, no final flush — at the start of its
	// CrashWorkerPass-th compute pass (1-based; 0 = never). Unlike
	// CrashRound this kills exactly one worker and leaves the rest of
	// the fleet running, which is what the membership layer's live
	// re-join recovers from (DESIGN.md §11).
	CrashWorkerID   int
	CrashWorkerPass int
}

// Enabled reports whether the spec injects anything at all.
func (s Spec) Enabled() bool {
	return s.StallEvery > 0 || s.DropEndPhase > 0 || s.SendFail > 0 || s.DupData > 0 ||
		s.DelayProb > 0 || s.PartTo > s.PartFrom || s.CrashRound > 0 || s.MasterRestartRound > 0 ||
		s.CrashWorkerPass > 0
}

// String renders the spec in ParseSpec's syntax.
func (s Spec) String() string {
	var parts []string
	add := func(format string, args ...any) { parts = append(parts, fmt.Sprintf(format, args...)) }
	if s.Seed != 0 {
		add("seed=%d", s.Seed)
	}
	if s.StallEvery > 0 {
		add("stall=%d:%v", s.StallEvery, s.StallDur)
	}
	if s.DropEndPhase > 0 {
		add("dropend=%g", s.DropEndPhase)
	}
	if s.SendFail > 0 {
		add("sendfail=%g", s.SendFail)
	}
	if s.DupData > 0 {
		add("dup=%g", s.DupData)
	}
	if s.DelayProb > 0 {
		add("delay=%g:%v", s.DelayProb, s.DelayDur)
	}
	if s.PartTo > s.PartFrom {
		add("partition=%d-%d:%d:%d", s.PartA, s.PartB, s.PartFrom, s.PartTo)
	}
	if s.CrashRound > 0 {
		add("crash=%d", s.CrashRound)
	}
	if s.MasterRestartRound > 0 {
		add("mrestart=%d", s.MasterRestartRound)
	}
	if s.CrashWorkerPass > 0 {
		add("crashw=%d:%d", s.CrashWorkerID, s.CrashWorkerPass)
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the plbench -faults syntax: comma-separated k=v
// clauses, e.g.
//
//	seed=42,stall=5:300us,dropend=0.2,sendfail=0.1,delay=0.1:200us,
//	dup=0.05,partition=0-1:50:250,crash=20,mrestart=10
func ParseSpec(text string) (Spec, error) {
	var s Spec
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	for _, clause := range strings.Split(text, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(clause), "=")
		if !ok {
			return s, fmt.Errorf("fault: clause %q is not key=value", clause)
		}
		var err error
		switch key {
		case "seed":
			_, err = fmt.Sscanf(val, "%d", &s.Seed)
		case "stall":
			every, durText, found := strings.Cut(val, ":")
			if !found {
				return s, fmt.Errorf("fault: stall wants EVERY:DURATION, got %q", val)
			}
			if _, err = fmt.Sscanf(every, "%d", &s.StallEvery); err == nil {
				s.StallDur, err = time.ParseDuration(durText)
			}
		case "dropend":
			_, err = fmt.Sscanf(val, "%g", &s.DropEndPhase)
		case "sendfail":
			_, err = fmt.Sscanf(val, "%g", &s.SendFail)
		case "dup":
			_, err = fmt.Sscanf(val, "%g", &s.DupData)
		case "delay":
			prob, durText, found := strings.Cut(val, ":")
			if !found {
				return s, fmt.Errorf("fault: delay wants PROB:DURATION, got %q", val)
			}
			if _, err = fmt.Sscanf(prob, "%g", &s.DelayProb); err == nil {
				s.DelayDur, err = time.ParseDuration(durText)
			}
		case "partition":
			if _, err = fmt.Sscanf(val, "%d-%d:%d:%d", &s.PartA, &s.PartB, &s.PartFrom, &s.PartTo); err == nil &&
				s.PartTo <= s.PartFrom {
				return s, fmt.Errorf("fault: partition window [%d,%d) is empty", s.PartFrom, s.PartTo)
			}
		case "crash":
			_, err = fmt.Sscanf(val, "%d", &s.CrashRound)
		case "mrestart":
			_, err = fmt.Sscanf(val, "%d", &s.MasterRestartRound)
		case "crashw":
			if _, err = fmt.Sscanf(val, "%d:%d", &s.CrashWorkerID, &s.CrashWorkerPass); err == nil &&
				s.CrashWorkerPass <= 0 {
				return s, fmt.Errorf("fault: crashw wants WORKER:PASS with PASS >= 1, got %q", val)
			}
		default:
			return s, fmt.Errorf("fault: unknown clause %q", key)
		}
		if err != nil {
			return s, fmt.Errorf("fault: bad %s value %q: %w", key, val, err)
		}
	}
	return s, nil
}

// Injector makes the spec's injection decisions. It is stateless and
// read-only after construction, so one Injector is safely shared by
// every worker, conn wrapper, and the master.
type Injector struct {
	spec Spec
}

// New builds an injector for spec. Returns nil for a spec that injects
// nothing, so callers can gate on `inj != nil` with no spec knowledge.
func New(spec Spec) *Injector {
	if !spec.Enabled() {
		return nil
	}
	return &Injector{spec: spec}
}

// Spec returns the injector's spec.
func (i *Injector) Spec() Spec { return i.spec }

// Fault sites: independent decision streams per fault class, so e.g.
// enabling delays does not reshuffle which sends fail.
const (
	siteStall uint64 = iota + 1
	siteDrop
	siteFail
	siteDup
	siteDelay
)

// splitmix64 is the SplitMix64 finaliser — a full-avalanche mix, so
// consecutive event indexes decorrelate completely.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// roll returns a deterministic uniform [0,1) for one (site, link, event).
func (i *Injector) roll(site uint64, from, to, idx int) float64 {
	x := uint64(i.spec.Seed)
	x = splitmix64(x ^ site)
	x = splitmix64(x ^ uint64(from+1)<<32 ^ uint64(to+1))
	x = splitmix64(x ^ uint64(idx))
	return float64(x>>11) / (1 << 53)
}

// StallFor returns how long worker should stall before its pass-th
// compute pass (0 = no stall).
func (i *Injector) StallFor(worker, pass int) time.Duration {
	s := i.spec
	if s.StallEvery <= 0 || pass <= 0 || pass%s.StallEvery != 0 {
		return 0
	}
	return s.StallDur
}

// CrashRound returns the master round at which to abort the run
// (0 = never).
func (i *Injector) CrashRound() int { return i.spec.CrashRound }

// MasterRestartRound returns the master round at which the termination
// detector loses its state (0 = never).
func (i *Injector) MasterRestartRound() int { return i.spec.MasterRestartRound }

// WorkerCrashPass returns the compute pass (1-based) at whose start the
// given worker silently exits, or 0 if it never crashes.
func (i *Injector) WorkerCrashPass(worker int) int {
	if i.spec.CrashWorkerPass > 0 && worker == i.spec.CrashWorkerID {
		return i.spec.CrashWorkerPass
	}
	return 0
}

// partitioned reports whether the link (from,to) is inside its
// partition window at event idx. Each failed attempt advances the
// link's counter, so the partition heals after PartTo-PartFrom events —
// a retrying sender rides it out.
func (i *Injector) partitioned(from, to, idx int) bool {
	s := i.spec
	if s.PartTo <= s.PartFrom {
		return false
	}
	pair := (from == s.PartA && to == s.PartB) || (from == s.PartB && to == s.PartA)
	return pair && idx >= s.PartFrom && idx < s.PartTo
}
