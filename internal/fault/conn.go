package fault

import (
	"errors"
	"time"

	"powerlog/internal/transport"
)

// ErrInjected is the error returned by a fault-wrapped Send whose
// delivery was suppressed. Per the transport contract, the message was
// NOT consumed: ownership of a Data batch stays with the caller, whose
// retry path is expected to heal the fault.
var ErrInjected = errors.New("fault: injected send failure")

// Wrap decorates conn with the injector's data-plane faults. The
// wrapper preserves the TrySender capability when the inner conn has
// it, so the runtime's back-pressure handling is unchanged. Wrapped
// conns inherit the transport's concurrency contract (Send is safe for
// concurrent use) except for the fault event counters, which assume the
// runtime's one-comm-goroutine-per-conn discipline — the counters exist
// only to make injection decisions reproducible, and the runtime never
// sends on a worker conn from two goroutines.
func (i *Injector) Wrap(conn transport.Conn) transport.Conn {
	if i == nil {
		return conn
	}
	fc := &faultConn{inner: conn, inj: i, counts: make([]int, conn.Workers()+1)}
	if try, ok := conn.(transport.TrySender); ok {
		return &faultTryConn{faultConn: fc, try: try}
	}
	return fc
}

// faultConn interposes on the data plane: Data batches and EndPhase
// markers between workers. Master-bound traffic and control kinds pass
// through untouched (see the package comment for why).
type faultConn struct {
	inner  transport.Conn
	inj    *Injector
	counts []int // per-destination event counter (single comm goroutine)
}

func (c *faultConn) ID() int                         { return c.inner.ID() }
func (c *faultConn) Workers() int                    { return c.inner.Workers() }
func (c *faultConn) Inbox() <-chan transport.Message { return c.inner.Inbox() }
func (c *faultConn) Close() error                    { return c.inner.Close() }

// faultable limits injection to worker↔worker Data and EndPhase
// traffic. Snapshot-episode marks are spared: they belong to the
// recovery machinery itself, which models coordinator-adjacent loss via
// CrashRound instead.
func (c *faultConn) faultable(to int, kind transport.Kind) bool {
	return to >= 0 && to < c.inner.Workers() &&
		(kind == transport.Data || kind == transport.EndPhase)
}

// next returns the link's event index and advances it.
func (c *faultConn) next(to int) int {
	idx := c.counts[to]
	c.counts[to] = idx + 1
	return idx
}

// decide rolls the injection decisions for one event. dropped swallows
// the message (lost marker), failed suppresses delivery with an error
// or back-pressure, dup asks for a duplicate delivery of a Data batch.
func (c *faultConn) decide(to int, kind transport.Kind, idx int) (dropped, failed, dup bool) {
	i := c.inj
	s := i.spec
	from := c.inner.ID()
	if kind == transport.EndPhase && s.DropEndPhase > 0 &&
		i.roll(siteDrop, from, to, idx) < s.DropEndPhase {
		return true, false, false
	}
	if i.partitioned(from, to, idx) ||
		(s.SendFail > 0 && i.roll(siteFail, from, to, idx) < s.SendFail) {
		return false, true, false
	}
	if s.DelayProb > 0 && i.roll(siteDelay, from, to, idx) < s.DelayProb {
		time.Sleep(s.DelayDur)
	}
	dup = kind == transport.Data && s.DupData > 0 && i.roll(siteDup, from, to, idx) < s.DupData
	return false, false, dup
}

// sendDup delivers a copy of a Data batch through send, recycling the
// copy when delivery reports failure (undelivered = ownership back to
// this caller). Duplicate delivery models a retransmission racing its
// original — sound for selective aggregates, whose folds are
// idempotent.
func sendDup(m transport.Message, send func(transport.Message) bool) {
	dupKVs := transport.GetBatch(len(m.KVs))
	dupKVs = append(dupKVs, m.KVs...)
	dupMsg := transport.Message{Kind: transport.Data, From: m.From, Round: m.Round, KVs: dupKVs}
	if !send(dupMsg) {
		transport.PutBatch(dupKVs)
	}
}

func (c *faultConn) Send(to int, m transport.Message) error {
	if !c.faultable(to, m.Kind) {
		return c.inner.Send(to, m)
	}
	dropped, failed, dup := c.decide(to, m.Kind, c.next(to))
	if dropped {
		return nil // the marker is gone; duplicates from retransmission heal it
	}
	if failed {
		return ErrInjected // not delivered; the caller keeps ownership and retries
	}
	if dup {
		sendDup(m, func(d transport.Message) bool { return c.inner.Send(to, d) == nil })
	}
	return c.inner.Send(to, m)
}

// faultTryConn adds the TrySender capability on top of faultConn.
// Injected failures surface as back-pressure (false, nil): the sender's
// existing retry loop re-attempts, each attempt advances the link's
// event counter, and windowed faults (the partition) heal underneath it.
type faultTryConn struct {
	*faultConn
	try transport.TrySender
}

func (c *faultTryConn) TrySend(to int, m transport.Message) (bool, error) {
	if !c.faultable(to, m.Kind) {
		return c.try.TrySend(to, m)
	}
	dropped, failed, dup := c.decide(to, m.Kind, c.next(to))
	if dropped {
		return true, nil // swallowed: the sender believes it delivered
	}
	if failed {
		return false, nil // looks like back-pressure; the sender retries
	}
	if dup {
		sendDup(m, func(d transport.Message) bool {
			ok, err := c.try.TrySend(to, d)
			return ok && err == nil
		})
	}
	return c.try.TrySend(to, m)
}
