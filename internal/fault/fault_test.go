package fault

import (
	"errors"
	"testing"
	"time"

	"powerlog/internal/transport"
)

func TestParseSpecRoundTrip(t *testing.T) {
	text := "seed=42,stall=5:300µs,dropend=0.2,sendfail=0.1,dup=0.05,delay=0.1:200µs,partition=0-1:50:250,crash=20,mrestart=10"
	s, err := ParseSpec(text)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 42 || s.StallEvery != 5 || s.StallDur != 300*time.Microsecond ||
		s.DropEndPhase != 0.2 || s.SendFail != 0.1 || s.DupData != 0.05 ||
		s.DelayProb != 0.1 || s.DelayDur != 200*time.Microsecond ||
		s.PartA != 0 || s.PartB != 1 || s.PartFrom != 50 || s.PartTo != 250 ||
		s.CrashRound != 20 || s.MasterRestartRound != 10 {
		t.Fatalf("parsed %+v", s)
	}
	s2, err := ParseSpec(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s {
		t.Fatalf("String round trip: %+v vs %+v", s2, s)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{"nonsense", "stall=5", "delay=0.1", "partition=0-1:9:9", "zzz=1", "seed=abc"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) should fail", bad)
		}
	}
	s, err := ParseSpec("  ")
	if err != nil || s.Enabled() {
		t.Errorf("blank spec should parse to disabled, got %+v, %v", s, err)
	}
}

func TestNewNilForDisabled(t *testing.T) {
	if New(Spec{Seed: 7}) != nil {
		t.Error("a spec with only a seed injects nothing and should yield a nil injector")
	}
	if New(Spec{SendFail: 0.5}) == nil {
		t.Error("enabled spec should yield an injector")
	}
}

func TestDeterminism(t *testing.T) {
	a := New(Spec{Seed: 1, SendFail: 0.3, DropEndPhase: 0.3})
	b := New(Spec{Seed: 1, SendFail: 0.3, DropEndPhase: 0.3})
	c := New(Spec{Seed: 2, SendFail: 0.3, DropEndPhase: 0.3})
	same, diff := 0, 0
	for idx := 0; idx < 1000; idx++ {
		ra, rb, rc := a.roll(siteFail, 0, 1, idx), b.roll(siteFail, 0, 1, idx), c.roll(siteFail, 0, 1, idx)
		if ra != rb {
			t.Fatalf("same seed diverged at %d: %v vs %v", idx, ra, rb)
		}
		if ra == rc {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical decision streams")
	}
	_ = same
}

func TestRollRate(t *testing.T) {
	i := New(Spec{Seed: 99, SendFail: 0.25})
	hits := 0
	const n = 4000
	for idx := 0; idx < n; idx++ {
		if i.roll(siteFail, 2, 3, idx) < 0.25 {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.2 || rate > 0.3 {
		t.Errorf("rate %v far from configured 0.25", rate)
	}
}

func TestStallFor(t *testing.T) {
	i := New(Spec{Seed: 1, StallEvery: 4, StallDur: time.Millisecond})
	if d := i.StallFor(0, 4); d != time.Millisecond {
		t.Errorf("pass 4 should stall, got %v", d)
	}
	if d := i.StallFor(0, 5); d != 0 {
		t.Errorf("pass 5 should not stall, got %v", d)
	}
	if d := i.StallFor(0, 0); d != 0 {
		t.Errorf("pass 0 should not stall, got %v", d)
	}
}

func TestPartitionWindowHeals(t *testing.T) {
	i := New(Spec{Seed: 1, PartA: 0, PartB: 1, PartFrom: 2, PartTo: 5})
	for idx, want := range []bool{false, false, true, true, true, false, false} {
		if got := i.partitioned(0, 1, idx); got != want {
			t.Errorf("partitioned(0,1,%d) = %v, want %v", idx, got, want)
		}
		if got := i.partitioned(1, 0, idx); got != want {
			t.Errorf("partitioned(1,0,%d) = %v, want %v", idx, got, want)
		}
	}
	if i.partitioned(0, 2, 3) || i.partitioned(2, 1, 3) {
		t.Error("partition leaked onto unrelated links")
	}
}

// recordConn captures deliveries for wrapper tests.
type recordConn struct {
	id, workers int
	sent        []transport.Message
	inbox       chan transport.Message
	failNext    bool
}

func (r *recordConn) ID() int      { return r.id }
func (r *recordConn) Workers() int { return r.workers }
func (r *recordConn) Send(to int, m transport.Message) error {
	if r.failNext {
		r.failNext = false
		return errors.New("inner failure")
	}
	m.From = r.id
	r.sent = append(r.sent, m)
	return nil
}
func (r *recordConn) Inbox() <-chan transport.Message { return r.inbox }
func (r *recordConn) Close() error                    { return nil }

func TestWrapNilInjector(t *testing.T) {
	var i *Injector
	inner := &recordConn{workers: 2}
	if i.Wrap(inner) != transport.Conn(inner) {
		t.Error("nil injector must return the conn unchanged")
	}
}

func TestWrapDropsEndPhaseDeterministically(t *testing.T) {
	run := func() (delivered, swallowed int) {
		inner := &recordConn{id: 0, workers: 2}
		conn := New(Spec{Seed: 5, DropEndPhase: 0.5}).Wrap(inner)
		for k := 0; k < 200; k++ {
			if err := conn.Send(1, transport.Message{Kind: transport.EndPhase, Round: k}); err != nil {
				t.Fatalf("dropped markers must look sent, got %v", err)
			}
		}
		return len(inner.sent), 200 - len(inner.sent)
	}
	d1, s1 := run()
	d2, s2 := run()
	if d1 != d2 || s1 != s2 {
		t.Fatalf("same seed, different outcomes: %d/%d vs %d/%d", d1, s1, d2, s2)
	}
	if s1 == 0 || d1 == 0 {
		t.Fatalf("0.5 drop rate should both drop and deliver (delivered %d, swallowed %d)", d1, s1)
	}
}

func TestWrapFailsSendWithoutConsuming(t *testing.T) {
	inner := &recordConn{id: 0, workers: 2}
	conn := New(Spec{Seed: 3, PartA: 0, PartB: 1, PartFrom: 0, PartTo: 3}).Wrap(inner)
	kvs := transport.GetBatch(1)
	kvs = append(kvs, transport.KV{K: 1, V: 2})
	var err error
	attempts := 0
	for attempts < 10 {
		err = conn.Send(1, transport.Message{Kind: transport.Data, KVs: kvs})
		attempts++
		if err == nil {
			break
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("unexpected error %v", err)
		}
	}
	if err != nil || attempts != 4 {
		t.Fatalf("partition [0,3) should heal on attempt 4, got err=%v attempts=%d", err, attempts)
	}
	if len(inner.sent) != 1 || len(inner.sent[0].KVs) != 1 || inner.sent[0].KVs[0].K != 1 {
		t.Fatalf("healed delivery wrong: %+v", inner.sent)
	}
}

func TestWrapSparesControlPlane(t *testing.T) {
	inner := &recordConn{id: 0, workers: 2}
	conn := New(Spec{Seed: 3, SendFail: 1.0, DropEndPhase: 1.0}).Wrap(inner)
	// Master-bound and control messages must never be faulted.
	master := transport.MasterID(2)
	if err := conn.Send(master, transport.Message{Kind: transport.StatsReply}); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(1, transport.Message{Kind: transport.SnapMark}); err != nil {
		t.Fatal(err)
	}
	if len(inner.sent) != 2 {
		t.Fatalf("control plane was faulted: %+v", inner.sent)
	}
}

func TestWrapDuplicatesData(t *testing.T) {
	inner := &recordConn{id: 0, workers: 2}
	conn := New(Spec{Seed: 11, DupData: 1.0}).Wrap(inner)
	kvs := transport.GetBatch(2)
	kvs = append(kvs, transport.KV{K: 7, V: 1}, transport.KV{K: 8, V: 2})
	if err := conn.Send(1, transport.Message{Kind: transport.Data, KVs: kvs}); err != nil {
		t.Fatal(err)
	}
	if len(inner.sent) != 2 {
		t.Fatalf("expected duplicate delivery, got %d messages", len(inner.sent))
	}
	for _, m := range inner.sent {
		if len(m.KVs) != 2 || m.KVs[0].K != 7 || m.KVs[1].K != 8 {
			t.Fatalf("duplicate differs from original: %+v", m)
		}
	}
	if &inner.sent[0].KVs[0] == &inner.sent[1].KVs[0] {
		t.Fatal("duplicate shares the original's backing array (double recycle hazard)")
	}
}

// tryConn adds TrySend to recordConn with scriptable back-pressure.
type tryConn struct {
	recordConn
	pressured int // next n TrySends report back-pressure
}

func (r *tryConn) TrySend(to int, m transport.Message) (bool, error) {
	if r.pressured > 0 {
		r.pressured--
		return false, nil
	}
	m.From = r.id
	r.sent = append(r.sent, m)
	return true, nil
}

func TestWrapPreservesTrySender(t *testing.T) {
	inner := &tryConn{recordConn: recordConn{id: 0, workers: 2}}
	conn := New(Spec{Seed: 4, SendFail: 0.4}).Wrap(inner)
	try, ok := conn.(transport.TrySender)
	if !ok {
		t.Fatal("wrapper lost the TrySender capability")
	}
	delivered := 0
	for k := 0; k < 100; k++ {
		for {
			sent, err := try.TrySend(1, transport.Message{Kind: transport.EndPhase, Round: k})
			if err != nil {
				t.Fatal(err)
			}
			if sent {
				delivered++
				break
			}
		}
	}
	// Every marker eventually delivers: injected TrySend failures look
	// like back-pressure and the retry advances past them.
	if delivered != 100 || len(inner.sent) != 100 {
		t.Fatalf("delivered %d, inner saw %d", delivered, len(inner.sent))
	}
	base := &recordConn{id: 0, workers: 2}
	if _, ok := New(Spec{SendFail: 0.1}).Wrap(base).(transport.TrySender); ok {
		t.Error("wrapper invented TrySender for a conn without it")
	}
}
