package runtime

import (
	"sort"
	"sync/atomic"

	"powerlog/internal/agg"
	"powerlog/internal/metrics"
)

// Scheduler implementations (§5.4): drain order and low-priority
// holding as strategies, replacing the former inline branches in the
// compute loops.

// fifoSched processes the dirty set in drain (first-touch) order with
// no holding — the default schedule.
type fifoSched struct{}

func (fifoSched) arrange([]drained) {}
func (fifoSched) refreshes() bool   { return false }
func (fifoSched) hold(float64) bool { return false }
func (fifoSched) release() bool     { return false }
func (fifoSched) rearm()            {}
func (fifoSched) holding() bool     { return false }

// orderedSched is the delta-stepping-style best-first schedule for
// selective aggregates (Meyer & Sanders 2003): relaxing small tentative
// distances first avoids spreading bounds that are about to be improved
// anyway. It also refreshes entries mid-pass — a key processed late in
// the pass picks up the improvements its predecessors just propagated,
// which is where the saving comes from.
type orderedSched struct {
	asc bool // ascending for min aggregates, descending for max
}

func (s orderedSched) arrange(batch []drained) {
	sort.Slice(batch, func(i, j int) bool {
		if s.asc {
			return batch[i].val < batch[j].val
		}
		return batch[i].val > batch[j].val
	})
}
func (orderedSched) refreshes() bool   { return true }
func (orderedSched) hold(float64) bool { return false }
func (orderedSched) release() bool     { return false }
func (orderedSched) rearm()            {}
func (orderedSched) holding() bool     { return false }

// priorityHold layers §5.4's importance-based holding over an inner
// drain order: combining-aggregate deltas below the threshold wait in
// the local intermediate, accumulating until the worker would otherwise
// idle; release then lets one pass run unthrottled, and the next
// productive pass rearms the hold.
// Its hold() runs inside the scan pass, which may fan out over the
// per-core subshard pool (subshard.go), so the two flags are atomic:
// several cores can park deltas concurrently while the owner reads the
// flags at pass boundaries.
type priorityHold struct {
	inner     Scheduler
	threshold float64
	off       atomic.Bool // released: let small deltas through
	held      atomic.Bool // at least one delta is waiting locally

	// Per-decision observability (DESIGN.md §8): sched.hold counts
	// deltas parked below the threshold, sched.release counts the
	// hold→release cycles taken when the worker would otherwise idle.
	holds, releases *metrics.Counter
}

func (s *priorityHold) arrange(batch []drained) { s.inner.arrange(batch) }
func (s *priorityHold) refreshes() bool         { return s.inner.refreshes() }

func (s *priorityHold) hold(v float64) bool {
	if s.off.Load() || agg.Abs(v) >= s.threshold {
		return false
	}
	// The caller refolds the delta, which marks the row dirty again;
	// the held flag keeps the idle detector from treating that as
	// pending work forever.
	s.held.Store(true)
	s.holds.Inc()
	return true
}

func (s *priorityHold) release() bool {
	if !s.held.Load() {
		return false
	}
	s.off.Store(true)
	s.held.Store(false)
	s.releases.Inc()
	return true
}

func (s *priorityHold) rearm()        { s.off.Store(false) }
func (s *priorityHold) holding() bool { return s.held.Load() }
