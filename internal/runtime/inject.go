package runtime

import (
	"time"

	"powerlog/internal/fault"
)

// stallBarrier decorates a mode's BarrierPolicy with deterministic
// straggler injection: before every injector-selected compute pass the
// worker sleeps, exercising BSP barrier waits, the SSP staleness gate,
// and the async master's idle detection. Living outside the policy
// implementations, it costs nothing when no injector is configured and
// needs no mode-specific code.
type stallBarrier struct {
	inner BarrierPolicy
	inj   *fault.Injector
	pass  int
}

func (s *stallBarrier) setup(w *worker) { s.inner.setup(w) }

func (s *stallBarrier) beginPass(w *worker) bool {
	s.pass++
	if d := s.inj.StallFor(w.id, s.pass); d > 0 {
		time.Sleep(d)
	}
	return s.inner.beginPass(w)
}

func (s *stallBarrier) endPass(w *worker, progressed bool) bool {
	return s.inner.endPass(w, progressed)
}
