package runtime

import (
	"time"

	"powerlog/internal/fault"
)

// stallBarrier decorates a mode's BarrierPolicy with deterministic
// straggler injection: before every injector-selected compute pass the
// worker sleeps, exercising BSP barrier waits, the SSP staleness gate,
// and the async master's idle detection. Living outside the policy
// implementations, it costs nothing when no injector is configured and
// needs no mode-specific code.
type stallBarrier struct {
	inner BarrierPolicy
	inj   *fault.Injector
	pass  int
}

func (s *stallBarrier) setup(w *worker) { s.inner.setup(w) }

func (s *stallBarrier) beginPass(w *worker) bool {
	s.pass++
	if p := s.inj.WorkerCrashPass(w.id); p > 0 && s.pass == p && !w.reborn {
		// Silent worker death: no Stop handshake, no final flush — the
		// buffered updates and the unflushed shard die with the goroutine,
		// which is exactly what the membership layer's live re-join
		// (membership.go) must recover from.
		w.crashed = true
		w.stopped = true
		return false
	}
	if d := s.inj.StallFor(w.id, s.pass); d > 0 {
		time.Sleep(d)
	}
	return s.inner.beginPass(w)
}

func (s *stallBarrier) endPass(w *worker, progressed bool) bool {
	return s.inner.endPass(w, progressed)
}
