package runtime

import (
	"fmt"
	"os"
	"sync"
	"time"

	"powerlog/internal/metrics"
)

// This file holds the runtime's observability plumbing (DESIGN.md §8):
// the per-worker and master metric sets registered into
// internal/metrics registries, and the opt-in periodic text dump. The
// policies register their own counters through the registry handed to
// the policy factory (policy.go); everything here is the worker- and
// master-owned remainder.

// workerMetrics is one worker's pre-resolved metric handles. They are
// resolved once in newWorker so the hot paths (flush, handle, refresh)
// pay a single atomic op per event — no map lookups, no allocations.
type workerMetrics struct {
	reg *metrics.Registry

	// flushSize[j] is the per-destination flush-size histogram
	// ("flush.size.dst<j>", KVs per Data batch) — which destinations
	// dominate traffic and how well the β dial is batching.
	flushSize []*metrics.Histogram
	// refreshHits counts ordered-scan mid-pass refreshes that actually
	// folded a newer delta ("sched.refresh.hit") — the delta-stepping
	// saving made visible.
	refreshHits *metrics.Counter
	// recvBatches / dupBatches split inbound Data batches into
	// first deliveries and duplicates ("recv.batch" / "recv.dup.batch");
	// duplicates fold idempotently but stay out of the termination
	// watermark (see handle).
	recvBatches *metrics.Counter
	dupBatches  *metrics.Counter
	// markerResends counts EndPhase retransmissions from stalled barrier
	// or staleness-gate waits ("barrier.marker.resend").
	markerResends *metrics.Counter
	// steals counts subshard ranges a scan core took from a sibling's
	// deque ("scan.steal") — how often the work-stealing pool actually
	// rebalanced a skewed pass (DESIGN.md §9).
	steals *metrics.Counter
	// parallelPasses counts scan passes that fanned out over the core
	// pool ("scan.parallel.pass"); passes below CoresMinKeys stay serial
	// and are not counted.
	parallelPasses *metrics.Counter
	// subPassUS is the per-subshard scan duration histogram in
	// microseconds ("scan.subshard.pass_us") — the skew the stealing
	// deque exists to absorb.
	subPassUS *metrics.Histogram
	// stragglerUS is the per-block straggler-wait histogram in
	// microseconds ("barrier.straggler.wait_us"), one observation per
	// SSP gate block.
	stragglerUS *metrics.Histogram
}

func newWorkerMetrics(nw int) workerMetrics {
	reg := metrics.NewRegistry()
	m := workerMetrics{
		reg:            reg,
		flushSize:      make([]*metrics.Histogram, nw),
		refreshHits:    reg.Counter("sched.refresh.hit"),
		recvBatches:    reg.Counter("recv.batch"),
		dupBatches:     reg.Counter("recv.dup.batch"),
		markerResends:  reg.Counter("barrier.marker.resend"),
		steals:         reg.Counter("scan.steal"),
		parallelPasses: reg.Counter("scan.parallel.pass"),
		subPassUS:      reg.Histogram("scan.subshard.pass_us"),
		stragglerUS:    reg.Histogram("barrier.straggler.wait_us"),
	}
	for j := range m.flushSize {
		m.flushSize[j] = reg.Histogram(fmt.Sprintf("flush.size.dst%d", j))
	}
	return m
}

// masterMetrics is the termination controller's metric set.
type masterMetrics struct {
	reg *metrics.Registry

	// rounds counts master protocol rounds ("master.round": BSP
	// supersteps or async check rounds).
	rounds *metrics.Counter
	// collectWaitUS is the per-round collect latency in microseconds
	// ("master.collect.wait_us"): broadcast to last report.
	collectWaitUS *metrics.Histogram
	// collectTimeouts counts collects abandoned at the liveness deadline
	// ("master.collect.timeout") — each one is an ErrWorkerLost.
	collectTimeouts *metrics.Counter
	// collectProbes counts second-chance re-solicitations: a collect's
	// first deadline expiry re-polls the silent workers directly
	// ("master.collect.probe") before declaring anyone lost, so a worker
	// that is merely deep in a long compute pass is distinguished from a
	// dead one.
	collectProbes *metrics.Counter

	// Membership counters (membership.go, DESIGN.md §11). memberJoins
	// counts workers admitted through a fence — crash replacements and
	// scale-out newcomers ("master.member.join"); memberOrphans counts
	// orphan verdicts, crash and graceful ("master.member.orphan");
	// memberHandoffUS is the per-event recovery/rebalance latency in
	// microseconds ("master.member.handoff_us"), orphan-or-command to
	// Release.
	memberJoins     *metrics.Counter
	memberOrphans   *metrics.Counter
	memberHandoffUS *metrics.Histogram

	// Session lifecycle counters (session.go, DESIGN.md §10). epochs
	// counts fixpoints the session has converged ("engine.epoch");
	// reseedKeys counts ΔX¹ correction entries folded at Apply
	// ("delta.reseed.keys"); invalidateKeys counts table keys erased by
	// deletion invalidation ("delete.invalidate.keys") — together they
	// size the incremental work a mutation actually caused.
	epochs         *metrics.Counter
	reseedKeys     *metrics.Counter
	invalidateKeys *metrics.Counter
}

func newMasterMetrics() masterMetrics {
	reg := metrics.NewRegistry()
	return masterMetrics{
		reg:             reg,
		rounds:          reg.Counter("master.round"),
		collectWaitUS:   reg.Histogram("master.collect.wait_us"),
		collectTimeouts: reg.Counter("master.collect.timeout"),
		collectProbes:   reg.Counter("master.collect.probe"),
		memberJoins:     reg.Counter("master.member.join"),
		memberOrphans:   reg.Counter("master.member.orphan"),
		memberHandoffUS: reg.Histogram("master.member.handoff_us"),
		epochs:          reg.Counter("engine.epoch"),
		reseedKeys:      reg.Counter("delta.reseed.keys"),
		invalidateKeys:  reg.Counter("delete.invalidate.keys"),
	}
}

// metricsDumper is the opt-in periodic text dump for long runs
// (Config.MetricsEvery): a ticker goroutine snapshots every registry —
// safe while writers run — and renders them through metrics.WriteText.
type metricsDumper struct {
	stop chan struct{}
	wg   sync.WaitGroup
}

// startMetricsDump launches the dump goroutine, or returns nil when the
// feature is off.
func startMetricsDump(cfg Config, workers []*worker, m *master) *metricsDumper {
	if cfg.MetricsEvery <= 0 {
		return nil
	}
	sink := cfg.MetricsLog
	if sink == nil {
		sink = os.Stderr
	}
	d := &metricsDumper{stop: make(chan struct{})}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		t := time.NewTicker(cfg.MetricsEvery)
		defer t.Stop()
		for {
			select {
			case <-d.stop:
				return
			case now := <-t.C:
				fmt.Fprintf(sink, "-- metrics @ %s --\n", now.Format("15:04:05.000"))
				for _, w := range workers {
					if w == nil { // unpopulated elastic capacity slot
						continue
					}
					metrics.WriteText(sink, fmt.Sprintf("w%d", w.id), w.met.reg.Snapshot())
				}
				metrics.WriteText(sink, "master", m.met.reg.Snapshot())
			}
		}
	}()
	return d
}

// close stops the dump goroutine and waits for it (nil-safe).
func (d *metricsDumper) close() {
	if d == nil {
		return
	}
	close(d.stop)
	d.wg.Wait()
}
