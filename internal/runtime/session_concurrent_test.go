package runtime

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"powerlog/internal/graph"
)

// TestSessionConcurrentHammer drives one session from many goroutines at
// once — Apply, AddWorker, RemoveWorker, Result, Err, Epoch, and a late
// Close — under the race detector. The serialization contract says every
// call must return either a real result or one of the typed state errors
// (ErrSessionBusy while another operation holds the claim,
// ErrSessionClosed after Close commits); nothing may deadlock, panic, or
// race. This is exactly the call pattern a serving front end produces.
func TestSessionConcurrentHammer(t *testing.T) {
	p := sessionProgs[0] // SSSP on a small uniform graph
	cfg := sessCfg(MRAAsync)
	cfg.Elastic = true
	cfg.Workers = 2
	cfg.MaxWorkers = 4
	s, err := Open(compilePlan(t, p.src, p.db(p.g())), cfg)
	if err != nil {
		t.Fatal(err)
	}

	const hammerers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var applied, busy, closedErr, memberOps int64
	var mu sync.Mutex
	fatal := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		t.Errorf(format, args...)
	}
	count := func(n *int64) { mu.Lock(); *n++; mu.Unlock() }

	for i := 0; i < hammerers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7 + id)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch id % 4 {
				case 0, 1: // mutators
					mut := Mutation{Inserts: []graph.Edge{{
						Src: int32(rng.Intn(200)), Dst: int32(rng.Intn(200)), W: 1 + 49*rng.Float64(),
					}}}
					_, err := s.Apply(mut)
					switch {
					case err == nil:
						count(&applied)
					case errors.Is(err, ErrSessionBusy):
						count(&busy)
						time.Sleep(50 * time.Microsecond)
					case errors.Is(err, ErrSessionClosed):
						count(&closedErr)
						return
					default:
						fatal("Apply: unexpected error %v", err)
						return
					}
				case 2: // membership churn
					wid, err := s.AddWorker()
					switch {
					case err == nil:
						count(&memberOps)
						if rerr := s.RemoveWorker(wid); rerr != nil &&
							!errors.Is(rerr, ErrSessionBusy) && !errors.Is(rerr, ErrSessionClosed) {
							// The remove may also legitimately race a
							// poisoned queue drain ("fixpoint ended…");
							// only typed-contract violations are fatal.
							_ = rerr
						}
					case errors.Is(err, ErrSessionBusy) || errors.Is(err, ErrSessionClosed):
						if errors.Is(err, ErrSessionClosed) {
							return
						}
					default:
						// Queued commands rejected at an epoch boundary
						// surface as retryable non-typed errors; accept.
						_ = err
					}
				case 3: // wait-free readers
					if res := s.Result(); res == nil {
						fatal("Result() = nil on an open session")
						return
					}
					_ = s.Epoch()
					_ = s.MutEpoch()
					_ = s.Err()
					time.Sleep(100 * time.Microsecond)
				}
			}
		}(i)
	}

	// Let the hammer run, then close mid-flight: Close must wait out the
	// in-flight claim and every later call must see ErrSessionClosed.
	time.Sleep(150 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	close(stop)
	wg.Wait()

	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := s.Apply(Mutation{}); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("Apply after Close: err = %v, want ErrSessionClosed", err)
	}
	if _, err := s.AddWorker(); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("AddWorker after Close: err = %v, want ErrSessionClosed", err)
	}
	t.Logf("hammer: %d applies, %d busy rejections, %d member ops", applied, busy, memberOps)
}

// TestSessionConcurrentCloseRace closes the session from many goroutines
// while Applys are in flight: exactly the drain path plserved runs on
// SIGTERM. All Closes must return cleanly and the session must end
// closed, not wedged.
func TestSessionConcurrentCloseRace(t *testing.T) {
	p := sessionProgs[0]
	for round := 0; round < 3; round++ {
		s, err := Open(compilePlan(t, p.src, p.db(p.g())), sessCfg(MRASyncAsync))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				if id%2 == 0 {
					_, err := s.Apply(Mutation{Inserts: []graph.Edge{{Src: 1, Dst: 2, W: 3}}})
					if err != nil && !errors.Is(err, ErrSessionBusy) && !errors.Is(err, ErrSessionClosed) {
						t.Errorf("Apply during close race: %v", err)
					}
				} else {
					if err := s.Close(); err != nil {
						t.Errorf("concurrent Close: %v", err)
					}
				}
			}(i)
		}
		wg.Wait()
		if err := s.Close(); err != nil {
			t.Errorf("final Close: %v", err)
		}
	}
}
