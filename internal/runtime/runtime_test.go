package runtime

import (
	"math"
	"testing"
	"time"

	"powerlog/internal/analyzer"
	"powerlog/internal/compiler"
	"powerlog/internal/edb"
	"powerlog/internal/gen"
	"powerlog/internal/graph"
	"powerlog/internal/parser"
	"powerlog/internal/progs"
	"powerlog/internal/ref"
)

var allModes = []Mode{NaiveSync, MRASync, MRAAsync, MRASyncAsync, MRAAAP, MRASSP}

// mraModes excludes naive (used where naive is too slow or semantically
// covered elsewhere).
var mraModes = []Mode{MRASync, MRAAsync, MRASyncAsync, MRAAAP, MRASSP}

func compilePlan(t *testing.T, src string, db *edb.DB) *compiler.Plan {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := analyzer.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := compiler.Compile(info, db, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func runMode(t *testing.T, plan *compiler.Plan, mode Mode, workers int) *Result {
	t.Helper()
	res, err := Run(plan, Config{
		Workers:       workers,
		Mode:          mode,
		Tau:           200 * time.Microsecond,
		CheckInterval: 300 * time.Microsecond,
		MaxWall:       30 * time.Second,
	})
	if err != nil {
		t.Fatalf("%v: %v", mode, err)
	}
	if !res.Converged {
		t.Fatalf("%v: did not converge (rounds=%d)", mode, res.Rounds)
	}
	return res
}

// expectClose compares engine output against a dense oracle; oracle
// identity entries (Inf / 0 depending on aggregate) must be absent.
func expectClose(t *testing.T, mode Mode, got map[int64]float64, want []float64, identity float64, tol float64) {
	t.Helper()
	errs := 0
	for v, w := range want {
		gv, ok := got[int64(v)]
		isIdent := w == identity || (math.IsInf(identity, 1) && math.IsInf(w, 1)) || (math.IsInf(identity, -1) && math.IsInf(w, -1))
		if isIdent {
			if ok && errs < 5 {
				t.Errorf("%v: key %d should be absent, got %v", mode, v, gv)
				errs++
			}
			continue
		}
		if !ok {
			if errs < 5 {
				t.Errorf("%v: key %d missing (want %v)", mode, v, w)
				errs++
			}
			continue
		}
		scale := math.Max(1, math.Abs(w))
		if math.Abs(gv-w) > tol*scale {
			if errs < 5 {
				t.Errorf("%v: key %d = %v, want %v", mode, v, gv, w)
			}
			errs++
		}
	}
	if errs > 0 {
		t.Fatalf("%v: %d mismatches", mode, errs)
	}
}

func TestSSSPAllModes(t *testing.T) {
	g := gen.Uniform(400, 2400, 50, 11)
	want := ref.Dijkstra(g, 0)
	for _, mode := range allModes {
		db := edb.NewDB()
		db.SetGraph("edge", g)
		plan := compilePlan(t, progs.SSSP, db)
		res := runMode(t, plan, mode, 4)
		expectClose(t, mode, res.Values, want, math.Inf(1), 1e-9)
	}
}

func TestCCAllModes(t *testing.T) {
	g := gen.RMAT(9, 2000, 0, 13)
	want := ref.MinLabelPropagation(g)
	for _, mode := range allModes {
		db := edb.NewDB()
		db.SetGraph("edge", g)
		plan := compilePlan(t, progs.CC, db)
		res := runMode(t, plan, mode, 4)
		expectClose(t, mode, res.Values, want, math.Inf(1), 0)
	}
}

func TestPageRankAllModes(t *testing.T) {
	g := gen.RMAT(8, 1200, 0, 17)
	want := ref.PageRank(g, 500, 1e-9)
	for _, mode := range allModes {
		db := edb.NewDB()
		db.SetGraph("edge", g)
		plan := compilePlan(t, progs.PageRank, db)
		res := runMode(t, plan, mode, 4)
		// ε-terminated: compare to the limit within a loose tolerance.
		expectClose(t, mode, res.Values, want, math.NaN(), 2e-3)
	}
}

func TestKatzAllModes(t *testing.T) {
	g := gen.Uniform(300, 1500, 0, 19)
	want := ref.Katz(g, 0, 10000, 500, 1e-9)
	for _, mode := range allModes {
		db := edb.NewDB()
		db.SetGraph("edge", g)
		plan := compilePlan(t, progs.Katz, db)
		res := runMode(t, plan, mode, 4)
		got := res.Values
		for v, w := range want {
			if w == 0 {
				continue
			}
			if math.Abs(got[int64(v)]-w) > 1e-2*math.Max(1, math.Abs(w)) {
				t.Fatalf("%v: katz[%d] = %v, want %v", mode, v, got[int64(v)], w)
			}
		}
	}
}

func TestAdsorptionAllModes(t *testing.T) {
	g := gen.Uniform(250, 1500, 1, 23)
	gen.NormalizeWeightsByOut(g, 1)
	n := g.NumVertices()
	pi := gen.VertexAttr(n, 0.1, 0.5, 41)
	pc := gen.VertexAttr(n, 0.2, 0.8, 42)
	inj := make([]float64, n)
	for i := range inj {
		inj[i] = 1
	}
	want := ref.Adsorption(g, inj, pi, pc, 800, 1e-10)
	for _, mode := range allModes {
		db := edb.NewDB()
		db.SetGraph("A", g)
		piRel := edb.NewRelation("pi", 2)
		pcRel := edb.NewRelation("pc", 2)
		for v := 0; v < n; v++ {
			piRel.Add(float64(v), pi[v])
			pcRel.Add(float64(v), pc[v])
		}
		db.AddRelation(piRel)
		db.AddRelation(pcRel)
		plan := compilePlan(t, progs.Adsorption, db)
		res := runMode(t, plan, mode, 4)
		expectClose(t, mode, res.Values, want, math.NaN(), 5e-3)
	}
}

func TestBeliefPropagationAllModes(t *testing.T) {
	g := gen.Uniform(250, 1500, 1, 29)
	gen.NormalizeWeightsByOut(g, 1)
	n := g.NumVertices()
	initial := gen.VertexAttr(n, 0.1, 1, 51)
	h := gen.VertexAttr(n, 0.2, 0.9, 52)
	want := ref.BeliefPropagation(g, initial, h, 800, 1e-10)
	for _, mode := range allModes {
		db := edb.NewDB()
		db.SetGraph("E", g)
		iRel := edb.NewRelation("I", 2)
		hRel := edb.NewRelation("H", 2)
		for v := 0; v < n; v++ {
			iRel.Add(float64(v), initial[v])
			hRel.Add(float64(v), h[v])
		}
		db.AddRelation(iRel)
		db.AddRelation(hRel)
		plan := compilePlan(t, progs.BP, db)
		res := runMode(t, plan, mode, 4)
		expectClose(t, mode, res.Values, want, math.NaN(), 5e-3)
	}
}

func TestPathsDAGAllModes(t *testing.T) {
	g := gen.DAG(300, 2.5, 30, 0, 31)
	want := ref.DAGPathCount(g, 0)
	for _, mode := range allModes {
		db := edb.NewDB()
		db.SetGraph("dagedge", g)
		plan := compilePlan(t, progs.PathsDAG, db)
		res := runMode(t, plan, mode, 4)
		expectClose(t, mode, res.Values, want, 0, 1e-9)
	}
}

func TestCostAllModes(t *testing.T) {
	g := gen.DAG(200, 2, 20, 10, 37)
	want := ref.DAGPathWeightSum(g)
	// Naive evaluation of Cost is excluded: the program's naive base is
	// the all-zeros init (sum identity), and re-deriving zero tuples never
	// activates F — the paper's naive engines hit the same degenerate
	// case and also require the incremental form here.
	for _, mode := range mraModes {
		db := edb.NewDB()
		db.SetGraph("dagedge", g)
		plan := compilePlan(t, progs.Cost, db)
		res := runMode(t, plan, mode, 4)
		got := res.Values
		for v, w := range want {
			if w == 0 {
				continue
			}
			if math.Abs(got[int64(v)]-w) > 1e-6*math.Max(1, math.Abs(w)) {
				t.Fatalf("%v: cost[%d] = %v, want %v", mode, v, got[int64(v)], w)
			}
		}
	}
}

func TestViterbiAllModes(t *testing.T) {
	g := gen.Trellis(12, 6, 43)
	want := ref.ViterbiDP(g, 0)
	for _, mode := range allModes {
		db := edb.NewDB()
		db.SetGraph("trans", g)
		plan := compilePlan(t, progs.Viterbi, db)
		res := runMode(t, plan, mode, 4)
		expectClose(t, mode, res.Values, want, 0, 1e-9)
	}
}

func TestLCAAllModes(t *testing.T) {
	g := gen.Uniform(200, 800, 0, 47)
	want := ref.BFSDepth(g, 5)
	for _, mode := range allModes {
		db := edb.NewDB()
		db.SetGraph("parent", g)
		plan := compilePlan(t, progs.LCA, db)
		res := runMode(t, plan, mode, 4)
		expectClose(t, mode, res.Values, want, math.Inf(1), 1e-9)
	}
}

func TestAPSPAllModes(t *testing.T) {
	g := gen.Uniform(60, 400, 20, 53)
	want := ref.FloydWarshall(g)
	for _, mode := range allModes {
		db := edb.NewDB()
		db.SetGraph("edge", g)
		plan := compilePlan(t, progs.APSP, db)
		res := runMode(t, plan, mode, 4)
		for i := range want {
			for j := range want[i] {
				w := want[i][j]
				key := compiler.EncodePair(int64(i), int64(j))
				gv, ok := res.Values[key]
				if math.IsInf(w, 1) {
					if ok {
						t.Fatalf("%v: pair (%d,%d) should be absent, got %v", mode, i, j, gv)
					}
					continue
				}
				if !ok || math.Abs(gv-w) > 1e-9 {
					t.Fatalf("%v: apsp[%d,%d] = %v (ok=%v), want %v", mode, i, j, gv, ok, w)
				}
			}
		}
	}
}

func TestSimRankAllModes(t *testing.T) {
	g := gen.Uniform(200, 1200, 1, 59)
	gen.NormalizeWeightsByOut(g, 1)
	c := make([]float64, g.NumVertices())
	c[0] = 1
	want := ref.LinearLimit(g, func(src, e int32) float64 { return 0.8 * g.Weight(e) }, c, 800, 1e-10)
	for _, mode := range allModes {
		db := edb.NewDB()
		db.SetGraph("pairedge", g)
		plan := compilePlan(t, progs.SimRank, db)
		res := runMode(t, plan, mode, 4)
		// Identity 0: unreached vertices legitimately store sum's identity.
		expectClose(t, mode, res.Values, want, 0, 5e-3)
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	g := gen.Uniform(300, 1500, 50, 61)
	want := ref.Dijkstra(g, 0)
	for _, workers := range []int{1, 2, 3, 7} {
		db := edb.NewDB()
		db.SetGraph("edge", g)
		plan := compilePlan(t, progs.SSSP, db)
		res := runMode(t, plan, MRASyncAsync, workers)
		expectClose(t, MRASyncAsync, res.Values, want, math.Inf(1), 1e-9)
	}
}

func TestPriorityThresholdStillConverges(t *testing.T) {
	g := gen.RMAT(8, 1200, 0, 67)
	want := ref.PageRank(g, 500, 1e-9)
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.PageRank, db)
	res, err := Run(plan, Config{
		Workers:           4,
		Mode:              MRASyncAsync,
		Tau:               200 * time.Microsecond,
		CheckInterval:     300 * time.Microsecond,
		PriorityThreshold: 1e-3,
		MaxWall:           30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge with priority threshold")
	}
	expectClose(t, MRASyncAsync, res.Values, want, math.NaN(), 5e-3)
}

func TestMessageAccounting(t *testing.T) {
	g := gen.Uniform(200, 1200, 50, 71)
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.SSSP, db)
	res := runMode(t, plan, MRASync, 4)
	if res.MessagesSent != res.MessagesRecv {
		t.Errorf("sent %d != recv %d after BSP run", res.MessagesSent, res.MessagesRecv)
	}
	if res.MessagesSent == 0 || res.Flushes == 0 {
		t.Error("expected cross-worker traffic")
	}
	if res.Rounds == 0 {
		t.Error("no rounds recorded")
	}
}

func TestSingleWorkerNoMessages(t *testing.T) {
	g := gen.Uniform(100, 500, 10, 73)
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.SSSP, db)
	res := runMode(t, plan, MRAAsync, 1)
	if res.MessagesSent != 0 {
		t.Errorf("single worker sent %d messages", res.MessagesSent)
	}
	want := ref.Dijkstra(g, 0)
	expectClose(t, MRAAsync, res.Values, want, math.Inf(1), 1e-9)
}

func TestUncompiledPlanRejected(t *testing.T) {
	if _, err := Run(&compiler.Plan{}, Config{}); err == nil {
		t.Error("uncompiled plan should be rejected")
	}
}

func TestModeStrings(t *testing.T) {
	if NaiveSync.String() != "Naive+Sync" || MRASyncAsync.String() != "MRA+SyncAsync" {
		t.Error("mode names wrong")
	}
	if MRASSP.String() != "MRA+SSP" {
		t.Error("SSP mode name wrong")
	}
	if NaiveSync.MRA() || !MRAAsync.MRA() || !MRASSP.MRA() {
		t.Error("MRA predicate wrong")
	}
	if Mode(99).String() != "Mode(?)" {
		t.Error("out-of-range mode name wrong")
	}
	for _, m := range allModes {
		if !modeRegistered(m) {
			t.Errorf("mode %v not registered", m)
		}
	}
	if modeRegistered(Mode(99)) {
		t.Error("unknown mode reported registered")
	}
}

func TestGraphPartitionCoversAllKeys(t *testing.T) {
	for _, w := range []int{1, 2, 5} {
		for k := int64(0); k < 100; k++ {
			if p := graph.Partition(k, w); p < 0 || p >= w {
				t.Fatalf("Partition(%d,%d) = %d", k, w, p)
			}
		}
	}
}
