package runtime

import (
	"sort"

	"powerlog/internal/agg"
	"powerlog/internal/transport"
)

// runBSP executes bulk-synchronous supersteps: compute and buffer,
// exchange with EndPhase markers, report to the master, and wait for its
// verdict. With naive=true each superstep recomputes the full result from
// the previous one (Equation 2); otherwise it is MRA semi-naive
// evaluation (Equation 4) under a barrier.
func (w *worker) runBSP(naive bool) {
	if naive {
		// The table being built this round; incoming Data always lands in
		// the freshest next (created *before* reporting PhaseDone so that
		// faster peers' next-round data cannot be stranded).
		w.next = w.newTable()
		w.apply = w.next
	}
	for !w.stopped {
		w.rounds++
		if naive {
			w.naiveCompute()
		} else {
			w.mraCompute()
		}
		w.flushAll()
		for j := 0; j < w.nw; j++ {
			if j != w.id {
				w.enqueue(j, transport.Message{Kind: transport.EndPhase})
			}
		}
		w.awaitEndPhases()
		if w.stopped {
			return
		}
		var stats transport.Stats
		if naive {
			diff, changed := w.naiveFinish()
			stats.AccDelta = diff
			stats.Dirty = changed
			w.next = w.newTable()
			w.apply = w.next
		} else {
			stats.AccDelta = w.accDelta
			w.accDelta = 0
			stats.Dirty = w.table.HasDirty()
			if w.cfg.SnapshotDir != "" && w.cfg.SnapshotEvery > 0 && w.rounds%w.cfg.SnapshotEvery == 0 {
				_ = w.snapshot() // fault tolerance is best-effort; the run itself must not fail
			}
		}
		stats.Sent, stats.Recv = w.sent, w.recv
		w.enqueue(transport.MasterID(w.nw), transport.Message{Kind: transport.PhaseDone, Stats: stats})
		if !w.awaitVerdict() {
			return
		}
	}
}

// mraCompute drains a snapshot of dirty keys, folds each delta into its
// accumulation, and propagates improvements (paper Figure 7).
func (w *worker) mraCompute() {
	ordered := w.cfg.OrderedScan && w.plan.Op.Selective()
	for _, d := range w.drainSnapshot() {
		if ordered {
			w.refresh(&d)
		}
		improved, change, signed := w.table.FoldAcc(d.key, d.val)
		w.accDelta += change
		w.accSum += signed
		if !w.shouldPropagate(improved, d.val) {
			continue
		}
		w.plan.Propagate(d.key, d.val, w.emitBuffered)
	}
}

// drained is one key's delta taken from the dirty set this pass.
type drained struct {
	key int64
	val float64
}

// drainSnapshot drains the current dirty set into a slice, optionally
// ordering it best-first for selective aggregates (delta-stepping-style
// scheduling: relaxing small tentative distances first avoids spreading
// bounds that are about to be improved anyway).
func (w *worker) drainSnapshot() []drained {
	var keys []int64
	w.table.ScanDirty(func(k int64) { keys = append(keys, k) })
	out := make([]drained, 0, len(keys))
	for _, k := range keys {
		if v, ok := w.table.Drain(k); ok {
			out = append(out, drained{k, v})
		}
	}
	if w.cfg.OrderedScan && w.plan.Op.Selective() {
		asc := w.plan.Op.Kind() == agg.Min
		sort.Slice(out, func(i, j int) bool {
			if asc {
				return out[i].val < out[j].val
			}
			return out[i].val > out[j].val
		})
	}
	return out
}

// refresh folds any delta that arrived since the snapshot into d — under
// the ordered schedule, a key processed late in the pass picks up the
// improvements its predecessors just propagated, which is where the
// delta-stepping saving comes from.
func (w *worker) refresh(d *drained) {
	if v, ok := w.table.Drain(d.key); ok {
		d.val = w.plan.Op.Fold(d.val, v)
	}
}

// shouldPropagate implements the per-aggregate forwarding rule: selective
// aggregates forward only improvements (anything else is dominated);
// combining aggregates forward every non-zero delta.
func (w *worker) shouldPropagate(improved bool, tmp float64) bool {
	if w.plan.Op.Selective() {
		return improved
	}
	return tmp != 0
}

// emitBuffered routes one contribution: local keys fold directly (they
// join the next superstep via the dirty set), remote keys are buffered
// and flushed in BatchMax chunks.
func (w *worker) emitBuffered(dst int64, v float64) {
	o := w.owner(dst)
	if o == w.id {
		w.apply.FoldDelta(dst, v)
		return
	}
	w.bufs[o].add(dst, v)
	if w.bufs[o].len() >= w.cfg.BatchMax {
		w.flush(o)
	}
}

// naiveCompute re-derives the full next state: base tuples plus the
// recursive body applied to every current value. When the plan supports
// it, this pays naive Datalog evaluation's real price — materialise the
// current result into a relation and re-run the body joins each
// iteration (the paper's "additional rank table"); pair-keyed plans fall
// back to the compiled full-F closure.
func (w *worker) naiveCompute() {
	for _, kv := range w.ownBase {
		w.apply.FoldDelta(kv.K, kv.V)
	}
	if w.plan.NaiveJoinSupported() {
		if w.naive == nil {
			ev, err := w.plan.NewNaiveEvaluator()
			if err == nil {
				w.naive = ev
			}
		}
		if w.naive != nil {
			err := w.naive.Eval(func(yield func(int64, float64)) {
				w.table.Range(func(k int64, acc float64) bool {
					yield(k, acc)
					return true
				})
			}, w.emitBuffered)
			if err == nil {
				return
			}
			// A join failure (unexpected) falls through to the closure so
			// naive mode still produces correct results.
		}
	}
	w.table.Range(func(k int64, acc float64) bool {
		w.plan.PropagateFull(k, acc, w.emitBuffered)
		return true
	})
}

// naiveFinish folds the received contributions into the next table's
// accumulations and compares it against the current table: it returns
// Σ|next − cur| over owned keys and whether anything changed at all (a
// new key with value 0 — a shortest-path source, say — changes the
// result without moving the L1 distance). It then installs next.
func (w *worker) naiveFinish() (float64, bool) {
	// next's accumulation column starts from scratch each round, so the
	// signed FoldAcc deltas sum to its whole Σacc — which becomes the
	// worker's running accSum when next is installed below.
	nextSum := 0.0
	w.next.ScanDirty(func(k int64) {
		if v, ok := w.next.Drain(k); ok {
			_, _, signed := w.next.FoldAcc(k, v)
			nextSum += signed
		}
	})
	diff := 0.0
	changed := false
	seen := map[int64]bool{}
	w.next.Range(func(k int64, v float64) bool {
		seen[k] = true
		old := w.table.Acc(k)
		if old == w.plan.Op.Identity() {
			diff += abs(v)
			changed = true
		} else if v != old {
			diff += abs(v - old)
			changed = true
		}
		return true
	})
	w.table.Range(func(k int64, v float64) bool {
		if !seen[k] {
			diff += abs(v) // key disappeared (cannot happen for monotone runs)
			changed = true
		}
		return true
	})
	w.table = w.next
	w.accSum = nextSum
	return diff, changed
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// awaitEndPhases blocks until EndPhase markers from all other workers
// arrive (data sent before a marker is already applied by then, thanks to
// per-pair ordering).
func (w *worker) awaitEndPhases() {
	need := w.nw - 1
	for w.endPhases < need && !w.stopped {
		m, ok := <-w.conn.Inbox()
		if !ok {
			w.stopped = true
			return
		}
		w.handle(m)
	}
	w.endPhases -= need
}

// awaitVerdict blocks for the master's Continue/Stop and reports whether
// to run another superstep.
func (w *worker) awaitVerdict() bool {
	for !w.verdictSet {
		m, ok := <-w.conn.Inbox()
		if !ok {
			w.stopped = true
			return false
		}
		w.handle(m)
	}
	w.verdictSet = false
	return w.verdict == transport.Continue && !w.stopped
}
