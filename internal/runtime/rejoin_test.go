package runtime

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"powerlog/internal/edb"
	"powerlog/internal/fault"
	"powerlog/internal/gen"
	"powerlog/internal/graph"
	"powerlog/internal/progs"
	"powerlog/internal/ref"
)

// The rejoin suite exercises the membership layer (membership.go,
// DESIGN.md §11): a worker crashed mid-fixpoint is detected by the
// master's liveness probe, replaced on a reset endpoint, and re-joined
// through a membership fence — and the run still converges to the
// fault-free fixpoint. The scale drills do the same for elastic
// fleets: AddWorker/RemoveWorker mid-fixpoint and between fixpoints,
// always compared against a static-fleet oracle.

// rejoinModes are the modes with live re-join: the non-barriered MRA
// family (the BSP verdict protocol has no fence point mid-superstep and
// keeps the abort-on-loss behaviour).
var rejoinModes = []Mode{MRAAsync, MRASyncAsync, MRASSP}

// rejoinCfg keeps the collect deadline short so a silent worker is
// probed and declared lost in milliseconds, not the MaxWall fallback.
func rejoinCfg(mode Mode) Config {
	return Config{
		Workers:        4,
		Mode:           mode,
		Tau:            200 * time.Microsecond,
		CheckInterval:  300 * time.Microsecond,
		CollectTimeout: 250 * time.Millisecond,
		MaxWall:        60 * time.Second,
	}
}

// TestRejoinMatrix: every oracle algorithm × every non-barriered mode
// with a worker crashed silently mid-fixpoint (crashw: no Stop
// handshake, no final flush — the shard and its buffered updates die).
// Selective programs recover by survivor replay into a reseeded
// replacement (Theorem 3); combining programs rewind the fleet to the
// ΔX¹ seed inside the fence (no mutations have been applied, so the
// seed is the true initial state). Either way the final fixpoint must
// be oracle-equal. -short runs the 4-algorithm subset.
func TestRejoinMatrix(t *testing.T) {
	for _, algo := range chaosAlgos() {
		if testing.Short() && !algo.short {
			continue
		}
		for _, mode := range rejoinModes {
			t.Run(fmt.Sprintf("%s/%v", algo.name, mode), func(t *testing.T) {
				db := edb.NewDB()
				algo.setup(db)
				plan := compilePlan(t, algo.src, db)
				fs, err := fault.ParseSpec("seed=9,crashw=1:3")
				if err != nil {
					t.Fatal(err)
				}
				cfg := rejoinCfg(mode)
				cfg.Fault = fault.New(fs)
				res, err := Run(plan, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatalf("did not converge after crash re-join (rounds=%d)", res.Rounds)
				}
				if res.Master.Counters["master.member.join"] == 0 {
					// The fixture beat pass 3 — the crash never fired. The
					// oracle check below still holds, but note it.
					t.Logf("converged before the injected crash pass")
				}
				algo.check(t, mode, res.Values)
			})
		}
	}
}

// TestRejoinRecoveryCounters pins the observable recovery trail: one
// orphan verdict, one admitted replacement, one handoff latency sample —
// and a converged, oracle-equal result.
func TestRejoinRecoveryCounters(t *testing.T) {
	g := gen.Uniform(200, 1200, 50, 11)
	want := ref.Dijkstra(g, 0)
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.SSSP, db)
	fs, err := fault.ParseSpec("seed=10,crashw=2:2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rejoinCfg(MRASyncAsync)
	cfg.Fault = fault.New(fs)
	res, err := Run(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge after crash re-join")
	}
	c := res.Master.Counters
	if c["master.member.orphan"] < 1 {
		t.Errorf("master.member.orphan = %d, want >= 1", c["master.member.orphan"])
	}
	if c["master.member.join"] < 1 {
		t.Errorf("master.member.join = %d, want >= 1", c["master.member.join"])
	}
	expectClose(t, MRASyncAsync, res.Values, want, math.Inf(1), 1e-9)
}

// TestRejoinSessionCombining drives a combining-aggregate session
// (PageRank) through mutations with a worker crash injected mid-run and
// park-boundary checkpoints on. Wherever the crash lands — the initial
// fixpoint (no cut yet: fleet-wide seed reset) or a later Apply (rewind
// to the park cut whose MutEpoch matches) — every epoch must still
// converge to the scratch oracle.
func TestRejoinSessionCombining(t *testing.T) {
	p := sessionProgs[2] // PageRank
	g := p.g()
	n := g.NumVertices()
	edges := append([]graph.Edge(nil), g.Edges()...)
	fs, err := fault.ParseSpec("seed=11,crashw=1:10")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rejoinCfg(MRASyncAsync)
	cfg.SnapshotDir = t.TempDir()
	cfg.SnapshotEvery = 1 << 30 // park checkpoints only: no mid-fixpoint episodes
	cfg.Fault = fault.New(fs)
	s, err := Open(compilePlan(t, p.src, p.db(g)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.Result().Converged {
		t.Fatal("initial fixpoint did not converge")
	}
	oracleCfg := rejoinCfg(MRASyncAsync)
	r := rand.New(rand.NewSource(331))
	for i := 0; i < 2; i++ {
		var mut Mutation
		mut, edges = randMutation(r, edges, n, 6, 6, false, p.insW)
		res, err := s.Apply(mut)
		if err != nil {
			t.Fatalf("Apply %d: %v", i, err)
		}
		if !res.Converged {
			t.Fatalf("Apply %d did not converge", i)
		}
		want := scratchFixpoint(t, p, n, edges, g.Weighted(), oracleCfg)
		expectSameFixpoint(t, fmt.Sprintf("apply-%d", i), res.Values, want, p.ident, p.tol)
	}
}

// TestShardRouteRing pins the consistent-hash ring's contract: two
// workers derive the identical routing from the same membership, every
// member owns a share, and a membership change moves only the key
// ranges touching the changed member — scale-out moves keys exclusively
// TO the newcomer, scale-in moves exclusively the leaver's keys.
func TestShardRouteRing(t *testing.T) {
	cfg := Config{Workers: 4, Elastic: true, MaxWorkers: 8}
	a, b := newShardRoute(cfg), newShardRoute(cfg)
	const nKeys = 20000
	ownedBy := make(map[int]int)
	before := make([]int, nKeys)
	for k := int64(0); k < nKeys; k++ {
		o := a.owner(k)
		if o != b.owner(k) {
			t.Fatalf("routes disagree on key %d: %d vs %d", k, o, b.owner(k))
		}
		before[k] = o
		ownedBy[o]++
	}
	for j := 0; j < 4; j++ {
		if ownedBy[j] == 0 {
			t.Fatalf("member %d owns no keys out of %d", j, nKeys)
		}
	}

	a.add(4)
	movedIn := 0
	for k := int64(0); k < nKeys; k++ {
		o := a.owner(k)
		if o != before[k] && o != 4 {
			t.Fatalf("scale-out moved key %d from %d to %d (not the newcomer)", k, before[k], o)
		}
		if o == 4 {
			movedIn++
		}
		before[k] = o
	}
	if movedIn == 0 {
		t.Fatal("scale-out moved no keys to the newcomer")
	}

	a.remove(2)
	for k := int64(0); k < nKeys; k++ {
		o := a.owner(k)
		if before[k] != 2 && o != before[k] {
			t.Fatalf("scale-in of member 2 moved key %d owned by %d to %d", k, before[k], o)
		}
		if o == 2 {
			t.Fatalf("key %d still routed to removed member 2", k)
		}
	}
}

// TestElasticScaleParked drives the synchronous scale path: AddWorker
// and RemoveWorker against a parked fleet (the session goroutine fences
// directly; workers join from their parked inbox wait), with an Apply
// after each change checked against the static oracle.
func TestElasticScaleParked(t *testing.T) {
	p := sessionProgs[0] // SSSP
	g := p.g()
	n := g.NumVertices()
	edges := append([]graph.Edge(nil), g.Edges()...)
	cfg := rejoinCfg(MRASyncAsync)
	cfg.Workers = 3
	cfg.Elastic = true
	cfg.MaxWorkers = 6
	s, err := Open(compilePlan(t, p.src, p.db(g)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.Result().Converged {
		t.Fatal("initial fixpoint did not converge")
	}
	oracleCfg := rejoinCfg(MRASyncAsync)
	r := rand.New(rand.NewSource(443))

	id, err := s.AddWorker()
	if err != nil {
		t.Fatalf("AddWorker (parked): %v", err)
	}
	if id != 3 {
		t.Fatalf("AddWorker slot = %d, want 3 (first free)", id)
	}
	var mut Mutation
	mut, edges = randMutation(r, edges, n, 8, 8, false, p.insW)
	res, err := s.Apply(mut)
	if err != nil {
		t.Fatalf("Apply after scale-out: %v", err)
	}
	want := scratchFixpoint(t, p, n, edges, true, oracleCfg)
	expectSameFixpoint(t, "after-add", res.Values, want, p.ident, p.tol)

	if err := s.RemoveWorker(1); err != nil {
		t.Fatalf("RemoveWorker (parked): %v", err)
	}
	mut, edges = randMutation(r, edges, n, 8, 8, false, p.insW)
	res, err = s.Apply(mut)
	if err != nil {
		t.Fatalf("Apply after scale-in: %v", err)
	}
	want = scratchFixpoint(t, p, n, edges, true, oracleCfg)
	expectSameFixpoint(t, "after-remove", res.Values, want, p.ident, p.tol)
}

// TestElasticScaleMidFixpoint issues membership commands from another
// goroutine while an Apply's fixpoint is running: the master fences
// them in between poll rounds without restarting the fixpoint. The
// command may also land after the epoch converged (the fixpoint was
// faster than the sleep) — then it is either rejected by the drain or
// applied against the parked fleet; every outcome must leave the
// session oracle-equal.
func TestElasticScaleMidFixpoint(t *testing.T) {
	p := sessionProgs[0] // SSSP
	g := p.g()
	n := g.NumVertices()
	edges := append([]graph.Edge(nil), g.Edges()...)
	fs, err := fault.ParseSpec("seed=12,stall=2:200us") // lengthen the fixpoint
	if err != nil {
		t.Fatal(err)
	}
	cfg := rejoinCfg(MRASyncAsync)
	cfg.Workers = 3
	cfg.Elastic = true
	cfg.MaxWorkers = 6
	cfg.Fault = fault.New(fs)
	s, err := Open(compilePlan(t, p.src, p.db(g)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	oracleCfg := rejoinCfg(MRASyncAsync)
	r := rand.New(rand.NewSource(557))

	// Scale-out racing the re-fixpoint.
	addDone := make(chan error, 1)
	go func() {
		time.Sleep(2 * time.Millisecond)
		_, err := s.AddWorker()
		addDone <- err
	}()
	var mut Mutation
	mut, edges = randMutation(r, edges, n, 12, 12, false, p.insW)
	res, err := s.Apply(mut)
	if err != nil {
		t.Fatalf("Apply during scale-out: %v", err)
	}
	if aerr := <-addDone; aerr != nil && !strings.Contains(aerr.Error(), "fixpoint ended") {
		t.Fatalf("AddWorker (mid-fixpoint): %v", aerr)
	}
	want := scratchFixpoint(t, p, n, edges, true, oracleCfg)
	expectSameFixpoint(t, "midrun-add", res.Values, want, p.ident, p.tol)

	// Scale-in racing the next re-fixpoint.
	rmDone := make(chan error, 1)
	go func() {
		time.Sleep(2 * time.Millisecond)
		rmDone <- s.RemoveWorker(0)
	}()
	mut, edges = randMutation(r, edges, n, 12, 12, false, p.insW)
	res, err = s.Apply(mut)
	if err != nil {
		t.Fatalf("Apply during scale-in: %v", err)
	}
	if rerr := <-rmDone; rerr != nil && !strings.Contains(rerr.Error(), "fixpoint ended") {
		t.Fatalf("RemoveWorker (mid-fixpoint): %v", rerr)
	}
	want = scratchFixpoint(t, p, n, edges, true, oracleCfg)
	expectSameFixpoint(t, "midrun-remove", res.Values, want, p.ident, p.tol)

	// One more quiet epoch: the fleet must still re-fixpoint normally
	// after both scale events.
	mut, edges = randMutation(r, edges, n, 6, 6, false, p.insW)
	res, err = s.Apply(mut)
	if err != nil {
		t.Fatalf("Apply after scale events: %v", err)
	}
	want = scratchFixpoint(t, p, n, edges, true, oracleCfg)
	expectSameFixpoint(t, "post-scale", res.Values, want, p.ident, p.tol)
}

// TestElasticConfigRejected pins the configuration surface: Elastic
// needs a non-barriered MRA mode, MaxWorkers must cover the initial
// fleet, membership commands need Config.Elastic, and a full fleet
// rejects further growth.
func TestElasticConfigRejected(t *testing.T) {
	p := sessionProgs[0]
	plan := compilePlan(t, p.src, p.db(p.g()))

	for _, mode := range []Mode{MRASync, NaiveSync} {
		cfg := sessCfg(mode)
		cfg.Elastic = true
		if _, err := Open(plan, cfg); err == nil || !strings.Contains(err.Error(), "Elastic") {
			t.Errorf("Open(Elastic, %v): err = %v, want an Elastic mode rejection", mode, err)
		}
	}

	var ce *ConfigError
	err := Config{Workers: 4, Elastic: true, MaxWorkers: 2}.Validate()
	if !errors.As(err, &ce) || ce.Field != "MaxWorkers" {
		t.Errorf("MaxWorkers below Workers: err = %v, want ConfigError{MaxWorkers}", err)
	}

	s, err := Open(plan, sessCfg(MRASyncAsync))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddWorker(); err == nil || !strings.Contains(err.Error(), "Elastic") {
		t.Errorf("AddWorker without Elastic: err = %v", err)
	}
	if err := s.RemoveWorker(0); err == nil || !strings.Contains(err.Error(), "Elastic") {
		t.Errorf("RemoveWorker without Elastic: err = %v", err)
	}
	s.Close()

	cfg := rejoinCfg(MRASyncAsync)
	cfg.Workers = 2
	cfg.Elastic = true
	cfg.MaxWorkers = 3
	s, err = Open(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if id, err := s.AddWorker(); err != nil || id != 2 {
		t.Fatalf("AddWorker to capacity: id=%d err=%v", id, err)
	}
	if _, err := s.AddWorker(); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Errorf("AddWorker past MaxWorkers: err = %v, want a capacity rejection", err)
	}
	if err := s.RemoveWorker(7); err == nil || !strings.Contains(err.Error(), "not a member") {
		t.Errorf("RemoveWorker(7): err = %v, want a membership rejection", err)
	}
}
