package runtime

import (
	"math"
	"time"

	"powerlog/internal/compiler"
	"powerlog/internal/transport"
)

// master coordinates termination. For BSP modes it collects PhaseDone
// reports and issues Continue/Stop verdicts; for async modes it polls
// stats on a timer and applies the paper's two-level criteria: the
// user-level ε on consecutive global results, distributed quiescence for
// fixpoint programs, and the system-level round cap.
type master struct {
	cfg  Config
	plan *compiler.Plan
	conn transport.Conn
	nw   int

	pending []transport.Message // messages received while sending

	rounds    int
	converged bool
}

func newMaster(cfg Config, plan *compiler.Plan, conn transport.Conn) *master {
	return &master{cfg: cfg, plan: plan, conn: conn, nw: cfg.Workers}
}

// bcast sends msg to every worker without blocking on a back-pressured
// inbox: while a worker's channel is full the master keeps draining its
// own inbox (stashing replies for the collect loop), so bulk data can
// never deadlock or starve the termination protocol.
func (m *master) bcast(msg transport.Message) {
	try, canTry := m.conn.(transport.TrySender)
	for j := 0; j < m.nw; j++ {
		if !canTry {
			_ = m.conn.Send(j, msg)
			continue
		}
		var bo backoff
		for {
			ok, err := try.TrySend(j, msg)
			if ok || err != nil {
				break
			}
			select {
			case in, chOk := <-m.conn.Inbox():
				if !chOk {
					return
				}
				m.pending = append(m.pending, in)
				bo.reset()
			default:
				bo.wait()
			}
		}
	}
}

// recv returns the next incoming message, honouring the pending stash.
func (m *master) recv() (transport.Message, bool) {
	if len(m.pending) > 0 {
		msg := m.pending[0]
		m.pending = m.pending[1:]
		return msg, true
	}
	msg, ok := <-m.conn.Inbox()
	return msg, ok
}

func (m *master) run() {
	// The mode registry (policy.go) records which modes run the BSP
	// verdict protocol; everything else — the async family and SSP —
	// terminates via polling.
	if modeBarriered[m.cfg.Mode] {
		m.runBSP()
	} else {
		m.runAsync()
	}
}

// crashAt implements the injector's run-level faults at the top of a
// master round: CrashRound aborts the whole run (broadcast Stop with
// converged=false — the "crash" half of a crash/restore drill), and
// MasterRestartRound asks the caller to forget its termination-detector
// state, as a restarted master process would.
func (m *master) crashAt(round int) (crash, restart bool) {
	inj := m.cfg.Fault
	if inj == nil {
		return false, false
	}
	if inj.CrashRound() == round {
		m.bcast(transport.Message{Kind: transport.Stop})
		return true, false
	}
	return false, inj.MasterRestartRound() == round
}

// runBSP collects one PhaseDone per worker per superstep and decides.
func (m *master) runBSP() {
	eps := m.plan.Termination.Epsilon
	deadline := time.Now().Add(m.cfg.MaxWall)
	armed := false
	for round := 1; ; round++ {
		m.rounds = round
		if crash, restart := m.crashAt(round); crash {
			return
		} else if restart {
			// The ε detector is self-stabilising: losing the armed flag
			// can only delay the stop decision, never corrupt it.
			armed = false
		}
		var sumDelta float64
		anyDirty := false
		for got := 0; got < m.nw; {
			msg, ok := m.recv()
			if !ok {
				return
			}
			if msg.Kind != transport.PhaseDone {
				continue
			}
			got++
			sumDelta += msg.Stats.AccDelta
			anyDirty = anyDirty || msg.Stats.Dirty
		}
		stop := false
		switch {
		case eps > 0:
			if sumDelta >= eps {
				armed = true
			} else if armed || round > 1 {
				stop, m.converged = true, true
			}
			// A true fixpoint also terminates ε programs.
			if !anyDirty && sumDelta == 0 {
				stop, m.converged = true, true
			}
		default:
			if !anyDirty {
				stop, m.converged = true, true
			}
		}
		if round >= m.plan.Termination.MaxIters || time.Now().After(deadline) {
			stop = true
		}
		if stop {
			m.bcast(transport.Message{Kind: transport.Stop})
			return
		}
		m.bcast(transport.Message{Kind: transport.Continue})
	}
}

// runAsync polls worker stats every CheckInterval and stops on the first
// satisfied criterion: (a) ε programs — the difference between two
// consecutive global aggregation results over the Accumulation column
// drops below ε (§5.4's termination check; consecutive checks only count
// when the workers made progress in between, so a scheduler stall cannot
// masquerade as convergence); (b) fixpoint — two consecutive stable
// snapshots (all idle, Σsent == Σrecv, no dirty rows); (c) the
// system-level round cap or wall-clock limit.
func (m *master) runAsync() {
	eps := m.plan.Termination.Epsilon
	deadline := time.Now().Add(m.cfg.MaxWall)
	prevStable := false
	prevSum := math.NaN()
	prevPasses := int64(-1)
	// ε-candidate state: when the ε test first fires, the stop is armed,
	// not taken — candSent remembers the global send watermark at that
	// instant, and the stop is confirmed only once Σrecv has passed it
	// (every delta outstanding at candidate time has been folded) with the
	// aggregate still inside ε. A slow or partitioned link freezes recv
	// below the watermark, so a candidate hiding in-flight deltas cannot
	// confirm; when the link heals, the moved aggregate cancels it.
	candArmed := false
	var candSum float64
	var candSent int64
	for round := 0; ; round++ {
		m.rounds = round + 1
		if crash, restart := m.crashAt(round + 1); crash {
			return
		} else if restart {
			// Forget the detector state a restarted master would lose.
			// Both criteria are self-stabilising — stability must be
			// observed twice and ε needs a fresh pair of aggregates — so
			// the run can only stop later, never wrongly.
			prevStable = false
			prevSum = math.NaN()
			prevPasses = -1
			candArmed = false
		}
		if m.snapshotsDue(round) && !m.runEpisode(round/m.cfg.SnapshotEvery) {
			return
		}
		time.Sleep(m.cfg.CheckInterval)
		m.bcast(transport.Message{Kind: transport.StatsRequest, Round: round})
		var sent, recv, passes int64
		var accSum float64
		allIdle, anyDirty := true, false
		for got := 0; got < m.nw; {
			msg, ok := m.recv()
			if !ok {
				return
			}
			if msg.Kind != transport.StatsReply || msg.Round != round {
				continue
			}
			got++
			sent += msg.Stats.Sent
			recv += msg.Stats.Recv
			passes += msg.Stats.Passes
			accSum += msg.Stats.AccSum
			allIdle = allIdle && msg.Stats.Idle
			anyDirty = anyDirty || msg.Stats.Dirty
		}
		stable := allIdle && sent == recv && !anyDirty
		stop := false
		if stable && prevStable {
			stop, m.converged = true, true
		}
		prevStable = stable
		if eps > 0 && passes-prevPasses >= int64(m.nw) {
			if prevPasses >= 0 && !math.IsNaN(prevSum) && accSum != 0 &&
				!candArmed && math.Abs(accSum-prevSum) < eps {
				candArmed, candSum, candSent = true, accSum, sent
			}
			prevSum, prevPasses = accSum, passes
		} else if prevPasses < 0 {
			prevPasses = passes
			prevSum = accSum
		}
		if candArmed && recv >= candSent {
			if math.Abs(accSum-candSum) < eps {
				stop, m.converged = true, true
			} else {
				// The drained in-flight deltas moved the aggregate by more
				// than ε — the candidate was premature. Keep running.
				candArmed = false
			}
		}
		// The system-level iteration cap counts effective iterations
		// (average compute passes per worker), not master check rounds,
		// so the cap has the same meaning as a superstep limit.
		if passes/int64(m.nw) >= int64(m.plan.Termination.MaxIters) || time.Now().After(deadline) {
			stop = true
		}
		if stop {
			m.bcast(transport.Message{Kind: transport.Stop})
			return
		}
	}
}
