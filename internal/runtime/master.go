package runtime

import (
	"errors"
	"fmt"
	"math"
	"time"

	"powerlog/internal/compiler"
	"powerlog/internal/transport"
)

// ErrWorkerLost is surfaced (wrapped) by Run and RunMaster when a
// collect round times out: a worker died or was partitioned away
// mid-collect, so its PhaseDone/StatsReply will never arrive. Without
// the deadline the master would block forever (the PR-4 follow-up).
var ErrWorkerLost = errors.New("worker lost: missing report within the collect deadline")

// master coordinates termination. For BSP modes it collects PhaseDone
// reports and issues Continue/Stop verdicts; for async modes it polls
// stats on a timer and applies the paper's two-level criteria: the
// user-level ε on consecutive global results, distributed quiescence for
// fixpoint programs, and the system-level round cap.
type master struct {
	cfg  Config
	plan *compiler.Plan
	conn transport.Conn
	nw   int

	pending []transport.Message // messages received while sending
	timer   *time.Timer         // reused collect-deadline timer

	met masterMetrics // observe.go: rounds, collect waits, timeouts

	rounds    int
	converged bool
	err       error // first liveness failure (wraps ErrWorkerLost)

	// Session state (session.go). park makes a converged fixpoint park
	// the fleet (Park + ParkDone collect) instead of stopping it; epoch
	// is the session epoch being computed (1 = initial fixpoint); parked
	// reports whether the last run() ended in a successful park. gRound
	// counts master rounds cumulatively across epochs, so injected
	// CrashRound faults keep one global timeline; passBase is the global
	// pass watermark at the last park, the per-epoch baseline for the
	// async iteration cap; episodes numbers snapshot episodes
	// monotonically across epochs.
	park     bool
	epoch    int
	parked   bool
	gRound   int
	passBase int64
	episodes int

	// Membership state (membership.go, DESIGN.md §11). live marks the
	// slots currently in the fleet over the capacity network (static
	// fleets: the first nw slots, forever); fence numbers membership
	// fences; member is the session's lifecycle callbacks (nil disables
	// live re-join — losses abort, the pre-membership behaviour); cmds
	// carries Session.AddWorker/RemoveWorker requests (nil unless
	// Config.Elastic).
	live   []bool
	fence  int
	member *memberCoordinator
	cmds   chan memberCmd
}

func newMaster(cfg Config, plan *compiler.Plan, conn transport.Conn) *master {
	m := &master{cfg: cfg, plan: plan, conn: conn, nw: cfg.Workers, met: newMasterMetrics(), epoch: 1}
	m.live = make([]bool, cfg.fleetCap())
	for j := 0; j < cfg.Workers; j++ {
		m.live[j] = true
	}
	return m
}

// collectTimeout is the liveness deadline for one message during a
// collect. CollectTimeout = 0 falls back to MaxWall: better a typed
// error at the wall-clock cap than a hang, without risking false
// positives on long compute passes (workers only pump their inboxes at
// blocking points, so a tight default could misfire).
func (m *master) collectTimeout() time.Duration {
	if m.cfg.CollectTimeout > 0 {
		return m.cfg.CollectTimeout
	}
	return m.cfg.MaxWall
}

// bcast sends msg to every worker without blocking on a back-pressured
// inbox: while a worker's channel is full the master keeps draining its
// own inbox (stashing replies for the collect loop), so bulk data can
// never deadlock or starve the termination protocol.
func (m *master) bcast(msg transport.Message) {
	for j, l := range m.live {
		if l {
			m.sendTo(j, msg)
		}
	}
}

// sendTo delivers one message to one worker with bcast's no-deadlock
// discipline. The retry is bounded by the collect deadline: a receiver
// that has not drained a single inbox slot in that long is wedged or
// dead (a crashed worker's inbox fills with peer data and would
// otherwise livelock the master here, before the probe→orphan path can
// ever declare it lost), so the message is dropped like a send error —
// every master→worker message is either re-solicited by a later
// protocol step or follows an endpoint reset that clears the jam.
func (m *master) sendTo(j int, msg transport.Message) {
	try, canTry := m.conn.(transport.TrySender)
	if !canTry {
		_ = m.conn.Send(j, msg)
		return
	}
	var bo backoff
	var deadline time.Time
	for {
		ok, err := try.TrySend(j, msg)
		if ok || err != nil {
			return
		}
		select {
		case in, chOk := <-m.conn.Inbox():
			if !chOk {
				return
			}
			m.pending = append(m.pending, in)
			// Inbox progress says the fleet is moving, not that worker j
			// is draining — the deadline stands.
			bo.reset()
		default:
			if deadline.IsZero() {
				deadline = time.Now().Add(m.collectTimeout())
			} else if time.Now().After(deadline) {
				return
			}
			bo.wait()
		}
	}
}

// recv returns the next incoming message, honouring the pending stash
// and giving up after the collect deadline. timedOut distinguishes a
// deadline expiry (worker lost) from a closed network (ok == false).
// The deadline covers one message, so it effectively resets on every
// report — a collect stalls only when some worker has gone silent for
// the whole timeout, not merely when the fleet reports slowly.
func (m *master) recv() (msg transport.Message, ok, timedOut bool) {
	if len(m.pending) > 0 {
		msg = m.pending[0]
		m.pending = m.pending[1:]
		return msg, true, false
	}
	d := m.collectTimeout()
	if m.timer == nil {
		m.timer = time.NewTimer(d)
	} else {
		m.timer.Reset(d)
	}
	select {
	case msg, ok = <-m.conn.Inbox():
		// Single-goroutine use: a failed Stop means the timer fired
		// concurrently, so its channel holds exactly one value to drain.
		if !m.timer.Stop() {
			<-m.timer.C
		}
		return msg, ok, false
	case <-m.timer.C:
		return transport.Message{}, true, true
	}
}

// lost records a liveness failure — got of nw reports arrived before the
// deadline — and broadcasts a best-effort Stop so surviving workers
// (including BSP peers stuck in awaitPeerRounds on the dead worker's
// marker) unwind instead of hanging.
func (m *master) lost(round, got int) {
	m.met.collectTimeouts.Inc()
	m.err = fmt.Errorf("runtime: collect round %d got %d/%d reports within %v: %w",
		round, got, m.activeCount(), m.collectTimeout(), ErrWorkerLost)
	m.bcast(transport.Message{Kind: transport.Stop})
}

func (m *master) run() {
	// The mode registry (policy.go) records which modes run the BSP
	// verdict protocol; everything else — the async family and SSP —
	// terminates via polling.
	defer m.drainMemberCmds()
	m.parked = false
	// Per-epoch verdict: a later epoch that stops at the iteration cap or
	// wall clock must not inherit an earlier epoch's converged flag.
	m.converged = false
	if modeBarriered[m.cfg.Mode] {
		m.runBSP()
	} else {
		m.runAsync()
	}
}

// parkFleet replaces the Stop broadcast at a converged fixpoint when the
// run is a session epoch: it issues Park and collects one ParkDone per
// worker, after which every worker has fenced and drained its data lanes
// and sits blocked on its inbox. The collect's happens-before edges make
// the fleet's tables safe for the session goroutine to read and mutate
// until it broadcasts EpochStart. A liveness failure here is the same
// ErrWorkerLost as any other collect.
func (m *master) parkFleet(deadline time.Time) {
	m.bcast(transport.Message{Kind: transport.Park, Round: m.epoch})
	for got := 0; got < m.activeCount(); {
		msg, ok, timedOut := m.recv()
		if !ok {
			return
		}
		if timedOut {
			if time.Now().After(deadline) {
				m.bcast(transport.Message{Kind: transport.Stop})
				return
			}
			m.lost(m.gRound, got)
			return
		}
		if msg.Kind == transport.ParkDone && msg.Round == m.epoch {
			got++
		}
	}
	m.parked = true
	m.met.epochs.Inc()
}

// crashAt implements the injector's run-level faults at the top of a
// master round: CrashRound aborts the whole run (broadcast Stop with
// converged=false — the "crash" half of a crash/restore drill), and
// MasterRestartRound asks the caller to forget its termination-detector
// state, as a restarted master process would.
func (m *master) crashAt(round int) (crash, restart bool) {
	inj := m.cfg.Fault
	if inj == nil {
		return false, false
	}
	if inj.CrashRound() == round {
		m.bcast(transport.Message{Kind: transport.Stop})
		return true, false
	}
	return false, inj.MasterRestartRound() == round
}

// runBSP collects one PhaseDone per worker per superstep and decides.
func (m *master) runBSP() {
	eps := m.plan.Termination.Epsilon
	deadline := time.Now().Add(m.cfg.MaxWall)
	armed := false
	for round := 1; ; round++ {
		m.rounds = round
		m.gRound++
		if crash, restart := m.crashAt(m.gRound); crash {
			return
		} else if restart {
			// The ε detector is self-stabilising: losing the armed flag
			// can only delay the stop decision, never corrupt it.
			armed = false
		}
		m.met.rounds.Inc()
		collectStart := time.Now()
		var sumDelta float64
		anyDirty := false
		for got := 0; got < m.activeCount(); {
			msg, ok, timedOut := m.recv()
			if !ok {
				return
			}
			if timedOut {
				if time.Now().After(deadline) {
					// The wall budget expired mid-collect: an honest
					// not-converged abort (the MaxWall fallback deadline
					// always lands here), not a lost worker.
					m.bcast(transport.Message{Kind: transport.Stop})
					return
				}
				m.lost(round, got)
				return
			}
			if msg.Kind != transport.PhaseDone {
				continue
			}
			got++
			sumDelta += msg.Stats.AccDelta
			anyDirty = anyDirty || msg.Stats.Dirty
		}
		m.met.collectWaitUS.Observe(uint64(time.Since(collectStart).Microseconds()))
		stop := false
		switch {
		case eps > 0:
			if sumDelta >= eps {
				armed = true
			} else if armed || round > 1 {
				stop, m.converged = true, true
			}
			// A true fixpoint also terminates ε programs.
			if !anyDirty && sumDelta == 0 {
				stop, m.converged = true, true
			}
		default:
			if !anyDirty {
				stop, m.converged = true, true
			}
		}
		if round >= m.plan.Termination.MaxIters || time.Now().After(deadline) {
			stop = true
		}
		if stop {
			if m.park && m.converged {
				m.parkFleet(deadline)
			} else {
				m.bcast(transport.Message{Kind: transport.Stop})
			}
			return
		}
		m.bcast(transport.Message{Kind: transport.Continue})
	}
}

// runAsync polls worker stats every CheckInterval and stops on the first
// satisfied criterion: (a) ε programs — the difference between two
// consecutive global aggregation results over the Accumulation column
// drops below ε (§5.4's termination check; consecutive checks only count
// when the workers made progress in between, so a scheduler stall cannot
// masquerade as convergence); (b) fixpoint — two consecutive stable
// snapshots (all idle, Σsent == Σrecv, no dirty rows); (c) the
// system-level round cap or wall-clock limit.
func (m *master) runAsync() {
	eps := m.plan.Termination.Epsilon
	deadline := time.Now().Add(m.cfg.MaxWall)
	prevStable := false
	prevSum := math.NaN()
	prevPasses := int64(-1)
	// ε-candidate state: when the ε test first fires, the stop is armed,
	// not taken — candSent remembers the global send watermark at that
	// instant, and the stop is confirmed only once Σrecv has passed it
	// (every delta outstanding at candidate time has been folded) with the
	// aggregate still inside ε. A slow or partitioned link freezes recv
	// below the watermark, so a candidate hiding in-flight deltas cannot
	// confirm; when the link heals, the moved aggregate cancels it.
	candArmed := false
	var candSum float64
	var candSent int64
	// resetDetectors forgets all termination-detector state. Every
	// membership fence zeroes the fleet's send/recv counters and may
	// rewind or migrate state, so anything remembered from before the
	// fence would compare a pre-fence world against a post-fence one.
	// Both criteria are self-stabilising — stability must be observed
	// twice and ε needs a fresh pair of aggregates — so a reset can only
	// delay the stop decision, never corrupt it.
	resetDetectors := func() {
		prevStable = false
		prevSum = math.NaN()
		prevPasses = -1
		candArmed = false
	}
	seen := make([]bool, len(m.live))
	for round := 0; ; round++ {
		m.rounds = round + 1
		m.gRound++
		if crash, restart := m.crashAt(m.gRound); crash {
			return
		} else if restart {
			// Forget the detector state a restarted master would lose.
			resetDetectors()
		}
		if changed, aborted := m.pollMemberCmds(); aborted {
			return
		} else if changed {
			resetDetectors()
		}
		if m.snapshotsDue(round) {
			// Episodes are numbered by a cumulative counter so epochs stay
			// monotonic across session fixpoints (round restarts at 0 each
			// epoch; reusing its quotient would overwrite newer cuts).
			m.episodes++
			if !m.runEpisode(m.episodes) {
				return
			}
		}
		time.Sleep(m.cfg.CheckInterval)
		m.met.rounds.Inc()
		m.bcast(transport.Message{Kind: transport.StatsRequest, Round: round})
		collectStart := time.Now()
		var sent, recv, passes int64
		var accSum float64
		allIdle, anyDirty := true, false
		for j := range seen {
			seen[j] = false
		}
		probed, recovered := false, false
		for got := 0; got < m.activeCount(); {
			msg, ok, timedOut := m.recv()
			if !ok {
				return
			}
			if timedOut {
				if time.Now().After(deadline) {
					// Wall abort, not a lost worker (see runBSP).
					m.bcast(transport.Message{Kind: transport.Stop})
					return
				}
				if !probed {
					// Second chance: a worker deep in a long compute pass
					// only pumps its inbox at blocking points, so one
					// missed deadline distinguishes nothing. Re-solicit
					// the silent workers directly; only a second silence
					// makes them lost.
					probed = true
					m.met.collectProbes.Inc()
					for j, l := range m.live {
						if l && !seen[j] {
							m.sendTo(j, transport.Message{Kind: transport.StatsRequest, Round: round})
						}
					}
					continue
				}
				if m.recoverLost(seen) {
					// The fleet was repaired by a membership fence; this
					// round's partial sums describe a world that no longer
					// exists, so abandon them and poll afresh.
					recovered = true
					break
				}
				m.lost(round, got)
				return
			}
			if msg.Kind != transport.StatsReply || msg.Round != round {
				continue
			}
			if msg.From >= 0 && msg.From < len(seen) {
				if seen[msg.From] {
					// The probe re-solicited a reply that was merely slow;
					// count each worker once.
					continue
				}
				seen[msg.From] = true
			}
			got++
			sent += msg.Stats.Sent
			recv += msg.Stats.Recv
			passes += msg.Stats.Passes
			accSum += msg.Stats.AccSum
			allIdle = allIdle && msg.Stats.Idle
			anyDirty = anyDirty || msg.Stats.Dirty
		}
		if recovered {
			resetDetectors()
			continue
		}
		m.met.collectWaitUS.Observe(uint64(time.Since(collectStart).Microseconds()))
		stable := allIdle && sent == recv && !anyDirty
		stop := false
		if stable && prevStable {
			stop, m.converged = true, true
		}
		prevStable = stable
		if eps > 0 && passes-prevPasses >= int64(m.activeCount()) {
			if prevPasses >= 0 && !math.IsNaN(prevSum) && accSum != 0 &&
				!candArmed && math.Abs(accSum-prevSum) < eps {
				candArmed, candSum, candSent = true, accSum, sent
			}
			prevSum, prevPasses = accSum, passes
		} else if prevPasses < 0 {
			prevPasses = passes
			prevSum = accSum
		}
		if candArmed && recv >= candSent {
			if math.Abs(accSum-candSum) < eps {
				stop, m.converged = true, true
			} else {
				// The drained in-flight deltas moved the aggregate by more
				// than ε — the candidate was premature. Keep running.
				candArmed = false
			}
		}
		// The system-level iteration cap counts effective iterations
		// (average compute passes per worker), not master check rounds,
		// so the cap has the same meaning as a superstep limit. passBase
		// rebases the watermark at each session park so every epoch gets
		// the full budget (workers' pass counters run on across epochs).
		if (passes-m.passBase)/int64(m.activeCount()) >= int64(m.plan.Termination.MaxIters) || time.Now().After(deadline) {
			stop = true
		}
		if stop {
			if m.park && m.converged {
				m.passBase = passes
				m.parkFleet(deadline)
			} else {
				m.bcast(transport.Message{Kind: transport.Stop})
			}
			return
		}
	}
}
