package runtime

import (
	"fmt"
	"time"

	"powerlog/internal/ckpt"
	"powerlog/internal/graph"
	"powerlog/internal/transport"
)

// Elastic cluster membership (DESIGN.md §11): live worker re-join and
// shard rebalancing without restarting the fixpoint.
//
// The protocol has one primitive, the membership fence — a bounded
// Chandy–Lamport episode on the data lanes that establishes a globally
// quiescent cut, applies a membership or state change inside it, and
// resets the termination-protocol counters so the master's counting
// quiescence restarts from an exact zero. Three events drive a fence:
//
//   - crash re-join: the master's liveness probe declares a worker lost
//     (Orphan), the session respawns its slot on a fresh transport
//     endpoint, and the fence repairs state — survivors replay their
//     accumulations toward the replacement's keys (selective aggregates,
//     sound by Theorem 3's replay tolerance) or the whole fleet rolls
//     back to the newest consistent-cut checkpoint (combining
//     aggregates, which tolerate neither loss nor replay);
//   - scale-out (Session.AddWorker): a new worker is admitted, every
//     worker adds it to the consistent-hash ring at its fence point, and
//     rows that re-hash to the newcomer migrate as keyed Handoff
//     streams;
//   - scale-in (Session.RemoveWorker): a graceful Orphan marks the slot
//     leaving; at the fence it migrates its whole shard out, acks, and
//     retires after Release.
//
// Fence messages overload the Join kind by direction: master → worker
// it is the fence request (Round = fence epoch, Stats.Sent = rollback
// epoch or -1 for a seed reset, Stats.Recv = admitted id + 1), worker →
// worker it is the cut marker on the data lane, worker → master the
// ack. Every fence participant — survivors, the replacement, the
// newcomer, the leaver — sends markers to and requires markers from all
// other participants, so the cut needs no knowledge of who is a
// replacement; per-pair FIFO guarantees all pre-fence data is folded
// before the cut completes, and the transport fences a reset endpoint's
// stale connection off the network, so no pre-fence straggler can leak
// past the cut.

// vnodesPerMember is how many ring points each member contributes.
// 64 keeps the expected load imbalance under a few percent for the
// small fleets the in-process runtime targets while the ring stays tiny
// (cap × 64 points).
const vnodesPerMember = 64

// ringPoint is one vnode on the consistent-hash ring.
type ringPoint struct {
	hash uint64
	id   int32
}

// shardRoute maps keys to owning workers. Static fleets (members == nil)
// use the original modulo partitioning — bit-identical routing to the
// pre-membership engine. Elastic fleets route over a consistent-hash
// ring rebuilt from the current membership, so adding or removing a
// member moves only the key ranges owned by that member's vnodes.
type shardRoute struct {
	mod     int    // static: modulo over the fixed fleet size
	members []bool // elastic: current membership by slot (nil = static)
	ring    []ringPoint
}

func newShardRoute(cfg Config) *shardRoute {
	r := &shardRoute{mod: cfg.Workers}
	if cfg.Elastic {
		r.members = make([]bool, cfg.fleetCap())
		for j := 0; j < cfg.Workers; j++ {
			r.members[j] = true
		}
		r.rebuild()
	}
	return r
}

// pointHash places vnode replica rep of member id on the ring. Pure
// function of (id, rep), so every worker — including one admitted
// mid-run — derives the identical ring from the same membership.
func pointHash(id, rep int) uint64 {
	x := uint64(id+1)*0x9E3779B97F4A7C15 ^ uint64(rep+1)*0xBF58476D1CE4E5B9
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (r *shardRoute) rebuild() {
	r.ring = r.ring[:0]
	for id, in := range r.members {
		if !in {
			continue
		}
		for rep := 0; rep < vnodesPerMember; rep++ {
			r.ring = append(r.ring, ringPoint{hash: pointHash(id, rep), id: int32(id)})
		}
	}
	// Insertion sort territory would do, but keep it simple and exact:
	// sort by hash, tie-break by id so the ring is deterministic even in
	// the (astronomically unlikely) event of a hash collision.
	points := r.ring
	for i := 1; i < len(points); i++ {
		p := points[i]
		j := i - 1
		for j >= 0 && (points[j].hash > p.hash || (points[j].hash == p.hash && points[j].id > p.id)) {
			points[j+1] = points[j]
			j--
		}
		points[j+1] = p
	}
}

// owner returns the worker that owns key under the current membership.
func (r *shardRoute) owner(key int64) int {
	if r.members == nil {
		return graph.Partition(key, r.mod)
	}
	h := hashKey(key)
	// First ring point with hash >= h, wrapping to the start.
	lo, hi := 0, len(r.ring)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.ring[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.ring) {
		lo = 0
	}
	return int(r.ring[lo].id)
}

// participant reports whether slot j takes part in a fence under the
// current membership (the admitted newcomer is added by the caller).
func (r *shardRoute) participant(j int) bool {
	if r.members == nil {
		return j < r.mod
	}
	return r.members[j]
}

// set replaces the membership (elastic only) and rebuilds the ring.
func (r *shardRoute) set(members []bool) {
	if r.members == nil {
		return
	}
	copy(r.members, members)
	r.rebuild()
}

func (r *shardRoute) add(id int) {
	if r.members == nil || r.members[id] {
		return
	}
	r.members[id] = true
	r.rebuild()
}

func (r *shardRoute) remove(id int) {
	if r.members == nil || !r.members[id] {
		return
	}
	r.members[id] = false
	r.rebuild()
}

// ---------------------------------------------------------------------
// Worker side: the fence state machine.
// ---------------------------------------------------------------------

// maxSteps is the "nothing to wait for" sentinel the peer-minimum scans
// return when membership skips every peer.
const maxSteps = int(^uint(0) >> 1)

// peerSkip reports whether slot j is excluded from peer-minimum scans:
// self, crash-orphaned peers (their replacement restarts every clock at
// the fence), and — on elastic fleets — slots outside the membership.
func (w *worker) peerSkip(j int) bool {
	if j == w.id || w.down[j] {
		return true
	}
	if w.route.members != nil {
		return !w.route.members[j]
	}
	return false
}

// eachPeer calls f for every current member except this worker (static
// fleets: every other slot). Down peers are included — broadcasts to a
// lost slot reach its replacement, or die harmlessly with the reset
// inbox.
func (w *worker) eachPeer(f func(j int)) {
	if w.route.members == nil {
		for j := 0; j < w.nw; j++ {
			if j != w.id {
				f(j)
			}
		}
		return
	}
	for j, in := range w.route.members {
		if in && j != w.id {
			f(j)
		}
	}
}

// eachFenceParticipant iterates the fence's marker set: every member
// plus the admitted newcomer (if any), minus self. Crash-orphaned slots
// stay in the set — their freshly spawned replacement sends and expects
// markers like any survivor.
func (w *worker) eachFenceParticipant(admit int, f func(j int)) {
	for j := range w.joinMarks {
		if j == w.id {
			continue
		}
		if j == admit || w.route.participant(j) {
			f(j)
		}
	}
}

// fenceCohort freezes the fence's marker set at entry: the pre-change
// membership plus the admitted newcomer. Both marker rounds use this
// frozen set — applyMembership changes the route between them, and a
// leaver dropped from the live membership still has Handoffs in flight
// that its phase-2 marker must fence.
func (w *worker) fenceCohort(admit int) []bool {
	set := make([]bool, len(w.joinMarks))
	w.eachFenceParticipant(admit, func(j int) { set[j] = true })
	return set
}

// broadcastJoinMark sends one fence cut marker to every cohort member.
// phase 1 fences pre-fence data, phase 2 (Stats.Sent = 1) fences the
// migration Handoffs sent between the two rounds.
func (w *worker) broadcastJoinMark(epoch, phase int, cohort []bool) {
	var stats transport.Stats
	if phase == 2 {
		stats.Sent = 1
	}
	for j, in := range cohort {
		if in {
			w.enqueue(j, transport.Message{Kind: transport.Join, Round: epoch, Stats: stats})
		}
	}
}

func (w *worker) minJoinMarks(cohort []bool, marks []int) int {
	least := maxSteps
	for j, in := range cohort {
		if in && marks[j] < least {
			least = marks[j]
		}
	}
	return least
}

// maybeJoinFence joins a pending membership fence. Called only at pass
// boundaries and gate waits — the safe points where buffers are
// flushable and no pass is half-scanned (the same safe points snapshot
// episodes use).
func (w *worker) maybeJoinFence() {
	e := w.joinReqEpoch
	if e <= w.joinDone || w.stopped {
		return
	}
	w.runJoinFence(e)
}

// runJoinFence executes one fence as a participant:
//
//  1. flush all buffers (suppressed toward crash-orphaned slots) and
//     fence every link with first-round Join markers;
//  2. fold incoming data until every participant's first marker arrives
//     — per-pair FIFO makes the resulting cut consistent;
//  3. inside the cut: apply the membership change, migrate re-hashed
//     rows (Handoff), and repair state per the master's rollback
//     directive;
//  4. fence every link again with second-round markers and fold until
//     every participant's second marker arrives — each sender's marker
//     follows its Handoffs on the same FIFO link, so when the round
//     completes every migrated row destined here has been folded;
//  5. zero the termination counters and ack the master. Because every
//     participant acks only after step 4, the master's Release
//     certifies global migration quiescence: a parked session may read
//     and mutate tables the moment its fence call returns;
//  6. fold until Release, then clear orphan flags, reset per-link
//     protocol state for replaced/joined/left slots, and resume (or
//     retire).
func (w *worker) runJoinFence(e int) {
	admit := w.joinAdmit
	rollback := w.joinRollback
	cohort := w.fenceCohort(admit)
	w.flushAll()
	w.broadcastJoinMark(e, 1, cohort)
	for !w.stopped && !w.sendDead.Load() && w.minJoinMarks(cohort, w.joinMarks) < e {
		select {
		case m, ok := <-w.conn.Inbox():
			if !ok {
				w.stopped = true
				return
			}
			w.handle(m)
		case <-time.After(markerResend):
			w.met.markerResends.Inc()
			w.broadcastJoinMark(e, 1, cohort)
		}
	}
	if w.stopped || w.sendDead.Load() {
		return
	}
	w.applyMembership(admit)
	w.repairState(rollback)
	w.broadcastJoinMark(e, 2, cohort)
	for !w.stopped && !w.sendDead.Load() && w.minJoinMarks(cohort, w.joinMarks2) < e {
		select {
		case m, ok := <-w.conn.Inbox():
			if !ok {
				w.stopped = true
				return
			}
			w.handle(m)
		case <-time.After(markerResend):
			w.met.markerResends.Inc()
			w.broadcastJoinMark(e, 2, cohort)
		}
	}
	if w.stopped || w.sendDead.Load() {
		return
	}
	// The cut is doubly quiescent: every pre-fence delta and every
	// migrated row on a live link has been folded, nothing is in flight,
	// and the transport has fenced off any dead sender's stale
	// connection. Zeroing here on every participant gives the master's
	// Σsent == Σrecv test an exact fresh baseline.
	w.sent, w.recv, w.flushes = 0, 0, 0
	w.enqueue(w.master, transport.Message{Kind: transport.Join, Round: e})
	for !w.stopped && !w.sendDead.Load() && w.releaseEpoch < e {
		select {
		case m, ok := <-w.conn.Inbox():
			if !ok {
				w.stopped = true
				return
			}
			w.handle(m)
		case <-time.After(markerResend):
			// A peer still quiescing may be waiting on a marker the
			// injector dropped; re-fencing is idempotent (receivers keep
			// the max).
			w.broadcastJoinMark(e, 2, cohort)
		}
	}
	if w.stopped || w.sendDead.Load() {
		return
	}
	w.finishFence(e, admit)
}

// applyMembership commits a scale event to the local route and migrates
// the rows it re-homes. No-op for static fleets (crash re-join replaces
// a slot in place) and for crash fences on elastic fleets (membership
// unchanged).
func (w *worker) applyMembership(admit int) {
	if w.route.members == nil {
		return
	}
	changed := false
	if admit >= 0 && !w.route.members[admit] {
		w.route.add(admit)
		changed = true
	}
	for j, leaving := range w.leaving {
		if leaving && w.route.members[j] {
			w.route.remove(j)
			changed = true
		}
	}
	if changed {
		w.migrateRows()
	}
}

// migrateRows hands every row this worker no longer owns to its new
// owner: Accumulation values as Handoff(Round 0) batches installed via
// SetAcc, pending Intermediate deltas as Handoff(Round 1) batches folded
// via FoldDelta (which re-dirties them, so the new owner resumes their
// propagation). The consistent-hash ring guarantees each key moves from
// exactly one sender to exactly one receiver, and the fence guarantees
// the receiver folds the batches before its post-Release traffic — so
// migration neither loses nor double-counts state for either aggregate
// class.
func (w *worker) migrateRows() {
	ident := w.plan.Op.Identity()
	type movedRow struct {
		k          int64
		acc, inter float64
	}
	var moved []movedRow
	w.table.RangeRows(func(k int64, acc, inter float64) bool {
		if w.owner(k) != w.id {
			moved = append(moved, movedRow{k, acc, inter})
		}
		return true
	})
	if len(moved) == 0 {
		return
	}
	accOut := make([][]transport.KV, len(w.bufs))
	interOut := make([][]transport.KV, len(w.bufs))
	for _, r := range moved {
		o := w.owner(r.k)
		if r.acc != ident {
			accOut[o] = append(accOut[o], transport.KV{K: r.k, V: r.acc})
		}
		if r.inter != ident {
			interOut[o] = append(interOut[o], transport.KV{K: r.k, V: r.inter})
		}
		w.table.Invalidate(r.k)
	}
	for o := range accOut {
		w.sendHandoff(o, 0, accOut[o])
		w.sendHandoff(o, 1, interOut[o])
	}
	// Invalidate bypasses the monotone fold the running Σacc tracks.
	w.resyncAccSum()
}

func (w *worker) sendHandoff(dst, round int, kvs []transport.KV) {
	for len(kvs) > 0 {
		n := len(kvs)
		if n > w.cfg.BatchMax {
			n = w.cfg.BatchMax
		}
		batch := append(transport.GetBatch(n), kvs[:n]...)
		w.enqueue(dst, transport.Message{Kind: transport.Handoff, Round: round, KVs: batch})
		kvs = kvs[n:]
	}
}

// acceptHandoff folds one migration batch: Round 0 installs Accumulation
// values, Round 1 re-folds pending Intermediate deltas.
func (w *worker) acceptHandoff(m transport.Message) {
	if m.Round == 0 {
		for _, kv := range m.KVs {
			w.table.SetAcc(kv.K, kv.V)
			w.accSum += kv.V
		}
	} else {
		for _, kv := range m.KVs {
			w.table.FoldDelta(kv.K, kv.V)
		}
	}
	transport.PutBatch(m.KVs)
}

// repairState applies the master's rollback directive inside the cut.
//
//	rollback > 0: reload this shard from consistent-cut epoch `rollback`
//	              (combining aggregates after a crash — the whole fleet
//	              rewinds to the same cut);
//	rollback < 0: reset to the ΔX¹ seed (combining aggregates with no
//	              usable cut — only issued when the seed is still the
//	              true initial state, i.e. no mutations applied);
//	rollback = 0: keep state; survivors of a crash replay their
//	              accumulations toward the lost shard's keys (selective
//	              aggregates — Theorem 3 makes the replay idempotent).
func (w *worker) repairState(rollback int64) {
	switch {
	case rollback > 0:
		w.reloadCut(int(rollback))
	case rollback < 0:
		w.resetToSeed()
	default:
		if w.plan.Op.Selective() && w.anyDown() {
			w.replayForDown()
		}
	}
}

func (w *worker) anyDown() bool {
	for _, d := range w.down {
		if d {
			return true
		}
	}
	return false
}

// dropBuffers discards every buffered outbound update (rollback paths:
// the reloaded or reseeded state re-derives them).
func (w *worker) dropBuffers() {
	for _, b := range w.bufs {
		b.drainInto(func(int64, float64) {})
	}
}

func (w *worker) resetTable() {
	w.dropBuffers()
	w.table = w.newTable()
	w.apply = w.table
	w.accSum, w.accDelta, w.accFolds = 0, 0, 0
}

// reloadCut rewinds this shard to the given consistent-cut epoch. The
// session holds a checkpoint read lease across the fence, so the epoch
// the master chose cannot be pruned between its decision and this read;
// a missing shard therefore only happens under external damage, in
// which case the seed fallback at least keeps selective programs
// correct (monotone re-derivation) rather than wedging the fence.
func (w *worker) reloadCut(epoch int) {
	w.resetTable()
	rows, _, err := ckpt.LoadShard(w.cfg.SnapshotDir, epoch, w.id)
	if err != nil {
		w.seed(w.plan.InitMRA)
		return
	}
	w.restore(rows)
}

func (w *worker) resetToSeed() {
	w.resetTable()
	w.seed(w.plan.InitMRA)
}

// replayForDown re-propagates every accumulated value whose
// contributions reach keys owned by a crash-orphaned slot, buffering
// them for the replacement (flushes toward down slots stay suppressed
// until Release). Together with the replacement's own warm-start or
// seed, this re-derives the lost shard: boundary contributions arrive
// by replay, interior chains re-derive locally from them. Selective
// aggregates only — replayed deltas are idempotent under min/max
// (Theorem 3), so values the replacement already has simply re-fold.
func (w *worker) replayForDown() {
	w.table.Range(func(k int64, acc float64) bool {
		w.plan.PropagateInto(w.scratch, k, acc, func(dst int64, v float64) {
			if o := w.owner(dst); o != w.id && w.down[o] {
				w.bufs[o].add(dst, v)
			}
		})
		return true
	})
}

// finishFence commits the fence at Release: orphan flags clear, per-link
// protocol state (Data sequencing, dedup windows, marker clocks) resets
// for every replaced, admitted, or departed slot — both ends of such a
// link reset symmetrically, while survivor↔survivor links keep their
// continuity — and a leaving worker retires.
func (w *worker) finishFence(e, admit int) {
	for j := range w.down {
		if w.down[j] {
			w.down[j] = false
			w.resetLink(j, e)
		}
	}
	for j, leaving := range w.leaving {
		if !leaving {
			continue
		}
		w.leaving[j] = false
		w.resetLink(j, e)
		if j == w.id {
			w.retired = true
			w.stopped = true
		}
	}
	if admit >= 0 && admit != w.id {
		w.resetLink(admit, e)
	}
	w.joinDone = e
	w.joinGate = false
	if w.scan != nil {
		// Migration / rollback / replay changed the dirty set out from
		// under the subshard pool's pacing estimate.
		w.scan.lastDrained = w.table.DirtyApprox()
	}
}

// resetLink clears link j's protocol state after fence e replaced,
// admitted, or retired that slot. The marker clocks are epoch-stamped
// and must only be cleared UP TO the fence being committed: the master
// moves on to its next queued fence the moment it sends this one's
// Release, so the next fence's newcomer — possibly spawned into this
// same slot — can broadcast its first-round markers before our Release
// arrives. Unconditionally zeroing the clocks here would erase such a
// marker, and the newcomer never re-sends round-1 markers once it
// advances to round 2: every other participant would fence while this
// worker resends round-1 markers forever, wedging the fence (and the
// Apply driving it, and any Close waiting behind that).
func (w *worker) resetLink(j, e int) {
	w.dataSeq[j] = 0
	w.dataSeen[j] = dedupWindow{}
	w.peerSteps[j] = 0
	w.snapMarks[j] = 0
	w.parkMarks[j] = 0
	if w.joinMarks[j] <= e {
		w.joinMarks[j] = 0
	}
	if w.joinMarks2[j] <= e {
		w.joinMarks2[j] = 0
	}
}

// awaitAdmission is the gated prologue of a worker spawned into a
// running fixpoint (crash replacement or scale-out newcomer): it sits on
// its inbox until the master's fence request arrives, participates in
// that fence like any survivor, and returns once Released — at which
// point its table, route, and link state are consistent with the fleet
// and the normal compute loop may start.
func (w *worker) awaitAdmission() {
	for !w.stopped && !w.sendDead.Load() && w.joinDone == 0 {
		if w.joinReqEpoch > w.joinDone {
			w.runJoinFence(w.joinReqEpoch)
			continue
		}
		select {
		case m, ok := <-w.conn.Inbox():
			if !ok {
				w.stopped = true
				return
			}
			w.handle(m)
		case <-time.After(markerResend):
		}
	}
}

// ---------------------------------------------------------------------
// Master side: liveness recovery and scale coordination.
// ---------------------------------------------------------------------

// memberCoordinator is the session's half of the membership layer: the
// master drives the wire protocol, the session owns worker lifecycles
// (goroutines, transport endpoints, checkpoint reads). All callbacks run
// on the session goroutine — the same one executing master.run — so
// they may touch session state freely.
type memberCoordinator struct {
	// spawn replaces lost worker id on a fresh endpoint and reports the
	// fence's rollback directive (see worker.repairState). ok=false
	// means the loss is unrecoverable (e.g. a combining aggregate with
	// no cut covering the applied mutations) and the master falls back
	// to the abort path.
	spawn func(id int) (rollback int64, ok bool)
	// admit stands up a brand-new worker in slot id for scale-out.
	admit func(id int) bool
	// retire drops a slot after scale-in completes.
	retire func(id int)
	// released fires after every successful fence (lease release,
	// counter-baseline reset).
	released func()
}

// memberCmd is one Session.AddWorker / RemoveWorker request, processed
// by the master between poll rounds.
type memberCmd struct {
	add   bool
	id    int
	reply chan memberCmdResult
}

type memberCmdResult struct {
	id  int
	err error
}

func (m *master) activeCount() int {
	n := 0
	for _, l := range m.live {
		if l {
			n++
		}
	}
	return n
}

// fenceTimeout bounds one fence: quiesce + (possibly) a checkpoint
// reload per worker + migration. Far looser than a collect — disk is
// involved — but still bounded so a worker dying mid-fence surfaces as
// an error, not a hang.
func (m *master) fenceTimeout() time.Duration {
	d := 20 * m.collectTimeout()
	if d < 2*time.Second {
		d = 2 * time.Second
	}
	if m.cfg.MaxWall > 0 && d > m.cfg.MaxWall {
		d = m.cfg.MaxWall
	}
	return d
}

// runFence drives one membership fence: broadcast the request, collect
// one ack per participant, broadcast Release. admit >= 0 additionally
// includes (and afterwards activates) a not-yet-live slot. Returns
// false on an unrecoverable failure (m.err set, fleet stopped).
func (m *master) runFence(rollback int64, admit int) bool {
	m.fence++
	e := m.fence
	req := transport.Message{Kind: transport.Join, Round: e,
		Stats: transport.Stats{Sent: rollback, Recv: int64(admit) + 1}}
	m.bcast(req)
	if admit >= 0 {
		m.sendTo(admit, req)
	}
	need := m.activeCount()
	if admit >= 0 {
		need++
	}
	deadline := time.Now().Add(m.fenceTimeout())
	for got := 0; got < need; {
		msg, ok, timedOut := m.recv()
		if !ok {
			return false
		}
		if timedOut {
			if time.Now().After(deadline) {
				m.met.collectTimeouts.Inc()
				m.err = fmt.Errorf("runtime: membership fence %d got %d/%d acks within %v: %w",
					e, got, need, m.fenceTimeout(), ErrWorkerLost)
				m.bcast(transport.Message{Kind: transport.Stop})
				return false
			}
			continue
		}
		if msg.Kind == transport.Join && msg.Round == e {
			got++
		}
		// Anything else (late stats replies, duplicate acks) is
		// irrelevant mid-fence; the poll loop restarts after Release.
	}
	rel := transport.Message{Kind: transport.Release, Round: e}
	m.bcast(rel)
	if admit >= 0 {
		m.sendTo(admit, rel)
		m.live[admit] = true
	}
	if m.member.released != nil {
		m.member.released()
	}
	return true
}

// awaitParkDone collects the park handshake of a worker admitted into an
// already-parked fleet. After the fence's Release the newcomer parks like
// any worker at an epoch boundary: it fences the data lanes with
// ParkMarks (the parked survivors' resend loops answer in kind, their
// routes including it after the fence) and reports ParkDone. Only then is
// the fleet quiescent again, so a parked-fleet AddWorker must not return
// — and the session's next Apply must not read or mutate tables — before
// that ParkDone arrives.
func (m *master) awaitParkDone(id int) bool {
	deadline := time.Now().Add(m.fenceTimeout())
	for {
		msg, ok, timedOut := m.recv()
		if !ok {
			return false
		}
		if timedOut {
			if time.Now().After(deadline) {
				m.met.collectTimeouts.Inc()
				m.err = fmt.Errorf("runtime: admitted worker %d did not park within %v: %w",
					id, m.fenceTimeout(), ErrWorkerLost)
				m.bcast(transport.Message{Kind: transport.Stop})
				return false
			}
			continue
		}
		if msg.Kind == transport.ParkDone && msg.From == id && msg.Round == m.epoch {
			return true
		}
	}
}

// recoverLost attempts live re-join for the workers that stayed silent
// through a stats collect and its second-chance probe. It returns true
// when the fleet has been repaired and the poll loop should continue
// (with its detector state reset); false sends the caller to the
// abort path.
func (m *master) recoverLost(seen []bool) bool {
	if m.member == nil {
		return false
	}
	var lost []int
	for j, l := range m.live {
		if l && !seen[j] {
			lost = append(lost, j)
		}
	}
	if len(lost) == 0 || len(lost) >= m.activeCount() {
		// Nothing identifiably dead, or no survivors to re-join against.
		return false
	}
	start := time.Now()
	// Orphan first, then reset+respawn: the copy of the Orphan queued to
	// the doomed slot's old inbox dies with it at ResetConn, so a
	// replacement never sees itself declared down; survivors suppress
	// flushes to the slot and skip it in their peer-minimum scans, which
	// unwedges any gate or episode blocked on the dead worker.
	for _, id := range lost {
		m.bcast(transport.Message{Kind: transport.Orphan, Round: id})
		m.met.memberOrphans.Inc()
	}
	rollback := int64(0)
	for _, id := range lost {
		rb, ok := m.member.spawn(id)
		if !ok {
			return false
		}
		if rb != 0 {
			rollback = rb
		}
	}
	if !m.runFence(rollback, -1) {
		return false
	}
	m.met.memberJoins.Add(uint64(len(lost)))
	m.met.memberHandoffUS.Observe(uint64(time.Since(start).Microseconds()))
	return true
}

// pollMemberCmds applies queued AddWorker/RemoveWorker requests. It
// returns true when a fence ran (the caller resets its termination
// detector) and sets aborted when a fence failed unrecoverably.
func (m *master) pollMemberCmds() (changed, aborted bool) {
	if m.cmds == nil {
		return false, false
	}
	for {
		select {
		case cmd := <-m.cmds:
			ok := m.applyMemberCmd(cmd)
			changed = true
			if !ok {
				return changed, true
			}
		default:
			return changed, false
		}
	}
}

func (m *master) applyMemberCmd(cmd memberCmd) bool {
	if cmd.add {
		id := -1
		for j, l := range m.live {
			if !l {
				id = j
				break
			}
		}
		if id < 0 {
			cmd.reply <- memberCmdResult{id: -1,
				err: fmt.Errorf("runtime: fleet is at its MaxWorkers capacity (%d)", len(m.live))}
			return true
		}
		if !m.member.admit(id) {
			cmd.reply <- memberCmdResult{id: -1, err: fmt.Errorf("runtime: could not stand up worker %d", id)}
			return true
		}
		start := time.Now()
		if !m.runFence(0, id) {
			cmd.reply <- memberCmdResult{id: -1, err: m.err}
			return false
		}
		m.met.memberJoins.Inc()
		m.met.memberHandoffUS.Observe(uint64(time.Since(start).Microseconds()))
		cmd.reply <- memberCmdResult{id: id}
		return true
	}
	id := cmd.id
	if id < 0 || id >= len(m.live) || !m.live[id] {
		cmd.reply <- memberCmdResult{id: id, err: fmt.Errorf("runtime: worker %d is not a member", id)}
		return true
	}
	if m.activeCount() <= 1 {
		cmd.reply <- memberCmdResult{id: id, err: fmt.Errorf("runtime: cannot remove the last worker")}
		return true
	}
	start := time.Now()
	// A graceful Orphan (Stats.Sent = 1): the slot participates in the
	// fence, migrates its whole shard out, and retires after Release.
	m.bcast(transport.Message{Kind: transport.Orphan, Round: id, Stats: transport.Stats{Sent: 1}})
	m.met.memberOrphans.Inc()
	if !m.runFence(0, -1) {
		cmd.reply <- memberCmdResult{id: id, err: m.err}
		return false
	}
	m.live[id] = false
	m.member.retire(id)
	m.met.memberHandoffUS.Observe(uint64(time.Since(start).Microseconds()))
	cmd.reply <- memberCmdResult{id: id}
	return true
}

// drainMemberCmds rejects whatever is still queued when the fixpoint
// ends, so an AddWorker caller racing the master's exit gets an error
// instead of a hang.
func (m *master) drainMemberCmds() {
	if m.cmds == nil {
		return
	}
	for {
		select {
		case cmd := <-m.cmds:
			cmd.reply <- memberCmdResult{id: -1,
				err: fmt.Errorf("runtime: fixpoint ended before the membership change could run")}
		default:
			return
		}
	}
}
