package runtime

import (
	"time"

	"powerlog/internal/transport"
)

// Snapshot episodes give the async family and SSP a consistent cut for
// combining aggregates (sum/count), where a stale snapshot is NOT safe
// to restore: re-delivered deltas would be double-counted. The protocol
// is a stop-the-world Chandy–Lamport cut driven by the master:
//
//	master:  SnapRequest(epoch) → all workers
//	worker:  at its next pass boundary — flush buffers, send
//	         SnapMark(epoch) to every peer on the data lane, fold
//	         incoming data until every peer's mark arrives (per-pair
//	         FIFO ⇒ everything folded was sent before the cut), write
//	         the shard, report SnapDone(epoch) to the master, block
//	         until Resume(epoch)
//	master:  after all SnapDone (or a timeout) → Resume(epoch)
//
// Workers send no data between their mark and Resume, so the union of
// the shards is exactly the state of one global cut line. Selective
// aggregates skip all of this: they snapshot locally with no
// coordination (maybeStaleSnapshot) because Theorem 3's replay
// tolerance makes a stale restore safe.

// maybeSnapshot joins a pending snapshot episode. Called only at the
// worker's pass boundaries (freeRun / SSP endPass, the SSP gate), which
// are the safe points: no partially scanned pass, buffers flushable.
func (w *worker) maybeSnapshot() {
	e := w.snapReqEpoch
	if e <= w.snapDoneEpoch || w.stopped {
		return
	}
	w.flushAll()
	w.eachPeer(func(j int) {
		w.enqueue(j, transport.Message{Kind: transport.SnapMark, Round: e})
	})
	// Fold data until every peer's mark for this epoch arrives. Per-pair
	// FIFO means everything folded here was sent before the sender's
	// mark — pre-cut traffic that belongs in the snapshot.
	for !w.stopped && !w.sendDead.Load() && w.minSnapMarks() < e {
		m, ok := <-w.conn.Inbox()
		if !ok {
			w.stopped = true
			return
		}
		w.handle(m)
	}
	if w.stopped {
		return
	}
	_ = w.snapshot(e, true) // best-effort: a failed shard write must not kill the run
	w.enqueue(w.master, transport.Message{Kind: transport.SnapDone, Round: e})
	for !w.stopped && !w.sendDead.Load() && w.resumeEpoch < e {
		m, ok := <-w.conn.Inbox()
		if !ok {
			w.stopped = true
			return
		}
		w.handle(m)
	}
	w.snapDoneEpoch = e
}

func (w *worker) minSnapMarks() int {
	// Skipping crash-orphaned peers is what unwedges a survivor blocked
	// in an episode on a dead worker's mark: the Orphan verdict arrives
	// through handle() while this worker folds its inbox, the dead slot
	// drops out of the scan, and the cut completes over the survivors.
	least := maxSteps // no waitable peer: nothing to wait for
	for j, s := range w.snapMarks {
		if w.peerSkip(j) {
			continue
		}
		if s < least {
			least = s
		}
	}
	return least
}

// maybeStaleSnapshot writes a local, uncoordinated snapshot at every
// SnapshotEvery-th pass boundary — selective aggregates only, where
// Theorem 3 licenses restoring stale state. epoch is the worker's own
// pass/step count; workers drift apart, and LoadAll reassembles the
// newest shard per worker.
func (w *worker) maybeStaleSnapshot(epoch int) {
	if w.cfg.SnapshotDir == "" || w.cfg.SnapshotEvery <= 0 || !w.plan.Op.Selective() {
		return
	}
	if epoch <= w.staleEpoch || epoch%w.cfg.SnapshotEvery != 0 {
		return
	}
	w.staleEpoch = epoch
	_ = w.snapshot(epoch, false) // best-effort, like the BSP barrier path
}

// snapshotsDue reports whether the polling master should run a snapshot
// episode after check round `round`. Selective aggregates snapshot
// locally instead, so episodes apply only to combining aggregates.
func (m *master) snapshotsDue(round int) bool {
	return m.cfg.SnapshotDir != "" && m.cfg.SnapshotEvery > 0 &&
		!m.plan.Op.Selective() &&
		round > 0 && round%m.cfg.SnapshotEvery == 0
}

// episodeTimeout bounds how long the master waits for the workers'
// SnapDone reports before abandoning an episode. An abandoned epoch
// leaves an incomplete shard set on disk; LoadAll refuses it and falls
// back to the last complete epoch, so the timeout costs durability
// progress, never correctness.
const episodeTimeout = 250 * time.Millisecond

// runEpisode drives one snapshot episode. It always broadcasts Resume —
// even on timeout — because workers that did reach the episode are
// blocked waiting for it. Returns false if the network died.
func (m *master) runEpisode(epoch int) bool {
	m.bcast(transport.Message{Kind: transport.SnapRequest, Round: epoch})
	deadline := time.After(episodeTimeout)
	for got := 0; got < m.activeCount(); {
		var msg transport.Message
		var ok bool
		if len(m.pending) > 0 {
			// The stash path cannot time out; the episode has its own
			// deadline below.
			msg, ok, _ = m.recv()
		} else {
			select {
			case msg, ok = <-m.conn.Inbox():
			case <-deadline:
				m.bcast(transport.Message{Kind: transport.Resume, Round: epoch})
				return true
			}
		}
		if !ok {
			return false
		}
		if msg.Kind == transport.SnapDone && msg.Round == epoch {
			got++
		}
		// Anything else (late stats replies) is irrelevant mid-episode:
		// workers are quiescing, and the poll loop restarts after Resume.
	}
	m.bcast(transport.Message{Kind: transport.Resume, Round: epoch})
	return true
}
