package runtime

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"powerlog/internal/analyzer"
	"powerlog/internal/checker"
	"powerlog/internal/compiler"
	"powerlog/internal/edb"
	"powerlog/internal/gen"
	"powerlog/internal/graph"
	"powerlog/internal/parser"
	"powerlog/internal/transport"
)

// TestTheorem3RandomPrograms is the property-based form of the paper's
// Theorem 3: for randomly generated recursive aggregate programs that
// pass the MRA condition check, asynchronous evaluation must reach the
// same fixpoint/limit as synchronous evaluation on random graphs.
func TestTheorem3RandomPrograms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src, _ := randomMRAProgram(rng)
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("generated program does not parse: %v\n%s", err, src)
		}
		info, err := analyzer.Analyze(prog)
		if err != nil {
			t.Fatalf("generated program does not analyse: %v\n%s", err, src)
		}
		if rep := checker.Check(info); !rep.Satisfied {
			t.Fatalf("generated program fails the MRA check:\n%s\n%s", src, rep)
		}

		g := gen.Uniform(120+rng.Intn(100), 600+rng.Intn(600), pick(rng, 0, 20), seed)
		if info.Agg.String() == "sum" {
			// Keep combining programs convergent: sub-stochastic weights.
			g = substochastic(g)
		}
		db1, db2 := edb.NewDB(), edb.NewDB()
		db1.SetGraph("edge", g)
		db2.SetGraph("edge", g)
		p1, err := compiler.Compile(info, db1, compiler.Options{})
		if err != nil {
			t.Fatalf("compile: %v\n%s", err, src)
		}
		info2, _ := analyzer.Analyze(prog)
		p2, err := compiler.Compile(info2, db2, compiler.Options{})
		if err != nil {
			t.Fatal(err)
		}

		syncRes, err := Run(p1, Config{Workers: 2, Mode: MRASync, MaxWall: 20 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		asyncRes, err := Run(p2, Config{
			Workers:       3,
			Mode:          MRASyncAsync,
			Tau:           150 * time.Microsecond,
			CheckInterval: 250 * time.Microsecond,
			MaxWall:       20 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !syncRes.Converged || !asyncRes.Converged {
			t.Fatalf("non-convergence (sync=%v async=%v) for:\n%s", syncRes.Converged, asyncRes.Converged, src)
		}
		tol := 1e-9
		if p1.Termination.Epsilon > 0 {
			tol = 50 * p1.Termination.Epsilon // ε-limits agree to ε-order
		}
		for k, v := range syncRes.Values {
			av, ok := asyncRes.Values[k]
			if !ok || math.Abs(av-v) > tol*math.Max(1, math.Abs(v)) {
				t.Fatalf("key %d: sync=%v async=%v (ok=%v) for:\n%s", k, v, av, ok, src)
			}
		}
		if len(asyncRes.Values) != len(syncRes.Values) {
			t.Fatalf("key sets differ: %d vs %d for:\n%s", len(asyncRes.Values), len(syncRes.Values), src)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// randomMRAProgram emits a random program guaranteed to satisfy the MRA
// conditions: a selective aggregate with a non-negative-affine F', or a
// sum with a linear F'.
func randomMRAProgram(rng *rand.Rand) (src string, weighted bool) {
	srcV := rng.Intn(5)
	switch rng.Intn(3) {
	case 0: // min with affine f = x + c·w (shortest-path family)
		c := 1 + rng.Intn(3)
		return fmt.Sprintf(`
r1. p(X,v) :- X=%d, v=0.
r2. p(Y,min[v1]) :- p(X,v), edge(X,Y,w), v1 = v + %d * w.
`, srcV, c), true
	case 1: // max with scaling f = a·x, a in (0,1], values positive
		a := 0.1 + 0.8*rng.Float64()
		return fmt.Sprintf(`
r1. p(X,v) :- X=%d, v=1.
r2. p(Y,max[v1]) :- p(X,v), edge(X,Y), v1 = %.3f * v, v >= 0.
`, srcV, a), false
	default: // sum with linear f = a·x·w over sub-stochastic weights
		a := 0.2 + 0.6*rng.Float64()
		return fmt.Sprintf(`
r1. p(X,v) :- X=%d, v=10.
r2. p(Y,sum[v1]) :- p(X,v), edge(X,Y,w), v1 = %.3f * v * w;
                 {sum[Δv1] < 0.000001}.
`, srcV, a), true
	}
}

func pick(rng *rand.Rand, a, b float64) float64 {
	if rng.Intn(2) == 0 {
		return a
	}
	return b
}

func substochastic(g *graph.Graph) *graph.Graph {
	edges := g.Edges()
	cp, err := graph.FromEdges(g.NumVertices(), edges, true)
	if err != nil {
		panic(err)
	}
	gen.NormalizeWeightsByOut(cp, 1)
	return cp
}

// jitterConn wraps a Conn and adversarially delays random data messages,
// destroying even per-pair delivery order — legal for the barrier-free
// modes, whose correctness (Theorem 3) must not depend on ordering.
type jitterConn struct {
	transport.Conn
	rng  *rand.Rand
	held []heldMsg
}

type heldMsg struct {
	to int
	m  transport.Message
}

func (j *jitterConn) Send(to int, m transport.Message) error {
	if m.Kind == transport.Data && j.rng.Intn(3) == 0 {
		j.held = append(j.held, heldMsg{to, m})
		if len(j.held) > 8 { // release the oldest half, shuffled
			j.rng.Shuffle(len(j.held), func(a, b int) { j.held[a], j.held[b] = j.held[b], j.held[a] })
			for _, h := range j.held[:4] {
				if err := j.Conn.Send(h.to, h.m); err != nil {
					return err
				}
			}
			j.held = append(j.held[:0], j.held[4:]...)
		}
		return nil
	}
	// Control messages flush any held data first so the run can finish.
	if m.Kind != transport.Data {
		for _, h := range j.held {
			if err := j.Conn.Send(h.to, h.m); err != nil {
				return err
			}
		}
		j.held = j.held[:0]
	}
	return j.Conn.Send(to, m)
}

// TestAsyncTolleratesReordering runs SSSP through workers whose outgoing
// data is adversarially delayed and reordered; the async fixpoint must
// still equal Dijkstra.
func TestAsyncToleratesReordering(t *testing.T) {
	g := gen.Uniform(300, 1800, 40, 1234)
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, "\nr1. sssp(X,d) :- X=0, d=0.\nr2. sssp(Y,min[dy]) :- sssp(X,dx), edge(X,Y,dxy), dy = dx + dxy.\n", db)

	const workers = 3
	net := transport.NewChannelNetwork(workers, 4096)
	cfg := Config{
		Workers:       workers,
		Mode:          MRAAsync,
		Tau:           150 * time.Microsecond,
		CheckInterval: 300 * time.Microsecond,
		MaxWall:       30 * time.Second,
	}.withDefaults()

	results := make([]map[int64]float64, workers)
	done := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			conn := &jitterConn{Conn: net.Conn(i), rng: rand.New(rand.NewSource(int64(i)))}
			local, err := RunWorker(plan, cfg, conn)
			results[i] = local
			done <- err
		}(i)
	}
	if _, converged, err := RunMaster(plan, cfg, net.Conn(transport.MasterID(workers))); err != nil || !converged {
		t.Fatalf("master: converged=%v err=%v", converged, err)
	}
	for i := 0; i < workers; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	net.Close()

	merged := map[int64]float64{}
	for _, local := range results {
		for k, v := range local {
			merged[k] = v
		}
	}
	want := dijkstraOracle(g)
	for v, w := range want {
		if math.IsInf(w, 1) {
			continue
		}
		if merged[int64(v)] != w {
			t.Fatalf("sssp(%d) = %v, want %v", v, merged[int64(v)], w)
		}
	}
}

// dijkstraOracle avoids importing ref (would be fine, but keeps this
// test self-contained with a second independent implementation).
func dijkstraOracle(g *graph.Graph) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	visited := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[0] = 0
	for {
		best, bd := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if !visited[v] && dist[v] < bd {
				best, bd = v, dist[v]
			}
		}
		if best < 0 {
			return dist
		}
		visited[best] = true
		ts, ws := g.Neighbors(int32(best))
		for i, t := range ts {
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			if nd := bd + w; nd < dist[t] {
				dist[t] = nd
			}
		}
	}
}
