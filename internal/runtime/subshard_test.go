package runtime

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"powerlog/internal/agg"
	"powerlog/internal/compiler"
	"powerlog/internal/edb"
	"powerlog/internal/gen"
	"powerlog/internal/progs"
	"powerlog/internal/ref"
	"powerlog/internal/transport"
)

// Tests for the intra-worker subshard scan pool (subshard.go,
// DESIGN.md §9): parallel passes must reach the serial fixpoint on the
// oracle suite, the work-stealing deque must hand out each subshard
// exactly once, the per-core hot path must stay allocation-free, and
// the accSum resync must erase float drift at epoch boundaries.

// runModeCores is runMode with the subshard pool forced on:
// CoresPerWorker=cores and CoresMinKeys=1 so even modest frontiers fan
// out (the production default of 1024 would keep small test fixtures
// serial and the pool untested).
func runModeCores(t *testing.T, plan *compiler.Plan, mode Mode, workers, cores int) *Result {
	t.Helper()
	res, err := Run(plan, Config{
		Workers:        workers,
		Mode:           mode,
		Tau:            200 * time.Microsecond,
		CheckInterval:  300 * time.Microsecond,
		MaxWall:        30 * time.Second,
		CoresPerWorker: cores,
		CoresMinKeys:   1,
	})
	if err != nil {
		t.Fatalf("%v cores=%d: %v", mode, cores, err)
	}
	if !res.Converged {
		t.Fatalf("%v cores=%d: did not converge (rounds=%d)", mode, cores, res.Rounds)
	}
	return res
}

// parallelPasses sums the scan.parallel.pass counter over workers —
// the proof that a run actually exercised the subshard pool.
func parallelPasses(res *Result) uint64 {
	var n uint64
	for _, ws := range res.Workers {
		n += ws.Metrics.Counter("scan.parallel.pass")
	}
	return n
}

// TestParallelSSSPAllMRAModes: the P=4 subshard scan must reach
// Dijkstra's fixpoint under every MRA mode. The graph is sized so each
// worker's Dense shard spans several dirty-bitmap lines (>512 slots),
// otherwise Subshards returns 1 and the pass falls back to serial.
func TestParallelSSSPAllMRAModes(t *testing.T) {
	g := gen.Uniform(8000, 40000, 50, 11)
	want := ref.Dijkstra(g, 0)
	for _, mode := range mraModes {
		db := edb.NewDB()
		db.SetGraph("edge", g)
		plan := compilePlan(t, progs.SSSP, db)
		res := runModeCores(t, plan, mode, 4, 4)
		expectClose(t, mode, res.Values, want, math.Inf(1), 1e-9)
		if parallelPasses(res) == 0 {
			t.Fatalf("%v: no parallel scan passes ran", mode)
		}
	}
}

// TestParallelPageRankAllMRAModes: same for a combining (sum)
// aggregate, where cores racing local re-emits into each other's
// unscanned ranges is the interesting interleaving (P1 soundness).
func TestParallelPageRankAllMRAModes(t *testing.T) {
	g := gen.RMAT(13, 40000, 0, 17)
	want := ref.PageRank(g, 500, 1e-9)
	for _, mode := range mraModes {
		db := edb.NewDB()
		db.SetGraph("edge", g)
		plan := compilePlan(t, progs.PageRank, db)
		res := runModeCores(t, plan, mode, 4, 4)
		expectClose(t, mode, res.Values, want, math.NaN(), 5e-3)
		if parallelPasses(res) == 0 {
			t.Fatalf("%v: no parallel scan passes ran", mode)
		}
	}
}

// TestParallelAPSPSparse drives the Sparse stripe-block subshards
// (pair-keyed plan) through the pool.
func TestParallelAPSPSparse(t *testing.T) {
	g := gen.Uniform(60, 400, 20, 53)
	want := ref.FloydWarshall(g)
	for _, mode := range []Mode{MRASync, MRAAsync, MRASyncAsync} {
		db := edb.NewDB()
		db.SetGraph("edge", g)
		plan := compilePlan(t, progs.APSP, db)
		res := runModeCores(t, plan, mode, 4, 4)
		for i := range want {
			for j := range want[i] {
				w := want[i][j]
				key := compiler.EncodePair(int64(i), int64(j))
				gv, ok := res.Values[key]
				if math.IsInf(w, 1) {
					if ok {
						t.Fatalf("%v: pair (%d,%d) should be absent, got %v", mode, i, j, gv)
					}
					continue
				}
				if !ok || math.Abs(gv-w) > 1e-9 {
					t.Fatalf("%v: apsp[%d,%d] = %v (ok=%v), want %v", mode, i, j, gv, ok, w)
				}
			}
		}
		if parallelPasses(res) == 0 {
			t.Fatalf("%v: no parallel scan passes ran", mode)
		}
	}
}

// TestCoresGating: cores=1 (or a non-MRA mode) must not build the pool
// at all — scanPass is then byte-for-byte the pre-subshard serial body,
// which is what makes P=1 bit-identical by construction.
func TestCoresGating(t *testing.T) {
	db := edb.NewDB()
	db.SetGraph("edge", gen.RMAT(8, 1200, 0, 17))
	plan := compilePlan(t, progs.PageRank, db)
	mk := func(cfg Config) *worker {
		net := transport.NewChannelNetwork(cfg.Workers, 64)
		w := newWorker(0, cfg.withDefaults(), plan, net.Conn(0))
		t.Cleanup(func() {
			w.scan.close()
			close(w.out)
			close(w.outCtrl)
			<-w.commDone
		})
		return w
	}
	if w := mk(Config{Workers: 1, Mode: MRAAsync, CoresPerWorker: 1}); w.scan != nil {
		t.Fatal("cores=1 built a scan pool")
	}
	if w := mk(Config{Workers: 1, Mode: NaiveSync, CoresPerWorker: 4}); w.scan != nil {
		t.Fatal("naive mode built a scan pool")
	}
	if w := mk(Config{Workers: 1, Mode: MRAAsync, CoresPerWorker: 4}); w.scan == nil {
		t.Fatal("cores=4 MRA mode did not build a scan pool")
	}
}

// TestSerialPassBitIdentical: scan passes on a worker that carries a
// scan pool but stays below the fan-out gate must be bitwise identical
// to a pool-less (cores=1) worker — the gate takes the exact serial
// body, not a degenerate one-core parallel pass. (At P>1 sum results
// are equal only to tolerance: atomic fold order across cores commutes
// but rounds differently.)
func TestSerialPassBitIdentical(t *testing.T) {
	g := gen.RMAT(10, 6000, 0, 31)
	run := func(cfg Config) map[int64][2]float64 {
		db := edb.NewDB()
		db.SetGraph("edge", g)
		plan := compilePlan(t, progs.PageRank, db)
		cfg.Tau = time.Hour
		cfg.CheckInterval = time.Hour
		cfg.MaxWall = time.Hour
		w := standaloneWorker(t, plan, cfg)
		w.seed(plan.InitMRA)
		for i := 0; i < 8; i++ {
			w.scanPass()
		}
		out := make(map[int64][2]float64)
		w.table.RangeRows(func(k int64, acc, inter float64) bool {
			out[k] = [2]float64{acc, inter}
			return true
		})
		return out
	}
	a := run(Config{Mode: MRAAsync, CoresPerWorker: 1})
	// Pool present, gate never satisfied: every pass must fall back to
	// the serial body.
	b := run(Config{Mode: MRAAsync, CoresPerWorker: 4, CoresMinKeys: 1 << 30})
	if len(a) != len(b) {
		t.Fatalf("runs produced %d vs %d rows", len(a), len(b))
	}
	for k, va := range a {
		if vb, ok := b[k]; !ok || vb != va {
			t.Fatalf("key %d: %v vs %v — gated pass is not bit-identical to serial", k, va, vb)
		}
	}
}

// TestSubDequeExactlyOnce: an owner popping the front races three
// thieves popping the back; every subshard id must be claimed exactly
// once.
func TestSubDequeExactlyOnce(t *testing.T) {
	const nsub = 1 << 12
	var d subDeque
	d.reset(0, nsub)
	claims := make([][]int, 4)
	var wg sync.WaitGroup
	for i := range claims {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pop := d.popBack
			if i == 0 {
				pop = d.popFront
			}
			for {
				sub, ok := pop()
				if !ok {
					return
				}
				claims[i] = append(claims[i], sub)
			}
		}(i)
	}
	wg.Wait()
	var all []int
	for _, c := range claims {
		all = append(all, c...)
	}
	sort.Ints(all)
	if len(all) != nsub {
		t.Fatalf("claimed %d subshards, want %d", len(all), nsub)
	}
	for i, sub := range all {
		if sub != i {
			t.Fatalf("subshard %d claimed %s", i, map[bool]string{true: "twice", false: "never"}[sub < i])
		}
	}
}

// standaloneWorker builds a single worker with no peers and no running
// master (nw=1: every emit is local, nothing is ever flushed), so tests
// can drive scanPass by hand.
func standaloneWorker(t *testing.T, plan *compiler.Plan, cfg Config) *worker {
	t.Helper()
	cfg.Workers = 1
	net := transport.NewChannelNetwork(1, 4096)
	w := newWorker(0, cfg.withDefaults(), plan, net.Conn(0))
	t.Cleanup(func() {
		w.scan.close()
		close(w.out)
		close(w.outCtrl)
		<-w.commDone
	})
	return w
}

// TestParallelScanAllocFree pins the per-core hot path: a steady-state
// parallel pass — dirty the whole shard, fan out over 4 cores, drain,
// fold, propagate, merge — must not allocate. Per-core key/drain
// slices, outBufs, and the pre-bound closures are all reused; the two
// warm-up calls spawn the pool goroutines, and the buffers of every
// core are then grown to full-shard capacity by hand: AllocsPerRun
// pins GOMAXPROCS to 1 while it measures, and at one proc the owner
// core usually steals the whole deal before the parked cores wake, so
// warm-up alone leaves cores 1..P-1 cold — a measured run where one of
// them does win a steal would then charge its one-time slice growth to
// the steady state.
func TestParallelScanAllocFree(t *testing.T) {
	db := edb.NewDB()
	g := gen.RMAT(12, 30000, 0, 7) // 4096 vertices -> 8 Dense subshard lines
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.PageRank, db)
	w := standaloneWorker(t, plan, Config{
		Mode: MRAAsync, CoresPerWorker: 4, CoresMinKeys: 1,
		Tau: time.Hour, CheckInterval: time.Hour, MaxWall: time.Hour,
	})
	if w.scan == nil {
		t.Fatal("no scan pool")
	}
	n := int64(plan.N)
	body := func() {
		for k := int64(0); k < n; k++ {
			w.table.FoldDelta(k, 0.125)
		}
		w.scanPass()
	}
	w.scan.lastDrained = int(n) // make the very first pass fan out
	body()
	body()
	if got := w.met.parallelPasses.Load(); got == 0 {
		t.Fatal("warm-up passes did not take the parallel path")
	}
	for _, c := range w.scan.cores {
		if cap(c.keys) < int(n) {
			c.keys = make([]int64, 0, n)
		}
		if cap(c.drainBuf) < int(n) {
			c.drainBuf = make([]drained, 0, n)
		}
	}
	if allocs := testing.AllocsPerRun(5, body); allocs != 0 {
		t.Fatalf("parallel scan pass allocates %v/run, want 0", allocs)
	}
}

// TestAccSumResyncExact is the satellite regression for the float-drift
// bug: >1e6 mixed-sign folds next to a 1e15 accumulation round the
// running accSum in one direction (each small delta loses low bits at
// ulp 0.125), so the drift grows far past any termination ε. The
// stats-poll epoch boundary must recompute Σacc exactly.
func TestAccSumResyncExact(t *testing.T) {
	db := edb.NewDB()
	db.SetGraph("edge", gen.RMAT(8, 1200, 0, 17))
	plan := compilePlan(t, progs.PageRank, db) // sum aggregate, Dense
	w := standaloneWorker(t, plan, Config{
		Mode: MRAAsync, Tau: time.Hour, CheckInterval: time.Hour, MaxWall: time.Hour,
	})
	fold := func(k int64, v float64) {
		_, change, signed := w.table.FoldAcc(k, v)
		w.accDelta += change
		w.accSum += signed
		w.accFolds++
	}
	fold(0, 1e15)
	for i := 0; i < 600_000; i++ { // 1.2e6 folds > accResyncFolds
		fold(1, 0.7)
		fold(1, -0.3)
	}
	exact := w.table.Acc(0) + w.table.Acc(1)
	drift := agg.Abs(w.accSum - exact)
	if drift < 1 {
		t.Fatalf("fixture did not drift (%v) — the regression test is vacuous", drift)
	}
	if w.accFolds < accResyncFolds {
		t.Fatalf("accFolds = %d, below the resync threshold %d", w.accFolds, accResyncFolds)
	}
	w.replyStats(1) // async epoch boundary: must trigger the exact resync
	if got := agg.Abs(w.accSum - exact); got >= 1e-6 {
		t.Fatalf("accSum after resync off by %v (was drifting by %v)", got, drift)
	}
	if w.accFolds != 0 {
		t.Fatalf("accFolds not reset after resync: %d", w.accFolds)
	}
}

// TestChaosParallelScan replays representative chaos classes with the
// subshard pool forced on: injected stalls, drops, duplicates, and
// partitions must not break the parallel pass's fixpoint. Fixtures are
// sized up from the chaos suite's so Dense shards actually split.
func TestChaosParallelScan(t *testing.T) {
	tweak := func(c *Config) { c.CoresPerWorker = 4; c.CoresMinKeys = 1 }
	type fixture struct {
		name      string
		selective bool
		src       string
		setup     func(db *edb.DB)
		check     func(t *testing.T, mode Mode, got map[int64]float64)
	}
	var fixtures []fixture
	{
		g := gen.Uniform(8000, 40000, 50, 23)
		want := ref.Dijkstra(g, 0)
		fixtures = append(fixtures, fixture{
			name: "sssp", selective: true, src: progs.SSSP,
			setup: func(db *edb.DB) { db.SetGraph("edge", g) },
			check: func(t *testing.T, mode Mode, got map[int64]float64) {
				expectClose(t, mode, got, want, math.Inf(1), 1e-9)
			},
		})
	}
	if !testing.Short() {
		g := gen.RMAT(13, 40000, 0, 29)
		want := ref.PageRank(g, 500, 1e-9)
		fixtures = append(fixtures, fixture{
			name: "pagerank", src: progs.PageRank,
			setup: func(db *edb.DB) { db.SetGraph("edge", g) },
			check: func(t *testing.T, mode Mode, got map[int64]float64) {
				expectClose(t, mode, got, want, math.NaN(), 5e-3)
			},
		})
	}
	for _, fx := range fixtures {
		for _, mode := range []Mode{MRASync, MRASyncAsync} {
			for _, class := range chaosClasses(fx.selective) {
				t.Run(fmt.Sprintf("%s/%v/%s", fx.name, mode, class.name), func(t *testing.T) {
					db := edb.NewDB()
					fx.setup(db)
					plan := compilePlan(t, fx.src, db)
					res, err := chaosRun(t, plan, mode, class.spec, tweak)
					if err != nil {
						t.Fatal(err)
					}
					if !res.Converged {
						t.Fatalf("did not converge under %q (rounds=%d)", class.spec, res.Rounds)
					}
					fx.check(t, mode, res.Values)
					if parallelPasses(res) == 0 {
						t.Fatalf("no parallel scan passes ran")
					}
				})
			}
		}
	}
}
