package runtime

import (
	"time"

	"powerlog/internal/agg"
	"powerlog/internal/metrics"
)

// FlushPolicy implementations (§5.3). Each existing mode's flush
// behaviour is transcribed bit-for-bit from the former emitAsync /
// timedFlush mode switches; policy_test.go replays event sequences
// against the old-style decision rules to enforce that.

// urgentDelta is §5.4's other half, shared by the asynchronous flush
// policies: deltas well above the priority threshold are sent to their
// neighbours immediately instead of waiting for the buffer to fill.
func urgentDelta(threshold, v float64) bool {
	return threshold > 0 && agg.Abs(v) >= 8*threshold
}

// asyncEagerBatch is the small fixed batch of the pure-async mode.
const asyncEagerBatch = 64

// barrierFlush is the synchronous extreme of the dial: buffers flush
// only at a barrier (superstep end), never on emit or on the τ timer.
// The worker's BatchMax cap still bounds any single message.
type barrierFlush struct{}

func (barrierFlush) onEmit(int, int, float64) bool { return false }
func (barrierFlush) onTick(time.Time, *window)     {}

// eagerFlush is the asynchronous extreme: Myria-style eager small
// batches for maximum freshness. The unified engine also uses it for
// selective aggregates, where a stale bound must be corrected later and
// freshness therefore beats batching.
type eagerFlush struct {
	urgent float64 // §5.4 priority threshold (0 = off)
}

func (p eagerFlush) onEmit(_, n int, v float64) bool {
	return urgentDelta(p.urgent, v) || n >= asyncEagerBatch
}
func (eagerFlush) onTick(time.Time, *window) {}

// fixedBetaFlush re-implements Grape+'s AAP mode switch (§6.5): a fixed
// buffer size β, plus a per-worker delay switch — a worker flooded by
// in-messages delays its own sends (SSP-leaning, bigger batches on the
// τ timer only); a starved worker flushes eagerly (AP-leaning).
type fixedBetaFlush struct {
	beta    int
	tau     time.Duration
	urgent  float64
	delayed bool
}

func (p *fixedBetaFlush) onEmit(_, n int, v float64) bool {
	if urgentDelta(p.urgent, v) {
		return true
	}
	return !p.delayed && n >= p.beta
}

func (p *fixedBetaFlush) onTick(now time.Time, win *window) {
	dT := now.Sub(win.start)
	if dT < 4*p.tau {
		return
	}
	p.delayed = win.in > win.out
	win.in, win.out = 0, 0
	win.start = now
}

// adaptiveBetaFlush is the paper's adaptive buffer rule (§5.3), the
// heart of the unified engine: per-destination buffer sizes β(i,j)
// start at BetaInit and, whenever the update accumulation rate
// |B(i,j)|/ΔT leaves the band [β/(r·τ), r·β/τ], reset to α·τ·|B(i,j)|/ΔT.
type adaptiveBetaFlush struct {
	self   int
	urgent float64
	tau    time.Duration
	alpha  float64
	r      float64
	// Clamp: the floor keeps slow-pace phases from degenerating to
	// per-update messages (the folding window would vanish); the
	// ceiling bounds staleness and keeps any single message from
	// monopolising the emulated NIC.
	betaFloor, betaCeil float64

	beta []float64

	// samples records the mean β over peers after each adaptation — the
	// β trajectory surfaced through Result.Workers.
	samples []float64

	// Per-decision observability (DESIGN.md §8): how many per-destination
	// window checks stayed inside the [β/(r·τ), r·β/τ] band, how many left
	// it (triggering a β reset), and how often the reset hit the clamp.
	bandIn, bandExit, clampFloor, clampCeil *metrics.Counter
}

// betaSampleCap bounds the β trajectory kept for observability.
const betaSampleCap = 512

func newAdaptiveBetaFlush(cfg Config, self int, reg *metrics.Registry) *adaptiveBetaFlush {
	p := &adaptiveBetaFlush{
		self:       self,
		urgent:     cfg.PriorityThreshold,
		tau:        cfg.Tau,
		alpha:      cfg.Alpha,
		r:          cfg.R,
		betaFloor:  float64(cfg.BetaInit) / 4,
		betaCeil:   float64(2 * cfg.BetaInit),
		beta:       make([]float64, cfg.Workers),
		bandIn:     reg.Counter("flush.beta.band.in"),
		bandExit:   reg.Counter("flush.beta.band.exit"),
		clampFloor: reg.Counter("flush.beta.clamp.floor"),
		clampCeil:  reg.Counter("flush.beta.clamp.ceil"),
	}
	for j := range p.beta {
		p.beta[j] = float64(cfg.BetaInit)
	}
	return p
}

func (p *adaptiveBetaFlush) onEmit(dst, n int, v float64) bool {
	if urgentDelta(p.urgent, v) {
		return true
	}
	return float64(n) >= p.beta[dst]
}

func (p *adaptiveBetaFlush) onTick(now time.Time, win *window) { p.adapt(now, win) }

// adapt applies the β(i,j) update rule over the window ΔT ending now.
func (p *adaptiveBetaFlush) adapt(now time.Time, win *window) {
	dT := now.Sub(win.start)
	if dT < 4*p.tau {
		return
	}
	tau := p.tau.Seconds()
	dts := dT.Seconds()
	if dts <= 0 {
		// Two updates inside one clock tick (reachable when τ == 0, where
		// the 4τ gate above never filters): the rate |B(i,j)|/ΔT is
		// undefined and α·τ·|B(i,j)|/ΔT would push Inf/NaN past the clamp
		// comparisons. Skip the window — the counts keep accumulating and
		// the next tick with an elapsed clock adapts over them.
		return
	}
	for j := range p.beta {
		if j == p.self {
			continue
		}
		rate := float64(win.counts[j]) / dts
		hi := p.r * p.beta[j] / tau
		lo := p.beta[j] / (p.r * tau)
		if rate > hi || rate < lo {
			p.bandExit.Inc()
			b := p.alpha * tau * rate
			if b < p.betaFloor {
				b = p.betaFloor
				p.clampFloor.Inc()
			}
			if b > p.betaCeil {
				b = p.betaCeil
				p.clampCeil.Inc()
			}
			p.beta[j] = b
		} else {
			p.bandIn.Inc()
		}
		win.counts[j] = 0
	}
	win.start = now
	p.sample()
}

// sample records the current mean β over peers (observability only).
func (p *adaptiveBetaFlush) sample() {
	if len(p.samples) >= betaSampleCap {
		return
	}
	sum, n := 0.0, 0
	for j, b := range p.beta {
		if j == p.self {
			continue
		}
		sum += b
		n++
	}
	if n > 0 {
		p.samples = append(p.samples, sum/float64(n))
	}
}

// betaReporter is the optional observability capability of a
// FlushPolicy: a β trajectory to surface through Result.Workers.
type betaReporter interface{ betaTrajectory() []float64 }

func (p *adaptiveBetaFlush) betaTrajectory() []float64 { return p.samples }
