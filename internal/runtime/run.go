package runtime

import (
	"fmt"
	"sync"
	"time"

	"powerlog/internal/ckpt"
	"powerlog/internal/compiler"
	"powerlog/internal/graph"
	"powerlog/internal/transport"
)

// Run executes a compiled plan on an in-process worker fleet and returns
// the final result. The same worker/master code drives every mode; only
// the flush policy and barrier behaviour differ.
func Run(plan *compiler.Plan, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if plan.Propagate == nil || plan.Op == nil {
		return nil, fmt.Errorf("runtime: plan is not compiled")
	}
	if !modeRegistered(cfg.Mode) {
		return nil, fmt.Errorf("runtime: mode %v has no registered policies", cfg.Mode)
	}
	if !cfg.Mode.MRA() && len(plan.BaseNaive) == 0 {
		return nil, fmt.Errorf("runtime: naive evaluation has no base tuples to derive from")
	}
	cfg = applyPriorityDefault(cfg, plan)

	net := transport.NewChannelNetwork(cfg.Workers, 4096)
	workers := make([]*worker, cfg.Workers)
	for i := range workers {
		// Fault.Wrap is a no-op passthrough when no injector is set.
		workers[i] = newWorker(i, cfg, plan, cfg.Fault.Wrap(net.Conn(i)))
	}

	// Seed state per mode: MRA folds ΔX¹ into the shards (or restores a
	// checkpoint); naive re-derives base tuples every round from each
	// worker's owned slice.
	if cfg.Mode.MRA() {
		if cfg.RestoreDir != "" {
			rows, meta, err := ckpt.LoadAll(cfg.RestoreDir)
			if err != nil {
				return nil, err
			}
			if meta.Cut {
				for _, w := range workers {
					w.restore(rows)
				}
			} else {
				if !plan.Op.Selective() {
					return nil, fmt.Errorf("runtime: %s has only stale snapshots, which are safe to restore "+
						"only for selective aggregates (Theorem 3); combining aggregates need a consistent cut", cfg.RestoreDir)
				}
				for _, w := range workers {
					w.seed(plan.InitMRA)
					w.restoreStale(rows)
				}
			}
		} else {
			for _, w := range workers {
				w.seed(plan.InitMRA)
			}
		}
	} else {
		for _, kv := range plan.BaseNaive {
			o := graph.Partition(kv.K, cfg.Workers)
			workers[o].ownBase = append(workers[o].ownBase, kv)
		}
	}

	m := newMaster(cfg, plan, net.Conn(transport.MasterID(cfg.Workers)))
	dump := startMetricsDump(cfg, workers, m)

	start := time.Now()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run()
		}(w)
	}
	m.run()
	wg.Wait()
	elapsed := time.Since(start)
	dump.close()
	net.Close()

	// Worker goroutines have exited, so sendErr reads are race-free
	// (each worker's run() waits for its comm goroutine). A dead send
	// path is the root cause of any master liveness timeout, so it is
	// reported first.
	for _, w := range workers {
		if w.sendErr != nil {
			return nil, fmt.Errorf("runtime: worker %d send failed: %w", w.id, w.sendErr)
		}
	}
	if m.err != nil {
		return nil, m.err
	}

	res := &Result{
		Values:    map[int64]float64{},
		Rounds:    m.rounds,
		Elapsed:   elapsed,
		Converged: m.converged,
		Master:    m.met.reg.Snapshot(),
	}
	for _, w := range workers {
		res.MessagesSent += w.sent
		res.MessagesRecv += w.recv
		res.Flushes += w.flushes
		res.Workers = append(res.Workers, w.stats())
		w.table.Range(func(k int64, v float64) bool {
			res.Values[k] = v
			return true
		})
	}
	return res, nil
}

// stats snapshots a worker's observability after the run has stopped
// (the worker goroutine has exited, so reads are race-free).
func (w *worker) stats() WorkerStats {
	ws := WorkerStats{
		Sent:          w.sent,
		Recv:          w.recv,
		Flushes:       w.flushes,
		Passes:        w.passes,
		StragglerWait: w.stragglerWait,
		Metrics:       w.met.reg.Snapshot(),
	}
	if r, ok := w.pol.flush.(betaReporter); ok {
		ws.Beta = r.betaTrajectory()
	}
	return ws
}

// applyPriorityDefault normalises the §5.4 priority knob: the feature is
// opt-in (benchmarks showed the hold/release cycle can thrash on large
// combining-aggregate runs, so no default threshold is imposed), and a
// negative value explicitly disables it.
func applyPriorityDefault(cfg Config, plan *compiler.Plan) Config {
	if cfg.PriorityThreshold < 0 || (plan.Op != nil && plan.Op.Selective()) {
		cfg.PriorityThreshold = 0
	}
	return cfg
}

// RunWorker participates as one worker in an externally provided network
// (e.g. a transport.TCPConn spanning several processes). Every process
// must compile the same plan against the same deterministic data; the
// worker seeds only its own shard of ΔX¹ and returns its local share of
// the result when the master stops the run.
func RunWorker(plan *compiler.Plan, cfg Config, conn transport.Conn) (map[int64]float64, error) {
	cfg = cfg.withDefaults()
	cfg = applyPriorityDefault(cfg, plan)
	cfg.Workers = conn.Workers()
	if plan.Propagate == nil || plan.Op == nil {
		return nil, fmt.Errorf("runtime: plan is not compiled")
	}
	w := newWorker(conn.ID(), cfg, plan, cfg.Fault.Wrap(conn))
	if cfg.Mode.MRA() {
		if cfg.RestoreDir != "" {
			rows, meta, err := ckpt.LoadAll(cfg.RestoreDir)
			if err != nil {
				return nil, err
			}
			if meta.Cut {
				w.restore(rows)
			} else {
				if !plan.Op.Selective() {
					return nil, fmt.Errorf("runtime: %s has only stale snapshots, which are safe to restore "+
						"only for selective aggregates (Theorem 3); combining aggregates need a consistent cut", cfg.RestoreDir)
				}
				w.seed(plan.InitMRA)
				w.restoreStale(rows)
			}
		} else {
			w.seed(plan.InitMRA)
		}
	} else {
		for _, kv := range plan.BaseNaive {
			if graph.Partition(kv.K, cfg.Workers) == w.id {
				w.ownBase = append(w.ownBase, kv)
			}
		}
	}
	w.run()
	if w.sendErr != nil {
		return nil, fmt.Errorf("runtime: worker %d send failed: %w", w.id, w.sendErr)
	}
	local := map[int64]float64{}
	w.table.Range(func(k int64, v float64) bool {
		local[k] = v
		return true
	})
	return local, nil
}

// RunMaster runs the termination controller on an external network and
// reports the rounds executed and whether the run converged (as opposed
// to hitting the iteration or wall-clock cap).
func RunMaster(plan *compiler.Plan, cfg Config, conn transport.Conn) (rounds int, converged bool, err error) {
	cfg = cfg.withDefaults()
	cfg.Workers = conn.Workers()
	m := newMaster(cfg, plan, conn)
	m.run()
	return m.rounds, m.converged, m.err
}
