package runtime

import (
	"fmt"

	"powerlog/internal/ckpt"
	"powerlog/internal/compiler"
	"powerlog/internal/graph"
	"powerlog/internal/transport"
)

// Run executes a compiled plan on an in-process worker fleet and returns
// the final result. The same worker/master code drives every mode; only
// the flush policy and barrier behaviour differ. Run is the one-shot
// form of the session lifecycle (session.go): it opens a Session,
// takes the initial fixpoint's result, and closes the fleet.
func Run(plan *compiler.Plan, cfg Config) (*Result, error) {
	s, err := Open(plan, cfg)
	if err != nil {
		return nil, err
	}
	res := s.Result()
	if cerr := s.Close(); cerr != nil {
		return nil, cerr
	}
	return res, nil
}

// stats snapshots a worker's observability after the run has stopped
// (the worker goroutine has exited, so reads are race-free).
func (w *worker) stats() WorkerStats {
	ws := WorkerStats{
		Sent:          w.sent,
		Recv:          w.recv,
		Flushes:       w.flushes,
		Passes:        w.passes,
		StragglerWait: w.stragglerWait,
		Metrics:       w.met.reg.Snapshot(),
	}
	if r, ok := w.pol.flush.(betaReporter); ok {
		ws.Beta = r.betaTrajectory()
	}
	return ws
}

// applyPriorityDefault normalises the §5.4 priority knob: the feature is
// opt-in (benchmarks showed the hold/release cycle can thrash on large
// combining-aggregate runs, so no default threshold is imposed), and a
// negative value explicitly disables it.
func applyPriorityDefault(cfg Config, plan *compiler.Plan) Config {
	if cfg.PriorityThreshold < 0 || (plan.Op != nil && plan.Op.Selective()) {
		cfg.PriorityThreshold = 0
	}
	return cfg
}

// RunWorker participates as one worker in an externally provided network
// (e.g. a transport.TCPConn spanning several processes). Every process
// must compile the same plan against the same deterministic data; the
// worker seeds only its own shard of ΔX¹ and returns its local share of
// the result when the master stops the run.
func RunWorker(plan *compiler.Plan, cfg Config, conn transport.Conn) (map[int64]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	cfg = applyPriorityDefault(cfg, plan)
	cfg.Workers = conn.Workers()
	if plan.Propagate == nil || plan.Op == nil {
		return nil, fmt.Errorf("runtime: plan is not compiled")
	}
	w := newWorker(conn.ID(), cfg, plan, cfg.Fault.Wrap(conn))
	if cfg.Mode.MRA() {
		if cfg.RestoreDir != "" {
			rows, meta, err := ckpt.LoadAll(cfg.RestoreDir)
			if err != nil {
				return nil, err
			}
			if meta.Cut {
				w.restore(rows)
			} else {
				if !plan.Op.Selective() {
					return nil, fmt.Errorf("runtime: %s has only stale snapshots, which are safe to restore "+
						"only for selective aggregates (Theorem 3); combining aggregates need a consistent cut", cfg.RestoreDir)
				}
				w.seed(plan.InitMRA)
				w.restoreStale(rows)
			}
		} else {
			w.seed(plan.InitMRA)
		}
	} else {
		for _, kv := range plan.BaseNaive {
			if graph.Partition(kv.K, cfg.Workers) == w.id {
				w.ownBase = append(w.ownBase, kv)
			}
		}
	}
	w.run()
	if w.sendErr != nil {
		return nil, fmt.Errorf("runtime: worker %d send failed: %w", w.id, w.sendErr)
	}
	local := map[int64]float64{}
	w.table.Range(func(k int64, v float64) bool {
		local[k] = v
		return true
	})
	return local, nil
}

// RunMaster runs the termination controller on an external network and
// reports the rounds executed and whether the run converged (as opposed
// to hitting the iteration or wall-clock cap).
func RunMaster(plan *compiler.Plan, cfg Config, conn transport.Conn) (rounds int, converged bool, err error) {
	if err := cfg.Validate(); err != nil {
		return 0, false, err
	}
	cfg = cfg.withDefaults()
	cfg.Workers = conn.Workers()
	m := newMaster(cfg, plan, conn)
	m.run()
	return m.rounds, m.converged, m.err
}
