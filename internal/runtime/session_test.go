package runtime

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"powerlog/internal/compiler"
	"powerlog/internal/edb"
	"powerlog/internal/fault"
	"powerlog/internal/gen"
	"powerlog/internal/graph"
	"powerlog/internal/progs"
)

// sessModes are the session-capable engine modes the equivalence matrix
// covers (the ISSUE's four: BSP, async, unified, SSP).
var sessModes = []Mode{MRASync, MRAAsync, MRASyncAsync, MRASSP}

func sessCfg(mode Mode) Config {
	return Config{
		Workers:       4,
		Mode:          mode,
		Tau:           200 * time.Microsecond,
		CheckInterval: 300 * time.Microsecond,
		MaxWall:       30 * time.Second,
	}
}

// sessionProg describes one oracle program for the equivalence matrix:
// how to build its base graph and database, the identity value absent
// keys stand for, the session-vs-scratch tolerance, and how mutations
// must be shaped (DAG programs only accept forward edges; weighted
// programs need weights from the right range).
type sessionProg struct {
	name  string
	src   string
	ident float64
	tol   float64
	dag   bool // inserts must keep src < dst (DAG and trellis programs)
	insW  func(r *rand.Rand) float64
	g     func() *graph.Graph
	db    func(g *graph.Graph) *edb.DB
}

func edgeDB(pred string) func(g *graph.Graph) *edb.DB {
	return func(g *graph.Graph) *edb.DB {
		db := edb.NewDB()
		db.SetGraph(pred, g)
		return db
	}
}

func vertexRel(name string, col []float64) *edb.Relation {
	r := edb.NewRelation(name, 2)
	for v, x := range col {
		r.Add(float64(v), x)
	}
	return r
}

func unitW(*rand.Rand) float64 { return 1 }

// smallW keeps inserted weights well below the normalised rows of the
// linear-limit programs, so their spectral radius stays < 1.
func smallW(r *rand.Rand) float64 { return 0.01 + 0.05*r.Float64() }

var sessionProgs = []sessionProg{
	{
		name: "SSSP", src: progs.SSSP, ident: math.Inf(1), tol: 1e-9,
		insW: func(r *rand.Rand) float64 { return 1 + 49*r.Float64() },
		g:    func() *graph.Graph { return gen.Uniform(200, 1200, 50, 11) },
		db:   edgeDB("edge"),
	},
	{
		name: "CC", src: progs.CC, ident: math.Inf(1), tol: 0,
		insW: unitW,
		g:    func() *graph.Graph { return gen.RMAT(8, 1000, 0, 13) },
		db:   edgeDB("edge"),
	},
	{
		name: "PageRank", src: progs.PageRank, ident: 0, tol: 1e-2,
		insW: unitW,
		g:    func() *graph.Graph { return gen.RMAT(7, 600, 0, 17) },
		db:   edgeDB("edge"),
	},
	{
		name: "Katz", src: progs.Katz, ident: 0, tol: 2e-2,
		insW: unitW,
		g:    func() *graph.Graph { return gen.Uniform(200, 1000, 0, 19) },
		db:   edgeDB("edge"),
	},
	{
		name: "Adsorption", src: progs.Adsorption, ident: 0, tol: 1e-2,
		insW: smallW,
		g: func() *graph.Graph {
			g := gen.Uniform(150, 900, 1, 23)
			gen.NormalizeWeightsByOut(g, 1)
			return g
		},
		db: func(g *graph.Graph) *edb.DB {
			n := g.NumVertices()
			db := edb.NewDB()
			db.SetGraph("A", g)
			db.AddRelation(vertexRel("pi", gen.VertexAttr(n, 0.1, 0.5, 41)))
			db.AddRelation(vertexRel("pc", gen.VertexAttr(n, 0.2, 0.8, 42)))
			return db
		},
	},
	{
		name: "BP", src: progs.BP, ident: 0, tol: 1e-2,
		insW: smallW,
		g: func() *graph.Graph {
			g := gen.Uniform(150, 900, 1, 29)
			gen.NormalizeWeightsByOut(g, 1)
			return g
		},
		db: func(g *graph.Graph) *edb.DB {
			n := g.NumVertices()
			db := edb.NewDB()
			db.SetGraph("E", g)
			db.AddRelation(vertexRel("I", gen.VertexAttr(n, 0.1, 1, 51)))
			db.AddRelation(vertexRel("H", gen.VertexAttr(n, 0.2, 0.9, 52)))
			return db
		},
	},
	{
		name: "PathsDAG", src: progs.PathsDAG, ident: 0, tol: 1e-9, dag: true,
		insW: unitW,
		g:    func() *graph.Graph { return gen.DAG(200, 2.5, 25, 0, 31) },
		db:   edgeDB("dagedge"),
	},
	{
		name: "Cost", src: progs.Cost, ident: 0, tol: 1e-6, dag: true,
		insW: func(r *rand.Rand) float64 { return 1 + 9*r.Float64() },
		g:    func() *graph.Graph { return gen.DAG(150, 2, 15, 10, 37) },
		db:   edgeDB("dagedge"),
	},
	{
		name: "Viterbi", src: progs.Viterbi, ident: 0, tol: 1e-9, dag: true,
		insW: func(r *rand.Rand) float64 { return 0.05 + 0.9*r.Float64() },
		g:    func() *graph.Graph { return gen.Trellis(10, 5, 43) },
		db:   edgeDB("trans"),
	},
	{
		name: "LCA", src: progs.LCA, ident: math.Inf(1), tol: 1e-9,
		insW: unitW,
		g:    func() *graph.Graph { return gen.Uniform(150, 600, 0, 47) },
		db:   edgeDB("parent"),
	},
	{
		name: "APSP", src: progs.APSP, ident: math.Inf(1), tol: 1e-9,
		insW: func(r *rand.Rand) float64 { return 1 + 19*r.Float64() },
		g:    func() *graph.Graph { return gen.Uniform(50, 300, 20, 53) },
		db:   edgeDB("edge"),
	},
	{
		name: "SimRank", src: progs.SimRank, ident: 0, tol: 1e-2,
		insW: smallW,
		g: func() *graph.Graph {
			g := gen.Uniform(150, 900, 1, 59)
			gen.NormalizeWeightsByOut(g, 1)
			return g
		},
		db: edgeDB("pairedge"),
	},
}

// randMutation draws a reproducible mutation batch against the current
// edge list and returns it together with the mutated mirror (deletes
// drop every parallel edge with the sampled endpoint pair, matching
// Mutation semantics; inserts are appended after deletes, matching
// ApplyEdgeMutations order).
func randMutation(r *rand.Rand, edges []graph.Edge, n, nIns, nDel int, dag bool, insW func(*rand.Rand) float64) (Mutation, []graph.Edge) {
	var mut Mutation
	if nDel > 0 && len(edges) > 0 {
		gone := map[int64]bool{}
		for i := 0; i < nDel; i++ {
			e := edges[r.Intn(len(edges))]
			key := int64(e.Src)<<32 | int64(uint32(e.Dst))
			if gone[key] {
				continue
			}
			gone[key] = true
			mut.Deletes = append(mut.Deletes, graph.Edge{Src: e.Src, Dst: e.Dst})
		}
		kept := make([]graph.Edge, 0, len(edges))
		for _, e := range edges {
			if !gone[int64(e.Src)<<32|int64(uint32(e.Dst))] {
				kept = append(kept, e)
			}
		}
		edges = kept
	}
	for i := 0; i < nIns; i++ {
		src, dst := r.Intn(n), r.Intn(n)
		if src == dst {
			continue
		}
		if dag && src > dst {
			src, dst = dst, src
		}
		e := graph.Edge{Src: int32(src), Dst: int32(dst), W: insW(r)}
		mut.Inserts = append(mut.Inserts, e)
		edges = append(edges, e)
	}
	return mut, edges
}

// expectSameFixpoint compares a session's table against a scratch
// recompute on the mutated EDB. Keys absent on either side stand for
// the aggregate identity (a combining correction can leave an exactly
// cancelled residual row the scratch run never creates).
func expectSameFixpoint(t *testing.T, label string, got, want map[int64]float64, ident, tol float64) {
	t.Helper()
	errs := 0
	seen := map[int64]bool{}
	check := func(k int64) {
		if seen[k] {
			return
		}
		seen[k] = true
		gv, ok := got[k]
		if !ok {
			gv = ident
		}
		wv, ok := want[k]
		if !ok {
			wv = ident
		}
		if gv == wv {
			return
		}
		if math.Abs(gv-wv) > tol*math.Max(1, math.Abs(wv)) {
			if errs < 5 {
				t.Errorf("%s: key %d = %v, want %v", label, k, gv, wv)
			}
			errs++
		}
	}
	for k := range got {
		check(k)
	}
	for k := range want {
		check(k)
	}
	if errs > 0 {
		t.Fatalf("%s: %d mismatches vs scratch recompute", label, errs)
	}
}

// scratchFixpoint is the correctness oracle: a cold run of the same
// program, in the same mode, on a fresh database built from the mutated
// edge list.
func scratchFixpoint(t *testing.T, p sessionProg, n int, edges []graph.Edge, weighted bool, cfg Config) map[int64]float64 {
	t.Helper()
	g, err := graph.FromEdges(n, append([]graph.Edge(nil), edges...), weighted)
	if err != nil {
		t.Fatal(err)
	}
	plan := compilePlan(t, p.src, p.db(g))
	res, err := Run(plan, cfg)
	if err != nil {
		t.Fatalf("scratch %v: %v", cfg.Mode, err)
	}
	if !res.Converged {
		t.Fatalf("scratch %v: did not converge", cfg.Mode)
	}
	return res.Values
}

func testSessionProgram(t *testing.T, p sessionProg, mode Mode, seed int64) {
	g := p.g()
	n := g.NumVertices()
	weighted := g.Weighted()
	edges := append([]graph.Edge(nil), g.Edges()...)
	cfg := sessCfg(mode)

	s, err := Open(compilePlan(t, p.src, p.db(g)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.Result().Converged {
		t.Fatal("initial fixpoint did not converge")
	}

	k := len(edges) / 50
	if k < 3 {
		k = 3
	}
	r := rand.New(rand.NewSource(seed))
	batches := []struct {
		kind       string
		nIns, nDel int
	}{
		{"insert", k, 0},
		{"delete", 0, k},
		{"mixed", k, k},
	}
	for _, b := range batches {
		var mut Mutation
		mut, edges = randMutation(r, edges, n, b.nIns, b.nDel, p.dag, p.insW)
		res, err := s.Apply(mut)
		if err != nil {
			t.Fatalf("%s: Apply: %v", b.kind, err)
		}
		if !res.Converged {
			t.Fatalf("%s: epoch did not converge", b.kind)
		}
		want := scratchFixpoint(t, p, n, edges, weighted, cfg)
		expectSameFixpoint(t, p.name+"/"+b.kind, res.Values, want, p.ident, p.tol)
	}
	if s.Epoch() != 1+len(batches) {
		t.Errorf("Epoch() = %d, want %d", s.Epoch(), 1+len(batches))
	}
	if s.MutEpoch() != len(batches) || s.Log().Len() != len(batches) {
		t.Errorf("MutEpoch() = %d, Log().Len() = %d, want %d", s.MutEpoch(), s.Log().Len(), len(batches))
	}
}

// TestSessionEquivalence is the CI equivalence matrix: every oracle
// program × insert/delete/mixed × every session mode, each Apply
// compared against a scratch recompute on the mutated EDB. Under -short
// each program runs one rotating mode instead of all four.
func TestSessionEquivalence(t *testing.T) {
	for pi, p := range sessionProgs {
		for mi, mode := range sessModes {
			if testing.Short() && mi != pi%len(sessModes) {
				continue
			}
			p, mode, seed := p, mode, int64(1009*pi+101*mi+7)
			t.Run(p.name+"/"+mode.String(), func(t *testing.T) {
				testSessionProgram(t, p, mode, seed)
			})
		}
	}
}

// TestSessionWorkerCounts parks and re-fixpoints fleets of several
// sizes, including the single-worker fleet whose park handshake has no
// peers to fence.
func TestSessionWorkerCounts(t *testing.T) {
	p := sessionProgs[0] // SSSP
	for _, workers := range []int{1, 2, 3} {
		g := p.g()
		n := g.NumVertices()
		edges := append([]graph.Edge(nil), g.Edges()...)
		cfg := sessCfg(MRASyncAsync)
		cfg.Workers = workers
		s, err := Open(compilePlan(t, p.src, p.db(g)), cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var mut Mutation
		mut, edges = randMutation(rand.New(rand.NewSource(211)), edges, n, 8, 8, false, p.insW)
		res, err := s.Apply(mut)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := scratchFixpoint(t, p, n, edges, true, cfg)
		expectSameFixpoint(t, "workers", res.Values, want, p.ident, p.tol)
		s.Close()
	}
}

// TestSessionCoresPerWorker re-fixpoints with the intra-worker parallel
// scan forced on (CoresMinKeys=1 fans out even tiny frontiers).
func TestSessionCoresPerWorker(t *testing.T) {
	p := sessionProgs[0] // SSSP
	g := p.g()
	n := g.NumVertices()
	edges := append([]graph.Edge(nil), g.Edges()...)
	cfg := sessCfg(MRASyncAsync)
	cfg.CoresPerWorker = 4
	cfg.CoresMinKeys = 1
	s, err := Open(compilePlan(t, p.src, p.db(g)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r := rand.New(rand.NewSource(223))
	for i := 0; i < 2; i++ {
		var mut Mutation
		mut, edges = randMutation(r, edges, n, 10, 10, false, p.insW)
		res, err := s.Apply(mut)
		if err != nil {
			t.Fatal(err)
		}
		want := scratchFixpoint(t, p, n, edges, true, cfg)
		expectSameFixpoint(t, "cores", res.Values, want, p.ident, p.tol)
	}
}

// TestSessionEmptyMutation: an Apply that changes nothing must converge
// immediately and leave the fixpoint untouched (it still advances the
// mutation log — the caller said "apply this", and replay must agree).
func TestSessionEmptyMutation(t *testing.T) {
	p := sessionProgs[0]
	g := p.g()
	s, err := Open(compilePlan(t, p.src, p.db(g)), sessCfg(MRAAsync))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	before := map[int64]float64{}
	for k, v := range s.Result().Values {
		before[k] = v
	}
	res, err := s.Apply(Mutation{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("empty mutation epoch did not converge")
	}
	expectSameFixpoint(t, "empty", res.Values, before, p.ident, 0)
	if s.Epoch() != 2 || s.MutEpoch() != 1 {
		t.Errorf("Epoch()=%d MutEpoch()=%d, want 2 and 1", s.Epoch(), s.MutEpoch())
	}
}

// TestSessionMutationValidation: an out-of-universe edge is rejected
// with the EDB untouched and the session still usable (non-sticky).
func TestSessionMutationValidation(t *testing.T) {
	p := sessionProgs[0]
	g := p.g()
	n := g.NumVertices()
	edges := append([]graph.Edge(nil), g.Edges()...)
	cfg := sessCfg(MRASync)
	s, err := Open(compilePlan(t, p.src, p.db(g)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, err = s.Apply(Mutation{Inserts: []graph.Edge{{Src: int32(n), Dst: 0, W: 1}}})
	if err == nil || !strings.Contains(err.Error(), "outside the vertex universe") {
		t.Fatalf("out-of-universe insert: err = %v", err)
	}
	if s.Err() != nil {
		t.Fatalf("validation failure must not poison the session: %v", s.Err())
	}
	if s.MutEpoch() != 0 {
		t.Fatalf("rejected mutation advanced MutEpoch to %d", s.MutEpoch())
	}
	var mut Mutation
	mut, edges = randMutation(rand.New(rand.NewSource(227)), edges, n, 5, 5, false, p.insW)
	res, err := s.Apply(mut)
	if err != nil {
		t.Fatalf("session unusable after rejected mutation: %v", err)
	}
	want := scratchFixpoint(t, p, n, edges, true, cfg)
	expectSameFixpoint(t, "after-reject", res.Values, want, p.ident, p.tol)
}

// TestSessionNaiveApplyRejected: naive evaluation re-derives from
// scratch and cannot re-fixpoint incrementally.
func TestSessionNaiveApplyRejected(t *testing.T) {
	p := sessionProgs[0]
	cfg := sessCfg(NaiveSync)
	s, err := Open(compilePlan(t, p.src, p.db(p.g())), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.Result().Converged {
		t.Fatal("naive initial fixpoint did not converge")
	}
	if _, err := s.Apply(Mutation{Inserts: []graph.Edge{{Src: 1, Dst: 2, W: 1}}}); err == nil ||
		!strings.Contains(err.Error(), "naive") {
		t.Fatalf("naive Apply: err = %v", err)
	}
}

func TestSessionApplyAfterClose(t *testing.T) {
	p := sessionProgs[0]
	s, err := Open(compilePlan(t, p.src, p.db(p.g())), sessCfg(MRAAsync))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close is not idempotent: %v", err)
	}
	if _, err := s.Apply(Mutation{}); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("Apply after Close: err = %v", err)
	}
}

// TestSessionMetrics checks the session observability counters surface
// through the master's snapshot: engine.epoch per parked fixpoint,
// delta.reseed.keys and delete.invalidate.keys per Apply.
func TestSessionMetrics(t *testing.T) {
	p := sessionProgs[0]
	g := p.g()
	edges := append([]graph.Edge(nil), g.Edges()...)
	s, err := Open(compilePlan(t, p.src, p.db(g)), sessCfg(MRASync))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Delete an edge whose source the initial fixpoint reached, so the
	// invalidation cone is guaranteed non-empty.
	init := s.Result().Values
	var del graph.Edge
	found := false
	for _, e := range edges {
		if _, ok := init[int64(e.Src)]; ok {
			del, found = e, true
			break
		}
	}
	if !found {
		t.Fatal("no reachable edge to delete")
	}
	mut := Mutation{Deletes: []graph.Edge{{Src: del.Src, Dst: del.Dst}}}
	res, err := s.Apply(mut)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Master.Counters
	if c["engine.epoch"] < 2 {
		t.Errorf("engine.epoch = %d, want >= 2", c["engine.epoch"])
	}
	if c["delta.reseed.keys"] == 0 {
		t.Error("delta.reseed.keys = 0 after a delete Apply")
	}
	if c["delete.invalidate.keys"] == 0 {
		t.Error("delete.invalidate.keys = 0 after deleting a reachable edge")
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg   Config
		field string
	}{
		{Config{Staleness: -1}, "Staleness"},
		{Config{CoresPerWorker: -2}, "CoresPerWorker"},
		{Config{MetricsEvery: -time.Second}, "MetricsEvery"},
		{Config{CollectTimeout: -time.Millisecond}, "CollectTimeout"},
		{Config{MaxWall: -time.Minute}, "MaxWall"},
		{Config{Elastic: true, Workers: 4, MaxWorkers: 2}, "MaxWorkers"},
		{Config{MaxWorkers: -1}, "MaxWorkers"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field != c.field {
			t.Errorf("Validate(%s): err = %v, want ConfigError for %s", c.field, err, c.field)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	if err := (Config{PriorityThreshold: -1}).Validate(); err != nil {
		t.Errorf("negative PriorityThreshold is the documented disable, got %v", err)
	}
	// Run and Open both validate before touching the plan.
	p := sessionProgs[0]
	plan := compilePlan(t, p.src, p.db(p.g()))
	var ce *ConfigError
	if _, err := Run(plan, Config{Staleness: -1}); !errors.As(err, &ce) {
		t.Errorf("Run with bad config: err = %v", err)
	}
	if _, err := Open(plan, Config{CoresPerWorker: -1}); !errors.As(err, &ce) {
		t.Errorf("Open with bad config: err = %v", err)
	}
}

func copyDir(t *testing.T, from, to string) {
	t.Helper()
	ents, err := os.ReadDir(from)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		b, err := os.ReadFile(filepath.Join(from, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(to, ent.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSessionCrashRestoreReplay is the mid-session crash drill: a
// session takes one Apply cleanly, crashes (injected) during the next,
// and a restored session — opened from the park-boundary checkpoint
// plus a plan rebuilt at that checkpoint's mutation position — replays
// the trailing mutation-log entry and lands on the oracle fixpoint.
func TestSessionCrashRestoreReplay(t *testing.T) {
	base := gen.Uniform(200, 1200, 50, 83)
	n := base.NumVertices()
	edges0 := append([]graph.Edge(nil), base.Edges()...)
	insW := func(r *rand.Rand) float64 { return 1 + 49*r.Float64() }
	mkPlan := func(edges []graph.Edge) *compiler.Plan {
		g, err := graph.FromEdges(n, append([]graph.Edge(nil), edges...), true)
		if err != nil {
			t.Fatal(err)
		}
		db := edb.NewDB()
		db.SetGraph("edge", g)
		return compilePlan(t, progs.SSSP, db)
	}
	r := rand.New(rand.NewSource(991))
	mut1, edges1 := randMutation(r, edges0, n, 6, 6, false, insW)
	mut2, edges2 := randMutation(r, edges1, n, 6, 6, false, insW)
	cfg := sessCfg(MRASync) // BSP: deterministic round counts for crash placement

	// Calibrate the cumulative master round at which epoch 3 starts.
	sA, err := Open(mkPlan(edges0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r0 := sA.Result().Rounds
	resA1, err := sA.Apply(mut1)
	if err != nil {
		t.Fatal(err)
	}
	r1 := resA1.Rounds
	sA.Close()

	// Crash run: same data, checkpointing on, master crashes at the
	// first round of the second Apply's epoch.
	dir, dirAt1 := t.TempDir(), t.TempDir()
	cfgB := cfg
	cfgB.SnapshotDir = dir
	cfgB.Fault = fault.New(fault.Spec{CrashRound: r0 + r1 + 1})
	sB, err := Open(mkPlan(edges0), cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if got := sB.Result().Rounds; got != r0 {
		t.Fatalf("BSP rounds not deterministic: open took %d, calibration %d", got, r0)
	}
	if _, err := sB.Apply(mut1); err != nil {
		t.Fatalf("Apply before crash round: %v", err)
	}
	copyDir(t, dir, dirAt1) // checkpoint state as of mutation epoch 1
	if _, err := sB.Apply(mut2); err == nil {
		t.Fatal("Apply across the crash round succeeded")
	}
	if sB.Err() == nil {
		t.Fatal("crashed epoch did not poison the session")
	}
	if _, err := sB.Apply(mut2); err == nil {
		t.Fatal("poisoned session accepted another Apply")
	}
	sB.Close()

	// Restore from the epoch-1 checkpoint with a plan rebuilt at that
	// mutation position, then replay the trailing log entries.
	cfgC := cfg
	cfgC.RestoreDir = dirAt1
	sC, err := Open(mkPlan(edges1), cfgC)
	if err != nil {
		t.Fatal(err)
	}
	defer sC.Close()
	if sC.MutEpoch() != 1 {
		t.Fatalf("restored MutEpoch = %d, want 1", sC.MutEpoch())
	}
	trailing := sB.Log().Since(sC.MutEpoch())
	if len(trailing) != 1 {
		t.Fatalf("trailing log entries = %d, want 1", len(trailing))
	}
	for _, e := range trailing {
		if _, err := sC.Apply(Mutation{Inserts: e.Mut.Inserts, Deletes: e.Mut.Deletes}); err != nil {
			t.Fatalf("replaying mutation epoch %d: %v", e.Epoch, err)
		}
	}
	p := sessionProgs[0]
	want := scratchFixpoint(t, p, n, edges2, true, cfg)
	expectSameFixpoint(t, "restored", sC.Result().Values, want, math.Inf(1), 1e-9)
}
