package runtime

import (
	"math"
	"sync"
	"testing"
	"time"

	"powerlog/internal/compiler"
	"powerlog/internal/edb"
	"powerlog/internal/gen"
	"powerlog/internal/progs"
	"powerlog/internal/ref"
	"powerlog/internal/transport"
)

// TestDistributedTCP runs the full engine across TCP endpoints — the
// multi-process deployment path exercised in one process. Each "process"
// compiles its own plan from the same seeded dataset, as real cluster
// nodes would.
func TestDistributedTCP(t *testing.T) {
	const workers = 3
	boot := make([]string, workers+1)
	for i := range boot {
		boot[i] = "127.0.0.1:0"
	}
	eps := make([]*transport.TCPConn, workers+1)
	for i := range eps {
		c, err := transport.NewTCPEndpoint(i, workers, boot)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = c
		defer c.Close()
	}
	addrs := make([]string, workers+1)
	for i, c := range eps {
		addrs[i] = c.Addr()
	}
	for _, c := range eps {
		c.SetAddressBook(addrs)
	}

	newPlan := func() *compiler.Plan {
		g := gen.Uniform(300, 1800, 40, 91)
		db := edb.NewDB()
		db.SetGraph("edge", g)
		return compilePlan(t, progs.SSSP, db)
	}

	cfg := Config{
		Mode:          MRASyncAsync,
		Tau:           300 * time.Microsecond,
		CheckInterval: 500 * time.Microsecond,
		MaxWall:       30 * time.Second,
	}

	results := make([]map[int64]float64, workers)
	plans := make([]*compiler.Plan, workers)
	for i := range plans {
		plans[i] = newPlan() // each "process" compiles independently
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			local, err := RunWorker(plans[i], cfg, eps[i])
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			results[i] = local
		}(i)
	}
	rounds, converged, err := RunMaster(newPlan(), cfg, eps[workers])
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !converged || rounds == 0 {
		t.Fatalf("converged=%v rounds=%d", converged, rounds)
	}

	merged := map[int64]float64{}
	for _, local := range results {
		for k, v := range local {
			merged[k] = v
		}
	}
	g := gen.Uniform(300, 1800, 40, 91)
	want := ref.Dijkstra(g, 0)
	expectClose(t, MRASyncAsync, merged, want, math.Inf(1), 1e-9)
}

func TestRunWorkerRejectsEmptyPlan(t *testing.T) {
	net := transport.NewChannelNetwork(1, 8)
	defer net.Close()
	if _, err := RunWorker(&compiler.Plan{}, Config{}, net.Conn(0)); err == nil {
		t.Fatal("uncompiled plan should be rejected")
	}
}
