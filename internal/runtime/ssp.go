package runtime

import (
	"time"

	"powerlog/internal/compiler"
	"powerlog/internal/metrics"
)

// MRASSP — stale synchronous parallel evaluation — is the point between
// BSP and AP that Das & Zaniolo argue often beats both: workers run
// supersteps like BSP (buffer a whole pass, flush at superstep end),
// but the barrier is relaxed — a worker may run up to Staleness
// supersteps ahead of the slowest peer before blocking on stragglers.
// Staleness = 0 degenerates to lockstep; Staleness = ∞ would be AP.
//
// This file is the whole mode: a FlushPolicy (barrier-style superstep
// batching), a BarrierPolicy (the staleness gate over per-peer EndPhase
// counts), and a registration — the policy-layer seams make a new
// consistency model a one-file addition.
//
// Termination uses the polling master (like the async family): workers
// keep answering StatsRequest while blocked at the gate, so quiescence
// and ε detection work unchanged. Correctness rests on Theorem 3, which
// licenses any interleaving of fold/propagate for MRA programs — SSP
// merely constrains the schedule the theorem already covers.

func init() {
	registerMode(MRASSP, false, newSSPPolicies)
}

func newSSPPolicies(cfg Config, plan *compiler.Plan, self int, reg *metrics.Registry) policySet {
	return policySet{
		// Superstep batching: buffers flush only when the step ends
		// (barrier semantics), never on emit or the τ timer.
		flush:   barrierFlush{},
		sched:   withPriorityHold(baseScheduler(cfg, plan), cfg, plan, reg),
		barrier: &sspBarrier{staleness: cfg.Staleness},
		pass:    (*worker).scanPass,
	}
}

// sspBarrier implements the staleness gate. steps counts the supersteps
// this worker has completed; each completion broadcasts an EndPhase
// marker, and handle() counts markers per sender in w.peerSteps — the
// vector clock the gate reads.
type sspBarrier struct {
	staleness int
	steps     int
}

func (b *sspBarrier) setup(*worker) {}

func (b *sspBarrier) beginPass(w *worker) bool { return w.drainInbox() }

func (b *sspBarrier) endPass(w *worker, progressed bool) bool {
	// A superstep boundary is SSP's snapshot safe point: join a pending
	// marker episode (combining aggregates) or write a local stale
	// snapshot (selective aggregates, Theorem 3) — and the membership
	// safe point: join a pending fence (membership.go).
	w.maybeSnapshot()
	w.maybeJoinFence()
	if !progressed {
		if w.pol.sched.release() {
			// §5.4: held low-priority deltas are used when the worker
			// would otherwise idle.
			return true
		}
		// An idle worker's clock ticks freely toward the frontier, so a
		// fast peer blocked at the gate can never deadlock on a peer
		// that simply has no work: the straggler catches up one marker
		// per idle pass until the gap closes.
		if b.steps < w.maxPeerSteps() {
			b.advance(w)
			return true
		}
		w.flushAll()
		w.idleWait()
		return true
	}
	w.passes++
	w.pol.sched.rearm()
	b.advance(w)
	// The gate: before starting superstep steps+1, every peer must have
	// completed at least steps − Staleness.
	b.awaitPeerSteps(w, b.steps-b.staleness)
	return true
}

// advance completes one superstep: flush the pass's buffered updates,
// then fence them with EndPhase markers (data lane, so per-pair
// ordering guarantees the data lands first). Markers carry the 1-based
// completed-step count; receivers keep the max, so duplicates are
// no-ops and a dropped marker is covered by any later one.
func (b *sspBarrier) advance(w *worker) {
	w.flushAll()
	b.steps++
	w.rounds++
	w.broadcastEndPhase(b.steps)
	w.maybeStaleSnapshot(b.steps)
}

// minPeerSteps / maxPeerSteps scan the EndPhase vector clock, skipping
// crash-orphaned and non-member slots — the skip is what unwedges a
// gated worker blocked on a dead peer's frozen clock once the Orphan
// verdict lands.
func (w *worker) minPeerSteps() int {
	first := true
	least := 0
	skipped := false
	for j, s := range w.peerSteps {
		if j == w.id {
			continue
		}
		if w.peerSkip(j) {
			skipped = true
			continue
		}
		if first || s < least {
			least, first = s, false
		}
	}
	if first && skipped {
		// Peers exist but every one is down or outside the membership:
		// nothing to gate on (the fence, not the gate, synchronises next).
		return maxSteps
	}
	return least
}

func (w *worker) maxPeerSteps() int {
	most := 0
	for j, s := range w.peerSteps {
		if !w.peerSkip(j) && s > most {
			most = s
		}
	}
	return most
}

// awaitPeerSteps blocks until every peer has completed at least need
// supersteps, handling all control traffic (stats polls, Stop) while
// blocked. The blocked time is accounted as straggler wait — the SSP
// cost surfaced through Result.Workers. A stalled wait retransmits this
// worker's own marker (a lost one may be what blocks a peer), and a
// snapshot episode requested while blocked is joined inline — a gated
// worker that ignored SnapRequest would deadlock the episode against
// peers already waiting for its mark.
func (b *sspBarrier) awaitPeerSteps(w *worker, need int) {
	if w.nw == 1 || need <= 0 {
		return
	}
	var start time.Time
	// A parked peer stops advancing its superstep clock, so the gate must
	// also yield to a pending Park — the park handshake (not the gate) is
	// the epoch's final synchronisation point.
	for !w.stopped && !w.sendDead.Load() && !w.parkPending() && w.minPeerSteps() < need {
		if start.IsZero() {
			start = time.Now()
		}
		select {
		case m, ok := <-w.conn.Inbox():
			if !ok {
				w.stopped = true
				goto done
			}
			w.handle(m)
			w.maybeSnapshot()
			// A membership fence requested while gated is joined inline
			// for the same reason as an episode: peers mid-fence wait for
			// this worker's cut marker.
			w.maybeJoinFence()
		case <-time.After(markerResend):
			w.met.markerResends.Inc()
			w.broadcastEndPhase(b.steps)
		}
	}
done:
	if !start.IsZero() {
		blocked := time.Since(start)
		w.stragglerWait += blocked
		w.met.stragglerUS.Observe(uint64(blocked.Microseconds()))
	}
}
