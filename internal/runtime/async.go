package runtime

import (
	"runtime"
	"time"
)

// runAsync is the barrier-free loop shared by MRAAsync, MRASyncAsync, and
// MRAAAP: drain the inbox, drain dirty rows, propagate, flush per the
// mode's policy, and idle briefly when nothing moved. Termination comes
// from the master's periodic check (paper §5.3: async workers have no
// global view, so the master polls stats and decides).
func (w *worker) runAsync() {
	for !w.stopped {
		progressed := w.drainInbox()
		if w.stopped {
			return
		}
		if n := w.scanCompute(); n > 0 {
			progressed = true
		}
		if progressed {
			// Only productive passes count as effective iterations (the
			// ε gating and the system-level cap both key off them).
			w.passes++
			// Yield between passes so the master's termination check (and
			// the comm goroutines) are never starved by spinning compute.
			runtime.Gosched()
		}
		w.timedFlush()
		if progressed {
			w.thresholdOff = false
			continue
		}
		if w.lowPrioHeld {
			// Nothing urgent left: release the low-priority cache (§5.4 —
			// less important deltas are used when the worker would idle).
			w.thresholdOff = true
			w.lowPrioHeld = false
			continue
		}
		w.flushAll()
		w.idleWait()
	}
}

// scanCompute processes the current dirty set; returns how many rows
// produced work.
func (w *worker) scanCompute() int {
	n := 0
	ordered := w.cfg.OrderedScan && w.plan.Op.Selective()
	for _, d := range w.drainSnapshot() {
		if ordered {
			w.refresh(&d)
		}
		// §5.4 priority: small combining-aggregate deltas wait locally.
		if w.holdLowPriority(d.key, d.val) {
			continue
		}
		improved, change, signed := w.table.FoldAcc(d.key, d.val)
		w.accDelta += change
		w.accSum += signed
		if !w.shouldPropagate(improved, d.val) {
			continue
		}
		n++
		w.plan.Propagate(d.key, d.val, w.emitAsync)
	}
	return n
}

// holdLowPriority refolds an unimportant delta back into the intermediate
// so it keeps accumulating locally; it reports whether the delta was held.
func (w *worker) holdLowPriority(k int64, tmp float64) bool {
	if w.thresholdOff || w.cfg.PriorityThreshold <= 0 || w.plan.Op.Selective() {
		return false
	}
	if abs(tmp) >= w.cfg.PriorityThreshold {
		return false
	}
	// Refolding marks the row dirty again; lowPrioHeld prevents the idle
	// detector from treating that as pending work forever.
	w.table.FoldDelta(k, tmp)
	w.lowPrioHeld = true
	return true
}

// emitAsync routes a contribution under the mode's flush policy.
func (w *worker) emitAsync(dst int64, v float64) {
	o := w.owner(dst)
	if o == w.id {
		w.table.FoldDelta(dst, v)
		return
	}
	w.bufs[o].add(dst, v)
	w.winCount[o]++
	// §5.4, the other half: important deltas (well above the threshold)
	// are sent to their neighbours immediately instead of waiting for the
	// buffer to fill.
	if t := w.cfg.PriorityThreshold; t > 0 && abs(v) >= 8*t {
		w.flush(o)
		return
	}
	switch {
	case w.cfg.Mode == MRAAsync:
		// Myria-style eager small batches: maximum asynchrony.
		if w.bufs[o].len() >= asyncEagerBatch {
			w.flush(o)
		}
	case w.cfg.Mode == MRAAAP:
		if !w.aapDelayed && w.bufs[o].len() >= w.cfg.BetaInit {
			w.flush(o)
		}
	case w.plan.Op.Selective():
		// Unified engine, selective aggregate: freshness beats batching
		// (a stale bound must be corrected later), so stay on the eager
		// end of the dial.
		if w.bufs[o].len() >= asyncEagerBatch {
			w.flush(o)
		}
	default: // unified engine, combining aggregate: adaptive β
		if float64(w.bufs[o].len()) >= w.beta[o] {
			w.flush(o)
		}
	}
	if w.bufs[o].len() >= w.cfg.BatchMax {
		w.flush(o)
	}
}

// asyncEagerBatch is the small fixed batch of the pure-async mode.
const asyncEagerBatch = 64

// timedFlush applies the τ interval: any buffer older than τ is sent, and
// the adaptive window is advanced (paper §5.3's β(i,j) update rule).
func (w *worker) timedFlush() {
	now := time.Now()
	for j := range w.bufs {
		if j == w.id {
			continue
		}
		if w.bufs[j].len() > 0 && now.Sub(w.lastFlush[j]) >= w.cfg.Tau {
			w.flush(j)
		}
	}
	if w.cfg.Mode == MRASyncAsync {
		w.adaptBuffers(now)
	}
	if w.cfg.Mode == MRAAAP {
		w.adaptAAP(now)
	}
}

// adaptBuffers implements the paper's adaptive buffer rule: over a window
// ΔT, if the update accumulation rate |B(i,j)|/ΔT leaves the band
// [β/(r·τ), r·β/τ], reset β(i,j) = α·τ·|B(i,j)|/ΔT.
func (w *worker) adaptBuffers(now time.Time) {
	dT := now.Sub(w.winStart)
	if dT < 4*w.cfg.Tau {
		return
	}
	tau := w.cfg.Tau.Seconds()
	dts := dT.Seconds()
	for j := range w.beta {
		if j == w.id {
			continue
		}
		rate := float64(w.winCount[j]) / dts
		hi := w.cfg.R * w.beta[j] / tau
		lo := w.beta[j] / (w.cfg.R * tau)
		if rate > hi || rate < lo {
			b := w.cfg.Alpha * tau * rate
			// Clamp: a floor keeps slow-pace phases from degenerating to
			// per-update messages (the folding window would vanish); a
			// ceiling bounds staleness and keeps any single message from
			// monopolising the emulated NIC.
			if floor := float64(w.cfg.BetaInit) / 4; b < floor {
				b = floor
			}
			if max := float64(2 * w.cfg.BetaInit); b > max {
				b = max
			}
			w.beta[j] = b
		}
		w.winCount[j] = 0
	}
	w.winStart = now
}

// adaptAAP is the Grape+-style mode switch of §6.5: a worker flooded by
// in-messages delays its own sends (SSP-leaning, bigger batches on the τ
// timer only); a starved worker flushes eagerly (AP-leaning).
func (w *worker) adaptAAP(now time.Time) {
	dT := now.Sub(w.winStart)
	if dT < 4*w.cfg.Tau {
		return
	}
	w.aapDelayed = w.inWindow > w.outWindow
	w.inWindow, w.outWindow = 0, 0
	w.winStart = now
}

// idleWait blocks briefly for new input so an idle worker does not spin.
func (w *worker) idleWait() {
	select {
	case m, ok := <-w.conn.Inbox():
		if !ok {
			w.stopped = true
			return
		}
		w.handle(m)
	case <-time.After(200 * time.Microsecond):
	}
}
