package runtime

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"powerlog/internal/ckpt"
	"powerlog/internal/edb"
	"powerlog/internal/gen"
	"powerlog/internal/progs"
	"powerlog/internal/ref"
	"powerlog/internal/transport"
)

// TestCheckpointRestoreEquivalence simulates a crash: run MRASync with
// periodic snapshots, then resume purely from the snapshot directory (no
// ΔX¹ reseeding) and check the final result matches a clean run and the
// Dijkstra oracle.
func TestCheckpointRestoreEquivalence(t *testing.T) {
	g := gen.Uniform(400, 2400, 50, 77)
	want := ref.Dijkstra(g, 0)
	dir := t.TempDir()

	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.SSSP, db)

	// Phase 1: run with snapshots every superstep; the last snapshot is a
	// mid-run consistent cut unless the run converged exactly at one.
	res1, err := Run(plan, Config{
		Workers:       3,
		Mode:          MRASync,
		SnapshotDir:   dir,
		SnapshotEvery: 1,
		MaxWall:       30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Converged {
		t.Fatal("phase 1 did not converge")
	}
	// Epoch-stamped shards, pruned to the newest two epochs per worker.
	shards, _ := filepath.Glob(filepath.Join(dir, "ep*-shard-*.plck"))
	if len(shards) != 6 {
		t.Fatalf("expected 2 epochs x 3 shard snapshots, got %v", shards)
	}

	// Phase 2: "crash" and resume from the snapshots with a different
	// worker count (repartitioning on restore).
	res2, err := Run(plan, Config{
		Workers:    5,
		Mode:       MRASync,
		RestoreDir: dir,
		MaxWall:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Converged {
		t.Fatal("restored run did not converge")
	}
	expectClose(t, MRASync, res2.Values, want, math.Inf(1), 1e-9)
	// And identical to the uninterrupted result.
	if len(res1.Values) != len(res2.Values) {
		t.Fatalf("result sizes differ: %d vs %d", len(res1.Values), len(res2.Values))
	}
	for k, v := range res1.Values {
		if res2.Values[k] != v {
			t.Fatalf("key %d: %v vs %v", k, res2.Values[k], v)
		}
	}
}

// TestMidRunSnapshotResume takes a snapshot from a deliberately truncated
// run (round cap) and verifies resuming completes the computation.
func TestMidRunSnapshotResume(t *testing.T) {
	g := gen.Chain(500, 100, 50, 79) // high diameter: needs many rounds
	want := ref.Dijkstra(g, 0)
	dir := t.TempDir()

	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.SSSP, db)
	plan.Termination.MaxIters = 10 // force a "crash" after 10 supersteps

	res, err := Run(plan, Config{
		Workers:       2,
		Mode:          MRASync,
		SnapshotDir:   dir,
		SnapshotEvery: 2,
		MaxWall:       30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Skip("graph converged before the forced crash; nothing to resume")
	}

	plan.Termination.MaxIters = 10000
	res2, err := Run(plan, Config{
		Workers:    2,
		Mode:       MRASync,
		RestoreDir: dir,
		MaxWall:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Converged {
		t.Fatal("resumed run did not converge")
	}
	expectClose(t, MRASync, res2.Values, want, math.Inf(1), 1e-9)
}

func TestRestoreMissingDirFails(t *testing.T) {
	g := gen.Uniform(50, 200, 10, 81)
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.SSSP, db)
	_, err := Run(plan, Config{Workers: 2, Mode: MRASync, RestoreDir: t.TempDir()})
	if err == nil {
		t.Fatal("restore from empty dir should fail")
	}
}

func TestSnapshotRowsCaptureIntermediates(t *testing.T) {
	// Direct check that RangeRows + SaveShard capture pending deltas.
	g := gen.Uniform(50, 200, 10, 83)
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.SSSP, db)
	w := newWorker(0, Config{Workers: 1}.withDefaults(), plan, noopConn{})
	defer func() {
		close(w.out)
		<-w.commDone
	}()
	w.table.FoldDelta(3, 7) // pending, undrained
	_, _ = w.table.Drain(5) // no-op
	w.table.FoldAcc(5, 2.5)
	dir := t.TempDir()
	w.cfg.SnapshotDir = dir
	if err := w.snapshot(1, true); err != nil {
		t.Fatal(err)
	}
	rows, meta, err := ckpt.LoadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Epoch != 1 || !meta.Cut {
		t.Fatalf("meta round trip: %+v", meta)
	}
	byKey := map[int64]ckpt.Row{}
	for _, r := range rows {
		byKey[r.Key] = r
	}
	if byKey[3].Inter != 7 {
		t.Errorf("pending intermediate lost: %+v", byKey[3])
	}
	if byKey[5].Acc != 2.5 {
		t.Errorf("accumulation lost: %+v", byKey[5])
	}
}

// noopConn satisfies transport.Conn for worker unit tests.
type noopConn struct{}

func (noopConn) ID() int                           { return 0 }
func (noopConn) Workers() int                      { return 1 }
func (noopConn) Send(int, transport.Message) error { return nil }
func (noopConn) Inbox() <-chan transport.Message   { return nil }
func (noopConn) Close() error                      { return nil }
