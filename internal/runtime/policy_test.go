package runtime

import (
	"math"
	"testing"
	"time"

	"powerlog/internal/agg"
	"powerlog/internal/compiler"
	"powerlog/internal/metrics"
)

// ---------------------------------------------------------------------------
// Flush-decision equivalence: replay synthetic event traces against a
// literal transcription of the pre-refactor emitAsync/timedFlush mode
// switches and require the policy layer to make the same call at every
// event. This is the refactor's bit-for-bit preservation contract.
// ---------------------------------------------------------------------------

// oldFlushRef transcribes the former mode switches (the emitAsync switch,
// adaptBuffers, and adaptAAP) exactly as they appeared before the policy
// refactor. Deliberately duplicated here rather than shared: the point is
// an independent oracle.
type oldFlushRef struct {
	mode      Mode
	selective bool
	cfg       Config
	self      int

	beta       []float64
	winCount   []int64
	inWindow   int64
	outWindow  int64
	winStart   time.Time
	aapDelayed bool
}

func newOldFlushRef(mode Mode, selective bool, cfg Config, start time.Time) *oldFlushRef {
	r := &oldFlushRef{
		mode: mode, selective: selective, cfg: cfg,
		beta:     make([]float64, cfg.Workers),
		winCount: make([]int64, cfg.Workers),
		winStart: start,
	}
	for j := range r.beta {
		r.beta[j] = float64(cfg.BetaInit)
	}
	return r
}

// emit reproduces the old emitAsync decision for a buffer holding bufLen
// entries after the delta v was folded in. Barrier modes used
// emitBuffered, which never flushed on emit.
func (r *oldFlushRef) emit(dst, bufLen int, v float64) bool {
	if r.mode == NaiveSync || r.mode == MRASync {
		return false
	}
	r.winCount[dst]++
	if t := r.cfg.PriorityThreshold; t > 0 && agg.Abs(v) >= 8*t {
		return true
	}
	switch {
	case r.mode == MRAAsync:
		return bufLen >= asyncEagerBatch
	case r.mode == MRAAAP:
		return !r.aapDelayed && bufLen >= r.cfg.BetaInit
	case r.selective:
		return bufLen >= asyncEagerBatch
	default:
		return float64(bufLen) >= r.beta[dst]
	}
}

// tick reproduces the old timedFlush adaptation calls.
func (r *oldFlushRef) tick(now time.Time) {
	if r.mode == MRASyncAsync {
		r.adaptBuffers(now)
	}
	if r.mode == MRAAAP {
		r.adaptAAP(now)
	}
}

func (r *oldFlushRef) adaptBuffers(now time.Time) {
	dT := now.Sub(r.winStart)
	if dT < 4*r.cfg.Tau {
		return
	}
	tau := r.cfg.Tau.Seconds()
	dts := dT.Seconds()
	for j := range r.beta {
		if j == r.self {
			continue
		}
		rate := float64(r.winCount[j]) / dts
		hi := r.cfg.R * r.beta[j] / tau
		lo := r.beta[j] / (r.cfg.R * tau)
		if rate > hi || rate < lo {
			b := r.cfg.Alpha * tau * rate
			if lowest := float64(r.cfg.BetaInit) / 4; b < lowest {
				b = lowest
			}
			if highest := float64(2 * r.cfg.BetaInit); b > highest {
				b = highest
			}
			r.beta[j] = b
		}
		r.winCount[j] = 0
	}
	r.winStart = now
}

func (r *oldFlushRef) adaptAAP(now time.Time) {
	dT := now.Sub(r.winStart)
	if dT < 4*r.cfg.Tau {
		return
	}
	r.aapDelayed = r.inWindow > r.outWindow
	r.inWindow, r.outWindow = 0, 0
	r.winStart = now
}

// lcg is a deterministic trace generator (no math/rand so traces are
// stable across Go versions).
type lcg uint64

func (g *lcg) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g >> 16)
}

func TestFlushDecisionEquivalence(t *testing.T) {
	cases := []struct {
		name      string
		mode      Mode
		kind      agg.Kind
		threshold float64
	}{
		{"naive-sync", NaiveSync, agg.Min, 0},
		{"mra-sync", MRASync, agg.Min, 0},
		{"mra-async-selective", MRAAsync, agg.Min, 0},
		{"mra-async-combining", MRAAsync, agg.Sum, 0},
		{"mra-async-priority", MRAAsync, agg.Sum, 0.5},
		{"aap", MRAAAP, agg.Sum, 0},
		{"aap-priority", MRAAAP, agg.Sum, 0.5},
		{"unified-selective", MRASyncAsync, agg.Min, 0},
		{"unified-adaptive", MRASyncAsync, agg.Sum, 0},
		{"unified-adaptive-priority", MRASyncAsync, agg.Sum, 0.25},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const nw, self = 4, 0
			cfg := Config{
				Workers:           nw,
				Mode:              tc.mode,
				PriorityThreshold: tc.threshold,
			}.withDefaults()
			plan := &compiler.Plan{Op: agg.ByKind(tc.kind)}
			ps := policiesFor(cfg, plan, self, metrics.NewRegistry())

			clock := time.Unix(1000, 0)
			ref := newOldFlushRef(tc.mode, plan.Op.Selective(), cfg, clock)
			win := window{start: clock, counts: make([]int64, nw)}
			simLen := make([]int, nw)

			rng := lcg(42)
			values := []float64{0.001, 0.04, 0.9, 7.5, 120}
			for step := 0; step < 20000; step++ {
				r := rng.next()
				switch {
				case r%100 < 82: // emit
					dst := 1 + int(r>>8)%(nw-1)
					v := values[int(r>>24)%len(values)]
					if r>>40&1 == 1 {
						v = -v
					}
					simLen[dst]++
					win.counts[dst]++
					got := ps.flush.onEmit(dst, simLen[dst], v)
					want := ref.emit(dst, simLen[dst], v)
					if got != want {
						t.Fatalf("step %d: emit(dst=%d, len=%d, v=%g) = %v, old rule says %v",
							step, dst, simLen[dst], v, got, want)
					}
					if got {
						win.out += int64(simLen[dst])
						ref.outWindow += int64(simLen[dst])
						simLen[dst] = 0
					}
				case r%100 < 92: // inbound traffic (drives the AAP switch)
					n := int64(r>>8) % 400
					win.in += n
					ref.inWindow += n
				default: // timer tick; occasionally jump past the 4τ window
					adv := cfg.Tau/2 + time.Duration(r>>8)%(2*cfg.Tau)
					if r>>32%5 == 0 {
						adv += 5 * cfg.Tau
					}
					clock = clock.Add(adv)
					ps.flush.onTick(clock, &win)
					ref.tick(clock)
				}
			}

			// The adaptive policy's β state must have tracked the old rule
			// exactly (same float ops in the same order).
			if ap, ok := ps.flush.(*adaptiveBetaFlush); ok {
				for j := range ap.beta {
					if j != self && ap.beta[j] != ref.beta[j] {
						t.Errorf("β[%d] = %v, old rule has %v", j, ap.beta[j], ref.beta[j])
					}
				}
			}
			if fp, ok := ps.flush.(*fixedBetaFlush); ok {
				if fp.delayed != ref.aapDelayed {
					t.Errorf("AAP delayed = %v, old rule has %v", fp.delayed, ref.aapDelayed)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Adaptive-β unit tests: the band and the clamp, directly.
// ---------------------------------------------------------------------------

func adaptiveForTest() (*adaptiveBetaFlush, Config) {
	cfg := Config{Workers: 2}.withDefaults()
	return newAdaptiveBetaFlush(cfg, 0, metrics.NewRegistry()), cfg
}

// feedWindow pushes a count for destination 1 through one full adaptation
// window of exactly 4τ and returns the resulting β(0,1).
func feedWindow(p *adaptiveBetaFlush, cfg Config, count int64) float64 {
	start := time.Unix(2000, 0)
	win := window{start: start, counts: make([]int64, cfg.Workers)}
	win.counts[1] = count
	p.adapt(start.Add(4*cfg.Tau), &win)
	return p.beta[1]
}

func TestAdaptiveBetaInBandNoChange(t *testing.T) {
	p, cfg := adaptiveForTest()
	// rate = β/τ sits in the middle of [β/(rτ), rβ/τ]: no adaptation.
	dts := (4 * cfg.Tau).Seconds()
	count := int64(float64(cfg.BetaInit) / cfg.Tau.Seconds() * dts)
	if got := feedWindow(p, cfg, count); got != float64(cfg.BetaInit) {
		t.Errorf("in-band rate moved β to %v", got)
	}
}

func TestAdaptiveBetaAboveBandResets(t *testing.T) {
	p, cfg := adaptiveForTest()
	// rate = 3β/τ > rβ/τ (r = 2): β resets to α·τ·rate = 3αβ, clamped to
	// the 2·BetaInit ceiling — 3·0.8 = 2.4 > 2.
	dts := (4 * cfg.Tau).Seconds()
	count := int64(3 * float64(cfg.BetaInit) / cfg.Tau.Seconds() * dts)
	want := float64(2 * cfg.BetaInit)
	if got := feedWindow(p, cfg, count); got != want {
		t.Errorf("above-band β = %v, want ceiling %v", got, want)
	}
}

func TestAdaptiveBetaBelowBandResets(t *testing.T) {
	p, cfg := adaptiveForTest()
	// A trickle well below β/(rτ): α·τ·rate lands under the floor and is
	// clamped to BetaInit/4.
	if got := feedWindow(p, cfg, 1); got != float64(cfg.BetaInit)/4 {
		t.Errorf("below-band β = %v, want floor %v", got, float64(cfg.BetaInit)/4)
	}
}

func TestAdaptiveBetaMidReset(t *testing.T) {
	p, cfg := adaptiveForTest()
	// A rate above the band whose α·τ·rate stays inside the clamp:
	// rate = 2.5β/τ → β' = 2αβ = 2β·0.8 = 2·0.8·256 = 409.6... compute:
	// α·τ·(2.5β/τ) = 2.5αβ = 2.5·0.8·256 = 512 — exactly the ceiling.
	// Use 2.2β/τ instead: 2.2·0.8·256 = 450.56, strictly inside.
	dts := (4 * cfg.Tau).Seconds()
	count := int64(2.2 * float64(cfg.BetaInit) / cfg.Tau.Seconds() * dts)
	got := feedWindow(p, cfg, count)
	if got <= float64(cfg.BetaInit) || got >= float64(2*cfg.BetaInit) {
		t.Errorf("mid-band reset β = %v, want inside (%v, %v)", got, cfg.BetaInit, 2*cfg.BetaInit)
	}
}

func TestAdaptiveBetaShortWindowSkipped(t *testing.T) {
	p, cfg := adaptiveForTest()
	start := time.Unix(2000, 0)
	win := window{start: start, counts: make([]int64, cfg.Workers)}
	win.counts[1] = 1 << 20
	p.adapt(start.Add(4*cfg.Tau-time.Nanosecond), &win)
	if p.beta[1] != float64(cfg.BetaInit) {
		t.Errorf("β adapted before the 4τ window elapsed")
	}
	if win.counts[1] == 0 {
		t.Error("window counts reset before the 4τ window elapsed")
	}
}

// TestAdaptiveBetaZeroDeltaT is the flush-decision table's degenerate-
// window companion: two adaptation calls inside one clock tick (ΔT == 0,
// reachable when τ == 0 because the 4τ gate never filters) must leave β
// finite, clamped, and unchanged — before the guard, α·τ·|B|/ΔT produced
// Inf (counts > 0) or NaN (counts == 0) that slipped past the clamp
// comparisons. The window counts must survive the skipped update so the
// next real window adapts over them.
func TestAdaptiveBetaZeroDeltaT(t *testing.T) {
	cases := []struct {
		name  string
		tau   time.Duration
		count int64
	}{
		{"zero-dt-busy", 0, 1 << 16}, // rate would be +Inf
		{"zero-dt-idle", 0, 0},       // rate would be NaN (0/0)
		{"zero-dt-trickle", 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Construct directly (bypassing withDefaults) — the τ=0 path is
			// unreachable through Run, but tests and future callers can
			// build the policy with arbitrary configs.
			cfg := Config{Workers: 2, BetaInit: 256, Alpha: 0.8, R: 2, Tau: tc.tau}
			p := newAdaptiveBetaFlush(cfg, 0, metrics.NewRegistry())
			start := time.Unix(2000, 0)
			win := window{start: start, counts: make([]int64, cfg.Workers)}
			win.counts[1] = tc.count
			p.adapt(start, &win) // ΔT == 0: same instant
			p.adapt(start, &win) // and again, same tick
			if b := p.beta[1]; math.IsInf(b, 0) || math.IsNaN(b) {
				t.Fatalf("β escaped the clamp: %v", b)
			}
			if p.beta[1] != float64(cfg.BetaInit) {
				t.Errorf("zero-ΔT window moved β to %v", p.beta[1])
			}
			if win.counts[1] != tc.count {
				t.Errorf("skipped window lost its counts: %d, want %d", win.counts[1], tc.count)
			}
		})
	}
}

func TestAdaptiveBetaWindowCountsReset(t *testing.T) {
	p, cfg := adaptiveForTest()
	start := time.Unix(2000, 0)
	win := window{start: start, counts: make([]int64, cfg.Workers)}
	win.counts[1] = 123
	now := start.Add(4 * cfg.Tau)
	p.adapt(now, &win)
	if win.counts[1] != 0 {
		t.Error("window counts not reset after adaptation")
	}
	if !win.start.Equal(now) {
		t.Error("window start not advanced after adaptation")
	}
	if len(p.betaTrajectory()) != 1 {
		t.Errorf("β trajectory has %d samples, want 1", len(p.betaTrajectory()))
	}
}

// ---------------------------------------------------------------------------
// outBuf.grow: filling past the 3/4-load boundary must preserve every
// folded value and keep lookups working through the reindex.
// ---------------------------------------------------------------------------

func TestOutBufGrowReindex(t *testing.T) {
	b := newOutBuf(agg.ByKind(agg.Sum))
	// Cross the 3/4·256 boundary several times over: 4 doublings.
	const n = 3000
	for k := int64(0); k < n; k++ {
		b.add(k*7919, 1) // spread keys; 7919 prime avoids trivial patterns
	}
	// Fold a second contribution into every key after the growth, proving
	// the reindexed slots still find the original entries.
	for k := int64(0); k < n; k++ {
		b.add(k*7919, 2)
	}
	if b.len() != n {
		t.Fatalf("len = %d, want %d (duplicate keys split across grow?)", b.len(), n)
	}
	got := map[int64]float64{}
	for _, kv := range b.take() {
		got[kv.K] = kv.V
	}
	for k := int64(0); k < n; k++ {
		if got[k*7919] != 3 {
			t.Fatalf("key %d folded to %v, want 3", k*7919, got[k*7919])
		}
	}
	if b.len() != 0 {
		t.Error("take did not empty the buffer")
	}
	// The emptied buffer must be immediately reusable (slots cleared).
	b.add(1, 5)
	b.add(1, 5)
	if b.len() != 1 || b.vals[0] != 10 {
		t.Error("buffer not reusable after take")
	}
}

// ---------------------------------------------------------------------------
// Scheduler strategies.
// ---------------------------------------------------------------------------

func TestOrderedSchedArrange(t *testing.T) {
	batch := []drained{{1, 5}, {2, 1}, {3, 9}, {4, 3}}
	orderedSched{asc: true}.arrange(batch)
	for i := 1; i < len(batch); i++ {
		if batch[i-1].val > batch[i].val {
			t.Fatalf("ascending arrange out of order: %v", batch)
		}
	}
	orderedSched{asc: false}.arrange(batch)
	for i := 1; i < len(batch); i++ {
		if batch[i-1].val < batch[i].val {
			t.Fatalf("descending arrange out of order: %v", batch)
		}
	}
	if !(orderedSched{}).refreshes() || (fifoSched{}).refreshes() {
		t.Error("refreshes predicate wrong")
	}
}

func TestPriorityHoldCycle(t *testing.T) {
	reg := metrics.NewRegistry()
	s := &priorityHold{
		inner: fifoSched{}, threshold: 1.0,
		holds: reg.Counter("sched.hold"), releases: reg.Counter("sched.release"),
	}
	if s.hold(5) {
		t.Error("held an important delta")
	}
	if !s.hold(0.1) {
		t.Error("did not hold a small delta")
	}
	if !s.holding() {
		t.Error("holding not reported")
	}
	// Idle: release lets small deltas through exactly once.
	if !s.release() {
		t.Error("release with held work returned false")
	}
	if s.hold(0.1) {
		t.Error("held a delta after release")
	}
	if s.release() {
		t.Error("release with nothing held returned true")
	}
	// Progress rearms the threshold.
	s.rearm()
	if !s.hold(0.1) {
		t.Error("did not hold after rearm")
	}
	// The per-decision counters track the cycle.
	snap := reg.Snapshot()
	if got := snap.Counter("sched.hold"); got != 2 {
		t.Errorf("sched.hold = %d, want 2", got)
	}
	if got := snap.Counter("sched.release"); got != 1 {
		t.Errorf("sched.release = %d, want 1", got)
	}
}

// ---------------------------------------------------------------------------
// seenSet: dense bitset and sparse map behave identically.
// ---------------------------------------------------------------------------

func TestSeenSet(t *testing.T) {
	for _, dense := range []bool{true, false} {
		s := newSeenSet(dense, 200)
		for _, k := range []int64{0, 1, 63, 64, 199} {
			if s.has(k) {
				t.Errorf("dense=%v: fresh set has %d", dense, k)
			}
			s.add(k)
			if !s.has(k) {
				t.Errorf("dense=%v: added key %d missing", dense, k)
			}
		}
		// Out-of-range keys fall back to the map even in dense mode.
		s.add(1 << 40)
		if !s.has(1 << 40) {
			t.Errorf("dense=%v: out-of-range key missing", dense)
		}
		s.reset()
		for _, k := range []int64{0, 63, 199, 1 << 40} {
			if s.has(k) {
				t.Errorf("dense=%v: key %d survived reset", dense, k)
			}
		}
	}
}
