package runtime

import (
	"math"
	"testing"
	"time"

	"powerlog/internal/edb"
	"powerlog/internal/gen"
	"powerlog/internal/progs"
	"powerlog/internal/ref"
)

// TestSSPStalenessSweep checks that every staleness bound — from lockstep
// to far beyond the frontier — reaches the same SSSP fixpoint. Selective
// aggregates must be exact regardless of how stale the reads were
// (Theorem 3 covers every interleaving SSP can produce).
func TestSSPStalenessSweep(t *testing.T) {
	g := gen.Uniform(300, 1800, 50, 97)
	want := ref.Dijkstra(g, 0)
	for _, staleness := range []int{1, 2, 4, 16} {
		db := edb.NewDB()
		db.SetGraph("edge", g)
		plan := compilePlan(t, progs.SSSP, db)
		res, err := Run(plan, Config{
			Workers:       4,
			Mode:          MRASSP,
			Staleness:     staleness,
			CheckInterval: 200 * time.Microsecond,
		})
		if err != nil {
			t.Fatalf("staleness %d: %v", staleness, err)
		}
		if !res.Converged {
			t.Errorf("staleness %d: did not converge", staleness)
		}
		expectClose(t, MRASSP, res.Values, want, math.Inf(1), 1e-9)
	}
}

// TestSSPCombiningEpsilon checks the ε path: PageRank under SSP must land
// within the same tolerance as the other modes.
func TestSSPCombiningEpsilon(t *testing.T) {
	g := gen.RMAT(8, 1200, 0, 17)
	want := ref.PageRank(g, 500, 1e-9)
	for _, staleness := range []int{1, 3} {
		db := edb.NewDB()
		db.SetGraph("edge", g)
		plan := compilePlan(t, progs.PageRank, db)
		res, err := Run(plan, Config{
			Workers:       4,
			Mode:          MRASSP,
			Staleness:     staleness,
			CheckInterval: 200 * time.Microsecond,
		})
		if err != nil {
			t.Fatalf("staleness %d: %v", staleness, err)
		}
		expectClose(t, MRASSP, res.Values, want, math.NaN(), 2e-3)
	}
}

// TestSSPWorkerStats checks the per-worker observability contract: one
// WorkerStats entry per worker, message counts consistent with the run
// totals, and productive passes recorded.
func TestSSPWorkerStats(t *testing.T) {
	g := gen.Uniform(200, 1200, 50, 71)
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.SSSP, db)
	res := runMode(t, plan, MRASSP, 4)
	if len(res.Workers) != 4 {
		t.Fatalf("got %d WorkerStats, want 4", len(res.Workers))
	}
	var sent, recv, flushes, passes int64
	for _, ws := range res.Workers {
		sent += ws.Sent
		recv += ws.Recv
		flushes += ws.Flushes
		passes += ws.Passes
	}
	if sent != res.MessagesSent || recv != res.MessagesRecv || flushes != res.Flushes {
		t.Errorf("per-worker sums (%d/%d/%d) disagree with run totals (%d/%d/%d)",
			sent, recv, flushes, res.MessagesSent, res.MessagesRecv, res.Flushes)
	}
	if passes == 0 {
		t.Error("no productive passes recorded")
	}
}

// TestSSPSingleWorker: with one worker there are no peers and the gate
// must never block.
func TestSSPSingleWorker(t *testing.T) {
	g := gen.Uniform(100, 500, 10, 73)
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.SSSP, db)
	res := runMode(t, plan, MRASSP, 1)
	want := ref.Dijkstra(g, 0)
	expectClose(t, MRASSP, res.Values, want, math.Inf(1), 1e-9)
	if res.MessagesSent != 0 {
		t.Errorf("single worker sent %d messages", res.MessagesSent)
	}
}

// TestBetaTrajectoryReported: the unified mode on a combining aggregate
// samples its β trajectory into WorkerStats.
func TestBetaTrajectoryReported(t *testing.T) {
	g := gen.RMAT(8, 1200, 0, 17)
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.PageRank, db)
	res, err := Run(plan, Config{
		Workers:       4,
		Mode:          MRASyncAsync,
		CheckInterval: 200 * time.Microsecond,
		Tau:           200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ws := range res.Workers {
		if ws.Beta == nil {
			t.Fatalf("worker %d: no β trajectory on adaptive mode", i)
		}
	}
	// Selective programs use eager flushing — no β to report.
	db2 := edb.NewDB()
	db2.SetGraph("edge", gen.Uniform(100, 500, 10, 73))
	plan2 := compilePlan(t, progs.SSSP, db2)
	res2 := runMode(t, plan2, MRASyncAsync, 2)
	for i, ws := range res2.Workers {
		if ws.Beta != nil {
			t.Errorf("worker %d: unexpected β trajectory on selective program", i)
		}
	}
}
