package runtime

import (
	stdruntime "runtime"
	"time"

	"powerlog/internal/transport"
)

// BarrierPolicy implementations (§5.2): the synchronisation protocol
// bracketing each pass of the unified compute loop.

// bspBarrier runs bulk-synchronous supersteps: flush everything,
// exchange EndPhase markers, report to the master, and wait for its
// Continue/Stop verdict. With naive=true each superstep recomputes the
// full result from the previous one (Equation 2); otherwise it is MRA
// semi-naive evaluation (Equation 4) under a barrier.
type bspBarrier struct {
	naive bool
}

func (b *bspBarrier) setup(w *worker) {
	if b.naive {
		// The table being built this round; incoming Data always lands
		// in the freshest next (created *before* reporting PhaseDone so
		// that faster peers' next-round data cannot be stranded).
		w.next = w.newTable()
		w.apply = w.next
	}
}

func (b *bspBarrier) beginPass(w *worker) bool {
	w.rounds++
	return false
}

func (b *bspBarrier) endPass(w *worker, _ bool) bool {
	w.flushAll()
	w.broadcastEndPhase(w.rounds)
	w.awaitPeerRounds(w.rounds)
	if w.stopped {
		return false
	}
	var stats transport.Stats
	if b.naive {
		diff, changed := w.naiveFinish()
		stats.AccDelta = diff
		stats.Dirty = changed
		w.next = w.newTable()
		w.apply = w.next
	} else {
		if w.accFolds >= accResyncFolds {
			// A barrier is an epoch boundary: replace the drifting
			// running Σacc with the exact table sum (worker.resyncAccSum)
			// before it feeds another million folds.
			w.resyncAccSum()
		}
		stats.AccDelta = w.accDelta
		w.accDelta = 0
		stats.Dirty = w.table.HasDirty()
		if w.cfg.SnapshotDir != "" && w.cfg.SnapshotEvery > 0 && w.rounds%w.cfg.SnapshotEvery == 0 {
			// A BSP barrier is a consistent cut: no messages in flight.
			// Fault tolerance is best-effort; the run itself must not fail.
			_ = w.snapshot(w.rounds, true)
		}
	}
	stats.Sent, stats.Recv = w.sent, w.recv
	w.enqueue(w.master, transport.Message{Kind: transport.PhaseDone, Stats: stats})
	return w.awaitVerdict()
}

// freeRun is the barrier-free policy shared by MRAAsync, MRASyncAsync,
// and MRAAAP: drain the inbox before each pass, flush per the mode's
// policy after it, and idle briefly when nothing moved. Termination
// comes from the master's periodic check (paper §5.3: async workers
// have no global view, so the master polls stats and decides).
type freeRun struct{}

func (freeRun) setup(*worker) {}

func (freeRun) beginPass(w *worker) bool { return w.drainInbox() }

func (freeRun) endPass(w *worker, progressed bool) bool {
	// A pass boundary is the async family's snapshot safe point: join a
	// pending marker episode (combining aggregates) or write a local
	// stale snapshot (selective aggregates, Theorem 3) — and the
	// membership safe point: join a pending fence (membership.go).
	w.maybeSnapshot()
	w.maybeJoinFence()
	if progressed {
		// Only productive passes count as effective iterations (the
		// ε gating and the system-level cap both key off them).
		w.passes++
		// Yield between passes so the master's termination check (and
		// the comm goroutines) are never starved by spinning compute.
		stdruntime.Gosched()
	}
	w.maybeStaleSnapshot(int(w.passes))
	w.timedFlush()
	if progressed {
		w.pol.sched.rearm()
		return true
	}
	if w.pol.sched.release() {
		// Nothing urgent left: release the low-priority cache (§5.4 —
		// less important deltas are used when the worker would idle).
		return true
	}
	w.flushAll()
	w.idleWait()
	return true
}

// markerResend is how long a worker blocks on its inbox before
// retransmitting its own EndPhase marker. Markers ride the data lane and
// can be lost to faults; because the receiver keeps the max of announced
// rounds, a retransmission is always safe.
const markerResend = 3 * time.Millisecond

// broadcastEndPhase fences this superstep's data with round-stamped
// markers (data lane, so per-pair ordering guarantees the data lands
// before the marker).
func (w *worker) broadcastEndPhase(round int) {
	w.eachPeer(func(j int) {
		w.enqueue(j, transport.Message{Kind: transport.EndPhase, Round: round})
	})
}

// awaitPeerRounds blocks until every peer has announced completion of at
// least the given round (data sent before a marker is already applied by
// then, thanks to per-pair ordering). If the wait stalls — a marker was
// lost — the worker retransmits its own marker so a peer blocked on THIS
// worker's lost marker unblocks, announces its round, and unblocks us.
func (w *worker) awaitPeerRounds(round int) {
	for w.minPeerSteps() < round && !w.stopped && !w.sendDead.Load() {
		select {
		case m, ok := <-w.conn.Inbox():
			if !ok {
				w.stopped = true
				return
			}
			w.handle(m)
		case <-time.After(markerResend):
			w.met.markerResends.Inc()
			w.broadcastEndPhase(round)
		}
	}
}

// awaitVerdict blocks for the master's Continue/Stop and reports whether
// to run another superstep. A stalled wait retransmits this worker's
// marker: the worker whose marker was dropped is still stuck in
// awaitPeerRounds and cannot reach the master, so the already-idle
// workers are the ones that must heal the barrier.
func (w *worker) awaitVerdict() bool {
	for !w.verdictSet {
		select {
		case m, ok := <-w.conn.Inbox():
			if !ok {
				w.stopped = true
				return false
			}
			w.handle(m)
		case <-time.After(markerResend):
			if w.sendDead.Load() {
				return false
			}
			if w.rounds > 0 {
				w.met.markerResends.Inc()
				w.broadcastEndPhase(w.rounds)
			}
		}
	}
	w.verdictSet = false
	return w.verdict == transport.Continue && !w.stopped
}
