package runtime

import (
	stdruntime "runtime"

	"powerlog/internal/transport"
)

// BarrierPolicy implementations (§5.2): the synchronisation protocol
// bracketing each pass of the unified compute loop.

// bspBarrier runs bulk-synchronous supersteps: flush everything,
// exchange EndPhase markers, report to the master, and wait for its
// Continue/Stop verdict. With naive=true each superstep recomputes the
// full result from the previous one (Equation 2); otherwise it is MRA
// semi-naive evaluation (Equation 4) under a barrier.
type bspBarrier struct {
	naive bool
}

func (b *bspBarrier) setup(w *worker) {
	if b.naive {
		// The table being built this round; incoming Data always lands
		// in the freshest next (created *before* reporting PhaseDone so
		// that faster peers' next-round data cannot be stranded).
		w.next = w.newTable()
		w.apply = w.next
	}
}

func (b *bspBarrier) beginPass(w *worker) bool {
	w.rounds++
	return false
}

func (b *bspBarrier) endPass(w *worker, _ bool) bool {
	w.flushAll()
	for j := 0; j < w.nw; j++ {
		if j != w.id {
			w.enqueue(j, transport.Message{Kind: transport.EndPhase})
		}
	}
	w.awaitEndPhases()
	if w.stopped {
		return false
	}
	var stats transport.Stats
	if b.naive {
		diff, changed := w.naiveFinish()
		stats.AccDelta = diff
		stats.Dirty = changed
		w.next = w.newTable()
		w.apply = w.next
	} else {
		stats.AccDelta = w.accDelta
		w.accDelta = 0
		stats.Dirty = w.table.HasDirty()
		if w.cfg.SnapshotDir != "" && w.cfg.SnapshotEvery > 0 && w.rounds%w.cfg.SnapshotEvery == 0 {
			_ = w.snapshot() // fault tolerance is best-effort; the run itself must not fail
		}
	}
	stats.Sent, stats.Recv = w.sent, w.recv
	w.enqueue(transport.MasterID(w.nw), transport.Message{Kind: transport.PhaseDone, Stats: stats})
	return w.awaitVerdict()
}

// freeRun is the barrier-free policy shared by MRAAsync, MRASyncAsync,
// and MRAAAP: drain the inbox before each pass, flush per the mode's
// policy after it, and idle briefly when nothing moved. Termination
// comes from the master's periodic check (paper §5.3: async workers
// have no global view, so the master polls stats and decides).
type freeRun struct{}

func (freeRun) setup(*worker) {}

func (freeRun) beginPass(w *worker) bool { return w.drainInbox() }

func (freeRun) endPass(w *worker, progressed bool) bool {
	if progressed {
		// Only productive passes count as effective iterations (the
		// ε gating and the system-level cap both key off them).
		w.passes++
		// Yield between passes so the master's termination check (and
		// the comm goroutines) are never starved by spinning compute.
		stdruntime.Gosched()
	}
	w.timedFlush()
	if progressed {
		w.pol.sched.rearm()
		return true
	}
	if w.pol.sched.release() {
		// Nothing urgent left: release the low-priority cache (§5.4 —
		// less important deltas are used when the worker would idle).
		return true
	}
	w.flushAll()
	w.idleWait()
	return true
}

// awaitEndPhases blocks until EndPhase markers from all other workers
// arrive (data sent before a marker is already applied by then, thanks
// to per-pair ordering).
func (w *worker) awaitEndPhases() {
	need := w.nw - 1
	for w.endPhases < need && !w.stopped {
		m, ok := <-w.conn.Inbox()
		if !ok {
			w.stopped = true
			return
		}
		w.handle(m)
	}
	w.endPhases -= need
}

// awaitVerdict blocks for the master's Continue/Stop and reports whether
// to run another superstep.
func (w *worker) awaitVerdict() bool {
	for !w.verdictSet {
		m, ok := <-w.conn.Inbox()
		if !ok {
			w.stopped = true
			return false
		}
		w.handle(m)
	}
	w.verdictSet = false
	return w.verdict == transport.Continue && !w.stopped
}
