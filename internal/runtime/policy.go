package runtime

import (
	"time"

	"powerlog/internal/agg"
	"powerlog/internal/compiler"
	"powerlog/internal/metrics"
)

// This file defines the runtime's policy layers. The paper's central
// engineering claim (§5.2–5.3) is a *unified* sync-async engine where the
// synchronous and asynchronous extremes are just points on the
// message-buffer dial. The worker therefore runs ONE compute loop
// (worker.computeLoop) and delegates every mode-specific decision to
// three narrow interfaces:
//
//   - FlushPolicy  (§5.3): when does a per-destination buffer go on the
//     wire? Implementations: barrier (flush only at superstep end),
//     eager small batches (Myria-style async), fixed-β with an AAP
//     delay switch (§6.5), and the paper's adaptive-β rule.
//   - Scheduler    (§5.4): in what order is a pass's dirty set drained,
//     and which deltas are held back as low-priority? Implementations:
//     FIFO, delta-stepping-style ordered scan, priority holding.
//   - BarrierPolicy (§5.2): what synchronisation brackets a compute
//     pass? Implementations: the BSP EndPhase/verdict protocol, free
//     running (no barrier, master polls for termination), and the SSP
//     staleness gate (ssp.go).
//
// A mode is just a registered (FlushPolicy, Scheduler, BarrierPolicy,
// compute pass) quadruple; adding a consistency model is a one-file
// addition (see ssp.go for the proof).

// window is the per-worker traffic window ΔT that drives flush-policy
// adaptation: per-destination buffered-update counts |B(i,j)| for the
// β rule, and gross in/out message volume for the AAP mode switch. The
// worker owns the counters; policies read and reset them in onTick.
type window struct {
	start  time.Time
	counts []int64 // |B(i,j)| accumulated this window, per destination
	in     int64   // KVs received this window (AAP)
	out    int64   // KVs sent this window (AAP)
}

// FlushPolicy decides when per-destination buffers are sent (§5.3). It
// replaces the former mode switches in emitAsync/timedFlush.
type FlushPolicy interface {
	// onEmit reports whether destination dst's buffer — bufLen entries
	// after folding in a delta of value v — should flush now. The
	// BatchMax hard cap is enforced by the worker, not the policy.
	onEmit(dst, bufLen int, v float64) bool
	// onTick runs the policy's timer work on the τ interval: window
	// adaptation (the β(i,j) update rule, the AAP delay switch). The
	// shared "flush buffers older than τ" sweep lives in the worker.
	onTick(now time.Time, win *window)
}

// Scheduler owns a pass's drain order and the §5.4 low-priority holding
// decision. It replaces the former inline ordered-scan and
// priority-threshold branches in the compute loops.
type Scheduler interface {
	// arrange orders the drained batch in place (FIFO = no-op).
	arrange(batch []drained)
	// refreshes reports whether mid-pass deltas should be re-folded into
	// a drained entry before processing (the delta-stepping saving).
	refreshes() bool
	// hold reports whether a delta of value v should wait locally (§5.4:
	// unimportant deltas accumulate until the worker would idle). The
	// caller refolds the delta into the intermediate when hold is true.
	hold(v float64) bool
	// release ends a holding phase because the worker has no other work;
	// it reports whether any deltas were actually held (i.e. whether a
	// new pass may find released work).
	release() bool
	// rearm re-enables holding after the worker made progress.
	rearm()
	// holding reports whether held deltas are pending (keeps the idle
	// detector honest: held work is still work).
	holding() bool
}

// BarrierPolicy brackets the unified compute loop with the mode's
// synchronisation protocol.
type BarrierPolicy interface {
	// setup runs once before the first pass.
	setup(w *worker)
	// beginPass runs before a compute pass; it reports whether it made
	// progress (e.g. by applying queued messages).
	beginPass(w *worker) bool
	// endPass runs after a compute pass; progressed aggregates
	// beginPass's and the pass's own progress. Returning false stops
	// the worker.
	endPass(w *worker, progressed bool) bool
}

// policySet binds one evaluation mode's strategies. pass is the compute
// body (scanPass for MRA modes, naivePass for naive re-evaluation).
type policySet struct {
	flush   FlushPolicy
	sched   Scheduler
	barrier BarrierPolicy
	pass    func(*worker) int
}

// policyFactory builds a mode's policySet for one worker. reg is the
// worker's metrics registry; policies register their per-decision
// counters into it (DESIGN.md §8) and the worker surfaces a snapshot
// through Result.Workers.
type policyFactory func(cfg Config, plan *compiler.Plan, self int, reg *metrics.Registry) policySet

var (
	modeFactories = map[Mode]policyFactory{}
	// modeBarriered records which modes run the master's BSP
	// PhaseDone/verdict protocol; all others use the polling master.
	modeBarriered = map[Mode]bool{}
)

// registerMode installs a mode's policy factory. barriered selects the
// master-side protocol (BSP verdicts vs. async polling).
func registerMode(m Mode, barriered bool, f policyFactory) {
	modeFactories[m] = f
	modeBarriered[m] = barriered
}

// modeRegistered reports whether a mode has a policy factory (Run
// rejects unknown modes up front).
func modeRegistered(m Mode) bool { _, ok := modeFactories[m]; return ok }

// policiesFor builds the worker's policy set. The caller must have
// validated the mode with modeRegistered.
func policiesFor(cfg Config, plan *compiler.Plan, self int, reg *metrics.Registry) policySet {
	return modeFactories[cfg.Mode](cfg, plan, self, reg)
}

func init() {
	registerMode(NaiveSync, true, newNaiveSyncPolicies)
	registerMode(MRASync, true, newMRASyncPolicies)
	registerMode(MRAAsync, false, newMRAAsyncPolicies)
	registerMode(MRASyncAsync, false, newUnifiedPolicies)
	registerMode(MRAAAP, false, newAAPPolicies)
}

// newNaiveSyncPolicies: SociaLite-style naive evaluation — re-derive the
// full result each superstep under BSP barriers, flushing only at
// superstep end.
func newNaiveSyncPolicies(cfg Config, plan *compiler.Plan, self int, reg *metrics.Registry) policySet {
	return policySet{
		flush:   barrierFlush{},
		sched:   baseScheduler(cfg, plan),
		barrier: &bspBarrier{naive: true},
		pass:    (*worker).naivePass,
	}
}

// newMRASyncPolicies: BigDatalog-style semi-naive evaluation under BSP
// barriers.
func newMRASyncPolicies(cfg Config, plan *compiler.Plan, self int, reg *metrics.Registry) policySet {
	return policySet{
		flush:   barrierFlush{},
		sched:   baseScheduler(cfg, plan),
		barrier: &bspBarrier{},
		pass:    (*worker).scanPass,
	}
}

// newMRAAsyncPolicies: Myria-style maximum asynchrony — eager small
// batches, no barrier.
func newMRAAsyncPolicies(cfg Config, plan *compiler.Plan, self int, reg *metrics.Registry) policySet {
	return policySet{
		flush:   eagerFlush{urgent: cfg.PriorityThreshold},
		sched:   withPriorityHold(baseScheduler(cfg, plan), cfg, plan, reg),
		barrier: freeRun{},
		pass:    (*worker).scanPass,
	}
}

// newUnifiedPolicies: the paper's unified sync-async engine. Selective
// aggregates stay on the eager end of the dial (a stale bound must be
// corrected later, so freshness beats batching); combining aggregates
// run the adaptive-β buffer rule of §5.3.
func newUnifiedPolicies(cfg Config, plan *compiler.Plan, self int, reg *metrics.Registry) policySet {
	var flush FlushPolicy
	if plan.Op.Selective() {
		flush = eagerFlush{urgent: cfg.PriorityThreshold}
	} else {
		flush = newAdaptiveBetaFlush(cfg, self, reg)
	}
	return policySet{
		flush:   flush,
		sched:   withPriorityHold(baseScheduler(cfg, plan), cfg, plan, reg),
		barrier: freeRun{},
		pass:    (*worker).scanPass,
	}
}

// newAAPPolicies: Grape+-style adaptive asynchronous parallel (§6.5) —
// fixed β with a per-worker delay switch driven by in-message volume.
func newAAPPolicies(cfg Config, plan *compiler.Plan, self int, reg *metrics.Registry) policySet {
	return policySet{
		flush:   &fixedBetaFlush{beta: cfg.BetaInit, tau: cfg.Tau, urgent: cfg.PriorityThreshold},
		sched:   withPriorityHold(baseScheduler(cfg, plan), cfg, plan, reg),
		barrier: freeRun{},
		pass:    (*worker).scanPass,
	}
}

// baseScheduler picks the drain order: the delta-stepping-style ordered
// scan applies only to selective aggregates with OrderedScan on.
func baseScheduler(cfg Config, plan *compiler.Plan) Scheduler {
	if cfg.OrderedScan && plan.Op.Selective() {
		return orderedSched{asc: plan.Op.Kind() == agg.Min}
	}
	return fifoSched{}
}

// withPriorityHold layers §5.4's low-priority holding over a drain
// order. It applies only to combining aggregates with a positive
// threshold (selective aggregates must forward improvements promptly,
// and applyPriorityDefault zeroes their threshold anyway).
func withPriorityHold(inner Scheduler, cfg Config, plan *compiler.Plan, reg *metrics.Registry) Scheduler {
	if cfg.PriorityThreshold > 0 && !plan.Op.Selective() {
		return &priorityHold{
			inner:     inner,
			threshold: cfg.PriorityThreshold,
			holds:     reg.Counter("sched.hold"),
			releases:  reg.Counter("sched.release"),
		}
	}
	return inner
}
