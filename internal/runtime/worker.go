package runtime

import (
	"time"

	"powerlog/internal/agg"
	"powerlog/internal/ckpt"
	"powerlog/internal/compiler"
	"powerlog/internal/graph"
	"powerlog/internal/monotable"
	"powerlog/internal/transport"
)

// worker owns one MonoTable shard and runs the compute loop of its mode.
// It has a dedicated communication goroutine (paper §5.3: "a dedicated
// thread for the communication among workers") fed through w.out.
type worker struct {
	id   int
	nw   int
	cfg  Config
	plan *compiler.Plan
	conn transport.Conn

	table monotable.Table // the shard (MRA modes: the only table)
	next  monotable.Table // naive mode: the table being built this round
	apply monotable.Table // where incoming Data folds land (next in naive mode)

	ownBase []compiler.KV            // naive mode: owned base tuples re-derived per round
	naive   *compiler.NaiveEvaluator // naive mode: per-worker relational join

	out      chan outMsg
	outCtrl  chan outMsg // control lane: skips ahead of bulk data on the NIC
	commDone chan struct{}

	// Per-destination adaptive buffers (paper §5.3). Each buffer folds
	// updates per key with the program's aggregate before sending — the
	// sender-side combining that makes a buffered update "accumulate"
	// rather than queue (Figure 7's Intermediate, applied pre-wire).
	bufs      []*outBuf
	beta      []float64
	lastFlush []time.Time
	winStart  time.Time
	winCount  []int64 // |B(i,j)| accumulated in the current window ΔT

	// AAP state: recent in-message volume drives the mode switch.
	inWindow   int64
	outWindow  int64
	aapDelayed bool

	sent, recv int64
	flushes    int64
	accDelta   float64 // Σ|acc change| since last stats reply
	passes     int64   // async compute-loop iterations
	rounds     int

	// low-priority holding (§5.4)
	lowPrioHeld  bool
	thresholdOff bool

	// control-state set by handle()
	stopped    bool
	endPhases  int
	verdict    transport.Kind // Continue or Stop, valid when verdictSet
	verdictSet bool
}

type outMsg struct {
	to int
	m  transport.Message
}

func newWorker(id int, cfg Config, plan *compiler.Plan, conn transport.Conn) *worker {
	w := &worker{
		id:   id,
		nw:   cfg.Workers,
		cfg:  cfg,
		plan: plan,
		conn: conn,

		out:      make(chan outMsg, 256),
		outCtrl:  make(chan outMsg, 64),
		commDone: make(chan struct{}),

		bufs:      make([]*outBuf, cfg.Workers),
		beta:      make([]float64, cfg.Workers),
		lastFlush: make([]time.Time, cfg.Workers),
		winCount:  make([]int64, cfg.Workers),
		winStart:  time.Now(),
	}
	w.table = w.newTable()
	w.apply = w.table
	now := time.Now()
	for j := range w.beta {
		w.bufs[j] = newOutBuf(plan.Op)
		w.beta[j] = float64(cfg.BetaInit)
		w.lastFlush[j] = now
	}
	go w.commLoop()
	return w
}

func (w *worker) newTable() monotable.Table {
	if w.plan.PairKeys {
		return monotable.NewSparse(w.plan.Op)
	}
	return monotable.NewDense(w.plan.Op, w.plan.N, int64(w.nw), int64(w.id))
}

func (w *worker) owner(key int64) int { return graph.Partition(key, w.nw) }

func (w *worker) commLoop() {
	defer close(w.commDone)
	emu := w.cfg.Network
	try, canTry := w.conn.(transport.TrySender)
	sendCtl := func(om outMsg) {
		if emu.Enabled() {
			time.Sleep(emu.cost(len(om.m.KVs)))
		}
		_ = w.conn.Send(om.to, om.m)
	}
	send := func(om outMsg) {
		if emu.Enabled() {
			// The communication thread is the NIC: messages serialise
			// through it and each pays latency + volume/bandwidth.
			time.Sleep(emu.cost(len(om.m.KVs)))
		}
		if !canTry {
			_ = w.conn.Send(om.to, om.m)
			return
		}
		// Avoid head-of-line blocking: while the destination is
		// back-pressured, keep the control lane moving.
		for {
			ok, err := try.TrySend(om.to, om.m)
			if ok || err != nil {
				return
			}
			select {
			case ctl, chOk := <-w.outCtrl:
				if !chOk {
					w.outCtrl = nil
					_ = w.conn.Send(om.to, om.m)
					return
				}
				sendCtl(ctl)
			default:
				time.Sleep(20 * time.Microsecond)
			}
		}
	}
	for {
		// Control traffic (stats replies, barrier markers) rides a
		// priority lane so bulk data cannot starve the termination check.
		select {
		case om, ok := <-w.outCtrl:
			if !ok {
				w.outCtrl = nil
				continue
			}
			send(om)
			continue
		default:
		}
		select {
		case om, ok := <-w.outCtrl:
			if !ok {
				w.outCtrl = nil
				continue
			}
			send(om)
		case om, ok := <-w.out:
			if !ok {
				// Drain any remaining control messages, then exit.
				for {
					select {
					case om, ok := <-w.outCtrl:
						if !ok {
							return
						}
						send(om)
					default:
						return
					}
				}
			}
			send(om)
		}
	}
}

// enqueue hands a message to the comm goroutine, draining the inbox while
// the queue is full so workers can never deadlock on mutual back-pressure.
// Master-bound reports take the control lane; EndPhase markers must NOT —
// they fence the data sent before them, so they ride the data lane to
// preserve per-destination ordering.
func (w *worker) enqueue(to int, m transport.Message) {
	lane := w.out
	if m.Kind == transport.StatsReply || m.Kind == transport.PhaseDone {
		lane = w.outCtrl
	}
	for {
		select {
		case lane <- outMsg{to, m}:
			return
		case in, ok := <-w.conn.Inbox():
			if !ok {
				return
			}
			w.handle(in)
		}
	}
}

// handle processes one incoming message. It is called from every place
// the worker blocks, so it must only mutate worker-local state.
func (w *worker) handle(m transport.Message) {
	switch m.Kind {
	case transport.Data:
		for _, kv := range m.KVs {
			w.apply.FoldDelta(kv.K, kv.V)
		}
		w.recv += int64(len(m.KVs))
		w.inWindow += int64(len(m.KVs))
	case transport.EndPhase:
		w.endPhases++
	case transport.Continue:
		w.verdict, w.verdictSet = transport.Continue, true
	case transport.Stop:
		w.stopped = true
		w.verdict, w.verdictSet = transport.Stop, true
	case transport.StatsRequest:
		w.replyStats(m.Round)
	}
}

func (w *worker) replyStats(round int) {
	idle := !w.table.HasDirty() && !w.lowPrioHeld && w.buffersEmpty()
	// The paper's termination thread evaluates the aggregation of the
	// Accumulation column; the master diffs consecutive global values.
	accSum := 0.0
	w.table.Range(func(_ int64, v float64) bool {
		accSum += v
		return true
	})
	st := transport.Stats{
		Sent:     w.sent,
		Recv:     w.recv,
		AccDelta: w.accDelta,
		AccSum:   accSum,
		Passes:   w.passes,
		Idle:     idle,
		Dirty:    w.table.HasDirty() || w.lowPrioHeld || !w.buffersEmpty(),
	}
	w.accDelta = 0
	w.enqueue(transport.MasterID(w.nw), transport.Message{
		Kind: transport.StatsReply, Round: round, Stats: st,
	})
}

func (w *worker) buffersEmpty() bool {
	for _, b := range w.bufs {
		if b.len() > 0 {
			return false
		}
	}
	return true
}

// seed folds this worker's share of ΔX¹ into its shard.
func (w *worker) seed(init []compiler.KV) {
	for _, kv := range init {
		if w.owner(kv.K) == w.id {
			w.table.FoldDelta(kv.K, kv.V)
		}
	}
}

// restore loads this worker's share of a checkpoint: accumulations are
// installed directly, pending intermediates re-folded so the run resumes
// exactly where the snapshot's barrier left it.
func (w *worker) restore(rows []ckpt.Row) {
	id := w.plan.Op.Identity()
	for _, r := range rows {
		if w.owner(r.Key) != w.id {
			continue
		}
		if r.Acc != id {
			w.table.SetAcc(r.Key, r.Acc)
		}
		if r.Inter != id {
			w.table.FoldDelta(r.Key, r.Inter)
		}
	}
}

// snapshot writes this worker's shard state (called at a BSP barrier).
func (w *worker) snapshot() error {
	var rows []ckpt.Row
	w.table.RangeRows(func(k int64, acc, inter float64) bool {
		rows = append(rows, ckpt.Row{Key: k, Acc: acc, Inter: inter})
		return true
	})
	return ckpt.SaveShard(w.cfg.SnapshotDir, w.id, rows)
}

// flush sends buffer j if it is non-empty.
func (w *worker) flush(j int) {
	kvs := w.bufs[j].take()
	if len(kvs) == 0 {
		return
	}
	w.sent += int64(len(kvs))
	w.outWindow += int64(len(kvs))
	w.flushes++
	w.lastFlush[j] = time.Now()
	w.enqueue(j, transport.Message{Kind: transport.Data, KVs: kvs})
}

func (w *worker) flushAll() {
	for j := range w.bufs {
		w.flush(j)
	}
}

// drainInbox applies all currently queued messages without blocking.
func (w *worker) drainInbox() bool {
	progressed := false
	for {
		select {
		case m, ok := <-w.conn.Inbox():
			if !ok {
				w.stopped = true
				return progressed
			}
			w.handle(m)
			progressed = true
		default:
			return progressed
		}
	}
}

// outBuf is a per-destination buffer that folds same-key updates with
// the program's aggregate, in arrival order of first touch.
type outBuf struct {
	op    *agg.Op
	vals  map[int64]float64
	order []int64
}

func newOutBuf(op *agg.Op) *outBuf {
	return &outBuf{op: op, vals: map[int64]float64{}}
}

// add folds v into the buffered update for key.
func (b *outBuf) add(key int64, v float64) {
	if cur, ok := b.vals[key]; ok {
		b.vals[key] = b.op.Fold(cur, v)
		return
	}
	b.vals[key] = v
	b.order = append(b.order, key)
}

func (b *outBuf) len() int { return len(b.order) }

// take drains the buffer into a KV slice (first-touch order).
func (b *outBuf) take() []transport.KV {
	if len(b.order) == 0 {
		return nil
	}
	kvs := make([]transport.KV, len(b.order))
	for i, k := range b.order {
		kvs[i] = transport.KV{K: k, V: b.vals[k]}
	}
	b.vals = map[int64]float64{}
	b.order = b.order[:0]
	return kvs
}

// run executes the worker until the master stops it.
func (w *worker) run() {
	defer func() {
		close(w.out)
		close(w.outCtrl)
		<-w.commDone
	}()
	switch w.cfg.Mode {
	case NaiveSync:
		w.runBSP(true)
	case MRASync:
		w.runBSP(false)
	default:
		w.runAsync()
	}
}
