package runtime

import (
	stdruntime "runtime"
	"sync/atomic"
	"time"

	"powerlog/internal/agg"
	"powerlog/internal/ckpt"
	"powerlog/internal/compiler"
	"powerlog/internal/monotable"
	"powerlog/internal/transport"
)

// worker owns one MonoTable shard and runs the unified compute loop,
// parameterised by its mode's policy set (policy.go): a FlushPolicy for
// message buffering, a Scheduler for drain order and priority holding,
// and a BarrierPolicy for synchronisation. It has a dedicated
// communication goroutine (paper §5.3: "a dedicated thread for the
// communication among workers") fed through w.out.
type worker struct {
	id   int
	nw   int
	cfg  Config
	plan *compiler.Plan
	conn transport.Conn

	pol policySet // the mode's flush/scheduling/barrier strategies

	table monotable.Table // the shard (MRA modes: the only table)
	next  monotable.Table // naive mode: the table being built this round
	apply monotable.Table // where incoming Data folds land (next in naive mode)

	ownBase []compiler.KV            // naive mode: owned base tuples re-derived per round
	naive   *compiler.NaiveEvaluator // naive mode: per-worker relational join
	seen    *seenSet                 // naive mode: reused key-membership tracker

	out      chan outMsg
	outCtrl  chan outMsg // control lane: skips ahead of bulk data on the NIC
	commDone chan struct{}

	// Per-destination adaptive buffers (paper §5.3). Each buffer folds
	// updates per key with the program's aggregate before sending — the
	// sender-side combining that makes a buffered update "accumulate"
	// rather than queue (Figure 7's Intermediate, applied pre-wire).
	bufs      []*outBuf
	lastFlush []time.Time
	win       window // traffic window ΔT driving FlushPolicy adaptation

	met workerMetrics // per-policy observability (observe.go, DESIGN.md §8)

	// Per-link Data sequencing for dup-tolerant termination: dataSeq[j]
	// is the last sequence number stamped (in Message.Round) on a batch
	// to destination j; dataSeen[s] dedups deliveries from sender s. A
	// redelivered batch's KVs still fold (duplicates are only injected
	// for selective programs, where re-folding is idempotent by Theorem
	// 3), but it is excluded from the recv watermark — otherwise Σrecv
	// could overtake Σsent and falsify the master's counting-quiescence
	// and ε-confirm tests. The window is exact under reordering, not just
	// FIFO redelivery: an out-of-order first delivery must still count.
	dataSeq  []int64
	dataSeen []dedupWindow

	sent, recv int64
	flushes    int64
	accDelta   float64 // Σ|acc change| since last stats reply
	accSum     float64 // running Σacc over the shard (identity rows count 0)
	accFolds   int64   // FoldAcc count since the last exact Σacc resync
	passes     int64   // async compute-loop iterations
	rounds     int

	// scan is the per-core subshard pool for intra-worker parallel
	// passes (subshard.go); nil when CoresPerWorker is 1 or the mode is
	// naive, in which case every pass takes the serial path.
	scan *scanPool

	// Reused drain-pass storage: a steady-state pass allocates nothing.
	drainKeys []int64
	drainBuf  []drained
	// scratch is this goroutine's propagation-expression buffer
	// (plan.PropagateInto); scan cores hold their own (coreState).
	scratch []float64

	// control-state set by handle(). peerSteps is the EndPhase vector
	// clock: peerSteps[j] is the highest completed-superstep count worker
	// j has announced. Markers carry their sender's count and the
	// receiver keeps the max, so a duplicated or retransmitted marker is
	// idempotent and a dropped one is healed by any later (or resent)
	// marker from the same peer.
	stopped    bool
	peerSteps  []int
	verdict    transport.Kind // Continue or Stop, valid when verdictSet
	verdictSet bool

	// Snapshot-episode state (episode.go): the latest SnapRequest epoch,
	// the latest episode this worker completed, per-peer SnapMark epochs,
	// and the latest Resume epoch.
	snapReqEpoch  int
	snapDoneEpoch int
	snapMarks     []int
	resumeEpoch   int
	staleEpoch    int // last local stale-snapshot epoch (episode.go)

	// Session-epoch state (session.go). curEpoch is the fixpoint this
	// worker is computing (1 = the initial fixpoint); parkEpoch is the
	// highest Park the master has issued; parkMarks is the per-peer
	// ParkMark vector (the data-lane fence mirroring snapMarks); epochGo
	// is the highest EpochStart seen; mutEpoch stamps snapshots with the
	// mutation-log position they incorporate (the session advances it
	// while the worker is parked).
	curEpoch  int
	parkEpoch int
	parkMarks []int
	epochGo   int
	mutEpoch  int

	// sendErr records the first unrecoverable transport failure seen by
	// the comm goroutine; sendDead flags it for the compute loop, which
	// stops instead of computing into a dead network. Run/RunWorker
	// surface the error after the worker exits (reading sendErr is safe
	// then: commDone closes after the final write).
	sendErr  error
	sendDead atomic.Bool

	stragglerWait time.Duration // SSP: total time blocked on stale peers

	// Membership state (membership.go, DESIGN.md §11). master is this
	// fleet's master endpoint (the capacity network's last slot — NOT
	// w.nw on elastic fleets). route maps keys to owners: static modulo
	// for fixed fleets, a consistent-hash ring under Config.Elastic.
	// down marks crash-orphaned slots (flushes suppressed, peer-minimum
	// scans skip them) and leaving marks slots retiring at the next
	// fence. The join* fields mirror the snapshot-episode state for
	// membership fences: the latest requested fence epoch with its
	// rollback directive and admitted slot, the per-peer cut-marker
	// vectors (joinMarks fences pre-fence data, joinMarks2 fences the
	// migration Handoffs — see runJoinFence), the last completed fence,
	// and the latest Release.
	master       int
	route        *shardRoute
	down         []bool
	leaving      []bool
	joinReqEpoch int
	joinRollback int64
	joinAdmit    int
	joinDone     int
	joinMarks    []int
	joinMarks2   []int
	releaseEpoch int
	joinGate     bool // spawned mid-run: gate the compute loop on admission
	crashed      bool // fault injection: this worker died silently
	reborn       bool // replacement spawned by the session (immune to crashw=)
	retired      bool // scale-in: this worker left at a fence
}

type outMsg struct {
	to int
	m  transport.Message
}

// backoff is an escalating wait for back-pressure loops: a few pure
// spins (the common case resolves within microseconds), then scheduler
// yields, then sleeps that grow to a 200µs ceiling — so a stalled
// destination costs neither latency in the common case nor a burned
// core in the worst one.
type backoff struct{ n int }

func (b *backoff) wait() {
	b.n++
	switch {
	case b.n <= 4:
		// Spin: the inbox often drains within a few hundred ns.
	case b.n <= 16:
		stdruntime.Gosched()
	default:
		d := time.Duration(b.n-16) * 10 * time.Microsecond
		if d > 200*time.Microsecond {
			d = 200 * time.Microsecond
		}
		time.Sleep(d)
	}
}

func (b *backoff) reset() { b.n = 0 }

func newWorker(id int, cfg Config, plan *compiler.Plan, conn transport.Conn) *worker {
	// Per-peer state is sized to the fleet's capacity, not its initial
	// size, so scale-out never needs to regrow link state mid-run. For
	// static fleets fleetCap() == Workers and nothing changes.
	fleet := cfg.fleetCap()
	w := &worker{
		id:   id,
		nw:   cfg.Workers,
		cfg:  cfg,
		plan: plan,
		conn: conn,

		out:      make(chan outMsg, 256),
		outCtrl:  make(chan outMsg, 64),
		commDone: make(chan struct{}),

		bufs:      make([]*outBuf, fleet),
		lastFlush: make([]time.Time, fleet),
		peerSteps: make([]int, fleet),
		snapMarks: make([]int, fleet),
		parkMarks: make([]int, fleet),
		curEpoch:  1,
		dataSeq:   make([]int64, fleet),
		dataSeen:  make([]dedupWindow, fleet),
		win: window{
			start:  time.Now(),
			counts: make([]int64, fleet),
		},

		master:    transport.MasterID(fleet),
		route:     newShardRoute(cfg),
		down:      make([]bool, fleet),
		leaving:   make([]bool, fleet),
		joinMarks:  make([]int, fleet),
		joinMarks2: make([]int, fleet),
		joinAdmit: -1,
	}
	w.met = newWorkerMetrics(fleet)
	w.pol = policiesFor(cfg, plan, id, w.met.reg)
	if cfg.Fault != nil {
		// Straggler injection decorates the mode's barrier from outside
		// (inject.go): the policy seams absorb the fault layer with no
		// new switches in the hot path.
		w.pol.barrier = &stallBarrier{inner: w.pol.barrier, inj: cfg.Fault}
	}
	w.table = w.newTable()
	w.apply = w.table
	w.scratch = plan.NewScratch()
	now := time.Now()
	for j := range w.bufs {
		w.bufs[j] = newOutBuf(plan.Op)
		w.lastFlush[j] = now
	}
	if cfg.CoresPerWorker > 1 && cfg.Mode.MRA() {
		w.scan = newScanPool(w, cfg.CoresPerWorker, cfg.CoresMinKeys)
	}
	go w.commLoop()
	return w
}

func (w *worker) newTable() monotable.Table {
	// Dense tables stride keys by the static modulo partition; an elastic
	// fleet's consistent-hash ownership has no such structure, so it
	// always shards into Sparse tables.
	if w.plan.PairKeys || w.cfg.Elastic {
		return monotable.NewSparse(w.plan.Op)
	}
	return monotable.NewDense(w.plan.Op, w.plan.N, int64(w.nw), int64(w.id))
}

func (w *worker) owner(key int64) int { return w.route.owner(key) }

// sendAttempts bounds the comm goroutine's blocking-send retries. The
// transport has its own healing underneath (TCP redials with backoff and
// a circuit breaker; injected faults clear as the event counter
// advances), so a message that still fails after this many attempts is
// on a genuinely dead link.
const sendAttempts = 6

func (w *worker) commLoop() {
	defer close(w.commDone)
	emu := w.cfg.Network
	try, canTry := w.conn.(transport.TrySender)
	// deliver pushes one message through the blocking Send with bounded
	// escalating retry. A persistent failure kills the send path: the
	// error is recorded for Run/RunWorker to surface, and everything
	// queued afterwards is discarded (recycling Data batches) so the
	// compute goroutine can never deadlock against a dead network.
	// bestEffort marks shutdown stragglers — messages still queued after
	// the compute loop closed its lanes. The run's outcome no longer
	// depends on them, so a persistent failure there is discarded without
	// poisoning a run that already finished.
	deliver := func(om outMsg, bestEffort bool) {
		if w.sendDead.Load() {
			if om.m.Kind == transport.Data {
				transport.PutBatch(om.m.KVs)
			}
			return
		}
		var bo backoff
		for attempt := 1; ; attempt++ {
			err := w.conn.Send(om.to, om.m)
			if err == nil {
				return
			}
			// On error the transport did not consume the message
			// (transport.Conn contract), so retrying it is sound.
			if attempt >= sendAttempts {
				if !bestEffort {
					w.sendErr = err
					w.sendDead.Store(true)
				}
				if om.m.Kind == transport.Data {
					transport.PutBatch(om.m.KVs)
				}
				return
			}
			bo.wait()
		}
	}
	sendCtl := func(om outMsg) {
		if emu.Enabled() {
			time.Sleep(emu.cost(len(om.m.KVs)))
		}
		deliver(om, false)
	}
	send := func(om outMsg) {
		if emu.Enabled() {
			// The communication thread is the NIC: messages serialise
			// through it and each pays latency + volume/bandwidth.
			time.Sleep(emu.cost(len(om.m.KVs)))
		}
		if !canTry {
			deliver(om, false)
			return
		}
		// Avoid head-of-line blocking: while the destination is
		// back-pressured, keep the control lane moving. The wait
		// escalates (spin → yield → sleep) so a long-stalled destination
		// doesn't pin this goroutine to a core.
		var bo backoff
		for {
			ok, err := try.TrySend(om.to, om.m)
			if ok {
				return
			}
			if err != nil {
				// A hard TrySend error is not back-pressure; fall back to
				// the blocking path and its retry budget rather than
				// silently dropping the message.
				deliver(om, false)
				return
			}
			select {
			case ctl, chOk := <-w.outCtrl:
				if !chOk {
					// The compute loop has exited; om is a shutdown
					// straggler, delivered best-effort.
					w.outCtrl = nil
					deliver(om, true)
					return
				}
				sendCtl(ctl)
				bo.reset() // control progress means the net is moving
			default:
				bo.wait()
			}
		}
	}
	for {
		// Control traffic (stats replies, barrier markers) rides a
		// priority lane so bulk data cannot starve the termination check.
		select {
		case om, ok := <-w.outCtrl:
			if !ok {
				w.outCtrl = nil
				continue
			}
			send(om)
			continue
		default:
		}
		select {
		case om, ok := <-w.outCtrl:
			if !ok {
				w.outCtrl = nil
				continue
			}
			send(om)
		case om, ok := <-w.out:
			if !ok {
				// Drain any remaining control messages, then exit.
				for {
					select {
					case om, ok := <-w.outCtrl:
						if !ok {
							return
						}
						send(om)
					default:
						return
					}
				}
			}
			send(om)
		}
	}
}

// enqueue hands a message to the comm goroutine, draining the inbox while
// the queue is full so workers can never deadlock on mutual back-pressure.
// Master-bound reports take the control lane; EndPhase markers must NOT —
// they fence the data sent before them, so they ride the data lane to
// preserve per-destination ordering.
func (w *worker) enqueue(to int, m transport.Message) {
	lane := w.out
	if m.Kind == transport.StatsReply || m.Kind == transport.PhaseDone || m.Kind == transport.ParkDone {
		lane = w.outCtrl
	}
	for {
		select {
		case lane <- outMsg{to, m}:
			return
		case in, ok := <-w.conn.Inbox():
			if !ok {
				return
			}
			w.handle(in)
		}
	}
}

// dedupWindow is an exact delivered-once filter over one link's Data
// sequence numbers (stamped from 1 in flush). next is the lowest
// sequence not yet contiguously delivered; pending holds delivered
// sequences at or above next that arrived out of order. On the fault-free
// FIFO path every arrival is exactly next, so the window is a single
// compare-and-increment and pending stays nil — no allocations. Under
// injected duplication or adversarial reordering the map grows only to
// the link's momentary out-of-orderness.
type dedupWindow struct {
	next    int64
	pending map[int64]struct{}
}

// fresh reports whether seq is a first delivery, recording it.
func (d *dedupWindow) fresh(seq int64) bool {
	if d.next == 0 {
		d.next = 1 // sequences are stamped from 1
	}
	if seq < d.next {
		return false
	}
	if _, dup := d.pending[seq]; dup {
		return false
	}
	if seq == d.next {
		d.next++
		for len(d.pending) > 0 {
			if _, ok := d.pending[d.next]; !ok {
				break
			}
			delete(d.pending, d.next)
			d.next++
		}
		return true
	}
	if d.pending == nil {
		d.pending = make(map[int64]struct{})
	}
	d.pending[seq] = struct{}{}
	return true
}

// handle processes one incoming message. It is called from every place
// the worker blocks, so it must only mutate worker-local state.
func (w *worker) handle(m transport.Message) {
	switch m.Kind {
	case transport.Data:
		// Round carries the sender's per-link sequence number (stamped in
		// flush); the dedup window decides whether this is the sequence's
		// first delivery.
		fresh := true
		if m.From >= 0 && m.From < len(w.dataSeen) {
			fresh = w.dataSeen[m.From].fresh(int64(m.Round))
		}
		n := int64(len(m.KVs))
		for _, kv := range m.KVs {
			w.apply.FoldDelta(kv.K, kv.V)
		}
		if fresh {
			w.recv += n
			w.win.in += n
			w.met.recvBatches.Inc()
		} else {
			// Duplicate: folded (idempotent for the selective programs
			// duplicates are injected on) but kept out of the recv
			// watermark so counting quiescence still balances.
			w.met.dupBatches.Inc()
		}
		// The batch is spent; recycle it (see the contract in transport).
		transport.PutBatch(m.KVs)
	case transport.EndPhase:
		// Round is the sender's completed-superstep count; keeping the
		// max makes markers idempotent (duplicates are no-ops) and
		// self-healing (any later marker covers a dropped one).
		if m.From >= 0 && m.From < len(w.peerSteps) && m.Round > w.peerSteps[m.From] {
			w.peerSteps[m.From] = m.Round
		}
	case transport.Continue:
		w.verdict, w.verdictSet = transport.Continue, true
	case transport.Stop:
		w.stopped = true
		w.verdict, w.verdictSet = transport.Stop, true
	case transport.StatsRequest:
		w.replyStats(m.Round)
	case transport.SnapRequest:
		if m.Round > w.snapReqEpoch {
			w.snapReqEpoch = m.Round
		}
	case transport.SnapMark:
		if m.From >= 0 && m.From < len(w.snapMarks) && m.Round > w.snapMarks[m.From] {
			w.snapMarks[m.From] = m.Round
		}
	case transport.Resume:
		if m.Round > w.resumeEpoch {
			w.resumeEpoch = m.Round
		}
	case transport.Park:
		if m.Round > w.parkEpoch {
			w.parkEpoch = m.Round
		}
		// For barriered modes Park doubles as the superstep verdict: the
		// worker sitting in awaitVerdict must unwind without setting
		// stopped, so the run loop reaches the park handshake.
		w.verdict, w.verdictSet = transport.Park, true
	case transport.ParkMark:
		if m.From >= 0 && m.From < len(w.parkMarks) && m.Round > w.parkMarks[m.From] {
			w.parkMarks[m.From] = m.Round
		}
	case transport.EpochStart:
		if m.Round > w.epochGo {
			w.epochGo = m.Round
		}
	case transport.Join:
		// Overloaded by direction (membership.go): from the master it is
		// the fence request — Round the fence epoch, Stats.Sent the
		// rollback directive, Stats.Recv the admitted slot + 1; from a
		// peer it is the cut marker on the data lane. Receivers keep the
		// max, so retransmissions are idempotent.
		if m.From == w.master {
			if m.Round > w.joinReqEpoch {
				w.joinReqEpoch = m.Round
				w.joinRollback = m.Stats.Sent
				w.joinAdmit = int(m.Stats.Recv) - 1
			}
		} else if m.From >= 0 && m.From < len(w.joinMarks) {
			// Stats.Sent distinguishes the fence's two marker rounds: 0 is
			// the pre-fence cut, 1 the post-migration cut (runJoinFence).
			if m.Stats.Sent != 0 {
				if m.Round > w.joinMarks2[m.From] {
					w.joinMarks2[m.From] = m.Round
				}
				// A second-round marker proves the sender finished the
				// first round, and per-pair FIFO means every pre-fence
				// datum it sent has already been folded here — so it
				// satisfies the first-round wait too. This heals a
				// first-round marker lost to a slot reset racing the
				// previous fence's Release (see resetLink).
				if m.Round > w.joinMarks[m.From] {
					w.joinMarks[m.From] = m.Round
				}
			} else if m.Round > w.joinMarks[m.From] {
				w.joinMarks[m.From] = m.Round
			}
		}
	case transport.Orphan:
		// Round names the slot. Stats.Sent != 0 is a graceful retirement
		// (scale-in: the slot keeps running until the fence migrates its
		// shard out); 0 is a crash verdict — suppress flushes toward the
		// slot and skip it in every peer-minimum scan, which unwedges any
		// gate or episode blocked on the dead worker. A worker never
		// marks itself down: if the master misjudged a slow worker, the
		// transport's generation fence kills it at its next send instead.
		if id := m.Round; id >= 0 && id < len(w.down) {
			if m.Stats.Sent != 0 {
				w.leaving[id] = true
			} else if id != w.id {
				w.down[id] = true
			}
		}
	case transport.Handoff:
		w.acceptHandoff(m)
	case transport.Release:
		if m.Round > w.releaseEpoch {
			w.releaseEpoch = m.Round
		}
	case transport.PhaseDone, transport.StatsReply, transport.SnapDone, transport.ParkDone:
		// Worker→master kinds; a worker receiving one (misrouted frame,
		// chaos injection) ignores it rather than corrupting local state.
	}
}

// accResyncFolds is how many FoldAcc signed deltas the running accSum
// absorbs before the next epoch boundary recomputes it exactly. Each
// `accSum += signed` rounds once, and across millions of mixed-sign
// folds the rounding error drifts in one direction (a small delta added
// next to a large accumulated value loses its low bits every time); the
// periodic exact resync bounds the drift the master's ε check can see.
const accResyncFolds = 1 << 20

// resyncAccSum recomputes Σacc exactly from the table (Neumaier
// compensated summation, so the recomputation itself doesn't reintroduce
// rounding skew) and replaces the running sum with it.
func (w *worker) resyncAccSum() {
	var sum, comp float64
	w.table.Range(func(_ int64, acc float64) bool {
		t := sum + acc
		if agg.Abs(sum) >= agg.Abs(acc) {
			comp += (sum - t) + acc
		} else {
			comp += (acc - t) + sum
		}
		sum = t
		return true
	})
	w.accSum = sum + comp
	w.accFolds = 0
}

func (w *worker) replyStats(round int) {
	if w.accFolds >= accResyncFolds {
		// A stats poll is the async family's epoch boundary: fold the
		// exact Σacc back in before the master reads it.
		w.resyncAccSum()
	}
	idle := !w.table.HasDirty() && !w.pol.sched.holding() && w.buffersEmpty()
	// The paper's termination thread evaluates the aggregation of the
	// Accumulation column; the master diffs consecutive global values.
	// accSum is maintained incrementally from FoldAcc's signed deltas,
	// so answering a poll is O(1) instead of an O(n) shard scan (the
	// amortised resync above keeps that honest against FP drift).
	st := transport.Stats{
		Sent:     w.sent,
		Recv:     w.recv,
		AccDelta: w.accDelta,
		AccSum:   w.accSum,
		Passes:   w.passes,
		Idle:     idle,
		Dirty:    w.table.HasDirty() || w.pol.sched.holding() || !w.buffersEmpty(),
	}
	w.accDelta = 0
	w.enqueue(w.master, transport.Message{
		Kind: transport.StatsReply, Round: round, Stats: st,
	})
}

func (w *worker) buffersEmpty() bool {
	for _, b := range w.bufs {
		if b.len() > 0 {
			return false
		}
	}
	return true
}

// seed folds this worker's share of ΔX¹ into its shard.
func (w *worker) seed(init []compiler.KV) {
	for _, kv := range init {
		if w.owner(kv.K) == w.id {
			w.table.FoldDelta(kv.K, kv.V)
		}
	}
}

// restore loads this worker's share of a consistent-cut checkpoint:
// accumulations are installed directly, pending intermediates re-folded
// so the run resumes exactly where the snapshot's cut left it.
func (w *worker) restore(rows []ckpt.Row) {
	id := w.plan.Op.Identity()
	for _, r := range rows {
		if w.owner(r.Key) != w.id {
			continue
		}
		if r.Acc != id {
			w.table.SetAcc(r.Key, r.Acc)
			w.accSum += r.Acc // keep the running Σacc in step with SetAcc
		}
		if r.Inter != id {
			w.table.FoldDelta(r.Key, r.Inter)
		}
	}
}

// restoreStale warm-starts from a stale (uncoordinated) snapshot by
// re-folding the saved rows as ordinary deltas over the normal ΔX¹ seed.
// Sound only for selective aggregates: Theorem 3's replay tolerance
// means extra or re-delivered deltas cannot move a min/max fixpoint, so
// the saved values only shortcut re-derivation, never corrupt it. The
// caller has already seeded ΔX¹ and verified Op.Selective().
func (w *worker) restoreStale(rows []ckpt.Row) {
	id := w.plan.Op.Identity()
	for _, r := range rows {
		if w.owner(r.Key) != w.id {
			continue
		}
		if r.Acc != id {
			w.table.FoldDelta(r.Key, r.Acc)
		}
		if r.Inter != id {
			w.table.FoldDelta(r.Key, r.Inter)
		}
	}
}

// snapshot writes this worker's shard as the given epoch. cut records
// whether the snapshot is part of a consistent cut (a BSP barrier or a
// marker episode) or a local stale snapshot (async/SSP selective modes).
func (w *worker) snapshot(epoch int, cut bool) error {
	var rows []ckpt.Row
	w.table.RangeRows(func(k int64, acc, inter float64) bool {
		rows = append(rows, ckpt.Row{Key: k, Acc: acc, Inter: inter})
		return true
	})
	meta := ckpt.Meta{Epoch: epoch, Worker: w.id, Workers: w.nw, Cut: cut, MutEpoch: w.mutEpoch}
	return ckpt.SaveShard(w.cfg.SnapshotDir, meta, rows)
}

// flush sends buffer j if it is non-empty. Each Data batch is stamped
// with the next per-link sequence number (in Round; the field is unused
// by Data otherwise) so the receiver can discard redeliveries from the
// termination watermark.
func (w *worker) flush(j int) {
	if w.down[j] {
		// The slot is crash-orphaned: hold the buffer. Selective replay
		// refills it for the replacement and it drains after the fence's
		// Release resets the link (extra deliveries are idempotent by
		// Theorem 3); rollback repairs discard it wholesale.
		return
	}
	kvs := w.bufs[j].take()
	if len(kvs) == 0 {
		return
	}
	w.sent += int64(len(kvs))
	w.win.out += int64(len(kvs))
	w.flushes++
	w.lastFlush[j] = time.Now()
	w.met.flushSize[j].Observe(uint64(len(kvs)))
	w.dataSeq[j]++
	w.enqueue(j, transport.Message{Kind: transport.Data, Round: int(w.dataSeq[j]), KVs: kvs})
}

func (w *worker) flushAll() {
	for j := range w.bufs {
		w.flush(j)
	}
}

// drainInbox applies all currently queued messages without blocking.
func (w *worker) drainInbox() bool {
	progressed := false
	for {
		select {
		case m, ok := <-w.conn.Inbox():
			if !ok {
				w.stopped = true
				return progressed
			}
			w.handle(m)
			progressed = true
		default:
			return progressed
		}
	}
}

// run executes the worker until the master stops it: the single unified
// compute loop, bracketed by the mode's BarrierPolicy. Every mode —
// naive/MRA BSP, the async family, SSP — is this loop with different
// policies plugged in. In a session (session.go) the loop is wrapped in
// an epoch loop: when the master parks the fleet at a fixpoint instead
// of stopping it, the worker quiesces its data lanes, blocks until the
// session has applied a base-fact mutation, and re-enters the compute
// loop on the reseeded shard.
func (w *worker) run() {
	defer func() {
		w.scan.close() // nil-safe: park-for-good the subshard cores
		close(w.out)
		close(w.outCtrl)
		<-w.commDone
	}()
	if w.scan != nil {
		// The seeded dirty count stands in for "last pass's drain" on the
		// first pass, so a big seed fans out immediately.
		w.scan.lastDrained = w.table.DirtyApprox()
	}
	if w.joinGate {
		// Spawned into a running fixpoint (crash replacement or
		// scale-out): hold the compute loop until the admission fence
		// Releases — at which point table, route, and link state are
		// consistent with the fleet.
		w.awaitAdmission()
		if w.stopped || w.sendDead.Load() {
			return
		}
	}
	w.pol.barrier.setup(w)
	for {
		w.runFixpoint()
		if w.stopped || w.sendDead.Load() || !w.parkPending() {
			return
		}
		if !w.parkAndAwait() {
			return
		}
	}
}

// runFixpoint is one fixpoint's worth of the unified compute loop. It
// returns when the worker is stopped, its send path died, or the master
// parked the fleet (session epoch boundary).
func (w *worker) runFixpoint() {
	for !w.stopped && !w.sendDead.Load() && !w.parkPending() {
		progressed := w.pol.barrier.beginPass(w)
		if w.stopped {
			return
		}
		if n := w.pol.pass(w); n > 0 {
			progressed = true
		}
		if !w.pol.barrier.endPass(w, progressed) {
			return
		}
	}
}

// parkPending reports whether the master has parked the current epoch.
func (w *worker) parkPending() bool { return w.parkEpoch >= w.curEpoch }

// broadcastParkMark fences this epoch's data on every peer link (data
// lane: per-pair ordering guarantees all data sent this epoch lands
// before the mark). Marks carry the epoch and receivers keep the max, so
// retransmissions are idempotent.
func (w *worker) broadcastParkMark(epoch int) {
	w.eachPeer(func(j int) {
		w.enqueue(j, transport.Message{Kind: transport.ParkMark, Round: epoch})
	})
}

func (w *worker) minParkMarks() int {
	least := maxSteps // no waitable peer: nothing to wait for
	for j, s := range w.parkMarks {
		if w.peerSkip(j) {
			continue
		}
		if s < least {
			least = s
		}
	}
	return least
}

// parkAndAwait runs the epoch-boundary handshake: flush every buffer,
// fence the data lanes with ParkMarks, fold incoming data until every
// peer's mark for this epoch arrives (per-pair FIFO means everything
// folded was sent before the peer's fence — the in-flight deltas an
// ε-termination may leave behind), report ParkDone, and block until the
// session starts the next epoch or stops the fleet. Once ParkDone is
// sent no peer sends Data again this epoch (their own fences are
// already up), so the session goroutine — which observes the ParkDone
// through the master's inbox, a happens-before edge — may read and
// mutate this worker's table until it broadcasts EpochStart.
func (w *worker) parkAndAwait() bool {
	e := w.curEpoch
	w.flushAll()
	w.broadcastParkMark(e)
	for !w.stopped && !w.sendDead.Load() && w.minParkMarks() < e {
		select {
		case m, ok := <-w.conn.Inbox():
			if !ok {
				w.stopped = true
				return false
			}
			w.handle(m)
		case <-time.After(markerResend):
			// A lost mark would wedge a peer's handshake; re-fencing is
			// free (receivers keep the max).
			w.met.markerResends.Inc()
			w.broadcastParkMark(e)
		}
	}
	if w.stopped || w.sendDead.Load() {
		return false
	}
	w.enqueue(w.master, transport.Message{Kind: transport.ParkDone, Round: e})
	for !w.stopped && !w.sendDead.Load() && w.epochGo <= e {
		select {
		case m, ok := <-w.conn.Inbox():
			if !ok {
				w.stopped = true
				return false
			}
			w.handle(m)
			// The parked inbox wait is also a membership safe point: a
			// scale fence driven between fixpoints (Session.AddWorker /
			// RemoveWorker on a parked fleet) is joined right here.
			w.maybeJoinFence()
			if w.stopped {
				return false // retired at the fence (scale-in)
			}
		case <-time.After(markerResend):
			// Keep healing peer handshakes while parked: a peer whose view
			// of our mark was lost is still blocked pre-ParkDone.
			w.broadcastParkMark(e)
		}
	}
	if w.stopped || w.sendDead.Load() {
		return false
	}
	w.curEpoch = e + 1
	w.verdictSet = false
	if w.scan != nil {
		// The session reseeded the shard; the new dirty count stands in
		// for "last pass's drain" exactly like the initial seed.
		w.scan.lastDrained = w.table.DirtyApprox()
	}
	return true
}

// scanPass is the shared MRA compute body (paper Figure 7): drain a
// snapshot of dirty keys in the Scheduler's order, fold each delta into
// its accumulation, and propagate improvements. It returns how many
// rows produced work. When the worker has a subshard pool and the
// frontier is large enough to pay for fan-out, the pass runs on P cores
// (subshard.go); otherwise it takes the serial body below, which is the
// exact pre-subshard single-threaded path.
func (w *worker) scanPass() int {
	if w.scan != nil && w.scan.worthParallel() {
		return w.scanPassParallel()
	}
	return w.scanPassSerial()
}

func (w *worker) scanPassSerial() int {
	n := 0
	refresh := w.pol.sched.refreshes()
	drained := w.drainSnapshot()
	if w.scan != nil {
		w.scan.lastDrained = len(drained)
	}
	for _, d := range drained {
		if refresh {
			w.refresh(&d)
		}
		// §5.4 priority: small combining-aggregate deltas wait locally.
		// Refolding marks the row dirty again; the scheduler tracks the
		// held state so the idle detector stays honest.
		if w.pol.sched.hold(d.val) {
			w.table.FoldDelta(d.key, d.val)
			continue
		}
		improved, change, signed := w.table.FoldAcc(d.key, d.val)
		w.accFolds++
		w.accDelta += change
		w.accSum += signed
		if !w.shouldPropagate(improved, d.val) {
			continue
		}
		n++
		w.plan.PropagateInto(w.scratch, d.key, d.val, w.emit)
	}
	return n
}

// drained is one key's delta taken from the dirty set this pass.
type drained struct {
	key int64
	val float64
}

// drainSnapshot drains the current dirty set into a slice ordered by
// the Scheduler. The backing storage is reused across passes, so a
// steady-state pass allocates nothing.
func (w *worker) drainSnapshot() []drained {
	keys := w.drainKeys[:0]
	w.table.ScanDirty(func(k int64) { keys = append(keys, k) })
	w.drainKeys = keys
	out := w.drainBuf[:0]
	for _, k := range keys {
		if v, ok := w.table.Drain(k); ok {
			out = append(out, drained{k, v})
		}
	}
	w.drainBuf = out
	w.pol.sched.arrange(out)
	return out
}

// refresh folds any delta that arrived since the snapshot into d — under
// the ordered schedule, a key processed late in the pass picks up the
// improvements its predecessors just propagated, which is where the
// delta-stepping saving comes from.
func (w *worker) refresh(d *drained) {
	if v, ok := w.table.Drain(d.key); ok {
		d.val = w.plan.Op.Fold(d.val, v)
		w.met.refreshHits.Inc()
	}
}

// shouldPropagate implements the per-aggregate forwarding rule: selective
// aggregates forward only improvements (anything else is dominated);
// combining aggregates forward every non-zero delta.
func (w *worker) shouldPropagate(improved bool, tmp float64) bool {
	if w.plan.Op.Selective() {
		return improved
	}
	return tmp != 0
}

// emit routes one contribution: local keys fold directly (they join the
// next pass via the dirty set), remote keys are buffered and flushed
// when the mode's FlushPolicy — or the BatchMax hard cap — says so.
func (w *worker) emit(dst int64, v float64) {
	o := w.owner(dst)
	if o == w.id {
		w.apply.FoldDelta(dst, v)
		return
	}
	w.bufs[o].add(dst, v)
	w.win.counts[o]++
	if w.pol.flush.onEmit(o, w.bufs[o].len(), v) {
		w.flush(o)
		return
	}
	if w.bufs[o].len() >= w.cfg.BatchMax {
		w.flush(o)
	}
}

// timedFlush applies the τ interval — any buffer older than τ is sent —
// then hands the FlushPolicy its adaptation tick (the β(i,j) update
// rule of §5.3, the AAP delay switch of §6.5).
func (w *worker) timedFlush() {
	now := time.Now()
	for j := range w.bufs {
		if j == w.id {
			continue
		}
		if w.bufs[j].len() > 0 && now.Sub(w.lastFlush[j]) >= w.cfg.Tau {
			w.flush(j)
		}
	}
	w.pol.flush.onTick(now, &w.win)
}

// idleWait blocks briefly for new input so an idle worker does not spin.
func (w *worker) idleWait() {
	select {
	case m, ok := <-w.conn.Inbox():
		if !ok {
			w.stopped = true
			return
		}
		w.handle(m)
	case <-time.After(200 * time.Microsecond):
	}
}

// outBuf is a per-destination buffer that folds same-key updates with
// the program's aggregate, in arrival order of first touch. It is an
// open-addressed flat combiner: a power-of-two slot table of indexes
// into dense key/value arrays, linear probing, no tombstones (keys are
// never removed individually — a drain resets the whole table). The
// dense arrays and the slot table are reused across flushes and the
// drain target comes from the transport batch pool, so the steady-state
// fill→drain cycle allocates nothing.
type outBuf struct {
	op    *agg.Op
	keys  []int64   // first-touch order
	vals  []float64 // parallel to keys
	slots []int32   // hash table: index+1 into keys, 0 = empty
	mask  uint64
}

// outBufInitSlots is the initial slot-table size; it grows to track the
// largest batch the destination ever needed and then stays put.
const outBufInitSlots = 256

func newOutBuf(op *agg.Op) *outBuf {
	return &outBuf{
		op:    op,
		slots: make([]int32, outBufInitSlots),
		mask:  outBufInitSlots - 1,
	}
}

// hashKey mixes the key bits (Fibonacci multiplier + xor-fold) so dense
// vertex ids and src<<32|dst pair keys both spread across the table.
func hashKey(k int64) uint64 {
	x := uint64(k) * 0x9E3779B97F4A7C15
	return x ^ (x >> 32)
}

// add folds v into the buffered update for key.
func (b *outBuf) add(key int64, v float64) {
	h := hashKey(key) & b.mask
	for {
		idx := b.slots[h]
		if idx == 0 {
			b.keys = append(b.keys, key)
			b.vals = append(b.vals, v)
			b.slots[h] = int32(len(b.keys))
			// Grow at 3/4 load so probe chains stay short.
			if uint64(len(b.keys)) >= b.mask/4*3 {
				b.grow()
			}
			return
		}
		if b.keys[idx-1] == key {
			b.vals[idx-1] = b.op.Fold(b.vals[idx-1], v)
			return
		}
		h = (h + 1) & b.mask
	}
}

// grow doubles the slot table and reindexes the dense entries (cheap:
// the keys are already compact, no entry moves).
func (b *outBuf) grow() {
	b.slots = make([]int32, 2*len(b.slots))
	b.mask = uint64(len(b.slots) - 1)
	for i, k := range b.keys {
		h := hashKey(k) & b.mask
		for b.slots[h] != 0 {
			h = (h + 1) & b.mask
		}
		b.slots[h] = int32(i + 1)
	}
}

func (b *outBuf) len() int { return len(b.keys) }

// take drains the buffer into a pooled KV batch (first-touch order).
// Ownership of the batch passes to the caller, who hands it to Send
// under the transport recycle contract.
func (b *outBuf) take() []transport.KV {
	if len(b.keys) == 0 {
		return nil
	}
	kvs := transport.GetBatch(len(b.keys))
	for i, k := range b.keys {
		kvs = append(kvs, transport.KV{K: k, V: b.vals[i]})
	}
	b.keys = b.keys[:0]
	b.vals = b.vals[:0]
	clear(b.slots)
	return kvs
}

// drainInto hands every buffered (key, value) pair to f in first-touch
// order and resets the buffer in place. Unlike take it allocates no
// pooled batch — the per-core merge path (subshard.go) re-emits each
// pair through the worker-level buffers instead of sending directly.
func (b *outBuf) drainInto(f func(key int64, v float64)) {
	for i, k := range b.keys {
		f(k, b.vals[i])
	}
	b.keys = b.keys[:0]
	b.vals = b.vals[:0]
	clear(b.slots)
}
