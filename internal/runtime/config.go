// Package runtime is PowerLog's distributed execution runtime (paper §5):
// workers own MonoTable shards and exchange folded deltas through a
// transport; a master runs the periodic termination check. One worker
// codebase — a single unified compute loop — implements all evaluation
// modes by plugging in per-mode policies (policy.go): a FlushPolicy for
// message buffering (§5.3), a Scheduler for drain order and priority
// holding (§5.4), and a BarrierPolicy for synchronisation (§5.2). The
// registered modes are naive synchronous, MRA synchronous (BSP), MRA
// asynchronous, the paper's unified sync-async mode with adaptive
// message buffers, the AAP comparison mode of §6.5, and a stale
// synchronous parallel (SSP) mode (ssp.go).
package runtime

import (
	"fmt"
	"io"
	stdruntime "runtime"
	"time"

	"powerlog/internal/fault"
	"powerlog/internal/metrics"
)

// Mode selects the evaluation strategy.
type Mode int

// Evaluation modes. The zero value is MRASyncAsync, PowerLog's unified
// engine — the recommended default. NaiveSync models SociaLite-style
// naive evaluation; MRASync models BigDatalog-style semi-naive BSP;
// MRAAsync models Myria-style asynchronous evaluation; MRAAAP
// re-implements Grape+'s adaptive asynchronous parallel model for
// Figure 11; MRASSP is stale synchronous parallel evaluation — BSP-style
// supersteps with a barrier relaxed to Config.Staleness steps (ssp.go).
const (
	MRASyncAsync Mode = iota
	NaiveSync
	MRASync
	MRAAsync
	MRAAAP
	MRASSP
)

var modeNames = [...]string{"MRA+SyncAsync", "Naive+Sync", "MRA+Sync", "MRA+Async", "MRA+AAP", "MRA+SSP"}

// String returns the mode's display name (Figure 10's series labels).
func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return "Mode(?)"
}

// MRA reports whether the mode uses incremental (MRA) evaluation.
func (m Mode) MRA() bool { return m != NaiveSync }

// Config tunes the runtime. Zero values select documented defaults.
type Config struct {
	// Workers is the number of worker shards (default 4).
	Workers int
	// Mode is the evaluation strategy (default MRASyncAsync).
	Mode Mode

	// BatchMax caps KVs per message (default 4096).
	BatchMax int
	// BetaInit is the initial adaptive buffer size β(i,j) (default 256).
	BetaInit int
	// Tau is the message-passing interval τ (default 2ms).
	Tau time.Duration
	// Alpha is the damping factor of the β update (paper fixes 0.8).
	Alpha float64
	// R is the adaptation trigger ratio (paper sets 2).
	R float64

	// Staleness bounds how many supersteps ahead of the slowest peer an
	// MRASSP worker may run before blocking on stragglers (default 2).
	// Other modes ignore it.
	Staleness int

	// CoresPerWorker is the number of goroutines each MRA worker may use
	// for its scan/fold/emit pass (intra-worker parallelism, DESIGN.md
	// §9): the shard is split into per-core subshards and a pass runs
	// them on a work-stealing pool. Sound for MRA programs by the P1
	// property — range folds commute, so any interleaving reaches the
	// same fixpoint. 1 runs the exact single-threaded pass (bit-identical
	// to the pre-subshard engine); <= 0 selects min(GOMAXPROCS, 8).
	// Naive mode ignores it.
	CoresPerWorker int

	// CoresMinKeys gates the parallel pass by drain size: a pass only
	// fans out when the previous pass drained at least this many keys
	// (first pass: the seeded dirty count), so small frontiers keep the
	// cheaper serial path. <= 0 selects the default 1024; tests that must
	// force the parallel path set 1.
	CoresMinKeys int

	// CheckInterval is the master's termination-check period (default 1ms).
	CheckInterval time.Duration
	// CollectTimeout bounds how long the master waits for any single
	// report during a collect (PhaseDone or StatsReply). A worker dying
	// mid-collect then surfaces as ErrWorkerLost instead of a hang. The
	// deadline covers one message, so it effectively resets on every
	// report. 0 (the default) falls back to MaxWall — a dead worker
	// still cannot hang the run, and a healthy run with long compute
	// passes cannot trip it spuriously. A timeout landing past the wall
	// budget (always the case for the fallback) is reported as an
	// ordinary non-converged abort; only a timeout within the budget is
	// a lost worker.
	CollectTimeout time.Duration
	// PriorityThreshold enables §5.4's importance-based flushing for
	// combining aggregates: deltas below the threshold wait in the local
	// intermediate until the worker has no other work. 0 disables.
	PriorityThreshold float64

	// OrderedScan processes each pass's drained deltas best-first (lowest
	// value for min, highest for max) — a delta-stepping-style schedule
	// (Meyer & Sanders 2003) like the SociaLite optimisation the paper
	// credits for its ClueWeb09 SSSP win. It reduces wasted relaxations
	// on selective aggregates at the cost of a per-pass sort; it has no
	// effect on combining aggregates.
	OrderedScan bool

	// MaxWall aborts a run after this long (default 2 minutes).
	MaxWall time.Duration

	// SnapshotDir enables checkpointing for every MRA mode. BSP modes
	// write each worker's shard at every SnapshotEvery-th barrier — a
	// consistent cut, since no messages are in flight at a barrier. The
	// async family and SSP write epoch-stamped snapshots too: selective
	// (min/max) aggregates snapshot locally at pass boundaries with no
	// coordination (a stale snapshot restores correctly under the
	// paper's Theorem 3 — replayed or reordered deltas cannot change a
	// selective fixpoint); combining aggregates (sum/count) run a
	// Chandy–Lamport-style marker episode driven by the master every
	// SnapshotEvery-th check round, producing a consistent cut.
	SnapshotDir   string
	SnapshotEvery int

	// RestoreDir resumes a run from the snapshots in the directory
	// instead of seeding ΔX¹ (any MRA mode, any worker count).
	// Consistent-cut snapshots restore state exactly; stale snapshots
	// (refused for non-selective aggregates) warm-start the run by
	// re-folding the saved rows over the normal ΔX¹ seed.
	RestoreDir string

	// Fault plugs a deterministic fault injector into the run: a
	// fault-wrapping transport conn, a stall-decorating barrier, and the
	// master's crash/restart hooks. nil (the default) injects nothing
	// and adds nothing to the hot path.
	Fault *fault.Injector

	// MetricsEvery enables the opt-in periodic metrics dump for long
	// in-process runs: every interval, each worker's and the master's
	// registry snapshot is rendered as text to MetricsLog (default
	// os.Stderr). 0 disables the dump; the metrics themselves are always
	// collected (the hot path is a handful of atomic adds) and surfaced
	// through Result.Workers[*].Metrics and Result.Master.
	MetricsEvery time.Duration
	// MetricsLog is the periodic dump's destination (nil = os.Stderr).
	MetricsLog io.Writer

	// Network emulates the paper's cluster fabric on the in-process
	// transport (17 Aliyun nodes, 1.5 Gbps): each outgoing message costs
	// a fixed latency plus its KV volume divided by the per-node NIC
	// rate, serialised through the worker's communication thread. The
	// zero profile is a perfect network (tests use that).
	Network NetworkProfile

	// Elastic enables live membership changes on a Session (DESIGN.md
	// §11): Session.AddWorker / Session.RemoveWorker rebalance shards
	// mid-fixpoint through the membership fence, and key routing switches
	// from static modulo partitioning to a consistent-hash ring so a
	// membership change moves only the affected key ranges. Elastic
	// sessions force Sparse shard tables (the Dense layout is strided by
	// the static modulo) and require a non-barriered MRA mode — the BSP
	// family's lockstep barrier has no safe point to re-route at.
	// Crash re-join (a lost worker replaced in place) does NOT need
	// Elastic; it works on any non-barriered MRA session.
	Elastic bool
	// MaxWorkers caps how many workers an Elastic session may grow to
	// (transport endpoints are pre-allocated up to the cap). 0 selects
	// Workers+4. Ignored unless Elastic is set.
	MaxWorkers int
}

// fleetCap is the number of worker endpoints the transport is built
// with: the static fleet size, or the elastic growth cap. The master
// endpoint sits at index fleetCap() (so for static fleets it stays at
// Workers, backward compatible with every existing layout).
func (c Config) fleetCap() int {
	if !c.Elastic {
		return c.Workers
	}
	if c.MaxWorkers > c.Workers {
		return c.MaxWorkers
	}
	return c.Workers + 4
}

// NetworkProfile models link cost for the in-process transport.
type NetworkProfile struct {
	// Latency is the fixed per-message cost (serialisation + RTT share).
	Latency time.Duration
	// KVsPerSecond is the per-node NIC throughput in KV updates/second
	// (a KV is ~16 bytes; 1.5 Gbps ≈ 10M KV/s). 0 = infinite.
	KVsPerSecond float64
}

// cost returns the emulated wire time of a message with n KVs.
func (p NetworkProfile) cost(n int) time.Duration {
	d := p.Latency
	if p.KVsPerSecond > 0 {
		d += time.Duration(float64(n) / p.KVsPerSecond * float64(time.Second))
	}
	return d
}

// Enabled reports whether any emulation is configured.
func (p NetworkProfile) Enabled() bool { return p.Latency > 0 || p.KVsPerSecond > 0 }

// ConfigError reports a Config field that fails validation, with the
// field name machine-readable so callers can test for the exact
// rejection (errors.As).
type ConfigError struct {
	Field  string // the Config field name, e.g. "Staleness"
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("runtime: invalid Config.%s: %s", e.Field, e.Reason)
}

// Validate rejects Config values that look like plausible settings but
// have no defined meaning, before withDefaults would silently replace
// them. Zero values are always legal (they select the documented
// defaults), and PriorityThreshold < 0 stays legal — it is the
// documented way to disable priority flushing explicitly. Run, Open,
// RunWorker, and RunMaster all call this; it is exported so callers can
// validate a config up front.
func (c Config) Validate() error {
	if c.Staleness < 0 {
		return &ConfigError{Field: "Staleness",
			Reason: fmt.Sprintf("negative staleness %d; SSP needs a bound >= 0 (0 selects the default)", c.Staleness)}
	}
	if c.CoresPerWorker < 0 {
		return &ConfigError{Field: "CoresPerWorker",
			Reason: fmt.Sprintf("negative core count %d; use 0 for the GOMAXPROCS default or a positive count", c.CoresPerWorker)}
	}
	if c.MetricsEvery < 0 {
		return &ConfigError{Field: "MetricsEvery",
			Reason: fmt.Sprintf("negative dump interval %v; use 0 to disable the periodic dump", c.MetricsEvery)}
	}
	if c.CollectTimeout < 0 {
		return &ConfigError{Field: "CollectTimeout",
			Reason: fmt.Sprintf("negative collect timeout %v; use 0 for the MaxWall fallback", c.CollectTimeout)}
	}
	if c.MaxWall < 0 {
		return &ConfigError{Field: "MaxWall",
			Reason: fmt.Sprintf("negative wall budget %v; use 0 for the default budget", c.MaxWall)}
	}
	if c.MaxWorkers < 0 {
		return &ConfigError{Field: "MaxWorkers",
			Reason: fmt.Sprintf("negative cap %d; use 0 for the Workers+4 default", c.MaxWorkers)}
	}
	if c.Elastic && c.MaxWorkers > 0 && c.Workers > 0 && c.MaxWorkers < c.Workers {
		return &ConfigError{Field: "MaxWorkers",
			Reason: fmt.Sprintf("cap %d is below the initial fleet size %d", c.MaxWorkers, c.Workers)}
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 4096
	}
	if c.BetaInit <= 0 {
		c.BetaInit = 256
	}
	if c.Tau <= 0 {
		c.Tau = 2 * time.Millisecond
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.8
	}
	if c.R <= 0 {
		c.R = 2
	}
	if c.Staleness <= 0 {
		c.Staleness = 2
	}
	if c.CoresPerWorker <= 0 {
		c.CoresPerWorker = stdruntime.GOMAXPROCS(0)
		if c.CoresPerWorker > 8 {
			c.CoresPerWorker = 8
		}
	}
	if c.CoresMinKeys <= 0 {
		c.CoresMinKeys = 1024
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = time.Millisecond
	}
	if c.MaxWall <= 0 {
		c.MaxWall = 2 * time.Minute
	}
	return c
}

// Result is a completed run.
type Result struct {
	// Values maps every key with a non-identity accumulation to its
	// final value.
	Values map[int64]float64
	// Rounds counts BSP supersteps (sync modes) or master check rounds
	// (async modes).
	Rounds int
	// MessagesSent / MessagesRecv count KV updates crossing workers.
	MessagesSent, MessagesRecv int64
	// Flushes counts data messages (batches) sent.
	Flushes int64
	// Elapsed is wall-clock runtime excluding plan compilation.
	Elapsed time.Duration
	// Converged is false when the run stopped on the iteration cap or
	// wall-clock limit instead of its termination condition.
	Converged bool
	// Workers holds per-worker observability, indexed by worker id.
	Workers []WorkerStats
	// Master snapshots the termination controller's metrics (protocol
	// rounds, collect-wait histogram, liveness timeouts).
	Master metrics.Snapshot
}

// WorkerStats is one worker's per-run observability: how the mode's
// policies actually behaved (flush counts, the β trajectory of the
// adaptive buffer rule, SSP straggler wait).
type WorkerStats struct {
	// Sent / Recv count KV updates crossing this worker's boundary.
	Sent, Recv int64
	// Flushes counts data messages (batches) this worker sent.
	Flushes int64
	// Passes counts productive compute passes (async family and SSP).
	Passes int64
	// Beta samples the mean adaptive buffer size β(i,·) once per
	// adaptation window (unified mode with combining aggregates only).
	Beta []float64
	// StragglerWait is the total time an MRASSP worker spent blocked at
	// the staleness gate waiting for slower peers.
	StragglerWait time.Duration
	// Metrics is the worker's full per-policy metric snapshot (DESIGN.md
	// §8): hold/release cycles, ordered-scan refresh hits,
	// per-destination flush-size histograms, β band exits and clamps,
	// straggler-wait histogram, marker retransmits, duplicate batches.
	Metrics metrics.Snapshot
}
