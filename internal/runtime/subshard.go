package runtime

import (
	"sync"
	"time"
)

// Intra-worker parallelism (DESIGN.md §9): the scan/fold/emit pass of
// scanPass, fanned out over P = Config.CoresPerWorker goroutines. The
// worker's table is split into subshards — contiguous slot ranges for
// Dense, stripe blocks for Sparse (monotable.ScanDirtyRange) — and each
// pass deals every core a contiguous block of subshards; a core that
// finishes its block steals from a sibling's, so one skewed range does
// not serialise the pass.
//
// Soundness is the paper's P1 property plus Theorem 3: MRA folds are
// commutative and associative, so draining and folding disjoint key
// ranges in any interleaving — including racing local re-emits into
// ranges another core has yet to scan — reaches the same fixpoint the
// serial pass does. At P=1 the pool is never built and scanPass runs
// the exact pre-subshard serial body.
//
// The hot path stays allocation-free: each core owns reused scan/drain
// slices, its own outBuf per destination, and pre-bound closures; the
// owner merges per-core buffers and counters serially after the join,
// re-emitting through the worker-level flush policy so batching, τ, and
// urgent-delta semantics are unchanged. Per-core Σacc/stat deltas fold
// into the worker totals only at that merge — no shared hot counters.

// subshardFactor oversplits the table relative to the core count so the
// stealing deque has granularity: with 4 subshards per core a thief
// takes ~1/4 of a straggler's remaining block instead of all of it.
const subshardFactor = 4

// subDeque is one core's work-stealing deque of subshard ids for the
// current pass. Because each core's initial deal is one contiguous
// block of ids, the deque is just the live window [head, tail): the
// owner takes from the front (ascending ranges — sequential slot
// order), thieves take from the back (the work farthest from the
// owner's scan position). A tiny mutex arbitrates; it is uncontended
// except when a thief actually arrives, so it costs one uncontended
// lock per subshard — noise next to a 512-slot scan.
type subDeque struct {
	mu         sync.Mutex
	head, tail int
}

func (d *subDeque) reset(lo, hi int) {
	d.mu.Lock()
	d.head, d.tail = lo, hi
	d.mu.Unlock()
}

func (d *subDeque) popFront() (int, bool) {
	d.mu.Lock()
	if d.head >= d.tail {
		d.mu.Unlock()
		return 0, false
	}
	sub := d.head
	d.head++
	d.mu.Unlock()
	return sub, true
}

func (d *subDeque) popBack() (int, bool) {
	d.mu.Lock()
	if d.head >= d.tail {
		d.mu.Unlock()
		return 0, false
	}
	d.tail--
	sub := d.tail
	d.mu.Unlock()
	return sub, true
}

// coreState is one scan core's private working set. Everything here is
// touched only by the core that owns it during a pass, then read and
// reset by the worker's owner goroutine at the merge — no atomics
// needed on the counters themselves.
type coreState struct {
	w    *worker
	pool *scanPool
	idx  int

	// Reused pass storage (the per-core twins of worker.drainKeys /
	// drainBuf): a steady-state subshard scan allocates nothing.
	keys     []int64
	drainBuf []drained

	// Per-destination combiners, merged by the owner after the join.
	bufs      []*outBuf
	winCounts []int64 // per-destination emit counts for the β window

	// Pass results, folded into the worker totals at the merge.
	n        int     // rows that propagated
	drained  int     // rows drained (feeds scanPool.lastDrained)
	folds    int64   // FoldAcc count (feeds worker.accFolds)
	accDelta float64 // Σ|acc change|
	accSum   float64 // Σ signed acc deltas

	// scratch is this core's propagation-expression buffer — the
	// reentrant PropagateInto form keeps the fan-out allocation-free.
	scratch []float64

	// Pre-bound closures so the scan and propagate loops pass existing
	// func values instead of allocating new ones per subshard.
	scanFn func(int64)
	emitFn func(int64, float64)
}

// emit is the per-core twin of worker.emit: local keys fold straight
// into the shared table (atomic, so cores race safely); remote keys go
// to this core's private combiner and are re-emitted through the
// worker's flush policy at the merge.
func (c *coreState) emit(dst int64, v float64) {
	w := c.w
	o := w.owner(dst)
	if o == w.id {
		w.apply.FoldDelta(dst, v)
		return
	}
	c.bufs[o].add(dst, v)
	c.winCounts[o]++
}

// scanSub runs the full scan/drain/fold/emit body over one subshard.
func (c *coreState) scanSub(sub int) {
	w := c.w
	start := time.Now()
	c.keys = c.keys[:0]
	w.table.ScanDirtyRange(sub, c.pool.nsub, c.scanFn)
	out := c.drainBuf[:0]
	for _, k := range c.keys {
		if v, ok := w.table.Drain(k); ok {
			out = append(out, drained{k, v})
		}
	}
	c.drainBuf = out
	// The Scheduler's order applies within the subshard (a per-core sort
	// for the ordered scan); cross-subshard order is whatever the deal
	// and the steals produce, which P1 licenses.
	w.pol.sched.arrange(out)
	refresh := w.pol.sched.refreshes()
	for _, d := range out {
		if refresh {
			w.refresh(&d)
		}
		if w.pol.sched.hold(d.val) {
			w.table.FoldDelta(d.key, d.val)
			continue
		}
		improved, change, signed := w.table.FoldAcc(d.key, d.val)
		c.folds++
		c.accDelta += change
		c.accSum += signed
		if !w.shouldPropagate(improved, d.val) {
			continue
		}
		c.n++
		w.plan.PropagateInto(c.scratch, d.key, d.val, c.emitFn)
	}
	c.drained += len(out)
	w.met.subPassUS.Observe(uint64(time.Since(start).Microseconds()))
}

// runCore drains this core's deque, then steals until the pass is dry.
func (c *coreState) runCore() {
	p := c.pool
	d := &p.deques[c.idx]
	for {
		sub, ok := d.popFront()
		if !ok {
			sub, ok = p.steal(c.idx)
			if !ok {
				return
			}
		}
		c.scanSub(sub)
	}
}

// scanPool is a worker's persistent set of scan cores. Core 0 is the
// worker's own compute goroutine; cores 1..P-1 are lazily-spawned
// goroutines that park on a shared sync.Cond between passes — a parked
// core costs nothing until the next broadcast, instead of spinning on
// an idle-poll loop the way worker.idleWait-style backoff would.
type scanPool struct {
	w       *worker
	p       int
	minKeys int

	// lastDrained is the previous pass's drain size (seeded from
	// DirtyApprox before the first pass) — the worthParallel signal.
	lastDrained int
	// nsub is the current pass's subshard count, written by the owner
	// before the wake broadcast (the cond's mutex orders it).
	nsub int

	cores  []*coreState
	deques []subDeque

	mu      sync.Mutex
	cond    *sync.Cond
	seq     uint64 // pass counter; a wake with an unseen seq starts a pass
	stop    bool
	started bool
	wg      sync.WaitGroup
}

func newScanPool(w *worker, p, minKeys int) *scanPool {
	sp := &scanPool{w: w, p: p, minKeys: minKeys}
	sp.cond = sync.NewCond(&sp.mu)
	sp.cores = make([]*coreState, p)
	sp.deques = make([]subDeque, p)
	for i := range sp.cores {
		c := &coreState{
			w:         w,
			pool:      sp,
			idx:       i,
			bufs:      make([]*outBuf, w.nw),
			winCounts: make([]int64, w.nw),
			scratch:   w.plan.NewScratch(),
		}
		for j := range c.bufs {
			c.bufs[j] = newOutBuf(w.plan.Op)
		}
		c.scanFn = func(k int64) { c.keys = append(c.keys, k) }
		c.emitFn = c.emit
		sp.cores[i] = c
	}
	return sp
}

// worthParallel gates fan-out by frontier size: waking P cores for a
// handful of dirty keys costs more than it saves.
func (p *scanPool) worthParallel() bool { return p.lastDrained >= p.minKeys }

// steal takes a subshard from the back of another core's deque,
// scanning siblings in ring order from the thief.
func (p *scanPool) steal(self int) (int, bool) {
	for off := 1; off < p.p; off++ {
		if sub, ok := p.deques[(self+off)%p.p].popBack(); ok {
			p.w.met.steals.Inc()
			return sub, true
		}
	}
	return 0, false
}

// begin wakes the parked cores for one pass. The owner has already
// written nsub and dealt the deques; publishing seq under the cond's
// mutex is the happens-before edge that makes those writes visible.
func (p *scanPool) begin() {
	if !p.started {
		p.started = true
		for i := 1; i < p.p; i++ {
			go p.serve(p.cores[i])
		}
	}
	p.wg.Add(p.p - 1)
	p.mu.Lock()
	p.seq++
	p.mu.Unlock()
	p.cond.Broadcast()
}

// serve is a parked core's life: wait for an unseen pass, run it, check
// back in, park again. Parking on the shared cond (not a sleep/poll
// loop) means an idle pool burns no cycles between passes.
func (p *scanPool) serve(c *coreState) {
	var last uint64
	p.mu.Lock()
	for {
		for !p.stop && p.seq == last {
			p.cond.Wait()
		}
		if p.stop {
			p.mu.Unlock()
			return
		}
		last = p.seq
		p.mu.Unlock()
		c.runCore()
		p.wg.Done()
		p.mu.Lock()
	}
}

// close parks the cores for good. Nil-safe; called from run()'s defer,
// after the last pass has joined, so no core is mid-pass.
func (p *scanPool) close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.stop = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// scanPassParallel is scanPass fanned out over the pool: deal subshard
// blocks, run core 0 inline while cores 1..P-1 work their deals, join,
// then merge per-core results on the owner. Returns the propagated-row
// count, same as the serial pass.
func (w *worker) scanPassParallel() int {
	p := w.scan
	nsub := w.table.Subshards(p.p * subshardFactor)
	if nsub < 2 {
		// Too small to split (a tiny Dense shard has one bitmap line);
		// the serial body also refreshes lastDrained for the next gate.
		return w.scanPassSerial()
	}
	p.nsub = nsub
	for i := 0; i < p.p; i++ {
		p.deques[i].reset(i*nsub/p.p, (i+1)*nsub/p.p)
	}
	p.begin()
	p.cores[0].runCore()
	p.wg.Wait()

	// Serial merge on the owner: fold per-core counters into the worker
	// totals and re-emit each core's buffered remote updates through the
	// worker-level combiner + flush policy. Merging destination-major
	// keeps same-destination updates from different cores folding into
	// one batch.
	n, total := 0, 0
	for _, c := range p.cores {
		n += c.n
		total += c.drained
		w.accDelta += c.accDelta
		w.accSum += c.accSum
		w.accFolds += c.folds
		c.n, c.drained, c.accDelta, c.accSum, c.folds = 0, 0, 0, 0, 0
	}
	for o := 0; o < w.nw; o++ {
		if o == w.id {
			continue
		}
		for _, c := range p.cores {
			if c.bufs[o].len() > 0 {
				c.bufs[o].drainInto(w.emitMerged)
			}
			w.win.counts[o] += c.winCounts[o]
			c.winCounts[o] = 0
		}
	}
	p.lastDrained = total
	w.met.parallelPasses.Inc()
	return n
}

// emitMerged re-emits one core-buffered update at the merge. It is
// worker.emit minus the window count (each original emit was already
// counted per-core, and the merged fold would undercount the β signal)
// and minus the local-key branch (core emits fold local keys directly).
func (w *worker) emitMerged(dst int64, v float64) {
	o := w.owner(dst)
	w.bufs[o].add(dst, v)
	if w.pol.flush.onEmit(o, w.bufs[o].len(), v) {
		w.flush(o)
		return
	}
	if w.bufs[o].len() >= w.cfg.BatchMax {
		w.flush(o)
	}
}
