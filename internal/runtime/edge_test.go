package runtime

import (
	"math"
	"testing"
	"time"

	"powerlog/internal/edb"
	"powerlog/internal/gen"
	"powerlog/internal/graph"
	"powerlog/internal/progs"
)

// TestMoreWorkersThanVertices: shard striping must tolerate empty shards.
func TestMoreWorkersThanVertices(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1, W: 2}, {Src: 1, Dst: 2, W: 3}}, true)
	if err != nil {
		t.Fatal(err)
	}
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.SSSP, db)
	for _, mode := range []Mode{NaiveSync, MRASync, MRASyncAsync} {
		res, err := Run(plan, Config{Workers: 8, Mode: mode, MaxWall: 10 * time.Second})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Values[0] != 0 || res.Values[1] != 2 || res.Values[2] != 5 {
			t.Fatalf("%v: values = %v", mode, res.Values)
		}
	}
}

// TestSingleVertexGraph: a source with no edges converges instantly.
func TestSingleVertexGraph(t *testing.T) {
	g, err := graph.FromEdges(1, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.SSSP, db)
	res, err := Run(plan, Config{Workers: 2, Mode: MRASyncAsync, MaxWall: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Values[0] != 0 || len(res.Values) != 1 {
		t.Fatalf("res = %+v", res)
	}
}

// TestWallClockAbortReportsNotConverged: an impossible wall budget must
// stop the run and be reported honestly.
func TestWallClockAbortReportsNotConverged(t *testing.T) {
	g := gen.Uniform(2000, 16000, 50, 909)
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.PageRank, db)
	res, err := Run(plan, Config{
		Workers: 2,
		Mode:    MRASync,
		MaxWall: time.Millisecond, // absurdly small
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Skip("machine fast enough to converge within 1ms; nothing to assert")
	}
}

// TestIterationCapAbort: the system-level iteration limit (paper §2.2)
// must stop a long computation and be reported as not converged.
func TestIterationCapAbort(t *testing.T) {
	g := gen.Chain(4000, 0, 0, 910) // pure 4000-hop chain
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.SSSP, db)
	plan.Termination.MaxIters = 10
	res, err := Run(plan, Config{Workers: 2, Mode: MRASync, MaxWall: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("a 4000-hop chain cannot converge in 10 supersteps")
	}
	if res.Rounds > 12 {
		t.Fatalf("rounds = %d, cap was 10", res.Rounds)
	}
}

// TestNaiveJoinMatchesClosure: the relational naive evaluator and the
// compiled full-F closure derive identical results (the join path is the
// honest-cost model, not a semantic change).
func TestNaiveJoinMatchesClosure(t *testing.T) {
	g := gen.RMAT(8, 1500, 0, 911)
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.PageRank, db)

	ev, err := plan.NewNaiveEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	// One synthetic state: every vertex holds rank 1.
	rows := func(yield func(int64, float64)) {
		for v := 0; v < plan.N; v++ {
			yield(int64(v), 1)
		}
	}
	joinOut := map[int64]float64{}
	if err := ev.Eval(rows, func(k int64, v float64) { joinOut[k] += v }); err != nil {
		t.Fatal(err)
	}
	closureOut := map[int64]float64{}
	for v := 0; v < plan.N; v++ {
		plan.PropagateFull(int64(v), 1, func(k int64, val float64) { closureOut[k] += val })
	}
	if len(joinOut) != len(closureOut) {
		t.Fatalf("key sets differ: %d vs %d", len(joinOut), len(closureOut))
	}
	for k, v := range closureOut {
		if math.Abs(joinOut[k]-v) > 1e-9*math.Max(1, math.Abs(v)) {
			t.Fatalf("key %d: join=%v closure=%v", k, joinOut[k], v)
		}
	}
}

// TestNetworkProfileCost sanity-checks the NIC emulation arithmetic.
func TestNetworkProfileCost(t *testing.T) {
	p := NetworkProfile{Latency: time.Millisecond, KVsPerSecond: 1000}
	if got := p.cost(500); got != time.Millisecond+500*time.Millisecond {
		t.Fatalf("cost = %v", got)
	}
	if (NetworkProfile{}).Enabled() {
		t.Error("zero profile should be disabled")
	}
	if !p.Enabled() {
		t.Error("profile should be enabled")
	}
	if got := (NetworkProfile{KVsPerSecond: 1e6}).cost(0); got != 0 {
		t.Errorf("empty message cost = %v", got)
	}
}

// TestEmulatedNetworkStillCorrect: results are identical under the NIC
// emulation (it reshapes timing, never data).
func TestEmulatedNetworkStillCorrect(t *testing.T) {
	g := gen.Uniform(200, 1200, 30, 912)
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.SSSP, db)
	base, err := Run(plan, Config{Workers: 3, Mode: MRASyncAsync, MaxWall: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	emu, err := Run(plan, Config{
		Workers: 3, Mode: MRASyncAsync, MaxWall: 30 * time.Second,
		Network: NetworkProfile{Latency: 50 * time.Microsecond, KVsPerSecond: 1e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Values) != len(emu.Values) {
		t.Fatalf("key sets differ")
	}
	for k, v := range base.Values {
		if emu.Values[k] != v {
			t.Fatalf("key %d: %v vs %v", k, emu.Values[k], v)
		}
	}
}
