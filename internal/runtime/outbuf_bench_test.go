package runtime

import (
	"testing"

	"powerlog/internal/agg"
	"powerlog/internal/transport"
)

// BenchmarkOutBuf measures the sender-side combiner's steady-state
// fill→drain cycle: 512 distinct keys each folded twice, then one flush.
// This is the per-update cost every emitted delta pays before the wire.
func BenchmarkOutBuf(b *testing.B) {
	for _, bn := range []struct {
		name string
		op   *agg.Op
	}{{"sum", agg.ByKind(agg.Sum)}, {"min", agg.ByKind(agg.Min)}} {
		b.Run(bn.name, func(b *testing.B) {
			buf := newOutBuf(bn.op)
			const keys = 512
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k := int64(0); k < keys; k++ {
					buf.add(k*7, float64(k))
					buf.add(k*7, 1.0)
				}
				kvs := buf.take()
				if len(kvs) != keys {
					b.Fatalf("drained %d keys, want %d", len(kvs), keys)
				}
				transport.PutBatch(kvs)
			}
		})
	}
}
