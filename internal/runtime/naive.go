package runtime

import "powerlog/internal/agg"

// Naive (SociaLite-style) evaluation: each superstep re-derives the full
// next state from the previous one. Only the compute body lives here —
// the barrier protocol is the same bspBarrier as MRA+Sync.

// naivePass re-derives the full next state: base tuples plus the
// recursive body applied to every current value. When the plan supports
// it, this pays naive Datalog evaluation's real price — materialise the
// current result into a relation and re-run the body joins each
// iteration (the paper's "additional rank table"); pair-keyed plans fall
// back to the compiled full-F closure. The pass-productivity return is
// unused under barriers and always 0.
func (w *worker) naivePass() int {
	for _, kv := range w.ownBase {
		w.apply.FoldDelta(kv.K, kv.V)
	}
	if w.plan.NaiveJoinSupported() {
		if w.naive == nil {
			ev, err := w.plan.NewNaiveEvaluator()
			if err == nil {
				w.naive = ev
			}
		}
		if w.naive != nil {
			err := w.naive.Eval(func(yield func(int64, float64)) {
				w.table.Range(func(k int64, acc float64) bool {
					yield(k, acc)
					return true
				})
			}, w.emit)
			if err == nil {
				return 0
			}
			// A join failure (unexpected) falls through to the closure so
			// naive mode still produces correct results.
		}
	}
	w.table.Range(func(k int64, acc float64) bool {
		w.plan.PropagateFullInto(w.scratch, k, acc, w.emit)
		return true
	})
	return 0
}

// naiveFinish folds the received contributions into the next table's
// accumulations and compares it against the current table: it returns
// Σ|next − cur| over owned keys and whether anything changed at all (a
// new key with value 0 — a shortest-path source, say — changes the
// result without moving the L1 distance). It then installs next.
func (w *worker) naiveFinish() (float64, bool) {
	// next's accumulation column starts from scratch each round, so the
	// signed FoldAcc deltas sum to its whole Σacc — which becomes the
	// worker's running accSum when next is installed below.
	nextSum := 0.0
	w.next.ScanDirty(func(k int64) {
		if v, ok := w.next.Drain(k); ok {
			_, _, signed := w.next.FoldAcc(k, v)
			nextSum += signed
		}
	})
	diff := 0.0
	changed := false
	if w.seen == nil {
		w.seen = newSeenSet(!w.plan.PairKeys, int64(w.plan.N))
	}
	w.seen.reset()
	w.next.Range(func(k int64, v float64) bool {
		w.seen.add(k)
		old := w.table.Acc(k)
		if old == w.plan.Op.Identity() {
			diff += agg.Abs(v)
			changed = true
		} else if v != old {
			diff += agg.Abs(v - old)
			changed = true
		}
		return true
	})
	w.table.Range(func(k int64, v float64) bool {
		if !w.seen.has(k) {
			diff += agg.Abs(v) // key disappeared (cannot happen for monotone runs)
			changed = true
		}
		return true
	})
	w.table = w.next
	w.accSum = nextSum
	return diff, changed
}

// seenSet tracks the keys visited by naiveFinish's two Range passes. It
// is retained across rounds — a bitset for dense vertex key spaces, a
// reused map for sparse (pair-keyed) ones — so steady-state naive
// rounds allocate nothing for membership tracking.
type seenSet struct {
	bits []uint64 // dense keys in [0, n)
	m    map[int64]bool
}

func newSeenSet(dense bool, n int64) *seenSet {
	s := &seenSet{}
	if dense && n > 0 {
		s.bits = make([]uint64, (n+63)/64)
	} else {
		s.m = make(map[int64]bool)
	}
	return s
}

func (s *seenSet) inBits(k int64) bool {
	return s.bits != nil && k >= 0 && k < int64(len(s.bits))*64
}

func (s *seenSet) add(k int64) {
	if s.inBits(k) {
		s.bits[k>>6] |= 1 << (uint(k) & 63)
		return
	}
	if s.m == nil {
		s.m = make(map[int64]bool)
	}
	s.m[k] = true
}

func (s *seenSet) has(k int64) bool {
	if s.inBits(k) {
		return s.bits[k>>6]&(1<<(uint(k)&63)) != 0
	}
	return s.m[k]
}

func (s *seenSet) reset() {
	clear(s.bits)
	clear(s.m)
}
