package runtime

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"powerlog/internal/edb"
	"powerlog/internal/gen"
	"powerlog/internal/progs"
)

// TestRunSurfacesMetrics checks the Result-side of the observability
// layer: every worker snapshot carries the per-policy counters, and the
// deterministic invariants hold — the per-destination flush-size
// histograms count exactly the batches WorkerStats already reports, a
// worker that received KVs counted at least one fresh batch, and the
// master's round counter matches Result.Rounds.
func TestRunSurfacesMetrics(t *testing.T) {
	g := gen.Uniform(400, 2400, 50, 11)
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.SSSP, db)
	for _, mode := range []Mode{MRASync, MRASyncAsync, MRASSP} {
		res := runMode(t, plan, mode, 4)
		if len(res.Workers) != 4 {
			t.Fatalf("%v: %d worker stats, want 4", mode, len(res.Workers))
		}
		for i, ws := range res.Workers {
			flushHist := ws.Metrics.MergeHistograms("flush.size.dst")
			if int64(flushHist.Count) != ws.Flushes {
				t.Errorf("%v: worker %d flush.size count = %d, WorkerStats.Flushes = %d",
					mode, i, flushHist.Count, ws.Flushes)
			}
			if ws.Recv > 0 && ws.Metrics.Counter("recv.batch") == 0 {
				t.Errorf("%v: worker %d received %d KVs but counted no fresh batches", mode, i, ws.Recv)
			}
		}
		if got := res.Master.Counter("master.round"); got != uint64(res.Rounds) {
			t.Errorf("%v: master.round = %d, Result.Rounds = %d", mode, got, res.Rounds)
		}
		if res.Master.Counter("master.collect.timeout") != 0 {
			t.Errorf("%v: healthy run counted a collect timeout", mode)
		}
	}
}

// TestPriorityHoldMetricsSurface: a combining-aggregate run with the
// §5.4 priority threshold enabled surfaces its hold/release cycle
// through the worker snapshots (every hold is eventually released or
// drained — holds only grow the parked set, so releases ≤ holds).
func TestPriorityHoldMetricsSurface(t *testing.T) {
	g := gen.RMAT(7, 600, 0, 17)
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.PageRank, db)
	res, err := Run(plan, Config{
		Workers:           4,
		Mode:              MRASyncAsync,
		Tau:               200 * time.Microsecond,
		CheckInterval:     300 * time.Microsecond,
		PriorityThreshold: 1e-7,
		MaxWall:           30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	var holds, releases uint64
	for _, ws := range res.Workers {
		holds += ws.Metrics.Counter("sched.hold")
		releases += ws.Metrics.Counter("sched.release")
	}
	if releases > holds {
		t.Fatalf("released %d parked deltas but only %d were ever held", releases, holds)
	}
	// The β counters ride the same snapshots (combining aggregate in the
	// unified mode registers the adaptive flush policy).
	var bandEvents uint64
	for _, ws := range res.Workers {
		bandEvents += ws.Metrics.Counter("flush.beta.band.in") + ws.Metrics.Counter("flush.beta.band.exit")
	}
	if bandEvents == 0 {
		t.Error("adaptive β ran but counted no band decisions")
	}
}

// TestPeriodicMetricsDump: the opt-in dump writes rendered snapshots to
// the configured sink while the run executes.
func TestPeriodicMetricsDump(t *testing.T) {
	g := gen.RMAT(7, 600, 0, 17)
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.PageRank, db)
	var buf bytes.Buffer
	res, err := Run(plan, Config{
		Workers:       4,
		Tau:           200 * time.Microsecond,
		CheckInterval: 300 * time.Microsecond,
		MaxWall:       30 * time.Second,
		// 1ms still yields hundreds of snapshots per run; much tighter and
		// the race-instrumented render loop starves a 1-CPU box's engine
		// (text rendering per tick grows with every registered metric).
		MetricsEvery: time.Millisecond,
		MetricsLog:   &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	out := buf.String()
	if !strings.Contains(out, "-- metrics @") {
		t.Fatalf("dump produced no snapshot headers:\n%.500s", out)
	}
	if !strings.Contains(out, "master.round") {
		t.Error("dump missing the master registry")
	}
	if !strings.Contains(out, "w0 ") {
		t.Error("dump missing worker registries")
	}
}
