package runtime

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"powerlog/internal/ckpt"
	"powerlog/internal/compiler"
	"powerlog/internal/edb"
	"powerlog/internal/graph"
	"powerlog/internal/transport"
)

// Typed session-state errors. Callers that drive a Session from
// concurrent goroutines (the serving front end, internal/server) branch
// on these with errors.Is: Busy maps to back-pressure (shed and retry),
// Closed to a permanent rejection.
var (
	// ErrSessionClosed is returned by Apply, AddWorker, RemoveWorker,
	// and membership changes once Close has been called (or is in
	// progress on another goroutine).
	ErrSessionClosed = errors.New("runtime: session is closed")
	// ErrSessionBusy is returned when an exclusive session operation (a
	// fixpoint, a membership fence) is already in flight on another
	// goroutine and blocking would be wrong: an Apply can legitimately
	// run for the whole wall budget, so a second caller gets an
	// immediate typed rejection instead of an unbounded wait.
	ErrSessionBusy = errors.New("runtime: session is busy (a fixpoint or membership fence is in flight)")
)

// Mutation is a batch of base-fact inserts and deletes against the
// session's join graph (re-exported from the compiler, which owns the
// delta computation).
type Mutation = compiler.Mutation

// Session is a long-lived engine instance (DESIGN.md §10): Open loads
// the EDB shards and computes the initial fixpoint, Apply folds a batch
// of base-fact insertions and deletions into the EDB and re-converges
// incrementally — without restarting workers or recomputing from
// scratch — and Close tears the fleet down. Between fixpoints the
// workers stay parked on their inboxes with their MonoTable shards
// warm; an Apply reseeds exactly the keys the mutation can affect (the
// compiler's ΔX¹ correction for combining aggregates, an invalidation
// cone plus boundary reseed for selective ones) and restarts the
// termination protocol for one more epoch.
//
// A Session is safe for concurrent use. The public API is serialized by
// an internal mutex: at most one exclusive operation — an Apply epoch, a
// parked-fleet membership fence, Close's teardown — runs at a time (the
// master's termination protocol runs on the calling goroutine), and a
// caller that would have to wait behind one gets ErrSessionBusy
// immediately instead of blocking for up to the wall budget. Result,
// Err, Epoch, and MutEpoch never block behind a running fixpoint: they
// return the last published epoch's state, which is what a serving
// front end wants for point lookups while a re-fixpoint is in flight.
// Close is the one blocking call — it waits for the in-flight operation
// to finish (bounded by Config.MaxWall) before tearing the fleet down,
// so a graceful drain cannot yank warm state from under an Apply.
//
// Error model: a mutation that fails validation (an edge outside the
// vertex universe) is rejected with the EDB untouched and the session
// still usable. A fixpoint that ends any other way than a clean park —
// an injected crash, a lost worker, the iteration cap, the wall clock —
// poisons the session: the error is sticky, every later Apply returns
// it, and the caller's recovery path is Close and re-Open (optionally
// from a RestoreDir checkpoint, replaying the mutation log past the
// snapshot's MutEpoch).
type Session struct {
	cfg     Config
	plan    *compiler.Plan
	net     *transport.ChannelNetwork
	workers []*worker
	m       *master
	wg      sync.WaitGroup
	dump    *metricsDumper

	// log records every applied mutation with its epoch; mutEpoch is the
	// log position the current table state incorporates (restored from
	// the checkpoint's MutEpoch when Open resumes from RestoreDir).
	// engEpoch counts fixpoints this session has computed (1 = initial).
	log      *edb.MutationLog
	mutEpoch int
	engEpoch int

	// mu guards the session's shared control state: busy, closing,
	// closed, err, res, fleetDown, and the epoch counters. Exclusive
	// operations (Apply, parked fences, teardown) claim the session via
	// begin()/end() — the busy flag — and then run with mu RELEASED, so
	// read-only accessors stay wait-free while a fixpoint computes; the
	// busy holder is the only writer of fleet state, and it republishes
	// results and errors under mu. cond signals busy/closed transitions
	// for Close's drain wait.
	mu   sync.Mutex
	cond *sync.Cond

	busy    bool // an exclusive operation is in flight (its holder runs unlocked)
	closing bool // Close has committed to teardown; new operations are rejected

	res       *Result
	err       error // sticky epoch failure; every later Apply returns it
	fleetDown bool  // worker goroutines have exited
	closed    bool

	// Cumulative worker counters at the last epoch boundary, so each
	// Result reports per-epoch message traffic.
	prevSent, prevRecv, prevFlush int64

	ckptEpoch int // monotone stamp for park-boundary checkpoints

	// Membership state (membership.go, DESIGN.md §11). workers is sized
	// to the fleet capacity; slots beyond the initial fleet (and retired
	// slots) are nil. fenceRelease holds the checkpoint read lease a
	// combining-aggregate crash recovery takes between choosing a
	// rollback epoch and the fleet finishing its reload; released at the
	// fence's Release. scaled records that the membership has changed at
	// least once, which invalidates checkpoints written under the old
	// ownership ring. AddWorker / RemoveWorker callers observe busy (under
	// mu) to decide between queueing their command to the running master
	// and driving the fence directly against the parked fleet.
	fenceRelease func()
	scaled       bool
}

// begin claims the session for one exclusive operation. It fails fast
// with the typed state errors instead of blocking: an in-flight epoch
// can run for the whole wall budget, and queueing callers behind it
// invisibly is exactly the bug the serving front end would turn into a
// thread pile-up.
func (s *Session) begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing || s.closed {
		return ErrSessionClosed
	}
	if s.busy {
		return ErrSessionBusy
	}
	if s.err != nil {
		return s.err
	}
	s.busy = true
	return nil
}

// end releases the exclusive claim and rejects membership commands that
// raced the operation's exit. The ordering matters: commands are only
// enqueued under mu while busy is set, so by the time end holds mu every
// such command is in the channel; clearing busy first and draining after
// guarantees none is left behind to hang its caller (the master's own
// deferred drain only covers commands it saw before m.run returned). A
// drain racing the next operation's freshly queued command can at worst
// reject it with the retryable ErrSessionBusy.
func (s *Session) end() {
	s.mu.Lock()
	s.busy = false
	s.mu.Unlock()
	s.cond.Broadcast()
	s.rejectQueuedCmds()
}

func (s *Session) rejectQueuedCmds() {
	if s.m == nil || s.m.cmds == nil {
		return
	}
	for {
		select {
		case cmd := <-s.m.cmds:
			cmd.reply <- memberCmdResult{id: -1, err: ErrSessionBusy}
		default:
			return
		}
	}
}

// setResult publishes an epoch's Result for the wait-free accessors.
// The Result itself is immutable after publication, so readers can use
// it without holding mu.
func (s *Session) setResult(res *Result) {
	s.mu.Lock()
	s.res = res
	s.mu.Unlock()
}

// setFleetDown records that the worker goroutines have exited.
func (s *Session) setFleetDown() {
	s.mu.Lock()
	s.fleetDown = true
	s.mu.Unlock()
}

// bumpMutEpoch / bumpEngEpoch advance the epoch counters under mu (the
// busy holder is the only writer, so its own later unlocked reads are
// race-free; concurrent accessors read under mu).
func (s *Session) bumpMutEpoch() {
	s.mu.Lock()
	s.mutEpoch++
	s.mu.Unlock()
}

func (s *Session) bumpEngEpoch() {
	s.mu.Lock()
	s.engEpoch++
	s.mu.Unlock()
}

// Open compiles nothing — the plan is already compiled — but stands up
// the worker fleet, seeds ΔX¹ (or restores a checkpoint), and runs the
// initial fixpoint. For MRA modes a converged fixpoint parks the fleet
// for later Applys; naive mode runs to completion (it cannot
// re-fixpoint incrementally) and only Result/Close are useful
// afterwards. Open returns an error for invalid configs, unrestorable
// checkpoints, and transport failures; a fixpoint that merely failed to
// converge (iteration cap, injected crash) still returns a Session so
// the caller can inspect the Result, but the session is poisoned for
// Apply.
func Open(plan *compiler.Plan, cfg Config) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if plan.Propagate == nil || plan.Op == nil {
		return nil, fmt.Errorf("runtime: plan is not compiled")
	}
	if !modeRegistered(cfg.Mode) {
		return nil, fmt.Errorf("runtime: mode %v has no registered policies", cfg.Mode)
	}
	if !cfg.Mode.MRA() && len(plan.BaseNaive) == 0 {
		return nil, fmt.Errorf("runtime: naive evaluation has no base tuples to derive from")
	}
	if cfg.Elastic && (!cfg.Mode.MRA() || modeBarriered[cfg.Mode]) {
		return nil, fmt.Errorf("runtime: Elastic membership needs a non-barriered MRA mode " +
			"(the BSP verdict protocol has no fence point mid-superstep)")
	}
	cfg = applyPriorityDefault(cfg, plan)

	// Load any restore state before standing up goroutines, so a
	// corrupt checkpoint fails cleanly.
	var restoreRows []ckpt.Row
	var restoreMeta ckpt.Meta
	restoring := false
	if cfg.Mode.MRA() && cfg.RestoreDir != "" {
		rows, meta, err := ckpt.LoadAll(cfg.RestoreDir)
		if err != nil {
			return nil, err
		}
		if !meta.Cut && !plan.Op.Selective() {
			return nil, fmt.Errorf("runtime: %s has only stale snapshots, which are safe to restore "+
				"only for selective aggregates (Theorem 3); combining aggregates need a consistent cut", cfg.RestoreDir)
		}
		restoreRows, restoreMeta, restoring = rows, meta, true
	}

	// The network (and the workers slice) is provisioned to the fleet's
	// capacity so scale-out only has to populate a pre-existing slot; on
	// static fleets fleetCap() == Workers and the master endpoint index
	// is unchanged.
	net := transport.NewChannelNetwork(cfg.fleetCap(), 4096)
	workers := make([]*worker, cfg.fleetCap())
	for i := 0; i < cfg.Workers; i++ {
		// Fault.Wrap is a no-op passthrough when no injector is set.
		workers[i] = newWorker(i, cfg, plan, cfg.Fault.Wrap(net.Conn(i)))
	}

	s := &Session{
		cfg:     cfg,
		plan:    plan,
		net:     net,
		workers: workers,
		log:     &edb.MutationLog{},
		engEpoch: 1,
	}
	s.cond = sync.NewCond(&s.mu)

	// Seed state per mode: MRA folds ΔX¹ into the shards (or restores a
	// checkpoint); naive re-derives base tuples every round from each
	// worker's owned slice.
	if cfg.Mode.MRA() {
		switch {
		case restoring && restoreMeta.Cut:
			for _, w := range workers[:cfg.Workers] {
				w.restore(restoreRows)
			}
		case restoring:
			for _, w := range workers[:cfg.Workers] {
				w.seed(plan.InitMRA)
				w.restoreStale(restoreRows)
			}
		default:
			for _, w := range workers[:cfg.Workers] {
				w.seed(plan.InitMRA)
			}
		}
		if restoring {
			// Resume the mutation-log position the snapshot incorporates:
			// the caller replays its trailing log entries through Apply.
			s.mutEpoch = restoreMeta.MutEpoch
			for _, w := range workers[:cfg.Workers] {
				w.mutEpoch = restoreMeta.MutEpoch
			}
		}
	} else {
		for _, kv := range plan.BaseNaive {
			o := graph.Partition(kv.K, cfg.Workers)
			workers[o].ownBase = append(workers[o].ownBase, kv)
		}
	}

	s.m = newMaster(cfg, plan, net.Conn(transport.MasterID(cfg.fleetCap())))
	// Naive evaluation cannot park: its fixpoint is a full re-derivation,
	// so the initial run goes to completion and Apply stays rejected.
	s.m.park = cfg.Mode.MRA()
	// Membership: the non-barriered MRA modes get live re-join (a lost
	// worker is replaced through a fence instead of aborting the run);
	// elastic fleets additionally accept AddWorker/RemoveWorker commands.
	// The callbacks all run on the goroutine executing m.run — this one —
	// so they touch session state freely.
	if cfg.Mode.MRA() && !modeBarriered[cfg.Mode] {
		s.m.member = &memberCoordinator{
			spawn:    s.respawnWorker,
			admit:    s.admitWorker,
			retire:   s.retireWorker,
			released: s.fenceReleased,
		}
	}
	if cfg.Elastic {
		s.m.cmds = make(chan memberCmd, 8)
	}
	// The dump goroutine gets its own copy: membership changes swap
	// entries of s.workers while it reads (it keeps reporting the fleet
	// it was started with; replacements surface in the final Result).
	s.dump = startMetricsDump(cfg, slices.Clone(workers), s.m)

	start := time.Now()
	for _, w := range workers[:cfg.Workers] {
		s.wg.Add(1)
		go func(w *worker) {
			defer s.wg.Done()
			w.run()
		}(w)
	}
	// The session is not yet published, but the busy protocol still runs
	// so the master's command queue gets its end-of-epoch drain.
	s.busy = true
	s.m.run()
	res, err := s.finishEpoch(start)
	s.end()
	if err != nil {
		// Transport death or a lost worker: nothing to resume — tear
		// down fully so the caller doesn't have to Close a corpse.
		s.teardown()
		return nil, err
	}
	s.setResult(res)
	return s, nil
}

// Apply folds a batch of base-fact changes into the EDB and converges
// to the mutated program's fixpoint from the parked state, returning
// that epoch's Result. The returned Result's message and flush counts
// are per-epoch (work this Apply caused), not cumulative. Concurrency:
// Apply claims the session exclusively; a second Apply (or a parked
// membership fence) racing it returns ErrSessionBusy rather than
// queueing, and an Apply racing Close returns ErrSessionClosed.
func (s *Session) Apply(mut Mutation) (*Result, error) {
	if !s.cfg.Mode.MRA() {
		return nil, fmt.Errorf("runtime: naive evaluation re-derives from scratch and cannot re-fixpoint incrementally; use an MRA mode")
	}
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	// From here the calling goroutine is the exclusive busy holder: it
	// is the only writer of fleet state (Close waits the claim out), so
	// unlocked reads of fleetDown/mutEpoch/engEpoch below are race-free.
	if s.fleetDown {
		return nil, fmt.Errorf("runtime: session fleet is stopped (the initial fixpoint did not park)")
	}
	start := time.Now()

	// Compiler-side delta: mutate the EDB (graph, derived relations,
	// attribute columns, ΔX¹) and compute the reseed/invalidation work.
	// The fleet is parked, so the in-place CSR rebuild and the acc scans
	// below are race-free. A validation error leaves the EDB untouched
	// and the session usable.
	refix, err := s.plan.ApplyMutation(mut, s.rangeAcc)
	if err != nil {
		return nil, err
	}
	s.bumpMutEpoch()
	s.log.Append(s.mutEpoch, edb.GraphMutation{
		Pred:    s.plan.JoinPredicate(),
		Inserts: mut.Inserts,
		Deletes: mut.Deletes,
	})

	// Deletion invalidation: erase every key whose lo-component lies in
	// the over-approximate cone R, then rebuild each worker's exact Σacc
	// (Invalidate bypasses the monotone fold the running sum tracks).
	if refix.InvalidateLo != nil {
		inR := refix.InvalidateLo
		var doomed []int64
		for _, w := range s.workers {
			if w == nil {
				continue
			}
			doomed = doomed[:0]
			w.table.RangeRows(func(k int64, _, _ float64) bool {
				lo := k
				if s.plan.PairKeys {
					_, lo = compiler.DecodePair(k)
				}
				if lo >= 0 && lo < int64(len(inR)) && inR[lo] {
					doomed = append(doomed, k)
				}
				return true
			})
			for _, k := range doomed {
				w.table.Invalidate(k)
			}
			s.m.met.invalidateKeys.Add(uint64(len(doomed)))
			w.resyncAccSum()
		}
	}

	// Reseed: fold the correction ΔX¹ into the owners' shards (current
	// membership's routing — after a scale event the owner may not be the
	// static modulo slot). The folds mark the rows dirty, which is
	// exactly the next epoch's frontier.
	if route := s.liveRoute(); route != nil {
		for _, kv := range refix.Reseed {
			s.workers[route.owner(kv.K)].table.FoldDelta(kv.K, kv.V)
		}
	}
	s.m.met.reseedKeys.Add(uint64(len(refix.Reseed)))

	// Stamp the new mutation-log position into the workers (their
	// mid-fixpoint snapshots carry it) and write the park-boundary
	// checkpoint: a consistent view of "mutation applied, re-fixpoint
	// pending" that restores by simply running to convergence. Elastic
	// fleets skip the checkpoint: its per-slot shards are only restorable
	// under the ownership ring they were written with.
	for _, w := range s.workers {
		if w != nil {
			w.mutEpoch = s.mutEpoch
		}
	}
	if s.cfg.SnapshotDir != "" && !s.cfg.Elastic {
		s.writeParkCheckpoint()
	}

	// One more epoch: wake the fleet and run the termination protocol.
	s.bumpEngEpoch()
	s.m.epoch = s.engEpoch
	s.m.bcast(transport.Message{Kind: transport.EpochStart, Round: s.engEpoch})
	s.m.run()
	res, err := s.finishEpoch(start)
	if err != nil {
		s.fail(err)
		return nil, err
	}
	if !s.m.parked {
		// Crash injection, iteration cap, or wall clock: the master
		// stopped the fleet, so the warm state is gone. Poison the
		// session; recovery is Close + Open(RestoreDir) + log replay.
		s.setResult(s.collect(time.Since(start)))
		err := fmt.Errorf("runtime: session epoch %d stopped without converging (crash, iteration cap, or wall-clock limit)", s.engEpoch)
		s.fail(err)
		return nil, err
	}
	s.setResult(res)
	return res, nil
}

// rangeAcc is the AccRanger the compiler's delta computation scans the
// distributed table with: every non-identity accumulation across all
// shards. Only sound while the fleet is parked.
func (s *Session) rangeAcc(f func(key int64, acc float64)) {
	for _, w := range s.workers {
		if w == nil {
			continue
		}
		w.table.Range(func(k int64, v float64) bool {
			f(k, v)
			return true
		})
	}
}

// liveRoute returns a current member's route — every member holds an
// identical one after a fence, so any will do for session-side routing
// decisions (Apply reseeds). nil only if the fleet is empty.
func (s *Session) liveRoute() *shardRoute {
	for _, w := range s.workers {
		if w != nil && !w.retired {
			return w.route
		}
	}
	return nil
}

// finishEpoch classifies how m.run() ended. It returns an error only
// for fleet-level failures (dead transport, lost worker); a merely
// unconverged stop returns the collected Result with Converged=false
// (callers decide whether that poisons the session).
func (s *Session) finishEpoch(start time.Time) (*Result, error) {
	elapsed := time.Since(start)
	if !s.m.parked {
		// The master stopped the fleet (completion without park is the
		// naive path; otherwise crash/cap/wall) — or lost it. Wait for
		// the goroutines so the counters below are settled.
		s.wg.Wait()
		s.setFleetDown()
		for _, w := range s.workers {
			if w != nil && w.sendErr != nil {
				return nil, fmt.Errorf("runtime: worker %d send failed: %w", w.id, w.sendErr)
			}
		}
		if s.m.err != nil {
			return nil, s.m.err
		}
	}
	return s.collect(elapsed), nil
}

// collect snapshots the fleet's state into a Result. Safe either after
// the workers exited (fleetDown) or while they are parked (the ParkDone
// collect's happens-before edges cover every counter and table write).
func (s *Session) collect(elapsed time.Duration) *Result {
	res := &Result{
		Values:    map[int64]float64{},
		Rounds:    s.m.rounds,
		Elapsed:   elapsed,
		Converged: s.m.converged,
		Master:    s.m.met.reg.Snapshot(),
	}
	var sent, recv, flushes int64
	for _, w := range s.workers {
		if w == nil {
			continue
		}
		sent += w.sent
		recv += w.recv
		flushes += w.flushes
		res.Workers = append(res.Workers, w.stats())
		w.table.Range(func(k int64, v float64) bool {
			res.Values[k] = v
			return true
		})
	}
	res.MessagesSent = sent - s.prevSent
	res.MessagesRecv = recv - s.prevRecv
	res.Flushes = flushes - s.prevFlush
	s.prevSent, s.prevRecv, s.prevFlush = sent, recv, flushes
	return res
}

// writeParkCheckpoint saves every shard at the park boundary, stamped
// with the mutation-log position just applied. The epoch stamp is kept
// above every snapshot the fleet has written so far (BSP barrier
// rounds, episode numbers, async pass counts), so LoadAll's newest-wins
// selection prefers it; the Cut flag matches the kind the mode's
// mid-fixpoint snapshots use, because LoadAll refuses directories that
// mix kinds. Best-effort, like every other snapshot path: durability
// must never fail the run.
func (s *Session) writeParkCheckpoint() {
	cut := modeBarriered[s.cfg.Mode] || !s.plan.Op.Selective()
	e := s.ckptEpoch + 1
	for _, w := range s.workers {
		if w == nil {
			continue
		}
		if w.rounds >= e {
			e = w.rounds + 1
		}
		if int(w.passes) >= e {
			e = int(w.passes) + 1
		}
		if w.staleEpoch >= e {
			e = w.staleEpoch + 1
		}
	}
	if s.m.episodes >= e {
		e = s.m.episodes + 1
	}
	s.ckptEpoch = e
	for _, w := range s.workers {
		if w == nil {
			continue
		}
		var rows []ckpt.Row
		w.table.RangeRows(func(k int64, acc, inter float64) bool {
			rows = append(rows, ckpt.Row{Key: k, Acc: acc, Inter: inter})
			return true
		})
		meta := ckpt.Meta{Epoch: e, Worker: w.id, Workers: len(s.workers), Cut: cut, MutEpoch: s.mutEpoch}
		_ = ckpt.SaveShard(s.cfg.SnapshotDir, meta, rows)
		// Keep the worker's own stale-snapshot clock at or above this
		// stamp so its later local snapshots sort newer, not older.
		if w.staleEpoch < e {
			w.staleEpoch = e
		}
	}
}

// fail records the first sticky error and stops the fleet if it is
// still up. Called only by the busy holder; the field writes go through
// mu for the concurrent accessors' benefit.
func (s *Session) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	down := s.fleetDown
	s.mu.Unlock()
	if !down {
		s.m.bcast(transport.Message{Kind: transport.Stop})
		s.wg.Wait()
		s.setFleetDown()
	}
}

// ---------------------------------------------------------------------
// Membership lifecycle (membership.go, DESIGN.md §11). These callbacks
// run on the goroutine executing m.run — the session goroutine — so
// they access session state without locks.
// ---------------------------------------------------------------------

// spawnInto stands up a fresh worker in slot id on a reset transport
// endpoint, gated on the admission fence. The endpoint reset fences off
// the slot's previous incarnation (a stale conn can no longer send) and
// gives the replacement a clean inbox that never saw its own Orphan.
func (s *Session) spawnInto(id int) *worker {
	conn := s.net.ResetConn(id)
	w := newWorker(id, s.cfg, s.plan, s.cfg.Fault.Wrap(conn))
	w.joinGate = true
	w.reborn = true // a crashw= injection must not kill the replacement too
	w.mutEpoch = s.mutEpoch
	w.curEpoch = s.engEpoch
	w.epochGo = s.engEpoch
	w.staleEpoch = s.ckptEpoch
	if s.m.parked {
		// Spawned between fixpoints: park right after admission instead
		// of computing into a parked fleet.
		w.parkEpoch = s.engEpoch
	}
	if s.cfg.Elastic {
		// Adopt the current membership (a scale-out newcomer is absent
		// from it here; it adds itself at the fence, like every survivor).
		w.route.set(s.m.live)
	}
	s.workers[id] = w
	return w
}

func (s *Session) startSpawned(w *worker) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		w.run()
	}()
}

// respawnWorker replaces crashed worker id and picks the fence's
// rollback directive (see worker.repairState): selective aggregates keep
// state and replay (warm-starting the replacement from its newest
// own-shard snapshot when one matches the mutation epoch); combining
// aggregates rewind the fleet to the newest consistent cut, or to the
// ΔX¹ seed when no cut exists but no mutations have been applied either.
// ok=false falls back to the abort path: combining with no usable cut
// after mutations (the seed is no longer the true initial state), or any
// combining loss after a scale event (checkpoint shards are only
// restorable under the ownership ring they were written with).
func (s *Session) respawnWorker(id int) (int64, bool) {
	rollback := int64(0)
	var warm []ckpt.Row
	if !s.plan.Op.Selective() {
		if s.scaled {
			return 0, false
		}
		switch {
		case s.cfg.SnapshotDir == "":
			if s.mutEpoch != 0 {
				return 0, false
			}
			rollback = -1
		default:
			if s.fenceRelease == nil {
				// Pin the checkpoint directory across the fence so the
				// epoch chosen here cannot be pruned before the last
				// worker reloads it.
				if rel, err := ckpt.AcquireReadLease(s.cfg.SnapshotDir); err == nil {
					s.fenceRelease = rel
				}
			}
			_, meta, err := ckpt.LoadAll(s.cfg.SnapshotDir)
			switch {
			case err == nil && meta.Cut && meta.MutEpoch == s.mutEpoch:
				rollback = int64(meta.Epoch)
			case s.mutEpoch == 0:
				rollback = -1
			default:
				s.fenceReleased()
				return 0, false
			}
		}
	} else if s.cfg.SnapshotDir != "" {
		if rows, meta, err := ckpt.NewestShard(s.cfg.SnapshotDir, id); err == nil && meta.MutEpoch == s.mutEpoch {
			warm = rows
		}
	}
	w := s.spawnInto(id)
	if rollback == 0 {
		// Selective: seed the replacement's share of ΔX¹ and shortcut
		// re-derivation with the warm shard (folded as plain deltas —
		// Theorem 3 makes stale state safe). Survivors replay boundary
		// contributions at the fence; the rest re-derives locally.
		w.seed(s.plan.InitMRA)
		if warm != nil {
			w.restoreStale(warm)
		}
	}
	s.startSpawned(w)
	return rollback, true
}

// admitWorker stands up a brand-new worker for scale-out. It gets no
// seed: every row it will own under the new ring lives in a survivor's
// shard and arrives through the fence's Handoff migration (re-seeding
// would double-count combining aggregates).
func (s *Session) admitWorker(id int) bool {
	if s.fleetDown || s.workers[id] != nil {
		return false
	}
	s.scaled = true
	s.startSpawned(s.spawnInto(id))
	return true
}

// retireWorker drops a slot after scale-in: the worker retired itself at
// the fence (migrated its shard out, then stopped).
func (s *Session) retireWorker(id int) {
	s.scaled = true
	s.workers[id] = nil
}

// fenceReleased runs after every successful fence (and on recovery
// bail-out): drop the checkpoint read lease and rebase the per-epoch
// traffic baselines — the fence zeroed the fleet's counters.
func (s *Session) fenceReleased() {
	if s.fenceRelease != nil {
		s.fenceRelease()
		s.fenceRelease = nil
	}
	s.prevSent, s.prevRecv, s.prevFlush = 0, 0, 0
}

// AddWorker grows an elastic fleet by one worker and returns its slot
// id. Safe to call from any goroutine: while a fixpoint is running the
// command is queued and the master fences it in between poll rounds;
// with the fleet parked the caller claims the session and drives the
// fence directly (a concurrent Apply or second fence gets
// ErrSessionBusy). Requires Config.Elastic.
func (s *Session) AddWorker() (int, error) {
	return s.memberChange(memberCmd{add: true})
}

// RemoveWorker retires worker id from an elastic fleet, migrating its
// shard to the survivors. Concurrency contract as AddWorker.
func (s *Session) RemoveWorker(id int) error {
	_, err := s.memberChange(memberCmd{id: id})
	return err
}

func (s *Session) memberChange(cmd memberCmd) (int, error) {
	if !s.cfg.Elastic {
		return -1, fmt.Errorf("runtime: membership changes need Config.Elastic")
	}
	cmd.reply = make(chan memberCmdResult, 1)
	s.mu.Lock()
	if s.closing || s.closed {
		s.mu.Unlock()
		return -1, ErrSessionClosed
	}
	if err := s.err; err != nil {
		s.mu.Unlock()
		return -1, err
	}
	if s.busy {
		// A fixpoint (or fence) is in flight: queue the command and let
		// the master fence it in between poll rounds. Enqueueing under mu
		// while busy is what guarantees an answer — the busy holder's
		// end() drains the queue after the master's own deferred drain.
		select {
		case s.m.cmds <- cmd:
		default:
			s.mu.Unlock()
			return -1, fmt.Errorf("runtime: membership command queue is full")
		}
		s.mu.Unlock()
		select {
		case r := <-cmd.reply:
			return r.id, r.err
		case <-time.After(s.cfg.MaxWall + 5*time.Second):
			// end()'s drain rejects queued commands, so this only fires
			// if the master itself wedged past its own wall clock.
			return -1, fmt.Errorf("runtime: membership change timed out")
		}
	}
	if s.fleetDown {
		s.mu.Unlock()
		return -1, fmt.Errorf("runtime: session fleet is stopped")
	}
	// Parked fleet: claim the session and drive the fence synchronously
	// on this goroutine. Workers join it from their parked inbox wait.
	s.busy = true
	s.mu.Unlock()
	defer s.end()
	if !s.m.applyMemberCmd(cmd) {
		s.fail(s.m.err)
	}
	r := <-cmd.reply
	if cmd.add && r.err == nil && !s.fleetDown {
		// The newcomer still has to complete its park handshake against
		// the parked survivors; only after its ParkDone is the fleet
		// quiescent for the next Apply's table reads and writes.
		if !s.m.awaitParkDone(r.id) {
			s.fail(s.m.err)
			return r.id, s.Err()
		}
	}
	return r.id, r.err
}

// teardown releases everything; used by Open's error path and Close.
// The caller must hold the exclusive claim (Open's construction path or
// Close's closing flag), so no other operation is touching the fleet.
func (s *Session) teardown() {
	if s.fenceRelease != nil {
		s.fenceRelease()
		s.fenceRelease = nil
	}
	s.mu.Lock()
	down := s.fleetDown
	s.mu.Unlock()
	if !down {
		s.m.bcast(transport.Message{Kind: transport.Stop})
		s.wg.Wait()
		s.setFleetDown()
	}
	s.dump.close()
	s.net.Close()
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Close stops the parked fleet and releases the transport. Idempotent,
// and safe to call concurrently with Apply and membership changes: it
// commits to closing immediately — operations that arrive after Close
// has been called get ErrSessionClosed instead of queueing behind the
// teardown — and then waits for the one in-flight operation to finish
// (bounded by the wall budget) before tearing the fleet down. The
// commit-first order matters under contention: if Close merely waited
// for a busy-free window, callers re-claiming the session in a loop (a
// serving front end under load) could starve it indefinitely.
// Concurrent Closes wait for the first to complete. Close returns the
// first transport failure seen during shutdown, if any; the session's
// sticky epoch error is reported by Apply/Err, not here.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	if s.closing {
		// Another Close owns the teardown; wait for it to finish.
		for !s.closed {
			s.cond.Wait()
		}
		s.mu.Unlock()
		return nil
	}
	s.closing = true // from here every new begin()/memberChange is rejected
	for s.busy {
		s.cond.Wait()
	}
	s.mu.Unlock()
	s.teardown()
	for _, w := range s.workers {
		if w != nil && w.sendErr != nil {
			return fmt.Errorf("runtime: worker %d send failed: %w", w.id, w.sendErr)
		}
	}
	return nil
}

// Result returns the most recent fixpoint's Result (the initial one
// after Open, the latest Apply's afterwards). It never blocks behind a
// running Apply: mid-epoch it returns the previous epoch's Result, which
// is immutable after publication and safe to read without coordination.
func (s *Session) Result() *Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.res
}

// Epoch returns the number of fixpoints this session has computed; the
// initial fixpoint is epoch 1.
func (s *Session) Epoch() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engEpoch
}

// MutEpoch returns the mutation-log position the current state
// incorporates: 0 after a fresh Open, k after the k-th Apply, or the
// restored checkpoint's position after Open(RestoreDir) — the caller
// replays its own log entries past this point to catch up.
func (s *Session) MutEpoch() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mutEpoch
}

// Log returns the mutation log of this session's Applys (entries are
// stamped 1..MutEpoch; a restored session starts empty at the restored
// position). The log itself is appended to by Apply; read it only with
// the session quiescent (parked, poisoned, or closed).
func (s *Session) Log() *edb.MutationLog { return s.log }

// Err returns the session's sticky error, if an epoch failed.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
