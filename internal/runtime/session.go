package runtime

import (
	"fmt"
	"sync"
	"time"

	"powerlog/internal/ckpt"
	"powerlog/internal/compiler"
	"powerlog/internal/edb"
	"powerlog/internal/graph"
	"powerlog/internal/transport"
)

// Mutation is a batch of base-fact inserts and deletes against the
// session's join graph (re-exported from the compiler, which owns the
// delta computation).
type Mutation = compiler.Mutation

// Session is a long-lived engine instance (DESIGN.md §10): Open loads
// the EDB shards and computes the initial fixpoint, Apply folds a batch
// of base-fact insertions and deletions into the EDB and re-converges
// incrementally — without restarting workers or recomputing from
// scratch — and Close tears the fleet down. Between fixpoints the
// workers stay parked on their inboxes with their MonoTable shards
// warm; an Apply reseeds exactly the keys the mutation can affect (the
// compiler's ΔX¹ correction for combining aggregates, an invalidation
// cone plus boundary reseed for selective ones) and restarts the
// termination protocol for one more epoch.
//
// A Session is not safe for concurrent use: Open, Apply, Result, and
// Close must be called from one goroutine (the same goroutine runs the
// master's termination protocol inside Open and Apply).
//
// Error model: a mutation that fails validation (an edge outside the
// vertex universe) is rejected with the EDB untouched and the session
// still usable. A fixpoint that ends any other way than a clean park —
// an injected crash, a lost worker, the iteration cap, the wall clock —
// poisons the session: the error is sticky, every later Apply returns
// it, and the caller's recovery path is Close and re-Open (optionally
// from a RestoreDir checkpoint, replaying the mutation log past the
// snapshot's MutEpoch).
type Session struct {
	cfg     Config
	plan    *compiler.Plan
	net     *transport.ChannelNetwork
	workers []*worker
	m       *master
	wg      sync.WaitGroup
	dump    *metricsDumper

	// log records every applied mutation with its epoch; mutEpoch is the
	// log position the current table state incorporates (restored from
	// the checkpoint's MutEpoch when Open resumes from RestoreDir).
	// engEpoch counts fixpoints this session has computed (1 = initial).
	log      *edb.MutationLog
	mutEpoch int
	engEpoch int

	res       *Result
	err       error // sticky epoch failure; every later Apply returns it
	fleetDown bool  // worker goroutines have exited
	closed    bool

	// Cumulative worker counters at the last epoch boundary, so each
	// Result reports per-epoch message traffic.
	prevSent, prevRecv, prevFlush int64

	ckptEpoch int // monotone stamp for park-boundary checkpoints
}

// Open compiles nothing — the plan is already compiled — but stands up
// the worker fleet, seeds ΔX¹ (or restores a checkpoint), and runs the
// initial fixpoint. For MRA modes a converged fixpoint parks the fleet
// for later Applys; naive mode runs to completion (it cannot
// re-fixpoint incrementally) and only Result/Close are useful
// afterwards. Open returns an error for invalid configs, unrestorable
// checkpoints, and transport failures; a fixpoint that merely failed to
// converge (iteration cap, injected crash) still returns a Session so
// the caller can inspect the Result, but the session is poisoned for
// Apply.
func Open(plan *compiler.Plan, cfg Config) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if plan.Propagate == nil || plan.Op == nil {
		return nil, fmt.Errorf("runtime: plan is not compiled")
	}
	if !modeRegistered(cfg.Mode) {
		return nil, fmt.Errorf("runtime: mode %v has no registered policies", cfg.Mode)
	}
	if !cfg.Mode.MRA() && len(plan.BaseNaive) == 0 {
		return nil, fmt.Errorf("runtime: naive evaluation has no base tuples to derive from")
	}
	cfg = applyPriorityDefault(cfg, plan)

	// Load any restore state before standing up goroutines, so a
	// corrupt checkpoint fails cleanly.
	var restoreRows []ckpt.Row
	var restoreMeta ckpt.Meta
	restoring := false
	if cfg.Mode.MRA() && cfg.RestoreDir != "" {
		rows, meta, err := ckpt.LoadAll(cfg.RestoreDir)
		if err != nil {
			return nil, err
		}
		if !meta.Cut && !plan.Op.Selective() {
			return nil, fmt.Errorf("runtime: %s has only stale snapshots, which are safe to restore "+
				"only for selective aggregates (Theorem 3); combining aggregates need a consistent cut", cfg.RestoreDir)
		}
		restoreRows, restoreMeta, restoring = rows, meta, true
	}

	net := transport.NewChannelNetwork(cfg.Workers, 4096)
	workers := make([]*worker, cfg.Workers)
	for i := range workers {
		// Fault.Wrap is a no-op passthrough when no injector is set.
		workers[i] = newWorker(i, cfg, plan, cfg.Fault.Wrap(net.Conn(i)))
	}

	s := &Session{
		cfg:     cfg,
		plan:    plan,
		net:     net,
		workers: workers,
		log:     &edb.MutationLog{},
		engEpoch: 1,
	}

	// Seed state per mode: MRA folds ΔX¹ into the shards (or restores a
	// checkpoint); naive re-derives base tuples every round from each
	// worker's owned slice.
	if cfg.Mode.MRA() {
		switch {
		case restoring && restoreMeta.Cut:
			for _, w := range workers {
				w.restore(restoreRows)
			}
		case restoring:
			for _, w := range workers {
				w.seed(plan.InitMRA)
				w.restoreStale(restoreRows)
			}
		default:
			for _, w := range workers {
				w.seed(plan.InitMRA)
			}
		}
		if restoring {
			// Resume the mutation-log position the snapshot incorporates:
			// the caller replays its trailing log entries through Apply.
			s.mutEpoch = restoreMeta.MutEpoch
			for _, w := range workers {
				w.mutEpoch = restoreMeta.MutEpoch
			}
		}
	} else {
		for _, kv := range plan.BaseNaive {
			o := graph.Partition(kv.K, cfg.Workers)
			workers[o].ownBase = append(workers[o].ownBase, kv)
		}
	}

	s.m = newMaster(cfg, plan, net.Conn(transport.MasterID(cfg.Workers)))
	// Naive evaluation cannot park: its fixpoint is a full re-derivation,
	// so the initial run goes to completion and Apply stays rejected.
	s.m.park = cfg.Mode.MRA()
	s.dump = startMetricsDump(cfg, workers, s.m)

	start := time.Now()
	for _, w := range workers {
		s.wg.Add(1)
		go func(w *worker) {
			defer s.wg.Done()
			w.run()
		}(w)
	}
	s.m.run()
	res, err := s.finishEpoch(start)
	if err != nil {
		// Transport death or a lost worker: nothing to resume — tear
		// down fully so the caller doesn't have to Close a corpse.
		s.teardown()
		return nil, err
	}
	s.res = res
	return s, nil
}

// Apply folds a batch of base-fact changes into the EDB and converges
// to the mutated program's fixpoint from the parked state, returning
// that epoch's Result. The returned Result's message and flush counts
// are per-epoch (work this Apply caused), not cumulative.
func (s *Session) Apply(mut Mutation) (*Result, error) {
	if s.closed {
		return nil, fmt.Errorf("runtime: session is closed")
	}
	if s.err != nil {
		return nil, s.err
	}
	if !s.cfg.Mode.MRA() {
		return nil, fmt.Errorf("runtime: naive evaluation re-derives from scratch and cannot re-fixpoint incrementally; use an MRA mode")
	}
	if s.fleetDown {
		return nil, fmt.Errorf("runtime: session fleet is stopped (the initial fixpoint did not park)")
	}
	start := time.Now()

	// Compiler-side delta: mutate the EDB (graph, derived relations,
	// attribute columns, ΔX¹) and compute the reseed/invalidation work.
	// The fleet is parked, so the in-place CSR rebuild and the acc scans
	// below are race-free. A validation error leaves the EDB untouched
	// and the session usable.
	refix, err := s.plan.ApplyMutation(mut, s.rangeAcc)
	if err != nil {
		return nil, err
	}
	s.mutEpoch++
	s.log.Append(s.mutEpoch, edb.GraphMutation{
		Pred:    s.plan.JoinPredicate(),
		Inserts: mut.Inserts,
		Deletes: mut.Deletes,
	})

	// Deletion invalidation: erase every key whose lo-component lies in
	// the over-approximate cone R, then rebuild each worker's exact Σacc
	// (Invalidate bypasses the monotone fold the running sum tracks).
	if refix.InvalidateLo != nil {
		inR := refix.InvalidateLo
		var doomed []int64
		for _, w := range s.workers {
			doomed = doomed[:0]
			w.table.RangeRows(func(k int64, _, _ float64) bool {
				lo := k
				if s.plan.PairKeys {
					_, lo = compiler.DecodePair(k)
				}
				if lo >= 0 && lo < int64(len(inR)) && inR[lo] {
					doomed = append(doomed, k)
				}
				return true
			})
			for _, k := range doomed {
				w.table.Invalidate(k)
			}
			s.m.met.invalidateKeys.Add(uint64(len(doomed)))
			w.resyncAccSum()
		}
	}

	// Reseed: fold the correction ΔX¹ into the owners' shards. The folds
	// mark the rows dirty, which is exactly the next epoch's frontier.
	for _, kv := range refix.Reseed {
		s.workers[graph.Partition(kv.K, len(s.workers))].table.FoldDelta(kv.K, kv.V)
	}
	s.m.met.reseedKeys.Add(uint64(len(refix.Reseed)))

	// Stamp the new mutation-log position into the workers (their
	// mid-fixpoint snapshots carry it) and write the park-boundary
	// checkpoint: a consistent view of "mutation applied, re-fixpoint
	// pending" that restores by simply running to convergence.
	for _, w := range s.workers {
		w.mutEpoch = s.mutEpoch
	}
	if s.cfg.SnapshotDir != "" {
		s.writeParkCheckpoint()
	}

	// One more epoch: wake the fleet and run the termination protocol.
	s.engEpoch++
	s.m.epoch = s.engEpoch
	s.m.bcast(transport.Message{Kind: transport.EpochStart, Round: s.engEpoch})
	s.m.run()
	res, err := s.finishEpoch(start)
	if err != nil {
		s.fail(err)
		return nil, err
	}
	if !s.m.parked {
		// Crash injection, iteration cap, or wall clock: the master
		// stopped the fleet, so the warm state is gone. Poison the
		// session; recovery is Close + Open(RestoreDir) + log replay.
		res := s.collect(time.Since(start))
		s.res = res
		s.fail(fmt.Errorf("runtime: session epoch %d stopped without converging (crash, iteration cap, or wall-clock limit)", s.engEpoch))
		return nil, s.err
	}
	s.res = res
	return res, nil
}

// rangeAcc is the AccRanger the compiler's delta computation scans the
// distributed table with: every non-identity accumulation across all
// shards. Only sound while the fleet is parked.
func (s *Session) rangeAcc(f func(key int64, acc float64)) {
	for _, w := range s.workers {
		w.table.Range(func(k int64, v float64) bool {
			f(k, v)
			return true
		})
	}
}

// finishEpoch classifies how m.run() ended. It returns an error only
// for fleet-level failures (dead transport, lost worker); a merely
// unconverged stop returns the collected Result with Converged=false
// (callers decide whether that poisons the session).
func (s *Session) finishEpoch(start time.Time) (*Result, error) {
	elapsed := time.Since(start)
	if !s.m.parked {
		// The master stopped the fleet (completion without park is the
		// naive path; otherwise crash/cap/wall) — or lost it. Wait for
		// the goroutines so the counters below are settled.
		s.wg.Wait()
		s.fleetDown = true
		for _, w := range s.workers {
			if w.sendErr != nil {
				return nil, fmt.Errorf("runtime: worker %d send failed: %w", w.id, w.sendErr)
			}
		}
		if s.m.err != nil {
			return nil, s.m.err
		}
	}
	return s.collect(elapsed), nil
}

// collect snapshots the fleet's state into a Result. Safe either after
// the workers exited (fleetDown) or while they are parked (the ParkDone
// collect's happens-before edges cover every counter and table write).
func (s *Session) collect(elapsed time.Duration) *Result {
	res := &Result{
		Values:    map[int64]float64{},
		Rounds:    s.m.rounds,
		Elapsed:   elapsed,
		Converged: s.m.converged,
		Master:    s.m.met.reg.Snapshot(),
	}
	var sent, recv, flushes int64
	for _, w := range s.workers {
		sent += w.sent
		recv += w.recv
		flushes += w.flushes
		res.Workers = append(res.Workers, w.stats())
		w.table.Range(func(k int64, v float64) bool {
			res.Values[k] = v
			return true
		})
	}
	res.MessagesSent = sent - s.prevSent
	res.MessagesRecv = recv - s.prevRecv
	res.Flushes = flushes - s.prevFlush
	s.prevSent, s.prevRecv, s.prevFlush = sent, recv, flushes
	return res
}

// writeParkCheckpoint saves every shard at the park boundary, stamped
// with the mutation-log position just applied. The epoch stamp is kept
// above every snapshot the fleet has written so far (BSP barrier
// rounds, episode numbers, async pass counts), so LoadAll's newest-wins
// selection prefers it; the Cut flag matches the kind the mode's
// mid-fixpoint snapshots use, because LoadAll refuses directories that
// mix kinds. Best-effort, like every other snapshot path: durability
// must never fail the run.
func (s *Session) writeParkCheckpoint() {
	cut := modeBarriered[s.cfg.Mode] || !s.plan.Op.Selective()
	e := s.ckptEpoch + 1
	for _, w := range s.workers {
		if w.rounds >= e {
			e = w.rounds + 1
		}
		if int(w.passes) >= e {
			e = int(w.passes) + 1
		}
		if w.staleEpoch >= e {
			e = w.staleEpoch + 1
		}
	}
	if s.m.episodes >= e {
		e = s.m.episodes + 1
	}
	s.ckptEpoch = e
	for _, w := range s.workers {
		var rows []ckpt.Row
		w.table.RangeRows(func(k int64, acc, inter float64) bool {
			rows = append(rows, ckpt.Row{Key: k, Acc: acc, Inter: inter})
			return true
		})
		meta := ckpt.Meta{Epoch: e, Worker: w.id, Workers: len(s.workers), Cut: cut, MutEpoch: s.mutEpoch}
		_ = ckpt.SaveShard(s.cfg.SnapshotDir, meta, rows)
		// Keep the worker's own stale-snapshot clock at or above this
		// stamp so its later local snapshots sort newer, not older.
		if w.staleEpoch < e {
			w.staleEpoch = e
		}
	}
}

// fail records the first sticky error and stops the fleet if it is
// still up.
func (s *Session) fail(err error) {
	if s.err == nil {
		s.err = err
	}
	if !s.fleetDown {
		s.m.bcast(transport.Message{Kind: transport.Stop})
		s.wg.Wait()
		s.fleetDown = true
	}
}

// teardown releases everything; used by Open's error path and Close.
func (s *Session) teardown() {
	if !s.fleetDown {
		s.m.bcast(transport.Message{Kind: transport.Stop})
		s.wg.Wait()
		s.fleetDown = true
	}
	s.dump.close()
	s.net.Close()
	s.closed = true
}

// Close stops the parked fleet and releases the transport. Idempotent.
// It returns the first transport failure seen during shutdown, if any;
// the session's sticky epoch error is reported by Apply/Err, not here.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.teardown()
	for _, w := range s.workers {
		if w.sendErr != nil {
			return fmt.Errorf("runtime: worker %d send failed: %w", w.id, w.sendErr)
		}
	}
	return nil
}

// Result returns the most recent fixpoint's Result (the initial one
// after Open, the latest Apply's afterwards).
func (s *Session) Result() *Result { return s.res }

// Epoch returns the number of fixpoints this session has computed; the
// initial fixpoint is epoch 1.
func (s *Session) Epoch() int { return s.engEpoch }

// MutEpoch returns the mutation-log position the current state
// incorporates: 0 after a fresh Open, k after the k-th Apply, or the
// restored checkpoint's position after Open(RestoreDir) — the caller
// replays its own log entries past this point to catch up.
func (s *Session) MutEpoch() int { return s.mutEpoch }

// Log returns the mutation log of this session's Applys (entries are
// stamped 1..MutEpoch; a restored session starts empty at the restored
// position).
func (s *Session) Log() *edb.MutationLog { return s.log }

// Err returns the session's sticky error, if an epoch failed.
func (s *Session) Err() error { return s.err }
