package runtime

import (
	"math"
	"testing"
	"time"

	"powerlog/internal/edb"
	"powerlog/internal/gen"
	"powerlog/internal/progs"
	"powerlog/internal/ref"
)

// TestOrderedScanCorrect verifies the delta-stepping-style schedule is a
// pure optimisation: same fixpoint on every mode it applies to.
func TestOrderedScanCorrect(t *testing.T) {
	g := gen.Uniform(400, 2400, 80, 321)
	want := ref.Dijkstra(g, 0)
	for _, mode := range []Mode{MRASync, MRAAsync, MRASyncAsync} {
		db := edb.NewDB()
		db.SetGraph("edge", g)
		plan := compilePlan(t, progs.SSSP, db)
		res, err := Run(plan, Config{
			Workers:       3,
			Mode:          mode,
			OrderedScan:   true,
			Tau:           200 * time.Microsecond,
			CheckInterval: 300 * time.Microsecond,
			MaxWall:       30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("%v: did not converge", mode)
		}
		expectClose(t, mode, res.Values, want, math.Inf(1), 1e-9)
	}
}

// TestOrderedScanReducesRelaxations asserts the optimisation's point: on
// a weighted graph, best-first scheduling should not propagate more
// (usually far fewer) updates than arbitrary order under BSP.
func TestOrderedScanReducesRelaxations(t *testing.T) {
	g := gen.Uniform(2000, 16000, 100, 3231)
	run := func(ordered bool) int64 {
		db := edb.NewDB()
		db.SetGraph("edge", g)
		plan := compilePlan(t, progs.SSSP, db)
		res, err := Run(plan, Config{Workers: 3, Mode: MRASync, OrderedScan: ordered, MaxWall: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("did not converge")
		}
		return res.MessagesSent
	}
	unordered := run(false)
	ordered := run(true)
	t.Logf("relaxation messages: unordered=%d ordered=%d", unordered, ordered)
	if ordered > unordered*11/10 {
		t.Errorf("ordered scan sent more messages (%d) than unordered (%d)", ordered, unordered)
	}
}

// TestOrderedScanNoEffectOnSum documents that the schedule leaves
// combining aggregates untouched (sum folds are order-insensitive).
func TestOrderedScanNoEffectOnSum(t *testing.T) {
	g := gen.RMAT(8, 1200, 0, 17)
	want := ref.PageRank(g, 500, 1e-9)
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.PageRank, db)
	res, err := Run(plan, Config{Workers: 2, Mode: MRASync, OrderedScan: true, MaxWall: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	expectClose(t, MRASync, res.Values, want, math.NaN(), 2e-3)
}
