package runtime

import (
	"math"
	"sync"
	"testing"
	"time"

	"powerlog/internal/compiler"
	"powerlog/internal/edb"
	"powerlog/internal/gen"
	"powerlog/internal/progs"
	"powerlog/internal/transport"
)

// runOverTCP executes plan on a freshly wired TCP cluster (everything in
// one process, one endpoint per "node") and returns the merged result.
func runOverTCP(t *testing.T, newPlan func() *compiler.Plan, cfg Config, workers int) map[int64]float64 {
	t.Helper()
	boot := make([]string, workers+1)
	for i := range boot {
		boot[i] = "127.0.0.1:0"
	}
	eps := make([]*transport.TCPConn, workers+1)
	for i := range eps {
		c, err := transport.NewTCPEndpoint(i, workers, boot)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = c
		defer c.Close()
	}
	addrs := make([]string, workers+1)
	for i, c := range eps {
		addrs[i] = c.Addr()
	}
	for _, c := range eps {
		c.SetAddressBook(addrs)
	}

	results := make([]map[int64]float64, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			local, err := RunWorker(newPlan(), cfg, eps[i])
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			results[i] = local
		}(i)
	}
	rounds, converged, err := RunMaster(newPlan(), cfg, eps[workers])
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !converged || rounds == 0 {
		t.Fatalf("TCP run: converged=%v rounds=%d", converged, rounds)
	}
	merged := map[int64]float64{}
	for _, local := range results {
		for k, v := range local {
			merged[k] = v
		}
	}
	return merged
}

// TestCrossTransportEquivalence runs the same program once over the
// in-process channel network and once over TCP (binary codec, pooled
// batches crossing a real wire) and demands the same answer — once for a
// fixpoint program (SSSP/min) and once for an ε-limit program
// (PageRank/sum). This pins the codec and the recycle contract to the
// engine's actual semantics, not just message-level round-trips.
func TestCrossTransportEquivalence(t *testing.T) {
	cfg := Config{
		Mode:          MRASyncAsync,
		Tau:           300 * time.Microsecond,
		CheckInterval: 500 * time.Microsecond,
		MaxWall:       30 * time.Second,
	}

	t.Run("fixpoint/SSSP", func(t *testing.T) {
		g := gen.Uniform(250, 1500, 40, 23)
		newPlan := func() *compiler.Plan {
			db := edb.NewDB()
			db.SetGraph("edge", g)
			return compilePlan(t, progs.SSSP, db)
		}
		chanCfg := cfg
		chanCfg.Workers = 3
		chanRes, err := Run(newPlan(), chanCfg)
		if err != nil {
			t.Fatal(err)
		}
		if !chanRes.Converged {
			t.Fatal("channel run did not converge")
		}
		tcpRes := runOverTCP(t, newPlan, cfg, 3)
		compareResults(t, chanRes.Values, tcpRes, 1e-9)
	})

	t.Run("epsilon/PageRank", func(t *testing.T) {
		g := gen.RMAT(8, 1200, 0, 17)
		newPlan := func() *compiler.Plan {
			db := edb.NewDB()
			db.SetGraph("edge", g)
			return compilePlan(t, progs.PageRank, db)
		}
		chanCfg := cfg
		chanCfg.Workers = 3
		chanRes, err := Run(newPlan(), chanCfg)
		if err != nil {
			t.Fatal(err)
		}
		if !chanRes.Converged {
			t.Fatal("channel run did not converge")
		}
		tcpRes := runOverTCP(t, newPlan, cfg, 3)
		// Both runs chase the same limit under the program's ε; they stop
		// at slightly different partial sums, so compare to ε order.
		compareResults(t, chanRes.Values, tcpRes, 1e-3)
	})
}

// compareResults checks the two transports produced the same keys and
// values to within tol (relative for large values).
func compareResults(t *testing.T, a, b map[int64]float64, tol float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Errorf("result sizes differ: channel %d keys, tcp %d keys", len(a), len(b))
	}
	errs := 0
	for k, av := range a {
		bv, ok := b[k]
		if !ok {
			errs++
			if errs <= 5 {
				t.Errorf("key %d present on channel, absent on tcp", k)
			}
			continue
		}
		scale := math.Max(1, math.Abs(av))
		if math.Abs(av-bv) > tol*scale {
			errs++
			if errs <= 5 {
				t.Errorf("key %d: channel %v, tcp %v", k, av, bv)
			}
		}
	}
	if errs > 0 {
		t.Fatalf("%d cross-transport mismatches", errs)
	}
}
