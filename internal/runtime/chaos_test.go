package runtime

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"powerlog/internal/ckpt"
	"powerlog/internal/compiler"
	"powerlog/internal/edb"
	"powerlog/internal/fault"
	"powerlog/internal/gen"
	"powerlog/internal/progs"
	"powerlog/internal/ref"
	"powerlog/internal/transport"
)

// The chaos suite replays the oracle algorithm suite under injected
// faults and asserts every run still converges to the fault-free
// fixpoint. Fault specs are fixed-seed (fault decisions are a pure
// function of seed, site, link, and event index — fault package), so a
// failure reproduces from the spec string in the test name.

// chaosModes are the evaluation modes the chaos matrix exercises: one
// BSP mode (barrier/verdict protocol), the unified async default, and
// SSP (staleness gate) — one representative per synchronisation family.
var chaosModes = []Mode{MRASync, MRASyncAsync, MRASSP}

type chaosAlgo struct {
	name      string
	selective bool // drives which fault classes are sound (dup needs idempotent folds)
	short     bool // part of the -short subset
	src       string
	setup     func(db *edb.DB)
	check     func(t *testing.T, mode Mode, got map[int64]float64)
}

// chaosAlgos mirrors the 12-algorithm oracle suite on smaller fixtures
// (the matrix multiplies by modes and fault classes).
func chaosAlgos() []chaosAlgo {
	algos := make([]chaosAlgo, 0, 12)
	add := func(a chaosAlgo) { algos = append(algos, a) }

	{
		g := gen.Uniform(200, 1200, 50, 11)
		want := ref.Dijkstra(g, 0)
		add(chaosAlgo{
			name: "sssp", selective: true, short: true, src: progs.SSSP,
			setup: func(db *edb.DB) { db.SetGraph("edge", g) },
			check: func(t *testing.T, mode Mode, got map[int64]float64) {
				expectClose(t, mode, got, want, math.Inf(1), 1e-9)
			},
		})
	}
	{
		g := gen.RMAT(8, 1000, 0, 13)
		want := ref.MinLabelPropagation(g)
		add(chaosAlgo{
			name: "cc", selective: true, short: true, src: progs.CC,
			setup: func(db *edb.DB) { db.SetGraph("edge", g) },
			check: func(t *testing.T, mode Mode, got map[int64]float64) {
				expectClose(t, mode, got, want, math.Inf(1), 0)
			},
		})
	}
	{
		g := gen.RMAT(7, 600, 0, 17)
		want := ref.PageRank(g, 500, 1e-9)
		add(chaosAlgo{
			name: "pagerank", short: true, src: progs.PageRank,
			setup: func(db *edb.DB) { db.SetGraph("edge", g) },
			check: func(t *testing.T, mode Mode, got map[int64]float64) {
				expectClose(t, mode, got, want, math.NaN(), 5e-3)
			},
		})
	}
	{
		g := gen.Uniform(150, 750, 0, 19)
		want := ref.Katz(g, 0, 10000, 500, 1e-9)
		add(chaosAlgo{
			name: "katz", src: progs.Katz,
			setup: func(db *edb.DB) { db.SetGraph("edge", g) },
			check: func(t *testing.T, mode Mode, got map[int64]float64) {
				for v, w := range want {
					if w == 0 {
						continue
					}
					if math.Abs(got[int64(v)]-w) > 1e-2*math.Max(1, math.Abs(w)) {
						t.Fatalf("%v: katz[%d] = %v, want %v", mode, v, got[int64(v)], w)
					}
				}
			},
		})
	}
	{
		g := gen.Uniform(120, 720, 1, 23)
		gen.NormalizeWeightsByOut(g, 1)
		n := g.NumVertices()
		pi := gen.VertexAttr(n, 0.1, 0.5, 41)
		pc := gen.VertexAttr(n, 0.2, 0.8, 42)
		inj := make([]float64, n)
		for i := range inj {
			inj[i] = 1
		}
		want := ref.Adsorption(g, inj, pi, pc, 800, 1e-10)
		add(chaosAlgo{
			name: "adsorption", src: progs.Adsorption,
			setup: func(db *edb.DB) {
				db.SetGraph("A", g)
				piRel := edb.NewRelation("pi", 2)
				pcRel := edb.NewRelation("pc", 2)
				for v := 0; v < n; v++ {
					piRel.Add(float64(v), pi[v])
					pcRel.Add(float64(v), pc[v])
				}
				db.AddRelation(piRel)
				db.AddRelation(pcRel)
			},
			check: func(t *testing.T, mode Mode, got map[int64]float64) {
				expectClose(t, mode, got, want, math.NaN(), 5e-3)
			},
		})
	}
	{
		g := gen.Uniform(120, 720, 1, 29)
		gen.NormalizeWeightsByOut(g, 1)
		n := g.NumVertices()
		initial := gen.VertexAttr(n, 0.1, 1, 51)
		h := gen.VertexAttr(n, 0.2, 0.9, 52)
		want := ref.BeliefPropagation(g, initial, h, 800, 1e-10)
		add(chaosAlgo{
			name: "bp", src: progs.BP,
			setup: func(db *edb.DB) {
				db.SetGraph("E", g)
				iRel := edb.NewRelation("I", 2)
				hRel := edb.NewRelation("H", 2)
				for v := 0; v < n; v++ {
					iRel.Add(float64(v), initial[v])
					hRel.Add(float64(v), h[v])
				}
				db.AddRelation(iRel)
				db.AddRelation(hRel)
			},
			check: func(t *testing.T, mode Mode, got map[int64]float64) {
				expectClose(t, mode, got, want, math.NaN(), 5e-3)
			},
		})
	}
	{
		g := gen.DAG(200, 2.5, 30, 0, 31)
		want := ref.DAGPathCount(g, 0)
		add(chaosAlgo{
			name: "paths", src: progs.PathsDAG,
			setup: func(db *edb.DB) { db.SetGraph("dagedge", g) },
			check: func(t *testing.T, mode Mode, got map[int64]float64) {
				expectClose(t, mode, got, want, 0, 1e-9)
			},
		})
	}
	{
		g := gen.DAG(150, 2, 20, 10, 37)
		want := ref.DAGPathWeightSum(g)
		add(chaosAlgo{
			name: "cost", src: progs.Cost,
			setup: func(db *edb.DB) { db.SetGraph("dagedge", g) },
			check: func(t *testing.T, mode Mode, got map[int64]float64) {
				for v, w := range want {
					if w == 0 {
						continue
					}
					if math.Abs(got[int64(v)]-w) > 1e-6*math.Max(1, math.Abs(w)) {
						t.Fatalf("%v: cost[%d] = %v, want %v", mode, v, got[int64(v)], w)
					}
				}
			},
		})
	}
	{
		g := gen.Trellis(10, 5, 43)
		want := ref.ViterbiDP(g, 0)
		add(chaosAlgo{
			name: "viterbi", selective: true, short: true, src: progs.Viterbi,
			setup: func(db *edb.DB) { db.SetGraph("trans", g) },
			check: func(t *testing.T, mode Mode, got map[int64]float64) {
				expectClose(t, mode, got, want, 0, 1e-9)
			},
		})
	}
	{
		g := gen.Uniform(150, 600, 0, 47)
		want := ref.BFSDepth(g, 5)
		add(chaosAlgo{
			name: "lca", selective: true, src: progs.LCA,
			setup: func(db *edb.DB) { db.SetGraph("parent", g) },
			check: func(t *testing.T, mode Mode, got map[int64]float64) {
				expectClose(t, mode, got, want, math.Inf(1), 1e-9)
			},
		})
	}
	{
		g := gen.Uniform(40, 260, 20, 53)
		want := ref.FloydWarshall(g)
		add(chaosAlgo{
			name: "apsp", selective: true, src: progs.APSP,
			setup: func(db *edb.DB) { db.SetGraph("edge", g) },
			check: func(t *testing.T, mode Mode, got map[int64]float64) {
				for i := range want {
					for j := range want[i] {
						w := want[i][j]
						key := compiler.EncodePair(int64(i), int64(j))
						gv, ok := got[key]
						if math.IsInf(w, 1) {
							if ok {
								t.Fatalf("%v: pair (%d,%d) should be absent, got %v", mode, i, j, gv)
							}
							continue
						}
						if !ok || math.Abs(gv-w) > 1e-9 {
							t.Fatalf("%v: apsp[%d,%d] = %v (ok=%v), want %v", mode, i, j, gv, ok, w)
						}
					}
				}
			},
		})
	}
	{
		g := gen.Uniform(150, 900, 1, 59)
		gen.NormalizeWeightsByOut(g, 1)
		c := make([]float64, g.NumVertices())
		c[0] = 1
		want := ref.LinearLimit(g, func(src, e int32) float64 { return 0.8 * g.Weight(e) }, c, 800, 1e-10)
		add(chaosAlgo{
			name: "simrank", src: progs.SimRank,
			setup: func(db *edb.DB) { db.SetGraph("pairedge", g) },
			check: func(t *testing.T, mode Mode, got map[int64]float64) {
				expectClose(t, mode, got, want, 0, 5e-3)
			},
		})
	}
	return algos
}

// chaosClass is one fault class of the matrix.
type chaosClass struct {
	name, spec string
}

// chaosClasses are the fault classes of the matrix. Duplicate delivery
// is injected only for selective aggregates — their folds are idempotent
// (Theorem 3's replay tolerance), while a duplicated sum delta would
// genuinely change a combining result, so there is nothing to recover.
// It runs under every chaos mode: per-link sequence numbers let the
// receiver count each batch exactly once (worker.go), so the polling
// master's quiescence test (Σsent == Σrecv) stays sound even when the
// wire re-delivers.
func chaosClasses(selective bool) []chaosClass {
	classes := []chaosClass{
		{name: "stall", spec: "seed=1,stall=4:300us"},
		{name: "dropend", spec: "seed=2,dropend=0.25"},
		{name: "flaky", spec: "seed=3,sendfail=0.15,delay=0.1:100us"},
		{name: "partition", spec: "seed=4,partition=0-1:20:120"},
		{name: "mrestart", spec: "seed=5,mrestart=3"},
	}
	if selective {
		classes = append(classes, chaosClass{name: "dup", spec: "seed=6,sendfail=0.1,dup=0.2"})
	}
	return classes
}

// chaosRun is runMode plus a fault spec and optional config tweaks.
func chaosRun(t *testing.T, plan *compiler.Plan, mode Mode, spec string, tweak func(*Config)) (*Result, error) {
	t.Helper()
	fs, err := fault.ParseSpec(spec)
	if err != nil {
		t.Fatalf("spec %q: %v", spec, err)
	}
	cfg := Config{
		Workers:       4,
		Mode:          mode,
		Tau:           200 * time.Microsecond,
		CheckInterval: 300 * time.Microsecond,
		MaxWall:       30 * time.Second,
		Fault:         fault.New(fs),
	}
	if tweak != nil {
		tweak(&cfg)
	}
	return Run(plan, cfg)
}

// TestChaosMatrix: every algorithm x every mode x every fault class must
// converge to the fault-free fixpoint. -short runs a 4-algorithm subset.
func TestChaosMatrix(t *testing.T) {
	for _, algo := range chaosAlgos() {
		if testing.Short() && !algo.short {
			continue
		}
		for _, mode := range chaosModes {
			for _, class := range chaosClasses(algo.selective) {
				t.Run(fmt.Sprintf("%s/%v/%s", algo.name, mode, class.name), func(t *testing.T) {
					db := edb.NewDB()
					algo.setup(db)
					plan := compilePlan(t, algo.src, db)
					res, err := chaosRun(t, plan, mode, class.spec, nil)
					if err != nil {
						t.Fatal(err)
					}
					if !res.Converged {
						t.Fatalf("did not converge under %q (rounds=%d)", class.spec, res.Rounds)
					}
					algo.check(t, mode, res.Values)
				})
			}
		}
	}
}

// TestChaosCrashRestore is the crash/restore drill in every mode, on one
// selective algorithm (SSSP — local stale snapshots in async/SSP modes)
// and one combining algorithm (PageRank — barrier cuts in BSP, marker
// episodes in async/SSP): run with checkpointing and a master that
// aborts mid-run, then restart from the snapshot directory and require
// the fault-free fixpoint.
func TestChaosCrashRestore(t *testing.T) {
	ssspG := gen.Uniform(200, 1200, 50, 11)
	ssspWant := ref.Dijkstra(ssspG, 0)
	prG := gen.RMAT(7, 600, 0, 17)
	prWant := ref.PageRank(prG, 500, 1e-9)
	cases := []struct {
		name  string
		src   string
		graph string
		setup func(db *edb.DB)
		check func(t *testing.T, mode Mode, got map[int64]float64)
	}{
		{
			name: "sssp", src: progs.SSSP,
			setup: func(db *edb.DB) { db.SetGraph("edge", ssspG) },
			check: func(t *testing.T, mode Mode, got map[int64]float64) {
				expectClose(t, mode, got, ssspWant, math.Inf(1), 1e-9)
			},
		},
		{
			name: "pagerank", src: progs.PageRank,
			setup: func(db *edb.DB) { db.SetGraph("edge", prG) },
			check: func(t *testing.T, mode Mode, got map[int64]float64) {
				expectClose(t, mode, got, prWant, math.NaN(), 5e-3)
			},
		},
	}
	for _, mode := range chaosModes {
		for _, c := range cases {
			t.Run(fmt.Sprintf("%s/%v", c.name, mode), func(t *testing.T) {
				dir := t.TempDir()
				db := edb.NewDB()
				c.setup(db)
				plan := compilePlan(t, c.src, db)
				res, err := chaosRun(t, plan, mode, "seed=7,crash=6", func(cfg *Config) {
					cfg.SnapshotDir = dir
					cfg.SnapshotEvery = 1
				})
				if err != nil {
					t.Fatal(err)
				}
				// The run usually dies at the injected crash; if the small
				// fixture beat the crash round, the restart below still
				// exercises restore-from-final-state.
				if res.Converged {
					t.Logf("converged before the injected crash (rounds=%d)", res.Rounds)
				}
				res2, err := chaosRun(t, plan, mode, "", func(cfg *Config) {
					cfg.RestoreDir = dir
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res2.Converged {
					t.Fatal("restored run did not converge")
				}
				c.check(t, mode, res2.Values)
			})
		}
	}
}

// TestAsyncCheckpointRoundTrip: the async family and SSP write restorable
// snapshots now, not just MRASync. Selective programs take uncoordinated
// stale snapshots; combining programs run the master-driven marker
// episode and must produce consistent-cut shards.
func TestAsyncCheckpointRoundTrip(t *testing.T) {
	g := gen.Uniform(200, 1200, 50, 11)
	want := ref.Dijkstra(g, 0)
	prG := gen.RMAT(7, 600, 0, 17)
	prWant := ref.PageRank(prG, 500, 1e-9)
	for _, mode := range []Mode{MRASyncAsync, MRASSP} {
		t.Run(fmt.Sprintf("stale-sssp/%v", mode), func(t *testing.T) {
			dir := t.TempDir()
			db := edb.NewDB()
			db.SetGraph("edge", g)
			plan := compilePlan(t, progs.SSSP, db)
			res, err := chaosRun(t, plan, mode, "", func(cfg *Config) {
				cfg.SnapshotDir = dir
				cfg.SnapshotEvery = 2
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatal("snapshotting run did not converge")
			}
			_, meta, err := ckpt.LoadAll(dir)
			if err != nil {
				t.Fatal(err)
			}
			if meta.Cut {
				t.Fatal("selective program should write stale snapshots, got a cut")
			}
			res2, err := chaosRun(t, plan, mode, "", func(cfg *Config) { cfg.RestoreDir = dir })
			if err != nil {
				t.Fatal(err)
			}
			if !res2.Converged {
				t.Fatal("restored run did not converge")
			}
			expectClose(t, mode, res2.Values, want, math.Inf(1), 1e-9)
		})
		t.Run(fmt.Sprintf("episode-pagerank/%v", mode), func(t *testing.T) {
			dir := t.TempDir()
			db := edb.NewDB()
			db.SetGraph("edge", prG)
			plan := compilePlan(t, progs.PageRank, db)
			res, err := chaosRun(t, plan, mode, "", func(cfg *Config) {
				cfg.SnapshotDir = dir
				cfg.SnapshotEvery = 2
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatal("snapshotting run did not converge")
			}
			_, meta, err := ckpt.LoadAll(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !meta.Cut {
				t.Fatal("combining program must snapshot through the marker episode (consistent cut)")
			}
			res2, err := chaosRun(t, plan, mode, "", func(cfg *Config) { cfg.RestoreDir = dir })
			if err != nil {
				t.Fatal(err)
			}
			if !res2.Converged {
				t.Fatal("restored run did not converge")
			}
			expectClose(t, mode, res2.Values, prWant, math.NaN(), 5e-3)
		})
	}
}

// TestStaleSnapshotRefusedForCombining: a directory holding only stale
// (uncoordinated) snapshots must be refused when the program's aggregate
// is combining — restoring it would double-count deltas.
func TestStaleSnapshotRefusedForCombining(t *testing.T) {
	dir := t.TempDir()
	for wk := 0; wk < 2; wk++ {
		meta := ckpt.Meta{Epoch: 4, Worker: wk, Workers: 2}
		if err := ckpt.SaveShard(dir, meta, []ckpt.Row{{Key: int64(wk), Acc: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	g := gen.RMAT(7, 600, 0, 17)
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.PageRank, db)
	_, err := Run(plan, Config{Workers: 2, RestoreDir: dir, MaxWall: 5 * time.Second})
	if err == nil || !strings.Contains(err.Error(), "consistent cut") {
		t.Fatalf("stale restore of a combining aggregate must be refused, got %v", err)
	}
}

// TestTornSnapshotRefusedOnRestore: corrupting a shard of the newest
// epoch must fail the restore loudly — never silently restore a torn or
// partial state.
func TestTornSnapshotRefusedOnRestore(t *testing.T) {
	dir := t.TempDir()
	g := gen.Uniform(200, 1200, 50, 11)
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.SSSP, db)
	res, err := Run(plan, Config{
		Workers: 3, Mode: MRASync, SnapshotDir: dir, SnapshotEvery: 1,
		MaxWall: 30 * time.Second,
	})
	if err != nil || !res.Converged {
		t.Fatalf("seed run failed: %v (converged=%v)", err, res != nil && res.Converged)
	}
	shards, err := filepath.Glob(filepath.Join(dir, "ep*-shard-*.plck"))
	if err != nil || len(shards) == 0 {
		t.Fatalf("no shards written: %v", err)
	}
	sort.Strings(shards)
	victim := shards[len(shards)-1] // newest epoch sorts last (zero-padded)
	info, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(victim, info.Size()/2); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(plan, Config{Workers: 3, Mode: MRASync, RestoreDir: dir, MaxWall: 5 * time.Second}); err == nil {
		t.Fatal("restore from a torn shard must fail, not silently restore")
	}
}

// TestMasterDetectsLostWorker kills a worker before it ever reports and
// requires the master to surface ErrWorkerLost within the collect
// deadline instead of hanging until MaxWall (the PR-4 follow-up). One
// live responder keeps the protocol moving so the timeout isolates the
// dead peer, not a stalled fleet: worker 0 answers every
// StatsRequest/Continue with a dirty report, worker 1 stays silent.
func TestMasterDetectsLostWorker(t *testing.T) {
	g := gen.Uniform(100, 600, 10, 91)
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.SSSP, db)
	for _, mode := range []Mode{MRASync, MRASyncAsync} {
		t.Run(mode.String(), func(t *testing.T) {
			net := transport.NewChannelNetwork(2, 64)
			defer net.Close()
			responder := net.Conn(0)
			masterConn := net.Conn(transport.MasterID(2))
			stop := make(chan struct{})
			defer close(stop)
			go func() {
				if modeBarriered[mode] {
					_ = responder.Send(transport.MasterID(2),
						transport.Message{Kind: transport.PhaseDone, Stats: transport.Stats{Dirty: true, AccDelta: 1}})
				}
				for {
					var m transport.Message
					var ok bool
					select {
					case m, ok = <-responder.Inbox():
					case <-stop:
						return
					}
					if !ok {
						return
					}
					switch m.Kind {
					case transport.StatsRequest:
						_ = responder.Send(transport.MasterID(2), transport.Message{
							Kind: transport.StatsReply, Round: m.Round,
							Stats: transport.Stats{Dirty: true, Sent: 1},
						})
					case transport.Continue:
						_ = responder.Send(transport.MasterID(2),
							transport.Message{Kind: transport.PhaseDone, Stats: transport.Stats{Dirty: true, AccDelta: 1}})
					case transport.Stop:
						return
					default:
						// The fake worker only speaks the stats protocol;
						// everything else is dropped on the floor.
					}
				}
			}()
			cfg := Config{
				Mode:           mode,
				CheckInterval:  300 * time.Microsecond,
				CollectTimeout: 400 * time.Millisecond,
				MaxWall:        30 * time.Second,
			}
			start := time.Now()
			_, _, err := RunMaster(plan, cfg, masterConn)
			elapsed := time.Since(start)
			if !errors.Is(err, ErrWorkerLost) {
				t.Fatalf("master returned %v, want ErrWorkerLost", err)
			}
			if elapsed > 10*time.Second {
				t.Fatalf("detection took %v — the collect deadline (400ms) did not bound the wait", elapsed)
			}
		})
	}
}

// failingConn always fails Send — the worker's comm loop must exhaust
// its retries and surface the error through RunWorker rather than
// swallowing it and computing into a dead network.
type failingConn struct {
	inbox chan transport.Message
}

func (c *failingConn) ID() int      { return 0 }
func (c *failingConn) Workers() int { return 2 }
func (c *failingConn) Send(to int, m transport.Message) error {
	return fmt.Errorf("wire down to %d", to)
}
func (c *failingConn) Inbox() <-chan transport.Message { return c.inbox }
func (c *failingConn) Close() error                    { return nil }

func TestWorkerSurfacesSendErrors(t *testing.T) {
	g := gen.Uniform(100, 600, 10, 91)
	db := edb.NewDB()
	db.SetGraph("edge", g)
	plan := compilePlan(t, progs.SSSP, db)
	conn := &failingConn{inbox: make(chan transport.Message)}
	done := make(chan error, 1)
	go func() {
		_, err := RunWorker(plan, Config{Mode: MRASyncAsync, MaxWall: 10 * time.Second}, conn)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "send failed") {
			t.Fatalf("worker must surface the dead send path, got %v", err)
		}
		if !strings.Contains(err.Error(), "wire down") {
			t.Fatalf("underlying transport error lost: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("worker hung on a dead send path instead of surfacing the error")
	}
}

// TestDedupWindow pins the delivered-once filter behind dup-tolerant
// termination: exact under FIFO redelivery, adversarial reordering, and
// both at once — and allocation-free on the fault-free in-order path.
func TestDedupWindow(t *testing.T) {
	cases := []struct {
		name string
		seqs []int64
		want []bool
	}{
		{"in-order", []int64{1, 2, 3, 4}, []bool{true, true, true, true}},
		{"fifo-redelivery", []int64{1, 1, 2, 2, 3}, []bool{true, false, true, false, true}},
		{"reordered", []int64{2, 1, 4, 3}, []bool{true, true, true, true}},
		{"reordered-dup", []int64{2, 1, 2, 1, 3}, []bool{true, true, false, false, true}},
		{"gap-then-fill", []int64{1, 3, 5, 2, 4, 5}, []bool{true, true, true, true, true, false}},
	}
	for _, tc := range cases {
		var d dedupWindow
		for i, seq := range tc.seqs {
			if got := d.fresh(seq); got != tc.want[i] {
				t.Errorf("%s: fresh(%d) at step %d = %v, want %v", tc.name, seq, i, got, tc.want[i])
			}
		}
		if len(cases[0].seqs) > 0 && tc.name == "gap-then-fill" && len(d.pending) != 0 {
			t.Errorf("%s: window retained %d pending entries after closing the gaps", tc.name, len(d.pending))
		}
	}
	var d dedupWindow
	d.fresh(1)
	if allocs := testing.AllocsPerRun(1000, func() {
		d.fresh(d.next)
	}); allocs != 0 {
		t.Errorf("in-order fresh allocates %v/op, want 0", allocs)
	}
}
