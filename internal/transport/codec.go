package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
)

// Binary wire codec for the TCP transport. gob spent most of each Data
// message on per-message type metadata and reflection; this codec writes
// a length-prefixed frame whose payload is:
//
//	kind    1 byte
//	from    uvarint
//	round   zigzag varint
//	Data payload:
//	    n       uvarint
//	    keys    first key zigzag varint, then uvarint deltas
//	            (keys are sorted ascending before encoding, so every
//	            delta is non-negative; sender-side combining makes keys
//	            unique, but the codec tolerates duplicates as delta 0)
//	    values  n × 8-byte little-endian raw IEEE-754 bits, in key order
//	            (NaN and ±Inf round-trip bit-exactly)
//	Stats payload (PhaseDone, StatsReply):
//	    sent, recv     uvarint
//	    accDelta, accSum  8-byte little-endian float64 bits
//	    passes         uvarint
//	    flags          1 byte (bit0 idle, bit1 dirty)
//
// Other kinds carry no payload beyond the header. The frame prefix is a
// uvarint payload length, so the reader can slice one whole message off
// the stream before decoding.

// frameHead is the room reserved for the length prefix while encoding;
// a 5-byte uvarint covers payloads up to 128 GiB.
const frameHead = 5

// maxFrame bounds a decoded payload so a corrupt length prefix cannot
// OOM the reader. BatchMax-sized Data messages are ~64 KiB; 64 MiB
// leaves two orders of magnitude of headroom.
const maxFrame = 64 << 20

// appendFrame encodes m as one length-prefixed frame into buf's spare
// capacity and returns the extended buffer. The frame starts at offset
// frameStart of the result (the length prefix is right-justified in the
// reserved head, so the first frameStart bytes are dead). Data KVs are
// sorted by key in place — the encoder owns the batch per the recycle
// contract.
func appendFrame(buf []byte, m *Message) ([]byte, int) {
	buf = append(buf[:0], make([]byte, frameHead)...)
	buf = appendPayload(buf, m)
	plen := uint64(len(buf) - frameHead)
	n := uvarintLen(plen)
	start := frameHead - n
	binary.PutUvarint(buf[start:], plen)
	return buf, start
}

func appendPayload(buf []byte, m *Message) []byte {
	buf = append(buf, byte(m.Kind))
	buf = binary.AppendUvarint(buf, uint64(m.From))
	buf = binary.AppendVarint(buf, int64(m.Round))
	switch m.Kind {
	case Data, Handoff:
		slices.SortFunc(m.KVs, func(a, b KV) int {
			switch {
			case a.K < b.K:
				return -1
			case a.K > b.K:
				return 1
			}
			return 0
		})
		buf = binary.AppendUvarint(buf, uint64(len(m.KVs)))
		prev := int64(0)
		for i, kv := range m.KVs {
			if i == 0 {
				buf = binary.AppendVarint(buf, kv.K)
			} else {
				buf = binary.AppendUvarint(buf, uint64(kv.K-prev))
			}
			prev = kv.K
		}
		for _, kv := range m.KVs {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(kv.V))
		}
	case PhaseDone, StatsReply:
		buf = binary.AppendUvarint(buf, uint64(m.Stats.Sent))
		buf = binary.AppendUvarint(buf, uint64(m.Stats.Recv))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Stats.AccDelta))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Stats.AccSum))
		buf = binary.AppendUvarint(buf, uint64(m.Stats.Passes))
		var flags byte
		if m.Stats.Idle {
			flags |= 1
		}
		if m.Stats.Dirty {
			flags |= 2
		}
		buf = append(buf, flags)
	case Join:
		// The master-side fence request rides Stats.Sent (rollback
		// epoch, may be -1) and Stats.Recv (admitted id + 1), both
		// signed — zigzag varints, unlike the counter stats above.
		buf = binary.AppendVarint(buf, m.Stats.Sent)
		buf = binary.AppendVarint(buf, m.Stats.Recv)
	default:
		// Control kinds (EndPhase, Continue, Stop, the snapshot and park
		// handshakes, ...) carry nothing beyond the kind/from/round
		// header.
	}
	return buf
}

// decodePayload decodes one frame payload. Data KVs land in a pooled
// batch (the receiver recycles it with PutBatch after folding).
func decodePayload(data []byte) (Message, error) {
	d := decoder{data: data}
	var m Message
	m.Kind = Kind(d.byte())
	m.From = int(d.uvarint())
	m.Round = int(d.varint())
	switch m.Kind {
	case Data, Handoff:
		n := d.uvarint()
		// A KV costs at least 9 bytes (≥1 varint key byte + 8 value
		// bytes), so a count the remaining payload cannot hold is a
		// corrupt frame — reject before allocating a batch for it.
		if n > uint64(len(d.data))/9 {
			return m, fmt.Errorf("transport: corrupt frame: %d KVs in %d bytes", n, len(d.data))
		}
		kvs := GetBatch(int(n))
		key := int64(0)
		for i := uint64(0); i < n; i++ {
			if i == 0 {
				key = d.varint()
			} else {
				key += int64(d.uvarint())
			}
			kvs = append(kvs, KV{K: key})
		}
		for i := range kvs {
			kvs[i].V = math.Float64frombits(d.uint64())
		}
		m.KVs = kvs
	case PhaseDone, StatsReply:
		m.Stats.Sent = int64(d.uvarint())
		m.Stats.Recv = int64(d.uvarint())
		m.Stats.AccDelta = math.Float64frombits(d.uint64())
		m.Stats.AccSum = math.Float64frombits(d.uint64())
		m.Stats.Passes = int64(d.uvarint())
		flags := d.byte()
		m.Stats.Idle = flags&1 != 0
		m.Stats.Dirty = flags&2 != 0
	case Join:
		m.Stats.Sent = d.varint()
		m.Stats.Recv = d.varint()
	default:
		// Control kinds have an empty payload; the header already
		// decoded is the whole message.
	}
	if d.bad {
		if m.Kind == Data || m.Kind == Handoff {
			PutBatch(m.KVs)
			m.KVs = nil
		}
		return m, fmt.Errorf("transport: corrupt %v frame (%d bytes)", m.Kind, len(data))
	}
	return m, nil
}

// decoder is a cursor over one frame payload; any overrun or malformed
// varint sets bad instead of panicking, so one corrupt frame yields one
// error, not a torn-down process.
type decoder struct {
	data []byte
	bad  bool
}

func (d *decoder) byte() byte {
	if len(d.data) < 1 {
		d.bad = true
		return 0
	}
	b := d.data[0]
	d.data = d.data[1:]
	return b
}

func (d *decoder) uvarint() uint64 {
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *decoder) varint() int64 {
	v, n := binary.Varint(d.data)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *decoder) uint64() uint64 {
	if len(d.data) < 8 {
		d.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(d.data)
	d.data = d.data[8:]
	return v
}

// uvarintLen returns the encoded size of v in bytes.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
