package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPConn is a network endpoint over TCP with the length-prefixed binary
// codec of codec.go — the multi-process stand-in for the original
// system's OpenMPI layer. Every endpoint listens on its own address and
// lazily dials peers; one TCP connection per (sender, receiver) pair
// preserves pairwise ordering.
type TCPConn struct {
	id      int
	workers int

	listener net.Listener
	inbox    chan Message

	mu       sync.Mutex
	addrs    []string // len workers+1; index = endpoint id
	outs     map[int]*outConn
	accepted []net.Conn
	done     chan struct{}
	wg       sync.WaitGroup
	cerr     error
	close    sync.Once
}

// outConn is one dialled peer link. Dialling runs under the per-peer
// once — never under the endpoint-wide mutex — so a slow or unreachable
// peer stalls only its own senders, not sends to every destination.
type outConn struct {
	addr string
	once sync.Once
	err  error

	mu  sync.Mutex
	c   net.Conn
	buf []byte // reusable frame-encode buffer, guarded by mu
}

// NewTCPEndpoint starts endpoint id of a TCP network whose endpoints live
// at addrs (workers 0..n-1 then the master at index n). The endpoint
// listens immediately; peers are dialled on first send, so endpoints may
// start in any order as long as sends begin after all peers listen.
func NewTCPEndpoint(id, workers int, addrs []string) (*TCPConn, error) {
	if len(addrs) != workers+1 {
		return nil, fmt.Errorf("transport: need %d addresses, got %d", workers+1, len(addrs))
	}
	if id < 0 || id > workers {
		return nil, fmt.Errorf("transport: bad endpoint id %d", id)
	}
	l, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[id], err)
	}
	t := &TCPConn{
		id:       id,
		workers:  workers,
		addrs:    addrs,
		listener: l,
		inbox:    make(chan Message, 4096),
		outs:     map[int]*outConn{},
		done:     make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the address the endpoint is actually listening on (useful
// when addrs contained ":0").
func (t *TCPConn) Addr() string { return t.listener.Addr().String() }

// SetAddressBook replaces the peer address table. Call it before any
// Send when endpoints were started on ephemeral (":0") ports and the
// real addresses were exchanged out of band.
func (t *TCPConn) SetAddressBook(addrs []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs = append([]string(nil), addrs...)
}

// ID implements Conn.
func (t *TCPConn) ID() int { return t.id }

// Workers implements Conn.
func (t *TCPConn) Workers() int { return t.workers }

// Inbox implements Conn.
func (t *TCPConn) Inbox() <-chan Message { return t.inbox }

func (t *TCPConn) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		t.accepted = append(t.accepted, c)
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

func (t *TCPConn) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	r := bufio.NewReaderSize(c, 64<<10)
	var payload []byte
	for {
		plen, err := binary.ReadUvarint(r)
		if err != nil || plen > maxFrame {
			return
		}
		if uint64(cap(payload)) < plen {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(r, payload); err != nil {
			return
		}
		m, err := decodePayload(payload)
		if err != nil {
			return
		}
		select {
		case t.inbox <- m:
		case <-t.done:
			if m.Kind == Data {
				PutBatch(m.KVs)
			}
			return
		}
	}
}

// Send implements Conn. Data batches are recycled into the batch pool
// after they are encoded onto the wire (see the contract in batch.go).
func (t *TCPConn) Send(to int, m Message) error {
	m.From = t.id
	oc, err := t.peer(to)
	if err != nil {
		return err
	}
	oc.mu.Lock()
	buf, start := appendFrame(oc.buf, &m)
	oc.buf = buf
	_, err = oc.c.Write(buf[start:])
	oc.mu.Unlock()
	if m.Kind == Data {
		PutBatch(m.KVs)
	}
	return err
}

// peer returns the link to endpoint `to`, dialling it on first use. The
// endpoint-wide mutex covers only the map lookup; the dial itself runs
// under the link's own once, so concurrent sends to other (responsive)
// peers proceed while one dial blocks.
func (t *TCPConn) peer(to int) (*outConn, error) {
	t.mu.Lock()
	oc, ok := t.outs[to]
	if !ok {
		if to < 0 || to >= len(t.addrs) {
			t.mu.Unlock()
			return nil, fmt.Errorf("transport: no endpoint %d", to)
		}
		oc = &outConn{addr: t.addrs[to]}
		t.outs[to] = oc
	}
	t.mu.Unlock()
	oc.once.Do(func() {
		c, err := net.Dial("tcp", oc.addr)
		if err != nil {
			oc.err = fmt.Errorf("transport: dial endpoint %d at %s: %w", to, oc.addr, err)
			return
		}
		oc.mu.Lock()
		oc.c = c
		oc.mu.Unlock()
	})
	if oc.err != nil {
		return nil, oc.err
	}
	return oc, nil
}

// Close implements Conn.
func (t *TCPConn) Close() error {
	t.close.Do(func() {
		close(t.done)
		t.cerr = t.listener.Close()
		t.mu.Lock()
		outs := make([]*outConn, 0, len(t.outs))
		for _, oc := range t.outs {
			outs = append(outs, oc)
		}
		accepted := t.accepted
		t.mu.Unlock()
		for _, oc := range outs {
			// Waits for any in-flight dial, and pins the link dead so a
			// racing Send cannot dial a fresh connection after Close.
			oc.once.Do(func() { oc.err = net.ErrClosed })
			oc.mu.Lock()
			if oc.c != nil {
				oc.c.Close()
			}
			oc.mu.Unlock()
		}
		for _, c := range accepted {
			c.Close()
		}
		t.wg.Wait()
		close(t.inbox)
	})
	return t.cerr
}
