package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"powerlog/internal/metrics"
)

// ErrPeerUnavailable is returned by TCPConn.Send while a peer's circuit
// breaker is open: the link failed BreakAfter consecutive times and is in
// its cooldown, so sends fail fast instead of re-dialling a dead peer.
// The message was not consumed; the caller may retry after the cooldown.
var ErrPeerUnavailable = errors.New("transport: peer unavailable (circuit open)")

// RetryPolicy bounds TCPConn.Send's redial-and-retry behaviour.
type RetryPolicy struct {
	// Attempts is the number of delivery attempts per Send call.
	Attempts int
	// Backoff is the sleep before the first retry; it doubles per retry.
	Backoff time.Duration
	// BreakAfter consecutive link failures open the circuit breaker.
	BreakAfter int
	// Cooldown is how long the breaker stays open before a half-open
	// probe is allowed through.
	Cooldown time.Duration
	// DialTimeout bounds each dial attempt.
	DialTimeout time.Duration
}

// DefaultRetryPolicy is tuned so a transient hiccup (peer restarting, a
// dropped connection) heals within a few milliseconds while a dead peer
// costs each sender at most Attempts dials before the breaker opens.
var DefaultRetryPolicy = RetryPolicy{
	Attempts:    4,
	Backoff:     2 * time.Millisecond,
	BreakAfter:  8,
	Cooldown:    250 * time.Millisecond,
	DialTimeout: 2 * time.Second,
}

// TCPConn is a network endpoint over TCP with the length-prefixed binary
// codec of codec.go — the multi-process stand-in for the original
// system's OpenMPI layer. Every endpoint listens on its own address and
// lazily dials peers; one TCP connection per (sender, receiver) pair
// preserves pairwise ordering.
type TCPConn struct {
	id      int
	workers int

	listener net.Listener
	inbox    chan Message

	retry RetryPolicy
	met   *tcpMetrics // nil until SetMetrics; hot-path reads are nil-checked

	mu       sync.Mutex
	addrs    []string // len workers+1; index = endpoint id
	outs     map[int]*outConn
	accepted []net.Conn
	done     chan struct{}
	closed   atomic.Bool
	wg       sync.WaitGroup
	cerr     error
	close    sync.Once
}

// outConn is one peer link. Dialling runs lazily under the link's own
// mutex — never under the endpoint-wide one — so a slow or unreachable
// peer stalls only its own senders, not sends to every destination. A
// failed link is redialled on the next attempt until fails reaches the
// retry policy's BreakAfter, which opens the circuit until openUntil.
type outConn struct {
	addr string

	mu        sync.Mutex
	c         net.Conn
	buf       []byte // reusable frame-encode buffer, guarded by mu
	fails     int    // consecutive dial/write failures
	openUntil time.Time
}

// NewTCPEndpoint starts endpoint id of a TCP network whose endpoints live
// at addrs (workers 0..n-1 then the master at index n). The endpoint
// listens immediately; peers are dialled on first send, so endpoints may
// start in any order as long as sends begin after all peers listen.
func NewTCPEndpoint(id, workers int, addrs []string) (*TCPConn, error) {
	if len(addrs) != workers+1 {
		return nil, fmt.Errorf("transport: need %d addresses, got %d", workers+1, len(addrs))
	}
	if id < 0 || id > workers {
		return nil, fmt.Errorf("transport: bad endpoint id %d", id)
	}
	l, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[id], err)
	}
	t := &TCPConn{
		id:       id,
		workers:  workers,
		addrs:    addrs,
		listener: l,
		inbox:    make(chan Message, 4096),
		outs:     map[int]*outConn{},
		done:     make(chan struct{}),
		retry:    DefaultRetryPolicy,
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the address the endpoint is actually listening on (useful
// when addrs contained ":0").
func (t *TCPConn) Addr() string { return t.listener.Addr().String() }

// SetAddressBook replaces the peer address table. Call it before any
// Send when endpoints were started on ephemeral (":0") ports and the
// real addresses were exchanged out of band.
func (t *TCPConn) SetAddressBook(addrs []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs = append([]string(nil), addrs...)
}

// ID implements Conn.
func (t *TCPConn) ID() int { return t.id }

// Workers implements Conn.
func (t *TCPConn) Workers() int { return t.workers }

// Inbox implements Conn.
func (t *TCPConn) Inbox() <-chan Message { return t.inbox }

func (t *TCPConn) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		t.accepted = append(t.accepted, c)
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

func (t *TCPConn) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	r := bufio.NewReaderSize(c, 64<<10)
	var payload []byte
	for {
		plen, err := binary.ReadUvarint(r)
		if err != nil || plen > maxFrame {
			return
		}
		if uint64(cap(payload)) < plen {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(r, payload); err != nil {
			return
		}
		m, err := decodePayload(payload)
		if err != nil {
			return
		}
		select {
		case t.inbox <- m:
		case <-t.done:
			if m.Kind == Data {
				PutBatch(m.KVs)
			}
			return
		}
	}
}

// SetRetry replaces the endpoint's retry policy. Call before any Send.
func (t *TCPConn) SetRetry(p RetryPolicy) { t.retry = p }

// tcpMetrics is the endpoint's pre-resolved metric handles (DESIGN.md
// §8): retry pressure, circuit-breaker transitions, and per-peer
// traffic. All writes are single atomic ops on registered counters.
type tcpMetrics struct {
	retries      *metrics.Counter // tcp.send.retry: extra attempts beyond the first
	breakerOpen  *metrics.Counter // tcp.breaker.open: closed→open transitions
	breakerHalf  *metrics.Counter // tcp.breaker.halfopen: post-cooldown probes
	breakerClose *metrics.Counter // tcp.breaker.close: open→closed (probe succeeded)
	peerBatches  []*metrics.Counter
	peerBytes    []*metrics.Counter
}

// SetMetrics registers the endpoint's transport counters into reg. Like
// SetRetry, call it before any Send (the hot path reads t.met without a
// lock). nil disables instrumentation again.
func (t *TCPConn) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		t.met = nil
		return
	}
	tm := &tcpMetrics{
		retries:      reg.Counter("tcp.send.retry"),
		breakerOpen:  reg.Counter("tcp.breaker.open"),
		breakerHalf:  reg.Counter("tcp.breaker.halfopen"),
		breakerClose: reg.Counter("tcp.breaker.close"),
	}
	for j := 0; j <= t.workers; j++ {
		tm.peerBatches = append(tm.peerBatches, reg.Counter(fmt.Sprintf("tcp.peer%d.batch", j)))
		tm.peerBytes = append(tm.peerBytes, reg.Counter(fmt.Sprintf("tcp.peer%d.bytes", j)))
	}
	t.met = tm
}

// Send implements Conn. A failed dial or write is retried with
// exponential backoff up to the retry policy's attempt budget; past
// BreakAfter consecutive link failures the per-peer circuit breaker
// opens and sends fail fast with ErrPeerUnavailable until the cooldown
// elapses. On success the Data batch is recycled into the batch pool
// once encoded onto the wire (see the contract in batch.go); on error
// ownership stays with the caller.
func (t *TCPConn) Send(to int, m Message) error {
	m.From = t.id
	oc, err := t.peer(to)
	if err != nil {
		return err
	}
	backoff := t.retry.Backoff
	for attempt := 0; ; attempt++ {
		err = t.attempt(to, oc, &m)
		if err == nil {
			if m.Kind == Data {
				PutBatch(m.KVs)
			}
			return nil
		}
		// A closed endpoint or an open breaker will not heal within
		// this call's backoff budget: fail fast.
		if attempt+1 >= t.retry.Attempts ||
			errors.Is(err, ErrPeerUnavailable) || errors.Is(err, net.ErrClosed) {
			return err
		}
		if t.met != nil {
			t.met.retries.Inc()
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// attempt makes one delivery attempt: breaker check, lazy (re)dial,
// encode, write. It runs entirely under the link's mutex, so concurrent
// senders to the same peer serialise (preserving pairwise ordering)
// while sends to other peers proceed.
func (t *TCPConn) attempt(to int, oc *outConn, m *Message) error {
	oc.mu.Lock()
	defer oc.mu.Unlock()
	if t.closed.Load() {
		return net.ErrClosed
	}
	now := time.Now()
	if oc.fails >= t.retry.BreakAfter {
		if now.Before(oc.openUntil) {
			return fmt.Errorf("transport: endpoint %d at %s: %w", to, oc.addr, ErrPeerUnavailable)
		}
		// Cooldown elapsed with the breaker still open: this attempt is
		// the half-open probe.
		if t.met != nil {
			t.met.breakerHalf.Inc()
		}
	}
	if oc.c == nil {
		c, err := net.DialTimeout("tcp", oc.addr, t.retry.DialTimeout)
		if err != nil {
			t.linkFailed(oc, now)
			return fmt.Errorf("transport: dial endpoint %d at %s: %w", to, oc.addr, err)
		}
		if t.closed.Load() { // Close raced the dial; do not resurrect the link
			c.Close()
			return net.ErrClosed
		}
		oc.c = c
	}
	buf, start := appendFrame(oc.buf, m)
	oc.buf = buf
	if _, err := oc.c.Write(buf[start:]); err != nil {
		oc.c.Close()
		oc.c = nil // force a redial on the next attempt
		t.linkFailed(oc, now)
		return fmt.Errorf("transport: write endpoint %d: %w", to, err)
	}
	if t.met != nil {
		if oc.fails >= t.retry.BreakAfter {
			// A successful write through an open breaker closes it.
			t.met.breakerClose.Inc()
		}
		if to >= 0 && to < len(t.met.peerBatches) {
			t.met.peerBatches[to].Inc()
			t.met.peerBytes[to].Add(uint64(len(buf[start:])))
		}
	}
	oc.fails = 0
	return nil
}

// linkFailed records one more consecutive failure on a link, opening
// (or re-arming, for a failed half-open probe) its circuit breaker once
// the count reaches BreakAfter. Callers hold oc.mu.
func (t *TCPConn) linkFailed(oc *outConn, now time.Time) {
	oc.fails++
	if oc.fails >= t.retry.BreakAfter {
		// Count only the closed→open transition, not re-arms from failed
		// half-open probes.
		if t.met != nil && oc.fails == t.retry.BreakAfter {
			t.met.breakerOpen.Inc()
		}
		oc.openUntil = now.Add(t.retry.Cooldown)
	}
}

// peer returns the link to endpoint `to`, creating (not dialling) it on
// first use. The endpoint-wide mutex covers only the map lookup; dials
// happen lazily inside attempt under the link's own mutex.
func (t *TCPConn) peer(to int) (*outConn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	oc, ok := t.outs[to]
	if !ok {
		if to < 0 || to >= len(t.addrs) {
			return nil, fmt.Errorf("transport: no endpoint %d", to)
		}
		oc = &outConn{addr: t.addrs[to]}
		t.outs[to] = oc
	}
	return oc, nil
}

// Close implements Conn.
func (t *TCPConn) Close() error {
	t.close.Do(func() {
		// The closed flag pins every link dead before the sockets come
		// down: a racing Send observes it under the link mutex and
		// cannot dial a fresh connection after Close.
		t.closed.Store(true)
		close(t.done)
		t.cerr = t.listener.Close()
		t.mu.Lock()
		outs := make([]*outConn, 0, len(t.outs))
		for _, oc := range t.outs {
			outs = append(outs, oc)
		}
		accepted := t.accepted
		t.mu.Unlock()
		for _, oc := range outs {
			oc.mu.Lock()
			if oc.c != nil {
				oc.c.Close()
				oc.c = nil
			}
			oc.mu.Unlock()
		}
		for _, c := range accepted {
			c.Close()
		}
		t.wg.Wait()
		close(t.inbox)
	})
	return t.cerr
}
