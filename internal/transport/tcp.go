package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// TCPConn is a network endpoint over TCP with gob framing — the
// multi-process stand-in for the original system's OpenMPI layer. Every
// endpoint listens on its own address and lazily dials peers; one TCP
// connection per (sender, receiver) pair preserves pairwise ordering.
type TCPConn struct {
	id      int
	workers int
	addrs   []string // len workers+1; index = endpoint id

	listener net.Listener
	inbox    chan Message

	mu       sync.Mutex
	outs     map[int]*outConn
	accepted []net.Conn
	done     chan struct{}
	wg       sync.WaitGroup
	cerr     error
	close    sync.Once
}

type outConn struct {
	mu  sync.Mutex
	c   net.Conn
	enc *gob.Encoder
}

// NewTCPEndpoint starts endpoint id of a TCP network whose endpoints live
// at addrs (workers 0..n-1 then the master at index n). The endpoint
// listens immediately; peers are dialled on first send, so endpoints may
// start in any order as long as sends begin after all peers listen.
func NewTCPEndpoint(id, workers int, addrs []string) (*TCPConn, error) {
	if len(addrs) != workers+1 {
		return nil, fmt.Errorf("transport: need %d addresses, got %d", workers+1, len(addrs))
	}
	if id < 0 || id > workers {
		return nil, fmt.Errorf("transport: bad endpoint id %d", id)
	}
	l, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[id], err)
	}
	t := &TCPConn{
		id:       id,
		workers:  workers,
		addrs:    addrs,
		listener: l,
		inbox:    make(chan Message, 4096),
		outs:     map[int]*outConn{},
		done:     make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the address the endpoint is actually listening on (useful
// when addrs contained ":0").
func (t *TCPConn) Addr() string { return t.listener.Addr().String() }

// SetAddressBook replaces the peer address table. Call it before any
// Send when endpoints were started on ephemeral (":0") ports and the
// real addresses were exchanged out of band.
func (t *TCPConn) SetAddressBook(addrs []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs = append([]string(nil), addrs...)
}

// ID implements Conn.
func (t *TCPConn) ID() int { return t.id }

// Workers implements Conn.
func (t *TCPConn) Workers() int { return t.workers }

// Inbox implements Conn.
func (t *TCPConn) Inbox() <-chan Message { return t.inbox }

func (t *TCPConn) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		t.accepted = append(t.accepted, c)
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

func (t *TCPConn) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	dec := gob.NewDecoder(c)
	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			return
		}
		select {
		case t.inbox <- m:
		case <-t.done:
			return
		}
	}
}

// Send implements Conn.
func (t *TCPConn) Send(to int, m Message) error {
	m.From = t.id
	oc, err := t.dial(to)
	if err != nil {
		return err
	}
	oc.mu.Lock()
	defer oc.mu.Unlock()
	return oc.enc.Encode(m)
}

func (t *TCPConn) dial(to int) (*outConn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if oc, ok := t.outs[to]; ok {
		return oc, nil
	}
	if to < 0 || to >= len(t.addrs) {
		return nil, fmt.Errorf("transport: no endpoint %d", to)
	}
	c, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("transport: dial endpoint %d at %s: %w", to, t.addrs[to], err)
	}
	oc := &outConn{c: c, enc: gob.NewEncoder(c)}
	t.outs[to] = oc
	return oc, nil
}

// Close implements Conn.
func (t *TCPConn) Close() error {
	t.close.Do(func() {
		close(t.done)
		t.cerr = t.listener.Close()
		t.mu.Lock()
		for _, oc := range t.outs {
			oc.c.Close()
		}
		for _, c := range t.accepted {
			c.Close()
		}
		t.mu.Unlock()
		t.wg.Wait()
		close(t.inbox)
	})
	return t.cerr
}
