package transport

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// roundTrip encodes m and decodes the resulting frame payload.
func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	buf, start := appendFrame(nil, &m)
	// Skip the length prefix the way readLoop does.
	plen, n := decodeUvarintPrefix(buf[start:])
	if n <= 0 || int(plen) != len(buf)-frameHead {
		t.Fatalf("bad length prefix: plen=%d framed=%d", plen, len(buf)-frameHead)
	}
	got, err := decodePayload(buf[start+n:])
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func decodeUvarintPrefix(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b); i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

// sortedByKey returns kvs sorted ascending by key (the codec's canonical
// Data order).
func sortedByKey(kvs []KV) []KV {
	out := append([]KV(nil), kvs...)
	sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
	return out
}

// kvsEqual compares KV slices with bit-exact float semantics (NaN == NaN).
func kvsEqual(a, b []KV) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].K != b[i].K || math.Float64bits(a[i].V) != math.Float64bits(b[i].V) {
			return false
		}
	}
	return true
}

// TestCodecQuickRoundTrip is the testing/quick property: any Data
// message with unique keys — negative pair-style keys, ±Inf/NaN values —
// survives encode/decode with its (key-sorted) content intact.
func TestCodecQuickRoundTrip(t *testing.T) {
	special := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(),
		math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64}
	f := func(seed int64, sizePick uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sizePick % 300)
		seen := map[int64]bool{}
		kvs := make([]KV, 0, n)
		for len(kvs) < n {
			var k int64
			switch rng.Intn(4) {
			case 0: // pair key with negative halves, as APSP-style src<<32|dst can produce
				k = int64(uint64(rng.Uint32())<<32 | uint64(rng.Uint32()))
			case 1:
				k = -rng.Int63()
			case 2:
				k = int64(rng.Intn(1000)) // dense, small deltas
			default:
				k = rng.Int63()
			}
			if seen[k] {
				continue
			}
			seen[k] = true
			v := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
			if rng.Intn(8) == 0 {
				v = special[rng.Intn(len(special))]
			}
			kvs = append(kvs, KV{K: k, V: v})
		}
		want := sortedByKey(kvs)
		got := roundTrip(t, Message{Kind: Data, From: rng.Intn(64), Round: rng.Intn(1 << 20), KVs: kvs})
		return got.Kind == Data && kvsEqual(got.KVs, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecEdgeMessages(t *testing.T) {
	cases := []Message{
		{Kind: Data, From: 3, Round: 0, KVs: nil},
		{Kind: Data, From: 0, Round: 7, KVs: []KV{}},
		{Kind: Data, KVs: []KV{{K: math.MinInt64, V: math.Inf(-1)}, {K: math.MaxInt64, V: math.Inf(1)}, {K: 0, V: math.NaN()}}},
		{Kind: EndPhase, From: 1, Round: 42},
		{Kind: Continue, Round: 9},
		{Kind: StatsRequest, Round: 1 << 30},
		{Kind: Stop},
		{Kind: StatsReply, From: 2, Round: 5, Stats: Stats{
			Sent: 1 << 40, Recv: 3, AccDelta: -0.5, AccSum: math.Inf(1), Passes: 17, Idle: true, Dirty: true}},
		{Kind: PhaseDone, Stats: Stats{AccDelta: math.NaN(), Dirty: true}},
	}
	for _, m := range cases {
		got := roundTrip(t, m)
		if m.Kind == Data {
			want := sortedByKey(m.KVs)
			if got.Kind != Data || got.From != m.From || got.Round != m.Round || !kvsEqual(got.KVs, want) {
				t.Fatalf("Data round trip: sent %+v got %+v", m, got)
			}
			continue
		}
		// Non-Data: struct equality modulo NaN.
		gb, wb := got, m
		if math.IsNaN(wb.Stats.AccDelta) && math.IsNaN(gb.Stats.AccDelta) {
			gb.Stats.AccDelta, wb.Stats.AccDelta = 0, 0
		}
		if !reflect.DeepEqual(gb, wb) {
			t.Fatalf("round trip: sent %+v got %+v", m, got)
		}
	}
}

// TestCodec64KMessage round-trips a BatchMax-scale (64k-KV) message.
func TestCodec64KMessage(t *testing.T) {
	const n = 64 << 10
	kvs := make([]KV, n)
	for i := range kvs {
		kvs[i] = KV{K: int64(i)*3 - n, V: float64(i) * 0.25}
	}
	want := sortedByKey(kvs)
	got := roundTrip(t, Message{Kind: Data, KVs: kvs})
	if !kvsEqual(got.KVs, want) {
		t.Fatal("64k round trip mismatch")
	}
	// Sorted dense-ish keys should delta-encode well below 8 bytes/key.
	buf, start := appendFrame(nil, &Message{Kind: Data, KVs: append([]KV(nil), want...)})
	wire := len(buf) - start
	if wire >= n*12 {
		t.Errorf("wire size %d bytes for %d KVs — delta encoding not effective", wire, n)
	}
}

func TestCodecRejectsCorruptFrames(t *testing.T) {
	m := Message{Kind: Data, KVs: []KV{{K: 5, V: 1}, {K: 9, V: 2}}}
	buf, start := appendFrame(nil, &m)
	_, n := decodeUvarintPrefix(buf[start:])
	payload := buf[start+n:]
	// Truncating a Data frame after the KV count must fail (the values
	// block comes up short), not read out of bounds.
	if _, err := decodePayload(payload[:len(payload)-3]); err == nil {
		t.Fatal("truncated Data frame accepted")
	}
	// A frame claiming 2^40 KVs in a few bytes must error, not OOM.
	bad := []byte{byte(Data), 0, 0, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10}
	if _, err := decodePayload(bad); err == nil {
		t.Fatal("absurd KV count accepted")
	}
	// Truncated stats frame must error.
	if _, err := decodePayload([]byte{byte(StatsReply), 0, 0, 7}); err == nil {
		t.Fatal("truncated stats frame accepted")
	}
}

// TestBatchPoolRecycle exercises the recycle contract under the race
// detector: many senders fill pooled batches and send them over a
// channel network; the receiver folds and recycles. Any use-after-put
// shows up as a data race or a checksum mismatch.
func TestBatchPoolRecycle(t *testing.T) {
	const senders, perSender, batch = 4, 200, 32
	net := NewChannelNetwork(senders+1, 64)
	defer net.Close()
	done := make(chan float64)
	// The master endpoint is the sink; workers 0..senders-1 send to it.
	sink := net.Conn(MasterID(senders + 1))
	go func() {
		total := 0.0
		for got := 0; got < senders*perSender; got++ {
			m := <-sink.Inbox()
			for _, kv := range m.KVs {
				total += kv.V * float64(kv.K)
			}
			PutBatch(m.KVs)
		}
		done <- total
	}()
	perBatch := 0.0
	for k := 0; k < batch; k++ {
		perBatch += float64(k) * float64(k+1)
	}
	want := float64(senders*perSender) * perBatch
	for s := 0; s < senders; s++ {
		go func(s int) {
			conn := net.Conn(s)
			for i := 0; i < perSender; i++ {
				kvs := GetBatch(batch)
				for k := 0; k < batch; k++ {
					kvs = append(kvs, KV{K: int64(k + 1), V: float64(k)})
				}
				if err := conn.Send(MasterID(senders+1), Message{Kind: Data, KVs: kvs}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	total := <-done
	if math.Abs(total-want) > 1e-6 {
		t.Fatalf("folded checksum %v, want %v — batch corrupted in flight", total, want)
	}
}

// TestBatchPoolGrowth checks GetBatch honours the capacity request and
// PutBatch tolerates foreign and empty slices.
func TestBatchPoolGrowth(t *testing.T) {
	b := GetBatch(10_000)
	if cap(b) < 10_000 {
		t.Fatalf("cap %d < requested", cap(b))
	}
	PutBatch(b)
	PutBatch(nil)               // no-op
	PutBatch(make([]KV, 0))     // zero-cap: dropped
	PutBatch(make([]KV, 5, 64)) // foreign slice: donated
	if got := GetBatch(1); cap(got) < 1 {
		t.Fatal("pool returned unusable batch")
	}
}

// --- codec vs gob benchmarks -----------------------------------------

func benchMessage(n int) Message {
	kvs := make([]KV, n)
	for i := range kvs {
		kvs[i] = KV{K: int64(i * 7), V: float64(i) * 1.25}
	}
	return Message{Kind: Data, From: 3, Round: 12, KVs: kvs}
}

// BenchmarkCodec measures one encode+decode round trip of a 1024-KV Data
// message: the binary codec vs the gob framing it replaced. wire-B/msg
// reports the on-wire frame size.
func BenchmarkCodec(b *testing.B) {
	const n = 1024
	b.Run("binary", func(b *testing.B) {
		m := benchMessage(n)
		var buf []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var start int
			buf, start = appendFrame(buf, &m)
			plen, pn := decodeUvarintPrefix(buf[start:])
			got, err := decodePayload(buf[start+pn : start+pn+int(plen)])
			if err != nil {
				b.Fatal(err)
			}
			PutBatch(got.KVs)
			if i == 0 {
				b.ReportMetric(float64(len(buf)-start), "wire-B/msg")
			}
		}
	})
	b.Run("gob", func(b *testing.B) {
		m := benchMessage(n)
		var buf bytes.Buffer
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := gob.NewEncoder(&buf).Encode(m); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(buf.Len()), "wire-B/msg")
			}
			var got Message
			if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
				b.Fatal(err)
			}
		}
	})
	// gob with a persistent stream amortises type metadata; the real
	// transport used one encoder per connection, so also measure that.
	b.Run("gob-stream", func(b *testing.B) {
		m := benchMessage(n)
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		dec := gob.NewDecoder(&buf)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(m); err != nil {
				b.Fatal(err)
			}
			var got Message
			if err := dec.Decode(&got); err != nil {
				b.Fatal(err)
			}
		}
	})
}
