package transport

import (
	"fmt"
	"sync"
)

// ChannelNetwork is the in-process transport: one buffered channel per
// endpoint. Endpoint n (the last) is the master.
type ChannelNetwork struct {
	chans []chan Message
	conns []*channelConn

	mu     sync.Mutex
	closed bool
}

// NewChannelNetwork creates a network with n workers plus a master
// endpoint. bufCap is the per-endpoint inbox capacity (a sensible default
// is chosen when 0).
func NewChannelNetwork(n int, bufCap int) *ChannelNetwork {
	if bufCap <= 0 {
		bufCap = 1024
	}
	net := &ChannelNetwork{
		chans: make([]chan Message, n+1),
		conns: make([]*channelConn, n+1),
	}
	for i := range net.chans {
		net.chans[i] = make(chan Message, bufCap)
		net.conns[i] = &channelConn{net: net, id: i, workers: n}
	}
	return net
}

// Conn returns endpoint i's connection (workers 0..n-1, master n).
func (n *ChannelNetwork) Conn(i int) Conn { return n.conns[i] }

// Close shuts the network down, closing every inbox.
func (n *ChannelNetwork) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.closed = true
	for _, ch := range n.chans {
		close(ch)
	}
}

type channelConn struct {
	net     *ChannelNetwork
	id      int
	workers int
}

func (c *channelConn) ID() int      { return c.id }
func (c *channelConn) Workers() int { return c.workers }

// TrySend attempts a non-blocking delivery; it reports false when the
// destination inbox is full. The runtime uses it to keep control traffic
// flowing while bulk data is back-pressured.
func (c *channelConn) TrySend(to int, m Message) (bool, error) {
	if to < 0 || to >= len(c.net.chans) {
		return false, fmt.Errorf("transport: no endpoint %d", to)
	}
	m.From = c.id
	ok := true
	func() {
		defer func() { recover() }()
		select {
		case c.net.chans[to] <- m:
		default:
			ok = false
		}
	}()
	return ok, nil
}

func (c *channelConn) Send(to int, m Message) error {
	if to < 0 || to >= len(c.net.chans) {
		return fmt.Errorf("transport: no endpoint %d", to)
	}
	m.From = c.id
	defer func() {
		// Sending on a closed network after Stop is benign; report it as
		// an error rather than crashing the worker goroutine.
		recover()
	}()
	c.net.chans[to] <- m
	return nil
}

func (c *channelConn) Inbox() <-chan Message { return c.net.chans[c.id] }

func (c *channelConn) Close() error { return nil }
