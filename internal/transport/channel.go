package transport

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// ChannelNetwork is the in-process transport: one buffered channel per
// endpoint. Endpoint n (the last) is the master.
//
// Endpoints can be replaced while the network is live (ResetConn) so a
// crashed worker's slot can be re-pointed at a fresh inbox: senders
// always resolve the destination's *current* channel under the lock,
// while each conn keeps the inbox it was born with — a stale conn held
// by a dead worker's goroutines can never steal messages addressed to
// its replacement.
type ChannelNetwork struct {
	mu     sync.RWMutex
	chans  []chan Message
	conns  []*channelConn
	bufCap int
	closed bool
}

// NewChannelNetwork creates a network with n workers plus a master
// endpoint. bufCap is the per-endpoint inbox capacity (a sensible default
// is chosen when 0).
func NewChannelNetwork(n int, bufCap int) *ChannelNetwork {
	if bufCap <= 0 {
		bufCap = 1024
	}
	net := &ChannelNetwork{
		chans:  make([]chan Message, n+1),
		conns:  make([]*channelConn, n+1),
		bufCap: bufCap,
	}
	for i := range net.chans {
		net.chans[i] = make(chan Message, bufCap)
		net.conns[i] = &channelConn{net: net, id: i, workers: n, inbox: net.chans[i]}
	}
	return net
}

// Conn returns endpoint i's connection (workers 0..n-1, master n).
func (n *ChannelNetwork) Conn(i int) Conn {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.conns[i]
}

// ResetConn replaces endpoint i with a fresh inbox and returns the new
// connection. The old inbox is closed (unblocking any stale reader) and
// any messages still queued in it are dropped — exactly the semantics of
// a worker crash. Messages sent to i after the reset land in the new
// inbox.
func (n *ChannelNetwork) ResetConn(i int) Conn {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return n.conns[i]
	}
	old := n.chans[i]
	n.chans[i] = make(chan Message, n.bufCap)
	n.conns[i] = &channelConn{net: n, id: i, workers: n.conns[i].workers, inbox: n.chans[i]}
	close(old)
	return n.conns[i]
}

// Close shuts the network down, closing every inbox.
func (n *ChannelNetwork) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.closed = true
	for _, ch := range n.chans {
		close(ch)
	}
}

type channelConn struct {
	net     *ChannelNetwork
	id      int
	workers int
	inbox   chan Message
}

func (c *channelConn) ID() int      { return c.id }
func (c *channelConn) Workers() int { return c.workers }

// trySend performs one non-blocking delivery attempt under the network
// read lock. Holding the lock across the channel operation (the select
// never blocks) is what makes it sound against ResetConn and Close:
// both close channels only under the write lock, after unlinking them
// from chans, so a channel resolved here cannot be closed mid-send — no
// send-on-closed panic, no race.
func (c *channelConn) trySend(to int, m Message) (bool, error) {
	c.net.mu.RLock()
	defer c.net.mu.RUnlock()
	if to < 0 || to >= len(c.net.chans) {
		return false, fmt.Errorf("transport: no endpoint %d", to)
	}
	// Sending on a closed network after Stop is benign for the caller;
	// report it as an error rather than crashing the worker goroutine.
	if c.net.closed {
		return false, fmt.Errorf("transport: network closed")
	}
	// Generation fence: once ResetConn has replaced this endpoint, the
	// stale conn a dead (or presumed-dead) worker still holds must not
	// inject into the network — its slot's replacement starts from fresh
	// sequence numbers, so a late delivery from the old generation would
	// corrupt the receivers' dedup windows and the global send/recv
	// accounting. Failing the send here makes the fencing total: it
	// covers messages to *every* destination, not just the reset slot.
	if c.net.conns[c.id] != c {
		return false, fmt.Errorf("transport: endpoint %d was reset; this connection is fenced off", c.id)
	}
	m.From = c.id
	select {
	case c.net.chans[to] <- m:
		return true, nil
	default:
		return false, nil
	}
}

// TrySend attempts a non-blocking delivery; it reports false when the
// destination inbox is full. The runtime uses it to keep control traffic
// flowing while bulk data is back-pressured.
func (c *channelConn) TrySend(to int, m Message) (bool, error) {
	return c.trySend(to, m)
}

// Send blocks until delivery by retrying the locked non-blocking send
// with escalating backoff. The lock is never held while waiting, so a
// back-pressured destination cannot stall a concurrent ResetConn — and
// a destination that is reset out from under a blocked Send surfaces as
// the fence error on the next attempt instead of wedging forever.
func (c *channelConn) Send(to int, m Message) error {
	for n := 0; ; n++ {
		ok, err := c.trySend(to, m)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		switch {
		case n < 16:
			runtime.Gosched()
		default:
			d := time.Duration(n-15) * 10 * time.Microsecond
			if d > 200*time.Microsecond {
				d = 200 * time.Microsecond
			}
			time.Sleep(d)
		}
	}
}

func (c *channelConn) Inbox() <-chan Message { return c.inbox }

func (c *channelConn) Close() error { return nil }
