// Package transport carries messages between PowerLog's distributed
// workers and the master. It replaces the OpenMPI layer of the original
// system with two interchangeable implementations: an in-process channel
// network (used by tests and benches) and a TCP network on net plus a
// hand-rolled length-prefixed binary codec (used by the multi-process
// cluster example). The engine is written against the Conn interface
// only. Data messages carry pooled KV batches under the recycle contract
// documented in batch.go, so the steady-state update path allocates
// nothing.
package transport

import "fmt"

// KV is one key/value update travelling between workers (a delta to fold
// into the destination row's Intermediate entry).
type KV struct {
	K int64
	V float64
}

// Kind discriminates messages.
type Kind uint8

// Message kinds. Data carries folded deltas; the rest implement barrier
// and termination-control protocols (paper §5.3–5.4).
const (
	Data         Kind = iota // KV batch from a peer worker
	EndPhase                 // BSP: sender finished its send phase
	PhaseDone                // BSP: worker → master, phase complete + stats
	Continue                 // master → workers: run another superstep
	StatsRequest             // master → workers: report stats for round N
	StatsReply               // workers → master
	Stop                     // master → workers: terminate
	SnapRequest              // master → workers: open snapshot episode (Round = epoch)
	SnapMark                 // worker → worker, data lane: Chandy–Lamport cut marker
	SnapDone                 // worker → master: shard for the episode is durable
	Resume                   // master → workers: episode complete, resume computing
	Park                     // master → workers: fixpoint reached, park for the next session epoch (Round = epoch)
	ParkMark                 // worker → worker, data lane: no more data from sender this epoch
	ParkDone                 // worker → master: drained all peers' ParkMarks, parked
	EpochStart               // master → workers: mutations applied, run another fixpoint (Round = epoch)

	// Membership protocol (elastic re-join / scale, DESIGN.md §11). Join
	// is overloaded by sender: master → worker it is the fence request
	// (Round = fence epoch, Stats.Sent = rollback cut epoch or -1 for
	// seed reset, Stats.Recv = admitted worker id + 1 or 0), worker →
	// worker on the data lane it is the fence cut marker, and worker →
	// master it is the fence ack.
	Join    // membership fence request / cut marker / ack (see above)
	Orphan  // master → workers: Round names a lost (Stats.Sent=0) or retiring (Stats.Sent=1) worker
	Handoff // worker → worker: keyed row migration batch (Round 0 = Accumulation rows, 1 = Intermediate deltas)
	Release // master → workers: fence complete, membership change committed, resume
)

// String names the message kind.
func (k Kind) String() string {
	names := [...]string{"Data", "EndPhase", "PhaseDone", "Continue", "StatsRequest", "StatsReply", "Stop",
		"SnapRequest", "SnapMark", "SnapDone", "Resume", "Park", "ParkMark", "ParkDone", "EpochStart",
		"Join", "Orphan", "Handoff", "Release"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Stats is a worker's progress report.
type Stats struct {
	Sent     int64   // cumulative KVs sent
	Recv     int64   // cumulative KVs received
	AccDelta float64 // Σ|accumulation change| since last report
	AccSum   float64 // aggregate over the local Accumulation column (§5.4's termination thread)
	Passes   int64   // compute-loop passes completed (progress gating for ε checks)
	Idle     bool    // no local work pending
	Dirty    bool    // table has dirty rows or unflushed buffers
}

// Message is the single wire format for data and control traffic.
type Message struct {
	Kind  Kind
	From  int
	Round int
	KVs   []KV
	Stats Stats
}

// Conn is one endpoint's connection to the network. Inbox returns a
// single stream of all incoming messages. Send must be safe for
// concurrent use; messages between a fixed (sender, receiver) pair are
// delivered in order.
type Conn interface {
	// ID is this endpoint's index: workers are 0..Workers-1, the master
	// is Workers.
	ID() int
	// Workers is the number of worker endpoints.
	Workers() int
	// Send delivers m to endpoint `to`. On success (nil error) Send
	// takes ownership of the message: the caller must not touch it
	// (including the KV slice) afterwards. A Data batch is recycled
	// into the batch pool by whoever sees it last — the receiver after
	// folding it, or the transport itself once it is encoded onto a
	// wire. On error the message was NOT consumed: ownership stays with
	// the caller, who may retry the same message or recycle the batch.
	Send(to int, m Message) error
	// Inbox is the endpoint's receive stream. It is closed when the
	// network shuts down.
	Inbox() <-chan Message
	// Close releases the endpoint.
	Close() error
}

// TrySender is an optional Conn capability: non-blocking sends, so a
// sender can interleave other work while a destination is back-pressured.
type TrySender interface {
	TrySend(to int, m Message) (bool, error)
}

// MasterID returns the endpoint index of the master for a network with n
// workers.
func MasterID(n int) int { return n }
