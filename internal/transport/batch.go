package transport

import "sync"

// KV batches are pooled so the steady-state flush→send→receive→fold
// cycle allocates nothing. The recycle contract:
//
//   - A sender obtains a batch with GetBatch, fills it, and hands it to
//     Send inside a Data message. Send takes ownership of the slice: the
//     channel transport passes it by reference to the receiver, the TCP
//     transport recycles it immediately after encoding it onto the wire
//     (it may also reorder the slice in place while encoding).
//   - A receiver that has finished folding a Data message's KVs returns
//     them with PutBatch. The TCP read loop decodes into pooled batches,
//     so both transports hand receivers poolable slices.
//   - A batch must not be touched after PutBatch; anyone who wants to
//     keep KVs past the fold must copy them out first.
//
// Control messages (nil or caller-owned KVs) never have to participate:
// PutBatch on a foreign slice merely donates it to the pool, and a
// received batch that is never recycled is reclaimed by the GC.
//
// Two pools cooperate so that neither GetBatch nor PutBatch allocates in
// steady state: batchPool holds *[]KV boxes with live backing arrays,
// boxPool holds spent boxes whose slice was handed out. Without the box
// pool every PutBatch would heap-allocate a fresh 3-word slice header to
// wrap the value for sync.Pool.
var (
	batchPool = sync.Pool{New: func() any { s := make([]KV, 0, 512); return &s }}
	boxPool   = sync.Pool{New: func() any { return new([]KV) }}
)

// GetBatch returns an empty KV batch with capacity at least n.
func GetBatch(n int) []KV {
	box := batchPool.Get().(*[]KV)
	s := (*box)[:0]
	*box = nil
	boxPool.Put(box)
	if cap(s) < n {
		s = make([]KV, 0, n)
	}
	return s
}

// PutBatch recycles a batch obtained from GetBatch (or donates any
// KV slice to the pool). The caller must not use kvs afterwards.
func PutBatch(kvs []KV) {
	if cap(kvs) == 0 {
		return
	}
	box := boxPool.Get().(*[]KV)
	*box = kvs[:0]
	batchPool.Put(box)
}
