package transport

import (
	"testing"
	"time"

	"powerlog/internal/metrics"
)

// TestTCPMetricsRetryAndBreaker drives the dead-peer path and checks that
// the endpoint's counters track what the breaker actually did: extra
// attempts counted as retries, exactly one closed→open transition, and a
// half-open probe once the cooldown elapses.
func TestTCPMetricsRetryAndBreaker(t *testing.T) {
	dead := reservePort(t)
	w0, err := NewTCPEndpoint(0, 1, []string{"127.0.0.1:0", dead})
	if err != nil {
		t.Fatal(err)
	}
	defer w0.Close()
	reg := metrics.NewRegistry()
	w0.SetMetrics(reg)
	w0.SetRetry(RetryPolicy{Attempts: 2, Backoff: 100 * time.Microsecond,
		BreakAfter: 2, Cooldown: 5 * time.Millisecond, DialTimeout: time.Second})

	// One failed send: 2 attempts → 1 retry, 2 link failures → breaker
	// opens on the second (BreakAfter = 2).
	if err := w0.Send(1, Message{Kind: EndPhase}); err == nil {
		t.Fatal("send to a dead peer should fail")
	}
	snap := reg.Snapshot()
	if got := snap.Counter("tcp.send.retry"); got != 1 {
		t.Errorf("tcp.send.retry = %d, want 1", got)
	}
	if got := snap.Counter("tcp.breaker.open"); got != 1 {
		t.Errorf("tcp.breaker.open = %d, want 1", got)
	}
	if got := snap.Counter("tcp.breaker.halfopen"); got != 0 {
		t.Errorf("tcp.breaker.halfopen = %d before cooldown, want 0", got)
	}

	// While open, sends fail fast without dialing: no new retries.
	if err := w0.Send(1, Message{Kind: EndPhase}); err == nil {
		t.Fatal("open breaker should fail the send")
	}
	if got := reg.Snapshot().Counter("tcp.send.retry"); got != 1 {
		t.Errorf("tcp.send.retry = %d after fast-fail, want still 1", got)
	}

	// After the cooldown a send probes the link (half-open). The peer is
	// still dead, so the probe fails and the breaker re-arms — which must
	// NOT count as a second open transition.
	time.Sleep(10 * time.Millisecond)
	if err := w0.Send(1, Message{Kind: EndPhase}); err == nil {
		t.Fatal("half-open probe to a dead peer should fail")
	}
	snap = reg.Snapshot()
	if got := snap.Counter("tcp.breaker.halfopen"); got == 0 {
		t.Error("tcp.breaker.halfopen = 0 after cooldown probe, want > 0")
	}
	if got := snap.Counter("tcp.breaker.open"); got != 1 {
		t.Errorf("tcp.breaker.open = %d after re-arm, want still 1", got)
	}
	if got := snap.Counter("tcp.breaker.close"); got != 0 {
		t.Errorf("tcp.breaker.close = %d with peer still dead, want 0", got)
	}
}

// TestTCPMetricsPerPeerTraffic checks the per-peer delivery counters on a
// live pair, and that a recovered link counts a breaker close.
func TestTCPMetricsPerPeerTraffic(t *testing.T) {
	w0, w1, _ := tcpTrio(t)
	reg := metrics.NewRegistry()
	w0.SetMetrics(reg)

	kvs := []KV{{K: 1, V: 2.5}, {K: 9, V: -3}}
	if err := w0.Send(1, Message{Kind: Data, Round: 1, KVs: kvs}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-w1.Inbox():
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
	snap := reg.Snapshot()
	if got := snap.Counter("tcp.peer1.batch"); got != 1 {
		t.Errorf("tcp.peer1.batch = %d, want 1", got)
	}
	if got := snap.Counter("tcp.peer1.bytes"); got == 0 {
		t.Error("tcp.peer1.bytes = 0 after a delivered batch, want > 0")
	}
	if got := snap.Counter("tcp.peer0.batch"); got != 0 {
		t.Errorf("tcp.peer0.batch = %d, want 0 (nothing sent to self)", got)
	}
	if got := snap.Counter("tcp.send.retry"); got != 0 {
		t.Errorf("tcp.send.retry = %d on a healthy link, want 0", got)
	}
}

// TestTCPMetricsBreakerClose exercises open → half-open → closed: the
// peer comes up after the breaker opened, and the successful probe must
// count exactly one close.
func TestTCPMetricsBreakerClose(t *testing.T) {
	addr := reservePort(t)
	w0, err := NewTCPEndpoint(0, 1, []string{"127.0.0.1:0", addr})
	if err != nil {
		t.Fatal(err)
	}
	defer w0.Close()
	reg := metrics.NewRegistry()
	w0.SetMetrics(reg)
	w0.SetRetry(RetryPolicy{Attempts: 2, Backoff: 100 * time.Microsecond,
		BreakAfter: 2, Cooldown: 5 * time.Millisecond, DialTimeout: time.Second})
	if err := w0.Send(1, Message{Kind: EndPhase}); err == nil {
		t.Fatal("send before the peer exists should fail")
	}
	w1, err := NewTCPEndpoint(1, 1, []string{"127.0.0.1:0", addr})
	if err != nil {
		t.Skipf("could not rebind reserved port %s: %v", addr, err)
	}
	defer w1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err = w0.Send(1, Message{Kind: EndPhase, Round: 7}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("send never recovered after peer came up: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("tcp.breaker.close"); got != 1 {
		t.Errorf("tcp.breaker.close = %d after recovery, want 1", got)
	}
	if got := snap.Counter("tcp.peer1.batch"); got != 1 {
		t.Errorf("tcp.peer1.batch = %d after recovery, want 1", got)
	}
}
