package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func TestChannelNetworkBasic(t *testing.T) {
	net := NewChannelNetwork(2, 16)
	defer net.Close()
	w0, w1, master := net.Conn(0), net.Conn(1), net.Conn(MasterID(2))
	if w0.ID() != 0 || w1.ID() != 1 || master.ID() != 2 {
		t.Fatal("ids wrong")
	}
	if w0.Workers() != 2 {
		t.Fatal("workers wrong")
	}
	if err := w0.Send(1, Message{Kind: Data, KVs: []KV{{K: 7, V: 1.5}}}); err != nil {
		t.Fatal(err)
	}
	m := <-w1.Inbox()
	if m.Kind != Data || m.From != 0 || len(m.KVs) != 1 || m.KVs[0].K != 7 {
		t.Fatalf("got %+v", m)
	}
	if err := w1.Send(2, Message{Kind: StatsReply, Stats: Stats{Sent: 3, Idle: true}}); err != nil {
		t.Fatal(err)
	}
	m = <-master.Inbox()
	if m.Kind != StatsReply || m.Stats.Sent != 3 || !m.Stats.Idle {
		t.Fatalf("got %+v", m)
	}
}

func TestChannelNetworkOrdering(t *testing.T) {
	net := NewChannelNetwork(1, 128)
	defer net.Close()
	sender, receiver := net.Conn(1), net.Conn(0) // master → worker 0
	for i := 0; i < 100; i++ {
		if err := sender.Send(0, Message{Kind: Data, Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		m := <-receiver.Inbox()
		if m.Round != i {
			t.Fatalf("out of order: got %d at %d", m.Round, i)
		}
	}
}

func TestChannelNetworkSendErrors(t *testing.T) {
	net := NewChannelNetwork(1, 4)
	defer net.Close()
	if err := net.Conn(0).Send(99, Message{}); err == nil {
		t.Error("send to missing endpoint should fail")
	}
}

func TestChannelNetworkCloseIdempotent(t *testing.T) {
	net := NewChannelNetwork(1, 4)
	net.Close()
	net.Close() // must not panic
	// Send after close must not panic either (recover path).
	_ = net.Conn(0).Send(1, Message{})
}

func TestKindString(t *testing.T) {
	if Data.String() != "Data" || Stop.String() != "Stop" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should render")
	}
}

func tcpTrio(t *testing.T) (*TCPConn, *TCPConn, *TCPConn) {
	t.Helper()
	// Start on ephemeral ports, then rewire the address books.
	boot := []string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"}
	w0, err := NewTCPEndpoint(0, 2, boot)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := NewTCPEndpoint(1, 2, boot)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewTCPEndpoint(2, 2, boot)
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{w0.Addr(), w1.Addr(), m.Addr()}
	w0.SetAddressBook(addrs)
	w1.SetAddressBook(addrs)
	m.SetAddressBook(addrs)
	t.Cleanup(func() { w0.Close(); w1.Close(); m.Close() })
	return w0, w1, m
}

func TestTCPRoundTrip(t *testing.T) {
	w0, w1, master := tcpTrio(t)
	// Send takes ownership of the KV slice (the TCP path sorts it in
	// place and recycles it), so keep an independent copy to assert on.
	kvs := []KV{{K: 1, V: 2.5}, {K: 9, V: -3}}
	want := make([]KV, len(kvs))
	copy(want, kvs)
	if err := w0.Send(1, Message{Kind: Data, Round: 4, KVs: kvs}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-w1.Inbox():
		if m.Kind != Data || m.From != 0 || m.Round != 4 || len(m.KVs) != 2 || m.KVs[1] != want[1] {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
	// Worker → master control message.
	if err := w1.Send(2, Message{Kind: StatsReply, Stats: Stats{Recv: 2, AccDelta: 0.5, Dirty: true}}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-master.Inbox():
		if m.Stats.Recv != 2 || m.Stats.AccDelta != 0.5 || !m.Stats.Dirty {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
}

func TestTCPManyMessagesOrdered(t *testing.T) {
	w0, w1, _ := tcpTrio(t)
	const n = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := w0.Send(1, Message{Kind: Data, Round: i, KVs: []KV{{K: int64(i), V: float64(i)}}}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		select {
		case m := <-w1.Inbox():
			if m.Round != i {
				t.Fatalf("out of order: %d at %d", m.Round, i)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timeout")
		}
	}
	wg.Wait()
}

func TestTCPConcurrentSenders(t *testing.T) {
	w0, w1, master := tcpTrio(t)
	const per = 200
	var wg sync.WaitGroup
	for s, conn := range []*TCPConn{w0, master} {
		wg.Add(1)
		go func(s int, c *TCPConn) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := c.Send(1, Message{Kind: Data, KVs: []KV{{K: int64(s), V: 1}}}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s, conn)
	}
	got := 0
	for got < 2*per {
		select {
		case <-w1.Inbox():
			got++
		case <-time.After(5 * time.Second):
			t.Fatalf("timeout after %d messages", got)
		}
	}
	wg.Wait()
}

func TestTCPErrors(t *testing.T) {
	if _, err := NewTCPEndpoint(0, 2, []string{"127.0.0.1:0"}); err == nil {
		t.Error("short address book should fail")
	}
	if _, err := NewTCPEndpoint(5, 2, []string{"a", "b", "c"}); err == nil {
		t.Error("bad id should fail")
	}
	w0, _, _ := tcpTrio(t)
	if err := w0.Send(99, Message{}); err == nil {
		t.Error("send to missing endpoint should fail")
	}
	if err := w0.Send(-1, Message{}); err == nil {
		t.Error("send to negative endpoint should fail")
	}
}

func TestTCPCloseUnblocksReaders(t *testing.T) {
	boot := []string{"127.0.0.1:0", "127.0.0.1:0"}
	w0, err := NewTCPEndpoint(0, 1, boot)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for range w0.Inbox() {
		}
		close(done)
	}()
	if err := w0.Close(); err != nil && err.Error() == "" {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("inbox not closed on Close")
	}
	// Double close is fine.
	_ = w0.Close()
}

func TestTCPAddrFormat(t *testing.T) {
	w0, _, _ := tcpTrio(t)
	if _, err := fmt.Sscanf(w0.Addr(), "127.0.0.1:%d", new(int)); err != nil {
		t.Errorf("Addr = %q", w0.Addr())
	}
}

// reservePort grabs an ephemeral loopback port and releases it, so tests
// can point an address book at a port with no listener (dial refused)
// and later resurrect a listener on the same address.
func reservePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func TestTCPSendFailsWithoutListener(t *testing.T) {
	dead := reservePort(t)
	w0, err := NewTCPEndpoint(0, 1, []string{"127.0.0.1:0", dead})
	if err != nil {
		t.Fatal(err)
	}
	defer w0.Close()
	w0.SetRetry(RetryPolicy{Attempts: 3, Backoff: 100 * time.Microsecond,
		BreakAfter: 100, Cooldown: time.Minute, DialTimeout: time.Second})
	if err := w0.Send(1, Message{Kind: EndPhase}); err == nil {
		t.Fatal("send to a dead peer should exhaust its retries and fail")
	}
}

func TestTCPBreakerOpensThenFailsFast(t *testing.T) {
	dead := reservePort(t)
	w0, err := NewTCPEndpoint(0, 1, []string{"127.0.0.1:0", dead})
	if err != nil {
		t.Fatal(err)
	}
	defer w0.Close()
	w0.SetRetry(RetryPolicy{Attempts: 2, Backoff: 100 * time.Microsecond,
		BreakAfter: 3, Cooldown: time.Minute, DialTimeout: time.Second})
	var sawOpen bool
	for i := 0; i < 10; i++ {
		err := w0.Send(1, Message{Kind: EndPhase})
		if err == nil {
			t.Fatal("dead peer send succeeded")
		}
		if errors.Is(err, ErrPeerUnavailable) {
			sawOpen = true
			break
		}
	}
	if !sawOpen {
		t.Fatal("breaker never opened after repeated dial failures")
	}
	// While open, sends fail fast — no dial, no retry sleeps.
	start := time.Now()
	if err := w0.Send(1, Message{Kind: EndPhase}); !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("open breaker should fail fast with ErrPeerUnavailable, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("fast-fail took %v", elapsed)
	}
}

func TestTCPBreakerHalfOpenRecovers(t *testing.T) {
	addr := reservePort(t)
	w0, err := NewTCPEndpoint(0, 1, []string{"127.0.0.1:0", addr})
	if err != nil {
		t.Fatal(err)
	}
	defer w0.Close()
	w0.SetRetry(RetryPolicy{Attempts: 2, Backoff: 100 * time.Microsecond,
		BreakAfter: 2, Cooldown: 5 * time.Millisecond, DialTimeout: time.Second})
	if err := w0.Send(1, Message{Kind: EndPhase}); err == nil {
		t.Fatal("send before the peer exists should fail")
	}
	// The peer comes up on the reserved address; after the cooldown the
	// breaker's half-open probe redials and delivery succeeds.
	w1, err := NewTCPEndpoint(1, 1, []string{"127.0.0.1:0", addr})
	if err != nil {
		t.Skipf("could not rebind reserved port %s: %v", addr, err)
	}
	defer w1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err = w0.Send(1, Message{Kind: EndPhase, Round: 7}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("send never recovered after peer came up: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	select {
	case m := <-w1.Inbox():
		if m.Kind != EndPhase || m.Round != 7 {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recovered send never arrived")
	}
}

func TestTCPSendErrorKeepsOwnership(t *testing.T) {
	dead := reservePort(t)
	w0, err := NewTCPEndpoint(0, 1, []string{"127.0.0.1:0", dead})
	if err != nil {
		t.Fatal(err)
	}
	defer w0.Close()
	w0.SetRetry(RetryPolicy{Attempts: 1, Backoff: 100 * time.Microsecond,
		BreakAfter: 100, Cooldown: time.Minute, DialTimeout: time.Second})
	kvs := GetBatch(1)
	kvs = append(kvs, KV{K: 5, V: 9})
	msg := Message{Kind: Data, KVs: kvs}
	if err := w0.Send(1, msg); err == nil {
		t.Fatal("send to a dead peer should fail")
	}
	// On error the batch was not consumed: still intact, caller recycles.
	if len(kvs) != 1 || kvs[0].K != 5 || kvs[0].V != 9 {
		t.Fatalf("failed send corrupted the caller's batch: %+v", kvs)
	}
	PutBatch(kvs)
}
