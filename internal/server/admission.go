package server

import (
	"errors"
	"sync"
	"time"
)

// Admission control for the fixpoint-running endpoints (/v1/query with
// a cold pool entry, /v1/mutate). Two independent gates:
//
//   - A per-tenant token bucket bounds each tenant's REQUEST RATE.
//     Exceeding it is the tenant's own fault and maps to 429.
//   - A server-wide semaphore bounds CONCURRENT FIXPOINTS. A fixpoint
//     pins Config.Workers goroutines at full compute for up to the wall
//     budget, so admitting more of them than the machine has headroom
//     for only adds queueing delay everywhere; hitting the cap is the
//     server's state, not the caller's fault, and maps to 503 with
//     Retry-After.
//
// Point lookups (/v1/result) bypass both gates: they are wait-free
// reads of the last published fixpoint.

var (
	errRateLimited = errors.New("server: tenant rate limit exceeded")
	errSaturated   = errors.New("server: concurrent fixpoint limit reached")
)

type tokenBucket struct {
	tokens float64
	last   time.Time
}

type admission struct {
	rate  float64 // tokens per second per tenant
	burst float64 // bucket capacity

	mu      sync.Mutex
	buckets map[string]*tokenBucket

	fixpoints chan struct{} // semaphore: one slot per admitted fixpoint
}

func newAdmission(rate, burst float64, maxFixpoints int) *admission {
	return &admission{
		rate:      rate,
		burst:     burst,
		buckets:   map[string]*tokenBucket{},
		fixpoints: make(chan struct{}, maxFixpoints),
	}
}

// takeToken debits one token from the tenant's bucket, refilling it
// first for the time elapsed since the last visit. An unknown tenant
// starts with a full bucket.
func (a *admission) takeToken(tenant string, now time.Time) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.buckets[tenant]
	if b == nil {
		b = &tokenBucket{tokens: a.burst, last: now}
		a.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * a.rate
		if b.tokens > a.burst {
			b.tokens = a.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return errRateLimited
	}
	b.tokens--
	return nil
}

// acquireFixpoint claims a fixpoint slot without blocking; the caller
// must releaseFixpoint when the engine parks again.
func (a *admission) acquireFixpoint() error {
	select {
	case a.fixpoints <- struct{}{}:
		return nil
	default:
		return errSaturated
	}
}

func (a *admission) releaseFixpoint() { <-a.fixpoints }
