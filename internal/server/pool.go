package server

import (
	"fmt"
	"sync"

	"powerlog/internal/metrics"
	"powerlog/internal/runtime"
)

// pool keeps one parked Session per (dataset, algo|source, mode) key.
// The entry map only grows (keys are bounded by the catalogue × mode
// product); what turns over is each entry's session, swapped atomically
// when a fresh fixpoint replaces the cached one. Handlers grab the
// current session pointer under the entry lock and then drive it
// UNLOCKED — runtime.Session serializes its own public API and returns
// typed ErrSessionBusy/ErrSessionClosed rejections, which is exactly
// the back-pressure signal the handlers translate to HTTP. A handler
// may therefore race a swap and Apply to a just-closed session; it sees
// ErrSessionClosed, re-fetches the pointer once, and only then gives
// up.
type pool struct {
	mu      sync.Mutex
	entries map[string]*entry
	closed  bool
	pooled  *metrics.Gauge // serve.session.pooled mirror
}

// entry is one pooled dataset/program/mode slot.
type entry struct {
	key string

	mu   sync.Mutex
	s    *runtime.Session // nil until the first fresh fixpoint lands
	last *runtime.Result  // last fixpoint's Result (survives session swaps)
}

func newPool(pooled *metrics.Gauge) *pool {
	return &pool{entries: map[string]*entry{}, pooled: pooled}
}

func poolKey(dataset, algo, source string, mode runtime.Mode) string {
	if source != "" {
		// Custom programs pool by source text: two tenants submitting
		// byte-identical programs share a parked fixpoint.
		algo = fmt.Sprintf("custom-%x", hashString(source))
	}
	return dataset + "|" + algo + "|" + mode.String()
}

// hashString is FNV-1a, inlined to keep the key helper allocation-free.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// lookup returns the entry for key, or nil if no fixpoint has been
// computed for it yet.
func (p *pool) lookup(key string) *entry {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.entries[key]
}

// ensure returns the entry for key, creating an empty one if needed.
// It fails once the pool is closed (server draining).
func (p *pool) ensure(key string) (*entry, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, runtime.ErrSessionClosed
	}
	e := p.entries[key]
	if e == nil {
		e = &entry{key: key}
		p.entries[key] = e
	}
	return e, nil
}

// session returns the entry's current session (possibly nil) without
// claiming it.
func (e *entry) session() *runtime.Session {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.s
}

// result returns the last published fixpoint Result, surviving swaps.
func (e *entry) result() *runtime.Result {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.s != nil {
		if r := e.s.Result(); r != nil {
			return r
		}
	}
	return e.last
}

// publish records res as the entry's latest fixpoint (after a
// successful Apply on the current session).
func (e *entry) publish(res *runtime.Result) {
	e.mu.Lock()
	e.last = res
	e.mu.Unlock()
}

// swap installs a freshly opened session and returns the displaced one
// for the caller to Close OUTSIDE the entry lock (Close blocks until an
// in-flight Apply finishes, and nothing that holds e.mu may wait that
// long).
func (e *entry) swap(s *runtime.Session, res *runtime.Result) *runtime.Session {
	e.mu.Lock()
	old := e.s
	e.s = s
	e.last = res
	e.mu.Unlock()
	return old
}

// install is swap plus the pooled-gauge bookkeeping, rejecting the new
// session if the pool closed while it was being opened (the caller gets
// it back to Close).
func (p *pool) install(e *entry, s *runtime.Session, res *runtime.Result) (old *runtime.Session, err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, runtime.ErrSessionClosed
	}
	old = e.swap(s, res)
	p.pooled.Set(float64(p.liveLocked()))
	p.mu.Unlock()
	return old, nil
}

// liveLocked counts entries holding a session; callers hold p.mu.
func (p *pool) liveLocked() int {
	n := 0
	for _, e := range p.entries {
		if e.session() != nil {
			n++
		}
	}
	return n
}

// closeAll drains the pool: marks it closed (no new installs), detaches
// every session, and Closes them outside all locks. Returns the first
// close error.
func (p *pool) closeAll() error {
	p.mu.Lock()
	p.closed = true
	var victims []*runtime.Session
	for _, e := range p.entries {
		if old := e.swap(nil, e.result()); old != nil {
			victims = append(victims, old)
		}
	}
	p.pooled.Set(0)
	p.mu.Unlock()
	var first error
	for _, s := range victims {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// engineSnapshots merges, per entry, the master and worker metric
// snapshots of the last fixpoint — the engine-side half of /metrics.
func (p *pool) engineSnapshots() metrics.Snapshot {
	p.mu.Lock()
	entries := make([]*entry, 0, len(p.entries))
	for _, e := range p.entries {
		entries = append(entries, e)
	}
	p.mu.Unlock()
	var merged metrics.Snapshot
	for _, e := range entries {
		res := e.result()
		if res == nil {
			continue
		}
		merged = merged.Merge(res.Master)
		for _, ws := range res.Workers {
			merged = merged.Merge(ws.Metrics)
		}
	}
	return merged
}
