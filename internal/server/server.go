// Package server is the multi-tenant serving front end (DESIGN.md §12):
// a long-lived HTTP server that loads dataset shards once, keeps a pool
// of parked runtime.Sessions per (dataset, program, mode), and exposes
//
//	POST /v1/query   — compute a fresh fixpoint, stream values as NDJSON
//	GET  /v1/result  — wait-free point lookup on the cached fixpoint
//	POST /v1/mutate  — fold base-fact changes in via Session.Apply
//	GET  /metrics    — Prometheus text exposition (server + engines)
//	GET  /healthz    — liveness (503 while draining)
//
// Admission control is two-layered (per-tenant token bucket → 429,
// server-wide concurrent-fixpoint semaphore → 503 + Retry-After), and
// per-request wall budgets map onto runtime.Config.MaxWall and
// Config.CollectTimeout so a slow query is cut off at the client's
// deadline instead of the server default. Shutdown is a graceful drain:
// Close stops admitting work and closes every pooled session, each of
// which waits out its in-flight fixpoint.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"powerlog/internal/graph"
	"powerlog/internal/metrics"
	"powerlog/internal/runtime"
)

// Config tunes the front end. Zero values select the documented
// defaults.
type Config struct {
	// Workers is the number of worker shards per engine session
	// (default 4).
	Workers int
	// Rate is the per-tenant admission rate in requests/second
	// (default 50).
	Rate float64
	// Burst is the token-bucket capacity (default 2×Rate).
	Burst float64
	// MaxFixpoints caps concurrently running fixpoints across all
	// tenants (default 2).
	MaxFixpoints int
	// DefaultBudget is the per-request wall budget when the request
	// carries none (default 30s). A request's budget_ms overrides it;
	// MaxBudget (default 2m) caps what clients may ask for.
	DefaultBudget time.Duration
	MaxBudget     time.Duration
	// Tau and CheckInterval tune the engines (defaults 1ms / 2ms —
	// the bench harness's serving-grade settings, not the runtime's
	// batch defaults).
	Tau           time.Duration
	CheckInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Rate <= 0 {
		c.Rate = 50
	}
	if c.Burst <= 0 {
		c.Burst = 2 * c.Rate
	}
	if c.MaxFixpoints <= 0 {
		c.MaxFixpoints = 2
	}
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 30 * time.Second
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = 2 * time.Minute
	}
	if c.Tau <= 0 {
		c.Tau = time.Millisecond
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = 2 * time.Millisecond
	}
	return c
}

// Server is the front end. Create with New, mount Handler on an
// http.Server, and Close to drain.
type Server struct {
	cfg      Config
	reg      *metrics.Registry
	met      *serveMetrics
	adm      *admission
	pool     *pool
	mux      *http.ServeMux
	draining atomic.Bool
}

func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := metrics.NewRegistry()
	met := newServeMetrics(reg)
	s := &Server{
		cfg:  cfg,
		reg:  reg,
		met:  met,
		adm:  newAdmission(cfg.Rate, cfg.Burst, cfg.MaxFixpoints),
		pool: newPool(met.pooled),
		mux:  http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/result", s.handleResult)
	s.mux.HandleFunc("POST /v1/mutate", s.handleMutate)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Handler returns the HTTP handler to mount.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the server: new fixpoint work is rejected with 503, and
// every pooled session is closed, waiting out in-flight Applys. Safe to
// call more than once. Wire it behind http.Server.Shutdown so in-flight
// responses finish streaming first.
func (s *Server) Close() error {
	s.draining.Store(true)
	return s.pool.closeAll()
}

// ---------------------------------------------------------------------
// Request/response shapes.
// ---------------------------------------------------------------------

// edgeJSON is one edge in a mutate batch.
type edgeJSON struct {
	Src int32   `json:"src"`
	Dst int32   `json:"dst"`
	W   float64 `json:"w"`
}

func toEdges(in []edgeJSON) []graph.Edge {
	if len(in) == 0 {
		return nil
	}
	out := make([]graph.Edge, len(in))
	for i, e := range in {
		out[i] = graph.Edge{Src: e.Src, Dst: e.Dst, W: e.W}
	}
	return out
}

type queryRequest struct {
	Tenant  string `json:"tenant"`
	Dataset string `json:"dataset"`
	Algo    string `json:"algo"`
	Source  string `json:"source"` // custom Datalog program (overrides Algo)
	Mode    string `json:"mode"`
	// BudgetMS is the wall budget for the fixpoint; it maps onto
	// runtime.Config.MaxWall (and a quarter of it onto CollectTimeout).
	BudgetMS int64 `json:"budget_ms"`
	// Limit caps streamed value lines (0 = all).
	Limit int `json:"limit"`
	// Fresh forces a new fixpoint even when a parked one exists.
	Fresh bool `json:"fresh"`
}

type mutateRequest struct {
	Tenant   string     `json:"tenant"`
	Dataset  string     `json:"dataset"`
	Algo     string     `json:"algo"`
	Source   string     `json:"source"`
	Mode     string     `json:"mode"`
	BudgetMS int64      `json:"budget_ms"`
	Inserts  []edgeJSON `json:"inserts"`
	Deletes  []edgeJSON `json:"deletes"`
}

// queryHeader is the first NDJSON line of a /v1/query response.
type queryHeader struct {
	Kind      string `json:"kind"` // "header"
	Dataset   string `json:"dataset"`
	Mode      string `json:"mode"`
	Rounds    int    `json:"rounds"`
	ElapsedUS int64  `json:"elapsed_us"`
	Converged bool   `json:"converged"`
	Values    int    `json:"values"`
	Cached    bool   `json:"cached"`
}

type valueLine struct {
	K int64   `json:"k"`
	V float64 `json:"v"`
}

type errBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// httpError maps an error onto a status code and records the shed /
// error counters. Busy and saturated map to 503 with Retry-After (the
// server's state), rate limiting to 429 (the tenant's), ConfigError to
// 400 (the request named an invalid budget), everything else to the
// caller-provided fallback.
func (s *Server) httpError(w http.ResponseWriter, err error, fallback int) {
	var ce *runtime.ConfigError
	switch {
	case errors.Is(err, errRateLimited):
		s.met.shedRate.Add(1)
		writeJSON(w, http.StatusTooManyRequests, errBody{Error: err.Error()})
	case errors.Is(err, errSaturated), errors.Is(err, runtime.ErrSessionBusy):
		s.met.shedBusy.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errBody{Error: err.Error()})
	case errors.Is(err, runtime.ErrSessionClosed):
		s.met.shedBusy.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errBody{Error: "server: draining or session replaced; retry"})
	case errors.As(err, &ce):
		s.met.errs.Add(1)
		writeJSON(w, http.StatusBadRequest, errBody{Error: err.Error()})
	default:
		s.met.errs.Add(1)
		writeJSON(w, fallback, errBody{Error: err.Error()})
	}
}

// engineConfig maps a request budget onto a runtime.Config. The budget
// becomes MaxWall; CollectTimeout gets a quarter of it so a dead worker
// is detected well inside the client's deadline rather than at the
// MaxWall fallback. Validation (negative budgets and friends) is left
// to runtime.Config.Validate inside Open, whose *ConfigError the
// handlers map to 400.
func (s *Server) engineConfig(mode runtime.Mode, budgetMS int64) runtime.Config {
	budget := s.cfg.DefaultBudget
	if budgetMS != 0 {
		budget = time.Duration(budgetMS) * time.Millisecond
	}
	if budget > s.cfg.MaxBudget {
		budget = s.cfg.MaxBudget
	}
	return runtime.Config{
		Workers:        s.cfg.Workers,
		Mode:           mode,
		Tau:            s.cfg.Tau,
		CheckInterval:  s.cfg.CheckInterval,
		MaxWall:        budget,
		CollectTimeout: budget / 4,
	}
}

// ---------------------------------------------------------------------
// Handlers.
// ---------------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errBody{Error: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.met.req.Add(1)
	snap := s.reg.Snapshot().Merge(s.pool.engineSnapshots())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	metrics.WritePrometheus(w, "powerlog", snap)
}

// handleQuery computes (or reuses) a fixpoint and streams it. The fresh
// path passes both admission gates, opens a session against a private
// graph copy, swaps it into the pool, and closes the displaced one; the
// cached path is admission-free like a lookup.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.met.req.Add(1)
	start := time.Now()
	var req queryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		s.httpError(w, fmt.Errorf("decode request: %w", err), http.StatusBadRequest)
		return
	}
	mode, err := modeByName(req.Mode)
	if err != nil {
		s.httpError(w, err, http.StatusBadRequest)
		return
	}
	if s.draining.Load() {
		s.httpError(w, runtime.ErrSessionClosed, 0)
		return
	}
	key := poolKey(req.Dataset, req.Algo, req.Source, mode)

	if !req.Fresh {
		if e := s.pool.lookup(key); e != nil {
			if res := e.result(); res != nil {
				s.met.queryCached.Add(1)
				s.streamResult(w, req, mode, res, true)
				s.met.queryLat.Observe(uint64(time.Since(start).Microseconds()))
				return
			}
		}
	}

	if err := s.adm.takeToken(req.Tenant, start); err != nil {
		s.httpError(w, err, 0)
		return
	}
	if err := s.adm.acquireFixpoint(); err != nil {
		s.httpError(w, err, 0)
		return
	}
	defer s.adm.releaseFixpoint()

	plan, err := buildPlan(req.Algo, req.Source, req.Dataset)
	if err != nil {
		s.httpError(w, err, http.StatusBadRequest)
		return
	}
	sess, err := runtime.Open(plan, s.engineConfig(mode, req.BudgetMS))
	if err != nil {
		s.httpError(w, err, http.StatusInternalServerError)
		return
	}
	res := sess.Result()
	e, err := s.pool.ensure(key)
	if err == nil {
		var old *runtime.Session
		old, err = s.pool.install(e, sess, res)
		if old != nil {
			old.Close()
		}
	}
	if err != nil {
		// Pool closed while we were computing: serve the response we
		// already paid for, but don't park the session.
		sess.Close()
	}
	s.met.queryFresh.Add(1)
	s.streamResult(w, req, mode, res, false)
	s.met.queryLat.Observe(uint64(time.Since(start).Microseconds()))
}

// streamResult writes the NDJSON header plus value lines, keys sorted
// for determinism, capped at req.Limit when non-zero.
func (s *Server) streamResult(w http.ResponseWriter, req queryRequest, mode runtime.Mode, res *runtime.Result, cached bool) {
	keys := make([]int64, 0, len(res.Values))
	for k := range res.Values {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if req.Limit > 0 && len(keys) > req.Limit {
		keys = keys[:req.Limit]
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	enc.Encode(queryHeader{
		Kind:      "header",
		Dataset:   req.Dataset,
		Mode:      mode.String(),
		Rounds:    res.Rounds,
		ElapsedUS: res.Elapsed.Microseconds(),
		Converged: res.Converged,
		Values:    len(res.Values),
		Cached:    cached,
	})
	for _, k := range keys {
		enc.Encode(valueLine{K: k, V: res.Values[k]})
	}
}

// handleResult is the wait-free point lookup: no admission gates, no
// session claim — it reads the last published fixpoint, which stays
// valid even while an Apply re-fixpoints concurrently.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.met.req.Add(1)
	start := time.Now()
	q := r.URL.Query()
	mode, err := modeByName(q.Get("mode"))
	if err != nil {
		s.httpError(w, err, http.StatusBadRequest)
		return
	}
	key, err := strconv.ParseInt(q.Get("key"), 10, 64)
	if err != nil {
		s.httpError(w, fmt.Errorf("bad key %q", q.Get("key")), http.StatusBadRequest)
		return
	}
	e := s.pool.lookup(poolKey(q.Get("dataset"), q.Get("algo"), "", mode))
	if e == nil {
		s.met.errs.Add(1)
		writeJSON(w, http.StatusNotFound, errBody{Error: "no cached fixpoint for this dataset/algo/mode; POST /v1/query first"})
		return
	}
	res := e.result()
	if res == nil {
		s.met.errs.Add(1)
		writeJSON(w, http.StatusNotFound, errBody{Error: "no fixpoint published yet"})
		return
	}
	v, ok := res.Values[key]
	if !ok {
		s.met.errs.Add(1)
		writeJSON(w, http.StatusNotFound, errBody{Error: fmt.Sprintf("key %d has no derived value", key)})
		return
	}
	s.met.lookup.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"k": key, "v": v})
	s.met.lookupLat.Observe(uint64(time.Since(start).Microseconds()))
}

// handleMutate folds a base-fact batch into the pooled session via
// Session.Apply. A busy session (fixpoint in flight) is shed with 503
// rather than queued: Apply can legitimately run for the whole wall
// budget, and the client's retry policy owns the wait.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	s.met.req.Add(1)
	start := time.Now()
	var req mutateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&req); err != nil {
		s.httpError(w, fmt.Errorf("decode request: %w", err), http.StatusBadRequest)
		return
	}
	mode, err := modeByName(req.Mode)
	if err != nil {
		s.httpError(w, err, http.StatusBadRequest)
		return
	}
	if s.draining.Load() {
		s.httpError(w, runtime.ErrSessionClosed, 0)
		return
	}
	if err := s.adm.takeToken(req.Tenant, start); err != nil {
		s.httpError(w, err, 0)
		return
	}
	e := s.pool.lookup(poolKey(req.Dataset, req.Algo, req.Source, mode))
	if e == nil || e.session() == nil {
		s.met.errs.Add(1)
		writeJSON(w, http.StatusNotFound, errBody{Error: "no parked session for this dataset/algo/mode; POST /v1/query first"})
		return
	}
	if err := s.adm.acquireFixpoint(); err != nil {
		s.httpError(w, err, 0)
		return
	}
	defer s.adm.releaseFixpoint()

	mut := runtime.Mutation{Inserts: toEdges(req.Inserts), Deletes: toEdges(req.Deletes)}
	// One retry on ErrSessionClosed: a racing fresh query may have
	// swapped the session between our lookup and the Apply.
	var res *runtime.Result
	for attempt := 0; ; attempt++ {
		sess := e.session()
		if sess == nil {
			s.httpError(w, runtime.ErrSessionClosed, 0)
			return
		}
		res, err = sess.Apply(mut)
		if errors.Is(err, runtime.ErrSessionClosed) && attempt == 0 {
			continue
		}
		break
	}
	if err != nil {
		s.httpError(w, err, http.StatusInternalServerError)
		return
	}
	e.publish(res)
	s.met.mutate.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"rounds":     res.Rounds,
		"elapsed_us": res.Elapsed.Microseconds(),
		"converged":  res.Converged,
		"inserts":    len(req.Inserts),
		"deletes":    len(req.Deletes),
		"values":     len(res.Values),
	})
	s.met.mutateLat.Observe(uint64(time.Since(start).Microseconds()))
}
