package server

import (
	"fmt"
	"strings"

	"powerlog/internal/analyzer"
	"powerlog/internal/compiler"
	"powerlog/internal/edb"
	"powerlog/internal/gen"
	"powerlog/internal/graph"
	"powerlog/internal/parser"
	"powerlog/internal/progs"
	"powerlog/internal/runtime"
)

// The loader maps request parameters (dataset, algo, mode) onto compiled
// plans. Dataset graphs are built through gen's cache ONCE and then
// copied per session: Session.Apply mutates the plan's EDB in place, so
// handing a session the cached graph would poison every later request
// (and every bench run in the same process) that Builds the same
// dataset.

// datasetByName resolves a dataset against the Table-2 stand-ins plus
// the tiny test datasets (the latter are what the smoke target and the
// serve bench use).
func datasetByName(name string) (gen.Dataset, error) {
	if d, err := gen.DatasetByName(name); err == nil {
		return d, nil
	}
	for _, d := range gen.TinyDatasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return gen.Dataset{}, fmt.Errorf("unknown dataset %q", name)
}

// modeByName parses the request's engine-mode string. Only the session-
// capable MRA modes are served: naive evaluation cannot re-fixpoint
// incrementally, so a parked naive session would be useless for
// /v1/mutate and no faster for /v1/query.
func modeByName(name string) (runtime.Mode, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "unified", "syncasync", "mra+syncasync":
		return runtime.MRASyncAsync, nil
	case "sync", "mra+sync":
		return runtime.MRASync, nil
	case "async", "mra+async":
		return runtime.MRAAsync, nil
	case "ssp", "mra+ssp":
		return runtime.MRASSP, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (have unified, sync, async, ssp)", name)
	}
}

// algoSource resolves a catalogue algorithm to its Datalog source and
// whether it runs on the weighted build of the dataset. The serving
// catalogue is the subset of Table 1 that needs only the edge relation —
// Adsorption and BP also need attribute columns, which a stateless
// query request has nowhere to carry.
func algoSource(algo string, g *graph.Graph) (src string, weighted bool, err error) {
	switch algo {
	case "SSSP":
		return progs.SSSP, true, nil
	case "CC":
		return progs.CC, false, nil
	case "PageRank":
		return progs.PageRank, false, nil
	case "Katz":
		// Scale the attenuation below the spectral bound so the metric
		// is finite on skewed graphs, as the bench harness does.
		alpha := 0.1
		if lambda := gen.SpectralRadiusEstimate(g, 12); lambda > 0 && 0.9/lambda < alpha {
			alpha = 0.9 / lambda
		}
		return progs.KatzWithAlpha(alpha), false, nil
	default:
		return "", false, fmt.Errorf("unknown algo %q (have SSSP, CC, PageRank, Katz)", algo)
	}
}

// buildPlan compiles a plan for (algo|source, dataset) over a PRIVATE
// copy of the dataset graph. A non-empty source is a client-submitted
// Datalog program; it must read its edges from a binary relation named
// "edge" and passes through the same parse/analyze pipeline as the
// catalogue (the analyzer rejects programs that fail the MRA condition
// check). Custom programs get the weighted build.
func buildPlan(algo, source, dataset string) (*compiler.Plan, error) {
	d, err := datasetByName(dataset)
	if err != nil {
		return nil, err
	}
	var src string
	weighted := true
	if source != "" {
		src = source
	} else {
		// Probe with the unweighted build: algoSource only reads the
		// spectral radius, which the weighted flag does not change
		// structurally.
		src, weighted, err = algoSource(algo, d.Build(false))
		if err != nil {
			return nil, err
		}
	}
	base := d.Build(weighted)
	g, err := graph.FromEdges(base.NumVertices(), base.Edges(), weighted)
	if err != nil {
		return nil, fmt.Errorf("copy dataset graph: %w", err)
	}
	db := edb.NewDB()
	db.SetGraph("edge", g)
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := analyzer.Analyze(prog)
	if err != nil {
		return nil, err
	}
	return compiler.Compile(info, db, compiler.Options{})
}
