package server

import "powerlog/internal/metrics"

// serveMetrics holds the front end's instruments. All serve.* names are
// registered here — the single registration site the metricname
// analyzer requires — against the server's own Registry, which /metrics
// renders alongside the engines' per-fixpoint snapshots.
type serveMetrics struct {
	// Request mix.
	req         *metrics.Counter // every request that reached a handler
	queryFresh  *metrics.Counter // fresh fixpoints computed by /v1/query
	queryCached *metrics.Counter // /v1/query served from the parked fixpoint
	lookup      *metrics.Counter // /v1/result point lookups
	mutate      *metrics.Counter // /v1/mutate incremental re-fixpoints

	// Shedding and failures.
	shedRate *metrics.Counter // 429s from the per-tenant token bucket
	shedBusy *metrics.Counter // 503s from the fixpoint semaphore or a busy session
	errs     *metrics.Counter // 4xx/5xx other than shedding

	// Pool state.
	pooled *metrics.Gauge // live parked sessions

	// Request-path latency (microseconds, log2 buckets).
	queryLat  *metrics.Histogram
	lookupLat *metrics.Histogram
	mutateLat *metrics.Histogram
}

func newServeMetrics(r *metrics.Registry) *serveMetrics {
	return &serveMetrics{
		req:         r.Counter("serve.req"),
		queryFresh:  r.Counter("serve.query.fresh"),
		queryCached: r.Counter("serve.query.cached"),
		lookup:      r.Counter("serve.lookup"),
		mutate:      r.Counter("serve.mutate"),
		shedRate:    r.Counter("serve.shed.rate"),
		shedBusy:    r.Counter("serve.shed.busy"),
		errs:        r.Counter("serve.error"),
		pooled:      r.Gauge("serve.session.pooled"),
		queryLat:    r.Histogram("serve.query.latency_us"),
		lookupLat:   r.Histogram("serve.lookup.latency_us"),
		mutateLat:   r.Histogram("serve.mutate.latency_us"),
	}
}
