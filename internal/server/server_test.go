package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"powerlog/internal/metrics"
)

// newTestServer spins up the front end over httptest with serving-grade
// admission defaults loose enough for tests unless overridden.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.DefaultBudget == 0 {
		cfg.DefaultBudget = 30 * time.Second
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

// readNDJSON decodes a query response: header line then value lines.
func readNDJSON(t *testing.T, r io.Reader) (queryHeader, map[int64]float64) {
	t.Helper()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("empty NDJSON response")
	}
	var hdr queryHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("decode header %q: %v", sc.Text(), err)
	}
	if hdr.Kind != "header" {
		t.Fatalf("first line is %q, want header", hdr.Kind)
	}
	vals := map[int64]float64{}
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var v valueLine
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("decode value line %q: %v", sc.Text(), err)
		}
		vals[v.K] = v.V
	}
	return hdr, vals
}

// TestQueryLookupMetrics drives the primary flow end to end: fresh
// fixpoint streamed as NDJSON, cached re-read, wait-free point lookup,
// and a /metrics scrape over the real post-fixpoint snapshot that must
// pass the exposition conformance check.
func TestQueryLookupMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	q := queryRequest{Tenant: "t1", Dataset: "tiny-chain", Algo: "SSSP", Mode: "unified"}

	resp := postJSON(t, ts.URL+"/v1/query", q)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	hdr, vals := readNDJSON(t, resp.Body)
	resp.Body.Close()
	if !hdr.Converged {
		t.Fatalf("fresh fixpoint did not converge: %+v", hdr)
	}
	if hdr.Cached {
		t.Fatalf("first query reported cached")
	}
	if len(vals) == 0 || len(vals) != hdr.Values {
		t.Fatalf("streamed %d values, header says %d", len(vals), hdr.Values)
	}

	// Second identical query must hit the parked fixpoint.
	resp = postJSON(t, ts.URL+"/v1/query", q)
	hdr2, vals2 := readNDJSON(t, resp.Body)
	resp.Body.Close()
	if !hdr2.Cached {
		t.Fatalf("second query did not hit the cache")
	}
	if len(vals2) != len(vals) {
		t.Fatalf("cached stream has %d values, fresh had %d", len(vals2), len(vals))
	}

	// Point lookup on a streamed key must agree with the stream.
	var key int64 = -1
	var want float64
	for k, v := range vals {
		key, want = k, v
		break
	}
	resp, err := http.Get(fmt.Sprintf("%s/v1/result?dataset=tiny-chain&algo=SSSP&mode=unified&key=%d", ts.URL, key))
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	var lk struct {
		K int64   `json:"k"`
		V float64 `json:"v"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&lk); err != nil {
		t.Fatalf("decode lookup: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || lk.K != key || lk.V != want {
		t.Fatalf("lookup (%d) = %+v status %d, want v=%g", key, lk, resp.StatusCode, want)
	}

	// Unknown dataset/algo/mode combination is a 404.
	resp, err = http.Get(ts.URL + "/v1/result?dataset=tiny-chain&algo=CC&mode=unified&key=0")
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("lookup without fixpoint: status %d, want 404", resp.StatusCode)
	}

	// The exposition conformance satellite: scrape /metrics after a real
	// fixpoint and validate the grammar plus the serve.* series.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := metrics.CheckExposition(body); err != nil {
		t.Fatalf("/metrics fails conformance: %v\n%s", err, body)
	}
	for _, want := range []string{
		"powerlog_serve_query_latency_us_bucket{le=\"+Inf\"}",
		"powerlog_serve_query_fresh_total 1",
		"powerlog_serve_query_cached_total 1",
		"powerlog_serve_lookup_total 1",
		"powerlog_serve_session_pooled 1",
		"powerlog_master_round_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMutate checks the incremental path: a parked SSSP session absorbs
// an edge insert via Session.Apply and the cached values move.
func TestMutate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	q := queryRequest{Tenant: "t1", Dataset: "tiny-chain", Algo: "SSSP", Mode: "unified"}
	resp := postJSON(t, ts.URL+"/v1/query", q)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	_, before := readNDJSON(t, resp.Body)
	resp.Body.Close()

	// A zero-weight shortcut from the source into the far end of the
	// chain must shrink some distances.
	m := mutateRequest{
		Tenant: "t1", Dataset: "tiny-chain", Algo: "SSSP", Mode: "unified",
		Inserts: []edgeJSON{{Src: 0, Dst: 250, W: 0.001}},
	}
	resp = postJSON(t, ts.URL+"/v1/mutate", m)
	var mres struct {
		Converged bool `json:"converged"`
		Rounds    int  `json:"rounds"`
	}
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &mres); err != nil {
		t.Fatalf("decode mutate response %q: %v", body, err)
	}
	resp.Body.Close()
	if !mres.Converged {
		t.Fatalf("mutate epoch did not converge: %s", body)
	}

	resp = postJSON(t, ts.URL+"/v1/query", q)
	hdr, after := readNDJSON(t, resp.Body)
	resp.Body.Close()
	if !hdr.Cached {
		t.Fatalf("post-mutate query did not hit the cache")
	}
	improved := 0
	for k, v := range after {
		if old, ok := before[k]; ok && v < old {
			improved++
		}
	}
	if improved == 0 {
		t.Fatalf("no distance improved after inserting a shortcut edge")
	}
}

// TestAdmissionRate checks the per-tenant token bucket: with burst 1
// and a negligible refill rate, the second fresh query is shed with 429
// while a different tenant still gets through.
func TestAdmissionRate(t *testing.T) {
	_, ts := newTestServer(t, Config{Rate: 0.0001, Burst: 1, MaxFixpoints: 4})
	q := queryRequest{Tenant: "t1", Dataset: "tiny-chain", Algo: "CC", Mode: "unified", Fresh: true}
	resp := postJSON(t, ts.URL+"/v1/query", q)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first query status %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/query", q)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second query status %d, want 429", resp.StatusCode)
	}
	q.Tenant = "t2"
	resp = postJSON(t, ts.URL+"/v1/query", q)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant status %d, want 200", resp.StatusCode)
	}
}

// TestAdmissionSaturated checks the fixpoint semaphore: with every slot
// held, fresh queries and mutates shed with 503 + Retry-After.
func TestAdmissionSaturated(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxFixpoints: 1})
	if err := s.adm.acquireFixpoint(); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer s.adm.releaseFixpoint()

	q := queryRequest{Tenant: "t1", Dataset: "tiny-chain", Algo: "CC", Mode: "unified", Fresh: true}
	resp := postJSON(t, ts.URL+"/v1/query", q)
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated query status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("503 without Retry-After")
	}
	resp.Body.Close()
}

// TestBudgetValidation feeds a negative budget through the HTTP layer;
// runtime.Config.Validate must reject it with a field-named ConfigError
// that maps to 400 (the Config.Validate satellite, observed end to
// end).
func TestBudgetValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	q := queryRequest{Tenant: "t1", Dataset: "tiny-chain", Algo: "SSSP", Mode: "unified", BudgetMS: -50, Fresh: true}
	resp := postJSON(t, ts.URL+"/v1/query", q)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative budget status %d: %s", resp.StatusCode, body)
	}
	var eb errBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("decode error body %q: %v", body, err)
	}
	if !strings.Contains(eb.Error, "CollectTimeout") && !strings.Contains(eb.Error, "MaxWall") {
		t.Fatalf("error %q does not name the rejected field", eb.Error)
	}
}

// TestBadRequests covers the 4xx surface: unknown dataset, unknown
// algo, unparseable mode, naive mode, mutate without a session.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  queryRequest
	}{
		{"unknown dataset", queryRequest{Tenant: "t", Dataset: "nope", Algo: "SSSP"}},
		{"unknown algo", queryRequest{Tenant: "t", Dataset: "tiny-chain", Algo: "FFT"}},
		{"unknown mode", queryRequest{Tenant: "t", Dataset: "tiny-chain", Algo: "SSSP", Mode: "warp"}},
		{"naive mode", queryRequest{Tenant: "t", Dataset: "tiny-chain", Algo: "SSSP", Mode: "naive"}},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+"/v1/query", c.req)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
	}
	m := mutateRequest{Tenant: "t", Dataset: "tiny-chain", Algo: "SSSP", Mode: "unified",
		Inserts: []edgeJSON{{Src: 0, Dst: 1, W: 1}}}
	resp := postJSON(t, ts.URL+"/v1/mutate", m)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("mutate without session: status %d, want 404", resp.StatusCode)
	}
}

// TestDrain checks graceful shutdown: Close drains the pool; queries
// and mutates are then shed with 503 and /healthz reports draining,
// while /metrics and cached state stay readable semantics aside.
func TestDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	q := queryRequest{Tenant: "t1", Dataset: "tiny-chain", Algo: "SSSP", Mode: "unified"}
	resp := postJSON(t, ts.URL+"/v1/query", q)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp = postJSON(t, ts.URL+"/v1/query", queryRequest{Tenant: "t1", Dataset: "tiny-chain", Algo: "CC", Mode: "unified", Fresh: true})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain query status %d, want 503", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestConcurrentHandlers hammers one pooled session from concurrent
// HTTP clients mixing lookups and mutates. Every response must be one
// of the documented outcomes (200, 404 pre-fixpoint, 429, 503 busy) —
// never a hang, a 500, or a torn read. This is the HTTP-level companion
// of the runtime package's concurrent-session race tests.
func TestConcurrentHandlers(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent hammer needs real fixpoints; skip in -short")
	}
	_, ts := newTestServer(t, Config{Rate: 10000, Burst: 10000, MaxFixpoints: 2})
	q := queryRequest{Tenant: "t1", Dataset: "tiny-chain", Algo: "SSSP", Mode: "unified"}
	resp := postJSON(t, ts.URL+"/v1/query", q)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed query status %d", resp.StatusCode)
	}

	var wg sync.WaitGroup
	stop := time.Now().Add(500 * time.Millisecond)
	errc := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cli := &http.Client{Timeout: 30 * time.Second}
			for i := 0; time.Now().Before(stop); i++ {
				if g%2 == 0 {
					r, err := cli.Get(ts.URL + "/v1/result?dataset=tiny-chain&algo=SSSP&mode=unified&key=1")
					if err != nil {
						errc <- err
						return
					}
					io.Copy(io.Discard, r.Body)
					r.Body.Close()
					if r.StatusCode != http.StatusOK && r.StatusCode != http.StatusNotFound {
						errc <- fmt.Errorf("lookup status %d", r.StatusCode)
						return
					}
				} else {
					m := mutateRequest{Tenant: "t1", Dataset: "tiny-chain", Algo: "SSSP", Mode: "unified",
						Inserts: []edgeJSON{{Src: int32(g), Dst: int32(10 + i%200), W: 1}}}
					b, _ := json.Marshal(m)
					r, err := cli.Post(ts.URL+"/v1/mutate", "application/json", bytes.NewReader(b))
					if err != nil {
						errc <- err
						return
					}
					io.Copy(io.Discard, r.Body)
					r.Body.Close()
					switch r.StatusCode {
					case http.StatusOK, http.StatusServiceUnavailable, http.StatusTooManyRequests:
					default:
						errc <- fmt.Errorf("mutate status %d", r.StatusCode)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
