package edb

import (
	"testing"

	"powerlog/internal/graph"
)

func TestMutateGraph(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 2, W: 2}}, true)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	db.SetGraph("edge", g)
	if err := db.MutateGraph("edge", []graph.Edge{{Src: 2, Dst: 3, W: 5}}, []graph.Edge{{Src: 0, Dst: 1}}); err != nil {
		t.Fatal(err)
	}
	// The registered *Graph is mutated in place: compiled closures that
	// captured it see the new adjacency.
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
	got, ok := db.Graph("edge")
	if !ok || got != g {
		t.Fatal("graph identity changed under mutation")
	}
	if err := db.MutateGraph("nope", nil, nil); err == nil {
		t.Fatal("mutating an unregistered graph succeeded")
	}
}

func TestMutationLog(t *testing.T) {
	var log MutationLog
	if log.Len() != 0 || log.LastEpoch() != 0 {
		t.Fatal("fresh log not empty")
	}
	log.Append(1, GraphMutation{Pred: "edge", Inserts: []graph.Edge{{Src: 0, Dst: 1}}})
	log.Append(2, GraphMutation{Pred: "edge", Deletes: []graph.Edge{{Src: 0, Dst: 1}}})
	log.Append(3, GraphMutation{Pred: "edge"})
	if log.Len() != 3 || log.LastEpoch() != 3 {
		t.Fatalf("Len=%d LastEpoch=%d, want 3 and 3", log.Len(), log.LastEpoch())
	}
	since := log.Since(1)
	if len(since) != 2 || since[0].Epoch != 2 || since[1].Epoch != 3 {
		t.Fatalf("Since(1) = %+v, want epochs 2,3", since)
	}
	if got := log.Since(3); len(got) != 0 {
		t.Fatalf("Since(3) = %+v, want empty", got)
	}
	if got := log.Since(0); len(got) != 3 {
		t.Fatalf("Since(0) returned %d entries, want 3", len(got))
	}
}
