package edb

import (
	"errors"
	"sort"
	"testing"

	"powerlog/internal/graph"
	"powerlog/internal/parser"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	edges := NewRelation("e", 3)
	edges.Add(0, 1, 5)
	edges.Add(0, 2, 3)
	edges.Add(1, 2, 1)
	edges.Add(2, 0, 7)
	db.AddRelation(edges)
	attr := NewRelation("attr", 2)
	attr.Add(0, 10)
	attr.Add(1, 20)
	attr.Add(2, 30)
	db.AddRelation(attr)
	return db
}

// evalRule parses "h(...) :- body." and evaluates the body, returning all
// binding environments projected onto the given variables.
func evalRule(t *testing.T, db *DB, src string, vars ...string) [][]float64 {
	t.Helper()
	r, err := parser.ParseRule(src)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]float64
	err = db.EvalBody(r.Bodies[0].Atoms, func(env Env) error {
		row := make([]float64, len(vars))
		for i, v := range vars {
			row[i] = env[v]
		}
		out = append(out, row)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

func TestRelationBasics(t *testing.T) {
	r := NewRelation("r", 2)
	r.Add(1, 10)
	r.Add(2, 20)
	r.Add(1, 11)
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	if got := r.Row(1); got[0] != 2 || got[1] != 20 {
		t.Errorf("row 1 = %v", got)
	}
	rows := r.rowsWithFirst(1)
	if len(rows) != 2 {
		t.Errorf("index lookup = %v", rows)
	}
	// Add invalidates the index.
	r.Add(1, 12)
	if len(r.rowsWithFirst(1)) != 3 {
		t.Error("index not rebuilt after Add")
	}
}

func TestRelationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch should panic")
		}
	}()
	NewRelation("r", 2).Add(1)
}

func TestEvalSimpleScan(t *testing.T) {
	db := testDB(t)
	got := evalRule(t, db, "h(X) :- e(X,Y,W).", "X", "Y", "W")
	if len(got) != 4 {
		t.Fatalf("rows = %v", got)
	}
	if got[0][0] != 0 || got[0][1] != 1 || got[0][2] != 5 {
		t.Errorf("first row = %v", got[0])
	}
}

func TestEvalJoin(t *testing.T) {
	db := testDB(t)
	// Join edges with destination attribute.
	got := evalRule(t, db, "h(X) :- e(X,Y,W), attr(Y,A).", "X", "Y", "A")
	if len(got) != 4 {
		t.Fatalf("rows = %v", got)
	}
	for _, row := range got {
		want := (row[1] + 1) * 10
		if row[2] != want {
			t.Errorf("attr(%v) = %v, want %v", row[1], row[2], want)
		}
	}
}

func TestEvalConstantFilter(t *testing.T) {
	db := testDB(t)
	got := evalRule(t, db, "h(Y) :- e(0,Y,W).", "Y")
	if len(got) != 2 || got[0][0] != 1 || got[1][0] != 2 {
		t.Fatalf("rows = %v", got)
	}
}

func TestEvalComparisonBindAndFilter(t *testing.T) {
	db := testDB(t)
	// X=0 binds before scanning (index-accelerated); d doubles the weight.
	got := evalRule(t, db, "h(Y) :- X = 0, e(X,Y,W), d = W * 2, d > 6.", "Y", "d")
	if len(got) != 1 || got[0][0] != 1 || got[0][1] != 10 {
		t.Fatalf("rows = %v", got)
	}
}

func TestEvalSharedVariableJoin(t *testing.T) {
	db := testDB(t)
	// Two-hop paths: e(X,Y), e(Y,Z).
	got := evalRule(t, db, "h(X) :- e(X,Y,W1), e(Y,Z,W2).", "X", "Y", "Z")
	want := [][]float64{{0, 1, 2}, {0, 2, 0}, {1, 2, 0}, {2, 0, 1}, {2, 0, 2}}
	if len(got) != len(want) {
		t.Fatalf("rows = %v", got)
	}
	for i := range want {
		for k := range want[i] {
			if got[i][k] != want[i][k] {
				t.Fatalf("row %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestEvalWildcard(t *testing.T) {
	db := testDB(t)
	got := evalRule(t, db, "h(X) :- e(X,_,_).", "X")
	if len(got) != 4 {
		t.Fatalf("rows = %v", got)
	}
}

func TestEvalRepeatedVariable(t *testing.T) {
	db := NewDB()
	r := NewRelation("p", 2)
	r.Add(1, 1)
	r.Add(1, 2)
	r.Add(3, 3)
	db.AddRelation(r)
	got := evalRule(t, db, "h(X) :- p(X,X).", "X")
	if len(got) != 2 || got[0][0] != 1 || got[1][0] != 3 {
		t.Fatalf("rows = %v", got)
	}
}

func TestEvalErrors(t *testing.T) {
	db := testDB(t)
	r, err := parser.ParseRule("h(X) :- nosuch(X).")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EvalBody(r.Bodies[0].Atoms, func(Env) error { return nil }); err == nil {
		t.Error("missing relation should error")
	}
	// Unbindable comparison.
	r, err = parser.ParseRule("h(X) :- q > 3.")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EvalBody(r.Bodies[0].Atoms, func(Env) error { return nil }); err == nil {
		t.Error("unbound comparison should error")
	}
	// Arity overflow.
	r, err = parser.ParseRule("h(X) :- attr(X,A,B).")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EvalBody(r.Bodies[0].Atoms, func(Env) error { return nil }); err == nil {
		t.Error("arity overflow should error")
	}
}

func TestGraphView(t *testing.T) {
	db := NewDB()
	g, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1, W: 2}, {Src: 1, Dst: 2, W: 4}}, true)
	if err != nil {
		t.Fatal(err)
	}
	db.SetGraph("edge", g)
	if !db.HasPred("edge") || db.HasPred("nope") {
		t.Error("HasPred wrong")
	}
	got := evalRule(t, db, "h(X) :- edge(X,Y,W).", "X", "Y", "W")
	if len(got) != 2 || got[0][2] != 2 || got[1][2] != 4 {
		t.Fatalf("rows = %v", got)
	}
	// Lower-arity use of the same graph relation.
	got = evalRule(t, db, "h(X) :- edge(X,Y).", "X", "Y")
	if len(got) != 2 {
		t.Fatalf("rows = %v", got)
	}
	if gg, ok := db.Graph("edge"); !ok || gg != g {
		t.Error("Graph lookup failed")
	}
}

func TestVertexColumn(t *testing.T) {
	db := testDB(t)
	col, err := db.VertexColumn("attr", 5, -1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 30, -1, -1}
	for i := range want {
		if col[i] != want[i] {
			t.Fatalf("col = %v", col)
		}
	}
	if _, err := db.VertexColumn("nosuch", 5, 0); err == nil {
		t.Error("missing relation should error")
	}
}

func TestEvalEmitError(t *testing.T) {
	db := testDB(t)
	r, err := parser.ParseRule("h(X) :- e(X,Y,W).")
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	errStop := &stopErr{}
	err = db.EvalBody(r.Bodies[0].Atoms, func(Env) error {
		calls++
		return errStop
	})
	if !errors.Is(err, errStop) {
		t.Errorf("emit error should propagate, got %v", err)
	}
	if calls != 1 {
		t.Errorf("evaluation should stop at first error, got %d calls", calls)
	}
}

type stopErr struct{}

func (*stopErr) Error() string { return "stop" }
