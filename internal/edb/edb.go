// Package edb implements the extensional database: named relations over
// float64 columns with first-column indexes, plus a nested-loop join
// evaluator over rule bodies. The engine uses it to evaluate
// initialisation rules, constant bodies, and derived relations (e.g. the
// count-aggregated degree view of PageRank); the recursive hot path runs
// on CSR graphs instead.
package edb

import (
	"fmt"
	"sync"

	"powerlog/internal/ast"
	"powerlog/internal/expr"
	"powerlog/internal/graph"
)

// Relation is a named table of float64 tuples in flat row-major storage.
type Relation struct {
	Name  string
	Arity int

	data []float64

	mu    sync.Mutex          // guards lazy index construction
	index map[float64][]int32 // first column → row ids, built on demand
}

// NewRelation creates an empty relation.
func NewRelation(name string, arity int) *Relation {
	if arity <= 0 {
		panic("edb: relation arity must be positive")
	}
	return &Relation{Name: name, Arity: arity}
}

// Add appends a tuple; its length must equal the arity.
func (r *Relation) Add(tuple ...float64) {
	if len(tuple) != r.Arity {
		panic(fmt.Sprintf("edb: %s expects arity %d, got %d", r.Name, r.Arity, len(tuple)))
	}
	r.data = append(r.data, tuple...)
	r.index = nil
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.data) / r.Arity }

// Row returns the i-th tuple as a subslice of the backing array; callers
// must not modify or retain it across Adds.
func (r *Relation) Row(i int) []float64 {
	return r.data[i*r.Arity : (i+1)*r.Arity]
}

func (r *Relation) buildIndex() {
	idx := make(map[float64][]int32, r.Len())
	for i := 0; i < r.Len(); i++ {
		k := r.data[i*r.Arity]
		idx[k] = append(idx[k], int32(i))
	}
	r.index = idx
}

// rowsWithFirst returns the row ids whose first column equals v. Safe for
// concurrent readers (the naive engine joins from several workers).
func (r *Relation) rowsWithFirst(v float64) []int32 {
	r.mu.Lock()
	if r.index == nil {
		r.buildIndex()
	}
	idx := r.index
	r.mu.Unlock()
	return idx[v]
}

// DB is a collection of relations plus registered graphs. Graphs are
// exposed to the join evaluator as lazily materialised (src,dst[,w])
// relations.
type DB struct {
	rels   map[string]*Relation
	graphs map[string]*graph.Graph
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{rels: map[string]*Relation{}, graphs: map[string]*graph.Graph{}}
}

// AddRelation registers (or replaces) a relation.
func (db *DB) AddRelation(r *Relation) { db.rels[r.Name] = r }

// Clone returns a database sharing the same (read-only) relations and
// graphs but with an independent registry, so a caller can overlay
// per-worker relations (the naive engine's per-iteration result table)
// without racing other workers.
func (db *DB) Clone() *DB {
	out := NewDB()
	for k, v := range db.rels {
		out.rels[k] = v
	}
	for k, v := range db.graphs {
		out.graphs[k] = v
	}
	return out
}

// SetGraph registers a graph under a predicate name (e.g. "edge").
func (db *DB) SetGraph(name string, g *graph.Graph) { db.graphs[name] = g }

// DropRelation removes a relation from the registry. Used to invalidate
// materialised graph views and derived relations after a base-fact
// mutation so the next Relation/EvalBody call re-materialises against
// the current graph.
func (db *DB) DropRelation(name string) { delete(db.rels, name) }

// MutateGraph applies edge inserts and deletes to the graph registered
// under name, rebuilding its CSR in place (every holder of the *Graph
// pointer sees the mutation), and drops the cached (src,dst,weight)
// relation view so joins re-materialise it. The caller must have
// quiesced all readers.
func (db *DB) MutateGraph(name string, inserts, deletes []graph.Edge) error {
	g, ok := db.graphs[name]
	if !ok {
		return fmt.Errorf("edb: no graph registered under %q", name)
	}
	if err := g.ApplyEdgeMutations(inserts, deletes); err != nil {
		return err
	}
	db.DropRelation(name)
	return nil
}

// GraphMutation is one batch of base-fact churn against a registered
// graph predicate.
type GraphMutation struct {
	Pred    string
	Inserts []graph.Edge
	Deletes []graph.Edge
}

// LogEntry is one applied mutation batch, stamped with the session
// epoch that incorporated it (epoch 1 = the first Apply after Open).
type LogEntry struct {
	Epoch int
	Mut   GraphMutation
}

// MutationLog records applied mutations in epoch order. Checkpoints
// stamp the log position (ckpt.Meta.MutEpoch) so a restore knows which
// trailing entries still need replaying.
type MutationLog struct {
	entries []LogEntry
}

// Append records a mutation batch under epoch. Epochs must be
// non-decreasing.
func (l *MutationLog) Append(epoch int, mut GraphMutation) {
	if n := len(l.entries); n > 0 && l.entries[n-1].Epoch > epoch {
		panic(fmt.Sprintf("edb: mutation log epoch went backwards (%d after %d)", epoch, l.entries[n-1].Epoch))
	}
	l.entries = append(l.entries, LogEntry{Epoch: epoch, Mut: mut})
}

// Since returns the entries with Epoch > epoch (the trailing mutations
// a restore from a checkpoint stamped `epoch` must replay).
func (l *MutationLog) Since(epoch int) []LogEntry {
	i := len(l.entries)
	for i > 0 && l.entries[i-1].Epoch > epoch {
		i--
	}
	return l.entries[i:]
}

// Len returns the number of recorded batches.
func (l *MutationLog) Len() int { return len(l.entries) }

// LastEpoch returns the newest recorded epoch (0 when empty).
func (l *MutationLog) LastEpoch() int {
	if len(l.entries) == 0 {
		return 0
	}
	return l.entries[len(l.entries)-1].Epoch
}

// Graph returns the graph registered under name.
func (db *DB) Graph(name string) (*graph.Graph, bool) {
	g, ok := db.graphs[name]
	return g, ok
}

// HasPred reports whether name resolves to a relation or graph.
func (db *DB) HasPred(name string) bool {
	if _, ok := db.rels[name]; ok {
		return true
	}
	_, ok := db.graphs[name]
	return ok
}

// Relation resolves name to a relation, materialising a graph view
// (src,dst,weight) on first use.
func (db *DB) Relation(name string) (*Relation, bool) {
	if r, ok := db.rels[name]; ok {
		return r, true
	}
	g, ok := db.graphs[name]
	if !ok {
		return nil, false
	}
	r := NewRelation(name, 3)
	r.data = make([]float64, 0, 3*g.NumEdges())
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		lo, hi := g.EdgeRange(v)
		for i := lo; i < hi; i++ {
			r.data = append(r.data, float64(v), float64(g.Target(i)), g.Weight(i))
		}
	}
	db.rels[name] = r
	return r, true
}

// VertexColumn interprets a binary relation keyed by vertex id as a dense
// attribute column of length n; missing vertices get def.
func (db *DB) VertexColumn(name string, n int, def float64) ([]float64, error) {
	r, ok := db.Relation(name)
	if !ok {
		return nil, fmt.Errorf("edb: no relation %q", name)
	}
	if r.Arity < 2 {
		return nil, fmt.Errorf("edb: relation %q has arity %d, need ≥2 for a vertex column", name, r.Arity)
	}
	col := make([]float64, n)
	for i := range col {
		col[i] = def
	}
	for i := 0; i < r.Len(); i++ {
		row := r.Row(i)
		v := int(row[0])
		if v >= 0 && v < n {
			col[v] = row[1]
		}
	}
	return col, nil
}

// Env is a variable binding environment for body evaluation.
type Env map[string]float64

// EvalBody evaluates a conjunction of atoms by nested-loop join with
// index acceleration on bound first columns, calling emit once per
// satisfying assignment. Comparison atoms bind ("v = expr" with v free)
// or filter; atoms whose variables are not yet bound are deferred. A body
// that can never bind some comparison's variables is an error.
func (db *DB) EvalBody(atoms []*ast.Atom, emit func(Env) error) error {
	env := Env{}
	return db.eval(atoms, env, emit)
}

func (db *DB) eval(atoms []*ast.Atom, env Env, emit func(Env) error) error {
	// Find the next evaluable atom: a comparison whose variables are
	// resolvable now, or the first predicate atom.
	for i, a := range atoms {
		if a.Kind != ast.AtomCompare {
			continue
		}
		ready, err := db.tryCompare(a.Cmp, env)
		if err != nil {
			return err
		}
		switch ready {
		case cmpBound, cmpTrue:
			rest := append(atoms[:i:i], atoms[i+1:]...)
			err := db.eval(rest, env, emit)
			if ready == cmpBound {
				// Unbind the variable this comparison introduced.
				if v, _, ok := a.Cmp.IsAssignment(); ok {
					delete(env, v)
				}
			}
			return err
		case cmpFalse:
			return nil // conjunction fails on this branch
		case cmpDeferred:
			// fall through to try other atoms first
		}
	}
	// No comparison ready; take the first predicate atom.
	for i, a := range atoms {
		if a.Kind != ast.AtomPred {
			continue
		}
		rest := append(atoms[:i:i], atoms[i+1:]...)
		return db.scanPred(a.Pred, rest, env, emit)
	}
	// Only deferred comparisons (or nothing) remain.
	for _, a := range atoms {
		if a.Kind == ast.AtomCompare {
			return fmt.Errorf("edb: comparison %v has unbound variables", a)
		}
	}
	return emit(env)
}

type cmpState int

const (
	cmpDeferred cmpState = iota // variables not yet bound
	cmpBound                    // assignment succeeded, variable now bound
	cmpTrue                     // filter passed
	cmpFalse                    // filter failed
)

// tryCompare attempts to apply a comparison under env.
func (db *DB) tryCompare(c *ast.Compare, env Env) (cmpState, error) {
	if v, def, ok := c.IsAssignment(); ok {
		if _, bound := env[v]; !bound {
			if !allBound(def, env) {
				return cmpDeferred, nil
			}
			env[v] = def.Eval(expr.Env(env))
			return cmpBound, nil
		}
	}
	if !allBound(c.LHS, env) || !allBound(c.RHS, env) {
		return cmpDeferred, nil
	}
	l, r := c.LHS.Eval(expr.Env(env)), c.RHS.Eval(expr.Env(env))
	ok := false
	switch c.Op {
	case "=":
		ok = l == r
	case "!=":
		ok = l != r
	case "<":
		ok = l < r
	case ">":
		ok = l > r
	case "<=":
		ok = l <= r
	case ">=":
		ok = l >= r
	default:
		return cmpFalse, fmt.Errorf("edb: unknown comparison %q", c.Op)
	}
	if ok {
		return cmpTrue, nil
	}
	return cmpFalse, nil
}

func allBound(e *expr.Expr, env Env) bool {
	for _, v := range e.Vars() {
		if _, ok := env[v]; !ok {
			return false
		}
	}
	return true
}

// scanPred iterates the tuples of p matching env's bindings, extends env,
// and recurses into the remaining atoms.
func (db *DB) scanPred(p *ast.Pred, rest []*ast.Atom, env Env, emit func(Env) error) error {
	rel, ok := db.Relation(p.Name)
	if !ok {
		return fmt.Errorf("edb: no relation or graph named %q", p.Name)
	}
	if len(p.Args) > rel.Arity {
		return fmt.Errorf("edb: %s used with arity %d but has %d columns", p.Name, len(p.Args), rel.Arity)
	}

	match := func(row []float64) error {
		var bound []string
		ok := true
		for j, term := range p.Args {
			val := row[j]
			switch term.Kind {
			case ast.TermWildcard:
				continue
			case ast.TermNum:
				if term.Num != val {
					ok = false
				}
			case ast.TermVar:
				if cur, has := env[term.Var]; has {
					if cur != val {
						ok = false
					}
				} else {
					env[term.Var] = val
					bound = append(bound, term.Var)
				}
			default:
				ok = false
			}
			if !ok {
				break
			}
		}
		var err error
		if ok {
			err = db.eval(rest, env, emit)
		}
		for _, v := range bound {
			delete(env, v)
		}
		return err
	}

	// Index acceleration when the first argument is already determined.
	if len(p.Args) > 0 {
		if first, ok := firstArgValue(p.Args[0], env); ok {
			for _, i := range rel.rowsWithFirst(first) {
				if err := match(rel.Row(int(i))); err != nil {
					return err
				}
			}
			return nil
		}
	}
	for i := 0; i < rel.Len(); i++ {
		if err := match(rel.Row(i)); err != nil {
			return err
		}
	}
	return nil
}

func firstArgValue(t *ast.Term, env Env) (float64, bool) {
	switch t.Kind {
	case ast.TermNum:
		return t.Num, true
	case ast.TermVar:
		v, ok := env[t.Var]
		return v, ok
	default:
		return 0, false
	}
}
