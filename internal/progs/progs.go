// Package progs holds the Datalog source of the fourteen recursive
// aggregate programs investigated in the paper (§6.1, Table 1): twelve
// that pass the MRA condition check and two (CommNet, GCN-Forward) that
// must be rejected.
//
// Where the paper simplifies a program for large graphs (Belief
// Propagation and SimRank "abstract vertex-pairs into vertices", §6.3
// footnote), we apply the same simplification and note it in Notes.
package progs

import "fmt"

// Program is one catalogue entry.
type Program struct {
	Name      string // canonical short name (Table 1 spelling)
	Aggregate string // the head aggregate, as in Table 1
	Source    string // Datalog text in the paper's surface syntax
	ExpectSat bool   // Table 1 "MRA sat." column
	Notes     string // substitutions / simplifications
}

// SSSP is Program 1 of the paper.
const SSSP = `
// Program 1: Single Source Shortest Path.
r1. sssp(X,d) :- X=0, d=0.
r2. sssp(Y,min[dy]) :- sssp(X,dx), edge(X,Y,dxy), dy = dx + dxy.
`

// CC is Program 3 of the paper.
const CC = `
// Program 3: Connected Components by label propagation.
r1. cc(X,X) :- edge(X,_).
r2. cc(Y,min[v]) :- cc(X,v), edge(X,Y).
`

// PageRank is Program 2 of the paper (declarative + imperative original,
// non-monotonic; convertible under the MRA conditions).
const PageRank = `
// Program 2: PageRank (original, non-monotonic form).
r1. degree(X,count[Y]) :- edge(X,Y).
r2. rank(0,X,r) :- node(X), r = 0.
r3. rank(i+1,Y,sum[ry]) :- node(Y), ry = 0.15;
                        :- rank(i,X,rx), edge(X,Y), degree(X,d), ry = 0.85 * rx / d;
                        {sum[Δry] < 0.0001}.
`

// Adsorption is Program 4 of the paper.
const Adsorption = `
// Program 4: Adsorption label propagation.
r1. I(x,i) :- node(x), i = 1.
r2. L(0,x,l) :- node(x), l = 0.
r3. L(j+1,y,sum[a1]) :- I(y,i), pi(y,p2), a1 = i * p2;
                     :- L(j,x,a), A(x,y,w), pc(x,p), a1 = 0.7 * a * w * p;
                     {sum[Δa1] < 0.001}.
`

// KatzWithAlpha renders Program 5 with a custom attenuation factor.
// Katz's definition requires α < 1/λ_max(A) for the series to converge
// (Katz 1953); the bench harness scales α to each stand-in graph's
// estimated spectral radius, while Table 1 uses the paper's literal 0.1.
func KatzWithAlpha(alpha float64) string {
	return fmt.Sprintf(`
r1. I(X,k) :- X=0, k = 10000.
r2. K(i+1,y,sum[k1]) :- I(y,j), k1 = j;
                     :- K(i,x,k), edge(x,y), k1 = %g * k;
                     {sum[Δk1] < 0.001}.
`, alpha)
}

// Katz is Program 5 of the paper.
const Katz = `
// Program 5: Katz metric.
r1. I(X,k) :- X=0, k = 10000.
r2. K(i+1,y,sum[k1]) :- I(y,j), k1 = j;
                     :- K(i,x,k), edge(x,y), k1 = 0.1 * k;
                     {sum[Δk1] < 0.001}.
`

// BP is Program 6 of the paper, with the paper's own simplification for
// large graphs: vertex-pair states abstracted into vertices, the coupling
// score table H keyed by source vertex.
const BP = `
// Program 6: Belief Propagation (vertex-abstracted form, paper §6.3).
r1. B(0,t,b) :- I(t,b).
r2. B(j+1,t,sum[b1]) :- B(j,s,b), E(s,t,w), H(s,h), b1 = 0.8 * w * b * h;
                     {sum[Δb1] < 0.0001}.
`

// PathsDAG is the "Computing Paths in DAG" program of DeALS.
const PathsDAG = `
// Computing Paths in DAG: number of distinct source→Y paths.
r1. paths(X,c) :- X=0, c = 1.
r2. paths(Y,count[c1]) :- paths(X,c), dagedge(X,Y), c1 = c.
`

// Cost is the DeALS "Cost" program: aggregate path cost over a DAG.
const Cost = `
// Cost: total path cost into each DAG node.
r1. cost(X,c) :- X=0, c = 0.
r2. cost(Y,sum[c1]) :- cost(X,c), dagedge(X,Y,w), c1 = c + w.
`

// Viterbi is the Viterbi algorithm: max-probability path in a trellis.
const Viterbi = `
// Viterbi: maximum-probability path; transition probabilities in [0,1].
r1. vit(X,p) :- X=0, p = 1.
r2. vit(Y,max[p1]) :- vit(X,p), trans(X,Y,w), p1 = p * w, w >= 0, w <= 1.
`

// SimRank uses the paper's vertex-pair abstraction (§6.3 footnote): keys
// are encoded vertex pairs and pairedge is the pair graph.
const SimRank = `
// SimRank (vertex-pair abstracted form, paper §6.3).
r1. sim(X,s) :- X=0, s = 1.
r2. sim(Y,sum[s1]) :- sim(X,s), pairedge(X,Y,w), s1 = 0.8 * s * w;
                   {sum[Δs1] < 0.001}.
`

// LCA is the ancestor-depth core of the Schieber–Vishkin lowest common
// ancestor computation: minimum depth to each ancestor.
const LCA = `
// Lowest Common Ancestor (ancestor-depth core).
r1. lca(X,d) :- X=5, d = 0.
r2. lca(Y,min[d1]) :- lca(X,d), parent(X,Y), d1 = d + 1.
`

// APSP is all-pairs shortest paths with pair-valued keys.
const APSP = `
// All-Pairs Shortest Paths.
r1. apsp(X,Y,d) :- edge(X,Y,d).
r2. apsp(X,Z,min[d1]) :- apsp(X,Y,d), edge(Y,Z,w), d1 = d + w.
`

// CommNet is the multiagent communication network of Table 1; the tanh
// nonlinearity breaks Property 2, so the check must fail.
const CommNet = `
// CommNet: communication step with tanh nonlinearity (must fail the check).
r1. comm(0,X,h) :- node(X), h = 0.5.
r2. comm(j+1,Y,sum[h1]) :- comm(j,X,h), edge(X,Y), W(X,w), h1 = tanh(h * w).
`

// GCNForward is Program 7 of the paper; relu breaks Property 2.
const GCNForward = `
// Program 7: GCN forward pass (must fail the check).
r1. gcn(0,X,g) :- node(X), g = 1.
r2. gcn(j+1,Y,sum[g1]) :- gcn(j,X,g), A(X,Y,w), Para(X,p), g1 = relu(g * p) * w.
`

// Catalog returns Table 1 in the paper's order, followed by the two
// rejected programs.
func Catalog() []Program {
	return []Program{
		{Name: "SSSP", Aggregate: "min", Source: SSSP, ExpectSat: true},
		{Name: "PageRank", Aggregate: "sum", Source: PageRank, ExpectSat: true},
		{Name: "CC", Aggregate: "min", Source: CC, ExpectSat: true},
		{Name: "Adsorption", Aggregate: "sum", Source: Adsorption, ExpectSat: true},
		{Name: "Katz metric", Aggregate: "sum", Source: Katz, ExpectSat: true},
		{Name: "Belief Propagation", Aggregate: "sum", Source: BP, ExpectSat: true,
			Notes: "vertex-abstracted per paper §6.3 footnote"},
		{Name: "Computing Paths in DAG", Aggregate: "count", Source: PathsDAG, ExpectSat: true},
		{Name: "Cost", Aggregate: "sum", Source: Cost, ExpectSat: true},
		{Name: "Viterbi Algorithm", Aggregate: "max", Source: Viterbi, ExpectSat: true},
		{Name: "SimRank", Aggregate: "sum", Source: SimRank, ExpectSat: true,
			Notes: "vertex-pair abstracted per paper §6.3 footnote"},
		{Name: "Lowest Common Ancestor", Aggregate: "min", Source: LCA, ExpectSat: true,
			Notes: "ancestor-depth core of Schieber–Vishkin"},
		{Name: "APSP", Aggregate: "min", Source: APSP, ExpectSat: true},
		{Name: "CommNet", Aggregate: "sum", Source: CommNet, ExpectSat: false},
		{Name: "GCN-Forward", Aggregate: "sum", Source: GCNForward, ExpectSat: false},
	}
}

// ByName returns the catalogue entry with the given name.
func ByName(name string) (Program, error) {
	for _, p := range Catalog() {
		if p.Name == name {
			return p, nil
		}
	}
	return Program{}, fmt.Errorf("progs: no catalogue program named %q", name)
}
