package progs

import (
	"strings"
	"testing"

	"powerlog/internal/parser"
)

func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) != 14 {
		t.Fatalf("Table 1 has 14 programs, got %d", len(cat))
	}
	sat, unsat := 0, 0
	names := map[string]bool{}
	for _, p := range cat {
		if names[p.Name] {
			t.Errorf("duplicate name %q", p.Name)
		}
		names[p.Name] = true
		if p.ExpectSat {
			sat++
		} else {
			unsat++
		}
	}
	if sat != 12 || unsat != 2 {
		t.Errorf("sat=%d unsat=%d, want 12/2 (paper Table 1)", sat, unsat)
	}
	if !names["CommNet"] || !names["GCN-Forward"] {
		t.Error("the two rejected programs must be present")
	}
}

func TestCatalogParses(t *testing.T) {
	for _, p := range Catalog() {
		if _, err := parser.Parse(p.Source); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("SSSP")
	if err != nil || p.Aggregate != "min" {
		t.Errorf("ByName(SSSP) = %+v, %v", p, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestKatzWithAlpha(t *testing.T) {
	src := KatzWithAlpha(0.025)
	if !strings.Contains(src, "0.025 * k") {
		t.Errorf("alpha not substituted:\n%s", src)
	}
	if _, err := parser.Parse(src); err != nil {
		t.Errorf("templated Katz does not parse: %v", err)
	}
	// The literal catalogue program keeps the paper's 0.1.
	if !strings.Contains(Katz, "0.1 * k") {
		t.Error("Program 5 must keep the paper's literal attenuation")
	}
}
