package lexer

import (
	"strings"
	"testing"
)

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	out := make([]Kind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	got := kinds(t, "sssp(Y,min[dy]) :- sssp(X,dx).")
	want := []Kind{Ident, LParen, Ident, Comma, Ident, LBracket, Ident, RBracket, RParen,
		Implies, Ident, LParen, Ident, Comma, Ident, RParen, Period, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := map[string]float64{
		"0":      0,
		"42":     42,
		"0.85":   0.85,
		"1e3":    1000,
		"2.5e-2": 0.025,
		"7E+1":   70,
	}
	for src, want := range cases {
		toks, err := Lex(src)
		if err != nil {
			t.Errorf("Lex(%q): %v", src, err)
			continue
		}
		if toks[0].Kind != Number || toks[0].Num != want {
			t.Errorf("Lex(%q) = %v (%v), want %v", src, toks[0].Kind, toks[0].Num, want)
		}
	}
}

func TestNumberThenPeriod(t *testing.T) {
	// "d=0." — the dot terminates the rule, it is not a fraction.
	toks, err := Lex("d=0.")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != Number || toks[2].Num != 0 || toks[3].Kind != Period {
		t.Fatalf("toks = %v", toks)
	}
	// "0.5." — fraction then period.
	toks, err = Lex("0.5.")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Num != 0.5 || toks[1].Kind != Period {
		t.Fatalf("toks = %v", toks)
	}
	// "1e." — the 'e' is not an exponent; it backs off into an error or
	// separate tokens. The lexer treats "1" then ident "e"? 'e' follows a
	// digit so it tried exponent, backed off; pos resets to before 'e'.
	toks, err = Lex("1e x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != Number || toks[0].Num != 1 || toks[1].Kind != Ident || toks[1].Text != "e" {
		t.Fatalf("toks = %v", toks)
	}
}

func TestDeltaIdentifiers(t *testing.T) {
	toks, err := Lex("Δa ∆b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "Δa" || toks[1].Text != "∆b" {
		t.Fatalf("toks = %v", toks)
	}
}

func TestComparisonOperators(t *testing.T) {
	got := kinds(t, "a <= b >= c < d > e != f = g == h")
	want := []Kind{Ident, Le, Ident, Ge, Ident, Lt, Ident, Gt, Ident, Neq, Ident, Eq, Ident, Eq, Ident, EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestComments(t *testing.T) {
	src := `a % line comment
// another
/* block
   spanning */ b`
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("toks = %v", toks)
	}
}

func TestMiddleDot(t *testing.T) {
	toks, err := Lex("a · b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != Star {
		t.Fatalf("· should lex as multiplication: %v", toks)
	}
}

func TestPositions(t *testing.T) {
	toks, err := Lex("ab\n  cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("ab at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("cd at %d:%d", toks[1].Line, toks[1].Col)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{"a : b", "expected ':-'"},
		{"a ! b", "expected '!='"},
		{"_bad", "may not start with '_'"},
		{"a @ b", "unexpected character"},
		{"/* unterminated", "unterminated block comment"},
	}
	for _, c := range cases {
		_, err := Lex(c.src)
		if err == nil {
			t.Errorf("Lex(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Lex(%q) error = %q, want substring %q", c.src, err, c.frag)
		}
	}
}

func TestTokenString(t *testing.T) {
	toks, _ := Lex("abc 1.5 (")
	if !strings.Contains(toks[0].String(), "abc") {
		t.Error("ident string")
	}
	if !strings.Contains(toks[1].String(), "1.5") {
		t.Error("number string")
	}
	if toks[2].String() != "'('" {
		t.Errorf("paren string = %q", toks[2].String())
	}
	if EOF.String() != "end of input" {
		t.Error("EOF name")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestWildcardVsUnderscore(t *testing.T) {
	toks, err := Lex("edge(X,_)")
	if err != nil {
		t.Fatal(err)
	}
	if toks[4].Kind != Wildcard {
		t.Fatalf("toks = %v", toks)
	}
}

func TestErrorPosition(t *testing.T) {
	_, err := Lex("ok\nbad @")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.HasPrefix(err.Error(), "2:5") {
		t.Errorf("error position = %q, want 2:5 prefix", err)
	}
}
