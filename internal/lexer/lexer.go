// Package lexer tokenizes Datalog source in the paper's surface syntax.
// It replaces the ANTLR-generated lexer used by the original PowerLog.
//
// Comments: "//" and "%" to end of line, plus "/* ... */" blocks.
// The Greek letter Δ is an ordinary identifier character so termination
// clauses may be written {sum[Δa] < 0.001}; the ASCII spelling
// {sum[delta a] < 0.001} is also accepted by the parser.
package lexer

import (
	"fmt"
	"strconv"
	"unicode"
	"unicode/utf8"
)

// Kind is a token kind.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Number
	LParen   // (
	RParen   // )
	LBracket // [
	RBracket // ]
	LBrace   // {
	RBrace   // }
	Comma    // ,
	Period   // .
	Semi     // ;
	Implies  // :-
	Eq       // =
	Neq      // !=
	Lt       // <
	Gt       // >
	Le       // <=
	Ge       // >=
	Plus     // +
	Minus    // -
	Star     // *
	Slash    // /
	Wildcard // _
)

var kindNames = map[Kind]string{
	EOF: "end of input", Ident: "identifier", Number: "number",
	LParen: "'('", RParen: "')'", LBracket: "'['", RBracket: "']'",
	LBrace: "'{'", RBrace: "'}'", Comma: "','", Period: "'.'",
	Semi: "';'", Implies: "':-'", Eq: "'='", Neq: "'!='",
	Lt: "'<'", Gt: "'>'", Le: "'<='", Ge: "'>='",
	Plus: "'+'", Minus: "'-'", Star: "'*'", Slash: "'/'", Wildcard: "'_'",
}

// String returns a human-readable token kind name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Token is a lexed token with source position.
type Token struct {
	Kind Kind
	Text string  // raw text for Ident
	Num  float64 // value for Number
	Line int     // 1-based
	Col  int     // 1-based, in runes
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case Ident:
		return fmt.Sprintf("identifier %q", t.Text)
	case Number:
		return fmt.Sprintf("number %v", t.Num)
	default:
		return t.Kind.String()
	}
}

// Error is a lexical error with position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lex tokenizes src, returning the full token stream terminated by an EOF
// token, or the first lexical error.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	var toks []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == EOF {
			return toks, nil
		}
	}
}

type lexer struct {
	src       string
	pos       int
	line, col int
}

func (l *lexer) errorf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return r
}

func (l *lexer) advance() rune {
	r, size := utf8.DecodeRuneInString(l.src[l.pos:])
	l.pos += size
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == 'Δ' || r == '∆'
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			l.advance()
		case r == '%':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return &Error{Line: startLine, Col: startCol, Msg: "unterminated block comment"}
				}
				if l.peek() == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	mk := func(k Kind) Token { return Token{Kind: k, Line: line, Col: col} }
	if l.pos >= len(l.src) {
		return mk(EOF), nil
	}
	r := l.peek()
	switch {
	case isIdentStart(r):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		return Token{Kind: Ident, Text: l.src[start:l.pos], Line: line, Col: col}, nil
	case unicode.IsDigit(r):
		return l.number(line, col)
	}
	l.advance()
	switch r {
	case '(':
		return mk(LParen), nil
	case ')':
		return mk(RParen), nil
	case '[':
		return mk(LBracket), nil
	case ']':
		return mk(RBracket), nil
	case '{':
		return mk(LBrace), nil
	case '}':
		return mk(RBrace), nil
	case ',':
		return mk(Comma), nil
	case ';':
		return mk(Semi), nil
	case '+':
		return mk(Plus), nil
	case '-':
		return mk(Minus), nil
	case '*':
		return mk(Star), nil
	case '/':
		return mk(Slash), nil
	case '_':
		// A bare underscore is a wildcard; _foo would be an identifier in
		// many Datalogs but the paper never uses it, so reject to be safe.
		if isIdentPart(l.peek()) {
			return Token{}, &Error{Line: line, Col: col, Msg: "identifiers may not start with '_'"}
		}
		return mk(Wildcard), nil
	case '.':
		// ".5" style numbers never appear after whitespace in the grammar
		// positions where '.' is legal, so '.' is always the rule period.
		return mk(Period), nil
	case ':':
		if l.peek() == '-' {
			l.advance()
			return mk(Implies), nil
		}
		return Token{}, &Error{Line: line, Col: col, Msg: "expected ':-'"}
	case '=':
		if l.peek() == '=' { // tolerate '==' as '='
			l.advance()
		}
		return mk(Eq), nil
	case '!':
		if l.peek() == '=' {
			l.advance()
			return mk(Neq), nil
		}
		return Token{}, &Error{Line: line, Col: col, Msg: "expected '!='"}
	case '<':
		if l.peek() == '=' {
			l.advance()
			return mk(Le), nil
		}
		return mk(Lt), nil
	case '>':
		if l.peek() == '=' {
			l.advance()
			return mk(Ge), nil
		}
		return mk(Gt), nil
	case '·': // '·' middle dot used by the paper for multiplication
		return mk(Star), nil
	}
	return Token{}, &Error{Line: line, Col: col, Msg: fmt.Sprintf("unexpected character %q", r)}
}

func (l *lexer) number(line, col int) (Token, error) {
	start := l.pos
	for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
		l.advance()
	}
	// Fraction: only when the dot is followed by a digit; otherwise the dot
	// is a rule-terminating period as in "d=0.".
	if l.peek() == '.' && l.pos+1 < len(l.src) {
		if next, _ := utf8.DecodeRuneInString(l.src[l.pos+1:]); unicode.IsDigit(next) {
			l.advance() // '.'
			for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
				l.advance()
			}
		}
	}
	// Exponent.
	if r := l.peek(); r == 'e' || r == 'E' {
		save := l.pos
		l.advance()
		if s := l.peek(); s == '+' || s == '-' {
			l.advance()
		}
		if !unicode.IsDigit(l.peek()) {
			l.pos = save // not an exponent; back off (col drift is harmless here)
		} else {
			for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
				l.advance()
			}
		}
	}
	text := l.src[start:l.pos]
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return Token{}, &Error{Line: line, Col: col, Msg: fmt.Sprintf("bad number %q", text)}
	}
	return Token{Kind: Number, Num: v, Line: line, Col: col}, nil
}
