package expr

// AffineIn decomposes e as a*x + b where x is the named variable and
// neither a nor b mentions x. It returns (a, b, true) on success. The
// decomposition is purely structural plus linear-arithmetic rules; builtins
// applied to subtrees containing x defeat it (ok=false), which is exactly
// the conservative behaviour the MRA checker wants: nonlinear use of the
// recursive variable must be proved or refuted by the smt package instead.
func AffineIn(e *Expr, x string) (a, b *Expr, ok bool) {
	if !e.HasVar(x) {
		return Num(0), e, true
	}
	switch e.Kind {
	case KVar: // e == x
		return Num(1), Num(0), true
	case KNeg:
		a1, b1, ok := AffineIn(e.Args[0], x)
		if !ok {
			return nil, nil, false
		}
		return Neg(a1), Neg(b1), true
	case KAdd:
		a1, b1, ok1 := AffineIn(e.Args[0], x)
		a2, b2, ok2 := AffineIn(e.Args[1], x)
		if !ok1 || !ok2 {
			return nil, nil, false
		}
		return Add(a1, a2), Add(b1, b2), true
	case KSub:
		a1, b1, ok1 := AffineIn(e.Args[0], x)
		a2, b2, ok2 := AffineIn(e.Args[1], x)
		if !ok1 || !ok2 {
			return nil, nil, false
		}
		return Sub(a1, a2), Sub(b1, b2), true
	case KMul:
		l, r := e.Args[0], e.Args[1]
		switch {
		case !l.HasVar(x):
			a2, b2, ok := AffineIn(r, x)
			if !ok {
				return nil, nil, false
			}
			return Mul(l, a2), Mul(l, b2), true
		case !r.HasVar(x):
			a1, b1, ok := AffineIn(l, x)
			if !ok {
				return nil, nil, false
			}
			return Mul(a1, r), Mul(b1, r), true
		default: // x*x or similar: not affine
			return nil, nil, false
		}
	case KDiv:
		l, r := e.Args[0], e.Args[1]
		if r.HasVar(x) {
			return nil, nil, false
		}
		a1, b1, ok := AffineIn(l, x)
		if !ok {
			return nil, nil, false
		}
		return Div(a1, r), Div(b1, r), true
	default: // KCall containing x, KNum handled by !HasVar above
		return nil, nil, false
	}
}

// LinearIn reports whether e is a*x with no constant term in x, returning
// the coefficient expression a. The constant part must simplify to the
// literal zero (e.g. 0*w folds away); non-zero or unresolvable constants
// fail the check.
func LinearIn(e *Expr, x string) (a *Expr, ok bool) {
	a, b, ok := AffineIn(e, x)
	if !ok {
		return nil, false
	}
	b = Simplify(b)
	if b.Kind != KNum || b.Val != 0 {
		return nil, false
	}
	return Simplify(a), true
}

// Simplify applies local algebraic rewrites bottom-up: constant folding,
// additive/multiplicative identities, and annihilation by zero. It is a
// cleanup pass, not a decision procedure — the smt package owns full
// canonicalisation.
func Simplify(e *Expr) *Expr {
	if len(e.Args) == 0 {
		return e
	}
	args := make([]*Expr, len(e.Args))
	allNum := true
	for i, a := range e.Args {
		args[i] = Simplify(a)
		if args[i].Kind != KNum {
			allNum = false
		}
	}
	s := &Expr{Kind: e.Kind, Val: e.Val, Name: e.Name, Args: args}
	if allNum && !(e.Kind == KDiv && args[1].Val == 0) {
		if e.Kind != KCall || func() bool { _, ok := Builtins[e.Name]; return ok }() {
			return Num(s.Eval(nil))
		}
	}
	isZero := func(x *Expr) bool { return x.Kind == KNum && x.Val == 0 }
	isOne := func(x *Expr) bool { return x.Kind == KNum && x.Val == 1 }
	switch e.Kind {
	case KAdd:
		if isZero(args[0]) {
			return args[1]
		}
		if isZero(args[1]) {
			return args[0]
		}
	case KSub:
		if isZero(args[1]) {
			return args[0]
		}
		if isZero(args[0]) {
			return Simplify(Neg(args[1]))
		}
	case KMul:
		if isZero(args[0]) || isZero(args[1]) {
			return Num(0)
		}
		if isOne(args[0]) {
			return args[1]
		}
		if isOne(args[1]) {
			return args[0]
		}
	case KDiv:
		if isZero(args[0]) && !isZero(args[1]) {
			return Num(0)
		}
		if isOne(args[1]) {
			return args[0]
		}
	case KNeg:
		if args[0].Kind == KNum {
			return Num(-args[0].Val)
		}
		if args[0].Kind == KNeg {
			return args[0].Args[0]
		}
	default:
		// KNum, KVar, KCall: leaves (or opaque calls) have no algebraic
		// rewrite; fall through to the rebuilt node.
	}
	return s
}

// FoldConst attempts to evaluate e to a constant; it succeeds only when e
// contains no variables.
func FoldConst(e *Expr) (float64, bool) {
	if len(e.Vars()) != 0 {
		return 0, false
	}
	return e.Eval(nil), true
}
