package expr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

func TestEvalBasics(t *testing.T) {
	env := Env{"x": 3, "y": 4}
	cases := []struct {
		e    *Expr
		want float64
	}{
		{Num(2.5), 2.5},
		{Var("x"), 3},
		{Add(Var("x"), Var("y")), 7},
		{Sub(Var("x"), Var("y")), -1},
		{Mul(Var("x"), Var("y")), 12},
		{Div(Var("y"), Num(2)), 2},
		{Neg(Var("x")), -3},
		{Add(Mul(Num(0.85), Var("x")), Num(0.15)), 2.7},
		{Call("relu", Neg(Var("x"))), 0},
		{Call("relu", Var("x")), 3},
		{Call("abs", Neg(Var("y"))), 4},
		{Call("min", Var("x"), Var("y")), 3},
		{Call("max", Var("x"), Var("y")), 4},
	}
	for _, c := range cases {
		if got := c.e.Eval(env); !almostEq(got, c.want) {
			t.Errorf("Eval(%s) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestEvalMissingVarIsZero(t *testing.T) {
	if got := Add(Var("unbound"), Num(1)).Eval(Env{}); got != 1 {
		t.Fatalf("got %v, want 1", got)
	}
}

func TestCheck(t *testing.T) {
	if err := Call("relu", Var("x")).Check(); err != nil {
		t.Errorf("relu/1 should pass: %v", err)
	}
	if err := Call("relu", Var("x"), Var("y")).Check(); err == nil {
		t.Error("relu/2 should fail arity check")
	}
	if err := Call("nosuch", Var("x")).Check(); err == nil {
		t.Error("unknown builtin should fail")
	}
	if err := Add(Var("a"), Call("bogus", Num(1))).Check(); err == nil {
		t.Error("nested unknown builtin should fail")
	}
}

func TestVars(t *testing.T) {
	e := Add(Mul(Var("b"), Var("a")), Call("relu", Var("c")))
	got := e.Vars()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
	if !e.HasVar("a") || e.HasVar("z") {
		t.Error("HasVar wrong")
	}
}

func TestSubst(t *testing.T) {
	e := Add(Var("x"), Mul(Var("x"), Var("y")))
	s := e.Subst("x", Num(2))
	if got := s.Eval(Env{"y": 5}); got != 12 {
		t.Fatalf("after subst got %v, want 12", got)
	}
	// Original untouched.
	if got := e.Eval(Env{"x": 1, "y": 5}); got != 6 {
		t.Fatalf("original mutated: %v", got)
	}
	// Substituting an absent variable returns the same tree.
	if e.Subst("zz", Num(9)) != e {
		t.Error("subst of absent var should share the tree")
	}
}

func TestCompileMatchesEval(t *testing.T) {
	slots := map[string]int{"x": 0, "y": 1, "w": 2}
	exprs := []*Expr{
		Add(Mul(Num(0.85), Var("x")), Num(0.15)),
		Div(Mul(Var("x"), Var("w")), Add(Var("y"), Num(1))),
		Call("relu", Sub(Var("x"), Var("y"))),
		Neg(Call("tanh", Var("x"))),
		Mul(Mul(Num(0.7), Var("x")), Mul(Var("w"), Var("y"))),
	}
	rng := rand.New(rand.NewSource(7))
	for _, e := range exprs {
		fn, err := e.Compile(slots)
		if err != nil {
			t.Fatalf("Compile(%s): %v", e, err)
		}
		for i := 0; i < 100; i++ {
			x, y, w := rng.NormFloat64()*10, rng.NormFloat64()*10, rng.Float64()
			want := e.Eval(Env{"x": x, "y": y, "w": w})
			got := fn([]float64{x, y, w})
			if !almostEq(got, want) {
				t.Fatalf("compiled %s(%v,%v,%v) = %v, want %v", e, x, y, w, got, want)
			}
		}
	}
}

func TestCompileMissingSlot(t *testing.T) {
	if _, err := Var("q").Compile(map[string]int{}); err == nil {
		t.Fatal("expected error for unslotted variable")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		e    *Expr
		want string
	}{
		{Add(Var("a"), Mul(Var("b"), Var("c"))), "a + b * c"},
		{Mul(Add(Var("a"), Var("b")), Var("c")), "(a + b) * c"},
		{Sub(Var("a"), Sub(Var("b"), Var("c"))), "a - (b - c)"},
		{Div(Mul(Num(0.85), Var("rx")), Var("d")), "0.85 * rx / d"},
		{Call("relu", Add(Var("g"), Num(1))), "relu(g + 1)"},
		{Neg(Add(Var("a"), Var("b"))), "-(a + b)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

// randExpr builds a random expression over vars x,y with bounded depth,
// avoiding division (to dodge div-by-zero noise in equivalence checks).
func randExpr(rng *rand.Rand, depth int) *Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return Num(float64(rng.Intn(9)) - 4)
		case 1:
			return Var("x")
		default:
			return Var("y")
		}
	}
	switch rng.Intn(5) {
	case 0:
		return Add(randExpr(rng, depth-1), randExpr(rng, depth-1))
	case 1:
		return Sub(randExpr(rng, depth-1), randExpr(rng, depth-1))
	case 2:
		return Mul(randExpr(rng, depth-1), randExpr(rng, depth-1))
	case 3:
		return Neg(randExpr(rng, depth-1))
	default:
		return Call("relu", randExpr(rng, depth-1))
	}
}

func TestQuickCloneEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(x, y float64, seed int64) bool {
		e := randExpr(rand.New(rand.NewSource(seed)), 4)
		_ = rng
		env := Env{"x": x, "y": y}
		return almostEq(e.Eval(env), e.Clone().Eval(env))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCompileEquivalent(t *testing.T) {
	slots := map[string]int{"x": 0, "y": 1}
	f := func(x, y float64, seed int64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return true
		}
		// Bound magnitudes so products stay finite.
		x = math.Mod(x, 1e3)
		y = math.Mod(y, 1e3)
		e := randExpr(rand.New(rand.NewSource(seed)), 4)
		fn, err := e.Compile(slots)
		if err != nil {
			return false
		}
		return almostEq(e.Eval(Env{"x": x, "y": y}), fn([]float64{x, y}))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickAffineDecomposition(t *testing.T) {
	// For random affine-shaped expressions, AffineIn must reconstruct the
	// original value: e(x) == a*x + b.
	f := func(x, c1, c2 float64, seed int64) bool {
		for _, v := range []float64{x, c1, c2} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		x, c1, c2 = math.Mod(x, 100), math.Mod(c1, 100), math.Mod(c2, 100)
		rng := rand.New(rand.NewSource(seed))
		// Build: c1*x + c2, possibly nested with sub/neg/add of constants.
		e := Add(Mul(Num(c1), Var("x")), Num(c2))
		if rng.Intn(2) == 0 {
			e = Sub(e, Mul(Var("x"), Num(0.5)))
		}
		if rng.Intn(2) == 0 {
			e = Neg(e)
		}
		a, b, ok := AffineIn(e, "x")
		if !ok {
			return false
		}
		env := Env{"x": x}
		return almostEq(e.Eval(env), a.Eval(env)*x+b.Eval(env))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAffineIn(t *testing.T) {
	// 0.85*x/d : affine in x with a=0.85/d, b=0.
	e := Div(Mul(Num(0.85), Var("x")), Var("d"))
	a, b, ok := AffineIn(e, "x")
	if !ok {
		t.Fatal("expected affine")
	}
	env := Env{"d": 4}
	if got := a.Eval(env); !almostEq(got, 0.2125) {
		t.Errorf("a = %v", got)
	}
	if got := b.Eval(env); got != 0 {
		t.Errorf("b = %v", got)
	}

	// relu(x)*w is not affine in x.
	if _, _, ok := AffineIn(Mul(Call("relu", Var("x")), Var("w")), "x"); ok {
		t.Error("relu(x)*w should not be affine in x")
	}
	// x*x is not affine in x.
	if _, _, ok := AffineIn(Mul(Var("x"), Var("x")), "x"); ok {
		t.Error("x*x should not be affine")
	}
	// a/x is not affine in x.
	if _, _, ok := AffineIn(Div(Var("a"), Var("x")), "x"); ok {
		t.Error("a/x should not be affine")
	}
	// Expression without x: a=0, b=e.
	a, b, ok = AffineIn(Mul(Var("w"), Num(3)), "x")
	if !ok {
		t.Fatal("const-in-x must be affine")
	}
	if c, _ := FoldConst(a); c != 0 {
		t.Error("coefficient should be 0")
	}
	if got := b.Eval(Env{"w": 2}); got != 6 {
		t.Errorf("b = %v", got)
	}
}

func TestLinearIn(t *testing.T) {
	if _, ok := LinearIn(Add(Mul(Num(2), Var("x")), Num(1)), "x"); ok {
		t.Error("2x+1 is not linear (has constant term)")
	}
	a, ok := LinearIn(Mul(Mul(Num(0.7), Var("x")), Var("w")), "x")
	if !ok {
		t.Fatal("0.7*x*w should be linear in x")
	}
	if got := a.Eval(Env{"w": 2}); !almostEq(got, 1.4) {
		t.Errorf("coef = %v", got)
	}
}

func TestFoldConst(t *testing.T) {
	if v, ok := FoldConst(Mul(Num(3), Add(Num(1), Num(1)))); !ok || v != 6 {
		t.Errorf("got %v,%v", v, ok)
	}
	if _, ok := FoldConst(Var("x")); ok {
		t.Error("variable is not constant")
	}
}
