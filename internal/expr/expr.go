// Package expr defines the arithmetic expression IR shared by the Datalog
// analyzer, the MRA condition checker, and the execution engine.
//
// Expressions are built over real-valued variables and a small set of
// operators (+, -, *, /, unary minus) plus a handful of builtin functions
// (relu, abs, tanh, sigmoid) that recursive aggregate programs in the
// paper's catalogue use. An expression can be evaluated against an
// environment, compiled to a closure for the engine hot path, or handed to
// the symbolic prover in internal/smt.
package expr

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates expression nodes.
type Kind int

// Expression node kinds.
const (
	KNum  Kind = iota // numeric literal
	KVar              // variable reference
	KAdd              // binary +
	KSub              // binary -
	KMul              // binary *
	KDiv              // binary /
	KNeg              // unary -
	KCall             // builtin function call
)

// Expr is an immutable arithmetic expression tree.
type Expr struct {
	Kind Kind
	Val  float64 // KNum
	Name string  // KVar: variable name; KCall: function name
	Args []*Expr // operands (1 for KNeg, 2 for binary ops, n for KCall)
}

// Num returns a numeric literal node.
func Num(v float64) *Expr { return &Expr{Kind: KNum, Val: v} }

// Var returns a variable reference node.
func Var(name string) *Expr { return &Expr{Kind: KVar, Name: name} }

// Add returns a+b.
func Add(a, b *Expr) *Expr { return &Expr{Kind: KAdd, Args: []*Expr{a, b}} }

// Sub returns a-b.
func Sub(a, b *Expr) *Expr { return &Expr{Kind: KSub, Args: []*Expr{a, b}} }

// Mul returns a*b.
func Mul(a, b *Expr) *Expr { return &Expr{Kind: KMul, Args: []*Expr{a, b}} }

// Div returns a/b.
func Div(a, b *Expr) *Expr { return &Expr{Kind: KDiv, Args: []*Expr{a, b}} }

// Neg returns -a.
func Neg(a *Expr) *Expr { return &Expr{Kind: KNeg, Args: []*Expr{a}} }

// Call returns fn(args...). Supported builtins: relu, abs, tanh, sigmoid,
// min, max, exp, log, sqrt.
func Call(fn string, args ...*Expr) *Expr {
	return &Expr{Kind: KCall, Name: fn, Args: args}
}

// Builtins maps builtin function names to their arity and implementation.
var Builtins = map[string]struct {
	Arity int
	Fn    func(args []float64) float64
}{
	"relu":    {1, func(a []float64) float64 { return math.Max(a[0], 0) }},
	"abs":     {1, func(a []float64) float64 { return math.Abs(a[0]) }},
	"tanh":    {1, func(a []float64) float64 { return math.Tanh(a[0]) }},
	"sigmoid": {1, func(a []float64) float64 { return 1 / (1 + math.Exp(-a[0])) }},
	"exp":     {1, func(a []float64) float64 { return math.Exp(a[0]) }},
	"log":     {1, func(a []float64) float64 { return math.Log(a[0]) }},
	"sqrt":    {1, func(a []float64) float64 { return math.Sqrt(a[0]) }},
	"min":     {2, func(a []float64) float64 { return math.Min(a[0], a[1]) }},
	"max":     {2, func(a []float64) float64 { return math.Max(a[0], a[1]) }},
}

// Env binds variable names to values during evaluation.
type Env map[string]float64

// Eval evaluates e under env. Unknown variables evaluate to 0 and unknown
// functions panic; use Check before evaluating untrusted expressions.
func (e *Expr) Eval(env Env) float64 {
	switch e.Kind {
	case KNum:
		return e.Val
	case KVar:
		return env[e.Name]
	case KAdd:
		return e.Args[0].Eval(env) + e.Args[1].Eval(env)
	case KSub:
		return e.Args[0].Eval(env) - e.Args[1].Eval(env)
	case KMul:
		return e.Args[0].Eval(env) * e.Args[1].Eval(env)
	case KDiv:
		return e.Args[0].Eval(env) / e.Args[1].Eval(env)
	case KNeg:
		return -e.Args[0].Eval(env)
	case KCall:
		b, ok := Builtins[e.Name]
		if !ok {
			panic(fmt.Sprintf("expr: unknown builtin %q", e.Name))
		}
		args := make([]float64, len(e.Args))
		for i, a := range e.Args {
			args[i] = a.Eval(env)
		}
		return b.Fn(args)
	default:
		panic(fmt.Sprintf("expr: bad kind %d", e.Kind))
	}
}

// Check verifies that every builtin call in e is known and has the right
// arity, returning a descriptive error for the first violation.
func (e *Expr) Check() error {
	if e.Kind == KCall {
		b, ok := Builtins[e.Name]
		if !ok {
			return fmt.Errorf("expr: unknown builtin %q", e.Name)
		}
		if len(e.Args) != b.Arity {
			return fmt.Errorf("expr: builtin %q wants %d args, got %d", e.Name, b.Arity, len(e.Args))
		}
	}
	for _, a := range e.Args {
		if err := a.Check(); err != nil {
			return err
		}
	}
	return nil
}

// Vars returns the sorted set of free variable names in e.
func (e *Expr) Vars() []string {
	set := map[string]bool{}
	e.collectVars(set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func (e *Expr) collectVars(set map[string]bool) {
	if e.Kind == KVar {
		set[e.Name] = true
	}
	for _, a := range e.Args {
		a.collectVars(set)
	}
}

// HasVar reports whether variable name occurs free in e.
func (e *Expr) HasVar(name string) bool {
	if e.Kind == KVar && e.Name == name {
		return true
	}
	for _, a := range e.Args {
		if a.HasVar(name) {
			return true
		}
	}
	return false
}

// Subst returns a copy of e with every occurrence of variable name replaced
// by repl. Nodes that do not contain the variable are shared, not copied.
func (e *Expr) Subst(name string, repl *Expr) *Expr {
	if !e.HasVar(name) {
		return e
	}
	if e.Kind == KVar && e.Name == name {
		return repl
	}
	args := make([]*Expr, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.Subst(name, repl)
	}
	return &Expr{Kind: e.Kind, Val: e.Val, Name: e.Name, Args: args}
}

// Clone returns a deep copy of e.
func (e *Expr) Clone() *Expr {
	args := make([]*Expr, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.Clone()
	}
	return &Expr{Kind: e.Kind, Val: e.Val, Name: e.Name, Args: args}
}

// Compile lowers e to a closure over a flat variable slot layout: slots maps
// variable name to index into the argument slice. Compiling once and calling
// the closure per edge avoids tree-walking in the engine hot path.
func (e *Expr) Compile(slots map[string]int) (func(vals []float64) float64, error) {
	if err := e.Check(); err != nil {
		return nil, err
	}
	for _, v := range e.Vars() {
		if _, ok := slots[v]; !ok {
			return nil, fmt.Errorf("expr: variable %q has no slot", v)
		}
	}
	return e.compile(slots), nil
}

func (e *Expr) compile(slots map[string]int) func([]float64) float64 {
	switch e.Kind {
	case KNum:
		v := e.Val
		return func([]float64) float64 { return v }
	case KVar:
		i := slots[e.Name]
		return func(vals []float64) float64 { return vals[i] }
	case KAdd:
		a, b := e.Args[0].compile(slots), e.Args[1].compile(slots)
		return func(v []float64) float64 { return a(v) + b(v) }
	case KSub:
		a, b := e.Args[0].compile(slots), e.Args[1].compile(slots)
		return func(v []float64) float64 { return a(v) - b(v) }
	case KMul:
		a, b := e.Args[0].compile(slots), e.Args[1].compile(slots)
		return func(v []float64) float64 { return a(v) * b(v) }
	case KDiv:
		a, b := e.Args[0].compile(slots), e.Args[1].compile(slots)
		return func(v []float64) float64 { return a(v) / b(v) }
	case KNeg:
		a := e.Args[0].compile(slots)
		return func(v []float64) float64 { return -a(v) }
	case KCall:
		b := Builtins[e.Name]
		parts := make([]func([]float64) float64, len(e.Args))
		for i, arg := range e.Args {
			parts[i] = arg.compile(slots)
		}
		fn := b.Fn
		return func(v []float64) float64 {
			args := make([]float64, len(parts))
			for i, p := range parts {
				args[i] = p(v)
			}
			return fn(args)
		}
	default:
		panic("expr: bad kind")
	}
}

// String renders e in conventional infix notation with minimal parentheses.
func (e *Expr) String() string {
	var b strings.Builder
	e.write(&b, 0)
	return b.String()
}

// precedence levels: 1 add/sub, 2 mul/div, 3 unary.
func (e *Expr) write(b *strings.Builder, parent int) {
	prec := 0
	switch e.Kind {
	case KAdd, KSub:
		prec = 1
	case KMul, KDiv:
		prec = 2
	case KNeg:
		prec = 3
	default:
		// KNum, KVar, KCall render atomically and never need parens.
	}
	open := prec != 0 && prec < parent
	if open {
		b.WriteByte('(')
	}
	switch e.Kind {
	case KNum:
		b.WriteString(strconv.FormatFloat(e.Val, 'g', -1, 64))
	case KVar:
		b.WriteString(e.Name)
	case KAdd:
		e.Args[0].write(b, 1)
		b.WriteString(" + ")
		e.Args[1].write(b, 2)
	case KSub:
		e.Args[0].write(b, 1)
		b.WriteString(" - ")
		e.Args[1].write(b, 2)
	case KMul:
		e.Args[0].write(b, 2)
		b.WriteString(" * ")
		e.Args[1].write(b, 3)
	case KDiv:
		e.Args[0].write(b, 2)
		b.WriteString(" / ")
		e.Args[1].write(b, 3)
	case KNeg:
		b.WriteString("-")
		e.Args[0].write(b, 3)
	case KCall:
		b.WriteString(e.Name)
		b.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			a.write(b, 0)
		}
		b.WriteByte(')')
	}
	if open {
		b.WriteByte(')')
	}
}
