package rewrite

import (
	"strings"
	"testing"

	"powerlog/internal/agg"
	"powerlog/internal/analyzer"
	"powerlog/internal/checker"
	"powerlog/internal/parser"
	"powerlog/internal/progs"
)

func analyzeSrc(t *testing.T, src string) (*analyzer.Info, *checker.Report) {
	t.Helper()
	rep, info, err := checker.CheckSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return info, rep
}

func TestPageRankToIncremental(t *testing.T) {
	info, rep := analyzeSrc(t, progs.PageRank)
	out, err := ToIncremental(info, rep)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	// The teleport constant moved into an iteration-0 init rule.
	if !strings.Contains(text, "rank(0,Y,ry)") {
		t.Errorf("missing init rule:\n%s", text)
	}
	// The recursive rule has a self-feed body (Program 2.b's "ry = r").
	if !strings.Contains(text, "ǂprev") {
		t.Errorf("missing self-feed body:\n%s", text)
	}
	// Still carries F' and the termination clause.
	if !strings.Contains(text, "0.85 * rx / d") {
		t.Errorf("missing F':\n%s", text)
	}
	if !strings.Contains(text, "< 0.0001") {
		t.Errorf("missing termination clause:\n%s", text)
	}
	// The degree view passes through.
	if !strings.Contains(text, "degree(X,count[Y])") {
		t.Errorf("missing degree view:\n%s", text)
	}
}

func TestSSSPToIncrementalKeepsInit(t *testing.T) {
	info, rep := analyzeSrc(t, progs.SSSP)
	out, err := ToIncremental(info, rep)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "sssp(X,d)") {
		t.Errorf("init rule lost:\n%s", text)
	}
	if !strings.Contains(text, "dx + dxy") {
		t.Errorf("F' lost:\n%s", text)
	}
}

func TestRejectsUnsatisfiablePrograms(t *testing.T) {
	info, rep := analyzeSrc(t, progs.GCNForward)
	if _, err := ToIncremental(info, rep); err == nil {
		t.Fatal("GCN-Forward must not be rewritten")
	}
}

func TestRewriteWithNilReportChecksItself(t *testing.T) {
	info, _ := analyzeSrc(t, progs.Katz)
	out, err := ToIncremental(info, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) == 0 {
		t.Fatal("empty rewrite")
	}
}

func TestRewrittenProgramReparses(t *testing.T) {
	// Everything except the internal ǂprev marker must round-trip through
	// the parser; rename it first the way an exporter would.
	info, rep := analyzeSrc(t, progs.Adsorption)
	out, err := ToIncremental(info, rep)
	if err != nil {
		t.Fatal(err)
	}
	text := strings.ReplaceAll(out.String(), "ǂprev", "prevval")
	if _, err := parser.Parse(text); err != nil {
		t.Fatalf("rewritten program does not reparse: %v\n%s", err, text)
	}
}

func TestMonotonicAggName(t *testing.T) {
	cases := map[agg.Kind]string{
		agg.Min: "mmin", agg.Max: "mmax", agg.Sum: "msum", agg.Count: "mcount",
		agg.Mean: "mean",
	}
	for k, want := range cases {
		if got := MonotonicAggName(k); got != want {
			t.Errorf("MonotonicAggName(%v) = %q, want %q", k, got, want)
		}
	}
}
