// Package rewrite converts a convertible non-monotonic recursive
// aggregate program into its equivalent incremental (monotonic) form —
// the transformation the paper performs "automatically and transparently
// to users" (§3.2), turning the original PageRank (Program 2) into the
// delta-based Program 2.b. The engine itself executes the analysed form
// directly; this package materialises the rewritten AST so users can see
// (and other systems can consume) the incremental program.
package rewrite

import (
	"fmt"

	"powerlog/internal/agg"
	"powerlog/internal/analyzer"
	"powerlog/internal/ast"
	"powerlog/internal/checker"
	"powerlog/internal/expr"
)

// ToIncremental returns the incremental equivalent of an analysed
// program that satisfies the MRA conditions:
//
//   - the constant bodies C become initialisation (ΔX¹) rules, and
//   - the recursive rule keeps only F' plus a self-feed body
//     ("ry = r" in Program 2.b) that makes the per-key sequence
//     monotonic under the aggregate.
//
// It refuses programs that fail the condition check — rewriting those
// would change their semantics.
func ToIncremental(info *analyzer.Info, rep *checker.Report) (*ast.Program, error) {
	if rep == nil {
		rep = checker.Check(info)
	}
	if !rep.Satisfied {
		return nil, fmt.Errorf("rewrite: %s does not satisfy the MRA conditions (%s)", info.HeadName, rep.P2.Reason)
	}
	out := &ast.Program{}

	// Non-recursive rules pass through untouched (facts, views, derived
	// relations).
	rec := info.Rec.Rule
	for _, r := range info.AST.Rules {
		if r != rec && r.Head.Name != info.HeadName {
			out.Rules = append(out.Rules, r)
		}
	}

	// Initialisation: former init rules keep their role; each constant
	// body becomes an explicit iteration-0 rule.
	for _, r := range info.InitRules {
		out.Rules = append(out.Rules, r)
	}
	for i, cb := range info.ConstBodies {
		init := &ast.Rule{
			Label: fmt.Sprintf("init%d", i+1),
			Head:  initHead(info),
			Bodies: []*ast.Body{
				{Atoms: initAtoms(info, cb)},
			},
		}
		out.Rules = append(out.Rules, init)
	}

	// The incremental recursive rule: self-feed body plus the F' body.
	newRec := &ast.Rule{
		Label:  rec.Label,
		Head:   rec.Head,
		Term:   rec.Term,
		Bodies: []*ast.Body{selfFeedBody(info), fPrimeBody(info)},
	}
	out.Rules = append(out.Rules, newRec)
	return out, nil
}

// initHead builds "R(0, keys..., value)" mirroring the recursive head's
// argument layout.
func initHead(info *analyzer.Info) *ast.Pred {
	head := &ast.Pred{Name: info.HeadName}
	ki := 0
	for i := range info.Rec.Rule.Head.Args {
		switch {
		case i == 0 && info.IterIndexed:
			head.Args = append(head.Args, &ast.Term{Kind: ast.TermNum, Num: 0})
		case i == info.AggPos:
			head.Args = append(head.Args, &ast.Term{Kind: ast.TermVar, Var: info.AggVar})
		default:
			head.Args = append(head.Args, &ast.Term{Kind: ast.TermVar, Var: info.KeyVars[ki]})
			ki++
		}
	}
	return head
}

// initAtoms reuses the constant body's atoms as the init rule's body.
func initAtoms(info *analyzer.Info, cb *analyzer.ConstBody) []*ast.Atom {
	return cb.Body.Atoms
}

// selfFeedBody builds "R(i, keys..., r), aggVar = r": each key re-feeds
// its accumulated value, making the sequence monotonically increasing
// for combining aggregates (Program 2.b's first body). For selective
// aggregates the self-feed is what DeALS' monotonic aggregates do
// implicitly.
func selfFeedBody(info *analyzer.Info) *ast.Body {
	prev := "ǂprev"
	recAtom := &ast.Pred{Name: info.HeadName}
	ki := 0
	for i := range info.Rec.Rule.Head.Args {
		switch {
		case i == 0 && info.IterIndexed:
			recAtom.Args = append(recAtom.Args, &ast.Term{Kind: ast.TermVar, Var: "i"})
		case i == info.AggPos:
			recAtom.Args = append(recAtom.Args, &ast.Term{Kind: ast.TermVar, Var: prev})
		default:
			recAtom.Args = append(recAtom.Args, &ast.Term{Kind: ast.TermVar, Var: info.KeyVars[ki]})
			ki++
		}
	}
	return &ast.Body{Atoms: []*ast.Atom{
		{Kind: ast.AtomPred, Pred: recAtom},
		{Kind: ast.AtomCompare, Cmp: &ast.Compare{
			Op:  "=",
			LHS: expr.Var(info.AggVar),
			RHS: expr.Var(prev),
		}},
	}}
}

// fPrimeBody rebuilds the recursive body with the aggregate variable
// defined by F' alone (any additive constant split out by the analyzer
// has moved to the init rules).
func fPrimeBody(info *analyzer.Info) *ast.Body {
	b := &ast.Body{}
	for _, a := range info.Rec.Body.Atoms {
		if a.Kind == ast.AtomCompare {
			if v, _, ok := a.Cmp.IsAssignment(); ok && v == info.AggVar {
				b.Atoms = append(b.Atoms, &ast.Atom{Kind: ast.AtomCompare, Cmp: &ast.Compare{
					Op:  "=",
					LHS: expr.Var(info.AggVar),
					RHS: info.Rec.FPrime,
				}})
				continue
			}
		}
		b.Atoms = append(b.Atoms, a)
	}
	if _, selfDefined := findAggDef(info); !selfDefined {
		// CC-style bodies bind the aggregate variable directly through the
		// recursive atom; nothing to rewrite.
		return b
	}
	return b
}

// findAggDef reports whether the recursive body defines AggVar by
// assignment (as opposed to binding it directly in the recursive atom).
func findAggDef(info *analyzer.Info) (*expr.Expr, bool) {
	for _, a := range info.Rec.Body.Atoms {
		if a.Kind == ast.AtomCompare {
			if v, def, ok := a.Cmp.IsAssignment(); ok && v == info.AggVar {
				return def, true
			}
		}
	}
	return nil, false
}

// MonotonicAggName maps an aggregate to its DeALS-style monotonic
// spelling (mmin, mmax, msum, mcount), used when exporting the rewritten
// program for systems that require explicit monotonic aggregates.
func MonotonicAggName(k agg.Kind) string {
	switch k {
	case agg.Min:
		return "mmin"
	case agg.Max:
		return "mmax"
	case agg.Sum:
		return "msum"
	case agg.Count:
		return "mcount"
	default:
		return k.String()
	}
}
