// Package compiler lowers an analysed recursive aggregate program to an
// executable Plan: a compiled propagation closure over a CSR graph plus
// materialised initial deltas, ready for any of the evaluation engines
// (naive, MRA sync, MRA async, unified sync-async).
package compiler

import (
	"fmt"

	"powerlog/internal/agg"
	"powerlog/internal/analyzer"
	"powerlog/internal/edb"
	"powerlog/internal/graph"
)

// KV is a key/value contribution.
type KV struct {
	K int64
	V float64
}

// TermSpec describes when evaluation stops.
type TermSpec struct {
	// Epsilon is the user-level convergence threshold: stop when the
	// aggregate change between consecutive global results drops below it.
	// Zero means run to fixpoint.
	Epsilon float64
	// MaxIters is the paper's system-level termination: a hard cap on
	// (synchronous) iterations or asynchronous termination-check rounds.
	MaxIters int
}

// Fixpoint reports whether the program terminates only at a fixpoint.
func (t TermSpec) Fixpoint() bool { return t.Epsilon == 0 }

// Plan is an executable program.
type Plan struct {
	Info *analyzer.Info
	Op   *agg.Op
	DB   *edb.DB

	// PairKeys is true when the program groups by two key variables
	// (APSP, SimRank): keys are encoded hi<<32|lo and tables are sparse.
	PairKeys bool
	// N is the dense key-space size (vertex count) for single-key plans.
	N int
	// Graph is the propagation structure joined in the recursive body.
	Graph *graph.Graph

	// Propagate applies the incremental F' to a drained delta and emits
	// each dependent contribution. Safe for concurrent use, but
	// allocates its evaluation scratch per call — hot loops should hold
	// a NewScratch buffer and call PropagateInto instead.
	Propagate func(key int64, delta float64, emit func(dst int64, v float64))
	// PropagateFull applies the original, un-split F to a full value —
	// the naive-evaluation path.
	PropagateFull func(key int64, value float64, emit func(dst int64, v float64))

	// PropagateInto / PropagateFullInto are the reentrant forms: the
	// caller supplies the expression-evaluation scratch (one NewScratch
	// slice per goroutine), so a steady-state scan pass allocates
	// nothing. Scratch must not be shared between concurrent callers.
	PropagateInto     func(scratch []float64, key int64, delta float64, emit func(dst int64, v float64))
	PropagateFullInto func(scratch []float64, key int64, value float64, emit func(dst int64, v float64))
	// NewScratch sizes a scratch buffer for PropagateInto /
	// PropagateFullInto (one slot per variable the compiled expression
	// reads).
	NewScratch func() []float64

	// InitMRA is ΔX¹ of MRA evaluation (§3.3): initialisation tuples,
	// constant bodies, and per-edge constants, folded per key.
	InitMRA []KV
	// BaseNaive holds the tuples naive evaluation re-derives every
	// iteration (initialisation rules and constant bodies).
	BaseNaive []KV

	Termination TermSpec

	// shape is the resolved propagation structure, retained so a session
	// can re-derive supporting relations, attribute columns, and ΔX¹
	// after a base-fact mutation (delta.go).
	shape *bodyShape
}

// JoinPredicate names the base relation the recursive body joins — the
// graph predicate Session mutations address. Empty for plans without a
// retained shape.
func (p *Plan) JoinPredicate() string {
	if p.shape == nil || p.shape.join == nil {
		return ""
	}
	return p.shape.join.Name
}

// EncodePair packs two 31-bit keys into one table key.
func EncodePair(hi, lo int64) int64 { return hi<<32 | lo }

// DecodePair unpacks a pair key.
func DecodePair(k int64) (hi, lo int64) { return k >> 32, k & 0xffffffff }

// Error is a compilation error.
type Error struct{ Msg string }

func (e *Error) Error() string { return "compiler: " + e.Msg }

func errf(format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...)}
}
