package compiler

import (
	"math"
	"sort"
	"testing"

	"powerlog/internal/analyzer"
	"powerlog/internal/edb"
	"powerlog/internal/graph"
	"powerlog/internal/parser"
	"powerlog/internal/progs"
)

// testGraph: 0→1 (w5), 0→2 (w3), 1→2 (w1), 2→3 (w2).
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1, W: 5}, {Src: 0, Dst: 2, W: 3},
		{Src: 1, Dst: 2, W: 1}, {Src: 2, Dst: 3, W: 2},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func compile(t *testing.T, src string, db *edb.DB) *Plan {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := analyzer.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(info, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func collect(p *Plan, key int64, delta float64, full bool) map[int64]float64 {
	out := map[int64]float64{}
	f := p.Propagate
	if full {
		f = p.PropagateFull
	}
	f(key, delta, func(dst int64, v float64) {
		if cur, ok := out[dst]; ok {
			out[dst] = p.Op.Fold(cur, v)
		} else {
			out[dst] = v
		}
	})
	return out
}

func TestCompileSSSP(t *testing.T) {
	db := edb.NewDB()
	db.SetGraph("edge", testGraph(t))
	p := compile(t, progs.SSSP, db)
	if p.PairKeys || p.N != 4 {
		t.Fatalf("pair=%v n=%d", p.PairKeys, p.N)
	}
	if len(p.InitMRA) != 1 || p.InitMRA[0].K != 0 || p.InitMRA[0].V != 0 {
		t.Fatalf("init = %v", p.InitMRA)
	}
	got := collect(p, 0, 0, false)
	if got[1] != 5 || got[2] != 3 {
		t.Errorf("propagate from source = %v", got)
	}
	got = collect(p, 1, 5, false)
	if got[2] != 6 {
		t.Errorf("propagate from 1 = %v", got)
	}
	if !p.Termination.Fixpoint() {
		t.Error("SSSP should be a fixpoint program")
	}
}

func TestCompilePageRank(t *testing.T) {
	db := edb.NewDB()
	db.SetGraph("edge", testGraph(t))
	p := compile(t, progs.PageRank, db)
	// Every vertex gets the 0.15 teleport as ΔX¹ (node relation is
	// synthesised over [0,4)).
	if len(p.InitMRA) != 4 {
		t.Fatalf("init = %v", p.InitMRA)
	}
	for _, kv := range p.InitMRA {
		if kv.V != 0.15 {
			t.Errorf("init[%d] = %v", kv.K, kv.V)
		}
	}
	// Vertex 0 has out-degree 2: delta r propagates 0.85*r/2 to 1 and 2.
	got := collect(p, 0, 1, false)
	if math.Abs(got[1]-0.425) > 1e-12 || math.Abs(got[2]-0.425) > 1e-12 {
		t.Errorf("propagate = %v", got)
	}
	if p.Termination.Epsilon != 0.0001 {
		t.Errorf("epsilon = %v", p.Termination.Epsilon)
	}
	// The derived degree relation must exist in the DB.
	if _, ok := db.Relation("degree"); !ok {
		t.Error("degree relation not materialised")
	}
	col, err := db.VertexColumn("degree", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 1, 1, 0}
	for i := range want {
		if col[i] != want[i] {
			t.Errorf("degree = %v", col)
			break
		}
	}
}

func TestCompileCC(t *testing.T) {
	db := edb.NewDB()
	db.SetGraph("edge", testGraph(t))
	p := compile(t, progs.CC, db)
	// Init: every vertex with an out-edge carries its own id.
	initMap := map[int64]float64{}
	for _, kv := range p.InitMRA {
		initMap[kv.K] = kv.V
	}
	for _, v := range []int64{0, 1, 2} {
		if initMap[v] != float64(v) {
			t.Errorf("init[%d] = %v", v, initMap[v])
		}
	}
	if _, ok := initMap[3]; ok {
		t.Error("vertex 3 has no out-edge; CC init should not include it")
	}
	// Identity F: delta passes through.
	got := collect(p, 0, 0, false)
	if got[1] != 0 || got[2] != 0 {
		t.Errorf("propagate = %v", got)
	}
}

func TestCompileKatzUsesViewRule(t *testing.T) {
	db := edb.NewDB()
	db.SetGraph("edge", testGraph(t))
	p := compile(t, progs.Katz, db)
	if len(p.InitMRA) != 1 || p.InitMRA[0].K != 0 || p.InitMRA[0].V != 10000 {
		t.Fatalf("Katz init = %v", p.InitMRA)
	}
	got := collect(p, 0, 10000, false)
	if got[1] != 1000 || got[2] != 1000 {
		t.Errorf("propagate = %v", got)
	}
}

func TestCompileCostEdgeConstants(t *testing.T) {
	db := edb.NewDB()
	db.SetGraph("dagedge", testGraph(t))
	p := compile(t, progs.Cost, db)
	// ΔX¹ = per-edge weights folded at destinations plus the source tuple.
	initMap := map[int64]float64{}
	for _, kv := range p.InitMRA {
		initMap[kv.K] = kv.V
	}
	if initMap[1] != 5 || initMap[2] != 4 || initMap[3] != 2 {
		t.Errorf("edge-constant init = %v", initMap)
	}
	// Naive base excludes the per-edge constants (full F re-derives them).
	baseMap := map[int64]float64{}
	for _, kv := range p.BaseNaive {
		baseMap[kv.K] = kv.V
	}
	if len(baseMap) != 1 || baseMap[0] != 0 {
		t.Errorf("naive base = %v", baseMap)
	}
	// Full F includes +w; delta F' does not.
	full := collect(p, 0, 10, true)
	if full[1] != 15 || full[2] != 13 {
		t.Errorf("full propagate = %v", full)
	}
	delta := collect(p, 0, 10, false)
	if delta[1] != 10 || delta[2] != 10 {
		t.Errorf("delta propagate = %v", delta)
	}
}

func TestCompileAPSPPairKeys(t *testing.T) {
	db := edb.NewDB()
	db.SetGraph("edge", testGraph(t))
	p := compile(t, progs.APSP, db)
	if !p.PairKeys {
		t.Fatal("APSP should be pair-keyed")
	}
	// Init: one tuple per edge.
	if len(p.InitMRA) != 4 {
		t.Fatalf("init = %v", p.InitMRA)
	}
	initMap := map[int64]float64{}
	for _, kv := range p.InitMRA {
		initMap[kv.K] = kv.V
	}
	if initMap[EncodePair(0, 1)] != 5 || initMap[EncodePair(2, 3)] != 2 {
		t.Errorf("init = %v", initMap)
	}
	// Propagate (0,1) with d=5 along 1→2: emits (0,2) with 6.
	got := collect(p, EncodePair(0, 1), 5, false)
	if got[EncodePair(0, 2)] != 6 || len(got) != 1 {
		t.Errorf("pair propagate = %v", got)
	}
}

func TestCompileAdsorptionAttrs(t *testing.T) {
	db := edb.NewDB()
	g := testGraph(t)
	db.SetGraph("A", g)
	pi := edb.NewRelation("pi", 2)
	pc := edb.NewRelation("pc", 2)
	for v := 0; v < 4; v++ {
		pi.Add(float64(v), 0.25)
		pc.Add(float64(v), 0.5)
	}
	db.AddRelation(pi)
	db.AddRelation(pc)
	p := compile(t, progs.Adsorption, db)
	// Init: i * p2 = 1 * 0.25 per vertex.
	if len(p.InitMRA) != 4 {
		t.Fatalf("init = %v", p.InitMRA)
	}
	for _, kv := range p.InitMRA {
		if kv.V != 0.25 {
			t.Errorf("init[%d] = %v", kv.K, kv.V)
		}
	}
	// Propagate: 0.7 * a * w * pc[src]; from vertex 0, edge→1 w=5.
	got := collect(p, 0, 1, false)
	if math.Abs(got[1]-0.7*1*5*0.5) > 1e-12 {
		t.Errorf("propagate = %v", got)
	}
}

func TestCompileDeterministicInitOrder(t *testing.T) {
	db := edb.NewDB()
	db.SetGraph("edge", testGraph(t))
	p1 := compile(t, progs.PageRank, db)
	db2 := edb.NewDB()
	db2.SetGraph("edge", testGraph(t))
	p2 := compile(t, progs.PageRank, db2)
	if len(p1.InitMRA) != len(p2.InitMRA) {
		t.Fatal("nondeterministic init")
	}
	for i := range p1.InitMRA {
		if p1.InitMRA[i] != p2.InitMRA[i] {
			t.Fatal("init order must be deterministic")
		}
	}
	if !sort.SliceIsSorted(p1.InitMRA, func(i, j int) bool { return p1.InitMRA[i].K < p1.InitMRA[j].K }) {
		t.Error("init must be key-sorted")
	}
}

func TestCompileErrors(t *testing.T) {
	db := edb.NewDB()
	db.SetGraph("edge", testGraph(t))
	cases := []struct {
		name, src string
	}{
		{"missing graph", `
a(X,v) :- X=0, v=0.
a(Y,min[v1]) :- a(X,v), nograph(X,Y), v1 = v.`},
		{"unbound var in F", `
a(X,v) :- X=0, v=0.
a(Y,min[v1]) :- a(X,v), edge(X,Y), v1 = v + q.`},
		{"three keys", `
a(X,Y,Z,min[v1]) :- a(X,Y,W,v), edge(W,Z), v1 = v.`},
	}
	for _, c := range cases {
		prog, err := parser.Parse(c.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		info, err := analyzer.Analyze(prog)
		if err != nil {
			t.Fatalf("%s: analyze: %v", c.name, err)
		}
		if _, err := Compile(info, db, Options{}); err == nil {
			t.Errorf("%s: expected compile error", c.name)
		}
	}
}

func TestEncodeDecodePair(t *testing.T) {
	for _, pair := range [][2]int64{{0, 0}, {1, 2}, {123456, 654321}, {1 << 30, 1 << 30}} {
		k := EncodePair(pair[0], pair[1])
		hi, lo := DecodePair(k)
		if hi != pair[0] || lo != pair[1] {
			t.Errorf("round trip (%d,%d) → %d → (%d,%d)", pair[0], pair[1], k, hi, lo)
		}
	}
}

func TestCompileFactsProgram(t *testing.T) {
	// A fully self-contained program with inline facts.
	src := `
edge(0,1,4).
edge(1,2,3).
r1. sssp(X,d) :- X=0, d=0.
r2. sssp(Y,min[dy]) :- sssp(X,dx), edge(X,Y,dxy), dy = dx + dxy.
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := analyzer.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	db := edb.NewDB()
	// Facts become a relation, but the join needs a graph: build it from
	// the facts first (this is what the powerlog CLI does).
	g, err := GraphFromFacts(info, "edge", 0)
	if err != nil {
		t.Fatal(err)
	}
	db.SetGraph("edge", g)
	p, err := Compile(info, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(p, 0, 0, false)
	if got[1] != 4 {
		t.Errorf("propagate = %v", got)
	}
}
