package compiler

import (
	"sort"

	"powerlog/internal/agg"
	"powerlog/internal/analyzer"
	"powerlog/internal/ast"
	"powerlog/internal/edb"
	"powerlog/internal/expr"
)

// evalFacts loads ground facts of the program into relations (predicates
// already provided by the database are left alone: data wins over source
// facts, which typically serve tiny self-contained example programs).
func evalFacts(info *analyzer.Info, db *edb.DB) error {
	byPred := map[string][]*ast.Rule{}
	for _, f := range info.Facts {
		byPred[f.Head.Name] = append(byPred[f.Head.Name], f)
	}
	for name, facts := range byPred {
		if db.HasPred(name) {
			continue
		}
		rel := edb.NewRelation(name, len(facts[0].Head.Args))
		for _, f := range facts {
			if len(f.Head.Args) != rel.Arity {
				return errf("fact %s has inconsistent arity", f.Head)
			}
			row := make([]float64, rel.Arity)
			for i, t := range f.Head.Args {
				if t.Kind != ast.TermNum {
					return errf("fact %s must have numeric arguments", f.Head)
				}
				row[i] = t.Num
			}
			rel.Add(row...)
		}
		db.AddRelation(rel)
	}
	return nil
}

// evalOtherRules materialises plain non-recursive view rules (e.g. the
// Katz source table "I(X,k) :- X=0, k=10000"). Rules whose predicates are
// already present in the database are skipped. Two passes handle simple
// view-on-view chains.
func evalOtherRules(info *analyzer.Info, db *edb.DB) error {
	pending := append([]*ast.Rule(nil), info.OtherRules...)
	for pass := 0; pass < 2 && len(pending) > 0; pass++ {
		var retry []*ast.Rule
		for _, r := range pending {
			if db.HasPred(r.Head.Name) {
				continue
			}
			rel := edb.NewRelation(r.Head.Name, len(r.Head.Args))
			ok := true
			for _, body := range r.Bodies {
				err := db.EvalBody(body.Atoms, func(env edb.Env) error {
					row := make([]float64, rel.Arity)
					for i, t := range r.Head.Args {
						v, err := termValue(t, env)
						if err != nil {
							return err
						}
						row[i] = v
					}
					rel.Add(row...)
					return nil
				})
				if err != nil {
					ok = false
					break
				}
			}
			if ok {
				db.AddRelation(rel)
			} else {
				retry = append(retry, r)
			}
		}
		pending = retry
	}
	if len(pending) > 0 {
		return errf("cannot evaluate rule for %s (missing relations or unbound variables)", pending[0].Head.Name)
	}
	return nil
}

// evalDerivedRules materialises non-recursive aggregate views such as
// PageRank's degree(X,count[Y]) :- edge(X,Y).
func evalDerivedRules(info *analyzer.Info, db *edb.DB) error {
	for _, r := range info.DerivedRules {
		if db.HasPred(r.Head.Name) {
			continue
		}
		aggT, aggPos := r.AggTermOf()
		op, err := agg.Parse(aggT.Op)
		if err != nil {
			return errf("derived rule %s: %v", r.Head.Name, err)
		}
		o := agg.ByKind(op)

		groups := map[string]*groupState{}
		var keyOrder []string
		for _, body := range r.Bodies {
			err := db.EvalBody(body.Atoms, func(env edb.Env) error {
				key := make([]float64, 0, len(r.Head.Args)-1)
				for i, t := range r.Head.Args {
					if i == aggPos {
						continue
					}
					v, err := termValue(t, env)
					if err != nil {
						return err
					}
					key = append(key, v)
				}
				var val float64
				if op == agg.Count {
					val = 1
				} else {
					v, ok := env[aggT.Var]
					if !ok {
						return errf("derived rule %s: aggregate variable %s unbound", r.Head.Name, aggT.Var)
					}
					val = v
				}
				ks := keyString(key)
				g, ok := groups[ks]
				if !ok {
					g = &groupState{key: key, acc: o.Identity()}
					groups[ks] = g
					keyOrder = append(keyOrder, ks)
				}
				g.acc = o.Fold(g.acc, val)
				return nil
			})
			if err != nil {
				return err
			}
		}
		rel := edb.NewRelation(r.Head.Name, len(r.Head.Args))
		sort.Strings(keyOrder)
		for _, ks := range keyOrder {
			g := groups[ks]
			row := make([]float64, 0, rel.Arity)
			ki := 0
			for i := range r.Head.Args {
				if i == aggPos {
					row = append(row, g.acc)
				} else {
					row = append(row, g.key[ki])
					ki++
				}
			}
			rel.Add(row...)
		}
		db.AddRelation(rel)
	}
	return nil
}

type groupState struct {
	key []float64
	acc float64
}

func keyString(key []float64) string {
	b := make([]byte, 0, len(key)*8)
	for _, k := range key {
		v := int64(k)
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(v>>s))
		}
	}
	return string(b)
}

// buildInits materialises ΔX¹ (InitMRA) and the naive per-iteration base
// tuples (BaseNaive) per §3.3: initialisation rules and constant bodies
// contribute to both; per-edge constants split from the recursive body
// (CRec) contribute to ΔX¹ only — naive evaluation re-derives them
// through the full F.
func buildInits(p *Plan, shape *bodyShape) error {
	info := p.Info
	fold := map[int64]float64{}
	add := func(k int64, v float64) {
		if cur, ok := fold[k]; ok {
			fold[k] = p.Op.Fold(cur, v)
		} else {
			fold[k] = v
		}
	}

	// Initialisation rules: non-recursive rules with the head predicate.
	for _, r := range info.InitRules {
		if err := evalHeadRule(p, r, add); err != nil {
			return err
		}
	}
	// Constant bodies of the recursive rule. The aggregate-variable
	// assignment inside the body is harmless to re-evaluate; cb.Expr is
	// the resolved form used for the contribution value.
	for _, cb := range info.ConstBodies {
		err := p.DB.EvalBody(cb.Body.Atoms, func(env edb.Env) error {
			key, err := headKeyFromEnv(p, info.KeyVars, env)
			if err != nil {
				return err
			}
			add(key, cb.Expr.Eval(expr.Env(env)))
			return nil
		})
		if err != nil {
			return err
		}
	}
	base := kvList(fold)
	p.BaseNaive = base

	// Per-edge constants from the additive split of F (combining
	// aggregates only), folded into ΔX¹.
	if info.Rec.CRec != nil {
		if err := addEdgeConstants(p, shape, add); err != nil {
			return err
		}
	}
	p.InitMRA = kvList(fold)
	return nil
}

// evalHeadRule evaluates one non-recursive rule for the head predicate
// and emits its (key, value) tuples.
func evalHeadRule(p *Plan, r *ast.Rule, add func(int64, float64)) error {
	info := p.Info
	// Identify the value position: same as AggPos in the recursive head.
	valuePos := info.AggPos
	if valuePos >= len(r.Head.Args) {
		return errf("init rule %s has too few head arguments", r.Head.Name)
	}
	// Key argument positions mirror the recursive head (minus iteration
	// index and aggregate term).
	var keyTerms []*ast.Term
	for i, t := range r.Head.Args {
		if i == valuePos || (i == 0 && info.IterIndexed) {
			continue
		}
		keyTerms = append(keyTerms, t)
	}
	if len(keyTerms) != len(info.KeyVars) {
		return errf("init rule %s key arity %d does not match recursive head %d",
			r.Head.Name, len(keyTerms), len(info.KeyVars))
	}
	emit := func(env edb.Env) error {
		keys := make([]int64, len(keyTerms))
		for i, t := range keyTerms {
			v, err := termValue(t, env)
			if err != nil {
				return err
			}
			keys[i] = int64(v)
		}
		val, err := termValue(r.Head.Args[valuePos], env)
		if err != nil {
			return err
		}
		key := keys[0]
		if p.PairKeys {
			key = EncodePair(keys[0], keys[1])
		}
		add(key, val)
		return nil
	}
	for _, body := range r.Bodies {
		if err := p.DB.EvalBody(body.Atoms, emit); err != nil {
			return err
		}
	}
	return nil
}

// addEdgeConstants folds CRec evaluated per edge into each destination.
func addEdgeConstants(p *Plan, shape *bodyShape, add func(int64, float64)) error {
	c := p.Info.Rec.CRec
	slots := map[string]int{}
	n := 0
	weightSlot := -1
	if shape.weightVar != "" {
		weightSlot = n
		slots[shape.weightVar] = n
		n++
	}
	type colSlot struct {
		slot int
		col  []float64
	}
	var src, dst []colSlot
	for _, a := range shape.srcAttrs {
		slots[a.varName] = n
		src = append(src, colSlot{n, a.col})
		n++
	}
	for _, a := range shape.dstAttrs {
		slots[a.varName] = n
		dst = append(dst, colSlot{n, a.col})
		n++
	}
	f, err := c.Compile(slots)
	if err != nil {
		return errf("edge constant %s references unbound variables: %v", c, err)
	}
	if p.PairKeys {
		return errf("per-edge constants are not supported for pair-keyed programs")
	}
	g := p.Graph
	vals := make([]float64, n)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for _, cs := range src {
			vals[cs.slot] = cs.col[v]
		}
		lo, hi := g.EdgeRange(v)
		for i := lo; i < hi; i++ {
			d := g.Target(i)
			if weightSlot >= 0 {
				vals[weightSlot] = g.Weight(i)
			}
			for _, cs := range dst {
				vals[cs.slot] = cs.col[d]
			}
			add(int64(d), f(vals))
		}
	}
	return nil
}

// headKeyFromEnv encodes the head key from a binding environment.
func headKeyFromEnv(p *Plan, keyVars []string, env edb.Env) (int64, error) {
	k0, ok := env[keyVars[0]]
	if !ok {
		return 0, errf("head key variable %s unbound in constant body", keyVars[0])
	}
	if !p.PairKeys {
		return int64(k0), nil
	}
	k1, ok := env[keyVars[1]]
	if !ok {
		return 0, errf("head key variable %s unbound in constant body", keyVars[1])
	}
	return EncodePair(int64(k0), int64(k1)), nil
}

// termValue resolves a head term under a binding environment.
func termValue(t *ast.Term, env edb.Env) (float64, error) {
	switch t.Kind {
	case ast.TermNum:
		return t.Num, nil
	case ast.TermVar:
		v, ok := env[t.Var]
		if !ok {
			return 0, errf("head variable %s unbound", t.Var)
		}
		return v, nil
	case ast.TermArith:
		for _, v := range t.Expr.Vars() {
			if _, ok := env[v]; !ok {
				return 0, errf("head expression variable %s unbound", v)
			}
		}
		return t.Expr.Eval(expr.Env(env)), nil
	default:
		return 0, errf("unsupported head term %s", t)
	}
}

func kvList(m map[int64]float64) []KV {
	out := make([]KV, 0, len(m))
	for k, v := range m {
		out = append(out, KV{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
	return out
}
