package compiler

import (
	"powerlog/internal/agg"
	"powerlog/internal/analyzer"
	"powerlog/internal/ast"
	"powerlog/internal/edb"
	"powerlog/internal/graph"
)

// Options tunes compilation.
type Options struct {
	// MaxIters overrides the system-level iteration cap (default 10000).
	MaxIters int
}

// DefaultMaxIters is the system-level termination bound of §2.2.
const DefaultMaxIters = 10000

// Compile lowers an analysed program against a database. The database
// must contain the graph joined by the recursive body (registered under
// the join predicate's name) and any attribute relations the program
// references; a "node" relation is synthesised from the graph when
// missing.
func Compile(info *analyzer.Info, db *edb.DB, opts Options) (*Plan, error) {
	p := &Plan{
		Info: info,
		Op:   agg.ByKind(info.Agg),
		DB:   db,
	}
	p.PairKeys = len(info.KeyVars) == 2
	if len(info.KeyVars) > 2 {
		return nil, errf("more than two group-by keys (%v) not supported", info.KeyVars)
	}

	// Evaluate supporting rules bottom-up so their relations are in place
	// before the recursive body is compiled against them. The join graph
	// is resolved first because view rules may quantify over node(X),
	// which is synthesised from the graph's vertex set.
	if err := evalFacts(info, db); err != nil {
		return nil, err
	}
	shape, err := resolveJoin(info, db)
	if err != nil {
		return nil, err
	}
	p.Graph = shape.g
	p.N = shape.g.NumVertices()
	ensureNodeRelation(db, p.N)

	// Record which supporting relations the compiler materialises (vs.
	// relations the database already provided): those are the ones a
	// base-fact mutation must re-derive, because they may read the graph.
	materialised := func(heads []string) []string {
		var out []string
		for _, h := range heads {
			if !db.HasPred(h) {
				out = append(out, h)
			}
		}
		return out
	}
	var otherHeads, derivedHeads []string
	for _, r := range info.OtherRules {
		otherHeads = append(otherHeads, r.Head.Name)
	}
	for _, r := range info.DerivedRules {
		derivedHeads = append(derivedHeads, r.Head.Name)
	}
	shape.otherHeads = materialised(otherHeads)
	shape.derivedHeads = materialised(derivedHeads)

	if err := evalOtherRules(info, db); err != nil {
		return nil, err
	}
	if err := evalDerivedRules(info, db); err != nil {
		return nil, err
	}
	if err := resolveAttrs(info, db, shape); err != nil {
		return nil, err
	}
	p.shape = shape

	if err := compilePropagation(p, shape); err != nil {
		return nil, err
	}
	if err := buildInits(p, shape); err != nil {
		return nil, err
	}

	p.Termination = TermSpec{MaxIters: DefaultMaxIters}
	if opts.MaxIters > 0 {
		p.Termination.MaxIters = opts.MaxIters
	}
	if info.Termination != nil {
		p.Termination.Epsilon = info.Termination.Threshold
	}
	return p, nil
}

// bodyShape is the resolved propagation structure of the recursive body.
type bodyShape struct {
	g    *graph.Graph
	join *ast.Pred // the resolved join predicate occurrence

	// base is the graph as registered in the database; g == base unless
	// the body is an in-neighbor formulation, in which case g is a
	// transposed copy and reversed is true. A session mutation must be
	// applied to both.
	base     *graph.Graph
	reversed bool

	// otherHeads/derivedHeads name the supporting relations the compiler
	// materialised (view rules and aggregate views such as PageRank's
	// degree). They may read the graph, so a base-fact mutation drops and
	// re-derives them.
	otherHeads   []string
	derivedHeads []string

	// passIdx maps pair-key position 0 (hi) pass-through: for pair-keyed
	// plans, the index in RecKeyVars that flows through unchanged.
	// Single-key plans propagate their only key.
	srcVar string // the rec key var that joins the edge's source side
	dstVar string // the head key var bound by the edge's destination side

	weightVar string // edge-weight variable, "" if none

	srcAttrs []attrCol // columns read at the propagation source
	dstAttrs []attrCol // columns read at the destination
}

type attrCol struct {
	varName string
	pred    string // relation the column is loaded from (for re-loading after a mutation)
	col     []float64
}

// resolveJoin identifies the join (edge) predicate of the recursive body
// and orients the propagation graph.
func resolveJoin(info *analyzer.Info, db *edb.DB) (*bodyShape, error) {
	rec := info.Rec
	shape := &bodyShape{}

	// The propagated head key var: the head key not present in rec keys.
	recKeySet := map[string]bool{}
	for _, v := range rec.RecKeyVars {
		recKeySet[v] = true
	}
	var propagated string
	for _, v := range info.KeyVars {
		if !recKeySet[v] {
			if propagated != "" {
				return nil, errf("more than one propagated key (%s and %s)", propagated, v)
			}
			propagated = v
		}
	}
	if propagated == "" {
		return nil, errf("head keys %v all pass through; no propagation structure", info.KeyVars)
	}
	if len(info.KeyVars) == 2 && info.KeyVars[1] != propagated {
		return nil, errf("pair-keyed plans must propagate on the second key; head keys %v propagate %s", info.KeyVars, propagated)
	}
	shape.dstVar = propagated

	// Find the join predicate: mentions the propagated var and a rec key.
	var join *ast.Pred
	for _, p := range rec.Aux {
		hasProp, recVar := false, ""
		for _, t := range p.Args {
			if t.Kind != ast.TermVar {
				continue
			}
			if t.Var == propagated {
				hasProp = true
			}
			if recKeySet[t.Var] {
				recVar = t.Var
			}
		}
		if hasProp && recVar != "" {
			if join != nil {
				return nil, errf("ambiguous join: both %s and %s connect the keys", join.Name, p.Name)
			}
			join = p
			shape.srcVar = recVar
		}
	}
	if join == nil {
		return nil, errf("no predicate joins a recursive key to head key %s", propagated)
	}

	g, ok := db.Graph(join.Name)
	if !ok {
		return nil, errf("join predicate %q is not registered as a graph", join.Name)
	}
	// Orientation: arg positions of src and dst vars.
	srcPos, dstPos := -1, -1
	for i, t := range join.Args {
		if t.Kind != ast.TermVar {
			continue
		}
		switch t.Var {
		case shape.srcVar:
			srcPos = i
		case shape.dstVar:
			dstPos = i
		default:
			if i >= 2 && shape.weightVar == "" {
				shape.weightVar = t.Var
			}
		}
	}
	shape.base = g
	switch {
	case srcPos == 0 && dstPos == 1:
		shape.g = g
	case srcPos == 1 && dstPos == 0:
		shape.g = g.Reverse() // in-neighbor formulation: transpose once
		shape.reversed = true
	default:
		return nil, errf("join predicate %s must bind keys in its first two arguments", join.Name)
	}
	if len(join.Args) >= 3 && shape.weightVar == "" {
		if t := join.Args[2]; t.Kind == ast.TermVar {
			shape.weightVar = t.Var
		}
	}
	shape.join = join
	return shape, nil
}

// resolveAttrs loads attribute columns for the remaining aux predicates:
// binary-style preds keyed by the propagation source or destination.
func resolveAttrs(info *analyzer.Info, db *edb.DB, shape *bodyShape) error {
	n := shape.g.NumVertices()
	for _, p := range info.Rec.Aux {
		if p == shape.join {
			continue
		}
		if len(p.Args) < 2 {
			return errf("attribute predicate %s needs (key, value) arguments", p.Name)
		}
		keyT, valT := p.Args[0], p.Args[1]
		if keyT.Kind != ast.TermVar || valT.Kind != ast.TermVar {
			return errf("attribute predicate %s must bind plain variables", p.Name)
		}
		col, err := db.VertexColumn(p.Name, n, 0)
		if err != nil {
			return err
		}
		ac := attrCol{varName: valT.Var, pred: p.Name, col: col}
		switch keyT.Var {
		case shape.srcVar:
			shape.srcAttrs = append(shape.srcAttrs, ac)
		case shape.dstVar:
			shape.dstAttrs = append(shape.dstAttrs, ac)
		default:
			return errf("attribute predicate %s keyed by %s, which is neither the propagation source %s nor destination %s",
				p.Name, keyT.Var, shape.srcVar, shape.dstVar)
		}
	}
	return nil
}

// colSlot binds a scratch slot to a live attribute column.
type colSlot struct {
	slot int
	col  []float64
}

// propLayout is the scratch-slot layout of the compiled propagation
// expressions: slot 0 is the propagated value, then the edge weight,
// then the source- and destination-keyed attribute columns.
type propLayout struct {
	slots            map[string]int
	weightSlot       int
	srcCols, dstCols []colSlot
	nslots           int
}

// layoutSlots computes the slot layout for the recursive body. The
// returned colSlots reference the live column slices in shape, so a
// propagator built over them reads whatever the columns hold at call
// time.
func layoutSlots(rec *analyzer.RecInfo, shape *bodyShape) propLayout {
	lay := propLayout{slots: map[string]int{rec.ValueVar: 0}, weightSlot: -1}
	next := 1
	if shape.weightVar != "" {
		lay.weightSlot = next
		lay.slots[shape.weightVar] = next
		next++
	}
	for _, a := range shape.srcAttrs {
		lay.slots[a.varName] = next
		lay.srcCols = append(lay.srcCols, colSlot{next, a.col})
		next++
	}
	for _, a := range shape.dstAttrs {
		lay.slots[a.varName] = next
		lay.dstCols = append(lay.dstCols, colSlot{next, a.col})
		next++
	}
	lay.nslots = next
	return lay
}

// buildPropagator compiles one propagation closure: apply f to a value
// arriving at key and emit the per-edge contributions over g's
// out-edges. The delta path (delta.go) builds extra propagators over a
// pre-mutation graph snapshot with the same layout.
func buildPropagator(f func([]float64) float64, g *graph.Graph, lay propLayout, pair bool) func([]float64, int64, float64, func(int64, float64)) {
	weightSlot, srcCols, dstCols := lay.weightSlot, lay.srcCols, lay.dstCols
	return func(vals []float64, key int64, value float64, emit func(int64, float64)) {
		src := key
		var hi int64
		if pair {
			hi, src = DecodePair(key)
		}
		if src < 0 || src >= int64(g.NumVertices()) {
			return
		}
		vals[0] = value
		for _, c := range srcCols {
			vals[c.slot] = c.col[src]
		}
		lo, hiEdge := g.EdgeRange(int32(src))
		for i := lo; i < hiEdge; i++ {
			dst := int64(g.Target(i))
			if weightSlot >= 0 {
				vals[weightSlot] = g.Weight(i)
			}
			for _, c := range dstCols {
				vals[c.slot] = c.col[dst]
			}
			out := dst
			if pair {
				out = EncodePair(hi, dst)
			}
			emit(out, f(vals))
		}
	}
}

// compilePropagation builds the Propagate and PropagateFull closures.
func compilePropagation(p *Plan, shape *bodyShape) error {
	rec := p.Info.Rec
	lay := layoutSlots(rec, shape)

	// Reject free variables that nothing binds.
	for _, v := range rec.F.Vars() {
		if _, ok := lay.slots[v]; !ok {
			return errf("variable %s in the recursive expression is not bound by any predicate", v)
		}
	}

	fDelta, err := rec.FPrime.Compile(lay.slots)
	if err != nil {
		return err
	}
	fFull, err := rec.F.Compile(lay.slots)
	if err != nil {
		return err
	}

	nslots := lay.nslots
	p.NewScratch = func() []float64 { return make([]float64, nslots) }
	p.PropagateInto = buildPropagator(fDelta, p.Graph, lay, p.PairKeys)
	p.PropagateFullInto = buildPropagator(fFull, p.Graph, lay, p.PairKeys)
	// The convenience forms allocate scratch per call; the engine's scan
	// passes hold per-goroutine scratch and use the Into forms.
	p.Propagate = func(key int64, delta float64, emit func(int64, float64)) {
		p.PropagateInto(make([]float64, nslots), key, delta, emit)
	}
	p.PropagateFull = func(key int64, value float64, emit func(int64, float64)) {
		p.PropagateFullInto(make([]float64, nslots), key, value, emit)
	}
	return nil
}

// ensureNodeRelation synthesises node(v) for v in [0,n) when absent, so
// programs can quantify over all vertices.
func ensureNodeRelation(db *edb.DB, n int) {
	if db.HasPred("node") {
		return
	}
	r := edb.NewRelation("node", 1)
	for v := 0; v < n; v++ {
		r.Add(float64(v))
	}
	db.AddRelation(r)
}
