package compiler

import (
	"powerlog/internal/ast"
	"powerlog/internal/edb"
)

// curRelName is the per-iteration materialisation of the current result —
// the "additional rank table" the paper says naive evaluation must build
// and join every iteration (§1). The ǂ prefix keeps it out of user
// namespace.
const curRelName = "ǂcur"

// NaiveEvaluator evaluates the recursive rule body as a relational join
// against a per-iteration materialisation of the current result. This is
// what naive Datalog evaluation actually costs (SociaLite/Myria-style):
// rebuild the result table, re-run the joins, re-aggregate — as opposed
// to the compiled propagation closure MRA evaluation uses. One evaluator
// per worker; not safe for concurrent use.
type NaiveEvaluator struct {
	db       *edb.DB
	atoms    []*ast.Atom
	keyVars  []string
	aggVar   string
	pairKeys bool
	arity    int // columns of the cur relation: rec keys + value
}

// NaiveJoinSupported reports whether the plan can evaluate naively via
// relational joins (everything except plans whose recursive body the
// analyzer could not map onto relations — in practice always true here).
func (p *Plan) NaiveJoinSupported() bool { return !p.PairKeys }

// NewNaiveEvaluator builds a per-worker naive evaluator. Each worker owns
// a clone of the database so its per-iteration result table does not race
// other workers'.
func (p *Plan) NewNaiveEvaluator() (*NaiveEvaluator, error) {
	info := p.Info
	rec := info.Rec

	// Rebuild the recursive body with the R occurrence rewritten to scan
	// the materialised current-result relation: drop the iteration index,
	// keep (recKeys..., valueVar).
	var curArgs []*ast.Term
	for i, t := range rec.RecAtom.Args {
		if i == 0 && info.IterIndexed {
			continue
		}
		curArgs = append(curArgs, t)
	}
	atoms := []*ast.Atom{{
		Kind: ast.AtomPred,
		Pred: &ast.Pred{Name: curRelName, Args: curArgs},
	}}
	for _, a := range rec.Body.Atoms {
		if a.Kind == ast.AtomPred && a.Pred == rec.RecAtom {
			continue
		}
		atoms = append(atoms, a)
	}

	ev := &NaiveEvaluator{
		db:       p.DB.Clone(),
		atoms:    atoms,
		keyVars:  info.KeyVars,
		aggVar:   info.AggVar,
		pairKeys: p.PairKeys,
		arity:    len(curArgs),
	}
	return ev, nil
}

// Eval materialises the caller's current rows into the result table and
// evaluates the body join, emitting every derived (key, value) tuple.
func (ev *NaiveEvaluator) Eval(rows func(yield func(key int64, val float64)), emit func(key int64, val float64)) error {
	cur := edb.NewRelation(curRelName, ev.arity)
	rows(func(key int64, val float64) {
		if ev.pairKeys {
			hi, lo := DecodePair(key)
			cur.Add(float64(hi), float64(lo), val)
			return
		}
		cur.Add(float64(key), val)
	})
	ev.db.AddRelation(cur)

	return ev.db.EvalBody(ev.atoms, func(env edb.Env) error {
		val, ok := env[ev.aggVar]
		if !ok {
			// The aggregate variable is defined by an assignment that the
			// join binds; a missing binding means the body cannot derive.
			return nil
		}
		k0, ok := env[ev.keyVars[0]]
		if !ok {
			return nil
		}
		key := int64(k0)
		if ev.pairKeys {
			k1, ok := env[ev.keyVars[1]]
			if !ok {
				return nil
			}
			key = EncodePair(int64(k0), int64(k1))
		}
		emit(key, val)
		return nil
	})
}
