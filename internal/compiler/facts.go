package compiler

import (
	"powerlog/internal/analyzer"
	"powerlog/internal/ast"
	"powerlog/internal/graph"
)

// GraphFromFacts builds a CSR graph from the program's inline ground
// facts for the given edge predicate — how self-contained example
// programs (facts in the source) provide their propagation structure.
// n may force a larger vertex count than the facts mention.
func GraphFromFacts(info *analyzer.Info, pred string, n int) (*graph.Graph, error) {
	var edges []graph.Edge
	weighted := false
	maxID := int64(-1)
	for _, f := range info.Facts {
		if f.Head.Name != pred {
			continue
		}
		args := f.Head.Args
		if len(args) < 2 {
			return nil, errf("fact %s needs at least (src, dst)", f.Head)
		}
		vals := make([]float64, len(args))
		for i, t := range args {
			if t.Kind != ast.TermNum {
				return nil, errf("fact %s must have numeric arguments", f.Head)
			}
			vals[i] = t.Num
		}
		e := graph.Edge{Src: int32(vals[0]), Dst: int32(vals[1]), W: 1}
		if len(vals) >= 3 {
			e.W = vals[2]
			weighted = true
		}
		edges = append(edges, e)
		if int64(e.Src) > maxID {
			maxID = int64(e.Src)
		}
		if int64(e.Dst) > maxID {
			maxID = int64(e.Dst)
		}
	}
	if len(edges) == 0 {
		return nil, errf("no %s facts in program", pred)
	}
	if int(maxID)+1 > n {
		n = int(maxID) + 1
	}
	return graph.FromEdges(n, edges, weighted)
}
