package compiler

import (
	"powerlog/internal/graph"
)

// Mutation is a batch of base-fact changes against the plan's join
// graph: edge inserts and deletes. A delete removes every parallel edge
// with the named (src,dst) endpoints; deleting an absent edge is a
// no-op. The vertex universe [0,N) is fixed at compile time.
type Mutation struct {
	Inserts []graph.Edge
	Deletes []graph.Edge
}

// Empty reports whether the mutation changes nothing.
func (m Mutation) Empty() bool { return len(m.Inserts) == 0 && len(m.Deletes) == 0 }

// AccRanger iterates every row of the session's distributed MonoTable
// with a non-identity Accumulation. ApplyMutation calls it while the
// engine is quiesced, possibly more than once.
type AccRanger func(f func(key int64, acc float64))

// Refixpoint tells the runtime how to converge to the mutated EDB's
// fixpoint from the parked state.
type Refixpoint struct {
	// Reseed is the new ΔX¹: deltas to fold into the owners' tables
	// (after invalidation). For combining aggregates these are signed
	// correction terms; for selective aggregates they are candidate
	// values folded monotonically.
	Reseed []KV
	// InvalidateLo, when non-nil, flags the vertices of the
	// over-approximate deletion cone R: every table key whose
	// lo-component (the propagated key) is flagged must be Invalidated
	// before reseeding, so it re-derives from surviving inputs only.
	InvalidateLo []bool
}

// ApplyMutation applies mut to the plan's EDB — the base graph, its
// transposed propagation twin, the compiler-materialised supporting
// relations and attribute columns, and ΔX¹ — and computes the reseed /
// invalidation work that re-converges the parked table state to the new
// fixpoint (DESIGN.md §10).
//
// Soundness sketch:
//
//   - Combining (linear F'): the fixpoint solves x = A·x + b. ApplyMutation
//     emits Δb = b_new − b_old (the ΔX¹ diff, which also covers per-edge
//     CRec constants and changed constant bodies, because buildInits is
//     re-run against the mutated EDB) and (A_new − A_old)·x_old: for every
//     touched source — a source of a changed edge, a vertex whose
//     source-attribute column changed, or an old in-neighbor of a vertex
//     whose destination-attribute column changed — its old contributions
//     (old graph, old columns) are negated and its new contributions (new
//     graph, new columns) added. Folding these into the parked state x_old
//     gives A_new·x_old + b_new + (x_old − A_old·x_old − b_old); the
//     parenthesised residual is 0 at an exact fixpoint and ≤ ε otherwise,
//     so the engine converges to the new fixpoint by linearity.
//
//   - Selective (min/max): inserts and improvements only ever fold better
//     values, which is sound by Theorem 3's replay tolerance (duplicated
//     or reordered deltas are absorbed by the idempotent monotone fold).
//     Deletions invalidate: R = the forward closure, over the OLD oriented
//     graph, of {destinations of deleted edges} ∪ {vertices whose
//     attribute inputs changed} ∪ {keys whose initial value was removed or
//     worsened}. Every table key with lo ∈ R is erased (the propagated key
//     only changes along graph edges, so R over-approximates every key
//     whose derivation could have consumed a deleted input), then
//     re-derived from the new ΔX¹ entries inside R plus a boundary scan:
//     each surviving key re-propagates its accumulation into R over the
//     new graph. Over-folding surviving values is again idempotent.
//
// The engine must be fully quiesced (all workers parked) for the whole
// call: the graph CSR is rebuilt in place behind pointers the compiled
// closures captured.
func (p *Plan) ApplyMutation(mut Mutation, rangeAcc AccRanger) (*Refixpoint, error) {
	shape := p.shape
	if shape == nil {
		return nil, errf("plan has no retained body shape; was it produced by Compile?")
	}
	n := int32(p.N)
	for _, set := range []struct {
		what  string
		edges []graph.Edge
	}{{"insert", mut.Inserts}, {"delete", mut.Deletes}} {
		for _, e := range set.edges {
			if e.Src < 0 || e.Src >= n || e.Dst < 0 || e.Dst >= n {
				return nil, errf("%s edge (%d,%d) outside the vertex universe [0,%d) fixed at Open",
					set.what, e.Src, e.Dst, n)
			}
		}
	}

	// Orient the mutation the way the propagation graph is oriented.
	orient := func(edges []graph.Edge) []graph.Edge {
		if !shape.reversed {
			return edges
		}
		out := make([]graph.Edge, len(edges))
		for i, e := range edges {
			out[i] = graph.Edge{Src: e.Dst, Dst: e.Src, W: e.W}
		}
		return out
	}
	oIns, oDel := orient(mut.Inserts), orient(mut.Deletes)

	// Pre-mutation snapshots: a shallow copy of the oriented graph keeps
	// the old CSR slices alive across the in-place rebuild, and the old
	// ΔX¹ is diffed after buildInits re-runs. The attribute columns stay
	// old until install() copies the fresh values into the live backing
	// arrays the compiled closures captured.
	oldG := *p.Graph
	og := &oldG
	oldInit := p.InitMRA
	selective := p.Op.Selective()
	lay := layoutSlots(p.Info.Rec, shape)
	var oldProp func([]float64, int64, float64, func(int64, float64))
	if !selective {
		fd, err := p.Info.Rec.FPrime.Compile(lay.slots)
		if err != nil {
			return nil, err
		}
		oldProp = buildPropagator(fd, og, lay, p.PairKeys)
	}

	// 1. Mutate the base graph (and the transposed twin when the body is
	// an in-neighbor formulation) in place, dropping the cached join view.
	if err := p.DB.MutateGraph(shape.join.Name, mut.Inserts, mut.Deletes); err != nil {
		return nil, err
	}
	if shape.reversed {
		if err := p.Graph.ApplyEdgeMutations(oIns, oDel); err != nil {
			return nil, err
		}
	}

	// 2. Re-derive the compiler-materialised supporting relations (they
	// may aggregate over the graph, e.g. PageRank's degree view).
	for _, h := range shape.otherHeads {
		p.DB.DropRelation(h)
	}
	for _, h := range shape.derivedHeads {
		p.DB.DropRelation(h)
	}
	if err := evalOtherRules(p.Info, p.DB); err != nil {
		return nil, err
	}
	if err := evalDerivedRules(p.Info, p.DB); err != nil {
		return nil, err
	}

	// 3. Reload attribute columns into fresh buffers; diff against the
	// still-installed old contents to find which vertices' inputs moved.
	srcChanged, dstChanged := map[int64]bool{}, map[int64]bool{}
	load := func(cols []attrCol, changed map[int64]bool) ([][]float64, error) {
		fresh := make([][]float64, len(cols))
		for i, a := range cols {
			nb, err := p.DB.VertexColumn(a.pred, p.N, 0)
			if err != nil {
				return nil, err
			}
			for v := range nb {
				if nb[v] != a.col[v] {
					changed[int64(v)] = true
				}
			}
			fresh[i] = nb
		}
		return fresh, nil
	}
	srcFresh, err := load(shape.srcAttrs, srcChanged)
	if err != nil {
		return nil, err
	}
	dstFresh, err := load(shape.dstAttrs, dstChanged)
	if err != nil {
		return nil, err
	}
	install := func() {
		for i, a := range shape.srcAttrs {
			copy(a.col, srcFresh[i])
		}
		for i, a := range shape.dstAttrs {
			copy(a.col, dstFresh[i])
		}
	}

	reseed := map[int64]float64{}
	loOf := func(key int64) int64 {
		if p.PairKeys {
			_, lo := DecodePair(key)
			return lo
		}
		return key
	}

	if !selective {
		// Touched sources: out-set changed, source attribute changed, or
		// (old) out-neighbor's destination attribute changed.
		touched := map[int64]bool{}
		for _, e := range oIns {
			touched[int64(e.Src)] = true
		}
		for _, e := range oDel {
			touched[int64(e.Src)] = true
		}
		for v := range srcChanged {
			touched[v] = true
		}
		if len(dstChanged) > 0 {
			for v := int32(0); v < int32(og.NumVertices()); v++ {
				tg, _ := og.Neighbors(v)
				for _, t := range tg {
					if dstChanged[int64(t)] {
						touched[int64(v)] = true
						break
					}
				}
			}
		}
		scratch := make([]float64, lay.nslots)
		if len(touched) > 0 {
			// −A_old·x_old restricted to touched rows: old graph, old cols.
			rangeAcc(func(key int64, acc float64) {
				if !touched[loOf(key)] {
					return
				}
				oldProp(scratch, key, acc, func(dst int64, v float64) {
					if v != 0 {
						reseed[dst] -= v
					}
				})
			})
		}
		install()
		if len(touched) > 0 {
			// +A_new·x_old: mutated graph, refreshed cols.
			rangeAcc(func(key int64, acc float64) {
				if !touched[loOf(key)] {
					return
				}
				p.PropagateInto(scratch, key, acc, func(dst int64, v float64) {
					if v != 0 {
						reseed[dst] += v
					}
				})
			})
		}
		if err := buildInits(p, shape); err != nil {
			return nil, err
		}
		// Δb: signed ΔX¹ diff (identity is 0 for combining aggregates).
		old := make(map[int64]float64, len(oldInit))
		for _, kv := range oldInit {
			old[kv.K] = kv.V
		}
		for _, kv := range p.InitMRA {
			if d := kv.V - old[kv.K]; d != 0 {
				reseed[kv.K] += d
			}
			delete(old, kv.K)
		}
		for k, v := range old {
			if v != 0 {
				reseed[k] -= v
			}
		}
		for k, v := range reseed {
			if v == 0 { // exact cancellation: nothing to fold
				delete(reseed, k)
			}
		}
		return &Refixpoint{Reseed: kvList(reseed)}, nil
	}

	// Selective path.
	install()
	if err := buildInits(p, shape); err != nil {
		return nil, err
	}

	// Invalidation roots (vertices, in the oriented propagation space).
	roots := map[int64]bool{}
	for _, e := range oDel {
		roots[int64(e.Dst)] = true
	}
	for v := range dstChanged {
		roots[v] = true
	}
	for v := range srcChanged {
		// Old contributions out of v may have weakened: re-derive its old
		// targets (its new targets are covered by the reseed scan below).
		tg, _ := og.Neighbors(int32(v))
		for _, t := range tg {
			roots[int64(t)] = true
		}
	}
	oldInitVal := make(map[int64]float64, len(oldInit))
	for _, kv := range oldInit {
		oldInitVal[kv.K] = kv.V
	}
	newInitVal := make(map[int64]bool, len(p.InitMRA))
	for _, kv := range p.InitMRA {
		newInitVal[kv.K] = true
		if ov, ok := oldInitVal[kv.K]; ok && ov != kv.V && p.Op.Fold(ov, kv.V) == ov {
			roots[loOf(kv.K)] = true // initial value worsened
		}
	}
	for _, kv := range oldInit {
		if !newInitVal[kv.K] {
			roots[loOf(kv.K)] = true // initial value removed
		}
	}

	// R: forward closure of the roots over the OLD graph — everything a
	// deleted or weakened input could have reached.
	var inR []bool
	if len(roots) > 0 {
		inR = make([]bool, p.N)
		queue := make([]int32, 0, len(roots))
		for v := range roots {
			if !inR[v] {
				inR[v] = true
				queue = append(queue, int32(v))
			}
		}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			tg, _ := og.Neighbors(v)
			for _, t := range tg {
				if !inR[t] {
					inR[t] = true
					queue = append(queue, t)
				}
			}
		}
	}

	// Sources whose new out-edges carry fresh candidate values into keys
	// that are NOT invalidated: inserted-edge sources and attribute-changed
	// sources. Keys inside R are excluded — their accumulations are about
	// to be erased and must not be replayed.
	reseedSrc := map[int64]bool{}
	for _, e := range oIns {
		reseedSrc[int64(e.Src)] = true
	}
	for v := range srcChanged {
		reseedSrc[v] = true
	}
	if inR != nil {
		for v := range reseedSrc {
			if inR[v] {
				delete(reseedSrc, v)
			}
		}
	}

	foldReseed := func(k int64, v float64) {
		if cur, ok := reseed[k]; ok {
			reseed[k] = p.Op.Fold(cur, v)
		} else {
			reseed[k] = v
		}
	}
	// ΔX¹ entries: everything inside R re-derives from its inits; outside
	// R only strict improvements are (idempotently) replayed.
	for _, kv := range p.InitMRA {
		if inR != nil && inR[loOf(kv.K)] {
			foldReseed(kv.K, kv.V)
			continue
		}
		ov, ok := oldInitVal[kv.K]
		if !ok || p.Op.Fold(ov, kv.V) != ov {
			foldReseed(kv.K, kv.V)
		}
	}

	// Boundary scan: every surviving key re-propagates its accumulation
	// over the NEW graph into R (and reseed sources propagate everywhere).
	if len(reseedSrc) > 0 || inR != nil {
		scratch := make([]float64, lay.nslots)
		rangeAcc(func(key int64, acc float64) {
			lo := loOf(key)
			if inR != nil && inR[lo] {
				return // invalidated: its accumulation is stale
			}
			emitAll := reseedSrc[lo]
			if !emitAll && inR == nil {
				return
			}
			p.PropagateInto(scratch, key, acc, func(dst int64, v float64) {
				if emitAll || inR[loOf(dst)] {
					foldReseed(dst, v)
				}
			})
		})
	}
	return &Refixpoint{Reseed: kvList(reseed), InvalidateLo: inR}, nil
}
