package compiler

import (
	"math"
	"testing"

	"powerlog/internal/edb"
	"powerlog/internal/progs"
)

// TestNaiveEvaluatorSSSP: the relational naive path derives exactly the
// full-F closure's tuples.
func TestNaiveEvaluatorSSSP(t *testing.T) {
	db := edb.NewDB()
	db.SetGraph("edge", testGraph(t))
	p := compile(t, progs.SSSP, db)
	if !p.NaiveJoinSupported() {
		t.Fatal("vertex-keyed plans support the naive join")
	}
	ev, err := p.NewNaiveEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	state := map[int64]float64{0: 0, 1: 5}
	rows := func(yield func(int64, float64)) {
		for k, v := range state {
			yield(k, v)
		}
	}
	got := map[int64]float64{}
	err = ev.Eval(rows, func(k int64, v float64) {
		if cur, ok := got[k]; !ok || v < cur {
			got[k] = v
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// From 0 (dist 0): 1←5, 2←3. From 1 (dist 5): 2←6. Min at 2 is 3.
	want := map[int64]float64{1: 5, 2: 3, 3: math.Inf(1)}
	if got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("got %v", got)
	}
	if _, ok := got[3]; ok {
		t.Fatal("vertex 3 is not derivable from {0,1}")
	}
}

// TestNaiveEvaluatorAdsorption exercises attribute joins (pi, pc) in the
// relational path.
func TestNaiveEvaluatorAdsorption(t *testing.T) {
	db := edb.NewDB()
	g := testGraph(t)
	db.SetGraph("A", g)
	pi := edb.NewRelation("pi", 2)
	pc := edb.NewRelation("pc", 2)
	for v := 0; v < 4; v++ {
		pi.Add(float64(v), 0.25)
		pc.Add(float64(v), 0.5)
	}
	db.AddRelation(pi)
	db.AddRelation(pc)
	p := compile(t, progs.Adsorption, db)

	ev, err := p.NewNaiveEvaluator()
	if err != nil {
		t.Fatal(err)
	}
	rows := func(yield func(int64, float64)) { yield(0, 2) } // L(0)=2
	got := map[int64]float64{}
	if err := ev.Eval(rows, func(k int64, v float64) { got[k] += v }); err != nil {
		t.Fatal(err)
	}
	// Edges 0→1 (w5) and 0→2 (w3): contribution 0.7·2·w·pc[0]=0.7·2·w·0.5.
	if math.Abs(got[1]-0.7*2*5*0.5) > 1e-12 || math.Abs(got[2]-0.7*2*3*0.5) > 1e-12 {
		t.Fatalf("got %v", got)
	}
}

// TestNaiveEvaluatorIsolatedPerInstance: two evaluators over the same
// plan must not share mutable result tables.
func TestNaiveEvaluatorIsolatedPerInstance(t *testing.T) {
	db := edb.NewDB()
	db.SetGraph("edge", testGraph(t))
	p := compile(t, progs.SSSP, db)
	ev1, _ := p.NewNaiveEvaluator()
	ev2, _ := p.NewNaiveEvaluator()

	n1 := 0
	_ = ev1.Eval(func(y func(int64, float64)) { y(0, 0) }, func(int64, float64) { n1++ })
	n2 := 0
	_ = ev2.Eval(func(y func(int64, float64)) {}, func(int64, float64) { n2++ })
	if n1 == 0 {
		t.Fatal("ev1 derived nothing")
	}
	if n2 != 0 {
		t.Fatalf("ev2 leaked ev1's rows: %d derivations", n2)
	}
}

// TestNaiveJoinPairKeysUnsupported documents the APSP fallback.
func TestNaiveJoinPairKeysUnsupported(t *testing.T) {
	db := edb.NewDB()
	db.SetGraph("edge", testGraph(t))
	p := compile(t, progs.APSP, db)
	if p.NaiveJoinSupported() {
		t.Fatal("pair-keyed plans use the closure fallback")
	}
}
