package smt

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"powerlog/internal/expr"
)

func ratEq(a, b *big.Rat) bool { return a.Cmp(b) == 0 }

func TestPolyBasics(t *testing.T) {
	x, y := PolyVar("x"), PolyVar("y")
	two := PolyConst(big.NewRat(2, 1))

	sum := x.Add(y).Add(two)
	if sum.IsZero() || sum.Degree() != 1 {
		t.Errorf("x+y+2: zero=%v deg=%d", sum.IsZero(), sum.Degree())
	}
	if got := sum.Eval(map[string]float64{"x": 3, "y": 4}); got != 9 {
		t.Errorf("eval = %v", got)
	}

	diff := sum.Sub(sum)
	if !diff.IsZero() {
		t.Errorf("p-p should be zero, got %v", diff)
	}

	prod := x.Add(y).Mul(x.Add(y)) // (x+y)^2 = x^2 + 2xy + y^2
	if prod.Degree() != 2 {
		t.Errorf("degree = %d", prod.Degree())
	}
	if got := prod.Eval(map[string]float64{"x": 2, "y": 3}); got != 25 {
		t.Errorf("(2+3)^2 = %v", got)
	}
	want := x.Mul(x).Add(x.Mul(y).Mul(PolyConst(big.NewRat(2, 1)))).Add(y.Mul(y))
	if !prod.Sub(want).IsZero() {
		t.Errorf("expansion mismatch: %v vs %v", prod, want)
	}
}

func TestPolyConstAndVars(t *testing.T) {
	if c, ok := PolyConst(big.NewRat(3, 2)).IsConst(); !ok || !ratEq(c, big.NewRat(3, 2)) {
		t.Error("const detection failed")
	}
	if _, ok := PolyVar("x").IsConst(); ok {
		t.Error("x is not a constant")
	}
	if c, ok := NewPoly().IsConst(); !ok || c.Sign() != 0 {
		t.Error("zero poly is the constant 0")
	}
	p := PolyVar("b").Mul(PolyVar("a")).Add(PolyVar("c"))
	vars := p.Vars()
	if len(vars) != 3 || vars[0] != "a" || vars[1] != "b" || vars[2] != "c" {
		t.Errorf("vars = %v", vars)
	}
}

func TestMonoEncoding(t *testing.T) {
	m := monomial{"x": 2, "y": 1}
	enc := encodeMono(m)
	if enc != "x^2 y^1" {
		t.Errorf("enc = %q", enc)
	}
	dec := decodeMono(enc)
	if dec["x"] != 2 || dec["y"] != 1 {
		t.Errorf("dec = %v", dec)
	}
	if got := mulMono(enc, "y^2 z^1"); got != "x^2 y^3 z^1" {
		t.Errorf("mul = %q", got)
	}
	if mulMono("", "x^1") != "x^1" || mulMono("x^1", "") != "x^1" {
		t.Error("identity monomial mul broken")
	}
}

func TestFromExprPolynomial(t *testing.T) {
	// (0.85*x/d) normalises with numerator 0.85x (times d-denominators).
	e := expr.Div(expr.Mul(expr.Num(0.85), expr.Var("x")), expr.Var("d"))
	rf, err := FromExpr(e)
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]float64{"x": 4, "d": 2}
	got := rf.Num.Eval(env) / rf.Den.Eval(env)
	if got != 1.7 {
		t.Errorf("eval = %v", got)
	}
}

func TestFromExprDistributes(t *testing.T) {
	// f(x+y) == f(x)+f(y) for linear f = c*x: exact proof via normalisation.
	f := func(arg *expr.Expr) *expr.Expr { return expr.Mul(expr.Num(0.85), arg) }
	lhs := f(expr.Add(expr.Var("x"), expr.Var("y")))
	rhs := expr.Add(f(expr.Var("x")), f(expr.Var("y")))
	rf, err := FromExpr(expr.Sub(lhs, rhs))
	if err != nil {
		t.Fatal(err)
	}
	if !rf.EqualZero() {
		t.Errorf("difference = %v / %v", rf.Num, rf.Den)
	}
}

func TestFromExprRejectsCalls(t *testing.T) {
	_, err := FromExpr(expr.Call("relu", expr.Var("x")))
	if err == nil {
		t.Fatal("relu should not normalise")
	}
	var npe *ErrNonPolynomial
	if !errors.As(err, &npe) {
		t.Errorf("want ErrNonPolynomial, got %T", err)
	}
}

func TestFromExprDivByZeroPoly(t *testing.T) {
	zero := expr.Sub(expr.Var("x"), expr.Var("x"))
	if _, err := FromExpr(expr.Div(expr.Num(1), zero)); err == nil {
		t.Fatal("division by zero polynomial should fail")
	}
}

func TestRatFuncCrossEquality(t *testing.T) {
	// x/d - (2x)/(2d) == 0.
	a := expr.Div(expr.Var("x"), expr.Var("d"))
	b := expr.Div(expr.Mul(expr.Num(2), expr.Var("x")), expr.Mul(expr.Num(2), expr.Var("d")))
	rf, err := FromExpr(expr.Sub(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if !rf.EqualZero() {
		t.Errorf("x/d != 2x/2d per normaliser: %v", rf.Num)
	}
}

// TestQuickPolyRingLaws checks ring laws on randomly built polynomials.
func TestQuickPolyRingLaws(t *testing.T) {
	gen := func(seed int64) Poly {
		rng := rand.New(rand.NewSource(seed))
		p := NewPoly()
		vars := []string{"x", "y", "z"}
		for i := 0; i < 1+rng.Intn(4); i++ {
			m := monomial{}
			for j := 0; j < rng.Intn(3); j++ {
				m[vars[rng.Intn(3)]]++
			}
			p.addInto(encodeMono(m), big.NewRat(int64(rng.Intn(11)-5), int64(1+rng.Intn(4))))
		}
		return p
	}
	f := func(s1, s2, s3 int64) bool {
		a, b, c := gen(s1), gen(s2), gen(s3)
		// commutativity
		if !a.Add(b).Sub(b.Add(a)).IsZero() || !a.Mul(b).Sub(b.Mul(a)).IsZero() {
			return false
		}
		// associativity of mul
		if !a.Mul(b).Mul(c).Sub(a.Mul(b.Mul(c))).IsZero() {
			return false
		}
		// distributivity
		return a.Mul(b.Add(c)).Sub(a.Mul(b).Add(a.Mul(c))).IsZero()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickFromExprAgreesWithEval: normalisation preserves value.
func TestQuickFromExprAgreesWithEval(t *testing.T) {
	f := func(x, y int8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randPolyExpr(rng, 3)
		env := map[string]float64{"x": float64(x % 10), "y": float64(y % 10)}
		rf, err := FromExpr(e)
		if err != nil {
			return false
		}
		den := rf.Den.Eval(env)
		if den == 0 {
			return true // formal quotient undefined here; skip
		}
		want := e.Eval(env)
		got := rf.Num.Eval(env) / den
		if want == got {
			return true
		}
		diff := want - got
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if want > 1 || want < -1 {
			scale = want
			if scale < 0 {
				scale = -scale
			}
		}
		return diff < 1e-9*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randPolyExpr(rng *rand.Rand, depth int) *expr.Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return expr.Num(float64(rng.Intn(7) - 3))
		case 1:
			return expr.Var("x")
		default:
			return expr.Var("y")
		}
	}
	a, b := randPolyExpr(rng, depth-1), randPolyExpr(rng, depth-1)
	switch rng.Intn(4) {
	case 0:
		return expr.Add(a, b)
	case 1:
		return expr.Sub(a, b)
	case 2:
		return expr.Mul(a, b)
	default:
		return expr.Neg(a)
	}
}
