package smt

import (
	"math/big"
	"sort"
)

// linIneq is a linear inequality  Σ coef[v]·v + konst  (≥ | >)  0.
// Non-strict when strict is false.
type linIneq struct {
	coef   map[string]*big.Rat
	konst  *big.Rat
	strict bool
}

func (q *linIneq) clone() *linIneq {
	c := make(map[string]*big.Rat, len(q.coef))
	for v, r := range q.coef {
		c[v] = new(big.Rat).Set(r)
	}
	return &linIneq{coef: c, konst: new(big.Rat).Set(q.konst), strict: q.strict}
}

// linFromPoly converts a degree-≤1 polynomial to linear form.
// ok is false for higher-degree polynomials.
func linFromPoly(p Poly) (coef map[string]*big.Rat, konst *big.Rat, ok bool) {
	coef = map[string]*big.Rat{}
	konst = new(big.Rat)
	for k, c := range p {
		if k == "" {
			konst.Set(c)
			continue
		}
		m := decodeMono(k)
		if len(m) != 1 {
			return nil, nil, false
		}
		for v, pow := range m {
			if pow != 1 {
				return nil, nil, false
			}
			coef[v] = new(big.Rat).Set(c)
		}
	}
	return coef, konst, true
}

// fmFeasible decides satisfiability of a conjunction of linear inequalities
// over the reals by Fourier–Motzkin elimination. It is sound and complete
// for linear real arithmetic. The input inequalities are not modified.
func fmFeasible(ineqs []*linIneq) bool {
	// Work on copies.
	sys := make([]*linIneq, len(ineqs))
	for i, q := range ineqs {
		sys[i] = q.clone()
	}
	for {
		// Gather remaining variables.
		varSet := map[string]bool{}
		for _, q := range sys {
			for v, c := range q.coef {
				if c.Sign() != 0 {
					varSet[v] = true
				}
			}
		}
		if len(varSet) == 0 {
			// Ground system: every inequality is konst (≥|>) 0.
			for _, q := range sys {
				s := q.konst.Sign()
				if s < 0 || (s == 0 && q.strict) {
					return false
				}
			}
			return true
		}
		vars := make([]string, 0, len(varSet))
		for v := range varSet {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		v := vars[0]

		var lowers, uppers, others []*linIneq
		for _, q := range sys {
			c := q.coef[v]
			switch {
			case c == nil || c.Sign() == 0:
				others = append(others, q)
			case c.Sign() > 0:
				lowers = append(lowers, q) // a·v + rest ≥ 0 with a>0: v ≥ -rest/a
			default:
				uppers = append(uppers, q)
			}
		}
		// Eliminate v: combine every (lower, upper) pair.
		next := others
		for _, lo := range lowers {
			for _, up := range uppers {
				next = append(next, combine(lo, up, v))
			}
		}
		// If v had only lower or only upper bounds, those constraints are
		// always satisfiable for some v and vanish.
		if len(next) == len(others) && (len(lowers) > 0 || len(uppers) > 0) && len(lowers)*len(uppers) == 0 {
			// nothing to add
		}
		sys = next
	}
}

// combine eliminates variable v from lower bound lo (coef>0) and upper
// bound up (coef<0): a·v + L ≥ 0 and -b·v + U ≥ 0 (a,b>0) imply
// b·L + a·U ≥ 0; the result is strict if either input is strict.
func combine(lo, up *linIneq, v string) *linIneq {
	a := new(big.Rat).Set(lo.coef[v]) // > 0
	b := new(big.Rat).Neg(up.coef[v]) // > 0
	out := &linIneq{coef: map[string]*big.Rat{}, konst: new(big.Rat), strict: lo.strict || up.strict}
	acc := func(src map[string]*big.Rat, factor *big.Rat) {
		tmp := new(big.Rat)
		for name, c := range src {
			if name == v {
				continue
			}
			tmp.Mul(c, factor)
			if cur, ok := out.coef[name]; ok {
				cur.Add(cur, tmp)
			} else {
				out.coef[name] = new(big.Rat).Set(tmp)
			}
			tmp = new(big.Rat)
		}
	}
	acc(lo.coef, b)
	acc(up.coef, a)
	t := new(big.Rat)
	t.Mul(lo.konst, b)
	out.konst.Add(out.konst, t)
	t = new(big.Rat)
	t.Mul(up.konst, a)
	out.konst.Add(out.konst, t)
	for name, c := range out.coef {
		if c.Sign() == 0 {
			delete(out.coef, name)
		}
	}
	return out
}
