package smt

import (
	"math/big"
	"testing"

	"powerlog/internal/expr"
)

// --- Fourier–Motzkin ------------------------------------------------------

func ineq(konst int64, strict bool, terms map[string]int64) *linIneq {
	coef := map[string]*big.Rat{}
	for v, c := range terms {
		coef[v] = big.NewRat(c, 1)
	}
	return &linIneq{coef: coef, konst: big.NewRat(konst, 1), strict: strict}
}

func TestFMFeasible(t *testing.T) {
	// x >= 1, x <= 3: feasible.
	sys := []*linIneq{
		ineq(-1, false, map[string]int64{"x": 1}), // x - 1 >= 0
		ineq(3, false, map[string]int64{"x": -1}), // 3 - x >= 0
	}
	if !fmFeasible(sys) {
		t.Error("x in [1,3] should be feasible")
	}

	// x >= 3, x <= 1: infeasible.
	sys = []*linIneq{
		ineq(-3, false, map[string]int64{"x": 1}),
		ineq(1, false, map[string]int64{"x": -1}),
	}
	if fmFeasible(sys) {
		t.Error("x>=3 && x<=1 should be infeasible")
	}

	// x > 1, x < 1: infeasible (strictness matters).
	sys = []*linIneq{
		ineq(-1, true, map[string]int64{"x": 1}),
		ineq(1, true, map[string]int64{"x": -1}),
	}
	if fmFeasible(sys) {
		t.Error("x>1 && x<1 should be infeasible")
	}

	// x >= 1, x <= 1: feasible exactly at x=1.
	sys = []*linIneq{
		ineq(-1, false, map[string]int64{"x": 1}),
		ineq(1, false, map[string]int64{"x": -1}),
	}
	if !fmFeasible(sys) {
		t.Error("x=1 point should be feasible")
	}

	// Two variables: x <= y, y <= z, z <= x - 1: infeasible cycle.
	sys = []*linIneq{
		ineq(0, false, map[string]int64{"x": -1, "y": 1}),
		ineq(0, false, map[string]int64{"y": -1, "z": 1}),
		ineq(-1, false, map[string]int64{"z": -1, "x": 1}), // x - z >= 1 means z <= x-1... wait
	}
	// x<=y, y<=z gives x<=z; adding x - z >= 1 (x >= z+1) contradicts.
	if fmFeasible(sys) {
		t.Error("cyclic chain should be infeasible")
	}

	// Unbounded single-sided constraints are trivially feasible.
	sys = []*linIneq{ineq(-5, false, map[string]int64{"x": 1, "y": 1})}
	if !fmFeasible(sys) {
		t.Error("half-space is feasible")
	}

	// Ground contradictions.
	if fmFeasible([]*linIneq{ineq(-1, false, nil)}) {
		t.Error("-1 >= 0 should be infeasible")
	}
	if fmFeasible([]*linIneq{ineq(0, true, nil)}) {
		t.Error("0 > 0 should be infeasible")
	}
	if !fmFeasible([]*linIneq{ineq(0, false, nil)}) {
		t.Error("0 >= 0 should be feasible")
	}
	if !fmFeasible(nil) {
		t.Error("empty system is feasible")
	}
}

// --- Sign analysis --------------------------------------------------------

func TestSignOf(t *testing.T) {
	consD := []Constraint{{Var: "d", Rel: Gt, Bound: 0}}
	consW := []Constraint{{Var: "w", Rel: Ge, Bound: 0}, {Var: "p", Rel: Ge, Bound: 0}}
	cases := []struct {
		e    *expr.Expr
		cons []Constraint
		want func(Sign) bool
	}{
		{expr.Num(0.85), nil, func(s Sign) bool { return s == SignPos }},
		{expr.Num(0), nil, func(s Sign) bool { return s == SignZero }},
		{expr.Num(-2), nil, func(s Sign) bool { return s == SignNeg }},
		{expr.Var("d"), consD, func(s Sign) bool { return s == SignPos }},
		{expr.Div(expr.Num(0.85), expr.Var("d")), consD, func(s Sign) bool { return s.NonNegative() }},
		{expr.Mul(expr.Var("w"), expr.Var("p")), consW, func(s Sign) bool { return s.NonNegative() }},
		{expr.Mul(expr.Num(0.7), expr.Mul(expr.Var("w"), expr.Var("p"))), consW, func(s Sign) bool { return s.NonNegative() }},
		{expr.Var("free"), nil, func(s Sign) bool { return s == SignUnknown }},
		{expr.Neg(expr.Var("d")), consD, func(s Sign) bool { return s == SignNeg }},
		{expr.Call("relu", expr.Var("free")), nil, func(s Sign) bool { return s.NonNegative() }},
		{expr.Call("abs", expr.Var("free")), nil, func(s Sign) bool { return s.NonNegative() }},
		{expr.Call("exp", expr.Var("free")), nil, func(s Sign) bool { return s == SignPos }},
		{expr.Add(expr.Var("d"), expr.Call("relu", expr.Var("q"))), consD, func(s Sign) bool { return s == SignPos }},
		{expr.Sub(expr.Num(0), expr.Var("d")), consD, func(s Sign) bool { return s == SignNeg }},
	}
	for i, c := range cases {
		if got := SignOf(c.e, c.cons); !c.want(got) {
			t.Errorf("case %d: SignOf(%s) = %v", i, c.e, got)
		}
	}
}

func TestVarSignMeet(t *testing.T) {
	cons := []Constraint{{Var: "x", Rel: Ge, Bound: 0}, {Var: "x", Rel: Le, Bound: 0}}
	if got := varSign("x", cons); got != SignZero {
		t.Errorf("x in [0,0] should be zero, got %v", got)
	}
}

// --- ProveEq: the identities the checker depends on ------------------------

// aggExpr builds g(a,b) for the named aggregate.
func aggExpr(g string, a, b *expr.Expr) *expr.Expr {
	switch g {
	case "sum", "count":
		return expr.Add(a, b)
	case "min", "max":
		return expr.Call(g, a, b)
	case "mean":
		return expr.Div(expr.Add(a, b), expr.Num(2))
	}
	panic("bad agg")
}

func TestProveCommutativity(t *testing.T) {
	a, b := expr.Var("a"), expr.Var("b")
	for _, g := range []string{"sum", "min", "max", "mean"} {
		res := ProveEq(aggExpr(g, a, b), aggExpr(g, b, a), nil)
		if res.Verdict != Valid {
			t.Errorf("%s commutativity: %v (%s)", g, res.Verdict, res.Reason)
		}
	}
}

func TestProveAssociativity(t *testing.T) {
	a, b, c := expr.Var("a"), expr.Var("b"), expr.Var("c")
	for _, g := range []string{"sum", "min", "max"} {
		lhs := aggExpr(g, aggExpr(g, a, b), c)
		rhs := aggExpr(g, a, aggExpr(g, b, c))
		res := ProveEq(lhs, rhs, nil)
		if res.Verdict != Valid {
			t.Errorf("%s associativity: %v (%s)", g, res.Verdict, res.Reason)
		}
	}
	// mean is NOT associative; the solver must produce a counterexample.
	lhs := aggExpr("mean", aggExpr("mean", a, b), c)
	rhs := aggExpr("mean", a, aggExpr("mean", b, c))
	res := ProveEq(lhs, rhs, nil)
	if res.Verdict != Invalid {
		t.Fatalf("mean associativity should be refuted: %v (%s)", res.Verdict, res.Reason)
	}
	l := lhs.Eval(res.Witness)
	r := rhs.Eval(res.Witness)
	if l == r {
		t.Errorf("witness %v does not separate the sides", res.Witness)
	}
}

// p2Template builds the paper's Figure-4 Property-2 template for a binary
// aggregate g and unary f:
//
//	lhs = g(f(g(x1,y1)), f(g(x2,y2)))
//	rhs = g(g(g(f(x1),f(y1)), f(x2)), f(y2))
func p2Template(g string, f func(*expr.Expr) *expr.Expr) (lhs, rhs *expr.Expr) {
	x1, y1, x2, y2 := expr.Var("x1"), expr.Var("y1"), expr.Var("x2"), expr.Var("y2")
	lhs = aggExpr(g, f(aggExpr(g, x1, y1)), f(aggExpr(g, x2, y2)))
	rhs = aggExpr(g, aggExpr(g, aggExpr(g, f(x1), f(y1)), f(x2)), f(y2))
	return lhs, rhs
}

func TestProveP2PageRank(t *testing.T) {
	// f = 0.85*x/d with d > 0 — the exact query of paper Figure 4.
	f := func(x *expr.Expr) *expr.Expr {
		return expr.Div(expr.Mul(expr.Num(0.85), x), expr.Var("d"))
	}
	lhs, rhs := p2Template("sum", f)
	res := ProveEq(lhs, rhs, []Constraint{{Var: "d", Rel: Gt, Bound: 0}})
	if res.Verdict != Valid {
		t.Errorf("PageRank P2 should be valid: %v (%s)", res.Verdict, res.Reason)
	}
}

func TestProveP2SSSP(t *testing.T) {
	// f = x + w (edge relaxation) under min.
	f := func(x *expr.Expr) *expr.Expr { return expr.Add(x, expr.Var("w")) }
	lhs, rhs := p2Template("min", f)
	res := ProveEq(lhs, rhs, nil)
	if res.Verdict != Valid {
		t.Errorf("SSSP P2 should be valid: %v (%s)", res.Verdict, res.Reason)
	}
}

func TestProveP2CCIdentity(t *testing.T) {
	// f = identity under min (label propagation).
	f := func(x *expr.Expr) *expr.Expr { return x }
	lhs, rhs := p2Template("min", f)
	res := ProveEq(lhs, rhs, nil)
	if res.Verdict != Valid {
		t.Errorf("CC P2 should be valid: %v (%s)", res.Verdict, res.Reason)
	}
}

func TestProveP2Adsorption(t *testing.T) {
	// f = 0.7*a*w*p with w,p in [0,1] under sum.
	f := func(x *expr.Expr) *expr.Expr {
		return expr.Mul(expr.Mul(expr.Num(0.7), x), expr.Mul(expr.Var("w"), expr.Var("p")))
	}
	lhs, rhs := p2Template("sum", f)
	res := ProveEq(lhs, rhs, []Constraint{
		{Var: "w", Rel: Ge, Bound: 0}, {Var: "w", Rel: Le, Bound: 1},
		{Var: "p", Rel: Ge, Bound: 0}, {Var: "p", Rel: Le, Bound: 1},
	})
	if res.Verdict != Valid {
		t.Errorf("Adsorption P2 should be valid: %v (%s)", res.Verdict, res.Reason)
	}
}

func TestProveP2GCNReluFails(t *testing.T) {
	// f = relu(x*p)*w — the paper's own counterexample: Property 2 fails.
	f := func(x *expr.Expr) *expr.Expr {
		return expr.Mul(expr.Call("relu", expr.Mul(x, expr.Var("p"))), expr.Var("w"))
	}
	lhs, rhs := p2Template("sum", f)
	res := ProveEq(lhs, rhs, []Constraint{{Var: "w", Rel: Gt, Bound: 0}, {Var: "p", Rel: Gt, Bound: 0}})
	if res.Verdict != Invalid {
		t.Fatalf("GCN P2 should be refuted: %v (%s)", res.Verdict, res.Reason)
	}
	if l, r := lhs.Eval(res.Witness), rhs.Eval(res.Witness); l == r {
		t.Errorf("witness %v does not separate the sides (%v vs %v)", res.Witness, l, r)
	}
}

func TestProveP2TanhFails(t *testing.T) {
	// CommNet-style nonlinearity: f = tanh(x) under sum.
	f := func(x *expr.Expr) *expr.Expr { return expr.Call("tanh", x) }
	lhs, rhs := p2Template("sum", f)
	res := ProveEq(lhs, rhs, nil)
	if res.Verdict != Invalid {
		t.Fatalf("tanh P2 should be refuted: %v (%s)", res.Verdict, res.Reason)
	}
}

func TestProveP2MinNegativeCoefficientFails(t *testing.T) {
	// f = -x is decreasing: min does not distribute; must be refuted.
	f := func(x *expr.Expr) *expr.Expr { return expr.Neg(x) }
	lhs, rhs := p2Template("min", f)
	res := ProveEq(lhs, rhs, nil)
	if res.Verdict != Invalid {
		t.Fatalf("min with f=-x should be refuted: %v (%s)", res.Verdict, res.Reason)
	}
}

func TestProveP2SumAffineConstantFails(t *testing.T) {
	// f = x + 5 under sum: f(a+b) != f(a)+f(b); Property 2 fails, which is
	// why the checker must split F into F' and the constant part C first.
	f := func(x *expr.Expr) *expr.Expr { return expr.Add(x, expr.Num(5)) }
	lhs, rhs := p2Template("sum", f)
	res := ProveEq(lhs, rhs, nil)
	if res.Verdict != Invalid {
		t.Fatalf("sum with f=x+5 should be refuted: %v (%s)", res.Verdict, res.Reason)
	}
}

func TestProveP2ViterbiMax(t *testing.T) {
	// f = p*x with 0 <= p <= 1 under max (Viterbi).
	f := func(x *expr.Expr) *expr.Expr { return expr.Mul(expr.Var("p"), x) }
	lhs, rhs := p2Template("max", f)
	res := ProveEq(lhs, rhs, []Constraint{{Var: "p", Rel: Ge, Bound: 0}, {Var: "p", Rel: Le, Bound: 1}})
	// This needs nonlinear regional reasoning (p*x1 <= p*x2 given x1<=x2,
	// p>=0); the generic engine may return Unknown but must never claim
	// Invalid. (The checker proves this case via the monotone-distribution
	// lemma on top of SignOf.)
	if res.Verdict == Invalid {
		t.Fatalf("Viterbi P2 wrongly refuted with witness %v (%s)", res.Witness, res.Reason)
	}
}

func TestProveEqTrivial(t *testing.T) {
	x := expr.Var("x")
	if res := ProveEq(x, x, nil); res.Verdict != Valid {
		t.Errorf("x == x: %v", res.Verdict)
	}
	if res := ProveEq(x, expr.Add(x, expr.Num(1)), nil); res.Verdict != Invalid {
		t.Errorf("x == x+1 should be refuted: %v", res.Verdict)
	}
	// Constant equality without variables.
	if res := ProveEq(expr.Num(2), expr.Num(2), nil); res.Verdict != Valid {
		t.Errorf("2 == 2: %v (%s)", res.Verdict, res.Reason)
	}
	if res := ProveEq(expr.Num(2), expr.Num(3), nil); res.Verdict != Invalid {
		t.Errorf("2 == 3 should be refuted: %v", res.Verdict)
	}
}

func TestProveEqRespectsConstraints(t *testing.T) {
	// abs(x) == x is false in general but valid for x >= 0.
	x := expr.Var("x")
	if res := ProveEq(expr.Call("abs", x), x, nil); res.Verdict != Invalid {
		t.Errorf("abs(x)==x unconstrained should be refuted: %v", res.Verdict)
	}
	res := ProveEq(expr.Call("abs", x), x, []Constraint{{Var: "x", Rel: Ge, Bound: 0}})
	if res.Verdict != Valid {
		t.Errorf("abs(x)==x for x>=0 should be valid: %v (%s)", res.Verdict, res.Reason)
	}
}

func TestProveMinMaxDuality(t *testing.T) {
	// min(a,b) == -max(-a,-b): needs nested splits on both sides.
	a, b := expr.Var("a"), expr.Var("b")
	lhs := expr.Call("min", a, b)
	rhs := expr.Neg(expr.Call("max", expr.Neg(a), expr.Neg(b)))
	res := ProveEq(lhs, rhs, nil)
	if res.Verdict != Valid {
		t.Errorf("min/max duality: %v (%s)", res.Verdict, res.Reason)
	}
}

func TestReplaceNodeSharing(t *testing.T) {
	shared := expr.Call("relu", expr.Var("x"))
	e := expr.Add(shared, expr.Mul(shared, expr.Var("y")))
	out := replaceNode(e, shared, expr.Num(1))
	if got := out.Eval(expr.Env{"y": 3}); got != 4 {
		t.Errorf("both shared occurrences should be replaced: got %v", got)
	}
	// Untouched tree is returned as-is when target absent.
	other := expr.Var("z")
	if replaceNode(e, other, expr.Num(0)) != e {
		t.Error("replace of absent node should share the tree")
	}
}

func TestFindInnermostPiecewise(t *testing.T) {
	inner := expr.Call("relu", expr.Var("x"))
	outer := expr.Call("min", inner, expr.Var("y"))
	if got := findInnermostPiecewise(outer); got != inner {
		t.Errorf("innermost = %v", got)
	}
	if findInnermostPiecewise(expr.Add(expr.Var("x"), expr.Num(1))) != nil {
		t.Error("no piecewise call expected")
	}
}
