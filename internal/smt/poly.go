// Package smt is PowerLog-Go's stand-in for the Z3 SMT solver used by the
// paper's automatic condition checker (§3.3, §5.1). It decides validity of
// equalities between arithmetic expressions over the reals:
//
//   - exact symbolic normalisation of division-closed polynomial
//     expressions to canonical rational functions (math/big.Rat
//     coefficients, so no float error in proofs),
//   - a branch-and-prove decision procedure for the piecewise-linear
//     builtins (min, max, relu, abs) that case-splits on branch
//     conditions and discharges each region either by normalisation or by
//     Fourier–Motzkin infeasibility,
//   - sign analysis of expressions under declared variable constraints
//     (used for the monotone-distribution lemma of selective aggregates),
//   - a systematic falsifier that searches for concrete counterexamples,
//     mirroring Z3's "sat + model" answer.
//
// The three verdicts correspond to Z3's answers for the paper's
// double-negated assertion: Valid = "unsat", Invalid = "sat" (with a
// witness model), Unknown = "unknown". Callers must treat Unknown
// conservatively, exactly as the paper does.
package smt

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"powerlog/internal/expr"
)

// Poly is a multivariate polynomial with exact rational coefficients,
// keyed by canonical monomial encoding (see encodeMono). The zero
// polynomial is the empty map.
type Poly map[string]*big.Rat

// monomial is a variable-name → power map; the constant monomial is empty.
type monomial map[string]int

func encodeMono(m monomial) string {
	if len(m) == 0 {
		return ""
	}
	names := make([]string, 0, len(m))
	for v, p := range m {
		if p != 0 {
			names = append(names, v)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for i, v := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s^%d", v, m[v])
	}
	return b.String()
}

func decodeMono(key string) monomial {
	m := monomial{}
	if key == "" {
		return m
	}
	for _, part := range strings.Split(key, " ") {
		i := strings.LastIndexByte(part, '^')
		var pow int
		fmt.Sscanf(part[i+1:], "%d", &pow)
		m[part[:i]] = pow
	}
	return m
}

func mulMono(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	m := decodeMono(a)
	for v, p := range decodeMono(b) {
		m[v] += p
	}
	return encodeMono(m)
}

// NewPoly returns the zero polynomial.
func NewPoly() Poly { return Poly{} }

// PolyConst returns the constant polynomial c.
func PolyConst(c *big.Rat) Poly {
	p := Poly{}
	if c.Sign() != 0 {
		p[""] = new(big.Rat).Set(c)
	}
	return p
}

// PolyVar returns the polynomial consisting of the single variable v.
func PolyVar(v string) Poly {
	return Poly{encodeMono(monomial{v: 1}): big.NewRat(1, 1)}
}

func (p Poly) clone() Poly {
	q := make(Poly, len(p))
	for k, c := range p {
		q[k] = new(big.Rat).Set(c)
	}
	return q
}

func (p Poly) addInto(k string, c *big.Rat) {
	if cur, ok := p[k]; ok {
		cur.Add(cur, c)
		if cur.Sign() == 0 {
			delete(p, k)
		}
	} else if c.Sign() != 0 {
		p[k] = new(big.Rat).Set(c)
	}
}

// Add returns p+q.
func (p Poly) Add(q Poly) Poly {
	r := p.clone()
	for k, c := range q {
		r.addInto(k, c)
	}
	return r
}

// Sub returns p-q.
func (p Poly) Sub(q Poly) Poly {
	r := p.clone()
	neg := new(big.Rat)
	for k, c := range q {
		neg.Neg(c)
		r.addInto(k, neg)
		neg = new(big.Rat)
	}
	return r
}

// Neg returns -p.
func (p Poly) Neg() Poly {
	r := make(Poly, len(p))
	for k, c := range p {
		r[k] = new(big.Rat).Neg(c)
	}
	return r
}

// Mul returns p*q.
func (p Poly) Mul(q Poly) Poly {
	r := Poly{}
	tmp := new(big.Rat)
	for ka, ca := range p {
		for kb, cb := range q {
			tmp.Mul(ca, cb)
			r.addInto(mulMono(ka, kb), tmp)
			tmp = new(big.Rat)
		}
	}
	return r
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p) == 0 }

// IsConst reports whether p is constant, returning the constant.
func (p Poly) IsConst() (*big.Rat, bool) {
	switch len(p) {
	case 0:
		return big.NewRat(0, 1), true
	case 1:
		if c, ok := p[""]; ok {
			return c, true
		}
	}
	return nil, false
}

// Degree returns the total degree of p (0 for constants, -1 for zero).
func (p Poly) Degree() int {
	if len(p) == 0 {
		return -1
	}
	deg := 0
	for k := range p {
		d := 0
		for _, pow := range decodeMono(k) {
			d += pow
		}
		if d > deg {
			deg = d
		}
	}
	return deg
}

// Vars returns the sorted variables appearing in p.
func (p Poly) Vars() []string {
	set := map[string]bool{}
	for k := range p {
		for v := range decodeMono(k) {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Eval evaluates p at the given float64 point.
func (p Poly) Eval(env map[string]float64) float64 {
	total := 0.0
	for k, c := range p {
		term, _ := c.Float64()
		for v, pow := range decodeMono(k) {
			x := env[v]
			for i := 0; i < pow; i++ {
				term *= x
			}
		}
		total += term
	}
	return total
}

// String renders p with monomials in canonical order.
func (p Poly) String() string {
	if len(p) == 0 {
		return "0"
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(" + ")
		}
		if k == "" {
			b.WriteString(p[k].RatString())
		} else {
			fmt.Fprintf(&b, "%s·[%s]", p[k].RatString(), k)
		}
	}
	return b.String()
}

// RatFunc is a formal quotient Num/Den of polynomials. Den is never the
// zero polynomial. RatFuncs are not reduced to lowest terms; equality is
// decided by cross-multiplication.
type RatFunc struct {
	Num, Den Poly
}

// ErrNonPolynomial is returned by FromExpr when the expression contains a
// builtin call and therefore has no rational-function normal form.
type ErrNonPolynomial struct{ Fn string }

func (e *ErrNonPolynomial) Error() string {
	return fmt.Sprintf("smt: %q has no polynomial normal form", e.Fn)
}

// FromExpr normalises e to a rational function. Builtin calls make the
// expression non-polynomial and return *ErrNonPolynomial; division by an
// expression that normalises to the zero polynomial is rejected too.
func FromExpr(e *expr.Expr) (RatFunc, error) {
	one := PolyConst(big.NewRat(1, 1))
	switch e.Kind {
	case expr.KNum:
		c := new(big.Rat)
		if c.SetFloat64(e.Val) == nil {
			return RatFunc{}, fmt.Errorf("smt: non-finite literal %v", e.Val)
		}
		return RatFunc{PolyConst(c), one}, nil
	case expr.KVar:
		return RatFunc{PolyVar(e.Name), one}, nil
	case expr.KNeg:
		a, err := FromExpr(e.Args[0])
		if err != nil {
			return RatFunc{}, err
		}
		return RatFunc{a.Num.Neg(), a.Den}, nil
	case expr.KAdd, expr.KSub, expr.KMul, expr.KDiv:
		a, err := FromExpr(e.Args[0])
		if err != nil {
			return RatFunc{}, err
		}
		b, err := FromExpr(e.Args[1])
		if err != nil {
			return RatFunc{}, err
		}
		switch e.Kind {
		case expr.KAdd:
			return RatFunc{a.Num.Mul(b.Den).Add(b.Num.Mul(a.Den)), a.Den.Mul(b.Den)}, nil
		case expr.KSub:
			return RatFunc{a.Num.Mul(b.Den).Sub(b.Num.Mul(a.Den)), a.Den.Mul(b.Den)}, nil
		case expr.KMul:
			return RatFunc{a.Num.Mul(b.Num), a.Den.Mul(b.Den)}, nil
		default: // KDiv
			if b.Num.IsZero() {
				return RatFunc{}, fmt.Errorf("smt: division by zero polynomial")
			}
			return RatFunc{a.Num.Mul(b.Den), a.Den.Mul(b.Num)}, nil
		}
	case expr.KCall:
		return RatFunc{}, &ErrNonPolynomial{Fn: e.Name}
	default:
		return RatFunc{}, fmt.Errorf("smt: bad expr kind %d", e.Kind)
	}
}

// EqualZero reports whether the rational function is identically zero,
// i.e. its numerator is the zero polynomial.
func (r RatFunc) EqualZero() bool { return r.Num.IsZero() }
