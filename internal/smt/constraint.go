package smt

import (
	"fmt"
	"math"
	"math/rand"

	"powerlog/internal/expr"
)

// Rel is a constraint relation.
type Rel int

// Constraint relations. (Equality constraints are expressed as a Ge+Le
// pair by callers that need them.)
const (
	Ge Rel = iota // var >= bound
	Gt            // var >  bound
	Le            // var <= bound
	Lt            // var <  bound
)

// String renders the relation symbol.
func (r Rel) String() string {
	switch r {
	case Ge:
		return ">="
	case Gt:
		return ">"
	case Le:
		return "<="
	case Lt:
		return "<"
	}
	return "?"
}

// Constraint restricts a single variable's domain, mirroring the paper's
// Z3 preamble assertions such as "(assert (> d 0))" for the PageRank
// out-degree.
type Constraint struct {
	Var   string
	Rel   Rel
	Bound float64
}

// String renders the constraint.
func (c Constraint) String() string {
	return fmt.Sprintf("%s %s %v", c.Var, c.Rel, c.Bound)
}

// Satisfied reports whether the assignment env meets the constraint.
func (c Constraint) Satisfied(env map[string]float64) bool {
	v, ok := env[c.Var]
	if !ok {
		return true // unconstrained-by-absence; samplers always bind
	}
	switch c.Rel {
	case Ge:
		return v >= c.Bound
	case Gt:
		return v > c.Bound
	case Le:
		return v <= c.Bound
	case Lt:
		return v < c.Bound
	}
	return false
}

// domain is the interval a sampler draws a variable from.
type domain struct {
	lo, hi         float64
	loOpen, hiOpen bool
}

func domainsOf(vars []string, cons []Constraint) map[string]domain {
	d := make(map[string]domain, len(vars))
	for _, v := range vars {
		d[v] = domain{lo: math.Inf(-1), hi: math.Inf(1)}
	}
	for _, c := range cons {
		dom, ok := d[c.Var]
		if !ok {
			continue
		}
		switch c.Rel {
		case Ge:
			if c.Bound > dom.lo {
				dom.lo, dom.loOpen = c.Bound, false
			}
		case Gt:
			if c.Bound >= dom.lo {
				dom.lo, dom.loOpen = c.Bound, true
			}
		case Le:
			if c.Bound < dom.hi {
				dom.hi, dom.hiOpen = c.Bound, false
			}
		case Lt:
			if c.Bound <= dom.hi {
				dom.hi, dom.hiOpen = c.Bound, true
			}
		}
		d[c.Var] = dom
	}
	return d
}

// interestingPoints are the structured sample values the falsifier tries
// first; they cover signs, zero, fractions, and moderately large values.
var interestingPoints = []float64{0, 1, -1, 2, -2, 0.5, -0.5, 3, -3, 10, -10, 0.1, -0.1, 7, -7, 100, -100}

// sample draws a value from dom: structured points that fit, else uniform
// within the (clipped) interval.
func (dom domain) sample(rng *rand.Rand, structured int) float64 {
	if structured >= 0 && structured < len(interestingPoints) {
		p := interestingPoints[structured]
		if dom.contains(p) {
			return p
		}
	}
	lo, hi := dom.lo, dom.hi
	if math.IsInf(lo, -1) {
		lo = -50
	}
	if math.IsInf(hi, 1) {
		hi = 50
	}
	if lo > hi {
		lo = hi
	}
	v := lo + rng.Float64()*(hi-lo)
	if dom.loOpen && v <= dom.lo {
		v = math.Nextafter(dom.lo, math.Inf(1)) + 1e-6
	}
	if dom.hiOpen && v >= dom.hi {
		v = math.Nextafter(dom.hi, math.Inf(-1)) - 1e-6
	}
	return v
}

func (dom domain) contains(v float64) bool {
	if v < dom.lo || (dom.loOpen && v == dom.lo) {
		return false
	}
	if v > dom.hi || (dom.hiOpen && v == dom.hi) {
		return false
	}
	return true
}

// Sign is the result of static sign analysis.
type Sign int

// Sign lattice values.
const (
	SignUnknown Sign = iota
	SignZero
	SignNonNeg // >= 0
	SignPos    // > 0
	SignNonPos // <= 0
	SignNeg    // < 0
)

// String renders the sign.
func (s Sign) String() string {
	switch s {
	case SignZero:
		return "= 0"
	case SignNonNeg:
		return ">= 0"
	case SignPos:
		return "> 0"
	case SignNonPos:
		return "<= 0"
	case SignNeg:
		return "< 0"
	default:
		return "unknown"
	}
}

// NonNegative reports whether the sign guarantees >= 0.
func (s Sign) NonNegative() bool { return s == SignZero || s == SignNonNeg || s == SignPos }

// NonPositive reports whether the sign guarantees <= 0.
func (s Sign) NonPositive() bool { return s == SignZero || s == SignNonPos || s == SignNeg }

func signOfConst(v float64) Sign {
	switch {
	case v == 0:
		return SignZero
	case v > 0:
		return SignPos
	default:
		return SignNeg
	}
}

// SignOf statically bounds the sign of e under the variable constraints.
// It is sound but incomplete: SignUnknown means "could not determine",
// never "can be anything".
func SignOf(e *expr.Expr, cons []Constraint) Sign {
	switch e.Kind {
	case expr.KNum:
		return signOfConst(e.Val)
	case expr.KVar:
		return varSign(e.Name, cons)
	case expr.KNeg:
		return negSign(SignOf(e.Args[0], cons))
	case expr.KAdd:
		return addSign(SignOf(e.Args[0], cons), SignOf(e.Args[1], cons))
	case expr.KSub:
		return addSign(SignOf(e.Args[0], cons), negSign(SignOf(e.Args[1], cons)))
	case expr.KMul:
		return mulSign(SignOf(e.Args[0], cons), SignOf(e.Args[1], cons))
	case expr.KDiv:
		a, b := SignOf(e.Args[0], cons), SignOf(e.Args[1], cons)
		if b == SignZero {
			return SignUnknown
		}
		// Quotient sign follows product sign, except it can never be
		// proven zero-free by the denominator alone.
		return mulSign(a, b)
	case expr.KCall:
		switch e.Name {
		case "relu", "abs", "sqrt":
			return SignNonNeg
		case "exp", "sigmoid":
			return SignPos
		case "min":
			a, b := SignOf(e.Args[0], cons), SignOf(e.Args[1], cons)
			if a.NonNegative() && b.NonNegative() {
				return SignNonNeg
			}
			if a.NonPositive() || b.NonPositive() {
				return SignNonPos
			}
		case "max":
			a, b := SignOf(e.Args[0], cons), SignOf(e.Args[1], cons)
			if a.NonNegative() || b.NonNegative() {
				return SignNonNeg
			}
			if a.NonPositive() && b.NonPositive() {
				return SignNonPos
			}
		case "tanh":
			return SignOf(e.Args[0], cons) // tanh preserves sign
		}
		return SignUnknown
	}
	return SignUnknown
}

func varSign(name string, cons []Constraint) Sign {
	s := SignUnknown
	for _, c := range cons {
		if c.Var != name {
			continue
		}
		var this Sign
		switch {
		case c.Rel == Gt && c.Bound >= 0:
			this = SignPos
		case c.Rel == Ge && c.Bound > 0:
			this = SignPos
		case c.Rel == Ge && c.Bound == 0:
			this = SignNonNeg
		case c.Rel == Lt && c.Bound <= 0:
			this = SignNeg
		case c.Rel == Le && c.Bound < 0:
			this = SignNeg
		case c.Rel == Le && c.Bound == 0:
			this = SignNonPos
		default:
			continue
		}
		s = meetSign(s, this)
	}
	return s
}

// meetSign combines two sound facts about the same value.
func meetSign(a, b Sign) Sign {
	if a == SignUnknown {
		return b
	}
	if b == SignUnknown {
		return a
	}
	if a == b {
		return a
	}
	switch {
	case (a == SignNonNeg && b == SignPos) || (a == SignPos && b == SignNonNeg):
		return SignPos
	case (a == SignNonPos && b == SignNeg) || (a == SignNeg && b == SignNonPos):
		return SignNeg
	case (a.NonNegative() && b.NonPositive()) || (a.NonPositive() && b.NonNegative()):
		return SignZero
	}
	return a
}

func negSign(s Sign) Sign {
	switch s {
	case SignPos:
		return SignNeg
	case SignNeg:
		return SignPos
	case SignNonNeg:
		return SignNonPos
	case SignNonPos:
		return SignNonNeg
	default:
		return s
	}
}

func addSign(a, b Sign) Sign {
	switch {
	case a == SignZero:
		return b
	case b == SignZero:
		return a
	case a == SignPos && b.NonNegative(), b == SignPos && a.NonNegative():
		return SignPos
	case a.NonNegative() && b.NonNegative():
		return SignNonNeg
	case a == SignNeg && b.NonPositive(), b == SignNeg && a.NonPositive():
		return SignNeg
	case a.NonPositive() && b.NonPositive():
		return SignNonPos
	default:
		return SignUnknown
	}
}

func mulSign(a, b Sign) Sign {
	if a == SignZero || b == SignZero {
		return SignZero
	}
	if a == SignUnknown || b == SignUnknown {
		return SignUnknown
	}
	pos := func(s Sign) bool { return s == SignPos }
	nonneg := a.NonNegative()
	bnonneg := b.NonNegative()
	switch {
	case pos(a) && pos(b):
		return SignPos
	case nonneg && bnonneg:
		return SignNonNeg
	case a == SignNeg && b == SignNeg:
		return SignPos
	case a.NonPositive() && b.NonPositive():
		return SignNonNeg
	case (pos(a) && b == SignNeg) || (a == SignNeg && pos(b)):
		return SignNeg
	default:
		return SignNonPos
	}
}
