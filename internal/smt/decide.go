package smt

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"sort"

	"powerlog/internal/expr"
)

// Verdict is the solver's answer about a universally quantified equality,
// mirroring Z3's answer to the paper's double-negated assertion:
// Valid = "unsat", Invalid = "sat" (with model), Unknown = "unknown".
type Verdict int

// Verdicts.
const (
	Unknown Verdict = iota
	Valid
	Invalid
)

// String renders the verdict in Z3's vocabulary alongside ours.
func (v Verdict) String() string {
	switch v {
	case Valid:
		return "valid (Z3: unsat)"
	case Invalid:
		return "invalid (Z3: sat)"
	default:
		return "unknown"
	}
}

// Result is the outcome of a ProveEq query.
type Result struct {
	Verdict Verdict
	Witness map[string]float64 // counterexample model when Invalid
	Reason  string             // human-readable proof / refutation sketch
}

// maxSplits bounds the piecewise case-split depth; 2^maxSplits regions.
const maxSplits = 14

// falsifyTries is the sample budget of the counterexample search.
const falsifyTries = 4000

// relative tolerance for float counterexample confirmation; generous
// enough to absorb non-associative float rounding between the two sides.
const eqTol = 1e-6

// ProveEq decides whether lhs == rhs for all real assignments satisfying
// the constraints. The deterministic seed makes verdicts reproducible.
func ProveEq(lhs, rhs *expr.Expr, cons []Constraint) Result {
	diff := expr.Sub(lhs, rhs)
	rng := rand.New(rand.NewSource(20200614)) // SIGMOD'20 opening day

	// Fast refutation first: a concrete counterexample settles the query
	// without exponential branching (this is how GCN-Forward and CommNet
	// die in practice).
	if w, ok := falsify(diff, nil, cons, rng, falsifyTries); ok {
		return Result{Verdict: Invalid, Witness: w,
			Reason: fmt.Sprintf("counterexample %v: lhs=%v rhs=%v", fmtModel(w), lhs.Eval(w), rhs.Eval(w))}
	}

	d := &decider{cons: cons, rng: rng}
	verdict, reason := d.decide(diff, nil, 0)
	switch verdict {
	case Valid:
		return Result{Verdict: Valid, Reason: reason}
	case Invalid:
		return Result{Verdict: Invalid, Witness: d.witness, Reason: reason}
	default:
		return Result{Verdict: Unknown, Reason: reason}
	}
}

// cond is a branch condition: expr (>= | <) 0, or (> | <=) 0.
type cond struct {
	e      *expr.Expr
	ge     bool // true: lower bound (>= or >); false: upper (< or <=)
	strict bool
}

func (c cond) holds(env map[string]float64) bool {
	v := c.e.Eval(env)
	switch {
	case c.ge && c.strict:
		return v > 0
	case c.ge:
		return v >= 0
	case c.strict:
		return v < 0
	default:
		return v <= 0
	}
}

type decider struct {
	cons    []Constraint
	rng     *rand.Rand
	witness map[string]float64
}

// branch is one side of a piecewise case split: on region c, the call
// node rewrites to repl.
type branch struct {
	c    cond
	repl *expr.Expr
}

// piecewiseFns are builtins the case-split engine can eliminate.
var piecewiseFns = map[string]bool{"relu": true, "abs": true, "min": true, "max": true}

// findInnermostPiecewise returns a piecewise call node none of whose
// arguments contain further piecewise calls, or nil.
func findInnermostPiecewise(e *expr.Expr) *expr.Expr {
	if e.Kind == expr.KCall && piecewiseFns[e.Name] {
		for _, a := range e.Args {
			if inner := findInnermostPiecewise(a); inner != nil {
				return inner
			}
		}
		return e
	}
	for _, a := range e.Args {
		if inner := findInnermostPiecewise(a); inner != nil {
			return inner
		}
	}
	return nil
}

// replaceNode substitutes repl for every occurrence of target (by pointer
// identity) in e. Replacing all identical occurrences at once is sound:
// the same subexpression falls on the same side of its branch condition.
func replaceNode(e, target, repl *expr.Expr) *expr.Expr {
	if e == target {
		return repl
	}
	if len(e.Args) == 0 {
		return e
	}
	changed := false
	args := make([]*expr.Expr, len(e.Args))
	for i, a := range e.Args {
		args[i] = replaceNode(a, target, repl)
		if args[i] != a {
			changed = true
		}
	}
	if !changed {
		return e
	}
	return &expr.Expr{Kind: e.Kind, Val: e.Val, Name: e.Name, Args: args}
}

// decide proves diff == 0 on the region described by conds (plus the
// global constraints), case-splitting piecewise builtins.
func (d *decider) decide(diff *expr.Expr, conds []cond, splits int) (Verdict, string) {
	if call := findInnermostPiecewise(diff); call != nil {
		if splits >= maxSplits {
			return Unknown, fmt.Sprintf("case-split budget exceeded (%d piecewise calls)", splits)
		}
		var branches []branch
		switch call.Name {
		case "relu":
			a := call.Args[0]
			branches = []branch{
				{cond{a, true, false}, a},           // a >= 0 → a
				{cond{a, false, true}, expr.Num(0)}, // a <  0 → 0
			}
		case "abs":
			a := call.Args[0]
			branches = []branch{
				{cond{a, true, false}, a},
				{cond{a, false, true}, expr.Neg(a)},
			}
		case "min":
			a, b := call.Args[0], call.Args[1]
			dab := expr.Sub(a, b)
			branches = []branch{
				{cond{dab, false, false}, a}, // a-b <= 0 → a
				{cond{dab, true, true}, b},   // a-b >  0 → b
			}
		case "max":
			a, b := call.Args[0], call.Args[1]
			dab := expr.Sub(a, b)
			branches = []branch{
				{cond{dab, true, false}, a},
				{cond{dab, false, true}, b},
			}
		}
		for _, br := range branches {
			sub := replaceNode(diff, call, br.repl)
			v, reason := d.decide(sub, append(conds[:len(conds):len(conds)], br.c), splits+1)
			if v != Valid {
				return v, reason
			}
		}
		return Valid, fmt.Sprintf("all %d-deep case splits discharged", splits+1)
	}

	// Base case: no piecewise calls remain.
	rf, err := FromExpr(diff)
	if err != nil {
		// Transcendental residue: only refutation is possible here.
		if w, ok := falsify(diff, conds, d.cons, d.rng, falsifyTries); ok {
			d.witness = w
			return Invalid, fmt.Sprintf("counterexample %v (non-polynomial branch)", fmtModel(w))
		}
		return Unknown, fmt.Sprintf("non-polynomial branch (%v) with no counterexample found", err)
	}
	if rf.EqualZero() {
		return Valid, "normalises to the zero rational function"
	}
	// The difference is a nonzero rational function on this region; a
	// counterexample exists iff the region is feasible (the zero set of a
	// nonzero polynomial has measure zero).
	if w, ok := falsify(diff, conds, d.cons, d.rng, falsifyTries); ok {
		d.witness = w
		return Invalid, fmt.Sprintf("counterexample %v on region %s", fmtModel(w), fmtConds(conds))
	}
	// No sample hit the region: try to *prove* the region empty with
	// Fourier–Motzkin (complete for linear real arithmetic).
	if ineqs, ok := d.linearSystem(conds); ok {
		if !fmFeasible(ineqs) {
			return Valid, fmt.Sprintf("region %s infeasible (Fourier–Motzkin)", fmtConds(conds))
		}
		// The region is feasible but thin (sampling missed it, e.g. the
		// diagonal a == b). The difference may still vanish everywhere ON
		// the region: prove diff > 0 and diff < 0 both infeasible there.
		if num, ok := signedLinearNumerator(rf); ok {
			coefPos, konstPos, lin := linFromPoly(num)
			if lin {
				coefNeg, konstNeg, _ := linFromPoly(num.Neg())
				pos := append(ineqs[:len(ineqs):len(ineqs)], &linIneq{coef: coefPos, konst: konstPos, strict: true})
				neg := append(ineqs[:len(ineqs):len(ineqs)], &linIneq{coef: coefNeg, konst: konstNeg, strict: true})
				if !fmFeasible(pos) && !fmFeasible(neg) {
					return Valid, fmt.Sprintf("difference vanishes on region %s (Fourier–Motzkin)", fmtConds(conds))
				}
			}
		}
		return Unknown, fmt.Sprintf("nonzero difference on feasible thin region %s", fmtConds(conds))
	}
	return Unknown, fmt.Sprintf("nonzero difference on nonlinear region %s", fmtConds(conds))
}

// signedLinearNumerator returns the numerator of rf oriented so that its
// sign matches the sign of rf, which requires a constant nonzero
// denominator. ok is false otherwise.
func signedLinearNumerator(rf RatFunc) (Poly, bool) {
	dc, isConst := rf.Den.IsConst()
	if !isConst || dc.Sign() == 0 {
		return nil, false
	}
	if dc.Sign() < 0 {
		return rf.Num.Neg(), true
	}
	return rf.Num, true
}

// linearSystem converts branch conditions plus global constraints to
// linear inequalities; ok is false if anything is nonlinear.
func (d *decider) linearSystem(conds []cond) ([]*linIneq, bool) {
	var out []*linIneq
	for _, c := range conds {
		rf, err := FromExpr(c.e)
		if err != nil {
			return nil, false
		}
		p := rf.Num
		// e = Num/Den: require a constant denominator to keep the sign
		// relation linear; flip for negative constants.
		dc, isConst := rf.Den.IsConst()
		if !isConst || dc.Sign() == 0 {
			return nil, false
		}
		if dc.Sign() < 0 {
			p = p.Neg()
		}
		if !c.ge {
			p = p.Neg() // e <(=) 0  ⇔  -e >(=) 0
		}
		coef, konst, ok := linFromPoly(p)
		if !ok {
			return nil, false
		}
		out = append(out, &linIneq{coef: coef, konst: konst, strict: c.strict})
	}
	return append(out, consIneqs(d.cons)...), true
}

// consIneqs converts the global variable constraints to linear form.
func consIneqs(cons []Constraint) []*linIneq {
	var out []*linIneq
	for _, c := range cons {
		bound := new(big.Rat)
		bound.SetFloat64(c.Bound)
		q := &linIneq{coef: map[string]*big.Rat{}, konst: new(big.Rat)}
		switch c.Rel {
		case Ge, Gt: // v - bound >= 0
			q.coef[c.Var] = big.NewRat(1, 1)
			q.konst.Neg(bound)
			q.strict = c.Rel == Gt
		case Le, Lt: // bound - v >= 0
			q.coef[c.Var] = big.NewRat(-1, 1)
			q.konst.Set(bound)
			q.strict = c.Rel == Lt
		}
		out = append(out, q)
	}
	return out
}

// falsify searches for an assignment satisfying conds and cons at which
// diff evaluates away from zero (relative tolerance eqTol).
func falsify(diff *expr.Expr, conds []cond, cons []Constraint, rng *rand.Rand, tries int) (map[string]float64, bool) {
	varSet := map[string]bool{}
	for _, v := range diff.Vars() {
		varSet[v] = true
	}
	for _, c := range conds {
		for _, v := range c.e.Vars() {
			varSet[v] = true
		}
	}
	vars := make([]string, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	if len(vars) == 0 {
		v := diff.Eval(nil)
		if math.Abs(v) > eqTol {
			return map[string]float64{}, true
		}
		return nil, false
	}
	doms := domainsOf(vars, cons)

	env := make(map[string]float64, len(vars))
	for i := 0; i < tries; i++ {
		for _, v := range vars {
			structured := -1
			if i < tries/2 { // first half: bias toward structured points
				structured = rng.Intn(len(interestingPoints) + 4) // sometimes uniform
			}
			env[v] = doms[v].sample(rng, structured)
		}
		okRegion := true
		for _, c := range cons {
			if !c.Satisfied(env) {
				okRegion = false
				break
			}
		}
		if okRegion {
			for _, c := range conds {
				if !c.holds(env) {
					okRegion = false
					break
				}
			}
		}
		if !okRegion {
			continue
		}
		v := diff.Eval(env)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		// Scale tolerance by the magnitude of the subterms to absorb float
		// reassociation error.
		scale := math.Max(1, math.Abs(diff.Args[0].Eval(env)))
		if math.Abs(v) > eqTol*scale {
			w := make(map[string]float64, len(env))
			for k, val := range env {
				w[k] = val
			}
			return w, true
		}
	}
	return nil, false
}

func fmtModel(w map[string]float64) string {
	keys := make([]string, 0, len(w))
	for k := range w {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := "{"
	for i, k := range keys {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s=%v", k, w[k])
	}
	return s + "}"
}

func fmtConds(conds []cond) string {
	if len(conds) == 0 {
		return "⊤"
	}
	s := ""
	for i, c := range conds {
		if i > 0 {
			s += " ∧ "
		}
		op := map[[2]bool]string{{true, false}: ">=", {true, true}: ">", {false, false}: "<=", {false, true}: "<"}[[2]bool{c.ge, c.strict}]
		s += fmt.Sprintf("%s %s 0", c.e, op)
	}
	return s
}
