package smt

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"powerlog/internal/expr"
)

// sumTemplate builds the Figure-4 Property-2 template for g = sum.
func sumTemplate(f func(*expr.Expr) *expr.Expr) (lhs, rhs *expr.Expr) {
	add := expr.Add
	x1, y1, x2, y2 := expr.Var("x1"), expr.Var("y1"), expr.Var("x2"), expr.Var("y2")
	lhs = add(f(add(x1, y1)), f(add(x2, y2)))
	rhs = add(add(add(f(x1), f(y1)), f(x2)), f(y2))
	return lhs, rhs
}

// TestFuzzLinearAlwaysValid: for any random linear f (coefficients built
// from constants and parameters), Property 2 under sum must be proven
// Valid — the solver must never report Invalid or Unknown on these.
func TestFuzzLinearAlwaysValid(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		coef := randomCoefficient(rng)
		f := func(x *expr.Expr) *expr.Expr { return expr.Mul(coef, x) }
		lhs, rhs := sumTemplate(f)
		res := ProveEq(lhs, rhs, nil)
		if res.Verdict != Valid {
			t.Logf("seed %d: coef=%s verdict=%v (%s)", seed, coef, res.Verdict, res.Reason)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFuzzAffineConstantAlwaysInvalid: f = a·x + b with a provable
// nonzero... actually with b a nonzero constant, sum's Property 2 fails;
// the solver must find a counterexample (never claim Valid).
func TestFuzzAffineConstantAlwaysInvalid(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := float64(1 + rng.Intn(9)) // nonzero constant term
		coef := randomCoefficient(rng)
		f := func(x *expr.Expr) *expr.Expr { return expr.Add(expr.Mul(coef, x), expr.Num(b)) }
		lhs, rhs := sumTemplate(f)
		res := ProveEq(lhs, rhs, nil)
		if res.Verdict == Valid {
			t.Logf("seed %d: b=%v wrongly proven valid", seed, b)
			return false
		}
		// Soundness of the refutation: the witness must separate sides.
		if res.Verdict == Invalid {
			l, r := lhs.Eval(res.Witness), rhs.Eval(res.Witness)
			if l == r {
				t.Logf("seed %d: bogus witness %v", seed, res.Witness)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFuzzReluNeverValid: any f that routes x through relu breaks
// Property 2 under sum; the solver must never claim Valid, and its
// counterexamples must be genuine.
func TestFuzzReluNeverValid(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		scale := 0.5 + rng.Float64()
		f := func(x *expr.Expr) *expr.Expr {
			return expr.Mul(expr.Call("relu", x), expr.Num(scale))
		}
		lhs, rhs := sumTemplate(f)
		res := ProveEq(lhs, rhs, nil)
		if res.Verdict == Valid {
			return false
		}
		if res.Verdict == Invalid {
			l, r := lhs.Eval(res.Witness), rhs.Eval(res.Witness)
			if l == r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFuzzMinAffineNonNegValid: min with f = x + c (c ≥ 0 constant) is
// always Property-2 valid via case splitting (no lemma shortcut here —
// this exercises the Fourier–Motzkin path).
func TestFuzzMinAffineNonNegValid(t *testing.T) {
	for c := 0; c < 5; c++ {
		f := func(x *expr.Expr) *expr.Expr { return expr.Add(x, expr.Num(float64(c))) }
		minE := func(a, b *expr.Expr) *expr.Expr { return expr.Call("min", a, b) }
		x1, y1, x2, y2 := expr.Var("x1"), expr.Var("y1"), expr.Var("x2"), expr.Var("y2")
		lhs := minE(f(minE(x1, y1)), f(minE(x2, y2)))
		rhs := minE(minE(minE(f(x1), f(y1)), f(x2)), f(y2))
		res := ProveEq(lhs, rhs, nil)
		if res.Verdict != Valid {
			t.Errorf("min with f=x+%d: %v (%s)", c, res.Verdict, res.Reason)
		}
	}
}

// randomCoefficient builds a (possibly symbolic) multiplier from
// constants and free parameters: products and quotients only, so f stays
// linear in x.
func randomCoefficient(rng *rand.Rand) *expr.Expr {
	parts := 1 + rng.Intn(3)
	out := expr.Num(0.1 + rng.Float64())
	for i := 0; i < parts; i++ {
		var p *expr.Expr
		if rng.Intn(2) == 0 {
			p = expr.Num(0.1 + 2*rng.Float64())
		} else {
			p = expr.Var(fmt.Sprintf("c%d", rng.Intn(3)))
		}
		if rng.Intn(4) == 0 {
			out = expr.Div(out, p)
		} else {
			out = expr.Mul(out, p)
		}
	}
	return out
}
