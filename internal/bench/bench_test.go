package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"powerlog/internal/gen"
	"powerlog/internal/runtime"
)

// tinyDataset builds a small workload-compatible dataset for fast tests.
func tinyDataset() gen.Dataset {
	ds := gen.TinyDatasets()
	return ds[0] // tiny-rmat
}

func fastCfg() RunConfig {
	return RunConfig{
		Workers:       2,
		Tau:           200 * time.Microsecond,
		CheckInterval: 300 * time.Microsecond,
		MaxWall:       30 * time.Second,
	}
}

func TestPrepareAllAlgorithms(t *testing.T) {
	d := tinyDataset()
	for _, algo := range Algorithms {
		wl, err := Prepare(algo, d)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if wl.Plan == nil || wl.Graph == nil {
			t.Fatalf("%s: incomplete workload", algo)
		}
	}
	if _, err := Prepare("nope", d); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
}

func TestRunModeAllAlgorithmsTiny(t *testing.T) {
	d := tinyDataset()
	for _, algo := range Algorithms {
		wl, err := Prepare(algo, d)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []runtime.Mode{runtime.MRASync, runtime.MRASyncAsync} {
			m, err := RunMode(wl, mode, fastCfg())
			if err != nil {
				t.Fatalf("%s/%v: %v", algo, mode, err)
			}
			if !m.Converged {
				t.Errorf("%s/%v did not converge", algo, mode)
			}
			if m.Seconds <= 0 {
				t.Errorf("%s/%v: non-positive time", algo, mode)
			}
			if m.Algo != algo || m.Dataset != d.Name {
				t.Errorf("mislabelled measurement %+v", m)
			}
		}
	}
}

func TestComparatorsTiny(t *testing.T) {
	d := tinyDataset()
	for _, algo := range Algorithms {
		wl, err := Prepare(algo, d)
		if err != nil {
			t.Fatal(err)
		}
		m, err := RunComparator(wl, fastCfg())
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		switch algo {
		case "CC", "SSSP":
			if m.Series != "PowerGraph" {
				t.Errorf("%s comparator = %s", algo, m.Series)
			}
		case "BP":
			if m.Series != "Prom" {
				t.Errorf("%s comparator = %s", algo, m.Series)
			}
		default:
			if m.Series != "Maiter" {
				t.Errorf("%s comparator = %s", algo, m.Series)
			}
		}
	}
}

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"SSSP", "PageRank", "GCN-Forward", "CommNet", "Viterbi"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, " yes") != 12 || strings.Count(out, " no ") < 2 {
		t.Errorf("Table 1 verdict counts wrong:\n%s", out)
	}
}

func TestTable2Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Flickr", "LiveJ", "Orkut", "Web", "Wiki", "Arabic", "ClueWeb09"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("nope", &buf, fastCfg()); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestBestSeriesAndSpeedups(t *testing.T) {
	ms := []Measurement{
		{Algo: "SSSP", Dataset: "X", Series: "A", Seconds: 2},
		{Algo: "SSSP", Dataset: "X", Series: "B", Seconds: 1},
		{Algo: "SSSP", Dataset: "Y", Series: "A", Seconds: 3},
		{Algo: "SSSP", Dataset: "Y", Series: "B", Seconds: 6},
	}
	best := BestSeries(ms)
	if best["SSSP/X"] != "B" || best["SSSP/Y"] != "A" {
		t.Errorf("best = %v", best)
	}
	sp := Speedups(ms, "A")
	if sp["SSSP/X"]["B"] != 2 || sp["SSSP/Y"]["B"] != 0.5 {
		t.Errorf("speedups = %v", sp)
	}
}

func TestSortMeasurements(t *testing.T) {
	ms := []Measurement{
		{Algo: "Z", Dataset: "a", Series: "s"},
		{Algo: "A", Dataset: "b", Series: "t"},
		{Algo: "A", Dataset: "b", Series: "s"},
		{Algo: "A", Dataset: "a", Series: "z"},
	}
	SortMeasurements(ms)
	if ms[0].Algo != "A" || ms[0].Dataset != "a" || ms[1].Series != "s" || ms[3].Algo != "Z" {
		t.Errorf("sorted = %v", ms)
	}
}

// TestFigure9ShapeTiny runs the Figure-9 grid on a scaled-down workload
// and asserts the paper's qualitative claim: incremental evaluation beats
// naive on the non-monotonic algorithms.
func TestFigure9ShapeTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	d := tinyDataset()
	wl, err := Prepare("PageRank", d)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := RunMode(wl, runtime.NaiveSync, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	mra, err := RunMode(wl, runtime.MRASyncAsync, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Converged || !mra.Converged {
		t.Fatal("runs did not converge")
	}
	// On any non-trivial graph MRA must not be dramatically slower than
	// naive; the speedup claim itself is asserted at full scale in the
	// bench harness (see EXPERIMENTS.md).
	if mra.Seconds > naive.Seconds*5 {
		t.Errorf("MRA %vs suspiciously slower than naive %vs", mra.Seconds, naive.Seconds)
	}
}

func TestExtraWorkloadSpecs(t *testing.T) {
	specs := extraWorkloads()
	if len(specs) != 6 {
		t.Fatalf("extra grid should cover the six untimed Table-1 programs, got %d", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.name] {
			t.Errorf("duplicate workload %q", s.name)
		}
		seen[s.name] = true
		if s.graph.NumVertices() == 0 || s.graph.NumEdges() == 0 {
			t.Errorf("%s: empty graph", s.name)
		}
		if s.pred == "" || s.source == "" {
			t.Errorf("%s: incomplete spec", s.name)
		}
	}
}

func TestRunModeSSPTiny(t *testing.T) {
	d := tinyDataset()
	for _, algo := range []string{"SSSP", "PageRank"} {
		wl, err := Prepare(algo, d)
		if err != nil {
			t.Fatal(err)
		}
		cfg := fastCfg()
		cfg.Staleness = 2
		m, err := RunMode(wl, runtime.MRASSP, cfg)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !m.Converged {
			t.Errorf("%s under SSP did not converge", algo)
		}
		if m.Flushes <= 0 {
			t.Errorf("%s: no flushes recorded", algo)
		}
		if m.Series != "MRA+SSP" {
			t.Errorf("series = %q", m.Series)
		}
	}
}

func TestRunModeFaultsTiny(t *testing.T) {
	d := tinyDataset()
	wl, err := Prepare("SSSP", d)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg()
	cfg.Faults = "seed=3,sendfail=0.1,stall=4:200us"
	m, err := RunMode(wl, runtime.MRASyncAsync, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Converged {
		t.Error("faulted run did not converge")
	}
	cfg.Faults = "bogus"
	if _, err := RunMode(wl, runtime.MRASyncAsync, cfg); err == nil {
		t.Error("malformed fault spec should fail the run, not be ignored")
	}
}

func TestRecoveryExperimentTiny(t *testing.T) {
	var buf bytes.Buffer
	ms, err := recoveryOn(&buf, fastCfg(), tinyDataset())
	if err != nil {
		t.Fatal(err)
	}
	// 2 algorithms x 3 modes x {clean, crashed, restored}.
	if len(ms) != 18 {
		t.Fatalf("expected 18 measurements, got %d", len(ms))
	}
	for _, m := range ms {
		if strings.HasSuffix(m.Series, "/crashed") {
			continue // aborted by the injected master crash (or beat it)
		}
		if !m.Converged {
			t.Errorf("%s %s did not converge", m.Algo, m.Series)
		}
	}
	if !strings.Contains(buf.String(), "refixpoint=") {
		t.Errorf("report missing time-to-refixpoint:\n%s", buf.String())
	}
}

func TestBetaFinalSurfaced(t *testing.T) {
	// The unified mode on a combining aggregate must surface a β value;
	// a selective one must not.
	d := tinyDataset()
	pr, err := Prepare("PageRank", d)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg()
	cfg.Tau = 100 * time.Microsecond
	m, err := RunMode(pr, runtime.MRASyncAsync, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.BetaFinal <= 0 {
		t.Error("no β surfaced for adaptive PageRank run")
	}
	ss, err := Prepare("SSSP", d)
	if err != nil {
		t.Fatal(err)
	}
	m, err = RunMode(ss, runtime.MRASyncAsync, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if m.BetaFinal != 0 {
		t.Errorf("selective run surfaced β = %v", m.BetaFinal)
	}
}

func TestPolicyMetricsSmoke(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg()
	cfg.Smoke = true
	ms, err := PolicyMetrics(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two algorithms x six modes, every row converged with its merged
	// counter snapshot attached.
	if len(ms) != 12 {
		t.Fatalf("got %d measurements, want 12", len(ms))
	}
	for _, m := range ms {
		if !m.Converged {
			t.Errorf("%s/%s did not converge", m.Algo, m.Series)
		}
		if m.Flushes > 0 && int64(m.Metrics.MergeHistograms("flush.size.dst").Count) != m.Flushes {
			t.Errorf("%s/%s: flush histogram count %d != Flushes %d",
				m.Algo, m.Series, m.Metrics.MergeHistograms("flush.size.dst").Count, m.Flushes)
		}
	}
	out := buf.String()
	for _, want := range []string{"tiny-rmat", "SSSP:", "PageRank:", "MRA+SyncAsync", "hold/rel", "refresh"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// The correlation signals the experiment exists for: the ordered scan
	// should register refresh hits somewhere in the SSSP rows, and the
	// priority threshold hold/release cycles in the PageRank rows.
	var refresh, holds uint64
	for _, m := range ms {
		if m.Algo == "SSSP" {
			refresh += m.Metrics.Counter("sched.refresh.hit")
		}
		if m.Algo == "PageRank" {
			holds += m.Metrics.Counter("sched.hold")
		}
	}
	t.Logf("refresh hits=%d holds=%d", refresh, holds)
}
