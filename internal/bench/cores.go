package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"powerlog/internal/gen"
	plrt "powerlog/internal/runtime"
)

// coresSweep is the per-worker core counts the scaling experiment runs.
var coresSweep = []int{1, 2, 4, 8}

// Cores is the intra-worker scaling experiment (`plbench -exp cores`):
// SSSP and PageRank on LiveJ, two async modes, sweeping the per-worker
// scan parallelism (runtime Config.CoresPerWorker, DESIGN.md §9). Each
// row reports wall time and the speedup over the cores=1 run of the
// same (algo, mode) pair; the header records GOMAXPROCS and NumCPU
// because scaling beyond GOMAXPROCS is concurrency, not parallelism —
// numbers from a 1-CPU box show overhead, not speedup.
func Cores(w io.Writer, cfg RunConfig) ([]Measurement, error) {
	cfg = cfg.orDefaults()
	fmt.Fprintf(w, "Cores: intra-worker subshard-scan scaling (workers=%d GOMAXPROCS=%d NumCPU=%d)\n",
		cfg.Workers, runtime.GOMAXPROCS(0), runtime.NumCPU())
	var d gen.Dataset
	if cfg.Smoke {
		d = gen.TinyDatasets()[0]
	} else {
		var err error
		d, err = gen.DatasetByName("LiveJ")
		if err != nil {
			return nil, err
		}
	}
	modes := []plrt.Mode{plrt.MRAAsync, plrt.MRASyncAsync}
	var out []Measurement
	for _, algo := range []string{"SSSP", "PageRank"} {
		wl, err := Prepare(algo, d)
		if err != nil {
			return nil, err
		}
		for _, mode := range modes {
			base := time.Duration(0)
			for _, cores := range coresSweep {
				c := cfg
				c.Cores = cores
				m, err := RunMode(wl, mode, c)
				if err != nil {
					return nil, err
				}
				m.Series = fmt.Sprintf("%s/cores=%d", mode, cores)
				out = append(out, m)
				el := time.Duration(m.Seconds * float64(time.Second))
				if cores == 1 {
					base = el
				}
				speed := 0.0
				if el > 0 {
					speed = base.Seconds() / el.Seconds()
				}
				fmt.Fprintf(w, "  %-9s %-6s %-14s cores=%d %8.3fs  (%.2fx vs cores=1)  steals=%d parallel_passes=%d\n",
					algo, d.Name, mode, cores, m.Seconds, speed,
					m.Metrics.Counter("scan.steal"), m.Metrics.Counter("scan.parallel.pass"))
			}
		}
	}
	return out, nil
}
