package bench

import (
	"fmt"
	"io"

	"powerlog/internal/gen"
	"powerlog/internal/metrics"
	"powerlog/internal/runtime"
)

// PolicyMetrics runs the six-mode observability table (DESIGN.md §8): for
// one selective workload (SSSP with the ordered scan, which exercises the
// mid-pass refresh) and one combining workload (PageRank with the §5.4
// priority threshold, which exercises hold/release and the adaptive β
// dial), every mode runs once and its merged per-policy counters are
// printed next to the wall time. The point of the table is correlation:
// which policy activity a mode pays for, and what it buys — e.g. refresh
// hits against SSSP wall time, or β band exits against realised flush
// sizes.
func PolicyMetrics(w io.Writer, cfg RunConfig) ([]Measurement, error) {
	dsName := "LiveJ"
	ds, err := gen.DatasetByName(dsName)
	if err != nil {
		return nil, err
	}
	if cfg.Smoke {
		ds = gen.TinyDatasets()[0]
		dsName = ds.Name
	}
	fmt.Fprintf(w, "PolicyMetrics: per-policy counters across the six modes (%s)\n", dsName)

	modes := []runtime.Mode{runtime.NaiveSync, runtime.MRASync, runtime.MRAAsync,
		runtime.MRAAAP, runtime.MRASyncAsync, runtime.MRASSP}
	var out []Measurement
	for _, spec := range []struct {
		algo  string
		tweak func(*RunConfig)
	}{
		{algo: "SSSP", tweak: func(c *RunConfig) { c.OrderedScan = true }},
		{algo: "PageRank", tweak: func(c *RunConfig) { c.PriorityThreshold = 1e-7 }},
	} {
		wl, err := Prepare(spec.algo, ds)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "  %s:\n", spec.algo)
		fmt.Fprintf(w, "    %-16s %9s %7s %13s %8s %15s %11s %15s %7s %5s\n",
			"mode", "wall", "rounds", "hold/rel", "refresh", "flush p50/p99", "β exit/clmp", "straggler(µs)", "resend", "dup")
		for _, mode := range modes {
			c := cfg
			spec.tweak(&c)
			m, err := RunMode(wl, mode, c)
			if err != nil {
				return nil, err
			}
			out = append(out, m)
			fmt.Fprintf(w, "    %-16s %8.3fs %7d %s\n", m.Series, m.Seconds, m.Rounds, policyRow(m.Metrics))
		}
	}
	if err := sessionCounters(w, ds, cfg); err != nil {
		return nil, err
	}
	return out, nil
}

// sessionCounters prints the engine-lifecycle counters (DESIGN.md §10):
// one session per session-capable mode runs an SSSP fixpoint and applies
// a single small mixed mutation batch, and the master's merged registry
// shows how many fixpoints the session converged ("engine.epoch"), how
// many keys the Apply reseeded ("delta.reseed.keys"), and how many the
// deletes' invalidation cone erased ("delete.invalidate.keys").
func sessionCounters(w io.Writer, ds gen.Dataset, cfg RunConfig) error {
	base := ds.Build(true)
	fmt.Fprintf(w, "  Session (SSSP, one mixed 1%% batch):\n")
	fmt.Fprintf(w, "    %-16s %12s %17s %21s\n", "mode", "engine.epoch", "delta.reseed.keys", "delete.invalidate.keys")
	stream, _, err := gen.ChurnStream(base, "mixed", 0.01, 1, ds.Seed)
	if err != nil {
		return err
	}
	for _, mode := range sessionModes {
		rc, err := cfg.engineConfig(mode)
		if err != nil {
			return err
		}
		plan, err := churnPlan("SSSP", base.NumVertices(), base.Edges(), true)
		if err != nil {
			return err
		}
		s, err := runtime.Open(plan, rc)
		if err != nil {
			return err
		}
		res, err := s.Apply(runtime.Mutation{Inserts: stream[0].Inserts, Deletes: stream[0].Deletes})
		if err != nil {
			s.Close()
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}
		c := res.Master.Counters
		fmt.Fprintf(w, "    %-16s %12d %17d %21d\n",
			mode, c["engine.epoch"], c["delta.reseed.keys"], c["delete.invalidate.keys"])
	}
	return nil
}

// policyRow renders one mode's merged counters in the table's column
// order. Counters a mode never registers print as zeros — the absence is
// itself the signal (e.g. no β activity outside the unified mode).
func policyRow(s metrics.Snapshot) string {
	flush := s.MergeHistograms("flush.size.dst")
	straggler := s.Histograms["barrier.straggler.wait_us"]
	return fmt.Sprintf("%6d/%-6d %8d %7.0f/%-7.0f %5d/%-5d %7.0f/%-7.0f %7d %5d",
		s.Counter("sched.hold"), s.Counter("sched.release"),
		s.Counter("sched.refresh.hit"),
		flush.Quantile(0.5), flush.Quantile(0.99),
		s.Counter("flush.beta.band.exit"),
		s.Counter("flush.beta.clamp.floor")+s.Counter("flush.beta.clamp.ceil"),
		straggler.Quantile(0.5), straggler.Quantile(0.99),
		s.Counter("barrier.marker.resend"), s.Counter("recv.dup.batch"))
}
