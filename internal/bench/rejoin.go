package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"powerlog/internal/gen"
	"powerlog/internal/runtime"
)

// Rejoin measures the elastic-membership layer (DESIGN.md §11): a worker
// crashed silently mid-fixpoint is detected by the liveness probe,
// replaced on a reset endpoint, and re-joined through a membership fence
// while the survivors keep their state. For one selective workload
// (SSSP — survivor replay, Theorem 3) and one combining workload
// (PageRank — rollback to a consistent cut) each non-barriered mode runs
// four times:
//
//	clean     no faults, the baseline wall time
//	livejoin  crashw fault, live re-join; the fence latency (orphan
//	          verdict to Release) is the time-to-recover, and the wall
//	          time relative to clean is the throughput dip
//	crashed   master-abort fault with checkpoints on (the PR-4 baseline)
//	restart   warm-start from the crashed run's snapshots; its wall time
//	          is what restart-the-world pays to re-reach the fixpoint
//
// The headline comparison is time-to-recover: the live fence (ms) versus
// the restart re-fixpoint (s).
func Rejoin(w io.Writer, cfg RunConfig) ([]Measurement, error) {
	d, err := gen.DatasetByName("LiveJ")
	if err != nil {
		return nil, err
	}
	if cfg.Smoke {
		d = gen.TinyDatasets()[0]
	}
	return rejoinOn(w, cfg, d)
}

func rejoinOn(w io.Writer, cfg RunConfig, d gen.Dataset) ([]Measurement, error) {
	fmt.Fprintf(w, "Rejoin: crashed worker re-joins live vs restart-the-world (dataset %s)\n", d.Name)
	if cfg.CollectTimeout <= 0 {
		cfg.CollectTimeout = 250 * time.Millisecond
	}
	// Only the non-barriered MRA family has live re-join; the BSP verdict
	// protocol has no fence point mid-superstep and aborts on loss.
	modes := []runtime.Mode{runtime.MRAAsync, runtime.MRASyncAsync, runtime.MRASSP}
	var out []Measurement
	for _, algo := range []string{"SSSP", "PageRank"} {
		wl, err := Prepare(algo, d)
		if err != nil {
			return nil, err
		}
		for _, mode := range modes {
			clean, err := RunMode(wl, mode, cfg)
			if err != nil {
				return nil, err
			}
			clean.Series = mode.String() + "/clean"
			out = append(out, clean)

			// Live re-join: the worker dies without a Stop handshake.
			// Checkpoints stay OFF here — a combining fleet rolls back to
			// the ΔX¹ seed inside the fence (the rollback worst case), and
			// a selective fleet repairs by survivor replay alone. Leaving
			// episodic checkpoints on would charge the live run a
			// stop-the-world cut per master round, which is the restart
			// baseline's cost model, not this one's.
			liveCfg := cfg
			liveCfg.Faults = "seed=9,crashw=1:6"
			live, res, err := runModeResult(wl, mode, liveCfg)
			if err != nil {
				return nil, err
			}
			live.Series = mode.String() + "/livejoin"
			// Fold the master's membership trail into the measurement so
			// the counters and the fence-latency histogram survive into
			// the recorded rows.
			live.Metrics = live.Metrics.Merge(res.Master)
			out = append(out, live)
			joins := res.Master.Counters["master.member.join"]
			fence := res.Master.Histograms["master.member.handoff_us"]

			// Restart-the-world baseline: abort the whole fleet at a
			// master round, then re-reach the fixpoint from the snapshots.
			restartDir, err := os.MkdirTemp("", "plbench-rejoin-restart-*")
			if err != nil {
				return nil, err
			}
			crashCfg := cfg
			crashCfg.SnapshotDir = restartDir
			crashCfg.SnapshotEvery = 1
			crashCfg.Faults = "seed=7,crash=6"
			crashed, err := RunMode(wl, mode, crashCfg)
			if err != nil {
				os.RemoveAll(restartDir)
				return nil, err
			}
			crashed.Series = mode.String() + "/crashed"
			out = append(out, crashed)

			restartCfg := cfg
			restartCfg.RestoreDir = restartDir
			restart, err := RunMode(wl, mode, restartCfg)
			os.RemoveAll(restartDir)
			if err != nil {
				return nil, err
			}
			restart.Series = mode.String() + "/restart"
			out = append(out, restart)

			note := ""
			if joins == 0 {
				note = "  [converged before the injected crash]"
			}
			fmt.Fprintf(w, "  %-9s %-14s clean=%7.3fs  live=%7.3fs (dip=%.2fx, joins=%d, fence=%.1fms)  restart=%7.3fs (%.2fx clean)%s\n",
				algo, mode.String(), clean.Seconds, live.Seconds, live.Seconds/clean.Seconds,
				joins, float64(fence.Sum)/1e3, restart.Seconds, restart.Seconds/clean.Seconds, note)
		}
	}
	return out, nil
}
