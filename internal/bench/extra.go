package bench

import (
	"fmt"
	"io"

	"powerlog/internal/analyzer"
	"powerlog/internal/compiler"
	"powerlog/internal/edb"
	"powerlog/internal/gen"
	"powerlog/internal/graph"
	"powerlog/internal/parser"
	"powerlog/internal/progs"
	"powerlog/internal/runtime"
)

// extraSpec describes one beyond-the-paper workload.
type extraSpec struct {
	name    string
	dataset string
	pred    string // join predicate the graph registers under
	source  string
	graph   *graph.Graph
}

func extraWorkloads() []extraSpec {
	simGraph := func() *graph.Graph {
		g := gen.Uniform(10000, 80000, 1, 501)
		gen.NormalizeWeightsByOut(g, 1)
		return g
	}
	return []extraSpec{
		{"Computing Paths in DAG", "dag-20k", "dagedge", progs.PathsDAG, gen.DAG(20000, 3, 100, 0, 502)},
		{"Cost", "dag-20k", "dagedge", progs.Cost, gen.DAG(20000, 3, 100, 10, 503)},
		{"Viterbi Algorithm", "trellis-200x40", "trans", progs.Viterbi, gen.Trellis(200, 40, 504)},
		{"SimRank", "pairgraph-10k", "pairedge", progs.SimRank, simGraph()},
		{"Lowest Common Ancestor", "uniform-20k", "parent", progs.LCA, gen.Uniform(20000, 100000, 0, 505)},
		{"APSP", "uniform-300", "edge", progs.APSP, gen.Uniform(300, 3000, 20, 506)},
	}
}

// Extra runs the six Table-1 programs the paper's §6.3 does not time
// (Computing Paths in DAG, Cost, Viterbi, SimRank, LCA, APSP) end-to-end
// on generated workloads — beyond-the-paper evidence that the whole
// catalogue is executable, including the pair-keyed programs on sparse
// MonoTable shards.
func Extra(w io.Writer, cfg RunConfig) ([]Measurement, error) {
	fmt.Fprintf(w, "Extra: the remaining Table-1 programs end-to-end\n")
	cfg = cfg.orDefaults()
	var out []Measurement
	for _, spec := range extraWorkloads() {
		prog, err := parser.Parse(spec.source)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.name, err)
		}
		info, err := analyzer.Analyze(prog)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.name, err)
		}
		db := edb.NewDB()
		db.SetGraph(spec.pred, spec.graph)
		plan, err := compiler.Compile(info, db, compiler.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.name, err)
		}
		for _, mode := range []runtime.Mode{runtime.MRASync, runtime.MRASyncAsync} {
			res, err := runtime.Run(plan, runtime.Config{
				Workers: cfg.Workers, Mode: mode,
				Tau: cfg.Tau, CheckInterval: cfg.CheckInterval, MaxWall: cfg.MaxWall,
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", spec.name, mode, err)
			}
			m := Measurement{
				Algo: spec.name, Dataset: spec.dataset, Series: mode.String(),
				Seconds: res.Elapsed.Seconds(), Rounds: res.Rounds,
				Messages: res.MessagesSent, Converged: res.Converged,
			}
			out = append(out, m)
			fmt.Fprintf(w, "  %-22s %-16s %-14s %8.3fs keys=%d conv=%v\n",
				spec.name, spec.dataset, m.Series, m.Seconds, len(res.Values), m.Converged)
		}
	}
	return out, nil
}
