// Package bench is the experiment harness that regenerates the paper's
// evaluation: Table 1 (condition-check catalogue), Table 2 (datasets),
// Figure 1 (sync-vs-async motivation), Figure 9 (overall comparison),
// Figure 10 (factor analysis incl. graph-system comparators), and
// Figure 11 (adaptive engines). Absolute times differ from the paper's
// 17-node Aliyun cluster, but the shapes — who wins, by what factor,
// where the crossovers sit — are the reproduction targets recorded in
// EXPERIMENTS.md.
package bench

import (
	"fmt"
	"time"

	"powerlog/internal/analyzer"
	"powerlog/internal/compiler"
	"powerlog/internal/edb"
	"powerlog/internal/fault"
	"powerlog/internal/gen"
	"powerlog/internal/graph"
	"powerlog/internal/metrics"
	"powerlog/internal/parser"
	"powerlog/internal/progs"
	"powerlog/internal/runtime"
)

// Algorithms evaluated in §6.3, in the paper's order.
var Algorithms = []string{"CC", "SSSP", "PageRank", "Adsorption", "Katz", "BP"}

// Workload couples an algorithm with a dataset and carries the prepared
// plan plus the raw inputs the graph-system comparators need.
type Workload struct {
	Algo    string
	Dataset gen.Dataset

	Plan  *compiler.Plan
	Graph *graph.Graph // the (possibly normalised) propagation graph

	// Attribute columns for Adsorption / BP comparators.
	Inj, Pi, Pc, Initial, H []float64

	// KatzAlpha is the attenuation used for the Katz workload (scaled to
	// the graph's spectral radius; see Prepare).
	KatzAlpha float64
}

// datasetSeed derives per-(algo,dataset) attribute seeds.
func datasetSeed(d gen.Dataset, salt int64) int64 { return d.Seed*1000 + salt }

// Prepare builds the workload: dataset graph, attribute relations, and
// the compiled plan.
func Prepare(algo string, d gen.Dataset) (*Workload, error) {
	w := &Workload{Algo: algo, Dataset: d}
	db := edb.NewDB()
	var src string
	switch algo {
	case "CC":
		w.Graph = d.Build(false)
		db.SetGraph("edge", w.Graph)
		src = progs.CC
	case "SSSP":
		w.Graph = d.Build(true)
		db.SetGraph("edge", w.Graph)
		src = progs.SSSP
	case "PageRank":
		w.Graph = d.Build(false)
		db.SetGraph("edge", w.Graph)
		src = progs.PageRank
	case "Katz":
		w.Graph = d.Build(false)
		db.SetGraph("edge", w.Graph)
		// Scale the attenuation below the spectral bound so the metric is
		// finite on skewed graphs (Katz 1953 requires α < 1/λ_max); 0.9/λ
		// keeps the series deep enough (≈60 effective hops) to exercise
		// the engines the way the paper's workload does.
		w.KatzAlpha = 0.1
		if lambda := gen.SpectralRadiusEstimate(w.Graph, 12); lambda > 0 && 0.9/lambda < w.KatzAlpha {
			w.KatzAlpha = 0.9 / lambda
		}
		src = progs.KatzWithAlpha(w.KatzAlpha)
	case "Adsorption":
		w.Graph = normalizedCopy(d.Build(true))
		n := w.Graph.NumVertices()
		w.Inj = ones(n)
		w.Pi = gen.VertexAttr(n, 0.1, 0.5, datasetSeed(d, 1))
		w.Pc = gen.VertexAttr(n, 0.2, 0.8, datasetSeed(d, 2))
		db.SetGraph("A", w.Graph)
		db.AddRelation(column("pi", w.Pi))
		db.AddRelation(column("pc", w.Pc))
		src = progs.Adsorption
	case "BP":
		w.Graph = normalizedCopy(d.Build(true))
		n := w.Graph.NumVertices()
		w.Initial = gen.VertexAttr(n, 0.1, 1, datasetSeed(d, 3))
		w.H = gen.VertexAttr(n, 0.2, 0.9, datasetSeed(d, 4))
		db.SetGraph("E", w.Graph)
		db.AddRelation(column("I", w.Initial))
		db.AddRelation(column("H", w.H))
		src = progs.BP
	default:
		return nil, fmt.Errorf("bench: unknown algorithm %q", algo)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := analyzer.Analyze(prog)
	if err != nil {
		return nil, err
	}
	w.Plan, err = compiler.Compile(info, db, compiler.Options{})
	if err != nil {
		return nil, err
	}
	return w, nil
}

// normalizedCopy clones a weighted graph with out-weight sums capped at 1
// (sub-stochastic propagation), leaving the cached original untouched.
func normalizedCopy(g *graph.Graph) *graph.Graph {
	edges := g.Edges()
	cp, err := graph.FromEdges(g.NumVertices(), edges, true)
	if err != nil {
		panic("bench: copy of a valid graph cannot fail: " + err.Error())
	}
	gen.NormalizeWeightsByOut(cp, 1)
	return cp
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func column(name string, vals []float64) *edb.Relation {
	r := edb.NewRelation(name, 2)
	for i, v := range vals {
		r.Add(float64(i), v)
	}
	return r
}

// RunConfig are the harness's engine settings.
type RunConfig struct {
	Workers           int
	Tau               time.Duration
	CheckInterval     time.Duration
	MaxWall           time.Duration
	PriorityThreshold float64

	// CollectTimeout is the master's per-worker liveness deadline
	// (runtime Config.CollectTimeout); 0 keeps the runtime default. The
	// rejoin experiment shortens it so a crashed worker is declared lost
	// in milliseconds rather than at the MaxWall fallback.
	CollectTimeout time.Duration

	// PerfectNetwork disables the cluster-fabric emulation (tests use
	// it); by default experiment runs emulate the paper's 1.5 Gbps NIC
	// as a 10M KV/s serialisation cost on each worker's comm thread
	// (latency pipelines on real fabrics, so only bandwidth is charged).
	PerfectNetwork bool

	// OrderedScan turns on the delta-stepping-style best-first schedule
	// for selective aggregates (the ablation experiment sweeps it).
	OrderedScan bool

	// Staleness is the MRASSP superstep bound (0 = runtime default).
	Staleness int

	// Cores is the per-worker scan parallelism (runtime
	// Config.CoresPerWorker): 0 = runtime default (min(GOMAXPROCS, 8)),
	// 1 = the exact serial pass. The cores experiment sweeps it.
	Cores int

	// Faults is a fault-injection spec (fault.ParseSpec syntax, e.g.
	// "seed=42,sendfail=0.1,stall=5:300us") applied to every engine run;
	// empty disables injection. The recovery experiment sets it per run.
	Faults string

	// Checkpoint plumbing for the recovery experiment: SnapshotDir and
	// SnapshotEvery enable periodic checkpoints, RestoreDir warm-starts
	// the run from an earlier run's snapshots.
	SnapshotDir   string
	SnapshotEvery int
	RestoreDir    string

	// Smoke shrinks an experiment to its tiny-dataset variant — seconds
	// instead of minutes, for CI and `make metrics-smoke`. Experiments
	// that support it (policymetrics) swap the Table-2 stand-ins for
	// gen.TinyDatasets.
	Smoke bool
}

func (c RunConfig) orDefaults() RunConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Tau <= 0 {
		c.Tau = time.Millisecond
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = 2 * time.Millisecond
	}
	if c.MaxWall <= 0 {
		c.MaxWall = 5 * time.Minute
	}
	return c
}

// Measurement is one timed engine run.
type Measurement struct {
	Algo, Dataset, Series string
	Seconds               float64
	Rounds                int
	Messages              int64
	Converged             bool

	// Flushes counts data messages (batches); Messages/Flushes is the
	// realised mean batch size — the quantity the flush policies steer.
	Flushes int64
	// StragglerWait sums the time workers spent blocked at the SSP
	// staleness gate (zero for other modes).
	StragglerWait time.Duration
	// BetaFinal is the mean over workers of the last sampled adaptive
	// buffer size β (unified mode with combining aggregates; else 0).
	BetaFinal float64

	// Metrics is the merge of every worker's per-policy metric snapshot
	// (counters summed, histograms bucket-wise) — the raw material of the
	// policymetrics experiment's table.
	Metrics metrics.Snapshot
}

// engineConfig maps the harness settings onto a runtime.Config for one
// mode (shared by RunMode and the session-based churn experiment).
func (c RunConfig) engineConfig(mode runtime.Mode) (runtime.Config, error) {
	c = c.orDefaults()
	rc := runtime.Config{
		Workers:           c.Workers,
		Mode:              mode,
		Tau:               c.Tau,
		CheckInterval:     c.CheckInterval,
		MaxWall:           c.MaxWall,
		CollectTimeout:    c.CollectTimeout,
		PriorityThreshold: c.PriorityThreshold,
		OrderedScan:       c.OrderedScan,
		Staleness:         c.Staleness,
		CoresPerWorker:    c.Cores,
		SnapshotDir:       c.SnapshotDir,
		SnapshotEvery:     c.SnapshotEvery,
		RestoreDir:        c.RestoreDir,
	}
	if c.Faults != "" {
		spec, err := fault.ParseSpec(c.Faults)
		if err != nil {
			return runtime.Config{}, fmt.Errorf("bench: -faults: %w", err)
		}
		rc.Fault = fault.New(spec)
	}
	if !c.PerfectNetwork {
		rc.Network = runtime.NetworkProfile{KVsPerSecond: 10e6}
	}
	return rc, nil
}

// RunMode times one engine mode on a prepared workload.
func RunMode(w *Workload, mode runtime.Mode, cfg RunConfig) (Measurement, error) {
	m, _, err := runModeResult(w, mode, cfg)
	return m, err
}

// runModeResult is RunMode plus the raw engine Result, for experiments
// that read master-side state (the rejoin experiment's membership
// counters and fence-latency histogram).
func runModeResult(w *Workload, mode runtime.Mode, cfg RunConfig) (Measurement, *runtime.Result, error) {
	rc, err := cfg.engineConfig(mode)
	if err != nil {
		return Measurement{}, nil, err
	}
	res, err := runtime.Run(w.Plan, rc)
	if err != nil {
		return Measurement{}, nil, err
	}
	m := Measurement{
		Algo:      w.Algo,
		Dataset:   w.Dataset.Name,
		Series:    mode.String(),
		Seconds:   res.Elapsed.Seconds(),
		Rounds:    res.Rounds,
		Messages:  res.MessagesSent,
		Converged: res.Converged,
		Flushes:   res.Flushes,
	}
	betaSum, betaN := 0.0, 0
	for _, ws := range res.Workers {
		m.StragglerWait += ws.StragglerWait
		m.Metrics = m.Metrics.Merge(ws.Metrics)
		if len(ws.Beta) > 0 {
			betaSum += ws.Beta[len(ws.Beta)-1]
			betaN++
		}
	}
	if betaN > 0 {
		m.BetaFinal = betaSum / float64(betaN)
	}
	return m, res, nil
}
