package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"powerlog/internal/metrics"
	"powerlog/internal/server"
)

// Serve is the closed-loop load driver for the serving front end
// (plserved's internals run in-process against a real TCP listener, so
// the measured path includes the HTTP stack). One warm-up query parks a
// fixpoint per algorithm, then a small fleet of closed-loop clients
// issues request mixes sweeping the mutate share — 0% (lookups only),
// 5%, and 20% — and the driver reports per-class throughput and tail
// latency. A mutate re-fixpoints the parked session incrementally, so
// the sweep exposes how much incremental re-evaluation under the
// session-busy shed policy costs the read path's p99. The run ends with
// a /metrics scrape that must pass the exposition conformance check.
func Serve(w io.Writer, cfg RunConfig) ([]Measurement, error) {
	cfg = cfg.orDefaults()
	dataset := "tiny-rmat"
	clients := 4
	perMix := 3 * time.Second
	if cfg.Smoke {
		dataset = "tiny-chain"
		clients = 2
		perMix = time.Second
	}
	mixes := []float64{0, 0.05, 0.20}

	srv := server.New(server.Config{
		Workers:      cfg.Workers,
		Rate:         1e6, // the driver is closed-loop; shed only on busy
		MaxFixpoints: 2,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	defer func() {
		hs.Close()
		srv.Close()
	}()

	fmt.Fprintf(w, "Serve: closed-loop load against plserved in-process (%s, %d clients, %v per mix)\n",
		dataset, clients, perMix)
	fmt.Fprintf(w, "  %-10s %-8s %9s %11s %11s %11s %8s\n",
		"mix", "class", "requests", "thru/s", "p50", "p99", "shed")

	cli := &http.Client{Timeout: time.Minute}
	post := func(path string, body any) (int, error) {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		resp, err := cli.Post(base+path, "application/json", bytes.NewReader(b))
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	// Warm-up: park one SSSP fixpoint (the mix workload's session).
	type qreq struct {
		Tenant  string `json:"tenant"`
		Dataset string `json:"dataset"`
		Algo    string `json:"algo"`
		Mode    string `json:"mode"`
	}
	code, err := post("/v1/query", qreq{Tenant: "bench", Dataset: dataset, Algo: "SSSP", Mode: "unified"})
	if err != nil {
		return nil, fmt.Errorf("bench: serve: warm-up query: %w", err)
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("bench: serve: warm-up query status %d", code)
	}

	type mreq struct {
		Tenant  string `json:"tenant"`
		Dataset string `json:"dataset"`
		Algo    string `json:"algo"`
		Mode    string `json:"mode"`
		Inserts []struct {
			Src int32   `json:"src"`
			Dst int32   `json:"dst"`
			W   float64 `json:"w"`
		} `json:"inserts"`
	}
	mkMutate := func(rng *rand.Rand) mreq {
		var m mreq
		m.Tenant, m.Dataset, m.Algo, m.Mode = "bench", dataset, "SSSP", "unified"
		m.Inserts = make([]struct {
			Src int32   `json:"src"`
			Dst int32   `json:"dst"`
			W   float64 `json:"w"`
		}, 1)
		m.Inserts[0].Src = int32(rng.Intn(200))
		m.Inserts[0].Dst = int32(rng.Intn(200))
		m.Inserts[0].W = 1 + rng.Float64()*10
		return m
	}

	var out []Measurement
	for _, mix := range mixes {
		// Per-class latency records, appended under lat.mu by every client.
		var lat struct {
			mu             sync.Mutex
			lookup, mutate []time.Duration
			shed           int
		}
		stop := time.Now().Add(perMix)
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(1000*mix) + int64(c)))
				for time.Now().Before(stop) {
					if rng.Float64() < mix {
						m := mkMutate(rng)
						t0 := time.Now()
						code, err := post("/v1/mutate", m)
						d := time.Since(t0)
						if err != nil {
							errs <- err
							return
						}
						lat.mu.Lock()
						switch code {
						case http.StatusOK:
							lat.mutate = append(lat.mutate, d)
						case http.StatusServiceUnavailable, http.StatusTooManyRequests:
							lat.shed++
						default:
							lat.mu.Unlock()
							errs <- fmt.Errorf("mutate status %d", code)
							return
						}
						lat.mu.Unlock()
					} else {
						key := rng.Intn(200)
						t0 := time.Now()
						resp, err := cli.Get(fmt.Sprintf("%s/v1/result?dataset=%s&algo=SSSP&mode=unified&key=%d",
							base, dataset, key))
						d := time.Since(t0)
						if err != nil {
							errs <- err
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
							errs <- fmt.Errorf("lookup status %d", resp.StatusCode)
							return
						}
						lat.mu.Lock()
						lat.lookup = append(lat.lookup, d)
						lat.mu.Unlock()
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return nil, fmt.Errorf("bench: serve: mix %.0f%%: %w", mix*100, err)
		}

		mixLabel := fmt.Sprintf("mutate=%g%%", mix*100)
		for _, cl := range []struct {
			name string
			ds   []time.Duration
		}{{"lookup", lat.lookup}, {"mutate", lat.mutate}} {
			if len(cl.ds) == 0 {
				continue
			}
			sort.Slice(cl.ds, func(i, j int) bool { return cl.ds[i] < cl.ds[j] })
			p50 := cl.ds[len(cl.ds)/2]
			p99 := cl.ds[len(cl.ds)*99/100]
			thru := float64(len(cl.ds)) / perMix.Seconds()
			fmt.Fprintf(w, "  %-10s %-8s %9d %11.1f %11v %11v %8d\n",
				mixLabel, cl.name, len(cl.ds), thru, p50.Round(time.Microsecond), p99.Round(time.Microsecond), lat.shed)
			out = append(out, Measurement{
				Algo: "SSSP", Dataset: dataset,
				Series:  fmt.Sprintf("serve/%s/%s", mixLabel, cl.name),
				Seconds: p99.Seconds(), Rounds: len(cl.ds), Converged: true,
			})
		}
	}

	// Conformance scrape: the exposition must parse, and the serving
	// histograms must be populated by the run above.
	resp, err := cli.Get(base + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("bench: serve: scrape: %w", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("bench: serve: scrape read: %w", err)
	}
	if err := metrics.CheckExposition(body); err != nil {
		return nil, fmt.Errorf("bench: serve: /metrics fails exposition conformance: %w", err)
	}
	for _, want := range []string{"powerlog_serve_lookup_latency_us_count", "powerlog_serve_query_latency_us_count"} {
		if !strings.Contains(string(body), want) {
			return nil, fmt.Errorf("bench: serve: /metrics missing %s", want)
		}
	}
	fmt.Fprintf(w, "  /metrics: %d bytes, exposition conformance ok\n", len(body))
	return out, nil
}
