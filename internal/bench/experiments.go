package bench

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"powerlog/internal/checker"
	"powerlog/internal/gen"
	"powerlog/internal/graphsys"
	"powerlog/internal/progs"
	"powerlog/internal/runtime"
)

// Experiments lists the regenerable experiment ids. "ablation" is not a
// paper figure: it sweeps this implementation's own design knobs
// (DESIGN.md §5) — the delta-stepping-style ordered scan and the §5.4
// priority threshold.
var Experiments = []string{"table1", "table2", "fig1", "fig9", "fig10", "fig11", "ablation", "ssp", "extra", "recovery", "rejoin", "policymetrics", "cores", "churn", "serve"}

// RunExperiment dispatches by experiment id and writes the rows to w.
func RunExperiment(id string, w io.Writer, cfg RunConfig) error {
	switch id {
	case "table1":
		return Table1(w)
	case "table2":
		return Table2(w)
	case "fig1":
		_, err := Figure1(w, cfg)
		return err
	case "fig9":
		_, err := Figure9(w, cfg, Algorithms, datasetNames())
		return err
	case "fig10":
		_, err := Figure10(w, cfg)
		return err
	case "fig11":
		_, err := Figure11(w, cfg)
		return err
	case "ablation":
		_, err := Ablation(w, cfg)
		return err
	case "ssp":
		_, err := SSP(w, cfg)
		return err
	case "extra":
		_, err := Extra(w, cfg)
		return err
	case "recovery":
		_, err := Recovery(w, cfg)
		return err
	case "rejoin":
		_, err := Rejoin(w, cfg)
		return err
	case "policymetrics":
		_, err := PolicyMetrics(w, cfg)
		return err
	case "cores":
		_, err := Cores(w, cfg)
		return err
	case "churn":
		_, err := Churn(w, cfg)
		return err
	case "serve":
		_, err := Serve(w, cfg)
		return err
	default:
		return fmt.Errorf("bench: unknown experiment %q (have %v)", id, Experiments)
	}
}

func datasetNames() []string {
	var names []string
	for _, d := range gen.Datasets() {
		names = append(names, d.Name)
	}
	return names
}

// Table1 reproduces the condition-check catalogue: every program is run
// through the automatic checker; twelve must pass, CommNet and
// GCN-Forward must fail.
func Table1(w io.Writer) error {
	fmt.Fprintf(w, "Table 1: MRA condition check over the program catalogue\n")
	fmt.Fprintf(w, "%-26s %-6s %-9s %-22s %-22s\n", "Program", "Agg", "MRA sat.", "P1", "P2")
	for _, p := range progs.Catalog() {
		rep, _, err := checker.CheckSource(p.Source)
		if err != nil {
			return fmt.Errorf("%s: %w", p.Name, err)
		}
		sat := "yes"
		if !rep.Satisfied {
			sat = "no"
		}
		fmt.Fprintf(w, "%-26s %-6s %-9s %-22v %-22v\n",
			p.Name, rep.Agg, sat, rep.P1.Verdict, rep.P2.Verdict)
		if rep.Satisfied != p.ExpectSat {
			return fmt.Errorf("%s: checker verdict %v diverges from Table 1 (%v)", p.Name, rep.Satisfied, p.ExpectSat)
		}
	}
	return nil
}

// Table2 prints the dataset registry: the paper's six graphs and their
// synthetic stand-ins.
func Table2(w io.Writer) error {
	fmt.Fprintf(w, "Table 2: datasets (paper original → synthetic stand-in)\n")
	fmt.Fprintf(w, "%-8s %-12s %13s %13s | %10s %10s  %s\n",
		"Name", "Original", "orig |V|", "orig |E|", "|V|", "|E|", "generator")
	for _, d := range gen.Datasets() {
		g := d.Build(false)
		fmt.Fprintf(w, "%-8s %-12s %13d %13d | %10d %10d  %s\n",
			d.Name, d.Original, d.OrigV, d.OrigE, g.NumVertices(), g.NumEdges(), d.Kind)
	}
	return nil
}

// Figure1 reproduces the motivation: neither sync nor async wins
// consistently. (a) SSSP and PageRank on LiveJ; (b) SSSP on Wiki and
// Arabic. Series: sync engine vs async engine.
func Figure1(w io.Writer, cfg RunConfig) ([]Measurement, error) {
	fmt.Fprintf(w, "Figure 1: sync vs async across algorithms and datasets\n")
	var out []Measurement
	runPair := func(algo, ds string) error {
		d, err := gen.DatasetByName(ds)
		if err != nil {
			return err
		}
		wl, err := Prepare(algo, d)
		if err != nil {
			return err
		}
		for _, mode := range []runtime.Mode{runtime.MRASync, runtime.MRAAsync} {
			m, err := RunMode(wl, mode, cfg)
			if err != nil {
				return err
			}
			out = append(out, m)
			fmt.Fprintf(w, "  %-9s %-7s %-14s %8.3fs\n", algo, ds, m.Series, m.Seconds)
		}
		return nil
	}
	for _, p := range [][2]string{{"SSSP", "LiveJ"}, {"PageRank", "LiveJ"}, {"SSSP", "Wiki"}, {"SSSP", "Arabic"}} {
		if err := runPair(p[0], p[1]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// figure9Modes maps each algorithm to the engine configurations modelling
// the paper's comparison systems: monotonic programs run incrementally on
// every system (SociaLite/BigDatalog sync, Myria async); the
// non-monotonic four fall back to naive evaluation everywhere except
// PowerLog (§6.3).
func figure9Modes(algo string) []runtime.Mode {
	switch algo {
	case "CC", "SSSP":
		return []runtime.Mode{runtime.MRASync, runtime.MRAAsync, runtime.MRASyncAsync}
	default:
		return []runtime.Mode{runtime.NaiveSync, runtime.MRASyncAsync}
	}
}

// Figure9 reproduces the overall comparison over six algorithms and six
// datasets.
func Figure9(w io.Writer, cfg RunConfig, algos, datasets []string) ([]Measurement, error) {
	fmt.Fprintf(w, "Figure 9: overall performance (columns = engine configurations modelling SociaLite/BigDatalog [sync], Myria [async], PowerLog)\n")
	var out []Measurement
	for _, algo := range algos {
		for _, ds := range datasets {
			d, err := gen.DatasetByName(ds)
			if err != nil {
				return nil, err
			}
			wl, err := Prepare(algo, d)
			if err != nil {
				return nil, err
			}
			base := -1.0
			for _, mode := range figure9Modes(algo) {
				m, err := RunMode(wl, mode, cfg)
				if err != nil {
					return nil, err
				}
				out = append(out, m)
				if base < 0 {
					base = m.Seconds
				}
				fmt.Fprintf(w, "  %-10s %-7s %-14s %8.3fs  (%5.1fx vs first)\n",
					algo, ds, m.Series, m.Seconds, base/m.Seconds)
			}
		}
	}
	return out, nil
}

// figure10Datasets are the three large graphs of §6.4.
var figure10Datasets = []string{"Wiki", "Web", "Arabic"}

// Figure10 reproduces the factor analysis: Naive+Sync vs MRA+Sync vs
// MRA+Async vs MRA+SyncAsync, plus the hand-coded graph-system
// comparators (PowerGraph for CC/SSSP, Maiter for PageRank, Adsorption,
// Katz, and Prom for BP).
func Figure10(w io.Writer, cfg RunConfig) ([]Measurement, error) {
	fmt.Fprintf(w, "Figure 10: performance gain from MRA evaluation and sync-async execution\n")
	cfg = cfg.orDefaults()
	var out []Measurement
	modes := []runtime.Mode{runtime.NaiveSync, runtime.MRASync, runtime.MRAAsync, runtime.MRASyncAsync}
	for _, algo := range Algorithms {
		for _, ds := range figure10Datasets {
			d, err := gen.DatasetByName(ds)
			if err != nil {
				return nil, err
			}
			wl, err := Prepare(algo, d)
			if err != nil {
				return nil, err
			}
			naive := -1.0
			for _, mode := range modes {
				m, err := RunMode(wl, mode, cfg)
				if err != nil {
					return nil, err
				}
				if mode == runtime.NaiveSync {
					naive = m.Seconds
				}
				out = append(out, m)
				fmt.Fprintf(w, "  %-10s %-6s %-14s %8.3fs  (%5.1fx vs naive)\n",
					algo, ds, m.Series, m.Seconds, naive/m.Seconds)
			}
			m, err := RunComparator(wl, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, m)
			fmt.Fprintf(w, "  %-10s %-6s %-14s %8.3fs  (%5.1fx vs naive)\n",
				algo, ds, m.Series, m.Seconds, naive/m.Seconds)
		}
	}
	return out, nil
}

// RunComparator times the graph-processing-system stand-in for the
// workload (Figure 10's PowerGraph/Maiter/Prom series).
func RunComparator(wl *Workload, cfg RunConfig) (Measurement, error) {
	var prog *graphsys.Program
	series := ""
	switch wl.Algo {
	case "SSSP":
		prog, series = graphsys.SSSP(0), "PowerGraph"
	case "CC":
		prog, series = graphsys.CC(wl.Graph), "PowerGraph"
	case "PageRank":
		prog, series = graphsys.PageRank(wl.Graph, 1e-4), "Maiter"
	case "Adsorption":
		prog, series = graphsys.Adsorption(wl.Graph, wl.Inj, wl.Pi, wl.Pc, 1e-3), "Maiter"
	case "Katz":
		prog, series = graphsys.Katz(0, 10000, wl.KatzAlpha, 1e-3), "Maiter"
	case "BP":
		prog, series = graphsys.BeliefPropagation(wl.Graph, wl.Initial, wl.H, 1e-4), "Prom"
	default:
		return Measurement{}, fmt.Errorf("bench: no comparator for %s", wl.Algo)
	}
	start := time.Now()
	switch series {
	case "PowerGraph":
		// The paper uses PowerGraph's best of sync/async; sync wins on
		// these laptop-scale shards, so time both and keep the best.
		s0 := time.Now()
		graphsys.RunSync(wl.Graph, prog)
		best := time.Since(s0)
		s1 := time.Now()
		graphsys.RunAsync(wl.Graph, prog, cfg.Workers)
		if d := time.Since(s1); d < best {
			best = d
		}
		return Measurement{Algo: wl.Algo, Dataset: wl.Dataset.Name, Series: series,
			Seconds: best.Seconds(), Converged: true}, nil
	case "Prom":
		graphsys.RunPrioritized(wl.Graph, prog)
	default: // Maiter
		graphsys.RunAsync(wl.Graph, prog, cfg.Workers)
	}
	return Measurement{Algo: wl.Algo, Dataset: wl.Dataset.Name, Series: series,
		Seconds: time.Since(start).Seconds(), Converged: true}, nil
}

// Figure11 compares the adaptive engines: Sync, Async, AAP, SyncAsync on
// SSSP and PageRank over the three large datasets.
func Figure11(w io.Writer, cfg RunConfig) ([]Measurement, error) {
	fmt.Fprintf(w, "Figure 11: unified sync-async vs AAP\n")
	var out []Measurement
	modes := []runtime.Mode{runtime.MRASync, runtime.MRAAsync, runtime.MRAAAP, runtime.MRASyncAsync}
	for _, algo := range []string{"SSSP", "PageRank"} {
		for _, ds := range figure10Datasets {
			d, err := gen.DatasetByName(ds)
			if err != nil {
				return nil, err
			}
			wl, err := Prepare(algo, d)
			if err != nil {
				return nil, err
			}
			for _, mode := range modes {
				m, err := RunMode(wl, mode, cfg)
				if err != nil {
					return nil, err
				}
				out = append(out, m)
				fmt.Fprintf(w, "  %-9s %-6s %-14s %8.3fs\n", algo, ds, m.Series, m.Seconds)
			}
		}
	}
	return out, nil
}

// Ablation sweeps this implementation's design knobs: (a) the ordered
// (delta-stepping-style) scan on SSSP over the small-diameter Web graph —
// the workload the paper says SociaLite's delta stepping wins — and the
// deep Wiki graph; (b) the §5.4 priority threshold on PageRank.
func Ablation(w io.Writer, cfg RunConfig) ([]Measurement, error) {
	fmt.Fprintf(w, "Ablation: ordered scan (delta-stepping-style) and §5.4 priority threshold\n")
	var out []Measurement
	for _, ds := range []string{"Web", "Wiki"} {
		d, err := gen.DatasetByName(ds)
		if err != nil {
			return nil, err
		}
		wl, err := Prepare("SSSP", d)
		if err != nil {
			return nil, err
		}
		for _, ordered := range []bool{false, true} {
			c := cfg
			c.OrderedScan = ordered
			m, err := RunMode(wl, runtime.MRASyncAsync, c)
			if err != nil {
				return nil, err
			}
			m.Series = fmt.Sprintf("ordered=%v", ordered)
			out = append(out, m)
			fmt.Fprintf(w, "  SSSP %-5s %-14s %8.3fs msgs=%d\n", ds, m.Series, m.Seconds, m.Messages)
		}
	}
	d, err := gen.DatasetByName("LiveJ")
	if err != nil {
		return nil, err
	}
	wl, err := Prepare("PageRank", d)
	if err != nil {
		return nil, err
	}
	for _, thr := range []float64{0, 1e-7, 1e-5} {
		c := cfg
		c.PriorityThreshold = thr
		m, err := RunMode(wl, runtime.MRASyncAsync, c)
		if err != nil {
			return nil, err
		}
		m.Series = fmt.Sprintf("threshold=%g", thr)
		out = append(out, m)
		fmt.Fprintf(w, "  PageRank LiveJ %-16s %8.3fs msgs=%d\n", m.Series, m.Seconds, m.Messages)
	}
	return out, nil
}

// SSP places the stale-synchronous-parallel mode among the five existing
// engines on SSSP and PageRank, then sweeps its staleness bound. Beyond
// wall time it reports the quantities the policy layers steer: realised
// batch sizes (messages per flush) and the time workers spent blocked at
// the staleness gate.
func SSP(w io.Writer, cfg RunConfig) ([]Measurement, error) {
	fmt.Fprintf(w, "SSP: stale synchronous parallel vs the existing engines\n")
	var out []Measurement
	modes := []runtime.Mode{runtime.NaiveSync, runtime.MRASync, runtime.MRAAsync,
		runtime.MRAAAP, runtime.MRASyncAsync, runtime.MRASSP}
	report := func(algo, ds string, m Measurement) {
		batch := 0.0
		if m.Flushes > 0 {
			batch = float64(m.Messages) / float64(m.Flushes)
		}
		extra := ""
		if m.BetaFinal > 0 {
			extra = fmt.Sprintf(" β≈%.0f", m.BetaFinal)
		}
		fmt.Fprintf(w, "  %-9s %-6s %-16s %8.3fs  rounds=%-5d batch=%7.1f straggler=%v%s\n",
			algo, ds, m.Series, m.Seconds, m.Rounds, batch, m.StragglerWait, extra)
	}
	for _, algo := range []string{"SSSP", "PageRank"} {
		for _, ds := range []string{"LiveJ", "Wiki"} {
			d, err := gen.DatasetByName(ds)
			if err != nil {
				return nil, err
			}
			wl, err := Prepare(algo, d)
			if err != nil {
				return nil, err
			}
			for _, mode := range modes {
				m, err := RunMode(wl, mode, cfg)
				if err != nil {
					return nil, err
				}
				out = append(out, m)
				report(algo, ds, m)
			}
		}
	}
	// Staleness sweep: lockstep-adjacent through loose.
	fmt.Fprintf(w, "  staleness sweep (SSSP on LiveJ):\n")
	d, err := gen.DatasetByName("LiveJ")
	if err != nil {
		return nil, err
	}
	wl, err := Prepare("SSSP", d)
	if err != nil {
		return nil, err
	}
	for _, s := range []int{1, 2, 4, 8} {
		c := cfg
		c.Staleness = s
		m, err := RunMode(wl, runtime.MRASSP, c)
		if err != nil {
			return nil, err
		}
		m.Series = fmt.Sprintf("staleness=%d", s)
		out = append(out, m)
		report("SSSP", "LiveJ", m)
	}
	return out, nil
}

// Recovery measures crash recovery: for one selective workload (SSSP —
// restored from uncoordinated stale snapshots, Theorem 3) and one
// combining workload (PageRank — restored from consistent cuts: BSP
// barrier snapshots or async/SSP marker episodes), each mode runs three
// times: clean, crashed mid-run with checkpointing on, and restarted
// from the crashed run's snapshot directory. The headline number is the
// time-to-refixpoint: the restart's wall time relative to the clean run.
func Recovery(w io.Writer, cfg RunConfig) ([]Measurement, error) {
	d, err := gen.DatasetByName("LiveJ")
	if err != nil {
		return nil, err
	}
	return recoveryOn(w, cfg, d)
}

func recoveryOn(w io.Writer, cfg RunConfig, d gen.Dataset) ([]Measurement, error) {
	fmt.Fprintf(w, "Recovery: crash mid-run with checkpoints on, restart, time to re-fixpoint\n")
	modes := []runtime.Mode{runtime.MRASync, runtime.MRASyncAsync, runtime.MRASSP}
	var out []Measurement
	for _, algo := range []string{"SSSP", "PageRank"} {
		wl, err := Prepare(algo, d)
		if err != nil {
			return nil, err
		}
		for _, mode := range modes {
			clean, err := RunMode(wl, mode, cfg)
			if err != nil {
				return nil, err
			}
			clean.Series = mode.String() + "/clean"
			out = append(out, clean)

			dir, err := os.MkdirTemp("", "plbench-recovery-*")
			if err != nil {
				return nil, err
			}
			crashCfg := cfg
			crashCfg.SnapshotDir = dir
			crashCfg.SnapshotEvery = 1
			crashCfg.Faults = "seed=7,crash=6"
			crashed, err := RunMode(wl, mode, crashCfg)
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			crashed.Series = mode.String() + "/crashed"
			out = append(out, crashed)

			restoreCfg := cfg
			restoreCfg.RestoreDir = dir
			restored, err := RunMode(wl, mode, restoreCfg)
			os.RemoveAll(dir)
			if err != nil {
				return nil, err
			}
			restored.Series = mode.String() + "/restored"
			out = append(out, restored)

			fmt.Fprintf(w, "  %-9s %-6s %-14s clean=%7.3fs  crashed@round=%-3d  refixpoint=%7.3fs (%.2fx clean, converged=%v)\n",
				algo, d.Name, mode.String(), clean.Seconds, crashed.Rounds,
				restored.Seconds, restored.Seconds/clean.Seconds, restored.Converged)
		}
	}
	return out, nil
}

// BestSeries returns, per (algo, dataset), the fastest series — used by
// tests asserting the paper's headline claim that the unified engine wins
// or ties everywhere.
func BestSeries(ms []Measurement) map[string]string {
	best := map[string]float64{}
	who := map[string]string{}
	for _, m := range ms {
		k := m.Algo + "/" + m.Dataset
		if t, ok := best[k]; !ok || m.Seconds < t {
			best[k] = m.Seconds
			who[k] = m.Series
		}
	}
	return who
}

// Speedups computes, per (algo, dataset), the ratio of each series' time
// to the reference series' time.
func Speedups(ms []Measurement, reference string) map[string]map[string]float64 {
	ref := map[string]float64{}
	for _, m := range ms {
		if m.Series == reference {
			ref[m.Algo+"/"+m.Dataset] = m.Seconds
		}
	}
	out := map[string]map[string]float64{}
	for _, m := range ms {
		k := m.Algo + "/" + m.Dataset
		r, ok := ref[k]
		if !ok || m.Seconds == 0 {
			continue
		}
		if out[k] == nil {
			out[k] = map[string]float64{}
		}
		out[k][m.Series] = r / m.Seconds
	}
	return out
}

// SortMeasurements orders rows deterministically for golden comparisons.
func SortMeasurements(ms []Measurement) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Algo != ms[j].Algo {
			return ms[i].Algo < ms[j].Algo
		}
		if ms[i].Dataset != ms[j].Dataset {
			return ms[i].Dataset < ms[j].Dataset
		}
		return ms[i].Series < ms[j].Series
	})
}
