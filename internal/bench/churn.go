package bench

import (
	"fmt"
	"io"
	"time"

	"powerlog/internal/analyzer"
	"powerlog/internal/compiler"
	"powerlog/internal/edb"
	"powerlog/internal/gen"
	"powerlog/internal/graph"
	"powerlog/internal/parser"
	"powerlog/internal/progs"
	"powerlog/internal/runtime"
)

// sessionModes are the engines a long-lived Session supports (naive
// evaluation cannot re-fixpoint incrementally, and AAP is the Figure-11
// comparator only).
var sessionModes = []runtime.Mode{runtime.MRASync, runtime.MRAAsync, runtime.MRASyncAsync, runtime.MRASSP}

// churnPlan compiles an isolated plan over a private graph copy. The
// churn experiment must never hand the session gen's cached dataset
// graph: Session.Apply mutates the plan's EDB in place, which would
// poison every later run that Builds the same dataset.
func churnPlan(algo string, n int, edges []graph.Edge, weighted bool) (*compiler.Plan, error) {
	g, err := graph.FromEdges(n, edges, weighted)
	if err != nil {
		return nil, err
	}
	var src string
	switch algo {
	case "SSSP":
		src = progs.SSSP
	case "PageRank":
		src = progs.PageRank
	default:
		return nil, fmt.Errorf("bench: churn has no workload for %q", algo)
	}
	db := edb.NewDB()
	db.SetGraph("edge", g)
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := analyzer.Analyze(prog)
	if err != nil {
		return nil, err
	}
	return compiler.Compile(info, db, compiler.Options{})
}

// Churn measures the engine-lifecycle refactor's payoff (DESIGN.md §10):
// for SSSP (selective min: invalidation cone + reseed on deletes) and
// PageRank (combining sum: algebraic ΔX¹ correction), a long-lived
// session absorbs a reproducible mutation stream batch by batch, and the
// mean Session.Apply wall time is compared against a cold Run on the
// mutated EDB. The sweep crosses churn fraction (0.1%, 1%, 10% of edges
// per batch), batch shape (insert, delete, mixed), and every
// session-capable mode. The crossover is the result: incremental
// re-fixpoint should win clearly at low churn and surrender its lead as
// a batch approaches a rebuild-sized fraction of the graph — deletes,
// which over-approximate (the cone erases every key the deleted edges
// might support), give the smallest margins.
func Churn(w io.Writer, cfg RunConfig) ([]Measurement, error) {
	dsName := "LiveJ"
	ds, err := gen.DatasetByName(dsName)
	if err != nil {
		return nil, err
	}
	fracs := []float64{0.001, 0.01, 0.1}
	kinds := []string{"insert", "delete", "mixed"}
	batches := 2
	if cfg.Smoke {
		ds = gen.TinyDatasets()[0]
		dsName = ds.Name
		fracs = []float64{0.01}
		kinds = []string{"mixed"}
	}
	fmt.Fprintf(w, "Churn: incremental Session.Apply vs cold re-run (%s, %d batches per stream)\n", dsName, batches)

	var out []Measurement
	for _, algo := range []string{"SSSP", "PageRank"} {
		weighted := algo == "SSSP"
		base := ds.Build(weighted)
		n := base.NumVertices()
		fmt.Fprintf(w, "  %s:\n", algo)
		fmt.Fprintf(w, "    %-7s %6s  %-14s %12s %12s %9s\n",
			"kind", "churn", "mode", "apply(mean)", "cold", "speedup")
		for fi, frac := range fracs {
			for ki, kind := range kinds {
				seed := ds.Seed*100 + int64(10*fi+ki)
				stream, finalEdges, err := gen.ChurnStream(base, kind, frac, batches, seed)
				if err != nil {
					return nil, err
				}
				for _, mode := range sessionModes {
					rc, err := cfg.engineConfig(mode)
					if err != nil {
						return nil, err
					}
					label := fmt.Sprintf("%s/%s/%g%%", mode, kind, frac*100)

					plan, err := churnPlan(algo, n, base.Edges(), weighted)
					if err != nil {
						return nil, err
					}
					s, err := runtime.Open(plan, rc)
					if err != nil {
						return nil, fmt.Errorf("bench: churn %s %s: open: %w", algo, label, err)
					}
					var applySec float64
					var rounds int
					var msgs, flushes int64
					converged := true
					for bi, b := range stream {
						t0 := time.Now()
						res, err := s.Apply(runtime.Mutation{Inserts: b.Inserts, Deletes: b.Deletes})
						if err != nil {
							s.Close()
							return nil, fmt.Errorf("bench: churn %s %s: apply %d: %w", algo, label, bi+1, err)
						}
						applySec += time.Since(t0).Seconds()
						rounds += res.Rounds
						msgs += res.MessagesSent
						flushes += res.Flushes
						converged = converged && res.Converged
					}
					if err := s.Close(); err != nil {
						return nil, err
					}
					incr := Measurement{
						Algo: algo, Dataset: dsName, Series: label + "/incr",
						Seconds: applySec / float64(len(stream)), Rounds: rounds,
						Messages: msgs, Flushes: flushes, Converged: converged,
					}

					coldPlan, err := churnPlan(algo, n, finalEdges, weighted)
					if err != nil {
						return nil, err
					}
					coldRes, err := runtime.Run(coldPlan, rc)
					if err != nil {
						return nil, fmt.Errorf("bench: churn %s %s: cold: %w", algo, label, err)
					}
					cold := Measurement{
						Algo: algo, Dataset: dsName, Series: label + "/cold",
						Seconds: coldRes.Elapsed.Seconds(), Rounds: coldRes.Rounds,
						Messages: coldRes.MessagesSent, Flushes: coldRes.Flushes,
						Converged: coldRes.Converged,
					}
					out = append(out, incr, cold)
					fmt.Fprintf(w, "    %-7s %5g%%  %-14s %11.4fs %11.4fs %8.1fx\n",
						kind, frac*100, mode, incr.Seconds, cold.Seconds, cold.Seconds/incr.Seconds)
				}
			}
		}
	}
	return out, nil
}
