package lint

import (
	"go/ast"
	"strings"
)

// Suppression directives. A finding can be silenced at its site with
//
//	//plvet:ignore <analyzer> <reason>
//
// either trailing the offending line or alone on the line directly
// above it. The analyzer name scopes the directive — an ignore for a
// different analyzer suppresses nothing — and the reason is mandatory:
// a directive without one is itself reported, so every suppression in
// the tree carries its justification. Suppressed findings are not
// dropped; Run returns them separately and plvet prints a count, so a
// suppression is always visible in the gate's output.

const ignorePrefix = "//plvet:ignore"

// ignoreDirective is one parsed //plvet:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	line     int // the comment's own line
}

// ignoreSet maps file → line → directives that apply to that line. A
// directive alone on a line covers the following line as well (the
// conventional comment-above-statement placement).
type ignoreSet map[string]map[int][]ignoreDirective

// collectIgnores scans every comment of every analysis unit for
// directives. Malformed directives (missing analyzer name or reason,
// or naming an unknown analyzer) are returned as findings under the
// pseudo-analyzer "plvet" so a typo cannot silently disable a check.
func collectIgnores(mod *Module) (ignoreSet, []Finding) {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name()] = true
	}
	set := ignoreSet{}
	var bad []Finding
	seenFile := map[string]bool{}
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			fname := mod.Fset.Position(file.Package).Filename
			if seenFile[fname] {
				continue // ext-test units share no files, but be safe
			}
			seenFile[fname] = true
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(c.Text)
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
					name, reason, _ := strings.Cut(rest, " ")
					reason = strings.TrimSpace(reason)
					switch {
					case name == "" || reason == "":
						bad = append(bad, Finding{
							Analyzer: "plvet", Pos: pos,
							Message: "malformed ignore directive: want //plvet:ignore <analyzer> <reason>",
						})
						continue
					case !known[name]:
						bad = append(bad, Finding{
							Analyzer: "plvet", Pos: pos,
							Message: "ignore directive names unknown analyzer " + name,
						})
						continue
					}
					if set[fname] == nil {
						set[fname] = map[int][]ignoreDirective{}
					}
					d := ignoreDirective{analyzer: name, reason: reason, line: pos.Line}
					set[fname][pos.Line] = append(set[fname][pos.Line], d)
					if standsAlone(mod, file, c) {
						set[fname][pos.Line+1] = append(set[fname][pos.Line+1], d)
					}
				}
			}
		}
	}
	return set, bad
}

// standsAlone reports whether comment c is the only thing on its line,
// i.e. no statement or declaration of the file starts or ends on it.
func standsAlone(mod *Module, file *ast.File, c *ast.Comment) bool {
	line := mod.Fset.Position(c.Pos()).Line
	alone := true
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return false
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return false
		}
		start := mod.Fset.Position(n.Pos()).Line
		end := mod.Fset.Position(n.End()).Line
		if start > line || end < line {
			return start <= line // prune subtrees wholly past the line
		}
		switch n.(type) {
		case *ast.File, *ast.GenDecl, *ast.FuncDecl, *ast.BlockStmt:
			// Spanning containers don't make the line occupied.
			return true
		}
		alone = false
		return false
	})
	return alone
}

// applyIgnores splits findings into kept and suppressed according to
// the directive set: a finding is suppressed when a directive for its
// analyzer covers its line.
func applyIgnores(findings []Finding, set ignoreSet) Result {
	var res Result
	for _, f := range findings {
		suppressed := false
		for _, d := range set[f.Pos.Filename][f.Pos.Line] {
			if d.analyzer == f.Analyzer {
				suppressed = true
				break
			}
		}
		if suppressed {
			res.Suppressed = append(res.Suppressed, f)
		} else {
			res.Findings = append(res.Findings, f)
		}
	}
	return res
}
