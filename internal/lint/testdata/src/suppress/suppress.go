// Package suppress seeds errcmp violations paired with every shape of
// //plvet:ignore directive; lint_test.go's TestSuppression runs the
// full driver over it and checks which findings survive.
package suppress

import "errors"

var sentinel = errors.New("boom")

// Same-line directive: suppressed.
func sameLine(err error) bool {
	return err == sentinel //plvet:ignore errcmp fixture: suppression on the offending line
}

// Directive alone on the line above: suppressed.
func lineAbove(err error) bool {
	//plvet:ignore errcmp fixture: directive covers the next line
	return err == sentinel
}

// Directive names a different analyzer: the errcmp finding survives.
func wrongAnalyzer(err error) bool {
	return err == sentinel //plvet:ignore shadow fixture: scoped to the wrong analyzer
}

// Reason missing: the directive is malformed (a "plvet" finding) and
// suppresses nothing.
func malformed(err error) bool {
	return err == sentinel //plvet:ignore errcmp
}

// Unknown analyzer name: reported, suppresses nothing.
func unknownName(err error) bool {
	return err == sentinel //plvet:ignore nosuch fixture: typo'd analyzer name
}
