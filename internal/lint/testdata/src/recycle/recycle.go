// Package fixture seeds violations of the batch-recycle contract for
// the recycle analyzer's golden test. Each want-annotated line must be
// flagged with a matching message; every other line must stay silent.
package fixture

import "powerlog/internal/transport"

func useAfterPut() float64 {
	kvs := transport.GetBatch(4)
	kvs = append(kvs, transport.KV{K: 1, V: 2})
	transport.PutBatch(kvs)
	return kvs[0].V // want "batch kvs used after PutBatch"
}

func doublePut(kvs []transport.KV) {
	transport.PutBatch(kvs)
	transport.PutBatch(kvs) // want "batch kvs used after PutBatch"
}

func useAfterSend(c transport.Conn, kvs []transport.KV) int {
	_ = c.Send(1, transport.Message{Kind: transport.Data, KVs: kvs})
	return len(kvs) // want "batch kvs used after Send"
}

func messageAfterSend(c transport.Conn, m transport.Message) int {
	_ = c.Send(1, m)
	return len(m.KVs) // want `batch m.KVs used after Send`
}

func channelHandoff(out chan transport.Message, kvs []transport.KV) {
	out <- transport.Message{Kind: transport.Data, KVs: kvs}
	kvs = kvs[:0] // want "batch kvs used after Send"
	_ = kvs
}

// siblingBranches must stay silent: the kill in the Data case must not
// poison the EndPhase case, which handles a different message.
func siblingBranches(m transport.Message) int {
	switch m.Kind {
	case transport.Data:
		transport.PutBatch(m.KVs)
		return 1
	case transport.EndPhase:
		return len(m.KVs)
	}
	return 0
}

// revive must stay silent: reassigning the variable gives it a fresh
// batch, and the earlier recycle no longer applies.
func revive() {
	kvs := transport.GetBatch(2)
	transport.PutBatch(kvs)
	kvs = transport.GetBatch(8)
	kvs = append(kvs, transport.KV{K: 3, V: 4})
	transport.PutBatch(kvs)
}

// nilOut must stay silent: codec-style `recycle then clear the field`
// revives m.KVs before anyone reads it.
func nilOut(m *transport.Message) {
	transport.PutBatch(m.KVs)
	m.KVs = nil
	_ = len(m.KVs)
}

// --- interprocedural: kills through helper calls ---

// recycleHelper kills its parameter; callers lose the batch.
func recycleHelper(b []transport.KV) {
	transport.PutBatch(b)
}

// forwardHelper hands the batch off two levels down.
func forwardHelper(b []transport.KV) {
	recycleHelper(b)
}

// borrowHelper only reads; callers keep the batch.
func borrowHelper(b []transport.KV) int {
	return len(b)
}

// maybeRecycle kills on one branch: may-kill still poisons callers.
func maybeRecycle(b []transport.KV, done bool) {
	if done {
		transport.PutBatch(b)
	}
}

// drainMessage recycles the batch inside a Message parameter.
func drainMessage(m transport.Message) {
	transport.PutBatch(m.KVs)
}

func useAfterHelper() float64 {
	kvs := transport.GetBatch(4)
	recycleHelper(kvs)
	return kvs[0].V // want "batch kvs used after call to recycleHelper"
}

func useAfterNestedHelper() {
	kvs := transport.GetBatch(4)
	forwardHelper(kvs)
	kvs = append(kvs, transport.KV{K: 1, V: 2}) // want "batch kvs used after call to forwardHelper"
	_ = kvs
}

func useAfterMaybe(done bool) int {
	kvs := transport.GetBatch(4)
	maybeRecycle(kvs, done)
	return len(kvs) // want "batch kvs used after call to maybeRecycle"
}

func messageThroughHelper(m transport.Message) int {
	drainMessage(m)
	return len(m.KVs) // want `batch m.KVs used after call to drainMessage`
}

// borrowIsFine must stay silent: the helper only reads the batch.
func borrowIsFine() {
	kvs := transport.GetBatch(4)
	_ = borrowHelper(kvs)
	kvs = append(kvs, transport.KV{K: 1, V: 2})
	transport.PutBatch(kvs)
}

// deferredHelper must stay silent before the function returns: the
// deferred call runs at exit, after the uses.
func deferredHelper() int {
	kvs := transport.GetBatch(4)
	defer recycleHelper(kvs)
	kvs = append(kvs, transport.KV{K: 1, V: 2})
	return len(kvs)
}

// reviveAfterHelper must stay silent: reassignment gives a fresh batch.
func reviveAfterHelper() {
	kvs := transport.GetBatch(2)
	recycleHelper(kvs)
	kvs = transport.GetBatch(8)
	transport.PutBatch(kvs)
}
