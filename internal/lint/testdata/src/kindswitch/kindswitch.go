// Package fixture seeds enum-switch violations for the kindswitch
// analyzer's golden test: switches over a local iota family and over
// the real transport.Kind, in exhaustive, defaulted, and holey forms.
package fixture

import "powerlog/internal/transport"

// phase is an enum family: ≥3 constants, distinct contiguous values.
type phase int

const (
	phaseScan phase = iota
	phaseFold
	phaseFlush
	phaseIdle
)

// flags is NOT a family: the values have gaps (bitmask shape), so no
// switch over it is ever flagged.
type flags uint8

const (
	flagA flags = 1
	flagB flags = 2
	flagC flags = 4
)

func missingOne(p phase) string {
	switch p { // want "switch over fixture.phase is not exhaustive: missing phaseIdle"
	case phaseScan:
		return "scan"
	case phaseFold:
		return "fold"
	case phaseFlush:
		return "flush"
	}
	return ""
}

func missingSeveral(p phase) bool {
	switch p { // want "missing phaseFold, phaseFlush, phaseIdle"
	case phaseScan:
		return true
	}
	return false
}

// exhaustive covers every constant: silent.
func exhaustive(p phase) string {
	switch p {
	case phaseScan:
		return "scan"
	case phaseFold:
		return "fold"
	case phaseFlush:
		return "flush"
	case phaseIdle:
		return "idle"
	}
	return ""
}

// defaulted opts out with an explicit default: silent.
func defaulted(p phase) string {
	switch p {
	case phaseScan:
		return "scan"
	default:
		return "other"
	}
}

// bitmaskSwitch is over a non-family type: silent even with holes.
func bitmaskSwitch(f flags) bool {
	switch f {
	case flagA:
		return true
	}
	return false
}

// nonConstantCase makes coverage undecidable: silent.
func nonConstantCase(p, q phase) bool {
	switch p {
	case q:
		return true
	case phaseScan:
		return false
	}
	return false
}

// kindDropsPark mirrors the real worker.handle() bug class: the switch
// misses the park-era kinds PR 7 added and the membership kinds after
// them.
func kindDropsPark(k transport.Kind) string {
	switch k { // want "switch over transport.Kind is not exhaustive: missing Park, ParkMark, ParkDone, EpochStart, Join, Orphan, Handoff, Release"
	case transport.Data, transport.EndPhase, transport.PhaseDone, transport.Continue,
		transport.StatsRequest, transport.StatsReply, transport.Stop,
		transport.SnapRequest, transport.SnapMark, transport.SnapDone, transport.Resume:
		return "session-era"
	}
	return ""
}

// kindDropsMembership covers everything up to the park era but misses
// the membership fence kinds (elastic re-join / scale, DESIGN.md §11).
func kindDropsMembership(k transport.Kind) string {
	switch k { // want "switch over transport.Kind is not exhaustive: missing Join, Orphan, Handoff, Release"
	case transport.Data, transport.EndPhase, transport.PhaseDone, transport.Continue,
		transport.StatsRequest, transport.StatsReply, transport.Stop,
		transport.SnapRequest, transport.SnapMark, transport.SnapDone, transport.Resume,
		transport.Park, transport.ParkMark, transport.ParkDone, transport.EpochStart:
		return "park-era"
	}
	return ""
}

// kindExhaustiveAll covers the full protocol enumeration: silent.
func kindExhaustiveAll(k transport.Kind) bool {
	switch k {
	case transport.Data, transport.EndPhase, transport.PhaseDone, transport.Continue,
		transport.StatsRequest, transport.StatsReply, transport.Stop,
		transport.SnapRequest, transport.SnapMark, transport.SnapDone, transport.Resume,
		transport.Park, transport.ParkMark, transport.ParkDone, transport.EpochStart,
		transport.Join, transport.Orphan, transport.Handoff, transport.Release:
		return true
	}
	return false
}

// multiCaseStillMissing groups constants per arm but leaves one out.
func multiCaseStillMissing(p phase) bool {
	switch p { // want "missing phaseIdle"
	case phaseScan, phaseFold:
		return true
	case phaseFlush:
		return false
	}
	return false
}

type dispatcher struct{}

// methods are walked the same as functions.
func (dispatcher) route(p phase) int {
	switch p { // want "missing phaseScan"
	case phaseFold, phaseFlush, phaseIdle:
		return 1
	}
	return 0
}

// kindDropsOne misses exactly the newest protocol kind.
func kindDropsOne(k transport.Kind) bool {
	switch k { // want "missing Release"
	case transport.Data, transport.EndPhase, transport.PhaseDone, transport.Continue,
		transport.StatsRequest, transport.StatsReply, transport.Stop,
		transport.SnapRequest, transport.SnapMark, transport.SnapDone, transport.Resume,
		transport.Park, transport.ParkMark, transport.ParkDone, transport.EpochStart,
		transport.Join, transport.Orphan, transport.Handoff:
		return true
	}
	return false
}

// kindDefaulted handles two kinds and defaults the rest: silent.
func kindDefaulted(k transport.Kind) bool {
	switch k {
	case transport.Data:
		return true
	case transport.Stop:
		return false
	default:
		return false
	}
}

// tagless switches have no tag type: silent.
func tagless(k transport.Kind) bool {
	switch {
	case k == transport.Data:
		return true
	}
	return false
}
