// Package fixture seeds sentinel-comparison and error-assertion
// violations for the errcmp analyzer's golden test.
package fixture

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

// codedError is a typed error in the ConfigError/MissingShardError
// mold.
type codedError struct{ code int }

func (e *codedError) Error() string { return fmt.Sprintf("code %d", e.code) }

func eqSentinel(err error) bool {
	return err == errSentinel // want "error compared with ==; use errors.Is"
}

func neqSentinel(err error) bool {
	return err != errSentinel // want "error compared with !=; use errors.Is"
}

func eqReversed(err error) bool {
	return errSentinel == err // want "error compared with ==; use errors.Is"
}

func bareAssert(err error) int {
	if ce, ok := err.(*codedError); ok { // want "type assertion on error value; use errors.As"
		return ce.code
	}
	return 0
}

func assertExpr(err error) int {
	return err.(*codedError).code // want "type assertion on error value; use errors.As"
}

func typeSwitch(err error) string {
	switch err.(type) { // want "type switch on error value; use errors.As"
	case *codedError:
		return "coded"
	default:
		return "other"
	}
}

func typeSwitchBind(err error) int {
	switch e := err.(type) { // want "type switch on error value; use errors.As"
	case *codedError:
		return e.code
	}
	return 0
}

// nilChecks are how Go spells "no error": silent.
func nilChecks(err error) bool {
	if err == nil {
		return true
	}
	return nil != err
}

// properIs and properAs use the errors package: silent.
func properIs(err error) bool {
	return errors.Is(err, errSentinel)
}

func properAs(err error) (int, bool) {
	var ce *codedError
	if errors.As(err, &ce) {
		return ce.code, true
	}
	return 0, false
}

// concretePointers compares two *codedError values: pointer identity
// is what == states, so this stays legal.
func concretePointers(a, b *codedError) bool {
	return a == b
}

// nonError comparisons are untouched.
func nonError(a, b string) bool {
	return a == b
}

// assertToOtherInterface still goes through the error value: flagged
// (errors.As handles interface targets and sees through wrapping).
func assertToOtherInterface(err error) bool {
	type temporary interface{ Temporary() bool }
	if t, ok := err.(temporary); ok { // want "type assertion on error value; use errors.As"
		return t.Temporary()
	}
	return false
}
