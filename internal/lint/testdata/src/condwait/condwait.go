// Package fixture seeds sync.Cond misuse for the condwait analyzer's
// golden test: zero-value construction and Wait outside a loop.
package fixture

import "sync"

// zero-value Cond: nil Locker panics on the first Wait.
var globalCond sync.Cond // want "zero-value sync.Cond"

type pool struct {
	mu   sync.Mutex
	cond sync.Cond // want "sync.Cond struct field by value"
	work []int
}

type goodPool struct {
	mu   sync.Mutex
	cond *sync.Cond // pointer field set via NewCond: silent
	work []int
}

func newGoodPool() *goodPool {
	p := &goodPool{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func literalCond(mu *sync.Mutex) {
	c := sync.Cond{L: mu} // want "sync.Cond composite literal"
	c.Signal()
}

func localZero() {
	var c sync.Cond // want "zero-value sync.Cond"
	c.Broadcast()
}

func waitNoLoop(p *goodPool) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.work) == 0 {
		p.cond.Wait() // want "Wait outside a for loop"
	}
	return p.work[0]
}

// waitInLoop is the canonical pattern: silent.
func waitInLoop(p *goodPool) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.work) == 0 {
		p.cond.Wait()
	}
	return p.work[0]
}

// waitInRange: a range loop counts as a loop.
func waitInRange(p *goodPool, rounds []int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for range rounds {
		p.cond.Wait()
	}
}

// closureResetsLoop: the enclosing for does not cover a closure body —
// the closure runs whenever it is called, not per iteration.
func closureResetsLoop(p *goodPool) {
	for i := 0; i < 3; i++ {
		f := func() {
			p.mu.Lock()
			defer p.mu.Unlock()
			p.cond.Wait() // want "Wait outside a for loop"
		}
		f()
	}
}

// signalAndBroadcast are unconstrained: silent.
func signalAndBroadcast(p *goodPool) {
	p.mu.Lock()
	p.work = append(p.work, 1)
	p.mu.Unlock()
	p.cond.Signal()
	p.cond.Broadcast()
}

// otherWait is not sync.Cond's Wait: silent.
type waiter struct{}

func (waiter) Wait() {}

func otherWait(w waiter) {
	w.Wait()
}
