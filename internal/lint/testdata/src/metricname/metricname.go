// Package fixture seeds metric-name violations for the metricname
// analyzer's golden test. The fixture declares its own WellKnownNames
// manifest; the analyzer treats any package-level var of that name as
// the inventory, so the checks run exactly as they do against the real
// internal/metrics manifest.
package fixture

import (
	"fmt"

	"powerlog/internal/metrics"
)

// WellKnownNames is this fixture's manifest.
var WellKnownNames = []string{
	"good.counter",
	"good.gauge",
	"good.latency_us",
	"dead.entry", // want `manifest metric "dead.entry" has no registration site`
	"family.dst%d",
}

func register(r *metrics.Registry) {
	r.Counter("good.counter")
	r.Gauge("good.gauge")
	r.Histogram("good.latency_us")
	r.Counter("rogue.counter") // want `metric "rogue.counter" is not in the metrics.WellKnownNames manifest`
	for i := 0; i < 4; i++ {
		r.Histogram(fmt.Sprintf("family.dst%d", i))
	}
	r.Counter(fmt.Sprintf("rogue.family%d", 9)) // want `dynamic metric family "rogue.family%d" is not in the metrics.WellKnownNames manifest`
}

// registerAgain duplicates a fixed name from a second site.
func registerAgain(r *metrics.Registry) {
	r.Counter("good.counter") // want `metric "good.counter" is also registered at`
}

func read(s metrics.Snapshot) uint64 {
	a := s.Counter("good.counter")          // resolves to a writer: silent
	b := s.Counters["typo.counter"]         // want `metric "typo.counter" is read but never registered`
	c := s.Counters["family.dst3"]          // matches the family.dst%d pattern: silent
	_ = s.Gauges["good.gauge"]              // silent
	_ = s.Histograms["good.latency_us"]     // silent
	_ = s.MergeHistograms("family.")        // prefix of a registered family: silent
	_ = s.MergeHistograms("no.such.metric") // want `histogram prefix "no.such.metric" matches no registered metric`
	return a + b + c
}

// varName reaches the registry through a variable: out of scope,
// deliberately silent.
func varName(r *metrics.Registry, name string) {
	r.Counter(name)
}
