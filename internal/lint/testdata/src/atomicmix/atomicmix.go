// Package fixture seeds mixed atomic/plain accesses for the atomicmix
// analyzer's golden test.
package fixture

import (
	"sync/atomic"

	"powerlog/internal/agg"
	"powerlog/internal/metrics"
)

type counter struct {
	hits uint64
	acc  []uint64
	name string
}

func (c *counter) bump()         { atomic.AddUint64(&c.hits, 1) }
func (c *counter) fetch() uint64 { return atomic.LoadUint64(&c.hits) }

func (c *counter) mixedScalar() uint64 {
	return c.hits // want "plain access to hits"
}

func (c *counter) mixedWrite() {
	c.hits = 0 // want "plain access to hits"
}

func (c *counter) foldCell(op *agg.Op, i int, v float64) {
	op.AtomicFold(&c.acc[i], v)
}

func (c *counter) mixedElem(i int) uint64 {
	return c.acc[i] // want "plain access to element of acc"
}

// cleanRead must stay silent: the element is read through the atomic
// wrapper, exactly as the contract demands.
func (c *counter) cleanRead(i int) float64 {
	return agg.Load(&c.acc[i])
}

// cleanField must stay silent: name is never accessed atomically.
func (c *counter) cleanField() string { return c.name }

// handoff must stay silent: taking the cell's address and passing it to
// an arbitrary function transfers responsibility to the callee.
func handoff(c *counter, i int) {
	addOne(&c.acc[i])
}

func addOne(p *uint64) { atomic.AddUint64(p, 1) }

// metricsClean must stay silent: the internal/metrics wrappers route
// every access through atomic methods (atomic.Uint64 receivers), so the
// analyzer — which only inspects address-taking call arguments — has
// nothing to flag. This is the pattern the runtime's hot paths use.
type metricsClean struct {
	events metrics.Counter
	sizes  metrics.Histogram
	level  metrics.Gauge
}

func (m *metricsClean) record(n uint64) {
	m.events.Inc()
	m.sizes.Observe(n)
	m.level.Set(float64(n))
}

func (m *metricsClean) report() (uint64, float64) {
	return m.events.Load(), m.level.Load()
}

// subshard mirrors the intra-worker scan pool's shapes (runtime
// subshard.go): the table's acc/inter/dirty words are shared between
// scan cores and must go through the atomic wrappers, while each core's
// private pass counters are owner-merged after the join and are
// legitimately plain.
type subshard struct {
	acc   []uint64 // shared rows: atomic wrappers only
	dirty []uint32 // shared bitmap words: atomic only
}

func (s *subshard) foldRange(op *agg.Op, lo, hi int, v float64) {
	for i := lo; i < hi; i++ {
		op.AtomicFold(&s.acc[i], v)
	}
}

func (s *subshard) clearWord(i int) {
	atomic.StoreUint32(&s.dirty[i], 0)
}

func (s *subshard) peekWord(i int) uint32 {
	return s.dirty[i] // want "plain access to element of dirty"
}

func (s *subshard) peekRow(i int) uint64 {
	return s.acc[i] // want "plain access to element of acc"
}

// scanCore must stay silent: folds and steals are per-core private
// state, read by the owner only after the pool's WaitGroup join — the
// pattern coreState uses. Only the shared table words need atomics.
type scanCore struct {
	folds  int64
	steals uint64
}

func (c *scanCore) scanOne(s *subshard, op *agg.Op, i int, v float64) {
	op.AtomicFold(&s.acc[i], v)
	c.folds++
}

func merge(cores []*scanCore) (total int64) {
	for _, c := range cores {
		total += c.folds
		c.folds = 0
	}
	return total
}
