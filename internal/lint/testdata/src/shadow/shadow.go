// Package fixture seeds builtin-shadowing declarations for the shadow
// analyzer's golden test.
package fixture

func shadowedLocals(vals []float64) float64 {
	min := vals[0] // want "declaration shadows builtin"
	for _, v := range vals {
		if v < min {
			min = v
		}
	}
	return min
}

func shadowedParam(max int) int { // want "declaration shadows builtin"
	return max + 1
}

type clear struct{} // want "declaration shadows builtin"

func useClear() clear { return clear{} }

// clean must stay silent: lo/hi do not collide with any builtin.
func clean(vals []int) (int, int) {
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
