// Package fixture seeds blocking-under-mutex violations for the
// lockblock analyzer's golden test.
package fixture

import (
	"sync"
	"time"

	"powerlog/internal/transport"
)

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	n  int
}

func (b *box) sendUnderLock(v int) {
	b.mu.Lock()
	b.ch <- v // want "channel send while b.mu is held"
	b.mu.Unlock()
}

func (b *box) sleepUnderDeferredLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time.Sleep while b.mu is held`
}

func (b *box) recvUnderRLock() int {
	b.rw.RLock()
	v := <-b.ch // want "channel receive while b.rw is held"
	b.rw.RUnlock()
	return v
}

func (b *box) selectUnderLock() {
	b.mu.Lock()
	select { // want "select while b.mu is held"
	case v := <-b.ch:
		b.n = v
	case b.ch <- 0:
	}
	b.mu.Unlock()
}

// nonBlockingSelectUnderLock must stay silent: a select with a default
// clause never parks — it is the idiomatic non-blocking channel op, and
// holding the lock across it is exactly how a sender fences the channel
// against a concurrent close.
func (b *box) nonBlockingSelectUnderLock(v int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.ch <- v:
		return true
	default:
		return false
	}
}

func sendMessageUnderLock(c transport.Conn, mu *sync.Mutex) {
	mu.Lock()
	_ = c.Send(0, transport.Message{Kind: transport.Stop}) // want "transport Send while mu is held"
	mu.Unlock()
}

// clean must stay silent: the critical section only touches memory, and
// the channel operation happens after Unlock.
func (b *box) clean(v int) {
	b.mu.Lock()
	b.n = v
	b.mu.Unlock()
	b.ch <- v
}

// goroutineClean must stay silent: the literal runs on its own
// goroutine, not under the caller's lock at this textual point.
func (b *box) goroutineClean(v int) {
	b.mu.Lock()
	go func() { b.ch <- v }()
	b.mu.Unlock()
}

// --- lock re-acquisition and sync.Cond held-set discipline ---

type pool struct {
	mu    sync.Mutex
	extra sync.Mutex
	rw    sync.RWMutex
	cond  *sync.Cond
	work  []int
}

func (p *pool) doubleLock() {
	p.mu.Lock()
	p.mu.Lock() // want "Lock of p.mu while already held"
	p.mu.Unlock()
	p.mu.Unlock()
}

func (p *pool) recursiveRLock() int {
	p.rw.RLock()
	defer p.rw.RUnlock()
	p.rw.RLock() // want "RLock of p.rw while already held"
	defer p.rw.RUnlock()
	return len(p.work)
}

func (p *pool) waitNoLock() {
	p.cond.Wait() // want "sync.Cond Wait with no lock held"
}

func (p *pool) waitTwoLocks() {
	p.mu.Lock()
	p.extra.Lock()
	for len(p.work) == 0 {
		p.cond.Wait() // want "sync.Cond Wait while 2 locks are held"
	}
	p.extra.Unlock()
	p.mu.Unlock()
}

// waitProper must stay silent: exactly one lock held, the canonical
// predicate loop.
func (p *pool) waitProper() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.work) == 0 {
		p.cond.Wait()
	}
	return p.work[0]
}

// signalUnderLock must stay silent: Signal and Broadcast never block.
func (p *pool) signalUnderLock(v int) {
	p.mu.Lock()
	p.work = append(p.work, v)
	p.cond.Signal()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// relockAfterUnlock must stay silent: the first hold is released
// before the second acquisition.
func (p *pool) relockAfterUnlock() {
	p.mu.Lock()
	p.work = nil
	p.mu.Unlock()
	p.mu.Lock()
	p.work = append(p.work, 1)
	p.mu.Unlock()
}

// distinctLocks must stay silent: nesting different keys is lock
// ordering, not re-acquisition.
func (p *pool) distinctLocks() {
	p.mu.Lock()
	p.extra.Lock()
	p.work = nil
	p.extra.Unlock()
	p.mu.Unlock()
}
