// Package fixture seeds blocking-under-mutex violations for the
// lockblock analyzer's golden test.
package fixture

import (
	"sync"
	"time"

	"powerlog/internal/transport"
)

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	n  int
}

func (b *box) sendUnderLock(v int) {
	b.mu.Lock()
	b.ch <- v // want "channel send while b.mu is held"
	b.mu.Unlock()
}

func (b *box) sleepUnderDeferredLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time.Sleep while b.mu is held`
}

func (b *box) recvUnderRLock() int {
	b.rw.RLock()
	v := <-b.ch // want "channel receive while b.rw is held"
	b.rw.RUnlock()
	return v
}

func (b *box) selectUnderLock() {
	b.mu.Lock()
	select { // want "select while b.mu is held"
	case v := <-b.ch:
		b.n = v
	default:
	}
	b.mu.Unlock()
}

func sendMessageUnderLock(c transport.Conn, mu *sync.Mutex) {
	mu.Lock()
	_ = c.Send(0, transport.Message{Kind: transport.Stop}) // want "transport Send while mu is held"
	mu.Unlock()
}

// clean must stay silent: the critical section only touches memory, and
// the channel operation happens after Unlock.
func (b *box) clean(v int) {
	b.mu.Lock()
	b.n = v
	b.mu.Unlock()
	b.ch <- v
}

// goroutineClean must stay silent: the literal runs on its own
// goroutine, not under the caller's lock at this textual point.
func (b *box) goroutineClean(v int) {
	b.mu.Lock()
	go func() { b.ch <- v }()
	b.mu.Unlock()
}
