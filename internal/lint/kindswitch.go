package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// kindswitchAnalyzer enforces exhaustiveness for switches over
// enum-like constant families: transport.Kind, runtime.Mode, and every
// other module type that follows the same shape. PR 7 grew
// transport.Kind by four message kinds (Park/ParkMark/ParkDone/
// EpochStart); the only thing that caught a switch arm missing for one
// of them was runtime behavior — the exact silent-protocol-drift
// failure mode the paper's asynchronous modes cannot afford (a dropped
// marker kind corrupts convergence rather than crashing).
//
// A type T is an enum family when it is a defined integer type
// declared in this module whose package declares at least three
// constants of type T with distinct values forming a contiguous run
// (the iota shape). Any switch whose tag has type T must then either
// list every declared constant across its cases or carry an explicit
// default clause. A missing arm is reported with the names of the
// uncovered constants; a deliberate "handle the rest nowhere" needs a
// default (or a //plvet:ignore with a reason), which is precisely the
// visible annotation the invariant wants.
type kindswitchAnalyzer struct{}

func (kindswitchAnalyzer) Name() string { return "kindswitch" }
func (kindswitchAnalyzer) Doc() string {
	return "a switch over an enum-like constant family covers every constant or has a default"
}

// enumFamily is one enum-like type's declared constants.
type enumFamily struct {
	names  map[int64]string // value → first declared constant name
	values []int64          // sorted distinct values
}

// enumFamilyOf inspects T's declaring package scope and returns the
// constant family, or nil when T does not look like an enum: fewer
// than three constants, duplicate values (flag-style aliases), or a
// non-contiguous value set (bitmasks, sizes).
func enumFamilyOf(named *types.Named) *enumFamily {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	fam := &enumFamily{names: map[int64]string{}}
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() {
		cst, isConst := scope.Lookup(name).(*types.Const)
		if !isConst || cst.Type() != named {
			continue
		}
		v, exact := constant.Int64Val(constant.ToInt(cst.Val()))
		if !exact {
			return nil
		}
		if _, dup := fam.names[v]; dup {
			return nil // aliased values: not a plain enum
		}
		fam.names[v] = name
		fam.values = append(fam.values, v)
	}
	if len(fam.values) < 3 {
		return nil
	}
	sort.Slice(fam.values, func(i, j int) bool { return fam.values[i] < fam.values[j] })
	for i := 1; i < len(fam.values); i++ {
		if fam.values[i] != fam.values[i-1]+1 {
			return nil // gaps: bitmask or sparse ids, not an iota enum
		}
	}
	return fam
}

func (kindswitchAnalyzer) Check(pkg *Package, r *Reporter) {
	// Scope the check to module-declared types (plus the analyzed
	// package itself, for fixtures outside the module tree): stdlib
	// integer families (reflect.Kind, ...) are not this repo's protocol
	// surface.
	inScope := func(path string) bool {
		mod := pkg.Mod.Path
		return path == mod || strings.HasPrefix(path, mod+"/") || path == pkg.ImportPath
	}
	families := map[*types.Named]*enumFamily{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pkg.Info.Types[sw.Tag]
			if !ok {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return true
			}
			if !inScope(named.Obj().Pkg().Path()) {
				return true
			}
			fam, cached := families[named]
			if !cached {
				fam = enumFamilyOf(named)
				families[named] = fam
			}
			if fam == nil {
				return true
			}
			checkSwitch(pkg, r, sw, named, fam)
			return true
		})
	}
}

// checkSwitch verifies one switch statement against its tag's family.
func checkSwitch(pkg *Package, r *Reporter, sw *ast.SwitchStmt, named *types.Named, fam *enumFamily) {
	covered := map[int64]bool{}
	for _, cl := range sw.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: the switch opts out of exhaustiveness
		}
		for _, e := range cc.List {
			tv, ok := pkg.Info.Types[e]
			if !ok || tv.Value == nil {
				return // non-constant case: coverage is not decidable
			}
			v, exact := constant.Int64Val(constant.ToInt(tv.Value))
			if !exact {
				return
			}
			covered[v] = true
		}
	}
	var missing []string
	for _, v := range fam.values {
		if !covered[v] {
			missing = append(missing, fam.names[v])
		}
	}
	if len(missing) > 0 {
		r.Reportf(sw.Pos(), "switch over %s.%s is not exhaustive: missing %s (add the cases or an explicit default)",
			named.Obj().Pkg().Name(), named.Obj().Name(), strings.Join(missing, ", "))
	}
}
