package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// recycleAnalyzer enforces the pooled-batch ownership contract of
// internal/transport/batch.go: once a transport.KV batch is returned
// with PutBatch, or handed to the network inside a Data message (Send
// takes ownership; the TCP transport reorders the slice in place while
// encoding and recycles it), the sender-side variable is dead. Any
// later read, write, append, or second PutBatch in the same function is
// a use-after-recycle — the bug class the race pass only catches when
// the pool happens to reuse the batch at the wrong moment.
//
// The check is a branch-sensitive textual-order dataflow: a kill in
// one branch does not poison sibling branches, a branch that
// terminates (return/break/continue/panic) does not leak its kills
// past the construct, and reassigning the variable (e.g. from
// GetBatch) revives it. Closures are analyzed as separate functions.
//
// The analysis is interprocedural via bottom-up function summaries:
// before the reporting pass, every function in the analyzed set is
// summarized as "which of its batch-typed parameters does it kill
// (recycle with PutBatch, or hand off to Send)?" and summaries are
// iterated to a fixpoint so helpers-calling-helpers propagate (the
// iteration replaces an explicit call-graph topological order and is
// robust to recursion). The reporting pass then treats a call to a
// summarized killer exactly like a direct PutBatch of the argument —
// so `flushTo(kvs); kvs[0] = ...` is caught even though the PutBatch
// lives two helpers down. A summary kill is may-kill (any
// fall-through path), matching the intra-function merge semantics.
type recycleAnalyzer struct{}

func (recycleAnalyzer) Name() string { return "recycle" }
func (recycleAnalyzer) Doc() string {
	return "no use of a transport.KV batch after PutBatch or after handing it to Send (through helpers too)"
}

const transportPath = "powerlog/internal/transport"

func (recycleAnalyzer) Check(pkg *Package, r *Reporter) {
	recycleAnalyzer{}.CheckModule([]*Package{pkg}, r)
}

func (recycleAnalyzer) CheckModule(pkgs []*Package, r *Reporter) {
	sums := computeRecycleSummaries(pkgs)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						c := newRecycleChecker(pkg, r)
						c.summaries = sums
						c.stmts(n.Body.List)
					}
					return false
				case *ast.FuncLit: // package-level var initializers
					c := newRecycleChecker(pkg, r)
					c.summaries = sums
					c.stmts(n.Body.List)
					return false
				}
				return true
			})
		}
	}
}

// recycleSummaries maps FuncKey → parameter index → the verb that
// kills the batch passed there. A function absent from the map (or a
// parameter absent from its entry) borrows its arguments.
type recycleSummaries map[string]map[int]string

// computeRecycleSummaries runs the dataflow silently over every
// function declaration and records which batch parameters are dead on
// exit, iterating until no summary changes: pass one catches direct
// PutBatch/Send kills, pass two catches helpers calling those, and so
// on. Kills only accumulate, so the loop converges.
func computeRecycleSummaries(pkgs []*Package) recycleSummaries {
	type fnDecl struct {
		pkg  *Package
		decl *ast.FuncDecl
		key  string
	}
	var fns []fnDecl
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := FuncKey(fn)
				if seen[key] {
					continue // a package and its test variant share base files
				}
				seen[key] = true
				fns = append(fns, fnDecl{pkg: pkg, decl: fd, key: key})
			}
		}
	}
	sums := recycleSummaries{}
	for range fns { // the chain of helpers is at most this deep
		changed := false
		for _, f := range fns {
			kills := summarizeFunc(f.pkg, f.decl, sums)
			if len(kills) != len(sums[f.key]) {
				if kills == nil {
					delete(sums, f.key)
				} else {
					sums[f.key] = kills
				}
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return sums
}

// summarizeFunc reports which of decl's parameters hold a dead batch
// after the body runs (under the current summaries).
func summarizeFunc(pkg *Package, decl *ast.FuncDecl, sums recycleSummaries) map[int]string {
	c := newRecycleChecker(pkg, nil)
	c.silent = true
	c.summaries = sums
	c.stmts(decl.Body.List)
	var kills map[int]string
	idx := 0
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				ks, dead := c.dead[batchKey{obj, ""}]
				if !dead {
					ks, dead = c.dead[batchKey{obj, "KVs"}]
				}
				if dead {
					if kills == nil {
						kills = map[int]string{}
					}
					kills[idx] = ks.verb
				}
			}
			idx++
		}
	}
	return kills
}

// batchKey identifies a tracked batch: a []transport.KV variable
// (field == "") or the KVs field of a transport.Message variable.
type batchKey struct {
	obj   types.Object
	field string
}

// killSite records how and where a batch died.
type killSite struct {
	verb string // "PutBatch" or "Send"
	pos  token.Pos
}

type recycleChecker struct {
	pkg       *Package
	r         *Reporter
	dead      map[batchKey]killSite
	noKill    bool // inside defer: args are evaluated now, but the call runs later
	silent    bool // summary pass: track kills, report nothing
	summaries recycleSummaries
}

func newRecycleChecker(pkg *Package, r *Reporter) *recycleChecker {
	return &recycleChecker{pkg: pkg, r: r, dead: map[batchKey]killSite{}}
}

// stmts processes a statement list in textual order.
func (c *recycleChecker) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *recycleChecker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.expr(rhs)
		}
		for _, lhs := range s.Lhs {
			c.assignTo(lhs)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		c.expr(s.X)
	case *ast.SendStmt:
		c.expr(s.Chan)
		c.expr(s.Value)
		// A message sent on a channel changes hands like Send: its batch
		// is no longer the sender's.
		c.killMessageExpr(s.Value, "Send", s.Arrow)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.expr(s.Cond)
		pre := c.dead
		merged := cloneKeys(pre)
		c.dead = cloneKeys(pre)
		c.stmts(s.Body.List)
		mergeBranch(merged, c.dead, terminates(s.Body.List))
		if s.Else != nil {
			c.dead = cloneKeys(pre)
			c.stmt(s.Else)
			term := false
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				term = terminates(blk.List)
			}
			mergeBranch(merged, c.dead, term)
		}
		c.dead = merged
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Cond != nil {
			c.expr(s.Cond)
		}
		pre := c.dead
		merged := cloneKeys(pre)
		c.dead = cloneKeys(pre)
		c.stmts(s.Body.List)
		if s.Post != nil {
			c.stmt(s.Post)
		}
		mergeBranch(merged, c.dead, false)
		c.dead = merged
	case *ast.RangeStmt:
		c.expr(s.X)
		pre := c.dead
		merged := cloneKeys(pre)
		c.dead = cloneKeys(pre)
		// The loop variables are freshly bound each iteration.
		c.assignTo(s.Key)
		c.assignTo(s.Value)
		c.stmts(s.Body.List)
		mergeBranch(merged, c.dead, false)
		c.dead = merged
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Tag != nil {
			c.expr(s.Tag)
		}
		c.caseClauses(s.Body.List)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.caseClauses(s.Body.List)
	case *ast.SelectStmt:
		pre := c.dead
		merged := cloneKeys(pre)
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			c.dead = cloneKeys(pre)
			if cc.Comm != nil {
				c.stmt(cc.Comm)
			}
			c.stmts(cc.Body)
			mergeBranch(merged, c.dead, terminates(cc.Body))
		}
		c.dead = merged
	case *ast.BlockStmt:
		c.stmts(s.List)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	case *ast.DeferStmt:
		// Defer evaluates arguments now but runs the call at return, so
		// uses are checked while kills are suppressed.
		saved := c.noKill
		c.noKill = true
		c.expr(s.Call)
		c.noKill = saved
	case *ast.GoStmt:
		saved := c.noKill
		c.noKill = true
		c.expr(s.Call)
		c.noKill = saved
	}
}

func (c *recycleChecker) caseClauses(clauses []ast.Stmt) {
	pre := c.dead
	merged := cloneKeys(pre)
	for _, cl := range clauses {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		c.dead = cloneKeys(pre)
		for _, e := range cc.List {
			c.expr(e)
		}
		c.stmts(cc.Body)
		mergeBranch(merged, c.dead, terminates(cc.Body))
	}
	c.dead = merged
}

// mergeBranch propagates kills discovered in a branch into the merged
// post-construct state, unless the branch cannot fall through.
func mergeBranch(merged, branch map[batchKey]killSite, terminated bool) {
	if terminated {
		return
	}
	for k, v := range branch {
		if _, ok := merged[k]; !ok {
			merged[k] = v
		}
	}
}

func cloneKeys(m map[batchKey]killSite) map[batchKey]killSite {
	out := make(map[batchKey]killSite, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// terminates reports whether a statement list always leaves the
// enclosing construct (so its kills cannot reach the code after it).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch s := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// assignTo revives a batch when its variable is wholly reassigned;
// anything else on the left-hand side (kvs[i] = ..., for instance) is a
// use of the existing storage.
func (c *recycleChecker) assignTo(lhs ast.Expr) {
	switch lhs := lhs.(type) {
	case nil:
	case *ast.Ident:
		if obj := c.objOf(lhs); obj != nil {
			delete(c.dead, batchKey{obj, ""})
			delete(c.dead, batchKey{obj, "KVs"})
		}
	case *ast.SelectorExpr:
		if key, ok := c.kvsSelector(lhs); ok {
			delete(c.dead, key)
			return
		}
		c.expr(lhs)
	default:
		c.expr(lhs)
	}
}

// expr scans an expression for uses of dead batches and applies the
// ownership-transfer kills of calls and message literals.
func (c *recycleChecker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		c.useIdent(e)
	case *ast.SelectorExpr:
		if key, ok := c.kvsSelector(e); ok {
			if ks, dead := c.dead[key]; dead {
				c.report(e.Pos(), types.ExprString(e), ks)
			}
			return
		}
		c.expr(e.X)
	case *ast.CallExpr:
		c.call(e)
	case *ast.FuncLit:
		// A closure gets its own dataflow; cross-closure tracking would
		// need escape analysis the contract does not require.
		sub := newRecycleChecker(c.pkg, c.r)
		sub.silent, sub.summaries = c.silent, c.summaries
		sub.stmts(e.Body.List)
	case *ast.UnaryExpr:
		c.expr(e.X)
	case *ast.BinaryExpr:
		c.expr(e.X)
		c.expr(e.Y)
	case *ast.ParenExpr:
		c.expr(e.X)
	case *ast.StarExpr:
		c.expr(e.X)
	case *ast.IndexExpr:
		c.expr(e.X)
		c.expr(e.Index)
	case *ast.SliceExpr:
		c.expr(e.X)
		c.expr(e.Low)
		c.expr(e.High)
		c.expr(e.Max)
	case *ast.TypeAssertExpr:
		c.expr(e.X)
	case *ast.KeyValueExpr:
		c.expr(e.Value)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			c.expr(el)
		}
	}
}

// call scans a call's operands and then applies its kills: PutBatch
// recycles its argument, Send/TrySend consume a message (and with it
// the message's KVs), and any call taking a transport.Message literal
// built around a batch takes ownership of that batch (worker.enqueue
// and the transports themselves all forward to Send).
func (c *recycleChecker) call(call *ast.CallExpr) {
	c.expr(call.Fun)
	for _, arg := range call.Args {
		c.expr(arg)
	}
	if c.noKill {
		return
	}
	fn := c.callee(call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == transportPath && fn.Name() == "PutBatch" &&
		fn.Type().(*types.Signature).Recv() == nil && len(call.Args) == 1 {
		c.killBatchExpr(call.Args[0], "PutBatch", call.Pos())
		return
	}
	isSend := fn != nil && fn.Type().(*types.Signature).Recv() != nil &&
		(fn.Name() == "Send" || fn.Name() == "TrySend")
	for _, arg := range call.Args {
		c.killMessageExpr(arg, "Send", call.Pos())
		if isSend {
			if id, ok := arg.(*ast.Ident); ok && c.isMessage(c.typeOf(id)) {
				if obj := c.objOf(id); obj != nil {
					c.dead[batchKey{obj, "KVs"}] = killSite{"Send", call.Pos()}
				}
			}
		}
	}
	c.applySummary(fn, call)
}

// applySummary kills the arguments a summarized callee is known to
// recycle or hand off, making the call site behave like the PutBatch
// (or Send) buried inside the helper.
func (c *recycleChecker) applySummary(fn *types.Func, call *ast.CallExpr) {
	if fn == nil || c.summaries == nil {
		return
	}
	kills, ok := c.summaries[FuncKey(fn)]
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	verb := "call to " + fn.Name()
	for idx := range kills {
		if idx >= len(call.Args) {
			continue
		}
		// A variadic slot aggregates many arguments; killing through it
		// would need per-element tracking, so it is left borrowed.
		if sig.Variadic() && idx >= sig.Params().Len()-1 {
			continue
		}
		arg := ast.Unparen(call.Args[idx])
		c.killBatchExpr(arg, verb, call.Pos())
		if id, isIdent := arg.(*ast.Ident); isIdent && c.isMessage(c.typeOf(id)) {
			if obj := c.objOf(id); obj != nil {
				c.dead[batchKey{obj, "KVs"}] = killSite{verb, call.Pos()}
			}
		}
	}
}

// killBatchExpr marks the batch behind e (an identifier or a
// Message.KVs selector) dead.
func (c *recycleChecker) killBatchExpr(e ast.Expr, verb string, pos token.Pos) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := c.objOf(e); obj != nil && c.isKVSlice(obj.Type()) {
			c.dead[batchKey{obj, ""}] = killSite{verb, pos}
		}
	case *ast.SelectorExpr:
		if key, ok := c.kvsSelector(e); ok {
			c.dead[key] = killSite{verb, pos}
		}
	}
}

// killMessageExpr kills the KVs batch inside a transport.Message
// composite literal (possibly &-ed) used as a call argument or channel
// send value.
func (c *recycleChecker) killMessageExpr(e ast.Expr, verb string, pos token.Pos) {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	lit, ok := e.(*ast.CompositeLit)
	if !ok || !c.isMessage(c.typeOf(lit)) {
		if id, isIdent := e.(*ast.Ident); isIdent && c.isMessage(c.typeOf(id)) {
			return // bare Message ident: killed only by Send/TrySend (see call)
		}
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "KVs" {
			continue
		}
		c.killBatchExpr(kv.Value, verb, pos)
	}
}

func (c *recycleChecker) useIdent(id *ast.Ident) {
	obj := c.pkg.Info.Uses[id]
	if obj == nil {
		return
	}
	if ks, dead := c.dead[batchKey{obj, ""}]; dead {
		c.report(id.Pos(), id.Name, ks)
	}
}

func (c *recycleChecker) report(pos token.Pos, name string, ks killSite) {
	if c.silent {
		return
	}
	c.r.Reportf(pos, "batch %s used after %s (recycled at line %d); copy KVs out before recycling",
		name, ks.verb, c.pkg.Fset.Position(ks.pos).Line)
}

// kvsSelector matches m.KVs where m is a transport.Message variable.
func (c *recycleChecker) kvsSelector(sel *ast.SelectorExpr) (batchKey, bool) {
	if sel.Sel.Name != "KVs" {
		return batchKey{}, false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || !c.isMessage(c.typeOf(id)) {
		return batchKey{}, false
	}
	obj := c.objOf(id)
	if obj == nil {
		return batchKey{}, false
	}
	return batchKey{obj, "KVs"}, true
}

func (c *recycleChecker) objOf(id *ast.Ident) types.Object {
	if obj := c.pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return c.pkg.Info.Defs[id]
}

func (c *recycleChecker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := c.objOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

func (c *recycleChecker) callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := c.pkg.Info.Uses[id].(*types.Func)
	return fn
}

// isKVSlice reports whether t is []transport.KV.
func (c *recycleChecker) isKVSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return isNamed(sl.Elem(), transportPath, "KV")
}

// isMessage reports whether t is transport.Message or *transport.Message.
func (c *recycleChecker) isMessage(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	return isNamed(t, transportPath, "Message")
}

func isNamed(t types.Type, path, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}
