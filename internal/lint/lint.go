// Package lint is a repo-local static-analysis framework that
// mechanically enforces the runtime's concurrency, ownership, and
// protocol invariants — the same philosophy the paper applies to user
// programs (§3.3, §5.1: check correctness conditions with a solver
// instead of trusting the programmer), turned on this repo's own
// runtime.
//
// The framework is stdlib-only (go/ast + go/types, no x/tools): a
// loader parses and type-checks the whole module once (load.go), every
// Analyzer walks the typed syntax of each package (packages are
// analyzed in parallel; a ModuleAnalyzer sees all packages at once for
// cross-package invariants), and findings are reported as
// file:line:col diagnostics. Two front ends share the driver:
// `go run ./cmd/plvet ./...` (non-zero exit on any finding, gating CI
// via `make lint` inside `make check`; `-json` emits a findings
// artifact) and the package's own tests (lint_test.go), so
// `go test ./...` alone also enforces the invariants.
//
// A finding can be suppressed at the site with an explanation:
//
//	foo = bar() //plvet:ignore recycle the pool is drained here
//
// The directive must name the analyzer it silences and carry a reason;
// it applies to findings on its own line or, for a directive alone on
// a line, the line below. Suppressed findings are counted and reported
// separately so a suppression is never silent.
//
// The shipped analyzers encode contracts that the race detector and
// the chaos suite can only catch probabilistically, if the failing
// schedule or fault happens to run:
//
//   - recycle:    a pooled transport.KV batch must not be touched after
//     PutBatch or after it is handed to Send (batch.go's contract) —
//     including through a helper call, via bottom-up interprocedural
//     summaries.
//   - atomicmix:  a word accessed through sync/atomic (or the repo's
//     atomic wrappers) must never also be read or written plainly.
//   - lockblock:  no channel operation, transport Send, time.Sleep, or
//     foreign-lock Cond.Wait while a sync.Mutex/RWMutex is held; no
//     re-acquiring a lock already held.
//   - shadow:     no declaration may shadow a predeclared builtin.
//   - kindswitch: a switch over an enum-like constant family
//     (transport.Kind, runtime.Mode, ...) must cover every declared
//     constant or carry an explicit default.
//   - errcmp:     sentinel and typed errors are matched with
//     errors.Is / errors.As, never ==/!= or a bare type assertion.
//   - metricname: every metric name registered or read anywhere in the
//     module must appear in the metrics.WellKnownNames manifest, be
//     registered exactly once, and be written by someone if read.
//   - condwait:   sync.Cond discipline — conds are built with NewCond
//     and Wait runs inside a for loop.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"sync"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// Analyzer is one registered invariant check. Implementations must be
// stateless across packages: Check is called once per analysis unit,
// possibly concurrently with other packages.
type Analyzer interface {
	// Name is the analyzer's short identifier (used in findings, the
	// plvet -only flag, and //plvet:ignore directives).
	Name() string
	// Doc is a one-line description of the enforced invariant.
	Doc() string
	// Check inspects one type-checked package and reports findings.
	Check(pkg *Package, r *Reporter)
}

// ModuleAnalyzer is an Analyzer whose invariant spans packages (e.g.
// the metric-name registry, or call summaries crossing package
// boundaries). The driver calls CheckModule once with every analysis
// unit instead of calling Check per package; Check remains usable on a
// single package (fixtures).
type ModuleAnalyzer interface {
	Analyzer
	CheckModule(pkgs []*Package, r *Reporter)
}

// Reporter collects findings on behalf of one (package, analyzer) run.
type Reporter struct {
	analyzer string
	fset     *token.FileSet
	findings *[]Finding
}

// NewReporter returns a reporter appending to findings — the hook the
// test harness uses to drive one analyzer in isolation.
func NewReporter(analyzer string, fset *token.FileSet, findings *[]Finding) *Reporter {
	return &Reporter{analyzer: analyzer, fset: fset, findings: findings}
}

// Reportf records a finding at pos.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	*r.findings = append(*r.findings, Finding{
		Analyzer: r.analyzer,
		Pos:      r.fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns every registered analyzer, in reporting order.
func Analyzers() []Analyzer {
	return []Analyzer{
		recycleAnalyzer{},
		atomicmixAnalyzer{},
		lockblockAnalyzer{},
		shadowAnalyzer{},
		kindswitchAnalyzer{},
		errcmpAnalyzer{},
		metricnameAnalyzer{},
		condwaitAnalyzer{},
	}
}

// ByName resolves a comma-separated analyzer selection ("" = all).
func ByName(names []string) ([]Analyzer, error) {
	all := Analyzers()
	if len(names) == 0 {
		return all, nil
	}
	byName := map[string]Analyzer{}
	for _, a := range all {
		byName[a.Name()] = a
	}
	var out []Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Result is one driver run's outcome: the findings that stand, and the
// ones silenced by //plvet:ignore directives (still surfaced so a
// suppression is never invisible). Both slices are position-sorted.
type Result struct {
	Findings   []Finding
	Suppressed []Finding
}

// Run applies the analyzers to every analysis unit of the module —
// per-package analyzers fan out over a goroutine per unit, module
// analyzers run once over all units — then applies the module's
// //plvet:ignore directives and returns both kept and suppressed
// findings sorted by position.
func Run(mod *Module, analyzers []Analyzer) Result {
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		findings []Finding
	)
	collect := func(local []Finding) {
		mu.Lock()
		findings = append(findings, local...)
		mu.Unlock()
	}

	var perPkg []Analyzer
	for _, a := range analyzers {
		if ma, ok := a.(ModuleAnalyzer); ok {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var local []Finding
				ma.CheckModule(mod.Pkgs, &Reporter{analyzer: ma.Name(), fset: mod.Fset, findings: &local})
				collect(local)
			}()
			continue
		}
		perPkg = append(perPkg, a)
	}
	for _, pkg := range mod.Pkgs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []Finding
			for _, a := range perPkg {
				a.Check(pkg, &Reporter{analyzer: a.Name(), fset: mod.Fset, findings: &local})
			}
			collect(local)
		}()
	}
	wg.Wait()

	ignores, bad := collectIgnores(mod)
	findings = append(findings, bad...)
	res := applyIgnores(findings, ignores)
	sortFindings(res.Findings)
	sortFindings(res.Suppressed)
	return res
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
