// Package lint is a repo-local static-analysis framework that
// mechanically enforces the runtime's concurrency and ownership
// invariants — the same philosophy the paper applies to user programs
// (§3.3, §5.1: check correctness conditions with a solver instead of
// trusting the programmer), turned on this repo's own runtime.
//
// The framework is stdlib-only (go/ast + go/types, no x/tools): a
// loader parses and type-checks the whole module once (load.go), every
// Analyzer walks the typed syntax of each package, and findings are
// reported as file:line:col diagnostics. Two front ends share the
// driver: `go run ./cmd/plvet ./...` (non-zero exit on any finding,
// gating CI via `make lint` inside `make check`) and the package's own
// tests (lint_test.go), so `go test ./...` alone also enforces the
// invariants.
//
// The shipped analyzers encode contracts that the race detector can
// only catch probabilistically, if the failing schedule happens to run:
//
//   - recycle:   a pooled transport.KV batch must not be touched after
//     PutBatch or after it is handed to Send (batch.go's contract).
//   - atomicmix: a word accessed through sync/atomic (or the repo's
//     atomic wrappers) must never also be read or written plainly.
//   - lockblock: no channel operation, transport Send, or time.Sleep
//     while a sync.Mutex/RWMutex is held.
//   - shadow:    no declaration may shadow a predeclared builtin
//     (min/max/clear compile silently on Go ≥ 1.21 and then break any
//     later use of the builtin in scope).
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// Analyzer is one registered invariant check. Implementations must be
// stateless across packages: Check is called once per analysis unit.
type Analyzer interface {
	// Name is the analyzer's short identifier (used in findings and the
	// plvet -only flag).
	Name() string
	// Doc is a one-line description of the enforced invariant.
	Doc() string
	// Check inspects one type-checked package and reports findings.
	Check(pkg *Package, r *Reporter)
}

// Reporter collects findings on behalf of one (package, analyzer) run.
type Reporter struct {
	analyzer string
	fset     *token.FileSet
	findings *[]Finding
}

// Reportf records a finding at pos.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	*r.findings = append(*r.findings, Finding{
		Analyzer: r.analyzer,
		Pos:      r.fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns every registered analyzer, in reporting order.
func Analyzers() []Analyzer {
	return []Analyzer{
		recycleAnalyzer{},
		atomicmixAnalyzer{},
		lockblockAnalyzer{},
		shadowAnalyzer{},
	}
}

// ByName resolves a comma-separated analyzer selection ("" = all).
func ByName(names []string) ([]Analyzer, error) {
	all := Analyzers()
	if len(names) == 0 {
		return all, nil
	}
	byName := map[string]Analyzer{}
	for _, a := range all {
		byName[a.Name()] = a
	}
	var out []Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies the analyzers to every analysis unit of the module and
// returns the findings sorted by position.
func Run(mod *Module, analyzers []Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range mod.Pkgs {
		for _, a := range analyzers {
			r := &Reporter{analyzer: a.Name(), fset: mod.Fset, findings: &findings}
			a.Check(pkg, r)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}
