package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// moduleOnce loads and type-checks the repo exactly once for all tests;
// the loader is the expensive part (it type-checks the stdlib
// dependencies from source).
var moduleOnce = sync.OnceValues(func() (*Module, error) {
	root, err := FindModuleRoot(".")
	if err != nil {
		return nil, err
	}
	return LoadModule(root)
})

// TestModuleClean is the same gate as `go run ./cmd/plvet ./...`: the
// repo itself must satisfy every invariant. This keeps plain
// `go test ./...` sufficient to enforce them.
func TestModuleClean(t *testing.T) {
	mod, err := moduleOnce()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(mod, Analyzers()) {
		t.Errorf("%s", f)
	}
}

// TestGoldenFixtures checks each analyzer against its seeded-violation
// fixture under testdata/src/<name>: every `// want "regex"` line must
// produce a matching finding, and no finding may appear on a line
// without one.
func TestGoldenFixtures(t *testing.T) {
	mod, err := moduleOnce()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range Analyzers() {
		t.Run(a.Name(), func(t *testing.T) {
			dir, err := filepath.Abs(filepath.Join("testdata", "src", a.Name()))
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := mod.CheckExtra(dir, "plvet/fixture/"+a.Name())
			if err != nil {
				t.Fatal(err)
			}
			var findings []Finding
			a.Check(pkg, &Reporter{analyzer: a.Name(), fset: mod.Fset, findings: &findings})
			if len(findings) == 0 {
				t.Fatalf("analyzer %s produced no findings on its violation fixture", a.Name())
			}

			wants, err := parseWants(dir)
			if err != nil {
				t.Fatal(err)
			}
			matched := map[*want]bool{}
			for _, f := range findings {
				w := matchWant(wants, f)
				if w == nil {
					t.Errorf("unexpected finding: %s", f)
					continue
				}
				matched[w] = true
			}
			for _, w := range wants {
				if !matched[w] {
					t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
				}
			}
		})
	}
}

func TestByNameRejectsUnknown(t *testing.T) {
	if _, err := ByName([]string{"recycle", "nosuch"}); err == nil {
		t.Fatal("unknown analyzer name should error")
	}
	as, err := ByName(nil)
	if err != nil || len(as) != len(Analyzers()) {
		t.Fatalf("nil selection should return all analyzers, got %d, %v", len(as), err)
	}
}

// want is one expected-finding annotation.
type want struct {
	file string // absolute path
	line int
	re   *regexp.Regexp
}

// wantRE matches `// want "regex"` and `// want ` + "`regex`" + “.
var wantRE = regexp.MustCompile("// want (?:\"([^\"]*)\"|`([^`]*)`)")

func parseWants(dir string) ([]*want, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*want
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path, err := filepath.Abs(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pat := m[1]
			if pat == "" {
				pat = m[2]
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", path, i+1, pat, err)
			}
			wants = append(wants, &want{file: path, line: i + 1, re: re})
		}
	}
	return wants, nil
}

func matchWant(wants []*want, f Finding) *want {
	for _, w := range wants {
		if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
			return w
		}
	}
	return nil
}
