package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// moduleOnce loads and type-checks the repo exactly once for all tests;
// the loader is the expensive part (it type-checks the stdlib
// dependencies from source).
var moduleOnce = sync.OnceValues(func() (*Module, error) {
	root, err := FindModuleRoot(".")
	if err != nil {
		return nil, err
	}
	return LoadModule(root)
})

// TestModuleClean is the same gate as `go run ./cmd/plvet ./...`: the
// repo itself must satisfy every invariant. This keeps plain
// `go test ./...` sufficient to enforce them.
func TestModuleClean(t *testing.T) {
	mod, err := moduleOnce()
	if err != nil {
		t.Fatal(err)
	}
	res := Run(mod, Analyzers())
	for _, f := range res.Findings {
		t.Errorf("%s", f)
	}
	// Suppressions in the real tree must be rare and deliberate; surface
	// them in test output so a new one is reviewed.
	for _, f := range res.Suppressed {
		t.Logf("suppressed: %s", f)
	}
}

// TestGoldenFixtures checks each analyzer against its seeded-violation
// fixture under testdata/src/<name>: every `// want "regex"` line must
// produce a matching finding, and no finding may appear on a line
// without one.
func TestGoldenFixtures(t *testing.T) {
	mod, err := moduleOnce()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range Analyzers() {
		t.Run(a.Name(), func(t *testing.T) {
			dir, err := filepath.Abs(filepath.Join("testdata", "src", a.Name()))
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := mod.CheckExtra(dir, "plvet/fixture/"+a.Name())
			if err != nil {
				t.Fatal(err)
			}
			var findings []Finding
			a.Check(pkg, &Reporter{analyzer: a.Name(), fset: mod.Fset, findings: &findings})
			if len(findings) == 0 {
				t.Fatalf("analyzer %s produced no findings on its violation fixture", a.Name())
			}

			wants, err := parseWants(dir)
			if err != nil {
				t.Fatal(err)
			}
			unexpected, missed := crossMatch(wants, findings)
			for _, f := range unexpected {
				t.Errorf("unexpected finding: %s", f)
			}
			for _, w := range missed {
				t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
			}
		})
	}
}

// TestFixtureCrossMatch pins the harness itself: a finding with no
// want-annotation and a want-annotation with no finding must both be
// reported, so a fixture cannot silently rot in either direction.
func TestFixtureCrossMatch(t *testing.T) {
	re := regexp.MustCompile("bad thing")
	wants := []*want{
		{file: "f.go", line: 3, re: re},
		{file: "f.go", line: 9, re: re},
	}
	findings := []Finding{
		{Analyzer: "x", Pos: token.Position{Filename: "f.go", Line: 3}, Message: "bad thing happened"},
		{Analyzer: "x", Pos: token.Position{Filename: "f.go", Line: 5}, Message: "bad thing happened"},
	}
	unexpected, missed := crossMatch(wants, findings)
	if len(unexpected) != 1 || unexpected[0].Pos.Line != 5 {
		t.Errorf("finding without annotation not reported: %v", unexpected)
	}
	if len(missed) != 1 || missed[0].line != 9 {
		t.Errorf("annotation without finding not reported: %v", missed)
	}
	// A message that does not match the pattern fails even on the right
	// line.
	off := []Finding{{Analyzer: "x", Pos: token.Position{Filename: "f.go", Line: 3}, Message: "unrelated"}}
	if unexpected, _ := crossMatch(wants, off); len(unexpected) != 1 {
		t.Errorf("non-matching message on annotated line should be unexpected, got %v", unexpected)
	}
}

// TestSuppression runs the full driver over the suppression fixture: a
// correctly scoped //plvet:ignore moves the finding to Suppressed (same
// line and line-above forms), a directive naming the wrong analyzer
// suppresses nothing, and malformed/unknown directives are findings
// themselves.
func TestSuppression(t *testing.T) {
	mod, err := moduleOnce()
	if err != nil {
		t.Fatal(err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "suppress"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := mod.CheckExtra(dir, "plvet/fixture/suppress")
	if err != nil {
		t.Fatal(err)
	}
	// A synthetic one-package module reuses the real loader's fset and
	// type info while scoping Run (and its directive scan) to the
	// fixture.
	fixMod := &Module{Root: dir, Path: mod.Path, Fset: mod.Fset, Pkgs: []*Package{pkg}}
	res := Run(fixMod, []Analyzer{errcmpAnalyzer{}})

	byLine := func(fs []Finding, analyzer string) map[int]string {
		m := map[int]string{}
		for _, f := range fs {
			if f.Analyzer == analyzer {
				m[f.Pos.Line] = f.Message
			}
		}
		return m
	}
	supp := byLine(res.Suppressed, "errcmp")
	if len(supp) != 2 {
		t.Errorf("want 2 suppressed errcmp findings (same-line and line-above), got %d: %v", len(supp), res.Suppressed)
	}
	kept := byLine(res.Findings, "errcmp")
	if len(kept) != 3 {
		t.Errorf("want 3 surviving errcmp findings (wrong-analyzer, malformed, unknown-name directives), got %d: %v", len(kept), res.Findings)
	}
	plvet := byLine(res.Findings, "plvet")
	var sawMalformed, sawUnknown bool
	for _, msg := range plvet {
		if strings.Contains(msg, "malformed ignore directive") {
			sawMalformed = true
		}
		if strings.Contains(msg, "unknown analyzer") {
			sawUnknown = true
		}
	}
	if !sawMalformed {
		t.Error("reason-less directive not reported as malformed")
	}
	if !sawUnknown {
		t.Error("directive naming unknown analyzer not reported")
	}
}

// crossMatch pairs findings with want-annotations and returns the
// mismatches in both directions.
func crossMatch(wants []*want, findings []Finding) (unexpected []Finding, missed []*want) {
	matched := map[*want]bool{}
	for _, f := range findings {
		w := matchWant(wants, f)
		if w == nil {
			unexpected = append(unexpected, f)
			continue
		}
		matched[w] = true
	}
	for _, w := range wants {
		if !matched[w] {
			missed = append(missed, w)
		}
	}
	return unexpected, missed
}

func TestByNameRejectsUnknown(t *testing.T) {
	if _, err := ByName([]string{"recycle", "nosuch"}); err == nil {
		t.Fatal("unknown analyzer name should error")
	}
	as, err := ByName(nil)
	if err != nil || len(as) != len(Analyzers()) {
		t.Fatalf("nil selection should return all analyzers, got %d, %v", len(as), err)
	}
}

// want is one expected-finding annotation.
type want struct {
	file string // absolute path
	line int
	re   *regexp.Regexp
}

// wantRE matches `// want "regex"` and `// want ` + "`regex`" + “.
var wantRE = regexp.MustCompile("// want (?:\"([^\"]*)\"|`([^`]*)`)")

func parseWants(dir string) ([]*want, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*want
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path, err := filepath.Abs(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pat := m[1]
			if pat == "" {
				pat = m[2]
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", path, i+1, pat, err)
			}
			wants = append(wants, &want{file: path, line: i + 1, re: re})
		}
	}
	return wants, nil
}

func matchWant(wants []*want, f Finding) *want {
	for _, w := range wants {
		if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
			return w
		}
	}
	return nil
}
