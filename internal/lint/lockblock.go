package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockblockAnalyzer forbids blocking operations while a sync.Mutex or
// sync.RWMutex is held: channel sends and receives, select statements
// without a default clause (with one, a select is Go's non-blocking
// channel op and is allowed), ranging over a channel, time.Sleep, and
// transport Send/TrySend calls.
// The runtime's progress argument (asynchronous workers never wait on
// each other inside shared-state critical sections — the paper's §6
// no-global-barrier property) depends on critical sections being
// short and non-blocking; a channel op under a lock can deadlock the
// whole ring the first time the peer is slow, and no test schedule is
// guaranteed to exercise it.
//
// Tracking is intra-function and textual: mu.Lock()/mu.RLock() pushes
// the receiver expression onto the held set, the matching Unlock pops
// it, and `defer mu.Unlock()` leaves it held for the remainder of the
// function (which is exactly the scope in which blocking is unsafe).
// Branch bodies are analyzed with a copy of the held set, so a lock
// acquired and released inside one branch never leaks into siblings.
// Function literals start with an empty held set — they run on their
// own goroutine or at defer time, not under the caller's locks at this
// textual point.
//
// Two checks ride on the same held set:
//
//   - Re-acquiring a key already held (mu.Lock under mu.Lock, or any
//     RLock/Lock mix on one key) is a self-deadlock — sync mutexes are
//     not reentrant, and recursive RLock deadlocks the moment a writer
//     queues between the two acquisitions.
//   - sync.Cond Wait (the subshard pool's idle-parking path) must run
//     with exactly one lock held: zero means its Locker is unlocked
//     and Wait panics; more than one means Wait releases only its own
//     locker and sleeps with the rest held — a blocking op under a
//     lock, same as a channel receive. Signal and Broadcast never
//     block and are never flagged.
type lockblockAnalyzer struct{}

func (lockblockAnalyzer) Name() string { return "lockblock" }
func (lockblockAnalyzer) Doc() string {
	return "no blocking op or lock re-acquisition while a sync mutex is held; Cond.Wait holds exactly its locker"
}

// heldLock is one mutex currently held, keyed by the receiver
// expression's printed form (types.ExprString), so d.mu and peer.mu
// stay distinct.
type heldLock struct {
	key  string // receiver expression, e.g. "w.mu"
	read bool   // RLock rather than Lock
	pos  token.Pos
}

type lockblockChecker struct {
	pkg *Package
	r   *Reporter
}

func (lockblockAnalyzer) Check(pkg *Package, r *Reporter) {
	c := &lockblockChecker{pkg: pkg, r: r}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil {
				c.stmts(fd.Body.List, nil)
			}
			// FuncLits are entered from the statement walker with an
			// empty held set; don't double-visit them here.
			_, isLit := n.(*ast.FuncLit)
			return !isLit
		})
	}
	// Top-level FuncLits outside any FuncDecl (package var initializers).
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			ast.Inspect(gd, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					c.stmts(fl.Body.List, nil)
					return false
				}
				return true
			})
		}
	}
}

// stmts walks a statement list in textual order, threading the held set
// through, and returns the set as of the end of the list.
func (c *lockblockChecker) stmts(list []ast.Stmt, held []heldLock) []heldLock {
	for _, s := range list {
		held = c.stmt(s, held)
	}
	return held
}

func (c *lockblockChecker) stmt(s ast.Stmt, held []heldLock) []heldLock {
	switch s := s.(type) {
	case nil:
		return held
	case *ast.BlockStmt:
		return c.stmts(s.List, held)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, held)
	case *ast.ExprStmt:
		c.scanExpr(s.X, held)
		return c.lockOps(s.X, held)
	case *ast.SendStmt:
		c.flagIfHeld(s.Arrow, held, "channel send")
		c.scanExpr(s.Chan, held)
		c.scanExpr(s.Value, held)
		return held
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.scanExpr(e, held)
			held = c.lockOps(e, held)
		}
		for _, e := range s.Lhs {
			c.scanExpr(e, held)
		}
		return held
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.scanExpr(v, held)
					}
				}
			}
		}
		return held
	case *ast.IncDecStmt:
		c.scanExpr(s.X, held)
		return held
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.scanExpr(e, held)
		}
		return held
	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the lock held for the rest of the
		// function — the held set is deliberately not popped, because
		// every later statement still runs under the lock. Other
		// deferred calls only evaluate their arguments now.
		if c.isUnlock(s.Call) {
			return held
		}
		for _, a := range s.Call.Args {
			c.scanExpr(a, held)
		}
		c.enterFuncLits(s.Call.Fun)
		return held
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			c.scanExpr(a, held)
		}
		c.enterFuncLits(s.Call.Fun)
		return held
	case *ast.IfStmt:
		held = c.stmt(s.Init, held)
		c.scanExpr(s.Cond, held)
		c.stmts(s.Body.List, cloneHeld(held))
		c.stmt(s.Else, cloneHeld(held))
		return held
	case *ast.ForStmt:
		held = c.stmt(s.Init, held)
		c.scanExpr(s.Cond, held)
		body := cloneHeld(held)
		body = c.stmt(s.Post, body)
		c.stmts(s.Body.List, body)
		return held
	case *ast.RangeStmt:
		if t := c.exprType(s.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				c.flagIfHeld(s.Range, held, "range over channel")
			}
		}
		c.scanExpr(s.X, held)
		c.stmts(s.Body.List, cloneHeld(held))
		return held
	case *ast.SwitchStmt:
		held = c.stmt(s.Init, held)
		c.scanExpr(s.Tag, held)
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				for _, e := range clause.List {
					c.scanExpr(e, held)
				}
				c.stmts(clause.Body, cloneHeld(held))
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		held = c.stmt(s.Init, held)
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				c.stmts(clause.Body, cloneHeld(held))
			}
		}
		return held
	case *ast.SelectStmt:
		// A select with a default clause never blocks — it is Go's
		// spelling of a non-blocking channel op (the transport's locked
		// trySend relies on exactly this: the lock is what fences the
		// channel against a concurrent close). Only a default-less
		// select can park the goroutine with the lock held.
		hasDefault := false
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok && clause.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			c.flagIfHeld(s.Select, held, "select")
		}
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				c.stmts(clause.Body, cloneHeld(held))
			}
		}
		return held
	}
	return held
}

// scanExpr flags blocking operations inside one expression: channel
// receives, time.Sleep, and transport Send/TrySend. FuncLit bodies are
// analyzed as fresh functions with nothing held.
func (c *lockblockChecker) scanExpr(e ast.Expr, held []heldLock) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.stmts(n.Body.List, nil)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.flagIfHeld(n.OpPos, held, "channel receive")
			}
		case *ast.CallExpr:
			fn := calleeFunc(c.pkg, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
				c.flagIfHeld(n.Pos(), held, "time.Sleep")
			case fn.Pkg().Path() == transportPath &&
				(fn.Name() == "Send" || fn.Name() == "TrySend") &&
				fn.Type().(*types.Signature).Recv() != nil:
				c.flagIfHeld(n.Pos(), held, "transport "+fn.Name())
			case isCondMethod(c.pkg, n, "Wait"):
				c.checkCondWait(n, held)
			}
		}
		return true
	})
}

// enterFuncLits visits function literals in a go/defer callee with an
// empty held set.
func (c *lockblockChecker) enterFuncLits(fun ast.Expr) {
	ast.Inspect(fun, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			c.stmts(fl.Body.List, nil)
			return false
		}
		return true
	})
}

// lockOps interprets Lock/RLock/Unlock/RUnlock calls in an expression
// evaluated as a statement, returning the updated held set.
func (c *lockblockChecker) lockOps(e ast.Expr, held []heldLock) []heldLock {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return held
	}
	name, key, ok := c.mutexCall(call)
	if !ok {
		return held
	}
	switch name {
	case "Lock", "RLock":
		// Re-acquiring a held key is a self-deadlock: sync mutexes are
		// not reentrant, and recursive RLock deadlocks as soon as a
		// writer queues between the acquisitions (sync's documented
		// prohibition).
		for _, h := range held {
			if h.key == key {
				c.r.Reportf(call.Pos(), "%s of %s while already held (locked at line %d); sync locks are not reentrant",
					name, key, c.pkg.Fset.Position(h.pos).Line)
				break
			}
		}
		return append(held, heldLock{key: key, read: name == "RLock", pos: call.Pos()})
	case "Unlock", "RUnlock":
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].key == key && held[i].read == (name == "RUnlock") {
				return append(append([]heldLock{}, held[:i]...), held[i+1:]...)
			}
		}
	}
	return held
}

// isUnlock reports whether call is mu.Unlock() or mu.RUnlock().
func (c *lockblockChecker) isUnlock(call *ast.CallExpr) bool {
	name, _, ok := c.mutexCall(call)
	return ok && (name == "Unlock" || name == "RUnlock")
}

// mutexCall matches a call to one of sync.(RW)Mutex's methods
// (including through embedding) and returns the method name plus the
// receiver expression's printed form as the held-set key.
func (c *lockblockChecker) mutexCall(call *ast.CallExpr) (name, key string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := c.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", false
	}
	t := recv.Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return "", "", false
	}
	return fn.Name(), types.ExprString(sel.X), true
}

// checkCondWait enforces the Cond.Wait held-set contract: Wait
// atomically unlocks its Locker, sleeps, and re-locks — so exactly one
// lock (assumed to be that Locker) must be held at the call. Zero held
// means the Locker is unlocked and Wait panics; two or more means the
// extra locks stay held across the sleep, which is the same progress
// hazard as any other blocking op under a lock.
func (c *lockblockChecker) checkCondWait(call *ast.CallExpr, held []heldLock) {
	switch {
	case len(held) == 0:
		c.r.Reportf(call.Pos(), "sync.Cond Wait with no lock held; lock the Cond's Locker first (Wait unlocks it)")
	case len(held) > 1:
		h := held[0]
		c.r.Reportf(call.Pos(), "sync.Cond Wait while %d locks are held (%s locked at line %d); Wait releases only the Cond's own locker",
			len(held), h.key, c.pkg.Fset.Position(h.pos).Line)
	}
}

// flagIfHeld reports a blocking operation when any mutex is held.
func (c *lockblockChecker) flagIfHeld(pos token.Pos, held []heldLock, what string) {
	if len(held) == 0 {
		return
	}
	h := held[len(held)-1]
	c.r.Reportf(pos, "%s while %s is held (locked at line %d); release the lock before blocking",
		what, h.key, c.pkg.Fset.Position(h.pos).Line)
}

func (c *lockblockChecker) exprType(e ast.Expr) types.Type {
	if tv, ok := c.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func cloneHeld(held []heldLock) []heldLock {
	return append([]heldLock{}, held...)
}
