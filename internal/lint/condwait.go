package lint

import (
	"go/ast"
	"go/types"
)

// condwaitAnalyzer enforces sync.Cond discipline. The subshard scan
// pool (internal/runtime/subshard.go) parks idle workers on a shared
// Cond, which makes two classic mistakes live hazards in this tree:
//
//  1. A Cond used by value. sync.Cond must be constructed with
//     sync.NewCond so its Locker is set; a zero-value Cond (var
//     declaration, value field initialised by a composite literal, or
//     a bare sync.Cond{} literal) panics with a nil Locker on the
//     first Wait, and copying a Cond after first use is undefined.
//     The analyzer flags zero-value sync.Cond declarations and
//     composite-literal fields, and value (non-pointer) struct fields
//     of type sync.Cond — the field forces every method call through
//     a copyable value.
//
//  2. Wait outside a loop. Wait releases the lock, sleeps, and
//     re-acquires — but a wakeup is a hint, not a guarantee: Broadcast
//     wakes every waiter and only one wins the predicate, so the
//     caller must re-check in a for loop ("for !cond { c.Wait() }").
//     An if-guarded or bare Wait is a lost-wakeup / spurious-wakeup
//     bug that surfaces as a rare hang, exactly the class of failure
//     the park/resume protocol cannot debug after the fact.
//
// Signal and Broadcast carry no such constraints and are never
// flagged here (lockblock covers what locks are held around them).
type condwaitAnalyzer struct{}

func (condwaitAnalyzer) Name() string { return "condwait" }
func (condwaitAnalyzer) Doc() string {
	return "sync.Cond is built with NewCond and Wait is called inside a for loop"
}

func (condwaitAnalyzer) Check(pkg *Package, r *Reporter) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ValueSpec:
				// var c sync.Cond — zero value, nil Locker.
				if n.Type != nil && len(n.Values) == 0 && isCondValue(pkg, n.Type) {
					r.Reportf(n.Pos(), "zero-value sync.Cond (nil Locker panics on Wait); construct with sync.NewCond")
				}
			case *ast.StructType:
				for _, f := range n.Fields.List {
					if isCondValue(pkg, f.Type) {
						r.Reportf(f.Pos(), "sync.Cond struct field by value; use *sync.Cond set with sync.NewCond (a Cond must not be copied)")
					}
				}
			case *ast.CompositeLit:
				// sync.Cond{} or sync.Cond{L: mu}: even with L set, the
				// literal invites copying before first use.
				if tv, ok := pkg.Info.Types[n]; ok && isNamed(tv.Type, "sync", "Cond") {
					r.Reportf(n.Pos(), "sync.Cond composite literal; construct with sync.NewCond")
				}
			}
			return true
		})
		// The loop tracker walks the whole file separately: function
		// bodies are reached with inFor=false (a FuncDecl is not a loop),
		// so every Wait call is classified in one pass.
		checkWaitLoops(pkg, r, file, false)
	}
}

// isCondValue reports whether the type expression denotes sync.Cond by
// value (not *sync.Cond).
func isCondValue(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return isNamed(tv.Type, "sync", "Cond")
}

// checkWaitLoops walks a function body tracking whether each statement
// sits inside a for loop; a (*sync.Cond).Wait call reached with inFor
// false is reported. Function literals reset the flag: a closure's
// body runs whenever the closure does, not under the enclosing loop.
func checkWaitLoops(pkg *Package, r *Reporter, body ast.Node, inFor bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Init != nil {
				checkWaitLoops(pkg, r, n.Init, inFor)
			}
			if n.Cond != nil {
				checkWaitLoops(pkg, r, n.Cond, inFor)
			}
			if n.Post != nil {
				checkWaitLoops(pkg, r, n.Post, inFor)
			}
			checkWaitLoops(pkg, r, n.Body, true)
			return false
		case *ast.RangeStmt:
			checkWaitLoops(pkg, r, n.X, inFor)
			checkWaitLoops(pkg, r, n.Body, true)
			return false
		case *ast.FuncLit:
			checkWaitLoops(pkg, r, n.Body, false)
			return false
		case *ast.CallExpr:
			if !inFor && isCondMethod(pkg, n, "Wait") {
				r.Reportf(n.Pos(), "sync.Cond Wait outside a for loop; wakeups are hints, re-check the predicate in a loop")
			}
		}
		return true
	})
}

// isCondMethod reports whether call is (*sync.Cond).<name>(...).
func isCondMethod(pkg *Package, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamedOrPtr(sig.Recv().Type(), "sync", "Cond")
}
