package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomicmixAnalyzer enforces the MonoTable word discipline (paper §5.2:
// accumulation and intermediate entries are updated with lock-free
// atomic folds): a variable or struct field that is accessed through
// sync/atomic — directly or via the repo's thin wrappers (monotable's
// loadU64/casU64/swapWord/loadWord/markDirty, agg's Load/Store and the
// Op atomic folds, graphsys's addFloat) — must never also be read or
// written plainly. A single plain access beside atomics is a data race
// that `-race` only reports when the interleaving happens to occur;
// this check rejects it deterministically at lint time.
//
// Per package, pass 1 collects every word marked atomic by such a call
// (the base variable of an &x, &x.f, or &x.f[i] argument, a pointer
// passed straight through, or a slice handed to an element-atomic
// wrapper). Pass 2 flags plain element reads/writes of marked slices,
// plain value uses of marked scalars, and plain dereferences of marked
// pointers. Taking an address and passing it to a non-atomic function
// is neutral (ownership transfer the analyzer cannot see through), and
// a declaration's own initializer is exempt — initialization before a
// word is published is the one sanctioned plain write.
type atomicmixAnalyzer struct{}

func (atomicmixAnalyzer) Name() string { return "atomicmix" }
func (atomicmixAnalyzer) Doc() string {
	return "a word accessed via sync/atomic (or the repo's atomic wrappers) must not also be accessed plainly"
}

// atomicWrappers are the repo-local functions that perform atomic
// accesses on behalf of their pointer/slice arguments. Keys are
// qualified names: "pkgpath.Func" or "(pkgpath.Type).Method".
var atomicWrappers = map[string]bool{
	"powerlog/internal/agg.Load":                        true,
	"powerlog/internal/agg.Store":                       true,
	"(powerlog/internal/agg.Op).AtomicFold":             true,
	"(powerlog/internal/agg.Op).AtomicExchangeIdentity": true,
	"powerlog/internal/monotable.loadU64":               true,
	"powerlog/internal/monotable.casU64":                true,
	"powerlog/internal/monotable.swapWord":              true,
	"powerlog/internal/monotable.loadWord":              true,
	"powerlog/internal/monotable.markDirty":             true,
	"powerlog/internal/graphsys.addFloat":               true,
}

// markKind distinguishes how a marked object's words are reached.
type markKind int

const (
	markScalar  markKind = iota // the variable itself is the atomic word
	markElem                    // elements of the slice/array are atomic words
	markPointer                 // the pointee is the atomic word
)

type atomicMark struct {
	kind markKind
	pos  token.Pos // first atomic access, cited in findings
}

type atomicmixChecker struct {
	pkg    *Package
	r      *Reporter
	marked map[types.Object]atomicMark
}

func (atomicmixAnalyzer) Check(pkg *Package, r *Reporter) {
	c := &atomicmixChecker{pkg: pkg, r: r, marked: map[types.Object]atomicMark{}}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && c.isAtomicEntry(call) {
				for _, arg := range call.Args {
					c.markArg(arg)
				}
			}
			return true
		})
	}
	if len(c.marked) == 0 {
		return
	}
	for _, file := range pkg.Files {
		c.scan(file, false)
	}
}

// isAtomicEntry reports whether call invokes sync/atomic or an
// allowlisted wrapper.
func (c *atomicmixChecker) isAtomicEntry(call *ast.CallExpr) bool {
	fn := calleeFunc(c.pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "sync/atomic" {
		return true
	}
	return atomicWrappers[qualifiedName(fn)]
}

// qualifiedName renders a function as "pkg.Func" or "(pkg.Type).Method".
func qualifiedName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return "(" + named.Obj().Pkg().Path() + "." + named.Obj().Name() + ")." + fn.Name()
		}
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// markArg records the object behind one atomic-call argument.
func (c *atomicmixChecker) markArg(arg ast.Expr) {
	e := ast.Unparen(arg)
	addressed := false
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		addressed = true
		e = ast.Unparen(u.X)
	}
	indexed := false
	for {
		if ie, ok := e.(*ast.IndexExpr); ok {
			indexed = true
			e = ast.Unparen(ie.X)
			continue
		}
		break
	}
	obj := baseObject(c.pkg, e)
	if obj == nil {
		return
	}
	t := obj.Type()
	var kind markKind
	switch {
	case indexed:
		kind = markElem
	case addressed:
		kind = markScalar
	default:
		// Bare argument: a pointer forwarded to the wrapper, or a whole
		// slice whose elements the wrapper treats atomically.
		switch t.Underlying().(type) {
		case *types.Pointer:
			kind = markPointer
		case *types.Slice, *types.Array:
			kind = markElem
		default:
			return // a plain value copy, not an atomic word
		}
	}
	if _, ok := c.marked[obj]; !ok {
		c.marked[obj] = atomicMark{kind: kind, pos: arg.Pos()}
	}
}

// baseObject resolves an ident or field selector to its object.
func baseObject(pkg *Package, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := pkg.Info.Uses[e]; obj != nil {
			return obj
		}
		return pkg.Info.Defs[e]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[e.Sel]
	}
	return nil
}

// scan walks the syntax flagging plain accesses. exempt is true inside
// contexts where reaching a marked word is sanctioned: the arguments of
// atomic entry points, and addresses handed to other functions.
func (c *atomicmixChecker) scan(n ast.Node, exempt bool) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.CallExpr:
		c.scan(n.Fun, exempt)
		entry := c.isAtomicEntry(n)
		for _, arg := range n.Args {
			argExempt := exempt
			if entry && c.isAddrLike(arg) {
				argExempt = true
			} else if !entry && c.escapesAddress(arg) {
				// &x passed to an arbitrary function: neutral transfer
				// (e.g. monotable's foldAccCell receives the cell).
				argExempt = true
			}
			c.scan(arg, argExempt)
		}
		return
	case *ast.IndexExpr:
		if obj := baseObject(c.pkg, ast.Unparen(n.X)); obj != nil {
			if m, ok := c.marked[obj]; ok && m.kind == markElem && !exempt {
				c.r.Reportf(n.Pos(), "plain access to element of %s, which is accessed atomically (first atomic use at line %d)",
					obj.Name(), c.pkg.Fset.Position(m.pos).Line)
			}
		}
		c.scan(n.X, exempt)
		c.scan(n.Index, exempt)
		return
	case *ast.StarExpr:
		if obj := baseObject(c.pkg, ast.Unparen(n.X)); obj != nil {
			if m, ok := c.marked[obj]; ok && m.kind == markPointer && !exempt {
				c.r.Reportf(n.Pos(), "plain dereference of %s, which is accessed atomically (first atomic use at line %d)",
					obj.Name(), c.pkg.Fset.Position(m.pos).Line)
			}
		}
		c.scan(n.X, exempt)
		return
	case *ast.SelectorExpr:
		c.flagScalar(n.Sel, n.Pos(), exempt)
		c.scan(n.X, exempt)
		return
	case *ast.Ident:
		c.flagScalar(n, n.Pos(), exempt)
		return
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			// The address computation itself is not a data access; what
			// happens to the pointer decides, and the CallExpr case above
			// already classified that.
			c.scan(n.X, true)
			return
		}
		c.scan(n.X, exempt)
		return
	}
	// Generic traversal for all other nodes.
	ast.Inspect(n, func(child ast.Node) bool {
		if child == n {
			return true
		}
		switch child.(type) {
		case *ast.CallExpr, *ast.IndexExpr, *ast.StarExpr, *ast.SelectorExpr, *ast.Ident, *ast.UnaryExpr:
			c.scan(child, exempt)
			return false
		}
		return true
	})
}

// flagScalar reports a plain value use of a scalar-marked object.
func (c *atomicmixChecker) flagScalar(id *ast.Ident, pos token.Pos, exempt bool) {
	if exempt {
		return
	}
	obj := c.pkg.Info.Uses[id] // Defs excluded: declarations pre-publication are sanctioned
	if obj == nil {
		return
	}
	if m, ok := c.marked[obj]; ok && m.kind == markScalar {
		c.r.Reportf(pos, "plain access to %s, which is accessed atomically (first atomic use at line %d)",
			obj.Name(), c.pkg.Fset.Position(m.pos).Line)
	}
}

// isAddrLike reports whether an atomic-entry argument denotes the word
// (or word container) rather than a plain value: &x, a pointer, or a
// slice.
func (c *atomicmixChecker) isAddrLike(arg ast.Expr) bool {
	e := ast.Unparen(arg)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		return true
	}
	if tv, ok := c.pkg.Info.Types[e]; ok && tv.Type != nil {
		switch tv.Type.Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Array:
			return true
		}
	}
	return false
}

// escapesAddress reports whether arg takes an address (so the callee,
// not this site, governs how the word is accessed).
func (c *atomicmixChecker) escapesAddress(arg ast.Expr) bool {
	e := ast.Unparen(arg)
	u, ok := e.(*ast.UnaryExpr)
	return ok && u.Op == token.AND
}

// calleeFunc resolves the *types.Func a call invokes, if any.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}
