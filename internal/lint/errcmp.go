package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// errcmpAnalyzer enforces sentinel-error discipline: a value of type
// error is matched with errors.Is, and a typed error (ConfigError,
// MissingShardError, ...) is extracted with errors.As — never with
// ==/!= against a sentinel or a bare type assertion. The transport and
// fault layers wrap errors on the way up (the injector decorates
// conns, the TCP retry path wraps ErrPeerUnavailable with peer
// context, Run wraps ErrWorkerLost with the round), so an identity
// comparison that happens to work today silently stops matching the
// first time a decorator adds a layer of %w — the failure is then
// *unsurfaced*, not crashed, which is exactly the drift this suite
// exists to prevent.
//
// Comparisons against nil stay legal (that is how Go spells "no
// error"), as do comparisons where neither operand is error-typed.
// Type switches over an error value and assertions to another
// interface are flagged the same as concrete assertions: errors.As
// handles every case and sees through wrapping.
type errcmpAnalyzer struct{}

func (errcmpAnalyzer) Name() string { return "errcmp" }
func (errcmpAnalyzer) Doc() string {
	return "errors are matched with errors.Is/errors.As, not ==/!= or type assertions"
}

func (errcmpAnalyzer) Check(pkg *Package, r *Reporter) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isNilExpr(pkg, n.X) || isNilExpr(pkg, n.Y) {
					return true
				}
				if isErrorType(pkg, n.X) || isErrorType(pkg, n.Y) {
					r.Reportf(n.OpPos, "error compared with %s; use errors.Is (identity breaks under %%w wrapping)", n.Op)
				}
			case *ast.TypeAssertExpr:
				// n.Type == nil is the x.(type) of a type switch; the
				// TypeSwitchStmt case below reports it once.
				if n.Type != nil && isErrorType(pkg, n.X) {
					r.Reportf(n.Pos(), "type assertion on error value; use errors.As (assertion breaks under %%w wrapping)")
				}
			case *ast.TypeSwitchStmt:
				if x := typeSwitchOperand(n); x != nil && isErrorType(pkg, x) {
					r.Reportf(n.Pos(), "type switch on error value; use errors.As (assertion breaks under %%w wrapping)")
				}
			}
			return true
		})
	}
}

// typeSwitchOperand extracts the x of `switch x.(type)` or
// `switch v := x.(type)`.
func typeSwitchOperand(sw *ast.TypeSwitchStmt) ast.Expr {
	var assertExpr ast.Expr
	switch s := sw.Assign.(type) {
	case *ast.ExprStmt:
		assertExpr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			assertExpr = s.Rhs[0]
		}
	}
	ta, ok := ast.Unparen(assertExpr).(*ast.TypeAssertExpr)
	if !ok {
		return nil
	}
	return ta.X
}

// isNilExpr reports whether e is the untyped nil.
func isNilExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok {
		return false
	}
	_, isNil := tv.Type.(*types.Basic)
	return isNil && tv.IsNil()
}

// isErrorType reports whether e's static type is an interface that
// implements error (the error interface itself, or a superset like
// net.Error). Concrete struct/pointer types are deliberately not
// matched on the comparison side: comparing two *ConfigError pointers
// is pointer identity, which == states honestly.
func isErrorType(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	iface, ok := tv.Type.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(tv.Type, errType) || types.Identical(iface, errType)
}
