package lint

import (
	"go/ast"
	"go/token"
)

// shadowAnalyzer forbids declarations that shadow predeclared builtins.
// Shadowing min/max/clear compiles silently on Go ≥ 1.21 but breaks any
// later use of the builtin in the same scope — exactly the bug class
// the adaptive-β code once hit (β clamp locals named max and floor hid
// the builtins; see flush.go's betaFloor/betaCeil fields).
type shadowAnalyzer struct{}

func (shadowAnalyzer) Name() string { return "shadow" }
func (shadowAnalyzer) Doc() string {
	return "no declaration may shadow a predeclared builtin (min/max/clear/...)"
}

// predeclared is every identifier a local declaration must not shadow.
var predeclared = map[string]bool{
	"append": true, "cap": true, "clear": true, "close": true,
	"complex": true, "copy": true, "delete": true, "imag": true,
	"len": true, "make": true, "max": true, "min": true, "new": true,
	"panic": true, "print": true, "println": true, "real": true,
	"recover": true,
}

func (shadowAnalyzer) Check(pkg *Package, r *Reporter) {
	flag := func(id *ast.Ident) {
		if id != nil && predeclared[id.Name] {
			r.Reportf(id.Pos(), "declaration shadows builtin %q", id.Name)
		}
	}
	flagFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				flag(n)
			}
		}
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					for _, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							flag(id)
						}
					}
				}
			case *ast.ValueSpec:
				for _, id := range n.Names {
					flag(id)
				}
			case *ast.FuncDecl:
				// Methods live in the selector namespace and cannot shadow
				// a builtin; only package-level function names can.
				if n.Recv == nil {
					flag(n.Name)
				}
				flagFields(n.Recv)
				flagFields(n.Type.Params)
				flagFields(n.Type.Results)
			case *ast.FuncLit:
				flagFields(n.Type.Params)
				flagFields(n.Type.Results)
			case *ast.RangeStmt:
				if n.Tok == token.DEFINE {
					if id, ok := n.Key.(*ast.Ident); ok {
						flag(id)
					}
					if id, ok := n.Value.(*ast.Ident); ok {
						flag(id)
					}
				}
			case *ast.TypeSwitchStmt:
				if a, ok := n.Assign.(*ast.AssignStmt); ok && a.Tok == token.DEFINE {
					if id, ok := a.Lhs[0].(*ast.Ident); ok {
						flag(id)
					}
				}
			case *ast.TypeSpec:
				flag(n.Name)
			}
			return true
		})
	}
}
