package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The loader parses and type-checks the whole module once, with nothing
// beyond the standard library. Module-internal imports are served from
// the packages we type-check ourselves (in dependency order); standard
// library imports fall back to go/importer's source importer, which
// type-checks GOROOT packages from source and therefore needs no
// compiled export data. cgo is disabled for that fallback so packages
// like net resolve to their pure-Go variants — only API shapes matter
// for analysis, not the build that would actually link.

// Module is the whole repo parsed and type-checked once.
type Module struct {
	Root string // absolute path of the directory holding go.mod
	Path string // module path declared in go.mod
	Fset *token.FileSet
	Pkgs []*Package // analysis units in deterministic order

	typed map[string]*types.Package // import path → plain (no test files) package
	imp   types.Importer            // stdlib fallback
}

// Package is one analysis unit: a package's syntax plus type info. A
// directory yields up to two units — the package itself (with its
// in-package test files folded in, so test-only code is analyzed too)
// and the external _test package when one exists.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	Mod        *Module // owning module (scopes module-declared types)
}

// pkgDir is one directory's parsed syntax before type checking.
type pkgDir struct {
	dir        string
	importPath string
	base       []*ast.File // package P
	inTest     []*ast.File // package P files from _test.go
	extTest    []*ast.File // package P_test files
	imports    []string    // module-internal imports of the base files
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: go.mod not found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from go.mod (first `module` line;
// the file has no dependencies to consider).
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if p, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(p), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// LoadModule parses and type-checks every package under root.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// The source importer reads GOROOT from source; with cgo off it
	// picks the pure-Go file sets, so no C toolchain is ever involved.
	build.Default.CgoEnabled = false
	mod := &Module{
		Root:  root,
		Path:  modPath,
		Fset:  fset,
		typed: map[string]*types.Package{},
		imp:   importer.ForCompiler(fset, "source", nil),
	}

	dirs, err := mod.parseTree()
	if err != nil {
		return nil, err
	}
	order, err := topoSort(dirs)
	if err != nil {
		return nil, err
	}

	// Phase 1: type-check plain packages in dependency order and
	// register them so later packages (and test variants) can import
	// them.
	for _, d := range order {
		pkg, info, err := mod.check(d.importPath, d.base)
		if err != nil {
			return nil, err
		}
		mod.typed[d.importPath] = pkg
		if len(d.inTest) == 0 {
			mod.Pkgs = append(mod.Pkgs, &Package{
				ImportPath: d.importPath, Dir: d.dir, Fset: fset,
				Files: d.base, Types: pkg, Info: info, Mod: mod,
			})
		}
	}
	// Phase 2: test variants. A package with in-package test files is
	// re-checked with them folded in and that variant becomes the
	// analysis unit (each file is analyzed exactly once); external
	// _test packages are separate units. Both may import any plain
	// package, all of which are registered by now.
	for _, d := range order {
		if len(d.inTest) > 0 {
			files := append(append([]*ast.File{}, d.base...), d.inTest...)
			pkg, info, err := mod.check(d.importPath, files)
			if err != nil {
				return nil, err
			}
			mod.Pkgs = append(mod.Pkgs, &Package{
				ImportPath: d.importPath, Dir: d.dir, Fset: fset,
				Files: files, Types: pkg, Info: info, Mod: mod,
			})
		}
		if len(d.extTest) > 0 {
			path := d.importPath + "_test"
			pkg, info, err := mod.check(path, d.extTest)
			if err != nil {
				return nil, err
			}
			mod.Pkgs = append(mod.Pkgs, &Package{
				ImportPath: path, Dir: d.dir, Fset: fset,
				Files: d.extTest, Types: pkg, Info: info, Mod: mod,
			})
		}
	}
	return mod, nil
}

// CheckExtra parses and type-checks a directory outside the module walk
// (analyzer test fixtures under testdata) against the loaded module, so
// fixtures can import real module packages such as internal/transport.
func (m *Module) CheckExtra(dir, importPath string) (*Package, error) {
	files, err := parseDir(m.Fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg, info, err := m.check(importPath, files)
	if err != nil {
		return nil, err
	}
	return &Package{ImportPath: importPath, Dir: dir, Fset: m.Fset, Files: files, Types: pkg, Info: info, Mod: m}, nil
}

// check type-checks one file set as import path `path`.
func (m *Module) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var errs []error
	conf := types.Config{
		Importer: (*moduleImporter)(m),
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(path, m.Fset, files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for i, e := range errs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(errs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, nil, fmt.Errorf("lint: type-checking %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	return pkg, info, nil
}

// moduleImporter serves module-internal packages from the loader's
// registry and delegates everything else to the source importer.
type moduleImporter Module

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		if pkg, ok := m.typed[path]; ok {
			return pkg, nil
		}
		return nil, fmt.Errorf("lint: module package %s not loaded (import cycle or missing dir?)", path)
	}
	return m.imp.Import(path)
}

// parseTree walks the module and parses every package directory,
// skipping hidden directories and testdata (fixtures deliberately
// contain violations).
func (m *Module) parseTree() ([]*pkgDir, error) {
	var dirs []*pkgDir
	err := filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		files, err := parseDir(m.Fset, path)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		pd := &pkgDir{dir: path, importPath: m.Path}
		if rel, _ := filepath.Rel(m.Root, path); rel != "." {
			pd.importPath = m.Path + "/" + filepath.ToSlash(rel)
		}
		for _, f := range files {
			fname := m.Fset.Position(f.Package).Filename
			switch {
			case strings.HasSuffix(f.Name.Name, "_test"):
				pd.extTest = append(pd.extTest, f)
			case strings.HasSuffix(fname, "_test.go"):
				pd.inTest = append(pd.inTest, f)
			default:
				pd.base = append(pd.base, f)
				for _, imp := range f.Imports {
					p := strings.Trim(imp.Path.Value, `"`)
					if p == m.Path || strings.HasPrefix(p, m.Path+"/") {
						pd.imports = append(pd.imports, p)
					}
				}
			}
		}
		if len(pd.base) == 0 && len(pd.extTest) == 0 && len(pd.inTest) == 0 {
			return nil
		}
		if len(pd.base) == 0 {
			return fmt.Errorf("lint: %s has only test files", path)
		}
		dirs = append(dirs, pd)
		return nil
	})
	return dirs, err
}

// parseDir parses every .go file of one directory, sorted for
// determinism.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// FuncKey is a stable identity for a function or method across
// analysis units: a package's plain unit and its test variant are
// type-checked separately, so the same source function yields two
// distinct *types.Func objects — but the (package path, receiver,
// name) triple is shared. The interprocedural recycle summaries
// (recycle.go) are keyed on it so summaries computed while walking one
// unit resolve call sites seen in another.
func FuncKey(fn *types.Func) string {
	pkg := ""
	if p := fn.Pkg(); p != nil {
		// External test packages ("p_test") see the same source
		// functions as the plain unit when dot-importing; normalise.
		pkg = strings.TrimSuffix(p.Path(), "_test")
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			recv = named.Obj().Name() + "."
		}
	}
	return pkg + "." + recv + fn.Name()
}

// topoSort orders packages so every module-internal import precedes its
// importer, and rejects cycles.
func topoSort(dirs []*pkgDir) ([]*pkgDir, error) {
	byPath := map[string]*pkgDir{}
	for _, d := range dirs {
		byPath[d.importPath] = d
	}
	var order []*pkgDir
	state := map[string]int{} // 0 unvisited, 1 in progress, 2 done
	var visit func(d *pkgDir) error
	visit = func(d *pkgDir) error {
		switch state[d.importPath] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", d.importPath)
		case 2:
			return nil
		}
		state[d.importPath] = 1
		for _, imp := range d.imports {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[d.importPath] = 2
		order = append(order, d)
		return nil
	}
	for _, d := range dirs {
		if err := visit(d); err != nil {
			return nil, err
		}
	}
	return order, nil
}
