package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// metricnameAnalyzer cross-checks every metric-name string in the
// module against the manifest (metrics.WellKnownNames) and against
// itself. The metrics registry is string-keyed and create-on-first-use,
// so the type checker is no help: a typo on the writer side registers a
// fresh instrument nobody reads, a typo on the reader side
// (policymetrics tables, snapshot assertions) reads a permanent zero,
// and a name registered from two different sites double-counts into one
// instrument. All three bugs are silent at runtime; this analyzer makes
// them findings.
//
// Checked, module-wide (the analyzer is a ModuleAnalyzer):
//
//   - every registration in non-test code uses a manifest name
//     (Registry.Counter/Gauge/Histogram with a literal, or a
//     fmt.Sprintf whose format is a manifest pattern);
//   - every manifest entry has at least one registration site
//     (no dead inventory);
//   - a fixed name is registered from at most one non-test site
//     (one-registration-per-name; a loop over destinations at one site
//     is still one site);
//   - every reader-side name — Snapshot.Counter("..."), indexing
//     Snapshot.Counters/Gauges/Histograms with a literal, or a
//     MergeHistograms prefix — resolves to some registered name or
//     pattern (writers in test files count: tests may register
//     scratch instruments and read them back).
//
// Names that reach the registry through a variable are outside the
// analyzer's reach and are left alone — the repo idiom (pre-resolved
// handles, names only at registration) keeps those rare.
type metricnameAnalyzer struct{}

func (metricnameAnalyzer) Name() string { return "metricname" }
func (metricnameAnalyzer) Doc() string {
	return "metric names are manifest-listed, registered once, and every read has a writer"
}

const metricsPath = "powerlog/internal/metrics"

// metricSite is one name occurrence (registration or read).
type metricSite struct {
	name    string // literal name, or Sprintf format for dynamic families
	dynamic bool   // name is a format pattern
	test    bool   // the site is in a _test.go file
	pos     token.Pos
	pkg     *Package
}

func (metricnameAnalyzer) Check(pkg *Package, r *Reporter) {
	metricnameAnalyzer{}.CheckModule([]*Package{pkg}, r)
}

func (metricnameAnalyzer) CheckModule(pkgs []*Package, r *Reporter) {
	var (
		manifest  []metricSite // entries of WellKnownNames
		writers   []metricSite
		readers   []metricSite
		prefixes  []metricSite // MergeHistograms prefix reads
		dynWrites []metricSite
	)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			test := strings.HasSuffix(pkg.Fset.Position(file.Package).Filename, "_test.go")
			collectManifest(pkg, file, &manifest)
			collectSites(pkg, file, test, &writers, &dynWrites, &readers, &prefixes)
		}
	}

	// Pattern matchers for dynamic families, from manifest entries and
	// Sprintf registration sites alike.
	type pattern struct {
		site metricSite
		re   *regexp.Regexp
		lit  string // literal prefix before the first verb
	}
	var patterns []pattern
	addPattern := func(s metricSite) {
		re, lit := formatPattern(s.name)
		if re != nil {
			patterns = append(patterns, pattern{site: s, re: re, lit: lit})
		}
	}
	for _, m := range manifest {
		if strings.Contains(m.name, "%") {
			addPattern(m)
		}
	}
	for _, w := range dynWrites {
		addPattern(w)
	}

	manifestHas := func(name string, dynamic bool) bool {
		for _, m := range manifest {
			if m.name == name {
				return true
			}
		}
		if !dynamic {
			for _, p := range patterns {
				if strings.Contains(p.site.name, "%") && p.re.MatchString(name) {
					return true
				}
			}
		}
		return false
	}

	// 1. Non-test registrations must be manifest-listed — but only when
	// a manifest is in sight (the module has one; a fixture package
	// declares its own; a lone package without one skips the check).
	haveManifest := len(manifest) > 0
	if haveManifest {
		for _, w := range writers {
			if !w.test && !manifestHas(w.name, false) {
				r.Reportf(w.pos, "metric %q is not in the metrics.WellKnownNames manifest", w.name)
			}
		}
		for _, w := range dynWrites {
			if !w.test && !manifestHas(w.name, true) {
				r.Reportf(w.pos, "dynamic metric family %q is not in the metrics.WellKnownNames manifest", w.name)
			}
		}
	}

	// 2. Every manifest entry needs a registration site (checked only
	// when the module's writers are actually in the analyzed set — a
	// single-package run outside internal/metrics would see none).
	if len(writers)+len(dynWrites) > 0 {
		for _, m := range manifest {
			found := false
			for _, w := range writers {
				if w.name == m.name {
					found = true
					break
				}
			}
			for _, w := range dynWrites {
				if w.name == m.name {
					found = true
					break
				}
			}
			if !found && strings.Contains(m.name, "%") {
				// A dynamic manifest entry may also be satisfied by fixed
				// registrations matching the pattern.
				if re, _ := formatPattern(m.name); re != nil {
					for _, w := range writers {
						if re.MatchString(w.name) {
							found = true
							break
						}
					}
				}
			}
			if !found {
				r.Reportf(m.pos, "manifest metric %q has no registration site", m.name)
			}
		}
	}

	// 3. One registration site per fixed name (non-test code).
	first := map[string]metricSite{}
	for _, w := range writers {
		if w.test {
			continue
		}
		prev, seen := first[w.name]
		if !seen {
			first[w.name] = w
			continue
		}
		prevPos := prev.pkg.Fset.Position(prev.pos)
		r.Reportf(w.pos, "metric %q is also registered at %s:%d; one name, one registration site",
			w.name, prevPos.Filename, prevPos.Line)
	}

	// 4. Every reader-side name resolves to a writer (test writers
	// included — a test reading its own scratch registry is fine).
	writerHas := func(name string) bool {
		for _, w := range writers {
			if w.name == name {
				return true
			}
		}
		for _, p := range patterns {
			if p.re.MatchString(name) {
				return true
			}
		}
		return false
	}
	for _, rd := range readers {
		if !writerHas(rd.name) {
			r.Reportf(rd.pos, "metric %q is read but never registered (typo'd names read zero)", rd.name)
		}
	}
	for _, pf := range prefixes {
		ok := false
		for _, w := range writers {
			if strings.HasPrefix(w.name, pf.name) {
				ok = true
				break
			}
		}
		for _, p := range patterns {
			if strings.HasPrefix(p.lit, pf.name) || strings.HasPrefix(pf.name, p.lit) {
				ok = true
				break
			}
		}
		if !ok {
			r.Reportf(pf.pos, "histogram prefix %q matches no registered metric", pf.name)
		}
	}
}

// collectManifest harvests WellKnownNames entries: a package-level
// `var WellKnownNames = []string{...}` in any analyzed package (the
// real one lives in internal/metrics; fixtures declare their own).
func collectManifest(pkg *Package, file *ast.File, out *[]metricSite) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if name.Name != "WellKnownNames" || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, el := range lit.Elts {
					if s, ok := stringLit(pkg, el); ok {
						*out = append(*out, metricSite{name: s, pos: el.Pos(), pkg: pkg})
					}
				}
			}
		}
	}
}

// collectSites harvests registration and read sites from one file.
func collectSites(pkg *Package, file *ast.File, test bool, writers, dynWrites, readers, prefixes *[]metricSite) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(pkg, n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != metricsPath || len(n.Args) != 1 {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() == nil {
				return true
			}
			recv := sig.Recv().Type()
			isRegistry := isNamedOrPtr(recv, metricsPath, "Registry")
			isSnapshot := isNamedOrPtr(recv, metricsPath, "Snapshot")
			switch {
			case isRegistry && (fn.Name() == "Counter" || fn.Name() == "Gauge" || fn.Name() == "Histogram"):
				arg := ast.Unparen(n.Args[0])
				if s, ok := stringLit(pkg, arg); ok {
					*writers = append(*writers, metricSite{name: s, test: test, pos: arg.Pos(), pkg: pkg})
				} else if format, ok := sprintfFormat(pkg, arg); ok {
					*dynWrites = append(*dynWrites, metricSite{name: format, dynamic: true, test: test, pos: arg.Pos(), pkg: pkg})
				}
			case isSnapshot && fn.Name() == "Counter":
				if s, ok := stringLit(pkg, n.Args[0]); ok {
					*readers = append(*readers, metricSite{name: s, test: test, pos: n.Args[0].Pos(), pkg: pkg})
				}
			case isSnapshot && fn.Name() == "MergeHistograms":
				if s, ok := stringLit(pkg, n.Args[0]); ok {
					*prefixes = append(*prefixes, metricSite{name: s, test: test, pos: n.Args[0].Pos(), pkg: pkg})
				}
			}
		case *ast.IndexExpr:
			// s.Counters["name"] / s.Gauges[...] / s.Histograms[...] on a
			// metrics.Snapshot — but only *outside* package metrics itself,
			// whose own methods legitimately iterate and index the maps.
			if pkg.ImportPath == metricsPath {
				return true
			}
			sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := sel.Sel.Name
			if field != "Counters" && field != "Gauges" && field != "Histograms" {
				return true
			}
			tv, ok := pkg.Info.Types[sel.X]
			if !ok || !isNamedOrPtr(tv.Type, metricsPath, "Snapshot") {
				return true
			}
			if s, ok := stringLit(pkg, n.Index); ok {
				*readers = append(*readers, metricSite{name: s, test: test, pos: n.Index.Pos(), pkg: pkg})
			}
		}
		return true
	})
}

// sprintfFormat matches fmt.Sprintf("literal-format", ...) and returns
// the format string.
func sprintfFormat(pkg *Package, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Sprintf" {
		return "", false
	}
	return stringLit(pkg, call.Args[0])
}

// stringLit returns e's constant string value.
func stringLit(pkg *Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isNamedOrPtr reports whether t (or its pointee) is the named type
// path.name.
func isNamedOrPtr(t types.Type, path, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return isNamed(t, path, name)
}

// verbRE matches one fmt verb (with flags/width) in a format string.
var verbRE = regexp.MustCompile(`%[-+ #0-9.]*[a-zA-Z]`)

// formatPattern compiles a Sprintf format into a full-match regexp
// (each verb becomes a non-empty wildcard) plus its literal prefix.
func formatPattern(format string) (*regexp.Regexp, string) {
	if !strings.Contains(format, "%") {
		return nil, format
	}
	lit := format
	if i := strings.Index(format, "%"); i >= 0 {
		lit = format[:i]
	}
	var b strings.Builder
	b.WriteString("^")
	rest := format
	for {
		loc := verbRE.FindStringIndex(rest)
		if loc == nil {
			b.WriteString(regexp.QuoteMeta(rest))
			break
		}
		b.WriteString(regexp.QuoteMeta(rest[:loc[0]]))
		b.WriteString(".+")
		rest = rest[loc[1]:]
	}
	b.WriteString("$")
	re, err := regexp.Compile(b.String())
	if err != nil {
		return nil, lit
	}
	return re, lit
}
