// Package lint holds repo-local static checks that run as ordinary tests
// under `make check`, so they gate CI without external tooling.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// predeclared is every identifier a local declaration must not shadow.
// Shadowing min/max/clear compiles silently on Go ≥1.21 but breaks any
// later use of the builtin in the same scope — exactly the bug class the
// adaptive-β code once hit (β clamp locals named max and floor hid the
// builtins; see flush.go's betaFloor/betaCeil fields).
var predeclared = map[string]bool{
	"append": true, "cap": true, "clear": true, "close": true,
	"complex": true, "copy": true, "delete": true, "imag": true,
	"len": true, "make": true, "max": true, "min": true, "new": true,
	"panic": true, "print": true, "println": true, "real": true,
	"recover": true,
}

// TestNoBuiltinShadowing walks every .go file in the module and fails on
// any declaration — :=, var/const spec, func param/result/receiver,
// range or type-switch binding — whose name is a predeclared function.
func TestNoBuiltinShadowing(t *testing.T) {
	root := moduleRoot(t)
	var bad []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") && path != root || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		fset := token.NewFileSet()
		file, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if perr != nil {
			return fmt.Errorf("parse %s: %w", path, perr)
		}
		for _, v := range shadowViolations(fset, file) {
			rel, _ := filepath.Rel(root, v.pos.Filename)
			bad = append(bad, fmt.Sprintf("%s:%d: declaration shadows builtin %q", rel, v.pos.Line, v.name))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bad {
		t.Error(b)
	}
}

type violation struct {
	name string
	pos  token.Position
}

// shadowViolations collects every declaration in file that reuses a
// predeclared identifier.
func shadowViolations(fset *token.FileSet, file *ast.File) []violation {
	var out []violation
	flag := func(id *ast.Ident) {
		if id != nil && predeclared[id.Name] {
			out = append(out, violation{id.Name, fset.Position(id.Pos())})
		}
	}
	flagFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				flag(n)
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						flag(id)
					}
				}
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				flag(id)
			}
		case *ast.FuncDecl:
			// Methods live in the selector namespace and cannot shadow a
			// builtin; only package-level function names can.
			if n.Recv == nil {
				flag(n.Name)
			}
			flagFields(n.Recv)
			flagFields(n.Type.Params)
			flagFields(n.Type.Results)
		case *ast.FuncLit:
			flagFields(n.Type.Params)
			flagFields(n.Type.Results)
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				if id, ok := n.Key.(*ast.Ident); ok {
					flag(id)
				}
				if id, ok := n.Value.(*ast.Ident); ok {
					flag(id)
				}
			}
		case *ast.TypeSwitchStmt:
			if a, ok := n.Assign.(*ast.AssignStmt); ok && a.Tok == token.DEFINE {
				if id, ok := a.Lhs[0].(*ast.Ident); ok {
					flag(id)
				}
			}
		case *ast.TypeSpec:
			flag(n.Name)
		}
		return true
	})
	return out
}

// moduleRoot walks up from the package directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above package directory")
		}
		dir = parent
	}
}
