// Package ast defines the abstract syntax tree for recursive aggregate
// Datalog programs in the paper's surface syntax (§2.1, §6.1):
//
//	r2. sssp(Y,min[dy]) :- sssp(X,dx), edge(X,Y,dxy), dy = dx + dxy.
//
// A rule has an optional label, a head predicate whose arguments may
// include one aggregate term agg[var], and one or more bodies separated by
// ';' (each optionally re-introduced by ':-'). A body is a conjunction of
// atoms: predicate atoms and comparison/assignment atoms. A rule may end
// with a termination clause in braces, e.g. {sum[Δa] < 0.001}, the paper's
// user-level termination extension (§3.1).
package ast

import (
	"fmt"
	"strconv"
	"strings"

	"powerlog/internal/expr"
)

// Program is a parsed Datalog program: an ordered list of rules.
type Program struct {
	Rules []*Rule
}

// Rule is a single Datalog rule.
type Rule struct {
	Label  string  // optional "r1"-style label
	Head   *Pred   // head predicate (may contain an aggregate term)
	Bodies []*Body // disjunctive bodies, each a conjunction of atoms
	Term   *Termination
	Line   int // source line of the head, for diagnostics
}

// Body is a conjunction of atoms.
type Body struct {
	Atoms []*Atom
}

// AtomKind discriminates body atoms.
type AtomKind int

// Atom kinds.
const (
	AtomPred    AtomKind = iota // predicate atom p(t1,...,tn)
	AtomCompare                 // comparison or assignment: e1 op e2
)

// Atom is one conjunct of a rule body.
type Atom struct {
	Kind AtomKind
	Pred *Pred    // AtomPred
	Cmp  *Compare // AtomCompare
}

// Pred is a predicate application.
type Pred struct {
	Name string
	Args []*Term
}

// TermKind discriminates predicate argument terms.
type TermKind int

// Term kinds.
const (
	TermVar      TermKind = iota // variable reference
	TermNum                      // numeric literal
	TermWildcard                 // "_"
	TermArith                    // arithmetic expression, e.g. i+1 in a head
	TermAgg                      // aggregate term agg[var], heads only
)

// Term is a predicate argument.
type Term struct {
	Kind TermKind
	Var  string     // TermVar
	Num  float64    // TermNum
	Expr *expr.Expr // TermArith
	Agg  *AggTerm   // TermAgg
}

// AggTerm is an aggregate head term such as min[dy].
type AggTerm struct {
	Op  string // aggregate name: min, max, sum, count, mean
	Var string // aggregated variable
}

// Compare is a comparison or assignment atom: LHS Op RHS.
type Compare struct {
	Op  string // one of = != < > <= >=
	LHS *expr.Expr
	RHS *expr.Expr
}

// IsAssignment reports whether the atom binds a single fresh variable, i.e.
// has the shape "v = expr" with a bare variable on exactly one side. It
// returns the bound variable and defining expression.
func (c *Compare) IsAssignment() (v string, def *expr.Expr, ok bool) {
	if c.Op != "=" {
		return "", nil, false
	}
	if c.LHS.Kind == expr.KVar {
		return c.LHS.Name, c.RHS, true
	}
	if c.RHS.Kind == expr.KVar {
		return c.RHS.Name, c.LHS, true
	}
	return "", nil, false
}

// Termination is the user-level convergence clause {agg[Δv] < eps}.
type Termination struct {
	Agg       string  // aggregate applied to the window of deltas (typically sum)
	Var       string  // the delta variable name (informational)
	Threshold float64 // eps
}

// AggTermOf returns the head's aggregate term and its argument position, or
// (nil, -1) when the head carries no aggregate.
func (r *Rule) AggTermOf() (*AggTerm, int) {
	for i, t := range r.Head.Args {
		if t.Kind == TermAgg {
			return t.Agg, i
		}
	}
	return nil, -1
}

// IsRecursive reports whether the head predicate occurs in any body.
func (r *Rule) IsRecursive() bool {
	for _, b := range r.Bodies {
		for _, a := range b.Atoms {
			if a.Kind == AtomPred && a.Pred.Name == r.Head.Name {
				return true
			}
		}
	}
	return false
}

// String renders the program in parseable surface syntax.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders a rule in surface syntax.
func (r *Rule) String() string {
	var b strings.Builder
	if r.Label != "" {
		b.WriteString(r.Label)
		b.WriteString(". ")
	}
	b.WriteString(r.Head.String())
	for i, body := range r.Bodies {
		if i == 0 {
			b.WriteString(" :- ")
		} else {
			b.WriteString("; :- ")
		}
		for j, a := range body.Atoms {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
	}
	if r.Term != nil {
		b.WriteString("; {")
		b.WriteString(r.Term.Agg)
		b.WriteString("[Δ")
		b.WriteString(r.Term.Var)
		b.WriteString("] < ")
		b.WriteString(strconv.FormatFloat(r.Term.Threshold, 'g', -1, 64))
		b.WriteString("}")
	}
	b.WriteByte('.')
	return b.String()
}

// String renders an atom.
func (a *Atom) String() string {
	switch a.Kind {
	case AtomPred:
		return a.Pred.String()
	case AtomCompare:
		return fmt.Sprintf("%s %s %s", a.Cmp.LHS, a.Cmp.Op, a.Cmp.RHS)
	default:
		return "<bad atom>"
	}
}

// String renders a predicate application.
func (p *Pred) String() string {
	var b strings.Builder
	b.WriteString(p.Name)
	b.WriteByte('(')
	for i, t := range p.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// String renders a term.
func (t *Term) String() string {
	switch t.Kind {
	case TermVar:
		return t.Var
	case TermNum:
		return strconv.FormatFloat(t.Num, 'g', -1, 64)
	case TermWildcard:
		return "_"
	case TermArith:
		return t.Expr.String()
	case TermAgg:
		return t.Agg.Op + "[" + t.Agg.Var + "]"
	default:
		return "<bad term>"
	}
}
