package ast

import (
	"strings"
	"testing"

	"powerlog/internal/expr"
)

func TestCompareIsAssignment(t *testing.T) {
	// v = x+1: assignment binding v.
	c := &Compare{Op: "=", LHS: expr.Var("v"), RHS: expr.Add(expr.Var("x"), expr.Num(1))}
	v, def, ok := c.IsAssignment()
	if !ok || v != "v" || def.String() != "x + 1" {
		t.Errorf("got %q %v %v", v, def, ok)
	}
	// Reversed sides.
	c = &Compare{Op: "=", LHS: expr.Num(5), RHS: expr.Var("w")}
	v, def, ok = c.IsAssignment()
	if !ok || v != "w" || def.String() != "5" {
		t.Errorf("got %q %v %v", v, def, ok)
	}
	// Not an assignment: inequality.
	c = &Compare{Op: "<", LHS: expr.Var("v"), RHS: expr.Num(1)}
	if _, _, ok := c.IsAssignment(); ok {
		t.Error("inequality is not an assignment")
	}
	// Not an assignment: no bare variable side.
	c = &Compare{Op: "=", LHS: expr.Add(expr.Var("a"), expr.Num(1)), RHS: expr.Num(2)}
	if _, _, ok := c.IsAssignment(); ok {
		t.Error("no bare-variable side")
	}
}

func TestRuleHelpers(t *testing.T) {
	head := &Pred{Name: "r", Args: []*Term{
		{Kind: TermVar, Var: "X"},
		{Kind: TermAgg, Agg: &AggTerm{Op: "min", Var: "v"}},
	}}
	rule := &Rule{Head: head, Bodies: []*Body{{Atoms: []*Atom{
		{Kind: AtomPred, Pred: &Pred{Name: "r", Args: []*Term{{Kind: TermVar, Var: "Y"}, {Kind: TermVar, Var: "u"}}}},
	}}}}
	agg, pos := rule.AggTermOf()
	if agg == nil || agg.Op != "min" || pos != 1 {
		t.Errorf("agg = %+v at %d", agg, pos)
	}
	if !rule.IsRecursive() {
		t.Error("rule references its own head predicate")
	}
	rule.Bodies[0].Atoms[0].Pred.Name = "other"
	if rule.IsRecursive() {
		t.Error("no longer recursive")
	}
}

func TestStringRendering(t *testing.T) {
	term := &Term{Kind: TermWildcard}
	if term.String() != "_" {
		t.Errorf("wildcard = %q", term)
	}
	term = &Term{Kind: TermArith, Expr: expr.Add(expr.Var("i"), expr.Num(1))}
	if term.String() != "i + 1" {
		t.Errorf("arith = %q", term)
	}
	atom := &Atom{Kind: AtomCompare, Cmp: &Compare{Op: ">=", LHS: expr.Var("w"), RHS: expr.Num(0)}}
	if atom.String() != "w >= 0" {
		t.Errorf("compare atom = %q", atom)
	}
	rule := &Rule{
		Label: "r9",
		Head:  &Pred{Name: "h", Args: []*Term{{Kind: TermVar, Var: "X"}, {Kind: TermAgg, Agg: &AggTerm{Op: "sum", Var: "s"}}}},
		Bodies: []*Body{
			{Atoms: []*Atom{{Kind: AtomPred, Pred: &Pred{Name: "e", Args: []*Term{{Kind: TermVar, Var: "X"}}}}}},
			{Atoms: []*Atom{{Kind: AtomCompare, Cmp: &Compare{Op: "=", LHS: expr.Var("s"), RHS: expr.Num(1)}}}},
		},
		Term: &Termination{Agg: "sum", Var: "s", Threshold: 0.5},
	}
	s := rule.String()
	for _, want := range []string{"r9. ", "h(X,sum[s])", ":- e(X)", "; :- s = 1", "{sum[Δs] < 0.5}", "."} {
		if !strings.Contains(s, want) {
			t.Errorf("rule rendering missing %q: %s", want, s)
		}
	}
	prog := &Program{Rules: []*Rule{rule}}
	if !strings.HasSuffix(strings.TrimSpace(prog.String()), ".") {
		t.Error("program rendering should end rules with periods")
	}
}
