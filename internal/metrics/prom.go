package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file renders Snapshots in the Prometheus text exposition format
// (version 0.0.4) for the serving front end's /metrics endpoint, and
// provides a strict grammar checker the conformance tests and the smoke
// target scrape through.
//
// Mapping from the registry's conventions to Prometheus's:
//
//   - Our dotted names ("master.member.join", "tcp.peer3.bytes") become
//     legal metric names by rewriting every character outside
//     [a-zA-Z0-9_:] to '_', prefixed with the exporter namespace:
//     powerlog_master_member_join.
//   - Counters get the conventional _total suffix.
//   - Histograms expose the log2 buckets cumulatively. Bucket i of a
//     Histogram counts observations v with bits.Len64(v) == i, i.e.
//     bucket 0 is exactly v == 0 and bucket i >= 1 covers
//     [2^(i-1), 2^i) — so bucket i's INCLUSIVE upper bound is 2^i - 1,
//     and that (not 2^i) is the le label. Getting this off by one
//     bucket would shift every reported quantile by a factor of two,
//     which is why prom_test.go pins the conversion to a hand-computed
//     fixture.

// sanitizeMetricName rewrites an internal dotted metric name to a legal
// Prometheus metric name: every character outside [a-zA-Z0-9_:] becomes
// '_', and a leading digit gets a '_' prefix.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		legal := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
		if i == 0 && '0' <= c && c <= '9' {
			b.WriteByte('_')
		}
		if legal {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// bucketUpper returns the inclusive upper bound of log2 bucket i as the
// le label string: "0" for bucket 0, 2^i - 1 for 1 <= i <= 64.
func bucketUpper(i int) string {
	if i <= 0 {
		return "0"
	}
	if i >= 64 {
		return strconv.FormatUint(math.MaxUint64, 10)
	}
	return strconv.FormatUint(uint64(1)<<uint(i)-1, 10)
}

// formatValue renders a sample value the way Prometheus parses it.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format: one # TYPE line per metric family followed by its samples,
// families sorted by name for deterministic scrapes. namespace prefixes
// every metric name ("powerlog" -> powerlog_sched_hold_total); it is
// sanitized like the names themselves. Counters carry the conventional
// _total suffix; histograms are exposed with cumulative buckets, a +Inf
// bucket, _sum, and _count, with le labels holding each log2 bucket's
// inclusive upper bound.
func WritePrometheus(w io.Writer, namespace string, s Snapshot) {
	prefix := ""
	if namespace != "" {
		prefix = sanitizeMetricName(namespace) + "_"
	}

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := prefix + sanitizeMetricName(name) + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n", n)
		fmt.Fprintf(w, "%s %d\n", n, s.Counters[name])
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := prefix + sanitizeMetricName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n", n)
		fmt.Fprintf(w, "%s %s\n", n, formatValue(s.Gauges[name]))
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		n := prefix + sanitizeMetricName(name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", n)
		// Emit buckets 0..last non-empty, cumulatively, then +Inf. The
		// empty tail would be pure noise (65 buckets span all of uint64);
		// +Inf always carries the total, as the format requires.
		last := -1
		for i, b := range h.Buckets {
			if b != 0 {
				last = i
			}
		}
		cum := uint64(0)
		for i := 0; i <= last; i++ {
			cum += h.Buckets[i]
			fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", n, bucketUpper(i), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", n, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", n, h.Count)
	}
}

// ---------------------------------------------------------------------
// Exposition-format conformance checking.
// ---------------------------------------------------------------------

func legalMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_' || c == ':' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z'):
		case '0' <= c && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func legalLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z'):
		case '0' <= c && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseSample splits one exposition sample line into name, labels, and
// value. It accepts the subset of the text format an exporter emits:
// name[{label="value",...}] value — no timestamps, no escapes beyond
// \" \\ \n in label values.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", nil, 0, fmt.Errorf("no value")
	} else {
		name, rest = rest[:i], rest[i:]
	}
	labels = map[string]string{}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set")
		}
		body := rest[1:end]
		rest = rest[end+1:]
		for body != "" {
			eq := strings.Index(body, "=")
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("label without '='")
			}
			lname := body[:eq]
			body = body[eq+1:]
			if !strings.HasPrefix(body, `"`) {
				return "", nil, 0, fmt.Errorf("unquoted label value")
			}
			closeQ := -1
			for i := 1; i < len(body); i++ {
				if body[i] == '\\' {
					i++
					continue
				}
				if body[i] == '"' {
					closeQ = i
					break
				}
			}
			if closeQ < 0 {
				return "", nil, 0, fmt.Errorf("unterminated label value")
			}
			if !legalLabelName(lname) {
				return "", nil, 0, fmt.Errorf("illegal label name %q", lname)
			}
			if _, dup := labels[lname]; dup {
				return "", nil, 0, fmt.Errorf("duplicate label %q", lname)
			}
			labels[lname] = body[1:closeQ]
			body = body[closeQ+1:]
			body = strings.TrimPrefix(body, ",")
		}
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return "", nil, 0, fmt.Errorf("no value")
	}
	v, perr := strconv.ParseFloat(rest, 64)
	if perr != nil {
		return "", nil, 0, fmt.Errorf("bad value %q", rest)
	}
	return name, labels, v, nil
}

// histFamily maps a sample name to its histogram family name if it is a
// histogram series sample (_bucket/_sum/_count), else returns the name
// unchanged with series = "".
func histFamily(name string) (family, series string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf), suf
		}
	}
	return name, ""
}

// histCheck accumulates one histogram family's conformance state.
type histCheck struct {
	lastLe   float64
	lastCum  float64
	buckets  int
	infCount float64
	hasInf   bool
	count    float64
	hasCount bool
	hasSum   bool
}

// CheckExposition validates Prometheus text-format output against the
// subset of the grammar an exporter must get right: legal metric and
// label names, every sample preceded by exactly one # TYPE line for its
// family, sample names consistent with the declared type (counter
// samples end in _total; histogram samples are _bucket/_sum/_count),
// histogram buckets cumulative and non-decreasing with strictly
// increasing le bounds, a +Inf bucket present and equal to _count.
// It returns nil for conforming input and a line-numbered error for the
// first violation.
func CheckExposition(data []byte) error {
	typed := map[string]string{}
	sampled := map[string]bool{}
	hists := map[string]*histCheck{}

	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		no := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 2 {
				return fmt.Errorf("line %d: bare comment %q in exporter output", no, line)
			}
			if fields[1] == "HELP" {
				continue
			}
			if fields[1] != "TYPE" {
				return fmt.Errorf("line %d: unknown comment keyword %q", no, fields[1])
			}
			if len(fields) != 4 {
				return fmt.Errorf("line %d: malformed TYPE line %q", no, line)
			}
			name, typ := fields[2], fields[3]
			if !legalMetricName(name) {
				return fmt.Errorf("line %d: illegal metric name %q", no, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", no, typ)
			}
			if _, dup := typed[name]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %q", no, name)
			}
			if sampled[name] {
				return fmt.Errorf("line %d: TYPE for %q after its samples", no, name)
			}
			typed[name] = typ
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", no, err)
		}
		if !legalMetricName(name) {
			return fmt.Errorf("line %d: illegal metric name %q", no, name)
		}
		family, series := histFamily(name)
		typ, ok := typed[name]
		if !ok && series != "" {
			// _bucket/_sum/_count resolve to their family's TYPE.
			typ, ok = typed[family]
			if ok && typ != "histogram" && typ != "summary" {
				// e.g. a counter that merely ends in _count: the full
				// name needed its own TYPE, which was absent.
				ok = false
			}
		} else if ok {
			family, series = name, ""
		}
		if !ok {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE", no, name)
		}
		sampled[family] = true

		if typ == "counter" {
			if !strings.HasSuffix(name, "_total") {
				return fmt.Errorf("line %d: counter sample %q lacks the _total suffix", no, name)
			}
			if value < 0 {
				return fmt.Errorf("line %d: negative counter %q = %g", no, name, value)
			}
		}
		if typ != "histogram" {
			continue
		}
		h := hists[family]
		if h == nil {
			h = &histCheck{lastLe: math.Inf(-1)}
			hists[family] = h
		}
		switch series {
		case "_bucket":
			leStr, okLe := labels["le"]
			if !okLe {
				return fmt.Errorf("line %d: histogram bucket %q without le label", no, name)
			}
			var le float64
			if leStr == "+Inf" {
				le = math.Inf(1)
			} else {
				le, err = strconv.ParseFloat(leStr, 64)
				if err != nil {
					return fmt.Errorf("line %d: bad le %q", no, leStr)
				}
			}
			if le <= h.lastLe {
				return fmt.Errorf("line %d: le %q not increasing in %s", no, leStr, family)
			}
			if value < h.lastCum {
				return fmt.Errorf("line %d: cumulative bucket count decreased in %s (%g after %g)",
					no, family, value, h.lastCum)
			}
			h.lastLe, h.lastCum = le, value
			h.buckets++
			if math.IsInf(le, 1) {
				h.hasInf, h.infCount = true, value
			}
		case "_sum":
			h.hasSum = true
		case "_count":
			h.hasCount, h.count = true, value
		default:
			return fmt.Errorf("line %d: stray histogram sample %q", no, name)
		}
	}

	for family, h := range hists {
		if !h.hasInf {
			return fmt.Errorf("histogram %s: no +Inf bucket", family)
		}
		if !h.hasSum || !h.hasCount {
			return fmt.Errorf("histogram %s: missing _sum or _count", family)
		}
		if h.infCount != h.count {
			return fmt.Errorf("histogram %s: +Inf bucket %g != count %g", family, h.infCount, h.count)
		}
	}
	for family, typ := range typed {
		if !sampled[family] {
			return fmt.Errorf("TYPE %s declared for %s but no samples follow", typ, family)
		}
	}
	return nil
}
