package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one counter from many goroutines; the
// total must be exact and the race detector must stay quiet.
func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hits")
	const (
		writers = 8
		perG    = 10000
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != writers*perG {
		t.Fatalf("counter = %d, want %d", got, writers*perG)
	}
	if got := reg.Snapshot().Counter("hits"); got != writers*perG {
		t.Fatalf("snapshot counter = %d, want %d", got, writers*perG)
	}
}

// TestHistogramConcurrent checks that concurrent observers land every
// observation in the right bucket and that count/sum stay exact.
func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("sizes")
	const (
		writers = 8
		perG    = 4096
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(uint64(g)) // g ∈ [0,8): buckets 0..4
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != writers*perG {
		t.Fatalf("count = %d, want %d", s.Count, writers*perG)
	}
	wantSum := uint64(0 + 1 + 2 + 3 + 4 + 5 + 6 + 7) * perG
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	// bits.Len64 bucketing: 0→0, 1→1, {2,3}→2, {4..7}→3.
	wantBuckets := map[int]uint64{0: perG, 1: perG, 2: 2 * perG, 3: 4 * perG}
	for i, want := range wantBuckets {
		if s.Buckets[i] != want {
			t.Fatalf("bucket[%d] = %d, want %d", i, s.Buckets[i], want)
		}
	}
}

// TestSnapshotDuringWrite takes snapshots while writers are mid-flight;
// every snapshot must be internally sane (count never exceeds the final
// total, histogram bucket sum equals its count) and the run must be
// race-clean.
func TestSnapshotDuringWrite(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	h := reg.Histogram("h")
	g := reg.Gauge("g")
	const total = 50000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			c.Inc()
			h.Observe(uint64(i % 1024))
			g.Set(float64(i))
		}
	}()
	for i := 0; i < 200; i++ {
		s := reg.Snapshot()
		if s.Counter("c") > total {
			t.Fatalf("snapshot counter %d exceeds total %d", s.Counter("c"), total)
		}
		hs := s.Histograms["h"]
		var bucketSum uint64
		for _, b := range hs.Buckets {
			bucketSum += b
		}
		// Observe bumps the bucket before the count, so a snapshot can
		// see at most a few more bucket entries than counted ones.
		if bucketSum < hs.Count {
			t.Fatalf("bucket sum %d < count %d", bucketSum, hs.Count)
		}
	}
	<-done
	if got := reg.Snapshot().Counter("c"); got != total {
		t.Fatalf("final counter = %d, want %d", got, total)
	}
}

// TestHotPathAllocs is the acceptance gate: the counter, gauge, and
// histogram write paths must not allocate.
func TestHotPathAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h")
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(3) }); n != 0 {
		t.Fatalf("Counter write path allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1.5) }); n != 0 {
		t.Fatalf("Gauge write path allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(137) }); n != 0 {
		t.Fatalf("Histogram write path allocates %v per op", n)
	}
}

// TestRegistryIdempotent checks that re-registering a name returns the
// same hot-path handle.
func TestRegistryIdempotent(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("x") != reg.Counter("x") {
		t.Fatal("Counter not idempotent")
	}
	if reg.Gauge("x") != reg.Gauge("x") {
		t.Fatal("Gauge not idempotent")
	}
	if reg.Histogram("x") != reg.Histogram("x") {
		t.Fatal("Histogram not idempotent")
	}
}

func TestHistQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(10) // bucket 4: [8,16)
	}
	h.Observe(1000) // bucket 10: [512,1024)
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 15 {
		t.Fatalf("p50 = %v, want 15", got)
	}
	if got := s.Quantile(1.0); got != 1023 {
		t.Fatalf("p100 = %v, want 1023", got)
	}
	if got, want := s.Mean(), (100*10.0+1000)/101.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	var empty HistSnapshot
	if empty.Quantile(0.9) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewRegistry()
	a.Counter("c").Add(3)
	a.Gauge("g").Set(1.0)
	a.Histogram("h").Observe(4)
	b := NewRegistry()
	b.Counter("c").Add(5)
	b.Counter("only.b").Inc()
	b.Gauge("g").Set(2.5)
	b.Histogram("h").Observe(4)

	m := a.Snapshot().Merge(b.Snapshot())
	if m.Counter("c") != 8 {
		t.Fatalf("merged counter = %d, want 8", m.Counter("c"))
	}
	if m.Counter("only.b") != 1 {
		t.Fatalf("merged only.b = %d, want 1", m.Counter("only.b"))
	}
	if m.Gauges["g"] != 2.5 {
		t.Fatalf("merged gauge = %v, want max 2.5", m.Gauges["g"])
	}
	if m.Histograms["h"].Count != 2 || m.Histograms["h"].Sum != 8 {
		t.Fatalf("merged hist = %+v, want count 2 sum 8", m.Histograms["h"])
	}
	// Zero value as a merge seed.
	var zero Snapshot
	m2 := zero.Merge(a.Snapshot())
	if m2.Counter("c") != 3 {
		t.Fatalf("zero-seed merge counter = %d, want 3", m2.Counter("c"))
	}
}

func TestMergeHistogramsByPrefix(t *testing.T) {
	r := NewRegistry()
	r.Histogram("flush.size.dst0").Observe(8)
	r.Histogram("flush.size.dst1").Observe(16)
	r.Histogram("other").Observe(99)
	s := r.Snapshot()
	m := s.MergeHistograms("flush.size.dst")
	if m.Count != 2 || m.Sum != 24 {
		t.Fatalf("prefix merge = %+v, want count 2 sum 24", m)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(7)
	r.Counter("zero.count") // registered but never hit: omitted
	r.Gauge("a.level").Set(0.25)
	r.Histogram("c.sizes").Observe(100)
	var sb strings.Builder
	WriteText(&sb, "w3", r.Snapshot())
	out := sb.String()
	for _, want := range []string{"w3 a.level 0.25", "w3 b.count 7", "w3 c.sizes [n=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "zero.count") {
		t.Fatalf("dump should omit zero counters:\n%s", out)
	}
	// Sorted by name: gauge a.level before counter b.count.
	if strings.Index(out, "a.level") > strings.Index(out, "b.count") {
		t.Fatalf("dump not sorted:\n%s", out)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}
