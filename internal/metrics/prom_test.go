package metrics

import (
	"strings"
	"testing"
)

// TestPromHistogramFixture pins the log2-bucket -> Prometheus cumulative
// bucket conversion against a hand-computed fixture. Observations
// {0, 1, 2, 3, 8} land in log2 buckets b0=1 (v==0), b1=1 (v==1),
// b2=2 (v in [2,3]), b4=1 (v in [8,15]); the INCLUSIVE upper bounds of
// those buckets are 0, 1, 3, 7, 15 — NOT 1, 2, 4, 8, 16 — so the
// cumulative le series must read le="0"=1, le="1"=2, le="3"=4,
// le="7"=4, le="15"=5, le="+Inf"=5 with sum 14 and count 5. An
// off-by-one-bucket exporter shifts every le label a power of two and
// fails here.
func TestPromHistogramFixture(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("serve.query.latency_us")
	for _, v := range []uint64{0, 1, 2, 3, 8} {
		h.Observe(v)
	}

	var b strings.Builder
	WritePrometheus(&b, "powerlog", r.Snapshot())
	got := b.String()

	want := `# TYPE powerlog_serve_query_latency_us histogram
powerlog_serve_query_latency_us_bucket{le="0"} 1
powerlog_serve_query_latency_us_bucket{le="1"} 2
powerlog_serve_query_latency_us_bucket{le="3"} 4
powerlog_serve_query_latency_us_bucket{le="7"} 4
powerlog_serve_query_latency_us_bucket{le="15"} 5
powerlog_serve_query_latency_us_bucket{le="+Inf"} 5
powerlog_serve_query_latency_us_sum 14
powerlog_serve_query_latency_us_count 5
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if err := CheckExposition([]byte(got)); err != nil {
		t.Fatalf("fixture output fails conformance: %v", err)
	}
}

// TestPromCountersAndGauges checks name sanitization (dotted and %d
// family names), the counter _total suffix, and deterministic ordering.
func TestPromCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("master.member.join").Add(3)
	r.Counter("tcp.peer3.bytes").Add(4096)
	r.Gauge("serve.session.pooled").Set(2)

	var b strings.Builder
	WritePrometheus(&b, "powerlog", r.Snapshot())
	got := b.String()

	want := `# TYPE powerlog_master_member_join_total counter
powerlog_master_member_join_total 3
# TYPE powerlog_tcp_peer3_bytes_total counter
powerlog_tcp_peer3_bytes_total 4096
# TYPE powerlog_serve_session_pooled gauge
powerlog_serve_session_pooled 2
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if err := CheckExposition([]byte(got)); err != nil {
		t.Fatalf("output fails conformance: %v", err)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"master.member.join", "master_member_join"},
		{"serve.query.latency_us", "serve_query_latency_us"},
		{"tcp.peer12.bytes", "tcp_peer12_bytes"},
		{"already_legal:name", "already_legal:name"},
		{"9lives", "_9lives"},
		{"weird-name/x", "weird_name_x"},
	}
	for _, c := range cases {
		if got := sanitizeMetricName(c.in); got != c.want {
			t.Errorf("sanitize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestCheckExpositionViolations feeds the validator hand-crafted
// non-conforming documents and requires each to be rejected for the
// right reason.
func TestCheckExpositionViolations(t *testing.T) {
	cases := []struct {
		name, doc, errFrag string
	}{
		{
			"sample without TYPE",
			"powerlog_x_total 1\n",
			"no preceding # TYPE",
		},
		{
			"duplicate TYPE",
			"# TYPE a_total counter\na_total 1\n# TYPE a_total counter\n",
			"duplicate TYPE",
		},
		{
			"counter missing _total",
			"# TYPE a counter\na 1\n",
			"_total suffix",
		},
		{
			"negative counter",
			"# TYPE a_total counter\na_total -1\n",
			"negative counter",
		},
		{
			"illegal metric name",
			"# TYPE 9bad counter\n",
			"illegal metric name",
		},
		{
			"bucket without le",
			"# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n",
			"without le",
		},
		{
			"non-monotone cumulative buckets",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"3\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 4\nh_count 3\n",
			"decreased",
		},
		{
			"le not increasing",
			"# TYPE h histogram\nh_bucket{le=\"3\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
			"not increasing",
		},
		{
			"missing +Inf bucket",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"no +Inf",
		},
		{
			"+Inf disagrees with count",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
			"!= count",
		},
		{
			"missing sum",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
			"missing _sum",
		},
		{
			"TYPE with no samples",
			"# TYPE lonely gauge\n",
			"no samples follow",
		},
		{
			"unterminated label set",
			"# TYPE h histogram\nh_bucket{le=\"1\" 1\n",
			"unterminated",
		},
		{
			"garbage value",
			"# TYPE g gauge\ng banana\n",
			"bad value",
		},
	}
	for _, c := range cases {
		err := CheckExposition([]byte(c.doc))
		if err == nil {
			t.Errorf("%s: validator accepted non-conforming document", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.errFrag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.errFrag)
		}
	}
}

// TestCheckExpositionAcceptsWriteText ensures the validator and the
// exporter agree on a mixed snapshot with all three instrument kinds.
func TestCheckExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.req").Add(10)
	r.Counter("serve.shed.rate").Add(1)
	r.Gauge("serve.session.pooled").Set(3)
	h := r.Histogram("serve.lookup.latency_us")
	for v := uint64(1); v < 1000; v *= 3 {
		h.Observe(v)
	}

	var b strings.Builder
	WritePrometheus(&b, "powerlog", r.Snapshot())
	if err := CheckExposition([]byte(b.String())); err != nil {
		t.Fatalf("round trip fails conformance: %v\n%s", err, b.String())
	}
}
