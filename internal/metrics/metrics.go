// Package metrics is PowerLog's lock-free, allocation-free runtime
// telemetry core. The policy layers (FlushPolicy / Scheduler /
// BarrierPolicy), the transport, and the master register named counters,
// gauges, and histograms into a Registry; the hot paths then write
// through pre-resolved pointers with single atomic operations — no map
// lookups, no locks, no allocations — and a Snapshot can be taken at any
// time, including concurrently with writers.
//
// Design constraints, in order:
//
//  1. The write path must be safe under the race detector and the
//     repo's atomicmix analyzer: every word is touched exclusively
//     through sync/atomic method receivers.
//  2. The write path must not allocate (the runtime's message path is
//     zero-allocation; telemetry must not be the regression).
//  3. Counters owned by one goroutine must not false-share with their
//     neighbours, so Counter and Gauge are padded to a cache line.
//  4. Snapshots are approximate-consistent: each value is read
//     atomically, but the set of values is not a cut. That is the right
//     trade for telemetry — a consistent cut would need a lock on the
//     write path.
package metrics

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// cacheLine is the padding target for per-goroutine hot words. 64 bytes
// covers x86-64 and most arm64 parts; adjacent-line prefetchers are
// deliberately not padded against (128B doubles the footprint for a
// second-order effect).
const cacheLine = 64

// Counter is a monotonically increasing event counter, padded so two
// counters registered back-to-back never share a cache line.
type Counter struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a last-written float64 value (e.g. the current mean β).
type Gauge struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// Set stores x.
func (g *Gauge) Set(x float64) { g.v.Store(math.Float64bits(x)) }

// Load returns the last stored value (0 before any Set).
func (g *Gauge) Load() float64 { return math.Float64frombits(g.v.Load()) }

// histBuckets is the fixed bucket count of the log2 histogram: bucket i
// holds observations v with bits.Len64(v) == i, i.e. bucket 0 is exactly
// v == 0 and bucket i ≥ 1 covers [2^(i-1), 2^i). 65 buckets span the
// whole uint64 range, so Observe never branches on range.
const histBuckets = 65

// Histogram is a fixed-bucket log2 histogram of uint64 observations
// (batch sizes, microsecond waits). Observe is one predictable index
// computation plus three atomic adds; there is nothing to resize, so
// writers never coordinate. Buckets are not individually padded: a
// histogram is written by one goroutine in this runtime, and padding 65
// words would cost 4 KiB each.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Snapshot copies the histogram's current state (each word read
// atomically; the set of words is approximate-consistent, see the
// package comment).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [histBuckets]uint64
}

// Mean returns Sum/Count (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the
// inclusive upper edge of the bucket where the cumulative count crosses
// q·Count. Log2 buckets make it exact to within a factor of two — the
// right precision for "are flushes ~256 or ~4096 KVs" questions.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := q * float64(s.Count)
	cum := uint64(0)
	for i, b := range s.Buckets {
		cum += b
		if float64(cum) >= target {
			if i == 0 {
				return 0
			}
			if i >= 64 {
				return math.MaxUint64
			}
			return float64(uint64(1)<<uint(i)) - 1
		}
	}
	return math.MaxUint64
}

// Merge returns the bucket-wise sum of two snapshots (for aggregating
// per-worker or per-destination histograms).
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	return s
}

// String renders the snapshot compactly for text dumps.
func (s HistSnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50≤%.0f p99≤%.0f",
		s.Count, s.Mean(), s.Quantile(0.5), s.Quantile(0.99))
}

// Registry is a named set of metrics. Registration (Counter / Gauge /
// Histogram) takes a mutex and may allocate; it happens at setup time.
// The returned pointers are the hot-path handles. Snapshot may run
// concurrently with writers.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Callers keep the pointer; the name exists for snapshots.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot copies every registered metric's current value. Safe to call
// while writers are running (each word is read atomically).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Snapshot is a point-in-time copy of a Registry (or a merge of
// several). The zero value is usable as a merge seed.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]float64
	Histograms map[string]HistSnapshot
}

// Counter returns the named counter's value (0 when absent), so callers
// need not nil-check the map.
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// MergeHistograms returns the bucket-wise merge of every histogram whose
// name starts with prefix (e.g. all "flush.size.dst" destinations).
func (s Snapshot) MergeHistograms(prefix string) HistSnapshot {
	var out HistSnapshot
	for name, h := range s.Histograms {
		if strings.HasPrefix(name, prefix) {
			out = out.Merge(h)
		}
	}
	return out
}

// Merge returns the union of two snapshots: counters summed, histograms
// bucket-wise summed, gauges kept at the maximum (a gauge is a level,
// not a flow, so summing per-worker gauges would be meaningless).
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)+len(o.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)+len(o.Gauges)),
		Histograms: make(map[string]HistSnapshot, len(s.Histograms)+len(o.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range o.Counters {
		out.Counters[k] += v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range o.Gauges {
		if v > out.Gauges[k] {
			out.Gauges[k] = v
		}
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = v
	}
	for k, v := range o.Histograms {
		out.Histograms[k] = out.Histograms[k].Merge(v)
	}
	return out
}

// WriteText renders a snapshot as one prefixed line per metric, sorted
// by name — the opt-in periodic dump format for long runs.
func WriteText(w io.Writer, prefix string, s Snapshot) {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for name := range s.Counters {
		names = append(names, name)
	}
	for name := range s.Gauges {
		names = append(names, name)
	}
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if h, ok := s.Histograms[name]; ok {
			if h.Count > 0 {
				fmt.Fprintf(w, "%s %s [%s]\n", prefix, name, h)
			}
			continue
		}
		if g, ok := s.Gauges[name]; ok {
			fmt.Fprintf(w, "%s %s %g\n", prefix, name, g)
			continue
		}
		if c := s.Counters[name]; c > 0 {
			fmt.Fprintf(w, "%s %s %d\n", prefix, name, c)
		}
	}
}
