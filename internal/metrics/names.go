package metrics

// WellKnownNames is the module's metric-name manifest: the DESIGN.md §8
// inventory extracted into a form the metricname analyzer
// (internal/lint/metricname.go) can check. Every metric registered by
// non-test code must appear here, every entry must have a registration
// site, and every name read back out of a Snapshot must resolve to a
// registered metric — so a typo'd counter fails `make lint` instead of
// silently reading zero.
//
// Entries containing a %-verb are dynamic families whose concrete names
// are built with fmt.Sprintf at the registration site (one instrument
// per destination or peer); the analyzer matches reads against them
// structurally.
var WellKnownNames = []string{
	// Scheduler (§5.4 priority holding, ordered-scan refreshes).
	"sched.hold",
	"sched.release",
	"sched.refresh.hit",

	// Flush policy (§5.3 adaptive-β dial) and per-destination batching.
	"flush.size.dst%d",
	"flush.beta.band.in",
	"flush.beta.band.exit",
	"flush.beta.clamp.floor",
	"flush.beta.clamp.ceil",

	// Barrier / staleness gate.
	"barrier.straggler.wait_us",
	"barrier.marker.resend",

	// Inbound data path (dup-tolerant termination watermark).
	"recv.batch",
	"recv.dup.batch",

	// Subshard scan pool (DESIGN.md §9).
	"scan.steal",
	"scan.parallel.pass",
	"scan.subshard.pass_us",

	// Master termination controller and session lifecycle (§10).
	"master.round",
	"master.collect.wait_us",
	"master.collect.timeout",
	"master.collect.probe",
	"engine.epoch",

	// Membership layer (§11): live re-join and shard rebalancing.
	"master.member.join",
	"master.member.orphan",
	"master.member.handoff_us",
	"delta.reseed.keys",
	"delete.invalidate.keys",

	// TCP transport (retry, circuit breaker, per-peer traffic).
	"tcp.send.retry",
	"tcp.breaker.open",
	"tcp.breaker.halfopen",
	"tcp.breaker.close",
	"tcp.peer%d.batch",
	"tcp.peer%d.bytes",

	// Serving front end (§12 plserved): request mix, shedding, and
	// request-path latency histograms (microseconds, log2 buckets).
	"serve.req",
	"serve.query.fresh",
	"serve.query.cached",
	"serve.lookup",
	"serve.mutate",
	"serve.shed.rate",
	"serve.shed.busy",
	"serve.error",
	"serve.session.pooled",
	"serve.query.latency_us",
	"serve.lookup.latency_us",
	"serve.mutate.latency_us",
}
