// Package graph provides the compressed-sparse-row graph representation
// used by PowerLog's execution engine, plus loaders and partitioning
// helpers. Vertices are dense 0-based int32 ids; edges optionally carry a
// float64 weight.
package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Edge is a directed edge with optional weight.
type Edge struct {
	Src, Dst int32
	W        float64
}

// Graph is an immutable CSR directed graph. Weights is nil for unweighted
// graphs. Graphs are safe for concurrent reads.
type Graph struct {
	n       int32
	offsets []int32 // len n+1
	targets []int32 // len m
	weights []float64
}

// FromEdges builds a CSR graph over vertices [0,n) from an edge list.
// Edges referencing vertices outside [0,n) cause an error. When weighted
// is false, per-edge weights are dropped.
func FromEdges(n int, edges []Edge, weighted bool) (*Graph, error) {
	if n < 0 || n > 1<<30 {
		return nil, fmt.Errorf("graph: bad vertex count %d", n)
	}
	g := &Graph{n: int32(n), offsets: make([]int32, n+1)}
	for _, e := range edges {
		if e.Src < 0 || e.Src >= int32(n) || e.Dst < 0 || e.Dst >= int32(n) {
			return nil, fmt.Errorf("graph: edge (%d,%d) outside [0,%d)", e.Src, e.Dst, n)
		}
		g.offsets[e.Src+1]++
	}
	for i := 0; i < n; i++ {
		g.offsets[i+1] += g.offsets[i]
	}
	g.targets = make([]int32, len(edges))
	if weighted {
		g.weights = make([]float64, len(edges))
	}
	cursor := make([]int32, n)
	for _, e := range edges {
		pos := g.offsets[e.Src] + cursor[e.Src]
		g.targets[pos] = e.Dst
		if weighted {
			g.weights[pos] = e.W
		}
		cursor[e.Src]++
	}
	return g, nil
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return int(g.n) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.targets) }

// Weighted reports whether edges carry weights.
func (g *Graph) Weighted() bool { return g.weights != nil }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the targets (and weights, nil if unweighted) of v's
// out-edges as subslices of the CSR arrays; callers must not modify them.
func (g *Graph) Neighbors(v int32) ([]int32, []float64) {
	lo, hi := g.offsets[v], g.offsets[v+1]
	if g.weights == nil {
		return g.targets[lo:hi], nil
	}
	return g.targets[lo:hi], g.weights[lo:hi]
}

// EdgeRange returns the CSR index range of v's out-edges.
func (g *Graph) EdgeRange(v int32) (lo, hi int32) {
	return g.offsets[v], g.offsets[v+1]
}

// Target returns the destination of CSR edge index i.
func (g *Graph) Target(i int32) int32 { return g.targets[i] }

// Weight returns the weight of CSR edge index i (1 if unweighted).
func (g *Graph) Weight(i int32) float64 {
	if g.weights == nil {
		return 1
	}
	return g.weights[i]
}

// Edges materialises the edge list (mostly for tests and export).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.targets))
	for v := int32(0); v < g.n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		for i := lo; i < hi; i++ {
			w := 1.0
			if g.weights != nil {
				w = g.weights[i]
			}
			out = append(out, Edge{Src: v, Dst: g.targets[i], W: w})
		}
	}
	return out
}

// Reverse returns the transposed graph (weights preserved).
func (g *Graph) Reverse() *Graph {
	edges := g.Edges()
	for i := range edges {
		edges[i].Src, edges[i].Dst = edges[i].Dst, edges[i].Src
	}
	rev, err := FromEdges(int(g.n), edges, g.weights != nil)
	if err != nil {
		panic("graph: reverse of a valid graph cannot fail: " + err.Error())
	}
	return rev
}

// OutDegrees returns the out-degree of every vertex as float64s, the form
// the engine's attribute columns use.
func (g *Graph) OutDegrees() []float64 {
	d := make([]float64, g.n)
	for v := int32(0); v < g.n; v++ {
		d[v] = float64(g.OutDegree(v))
	}
	return d
}

// MaxDegree returns the largest out-degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	most := 0
	for v := int32(0); v < g.n; v++ {
		if d := g.OutDegree(v); d > most {
			most = d
		}
	}
	return most
}

// Partition maps vertex v to one of k workers. PowerLog uses modulo hash
// partitioning of MonoTable shards.
func Partition(v int64, k int) int {
	if v < 0 {
		v = -v
	}
	return int(v % int64(k))
}

// LoadTSV reads an edge list: one edge per line, "src dst [weight]",
// whitespace-separated. Lines starting with '#' or '%' are comments.
// Vertex ids may be arbitrary non-negative integers; they are used as-is,
// and n is inferred as max id + 1 unless a larger n is given.
func LoadTSV(r io.Reader, n int, weighted bool) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	maxID := int32(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: need at least src and dst", lineNo)
		}
		src, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src %q", lineNo, fields[0])
		}
		dst, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst %q", lineNo, fields[1])
		}
		w := 1.0
		if weighted && len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q", lineNo, fields[2])
			}
		}
		e := Edge{Src: int32(src), Dst: int32(dst), W: w}
		edges = append(edges, e)
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if int(maxID)+1 > n {
		n = int(maxID) + 1
	}
	return FromEdges(n, edges, weighted)
}

// WriteTSV writes the edge list in LoadTSV's format.
func (g *Graph) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for v := int32(0); v < g.n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		for i := lo; i < hi; i++ {
			if g.weights != nil {
				if _, err := fmt.Fprintf(bw, "%d\t%d\t%g\n", v, g.targets[i], g.weights[i]); err != nil {
					return err
				}
			} else {
				if _, err := fmt.Fprintf(bw, "%d\t%d\n", v, g.targets[i]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// SortNeighbors orders each adjacency list by target id in place, which
// makes traversal deterministic regardless of input edge order.
func (g *Graph) SortNeighbors() {
	for v := int32(0); v < g.n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		if g.weights == nil {
			s := g.targets[lo:hi]
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			continue
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = i
		}
		t, w := g.targets[lo:hi], g.weights[lo:hi]
		sort.Slice(idx, func(i, j int) bool { return t[idx[i]] < t[idx[j]] })
		nt := make([]int32, len(idx))
		nw := make([]float64, len(idx))
		for i, j := range idx {
			nt[i], nw[i] = t[j], w[j]
		}
		copy(t, nt)
		copy(w, nw)
	}
}
